/**
 * @file
 * The flagship example: a one-page design report for a machine you
 * describe on the command line, produced with every arm of the
 * methodology —
 *
 *   1. what each architectural feature is worth in hit ratio
 *      (Eqs. 3/6, Table 3), including victim-cache pricing;
 *   2. where the pipelined-memory crossover falls (Sec. 5.3);
 *   3. the recommended line size for a measured workload and the
 *      bus speeds it remains optimal for (Sec. 5.4);
 *   4. the cost-effectiveness view (Alpert & Flynn) and the bus
 *      traffic (Goodman) of that choice;
 *   5. an end-to-end simulation of the suggested configuration
 *      against the baseline.
 *
 * The measured parts (the phi average and the line-size sweep)
 * run through the scenario layer, so --threads shards them.
 *
 * Example:
 *   ./build/examples/unified_report --mu 10 --line 32 \
 *       --workload hydro2d --hit-ratio 0.95 --threads 4
 */

#include <cstdio>
#include <string>

#include "uatm.hh"

#include "example_cli.hh"

using namespace uatm;

static int
run(int argc, char **argv)
{
    OptionParser options("unified_report",
                         "One-page architectural tradeoff report "
                         "for a described machine.");
    options.addInt("mu", 10, "memory cycle time per bus transfer");
    options.addInt("line", 32, "cache line size in bytes");
    options.addInt("bus", 4, "bus width in bytes");
    options.addDouble("hit-ratio", 0.95, "base data-cache hit "
                      "ratio");
    options.addDouble("alpha", 0.5, "flush ratio");
    options.addInt("q", 2, "pipelined issue interval");
    examples::addWorkloadOptions(options, "hydro2d", 1);
    options.addInt("refs", 80000, "references to simulate");
    examples::addRunnerOptions(options);
    if (!options.parse(argc, argv))
        return 0;
    const auto cli = examples::parseRunnerOptions(options);

    TradeoffContext ctx;
    ctx.machine.busWidth =
        static_cast<double>(options.getInt("bus"));
    ctx.machine.lineBytes =
        static_cast<double>(options.getInt("line"));
    ctx.machine.cycleTime =
        static_cast<double>(options.getInt("mu"));
    ctx.alpha = options.getDouble("alpha");
    const double hr = options.getDouble("hit-ratio");
    const double q = static_cast<double>(options.getInt("q"));
    const auto refs =
        static_cast<std::uint64_t>(options.getInt("refs"));
    const auto workload = examples::parseWorkloadOptions(options);

    if (cli.narrate())
        std::printf(
            "==============================================\n"
            "uatm design report — %s @ HR %.1f %%\n"
            "==============================================\n\n",
            ctx.machine.describe().c_str(), hr * 100);

    // ---- 1. feature pricing --------------------------------------
    if (cli.narrate())
        std::printf("[1] what each feature is worth (Eq. 6)\n");
    {
        // Measure the BNL3 stalling factor for this machine, one
        // profile per runner shard.
        PhiExperiment phi_exp;
        phi_exp.feature = StallFeature::BNL3;
        phi_exp.cycleTime =
            static_cast<Cycles>(ctx.machine.cycleTime);
        phi_exp.cache.lineBytes =
            static_cast<std::uint32_t>(ctx.machine.lineBytes);
        phi_exp.refs = refs / 2;
        const double phi =
            std::min(exp::measurePhiAllProfilesParallel(
                         phi_exp, cli.threads)
                         .back()
                         .phi,
                     ctx.machine.lineOverBus());

        exp::ResultTable table(
            "feature_pricing",
            {"feature", "r", "dhr_pct", "equiv_hr_pct"});
        auto row = [&](const char *name, double r) {
            table.addRow(
                {exp::Cell::text(name), exp::Cell::num(r, 3),
                 exp::Cell::num(hitRatioTraded(r, hr) * 100, 2),
                 exp::Cell::num(
                     equivalentHitRatio(r, hr) * 100, 2)});
        };
        row("double the bus", missFactorDoubleBus(ctx));
        row("write buffers", missFactorWriteBuffers(ctx));
        row("BNL3 cache (measured phi)",
            missFactorPartialStall(ctx, phi));
        row("pipelined memory", missFactorPipelined(ctx, q));
        row("victim cache (f=0.5, 2cy)",
            missFactorVictim(ctx, 0.5, 2.0));
        cli.emit(table);
    }
    if (!cli.narrate())
        return 0;

    // ---- 2. crossover --------------------------------------------
    std::printf("\n[2] pipelined-memory crossover (Sec. 5.3)\n");
    if (ctx.machine.lineOverBus() > 2.0) {
        const auto crossover = crossoverCycleTime(
            ctx, TradeFeature::PipelinedMemory,
            TradeFeature::DoubleBus, q, 1.0, std::max(2.0, q),
            400.0);
        if (crossover) {
            std::printf("    pipelining beats a wider bus from "
                        "mu_m = %.2f; your mu_m = %.0f is %s it\n",
                        *crossover, ctx.machine.cycleTime,
                        ctx.machine.cycleTime > *crossover
                            ? "past"
                            : "below");
        }
    } else {
        std::printf("    L/D = 2: pipelining never beats "
                    "doubling the bus (Fig. 3)\n");
    }

    // ---- 3. line size ---------------------------------------------
    std::printf("\n[3] line size for '%s' (Sec. 5.4)\n",
                workload.shortLabel().c_str());
    LineDelayModel delay;
    delay.c = ctx.machine.cycleTime + 1.0;
    delay.beta = ctx.machine.cycleTime;
    delay.busWidth = ctx.machine.busWidth;
    {
        exp::LineTradeoff spec;
        spec.base.sizeBytes = 8 * 1024;
        spec.base.assoc = 2;
        spec.workload = workload;
        spec.lineSizes = {8, 16, 32, 64, 128};
        spec.baseLine = 8;
        spec.delay = delay;
        spec.refs = refs;
        spec.warmupRefs = refs / 10;
        exp::Runner runner = cli.makeRunner();
        const auto result = exp::runLineTradeoff(spec, runner);
        std::printf("    measured MR(L) recommends %u-byte "
                    "lines (Smith agrees: %u)\n",
                    result.recommended, result.smith);

        // 4. cost + traffic view for the same table.
        CacheAreaModel area;
        CacheConfig geometry;
        geometry.sizeBytes = 8 * 1024;
        geometry.assoc = 2;
        const auto cost = costEffectiveLine(result.missRatios,
                                            delay, area, geometry);
        std::printf("\n[4] cost view: delay-area optimum is %u "
                    "bytes (Alpert & Flynn); traffic rises with "
                    "line size (Goodman) — see "
                    "bench_ablation_traffic\n",
                    cost);
    }

    // ---- 5. end-to-end --------------------------------------------
    std::printf("\n[5] end-to-end check (%llu refs)\n",
                static_cast<unsigned long long>(refs));
    {
        auto run = [&](std::uint32_t bus, bool pipelined,
                       std::uint32_t wbuf) {
            CacheConfig cache;
            cache.sizeBytes = 8 * 1024;
            cache.assoc = 2;
            cache.lineBytes = static_cast<std::uint32_t>(
                ctx.machine.lineBytes);
            MemoryConfig mem;
            mem.busWidthBytes = bus;
            mem.cycleTime =
                static_cast<Cycles>(ctx.machine.cycleTime);
            mem.pipelined = pipelined;
            mem.pipelineInterval = static_cast<Cycles>(q);
            CpuConfig cpu;
            cpu.feature = StallFeature::FS;
            TimingEngine engine(cache, mem,
                                WriteBufferConfig{wbuf, true},
                                cpu);
            // Fresh stream, distinct seed from the sweeps above.
            exp::WorkloadSpec check = workload;
            if (check.serializable())
                check.seed = workload.seed + 1;
            auto source = okOrThrow(check.make());
            return engine.run(*source, refs);
        };
        const auto base = run(
            static_cast<std::uint32_t>(ctx.machine.busWidth),
            false, 0);
        const auto best =
            ctx.machine.cycleTime >= 5.0 &&
                    ctx.machine.lineOverBus() > 2.0
                ? run(static_cast<std::uint32_t>(
                          ctx.machine.busWidth),
                      true, 8)
                : run(static_cast<std::uint32_t>(
                          ctx.machine.busWidth * 2),
                      false, 8);
        std::printf("    baseline: %llu cycles (CPI %.3f)\n",
                    static_cast<unsigned long long>(base.cycles),
                    base.cpi());
        std::printf("    suggested config: %llu cycles "
                    "(CPI %.3f, %.1f %% faster)\n",
                    static_cast<unsigned long long>(best.cycles),
                    best.cpi(),
                    100.0 * (1.0 - static_cast<double>(
                                       best.cycles) /
                                       static_cast<double>(
                                           base.cycles)));
    }
    return 0;
}

int
main(int argc, char **argv)
{
    return examples::guardedMain(
        [&] { return run(argc, argv); });
}
