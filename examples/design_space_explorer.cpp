/**
 * @file
 * Design-space explorer: sweep (cache size x bus width x stalling
 * feature x write buffer) through the trace-driven timing engine
 * on a chosen SPEC92-like workload and report execution time, CPI
 * and mean memory delay for each design — the experiment a
 * microprocessor architect would run with this library when
 * deciding where to spend pins and chip area (Sec. 5.2).
 *
 * The 24-point grid is a declarative scenario sharded across
 * --threads workers; the merged table is identical at any thread
 * count.
 *
 * Example:
 *   ./build/examples/design_space_explorer --workload doduc \
 *       --mu 8 --refs 100000 --threads 4 --format csv
 */

#include <cstdio>
#include <string>
#include <vector>

#include "cpu/timing_engine.hh"
#include "exp/runner.hh"
#include "util/options.hh"
#include "util/table.hh"

#include "example_cli.hh"

using namespace uatm;

static int
run(int argc, char **argv)
{
    OptionParser options(
        "design_space_explorer",
        "Sweep cache size, bus width and stalling features "
        "through the timing engine.");
    examples::addWorkloadOptions(options, "doduc", 1);
    options.addInt("mu", 8, "memory cycle time per bus transfer");
    options.addInt("refs", 100000, "references to simulate");
    options.addInt("line", 32, "cache line size in bytes");
    options.addFlag("pipelined", "use a pipelined memory (q=2)");
    examples::addRunnerOptions(options);
    if (!options.parse(argc, argv))
        return 0;
    const auto cli = examples::parseRunnerOptions(options);

    const auto workload = examples::parseWorkloadOptions(options);
    const auto mu = static_cast<Cycles>(options.getInt("mu"));
    const auto line =
        static_cast<std::uint32_t>(options.getInt("line"));

    exp::Scenario scenario(
        "design_space",
        "cache size x bus width x stall feature x write buffer");
    scenario.refs =
        static_cast<std::uint64_t>(options.getInt("refs"));
    scenario.workload = workload;
    scenario.cache.assoc = 2;
    scenario.cache.lineBytes = line;
    scenario.memory.cycleTime = mu;
    scenario.memory.pipelined = options.getFlag("pipelined");
    scenario.memory.pipelineInterval = 2;
    scenario.writeBuffer.readBypass = true;

    scenario.sweepLabeled(
        "cache", {{"8K", 8192}, {"32K", 32768}, {"128K", 131072}},
        [](exp::Point &point, const exp::AxisValue &v) {
            point.cache.sizeBytes =
                static_cast<std::uint64_t>(v.value);
        });
    scenario.sweepLabeled(
        "bus", {{"32-bit", 4}, {"64-bit", 8}},
        [](exp::Point &point, const exp::AxisValue &v) {
            point.memory.busWidthBytes =
                static_cast<std::uint32_t>(v.value);
        });
    scenario.sweepLabeled(
        "feature",
        {{stallFeatureName(StallFeature::FS),
          static_cast<double>(StallFeature::FS)},
         {stallFeatureName(StallFeature::BNL3),
          static_cast<double>(StallFeature::BNL3)}},
        [](exp::Point &point, const exp::AxisValue &v) {
            point.cpu.feature = static_cast<StallFeature>(
                static_cast<int>(v.value));
        });
    scenario.sweepLabeled(
        "wbuf", {{"-", 0}, {"8", 8}},
        [](exp::Point &point, const exp::AxisValue &v) {
            point.writeBuffer.depth =
                static_cast<std::uint32_t>(v.value);
        });

    if (cli.narrate())
        std::printf(
            "workload %s, mu_m = %llu, %llu refs, L = %u\n\n",
            workload.describe().c_str(),
            static_cast<unsigned long long>(mu),
            static_cast<unsigned long long>(scenario.refs), line);

    exp::Runner runner = cli.makeRunner();
    cli.emit(runner.run(
        scenario, {"hr_pct", "cycles", "cpi", "mem_delay"},
        [](const exp::Point &point) {
            TimingEngine engine(point.cache, point.memory,
                                point.writeBuffer, point.cpu);
            auto workload = okOrThrow(point.workload.make());
            const auto stats = engine.run(*workload, point.refs);
            return std::vector<exp::Cell>{
                exp::Cell::num(
                    engine.cacheStats().hitRatio() * 100, 2),
                exp::Cell::integer(
                    static_cast<std::int64_t>(stats.cycles)),
                exp::Cell::num(stats.cpi(), 3),
                exp::Cell::num(stats.meanMemoryDelay(), 3)};
        }));

    if (cli.narrate())
        std::printf(
            "\nReading the table: designs with equal cycle "
            "counts are equal-performance design points in "
            "the sense of Sec. 4.5 — e.g. compare a wide-bus "
            "small cache against a narrow-bus larger cache "
            "(Example 1).\n");
    return 0;
}

int
main(int argc, char **argv)
{
    return examples::guardedMain(
        [&] { return run(argc, argv); });
}
