/**
 * @file
 * Design-space explorer: sweep (cache size x bus width x stalling
 * feature x write buffer) through the trace-driven timing engine
 * on a chosen SPEC92-like workload and report execution time, CPI
 * and mean memory delay for each design — the experiment a
 * microprocessor architect would run with this library when
 * deciding where to spend pins and chip area (Sec. 5.2).
 *
 * Example:
 *   ./build/examples/design_space_explorer --workload doduc \
 *       --mu 8 --refs 100000
 */

#include <cstdio>
#include <string>
#include <vector>

#include "cpu/timing_engine.hh"
#include "trace/generators.hh"
#include "util/options.hh"
#include "util/table.hh"

using namespace uatm;

int
main(int argc, char **argv)
{
    OptionParser options(
        "design_space_explorer",
        "Sweep cache size, bus width and stalling features "
        "through the timing engine.");
    options.addString("workload", "doduc",
                      "SPEC92-like profile (nasa7, swm256, wave5, "
                      "ear, doduc, hydro2d)");
    options.addInt("mu", 8, "memory cycle time per bus transfer");
    options.addInt("refs", 100000, "references to simulate");
    options.addInt("line", 32, "cache line size in bytes");
    options.addInt("seed", 1, "workload seed");
    options.addFlag("pipelined", "use a pipelined memory (q=2)");
    if (!options.parse(argc, argv))
        return 0;

    const std::string workload_name = options.getString("workload");
    const auto mu = static_cast<Cycles>(options.getInt("mu"));
    const auto refs =
        static_cast<std::uint64_t>(options.getInt("refs"));
    const auto line =
        static_cast<std::uint32_t>(options.getInt("line"));
    const auto seed =
        static_cast<std::uint64_t>(options.getInt("seed"));

    std::printf("workload %s, mu_m = %llu, %llu refs, L = %u\n\n",
                workload_name.c_str(),
                static_cast<unsigned long long>(mu),
                static_cast<unsigned long long>(refs), line);

    TextTable table({"cache", "bus", "feature", "wbuf", "HR %",
                     "cycles", "CPI", "mem delay"});

    for (std::uint64_t size : {8192ull, 32768ull, 131072ull}) {
        for (std::uint32_t bus : {4u, 8u}) {
            for (StallFeature feature :
                 {StallFeature::FS, StallFeature::BNL3}) {
                for (std::uint32_t depth : {0u, 8u}) {
                    CacheConfig cache;
                    cache.sizeBytes = size;
                    cache.assoc = 2;
                    cache.lineBytes = line;

                    MemoryConfig mem;
                    mem.busWidthBytes = bus;
                    mem.cycleTime = mu;
                    mem.pipelined = options.getFlag("pipelined");
                    mem.pipelineInterval = 2;

                    CpuConfig cpu;
                    cpu.feature = feature;

                    TimingEngine engine(
                        cache, mem, WriteBufferConfig{depth, true},
                        cpu);
                    auto workload =
                        Spec92Profile::make(workload_name, seed);
                    const auto stats =
                        engine.run(*workload, refs);

                    table.addRow(
                        {std::to_string(size / 1024) + "K",
                         std::to_string(bus * 8) + "-bit",
                         stallFeatureName(feature),
                         depth ? std::to_string(depth) : "-",
                         TextTable::num(
                             engine.cacheStats().hitRatio() * 100,
                             2),
                         std::to_string(stats.cycles),
                         TextTable::num(stats.cpi(), 3),
                         TextTable::num(stats.meanMemoryDelay(),
                                        3)});
                }
            }
        }
    }
    std::fputs(table.render().c_str(), stdout);

    std::printf("\nReading the table: designs with equal cycle "
                "counts are equal-performance design points in "
                "the sense of Sec. 4.5 — e.g. compare a wide-bus "
                "small cache against a narrow-bus larger cache "
                "(Example 1).\n");
    return 0;
}
