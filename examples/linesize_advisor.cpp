/**
 * @file
 * Line-size advisor (Sec. 5.4): given the physical memory timing
 * (latency + per-byte transfer time, as in Figure 6's "Delay =
 * 360ns + 15ns/byte") and a workload, measure the miss ratio per
 * candidate line size with the cache simulator and recommend the
 * line size that minimises mean memory delay — showing that the
 * tradeoff criterion (Eq. 19) and Smith's criterion (Eq. 16)
 * agree, plus the range of bus speeds where the choice holds.
 *
 * The per-line simulations are independent, so they shard across
 * --threads workers through the scenario runner.
 *
 * Example:
 *   ./build/examples/linesize_advisor --cache-kb 16 \
 *       --latency-ns 360 --ns-per-byte 15 --cycle-ns 60 --bus 8 \
 *       --threads 4
 */

#include <cstdio>
#include <string>

#include "exp/scenarios.hh"
#include "util/options.hh"

#include "example_cli.hh"

using namespace uatm;

static int
run(int argc, char **argv)
{
    OptionParser options(
        "linesize_advisor",
        "Recommend a cache line size from measured miss ratios "
        "and the memory's delay function.");
    examples::addWorkloadOptions(options, "nasa7", 11);
    options.addInt("cache-kb", 16, "cache capacity in KB");
    options.addDouble("latency-ns", 360.0, "memory access latency");
    options.addDouble("ns-per-byte", 15.0, "transfer time per byte");
    options.addDouble("cycle-ns", 60.0, "CPU cycle time");
    options.addInt("bus", 8, "bus width in bytes");
    options.addInt("refs", 150000, "references to simulate");
    examples::addRunnerOptions(options);
    if (!options.parse(argc, argv))
        return 0;
    const auto cli = examples::parseRunnerOptions(options);

    exp::LineTradeoff spec;
    spec.delay = LineDelayModel::fromNanoseconds(
        options.getDouble("latency-ns"),
        options.getDouble("ns-per-byte"),
        options.getDouble("cycle-ns"),
        static_cast<double>(options.getInt("bus")));
    if (cli.narrate())
        std::printf("delay model: %s\n\n",
                    spec.delay.describe().c_str());

    // Measure MR(L) for the candidate lines with the simulator.
    spec.base.sizeBytes =
        static_cast<std::uint64_t>(options.getInt("cache-kb")) *
        1024;
    spec.base.assoc = 2;
    spec.workload = examples::parseWorkloadOptions(options);
    spec.lineSizes = {8, 16, 32, 64, 128};
    spec.baseLine = 8;
    spec.refs = static_cast<std::uint64_t>(options.getInt("refs"));
    spec.warmupRefs = spec.refs / 10;

    exp::Runner runner = cli.makeRunner();
    const auto result = exp::runLineTradeoff(spec, runner);
    cli.emit(result.table);

    if (!cli.narrate())
        return 0;

    std::printf("\nrecommended line size: %u bytes "
                "(Smith's criterion picks %u — Sec. 5.4 proves "
                "the two always agree)\n",
                result.recommended, result.smith);

    if (result.recommended != spec.baseLine) {
        if (const auto range = beneficialBetaRange(
                result.missRatios, spec.delay, spec.baseLine,
                result.recommended, 0.25, 16.0)) {
            std::printf("the %uB line stays beneficial for "
                        "normalised bus speeds beta in "
                        "[%.2f, %.2f] (yours: %.2f)\n",
                        result.recommended, range->first,
                        range->second, spec.delay.beta);
        }
    } else {
        std::printf("no larger line pays for itself at this bus "
                    "speed (Sec. 5.4.2: the bus is too slow for "
                    "a larger line's higher hit ratio to win)\n");
    }
    return 0;
}

int
main(int argc, char **argv)
{
    return examples::guardedMain(
        [&] { return run(argc, argv); });
}
