/**
 * @file
 * Line-size advisor (Sec. 5.4): given the physical memory timing
 * (latency + per-byte transfer time, as in Figure 6's "Delay =
 * 360ns + 15ns/byte") and a workload, measure the miss ratio per
 * candidate line size with the cache simulator and recommend the
 * line size that minimises mean memory delay — showing that the
 * tradeoff criterion (Eq. 19) and Smith's criterion (Eq. 16)
 * agree, plus the range of bus speeds where the choice holds.
 *
 * Example:
 *   ./build/examples/linesize_advisor --cache-kb 16 \
 *       --latency-ns 360 --ns-per-byte 15 --cycle-ns 60 --bus 8
 */

#include <cstdio>
#include <string>

#include "cache/sweep.hh"
#include "linesize/line_tradeoff.hh"
#include "trace/generators.hh"
#include "util/options.hh"
#include "util/table.hh"

using namespace uatm;

int
main(int argc, char **argv)
{
    OptionParser options(
        "linesize_advisor",
        "Recommend a cache line size from measured miss ratios "
        "and the memory's delay function.");
    options.addString("workload", "nasa7", "SPEC92-like profile");
    options.addInt("cache-kb", 16, "cache capacity in KB");
    options.addDouble("latency-ns", 360.0, "memory access latency");
    options.addDouble("ns-per-byte", 15.0, "transfer time per byte");
    options.addDouble("cycle-ns", 60.0, "CPU cycle time");
    options.addInt("bus", 8, "bus width in bytes");
    options.addInt("refs", 150000, "references to simulate");
    if (!options.parse(argc, argv))
        return 0;

    const auto model = LineDelayModel::fromNanoseconds(
        options.getDouble("latency-ns"),
        options.getDouble("ns-per-byte"),
        options.getDouble("cycle-ns"),
        static_cast<double>(options.getInt("bus")));
    std::printf("delay model: %s\n\n", model.describe().c_str());

    // Measure MR(L) for the candidate lines with the simulator.
    CacheConfig cache;
    cache.sizeBytes =
        static_cast<std::uint64_t>(options.getInt("cache-kb")) *
        1024;
    cache.assoc = 2;
    auto workload = Spec92Profile::make(
        options.getString("workload"), 11);
    const std::vector<std::uint32_t> candidates = {8, 16, 32, 64,
                                                   128};
    const auto refs =
        static_cast<std::uint64_t>(options.getInt("refs"));
    const auto sweep = sweepLineSize(cache, *workload, candidates,
                                     refs, refs / 10);
    const auto table =
        MissRatioTable::fromSweep("measured", sweep);

    TextTable report({"line", "miss ratio", "mean delay (Eq.15)",
                      "reduced delay vs 8B (Eq.19)"});
    for (std::uint32_t line : candidates) {
        const double mr = table.missRatio(line);
        report.addRow(
            {std::to_string(line), TextTable::num(mr, 4),
             TextTable::num(model.meanMemoryDelay(mr, line), 4),
             line == 8 ? "-"
                       : TextTable::num(
                             reducedDelay(table, model, 8, line),
                             4)});
    }
    std::fputs(report.render().c_str(), stdout);

    const auto best = tradeoffOptimalLine(table, model, 8);
    const auto smith = smithOptimalLine(table, model);
    std::printf("\nrecommended line size: %u bytes "
                "(Smith's criterion picks %u — Sec. 5.4 proves "
                "the two always agree)\n",
                best, smith);

    if (best != 8) {
        if (const auto range = beneficialBetaRange(
                table, model, 8, best, 0.25, 16.0)) {
            std::printf("the %uB line stays beneficial for "
                        "normalised bus speeds beta in "
                        "[%.2f, %.2f] (yours: %.2f)\n",
                        best, range->first, range->second,
                        model.beta);
        }
    } else {
        std::printf("no larger line pays for itself at this bus "
                    "speed (Sec. 5.4.2: the bus is too slow for "
                    "a larger line's higher hit ratio to win)\n");
    }
    return 0;
}
