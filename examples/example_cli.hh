/**
 * @file
 * Shared command-line plumbing for the example binaries: the
 * --threads / --format / --out triple every scenario-driven
 * example exposes, parsed into a Runner and an emission target.
 *
 * The examples are the CLI boundary of the error contract: library
 * errors arrive here as Status values or StatusError exceptions
 * and become fatal() exits (guardedMain, okOrFatal, valueOrFatal).
 */

#ifndef UATM_EXAMPLES_EXAMPLE_CLI_HH
#define UATM_EXAMPLES_EXAMPLE_CLI_HH

#include <cstdint>
#include <string>
#include <utility>

#include "exp/result_table.hh"
#include "exp/runner.hh"
#include "exp/workload_spec.hh"
#include "util/options.hh"
#include "util/status.hh"

namespace uatm::examples {

/**
 * Declare the shared --workload / --seed pair.  The value syntax
 * is "<method>[:k=v,...]" against the workload registry ("ycsb-a",
 * "ycsb-a:theta=0.9,records=1e6", "reuse-dist:depth=128", bare
 * Spec92 profile names like "doduc") — see trace_tool
 * --list-workloads for the method catalogue.
 */
inline void
addWorkloadOptions(OptionParser &options,
                   const std::string &default_workload,
                   std::int64_t default_seed)
{
    options.addString("workload", default_workload,
                      "workload method "
                      "\"<method>[:k=v,...]\" (see trace_tool "
                      "--list-workloads)");
    options.addInt("seed", default_seed, "workload seed");
}

/** Parse --workload/--seed; a bad method or param is fatal(). */
inline exp::WorkloadSpec
parseWorkloadOptions(const OptionParser &options)
{
    return valueOrFatal(exp::WorkloadSpec::parse(
        options.getString("workload"),
        static_cast<std::uint64_t>(options.getInt("seed"))));
}

/** Declare --threads, --format, --out and --fail-fast. */
inline void
addRunnerOptions(OptionParser &options)
{
    options.addInt("threads", 1,
                   "worker threads (0 = all hardware threads)");
    options.addString("format", "text",
                      "result table format: text | csv | json");
    options.addString("out", "",
                      "write the result table here instead of "
                      "stdout");
    options.addFlag("fail-fast",
                    "abort on the first failed point instead of "
                    "emitting an error row for it");
}

/** The parsed --threads / --format / --out triple. */
struct RunnerCli
{
    unsigned threads = 1;
    bool failFast = false;
    exp::TableFormat format = exp::TableFormat::Text;
    std::string out;

    /** True when narrative printf output won't corrupt the table
     *  stream (table is a file, or it renders as text). */
    bool narrate() const
    {
        return !out.empty() ||
               format == exp::TableFormat::Text;
    }

    exp::Runner makeRunner() const
    {
        return exp::Runner(exp::RunnerOptions{threads, failFast});
    }

    /** Emit @p table per the parsed flags; fatal() when the output
     *  file cannot be written. */
    void emit(const exp::ResultTable &table) const
    {
        okOrFatal(table.emit(format, out));
    }
};

inline RunnerCli
parseRunnerOptions(const OptionParser &options)
{
    RunnerCli cli;
    cli.threads =
        static_cast<unsigned>(options.getInt("threads"));
    cli.failFast = options.getFlag("fail-fast");
    cli.format =
        valueOrFatal(exp::parseTableFormat(options.getString("format")));
    cli.out = options.getString("out");
    return cli;
}

/**
 * Run @p body, converting an escaping StatusError into a clean
 * fatal() exit.  Every example main routes through this so a
 * recoverable library error never surfaces as an uncaught
 * exception (std::terminate / abort).
 */
template <typename Fn>
int
guardedMain(Fn &&body)
{
    try {
        return std::forward<Fn>(body)();
    } catch (const StatusError &e) {
        fatal(e.status().message());
    }
}

} // namespace uatm::examples

#endif // UATM_EXAMPLES_EXAMPLE_CLI_HH
