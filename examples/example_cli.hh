/**
 * @file
 * Shared command-line plumbing for the example binaries: the
 * --threads / --format / --out triple every scenario-driven
 * example exposes, parsed into a Runner and an emission target.
 */

#ifndef UATM_EXAMPLES_EXAMPLE_CLI_HH
#define UATM_EXAMPLES_EXAMPLE_CLI_HH

#include <string>

#include "exp/result_table.hh"
#include "exp/runner.hh"
#include "util/options.hh"

namespace uatm::examples {

/** Declare --threads, --format and --out on @p options. */
inline void
addRunnerOptions(OptionParser &options)
{
    options.addInt("threads", 1,
                   "worker threads (0 = all hardware threads)");
    options.addString("format", "text",
                      "result table format: text | csv | json");
    options.addString("out", "",
                      "write the result table here instead of "
                      "stdout");
}

/** The parsed --threads / --format / --out triple. */
struct RunnerCli
{
    unsigned threads = 1;
    exp::TableFormat format = exp::TableFormat::Text;
    std::string out;

    /** True when narrative printf output won't corrupt the table
     *  stream (table is a file, or it renders as text). */
    bool narrate() const
    {
        return !out.empty() ||
               format == exp::TableFormat::Text;
    }

    exp::Runner makeRunner() const
    {
        return exp::Runner(exp::RunnerOptions{threads});
    }

    /** Emit @p table per the parsed flags. */
    void emit(const exp::ResultTable &table) const
    {
        table.emit(format, out);
    }
};

inline RunnerCli
parseRunnerOptions(const OptionParser &options)
{
    RunnerCli cli;
    cli.threads =
        static_cast<unsigned>(options.getInt("threads"));
    cli.format = exp::parseTableFormat(options.getString("format"));
    cli.out = options.getString("out");
    return cli;
}

} // namespace uatm::examples

#endif // UATM_EXAMPLES_EXAMPLE_CLI_HH
