/**
 * @file
 * Trace utility: generate a synthetic workload from any registered
 * workload method (SPEC92-like profiles, YCSB mixes, reuse-distance
 * synthesis, Short&Levy, optionally with an interleaved IFetch
 * stream), save it in the text or binary format, inspect a saved
 * trace, replay one through a cache and report the paper's workload
 * parameters {E, R, W, alpha}, or measure a saved trace's
 * reuse-distance profile as JSON (feed it back through
 * --workload reuse-dist:hist=<file>).
 *
 * Examples:
 *   trace_tool --list-workloads
 *   trace_tool --describe ycsb
 *   trace_tool --mode generate --workload ycsb-a:records=100000 \
 *              --refs 50000 --out ycsb.trc --format binary
 *   trace_tool --mode inspect --in ycsb.trc --format binary
 *   trace_tool --mode replay --in ycsb.trc --format binary \
 *              --cache-kb 8 --line 32
 *   trace_tool --mode reuse-profile --in ycsb.trc --format binary \
 *              --out ycsb_reuse.json
 */

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>

#include "cache/cache.hh"
#include "core/workload.hh"
#include "example_cli.hh"
#include "exp/workload_registry.hh"
#include "exp/workload_spec.hh"
#include "trace/io.hh"
#include "trace/reuse_distance.hh"
#include "trace/trace_stats.hh"
#include "util/logging.hh"
#include "util/options.hh"
#include "util/status.hh"

using namespace uatm;

namespace {

Trace
loadTrace(const std::string &path, const std::string &format)
{
    if (format == "binary")
        return valueOrFatal(BinaryTraceFormat::readFile(path));
    if (format == "text")
        return valueOrFatal(TextTraceFormat::readFile(path));
    fatal("unknown trace format '", format,
          "' (expected text or binary)");
}

void
saveTrace(const Trace &trace, const std::string &path,
          const std::string &format)
{
    if (format == "binary")
        okOrFatal(BinaryTraceFormat::writeFile(trace, path));
    else if (format == "text")
        okOrFatal(TextTraceFormat::writeFile(trace, path));
    else
        fatal("unknown trace format '", format, "'");
}

/** --list-workloads: one "name - doc" line per registered method. */
void
listWorkloads()
{
    const auto &registry = exp::WorkloadRegistry::instance();
    for (const auto &name : registry.names()) {
        const auto *method = registry.find(name);
        std::printf("%-12s %s\n", name.c_str(),
                    method ? method->doc.c_str() : "");
    }
}

} // namespace

int
run(int argc, char **argv)
{
    OptionParser options(
        "trace_tool",
        "Generate, inspect and replay uatm memory traces.");
    options.addString("mode", "generate",
                      "generate | inspect | replay | reuse-profile");
    examples::addWorkloadOptions(options, "nasa7", 1);
    options.addInt("refs", 50000, "references to generate");
    options.addFlag("ifetch",
                    "interleave instruction fetches (generate)");
    options.addString("out", "trace.trc",
                      "output path (generate/reuse-profile)");
    options.addString("in", "trace.trc",
                      "input path (inspect/replay/reuse-profile)");
    options.addString("format", "binary", "text | binary");
    options.addInt("cache-kb", 8, "cache capacity (replay)");
    options.addInt("assoc", 2, "associativity (replay)");
    options.addInt("line", 32, "line size (replay/reuse-profile)");
    options.addInt("depth", 256,
                   "maximum stack depth (reuse-profile)");
    options.addFlag("list-workloads",
                    "list the registered workload methods and exit");
    options.addString("describe", "",
                      "print a workload method's parameters and "
                      "exit");
    if (!options.parse(argc, argv))
        return 0;

    if (options.getFlag("list-workloads")) {
        listWorkloads();
        return 0;
    }
    if (!options.getString("describe").empty()) {
        std::fputs(
            valueOrFatal(exp::WorkloadRegistry::instance().describe(
                             options.getString("describe")))
                .c_str(),
            stdout);
        std::fputc('\n', stdout);
        return 0;
    }

    const std::string mode = options.getString("mode");
    const std::string format = options.getString("format");

    if (mode == "generate") {
        exp::WorkloadSpec spec =
            examples::parseWorkloadOptions(options);
        spec.withIFetch = options.getFlag("ifetch");
        auto source = valueOrFatal(spec.make());
        Trace trace;
        const auto refs =
            static_cast<std::uint64_t>(options.getInt("refs"));
        for (std::uint64_t i = 0; i < refs; ++i) {
            auto ref = source->next();
            if (!ref)
                break;
            trace.append(*ref);
        }
        saveTrace(trace, options.getString("out"), format);
        std::printf("wrote %zu references (%llu instructions) to "
                    "%s\n",
                    trace.size(),
                    static_cast<unsigned long long>(
                        trace.instructionCount()),
                    options.getString("out").c_str());
        return 0;
    }

    if (mode == "inspect") {
        Trace trace = loadTrace(options.getString("in"), format);
        WorkloadProfile profile(32);
        trace.reset();
        while (auto ref = trace.next())
            profile.add(*ref);
        std::fputs(
            profile.format(options.getString("in")).c_str(),
            stdout);
        std::printf("  ifetch refs      = %llu\n",
                    static_cast<unsigned long long>(
                        trace.countKind(RefKind::IFetch)));
        return 0;
    }

    if (mode == "replay") {
        Trace trace = loadTrace(options.getString("in"), format);
        CacheConfig config;
        config.sizeBytes =
            static_cast<std::uint64_t>(options.getInt("cache-kb")) *
            1024;
        config.assoc =
            static_cast<std::uint32_t>(options.getInt("assoc"));
        config.lineBytes =
            static_cast<std::uint32_t>(options.getInt("line"));
        SetAssocCache cache(config);
        trace.reset();
        while (auto ref = trace.next())
            cache.access(*ref);

        std::printf("cache: %s\n%s",
                    config.describe().c_str(),
                    cache.stats().format(config.lineBytes).c_str());
        const Workload w = Workload::fromCacheRun(
            cache.stats(), config.lineBytes);
        std::printf("paper parameters: %s\n",
                    w.describe(config.lineBytes).c_str());
        return 0;
    }

    if (mode == "reuse-profile") {
        Trace trace = loadTrace(options.getString("in"), format);
        const auto profile = valueOrFatal(ReuseProfile::measure(
            trace, trace.size(),
            static_cast<std::uint32_t>(options.getInt("line")),
            static_cast<std::size_t>(options.getInt("depth"))));
        const std::string json = profile.toJsonText();
        const std::string out = options.getString("out");
        // generate's default --out is a .trc path; route the JSON
        // to stdout unless the user chose a destination.
        if (out.empty() || out == "trace.trc") {
            std::printf("%s\n", json.c_str());
        } else {
            std::ofstream file(out);
            file << json << '\n';
            if (!file)
                fatal("cannot write reuse profile to '", out, "'");
            std::printf("wrote reuse-distance profile (depth %zu) "
                        "to %s\n",
                        profile.weights.size(), out.c_str());
        }
        return 0;
    }

    fatal("unknown mode '", mode,
          "' (expected generate, inspect, replay or "
          "reuse-profile)");
}

int
main(int argc, char **argv)
{
    return examples::guardedMain(
        [&] { return run(argc, argv); });
}
