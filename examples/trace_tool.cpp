/**
 * @file
 * Trace utility: generate a synthetic workload (any of the six
 * SPEC92-like profiles, the Short&Levy mix, or a combined
 * IFetch+data stream), save it in the text or binary format,
 * inspect a saved trace, or replay one through a cache and report
 * the paper's workload parameters {E, R, W, alpha}.
 *
 * Examples:
 *   trace_tool --mode generate --workload nasa7 --refs 50000 \
 *              --out nasa7.trc --format binary
 *   trace_tool --mode inspect --in nasa7.trc --format binary
 *   trace_tool --mode replay --in nasa7.trc --format binary \
 *              --cache-kb 8 --line 32
 */

#include <cstdio>
#include <memory>
#include <string>

#include "cache/cache.hh"
#include "core/workload.hh"
#include "example_cli.hh"
#include "exp/workload_spec.hh"
#include "trace/io.hh"
#include "trace/trace_stats.hh"
#include "util/logging.hh"
#include "util/options.hh"
#include "util/status.hh"

using namespace uatm;

namespace {

std::unique_ptr<TraceSource>
makeWorkload(const std::string &name, std::uint64_t seed,
             bool with_ifetch)
{
    exp::WorkloadSpec spec =
        name == "shortlevy" ? exp::WorkloadSpec::shortLevy(seed)
                            : exp::WorkloadSpec::spec92(name, seed);
    spec.withIFetch = with_ifetch;
    return valueOrFatal(spec.make());
}

Trace
loadTrace(const std::string &path, const std::string &format)
{
    if (format == "binary")
        return valueOrFatal(BinaryTraceFormat::readFile(path));
    if (format == "text")
        return valueOrFatal(TextTraceFormat::readFile(path));
    fatal("unknown trace format '", format,
          "' (expected text or binary)");
}

void
saveTrace(const Trace &trace, const std::string &path,
          const std::string &format)
{
    if (format == "binary")
        okOrFatal(BinaryTraceFormat::writeFile(trace, path));
    else if (format == "text")
        okOrFatal(TextTraceFormat::writeFile(trace, path));
    else
        fatal("unknown trace format '", format, "'");
}

} // namespace

int
run(int argc, char **argv)
{
    OptionParser options(
        "trace_tool",
        "Generate, inspect and replay uatm memory traces.");
    options.addString("mode", "generate",
                      "generate | inspect | replay");
    options.addString("workload", "nasa7",
                      "profile name or 'shortlevy' (generate)");
    options.addInt("refs", 50000, "references to generate");
    options.addInt("seed", 1, "generator seed");
    options.addFlag("ifetch",
                    "interleave instruction fetches (generate)");
    options.addString("out", "trace.trc", "output path (generate)");
    options.addString("in", "trace.trc",
                      "input path (inspect/replay)");
    options.addString("format", "binary", "text | binary");
    options.addInt("cache-kb", 8, "cache capacity (replay)");
    options.addInt("assoc", 2, "associativity (replay)");
    options.addInt("line", 32, "line size (replay)");
    if (!options.parse(argc, argv))
        return 0;

    const std::string mode = options.getString("mode");
    const std::string format = options.getString("format");

    if (mode == "generate") {
        auto source = makeWorkload(
            options.getString("workload"),
            static_cast<std::uint64_t>(options.getInt("seed")),
            options.getFlag("ifetch"));
        Trace trace;
        const auto refs =
            static_cast<std::uint64_t>(options.getInt("refs"));
        for (std::uint64_t i = 0; i < refs; ++i) {
            auto ref = source->next();
            if (!ref)
                break;
            trace.append(*ref);
        }
        saveTrace(trace, options.getString("out"), format);
        std::printf("wrote %zu references (%llu instructions) to "
                    "%s\n",
                    trace.size(),
                    static_cast<unsigned long long>(
                        trace.instructionCount()),
                    options.getString("out").c_str());
        return 0;
    }

    if (mode == "inspect") {
        Trace trace = loadTrace(options.getString("in"), format);
        WorkloadProfile profile(32);
        trace.reset();
        while (auto ref = trace.next())
            profile.add(*ref);
        std::fputs(
            profile.format(options.getString("in")).c_str(),
            stdout);
        std::printf("  ifetch refs      = %llu\n",
                    static_cast<unsigned long long>(
                        trace.countKind(RefKind::IFetch)));
        return 0;
    }

    if (mode == "replay") {
        Trace trace = loadTrace(options.getString("in"), format);
        CacheConfig config;
        config.sizeBytes =
            static_cast<std::uint64_t>(options.getInt("cache-kb")) *
            1024;
        config.assoc =
            static_cast<std::uint32_t>(options.getInt("assoc"));
        config.lineBytes =
            static_cast<std::uint32_t>(options.getInt("line"));
        SetAssocCache cache(config);
        trace.reset();
        while (auto ref = trace.next())
            cache.access(*ref);

        std::printf("cache: %s\n%s",
                    config.describe().c_str(),
                    cache.stats().format(config.lineBytes).c_str());
        const Workload w = Workload::fromCacheRun(
            cache.stats(), config.lineBytes);
        std::printf("paper parameters: %s\n",
                    w.describe(config.lineBytes).c_str());
        return 0;
    }

    fatal("unknown mode '", mode,
          "' (expected generate, inspect or replay)");
}

int
main(int argc, char **argv)
{
    return examples::guardedMain(
        [&] { return run(argc, argv); });
}
