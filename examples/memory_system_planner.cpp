/**
 * @file
 * Memory-system planner (Secs. 4.4 and 5.3): given a memory part
 * with cycle time mu_m, decide between pipelining the memory,
 * doubling the bus, and adding read-bypassing write buffers —
 * using both the analytic crossover machinery and end-to-end
 * timing simulation of the candidate systems, the latter sharded
 * across --threads workers as a candidate-axis scenario.
 *
 * Example:
 *   ./build/examples/memory_system_planner --mu 12 --line 32 \
 *       --threads 4
 */

#include <algorithm>
#include <cstdio>
#include <string>

#include "core/tradeoff.hh"
#include "cpu/timing_engine.hh"
#include "exp/runner.hh"
#include "util/options.hh"

#include "example_cli.hh"

using namespace uatm;

static int
run(int argc, char **argv)
{
    OptionParser options(
        "memory_system_planner",
        "Rank pipelined memory, bus doubling and write buffers "
        "for a given memory cycle time.");
    examples::addWorkloadOptions(options, "nasa7", 21);
    options.addInt("mu", 12, "memory cycle time per bus transfer");
    options.addInt("line", 32, "cache line size in bytes");
    options.addInt("q", 2, "pipelined issue interval");
    options.addInt("refs", 120000, "references to simulate");
    examples::addRunnerOptions(options);
    if (!options.parse(argc, argv))
        return 0;
    const auto cli = examples::parseRunnerOptions(options);

    const auto workload = examples::parseWorkloadOptions(options);
    const double mu = static_cast<double>(options.getInt("mu"));
    const double line =
        static_cast<double>(options.getInt("line"));
    const double q = static_cast<double>(options.getInt("q"));

    TradeoffContext ctx;
    ctx.machine.busWidth = 4;
    ctx.machine.lineBytes = line;
    ctx.machine.cycleTime = mu;
    ctx.alpha = 0.5;

    if (cli.narrate()) {
        // 1. Analytic ranking at this operating point.
        std::printf("analytic ranking at %s (base HR 95 %%):\n",
                    ctx.machine.describe().c_str());
        const auto scores = rankFeatures(ctx, 0.95, 6.5, q);
        for (std::size_t i = 0; i < scores.size(); ++i) {
            std::printf("  %zu. %-15s r = %.3f  (worth %.2f %% "
                        "hit ratio)\n",
                        i + 1, scores[i].name.c_str(),
                        scores[i].missFactor,
                        scores[i].hitRatioTraded * 100);
        }

        // 2. Where does the pipelined system take over from the
        //    bus?
        if (const auto crossover = crossoverCycleTime(
                ctx, TradeFeature::PipelinedMemory,
                TradeFeature::DoubleBus, q, 1.0,
                std::max(2.0, q), 400.0)) {
            std::printf("\npipelined memory overtakes bus "
                        "doubling at mu_m = %.2f cycles — your "
                        "part is %s that point\n",
                        *crossover,
                        mu > *crossover ? "past" : "below");
        } else {
            std::printf("\npipelined memory never overtakes bus "
                        "doubling at this L/D (cf. Fig. 3)\n");
        }

        // 3. End-to-end confirmation with the timing engine.
        std::printf("\nend-to-end simulation (%s):\n",
                    workload.describe().c_str());
    }

    // One labelled axis: the candidate memory systems.  Each
    // candidate's label encodes (bus doubling, pipelining, write
    // buffering); the applier decodes it into the point's configs.
    exp::Scenario scenario("memory_system_candidates",
                           "candidate memory systems end to end");
    scenario.refs =
        static_cast<std::uint64_t>(options.getInt("refs"));
    scenario.workload = workload;
    scenario.cache.sizeBytes = 8 * 1024;
    scenario.cache.assoc = 2;
    scenario.cache.lineBytes = static_cast<std::uint32_t>(line);
    scenario.memory.cycleTime = static_cast<Cycles>(mu);
    scenario.memory.pipelineInterval = static_cast<Cycles>(q);
    scenario.cpu.feature = StallFeature::FS;
    scenario.writeBuffer.readBypass = true;

    enum Candidate { Base = 0, Wbuf, WideBus, Pipelined };
    scenario.sweepLabeled(
        "system",
        {{"baseline (FS, 32-bit)", Base},
         {"+ write buffers", Wbuf},
         {"+ 64-bit bus", WideBus},
         {"+ pipelined memory", Pipelined}},
        [](exp::Point &point, const exp::AxisValue &v) {
            switch (static_cast<Candidate>(
                static_cast<int>(v.value))) {
              case Base:
                break;
              case Wbuf:
                point.writeBuffer.depth = 8;
                break;
              case WideBus:
                point.memory.busWidthBytes = 8;
                break;
              case Pipelined:
                point.memory.pipelined = true;
                break;
            }
        });

    exp::Runner runner = cli.makeRunner();
    cli.emit(runner.run(
        scenario, {"cycles", "cpi", "mem_delay"},
        [](const exp::Point &point) {
            TimingEngine engine(point.cache, point.memory,
                                point.writeBuffer, point.cpu);
            auto workload = okOrThrow(point.workload.make());
            const auto stats = engine.run(*workload, point.refs);
            return std::vector<exp::Cell>{
                exp::Cell::integer(
                    static_cast<std::int64_t>(stats.cycles)),
                exp::Cell::num(stats.cpi(), 3),
                exp::Cell::num(stats.meanMemoryDelay(), 3)};
        }));
    return 0;
}

int
main(int argc, char **argv)
{
    return examples::guardedMain(
        [&] { return run(argc, argv); });
}
