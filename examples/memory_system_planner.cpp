/**
 * @file
 * Memory-system planner (Secs. 4.4 and 5.3): given a memory part
 * with cycle time mu_m, decide between pipelining the memory,
 * doubling the bus, and adding read-bypassing write buffers —
 * using both the analytic crossover machinery and end-to-end
 * timing simulation of the candidate systems.
 *
 * Example:
 *   ./build/examples/memory_system_planner --mu 12 --line 32
 */

#include <cstdio>
#include <string>

#include "core/tradeoff.hh"
#include "cpu/timing_engine.hh"
#include "trace/generators.hh"
#include "util/options.hh"
#include "util/table.hh"

using namespace uatm;

int
main(int argc, char **argv)
{
    OptionParser options(
        "memory_system_planner",
        "Rank pipelined memory, bus doubling and write buffers "
        "for a given memory cycle time.");
    options.addString("workload", "nasa7", "SPEC92-like profile");
    options.addInt("mu", 12, "memory cycle time per bus transfer");
    options.addInt("line", 32, "cache line size in bytes");
    options.addInt("q", 2, "pipelined issue interval");
    options.addInt("refs", 120000, "references to simulate");
    if (!options.parse(argc, argv))
        return 0;

    const double mu = static_cast<double>(options.getInt("mu"));
    const double line =
        static_cast<double>(options.getInt("line"));
    const double q = static_cast<double>(options.getInt("q"));

    TradeoffContext ctx;
    ctx.machine.busWidth = 4;
    ctx.machine.lineBytes = line;
    ctx.machine.cycleTime = mu;
    ctx.alpha = 0.5;

    // 1. Analytic ranking at this operating point.
    std::printf("analytic ranking at %s (base HR 95 %%):\n",
                ctx.machine.describe().c_str());
    const auto scores = rankFeatures(ctx, 0.95, 6.5, q);
    for (std::size_t i = 0; i < scores.size(); ++i) {
        std::printf("  %zu. %-15s r = %.3f  (worth %.2f %% hit "
                    "ratio)\n",
                    i + 1, scores[i].name.c_str(),
                    scores[i].missFactor,
                    scores[i].hitRatioTraded * 100);
    }

    // 2. Where does the pipelined system take over from the bus?
    if (const auto crossover = crossoverCycleTime(
            ctx, TradeFeature::PipelinedMemory,
            TradeFeature::DoubleBus, q, 1.0, std::max(2.0, q),
            400.0)) {
        std::printf("\npipelined memory overtakes bus doubling at "
                    "mu_m = %.2f cycles — your part is %s that "
                    "point\n",
                    *crossover, mu > *crossover ? "past" : "below");
    } else {
        std::printf("\npipelined memory never overtakes bus "
                    "doubling at this L/D (cf. Fig. 3)\n");
    }

    // 3. End-to-end confirmation with the timing engine.
    std::printf("\nend-to-end simulation (%s):\n",
                options.getString("workload").c_str());
    TextTable table({"system", "cycles", "CPI", "mem delay"});
    const auto refs =
        static_cast<std::uint64_t>(options.getInt("refs"));

    struct Candidate
    {
        const char *name;
        std::uint32_t bus;
        bool pipelined;
        std::uint32_t wbuf;
    };
    const Candidate candidates[] = {
        {"baseline (FS, 32-bit)", 4, false, 0},
        {"+ write buffers", 4, false, 8},
        {"+ 64-bit bus", 8, false, 0},
        {"+ pipelined memory", 4, true, 0},
    };
    for (const auto &candidate : candidates) {
        CacheConfig cache;
        cache.sizeBytes = 8 * 1024;
        cache.assoc = 2;
        cache.lineBytes = static_cast<std::uint32_t>(line);

        MemoryConfig mem;
        mem.busWidthBytes = candidate.bus;
        mem.cycleTime = static_cast<Cycles>(mu);
        mem.pipelined = candidate.pipelined;
        mem.pipelineInterval = static_cast<Cycles>(q);

        CpuConfig cpu;
        cpu.feature = StallFeature::FS;

        TimingEngine engine(
            cache, mem, WriteBufferConfig{candidate.wbuf, true},
            cpu);
        auto workload = Spec92Profile::make(
            options.getString("workload"), 21);
        const auto stats = engine.run(*workload, refs);
        table.addRow({candidate.name,
                      std::to_string(stats.cycles),
                      TextTable::num(stats.cpi(), 3),
                      TextTable::num(stats.meanMemoryDelay(), 3)});
    }
    std::fputs(table.render().c_str(), stdout);
    return 0;
}
