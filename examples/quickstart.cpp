/**
 * @file
 * Quickstart: the unified tradeoff methodology in ~60 lines.
 *
 * Question: my processor has a 32-bit external bus, 32-byte cache
 * lines, an 8-cycle memory, and a 95 %-hit full-blocking cache.
 * What is each architectural feature worth, measured in cache hit
 * ratio — the paper's common currency?
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "core/equivalence.hh"
#include "core/tradeoff.hh"

int
main()
{
    using namespace uatm;

    // 1. Describe the base machine (Sec. 3 vocabulary).
    TradeoffContext ctx;
    ctx.machine.busWidth = 4;    // D: 32-bit external data bus
    ctx.machine.lineBytes = 32;  // L
    ctx.machine.cycleTime = 8;   // mu_m, CPU cycles per D bytes
    ctx.alpha = 0.5;             // flush ratio (paper's default)

    const double base_hr = 0.95;

    // 2. Ask what each feature trades (Eqs. 3 and 6 / Table 3).
    std::printf("base machine: %s @ HR = %.0f %%\n\n",
                ctx.machine.describe().c_str(), base_hr * 100);
    std::printf("%-22s %8s %14s %18s\n", "feature", "r",
                "dHR traded", "equivalent HR");

    const auto report = [&](const char *name, double r) {
        std::printf("%-22s %8.3f %12.2f %% %16.2f %%\n", name, r,
                    hitRatioTraded(r, base_hr) * 100,
                    equivalentHitRatio(r, base_hr) * 100);
    };
    report("double the bus", missFactorDoubleBus(ctx));
    report("write buffers", missFactorWriteBuffers(ctx));
    report("BNL cache (phi=6.5)", missFactorPartialStall(ctx, 6.5));
    report("pipelined mem (q=2)", missFactorPipelined(ctx, 2.0));

    // 3. Equal-performance designs (Sec. 5.2): what cache does a
    //    64-bit version of this machine need?
    DesignPoint narrow{ctx.machine, base_hr};
    const DesignPoint wide =
        equivalentDoubleBusDesign(narrow, ctx.alpha);
    std::printf("\n%s  ==  %s\n", narrow.describe().c_str(),
                wide.describe().c_str());

    // 4. Check the equivalence end to end through Eq. 2.
    ApplicationShape app; // 1M instructions, 300k data refs
    std::printf("execution time: %.0f vs %.0f cycles\n",
                designExecutionTime(narrow, app),
                designExecutionTime(wide, app));
    return 0;
}
