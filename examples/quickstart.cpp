/**
 * @file
 * Quickstart: the unified tradeoff methodology in ~60 lines.
 *
 * Question: my processor has a 32-bit external bus, 32-byte cache
 * lines, an 8-cycle memory, and a 95 %-hit full-blocking cache.
 * What is each architectural feature worth, measured in cache hit
 * ratio — the paper's common currency?
 *
 * The comparison runs as a declarative scenario through the
 * sharded runner, so the same grid scales out with --threads and
 * re-emits as CSV/JSON with --format.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 *   ./build/examples/quickstart --format csv --out grid.csv
 */

#include <cstdio>

#include "cache/sweep.hh"
#include "core/equivalence.hh"
#include "exp/scenarios.hh"
#include "util/options.hh"

#include "example_cli.hh"

static int
run(int argc, char **argv)
{
    using namespace uatm;

    OptionParser options(
        "quickstart",
        "Price each architectural feature in hit ratio (Table 3).");
    options.addInt("mu", 8, "memory cycle time per bus transfer");
    options.addDouble("hit-ratio", 0.95,
                      "base hit ratio (ignored when --workload "
                      "names a real generator)");
    examples::addWorkloadOptions(options, "none", 1);
    examples::addRunnerOptions(options);
    if (!options.parse(argc, argv))
        return 0;
    const auto cli = examples::parseRunnerOptions(options);
    const auto workload = examples::parseWorkloadOptions(options);

    // 1. Describe the base machine (Sec. 3 vocabulary).
    exp::FeatureGrid grid;
    grid.ctx.machine.busWidth = 4;   // D: 32-bit external data bus
    grid.ctx.machine.lineBytes = 32; // L
    grid.ctx.alpha = 0.5;            // flush ratio (paper default)
    grid.baseHitRatio = options.getDouble("hit-ratio");
    if (!workload.isNone()) {
        // Measure the base hit ratio from the named workload
        // instead of taking --hit-ratio on faith.
        CacheConfig cache;
        cache.sizeBytes = 8 * 1024;
        cache.assoc = 2;
        cache.lineBytes = 32;
        auto source = valueOrFatal(workload.make());
        grid.baseHitRatio =
            runCacheSim(cache, *source, 120000, 12000).hitRatio();
        if (cli.narrate())
            std::printf("measured HR for %s: %.2f %%\n",
                        workload.describe().c_str(),
                        grid.baseHitRatio * 100);
    }
    grid.phiPartial = 6.5; // measured BNL phi (cf. Figure 1)
    grid.q = 2.0;
    grid.cycleTimes = {
        static_cast<double>(options.getInt("mu"))};

    if (cli.narrate())
        std::printf("base machine: %s @ HR = %.0f %%\n\n",
                    grid.ctx.machine
                        .withCycleTime(grid.cycleTimes.front())
                        .describe()
                        .c_str(),
                    grid.baseHitRatio * 100);

    // 2. Ask what each feature trades (Eqs. 3 and 6 / Table 3),
    //    as a scenario through the runner.
    exp::Runner runner = cli.makeRunner();
    cli.emit(exp::runFeatureGrid(grid, runner));

    if (!cli.narrate())
        return 0;

    // 3. Equal-performance designs (Sec. 5.2): what cache does a
    //    64-bit version of this machine need?
    TradeoffContext ctx = grid.ctx;
    ctx.machine =
        grid.ctx.machine.withCycleTime(grid.cycleTimes.front());
    DesignPoint narrow{ctx.machine, grid.baseHitRatio};
    const DesignPoint wide =
        equivalentDoubleBusDesign(narrow, ctx.alpha);
    std::printf("\n%s  ==  %s\n", narrow.describe().c_str(),
                wide.describe().c_str());

    // 4. Check the equivalence end to end through Eq. 2.
    ApplicationShape app; // 1M instructions, 300k data refs
    std::printf("execution time: %.0f vs %.0f cycles\n",
                designExecutionTime(narrow, app),
                designExecutionTime(wide, app));
    return 0;
}

int
main(int argc, char **argv)
{
    return uatm::examples::guardedMain(
        [&] { return run(argc, argv); });
}
