/**
 * @file
 * Pin-budget planner (Sec. 5.2's pin-count / chip-area argument):
 * a 64-bit external bus costs ~32 extra signal pins; an on-chip
 * cache costs area.  Given a hit-ratio-vs-size curve (measured
 * from a workload), this tool answers: at each cache size, is the
 * next performance increment cheaper in pins (wider bus) or in
 * area (bigger cache)?
 *
 * Reproduces the paper's observation that doubling a *small*
 * cache beats widening the bus, while for a *large* cache the
 * wider bus trades for a lot of area.  The size sweep shards
 * across --threads workers.
 *
 * Example:
 *   ./build/examples/pin_budget_planner --workload ear --mu 12 \
 *       --threads 4
 */

#include <algorithm>
#include <cstdio>
#include <string>

#include "core/equivalence.hh"
#include "exp/scenarios.hh"
#include "util/options.hh"

#include "example_cli.hh"

using namespace uatm;

static int
run(int argc, char **argv)
{
    OptionParser options(
        "pin_budget_planner",
        "Compare spending pins (bus width) vs chip area (cache "
        "size) at each design point.");
    examples::addWorkloadOptions(options, "ear", 5);
    options.addInt("mu", 12, "memory cycle time per bus transfer");
    options.addInt("refs", 150000, "references to simulate");
    examples::addRunnerOptions(options);
    if (!options.parse(argc, argv))
        return 0;
    const auto cli = examples::parseRunnerOptions(options);

    // 1. Measure the size -> hit-ratio curve for this workload,
    //    one simulation per size, sharded by the runner.
    CacheConfig base;
    base.assoc = 2;
    base.lineBytes = 32;
    const std::vector<std::uint64_t> sizes = {
        4096, 8192, 16384, 32768, 65536, 131072, 262144};
    const auto refs =
        static_cast<std::uint64_t>(options.getInt("refs"));
    const auto sweep = exp::sweepCacheSizeParallel(
        base, examples::parseWorkloadOptions(options), sizes,
        refs, refs / 10, cli.threads);

    std::vector<SizePoint> anchors;
    for (const auto &point : sweep) {
        const double hr =
            anchors.empty()
                ? point.hitRatio
                : std::max(point.hitRatio,
                           anchors.back().hitRatio);
        anchors.push_back(SizePoint{point.value, hr});
    }
    const CacheSizeModel curve(anchors);

    // 2. At each size: the cache size whose hit ratio equals the
    //    performance of doubling the bus instead (Eq. 7).
    const double mu = static_cast<double>(options.getInt("mu"));
    exp::ResultTable table("pin_budget",
                           {"cache", "hr_pct", "bus_equiv_cache",
                            "area_factor", "verdict"});
    for (const auto &anchor : anchors) {
        if (anchor.sizeBytes == anchors.back().sizeBytes)
            break;
        DesignPoint wide;
        wide.machine.busWidth = 8;
        wide.machine.lineBytes = 32;
        wide.machine.cycleTime = mu;
        wide.hitRatio = anchor.hitRatio;
        const DesignPoint narrow =
            equivalentNarrowBusDesign(wide, 0.5);
        // The curve may saturate before reaching the required hit
        // ratio: then no buildable cache matches the wider bus.
        const bool saturated =
            narrow.hitRatio > anchors.back().hitRatio;
        const double equal_size =
            curve.sizeForHitRatio(narrow.hitRatio);
        const double factor =
            equal_size / static_cast<double>(anchor.sizeBytes);
        const bool area_cheap = !saturated && factor <= 4.0;
        table.addRow(
            {exp::Cell::text(
                 std::to_string(anchor.sizeBytes / 1024) + "K"),
             exp::Cell::num(anchor.hitRatio * 100, 2),
             saturated
                 ? exp::Cell::text("none (curve saturated)")
                 : exp::Cell::num(equal_size / 1024.0, 1),
             saturated ? exp::Cell::text("-")
                       : exp::Cell::num(factor, 2),
             exp::Cell::text(
                 area_cheap ? "grow the cache, save the pins"
                            : "widen the bus, save the area")});
    }
    cli.emit(table);

    if (cli.narrate())
        std::printf(
            "\nInterpretation (Sec. 5.2): the \"bus-equivalent "
            "cache\" column is the capacity (KB) a 32-bit design "
            "needs to match a 64-bit design at the row's size.  "
            "Small caches trade up cheaply (2-4x area beats 32 "
            "pins); once the curve flattens, the same pins buy "
            "more than any affordable area.\n");
    return 0;
}

int
main(int argc, char **argv)
{
    return examples::guardedMain(
        [&] { return run(argc, argv); });
}
