/**
 * @file
 * Pin-budget planner (Sec. 5.2's pin-count / chip-area argument):
 * a 64-bit external bus costs ~32 extra signal pins; an on-chip
 * cache costs area.  Given a hit-ratio-vs-size curve (measured
 * from a workload), this tool answers: at each cache size, is the
 * next performance increment cheaper in pins (wider bus) or in
 * area (bigger cache)?
 *
 * Reproduces the paper's observation that doubling a *small*
 * cache beats widening the bus, while for a *large* cache the
 * wider bus trades for a lot of area.
 *
 * Example:
 *   ./build/examples/pin_budget_planner --workload ear --mu 12
 */

#include <cstdio>
#include <string>

#include "cache/sweep.hh"
#include "core/equivalence.hh"
#include "trace/generators.hh"
#include "util/options.hh"
#include "util/table.hh"

using namespace uatm;

int
main(int argc, char **argv)
{
    OptionParser options(
        "pin_budget_planner",
        "Compare spending pins (bus width) vs chip area (cache "
        "size) at each design point.");
    options.addString("workload", "ear", "SPEC92-like profile");
    options.addInt("mu", 12, "memory cycle time per bus transfer");
    options.addInt("refs", 150000, "references to simulate");
    if (!options.parse(argc, argv))
        return 0;

    // 1. Measure the size -> hit-ratio curve for this workload.
    CacheConfig base;
    base.assoc = 2;
    base.lineBytes = 32;
    auto workload =
        Spec92Profile::make(options.getString("workload"), 5);
    const std::vector<std::uint64_t> sizes = {
        4096, 8192, 16384, 32768, 65536, 131072, 262144};
    const auto refs =
        static_cast<std::uint64_t>(options.getInt("refs"));
    const auto sweep =
        sweepCacheSize(base, *workload, sizes, refs, refs / 10);

    std::vector<SizePoint> anchors;
    for (const auto &point : sweep) {
        const double hr =
            anchors.empty()
                ? point.hitRatio
                : std::max(point.hitRatio,
                           anchors.back().hitRatio);
        anchors.push_back(SizePoint{point.value, hr});
    }
    const CacheSizeModel curve(anchors);

    // 2. At each size: the cache size whose hit ratio equals the
    //    performance of doubling the bus instead (Eq. 7).
    const double mu = static_cast<double>(options.getInt("mu"));
    TextTable table({"cache", "HR %", "bus-equivalent cache",
                     "area factor", "verdict (vs ~32 pins)"});
    for (const auto &anchor : anchors) {
        if (anchor.sizeBytes == anchors.back().sizeBytes)
            break;
        DesignPoint wide;
        wide.machine.busWidth = 8;
        wide.machine.lineBytes = 32;
        wide.machine.cycleTime = mu;
        wide.hitRatio = anchor.hitRatio;
        const DesignPoint narrow =
            equivalentNarrowBusDesign(wide, 0.5);
        // The curve may saturate before reaching the required hit
        // ratio: then no buildable cache matches the wider bus.
        const bool saturated =
            narrow.hitRatio > anchors.back().hitRatio;
        const double equal_size =
            curve.sizeForHitRatio(narrow.hitRatio);
        const double factor =
            equal_size / static_cast<double>(anchor.sizeBytes);
        const bool area_cheap = !saturated && factor <= 4.0;
        table.addRow(
            {std::to_string(anchor.sizeBytes / 1024) + "K",
             TextTable::num(anchor.hitRatio * 100, 2),
             saturated ? "none (curve saturated)"
                       : TextTable::num(equal_size / 1024.0, 1) +
                             "K",
             saturated ? "-" : TextTable::num(factor, 2) + "x",
             area_cheap ? "grow the cache, save the pins"
                        : "widen the bus, save the area"});
    }
    std::fputs(table.render().c_str(), stdout);

    std::printf(
        "\nInterpretation (Sec. 5.2): the \"bus-equivalent "
        "cache\" is the capacity a 32-bit design needs to match "
        "a 64-bit design at the row's size.  Small caches trade "
        "up cheaply (2-4x area beats 32 pins); once the curve "
        "flattens, the same pins buy more than any affordable "
        "area.\n");
    return 0;
}
