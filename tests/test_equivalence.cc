/**
 * @file
 * Unit tests for design-point equivalence (Sec. 4.5 / Example 1)
 * and the cache-size model.
 */

#include <gtest/gtest.h>

#include "core/equivalence.hh"

namespace uatm {
namespace {

DesignPoint
basePoint(double mu_m = 1e6)
{
    DesignPoint p;
    p.machine.busWidth = 4;
    p.machine.lineBytes = 32;
    p.machine.cycleTime = mu_m;
    p.hitRatio = 0.91;
    return p;
}

// ------------------------------------------------------- CacheSizeModel

TEST(CacheSizeModel, InterpolatesAnchors)
{
    const auto model = CacheSizeModel::shortLevy();
    EXPECT_NEAR(model.hitRatioForSize(8 * 1024), 0.910, 1e-12);
    EXPECT_NEAR(model.hitRatioForSize(32 * 1024), 0.955, 1e-12);
    // Log-linear midpoint between 8K and 32K is 16K.
    EXPECT_NEAR(model.hitRatioForSize(16 * 1024),
                (0.910 + 0.955) / 2.0, 1e-12);
}

TEST(CacheSizeModel, ClampsOutsideRange)
{
    const auto model = CacheSizeModel::shortLevy();
    EXPECT_NEAR(model.hitRatioForSize(1024), 0.910, 1e-12);
    EXPECT_NEAR(model.hitRatioForSize(1 << 24), 0.9775, 1e-12);
}

TEST(CacheSizeModel, InverseRoundTrips)
{
    const auto model = CacheSizeModel::shortLevy();
    for (double hr : {0.92, 0.94, 0.955, 0.97}) {
        const double size = model.sizeForHitRatio(hr);
        EXPECT_NEAR(model.hitRatioForSize(size), hr, 1e-9);
    }
}

TEST(CacheSizeModel, RejectsUnsortedAnchors)
{
    EXPECT_EXIT(
        {
            CacheSizeModel bad({SizePoint{1024, 0.9},
                                SizePoint{512, 0.95}});
        },
        ::testing::ExitedWithCode(EXIT_FAILURE), "ascending");
}

TEST(CacheSizeModel, RejectsDecreasingHitRatio)
{
    EXPECT_EXIT(
        {
            CacheSizeModel bad({SizePoint{512, 0.95},
                                SizePoint{1024, 0.9}});
        },
        ::testing::ExitedWithCode(EXIT_FAILURE),
        "non-decreasing");
}

// ----------------------------------------------------------- DesignPoint

TEST(DesignPoint, ExecutionTimeMatchesDirectModel)
{
    const DesignPoint p = basePoint(8);
    ApplicationShape app;
    const Workload w = Workload::fromHitRatio(
        app.instructions, app.dataRefs, p.hitRatio,
        p.machine.lineBytes, app.alpha);
    EXPECT_DOUBLE_EQ(designExecutionTime(p, app),
                     executionTimeFS(w, p.machine));
}

TEST(DesignPoint, DescribeShowsHitRatio)
{
    EXPECT_NE(basePoint().describe().find("HR="),
              std::string::npos);
}

// ----------------------------------------------- equivalent designs

TEST(Equivalence, DoubleBusDesignHasEqualExecutionTime)
{
    ApplicationShape app;
    for (double mu : {2.0, 5.0, 11.0}) {
        const DesignPoint narrow = basePoint(mu);
        const DesignPoint wide =
            equivalentDoubleBusDesign(narrow, app.alpha);
        EXPECT_DOUBLE_EQ(wide.machine.busWidth, 8.0);
        EXPECT_LT(wide.hitRatio, narrow.hitRatio);
        EXPECT_NEAR(designExecutionTime(narrow, app),
                    designExecutionTime(wide, app),
                    designExecutionTime(narrow, app) * 1e-10)
            << "mu_m = " << mu;
    }
}

TEST(Equivalence, NarrowBusDesignNeedsHigherHitRatio)
{
    ApplicationShape app;
    DesignPoint wide = basePoint(1e6);
    wide.machine.busWidth = 8;
    wide.hitRatio = 0.91;
    const DesignPoint narrow =
        equivalentNarrowBusDesign(wide, app.alpha);
    EXPECT_DOUBLE_EQ(narrow.machine.busWidth, 4.0);
    EXPECT_GT(narrow.hitRatio, wide.hitRatio);
    EXPECT_NEAR(designExecutionTime(narrow, app),
                designExecutionTime(wide, app),
                designExecutionTime(wide, app) * 1e-6);
}

TEST(Equivalence, RoundTripNarrowThenWide)
{
    ApplicationShape app;
    const DesignPoint narrow = basePoint(9);
    const DesignPoint wide =
        equivalentDoubleBusDesign(narrow, app.alpha);
    const DesignPoint back =
        equivalentNarrowBusDesign(wide, app.alpha);
    EXPECT_NEAR(back.hitRatio, narrow.hitRatio, 1e-9);
}

TEST(Equivalence, MeanMemoryDelayAlsoMatches)
{
    // Sec. 4.5: equal X implies equal mean memory delay.
    ApplicationShape app;
    const DesignPoint narrow = basePoint(6);
    const DesignPoint wide =
        equivalentDoubleBusDesign(narrow, app.alpha);
    EXPECT_NEAR(designMeanMemoryDelay(narrow, app),
                designMeanMemoryDelay(wide, app), 1e-9);
}

// ------------------------------------------------- Example 1 of the paper

TEST(Example1, Case1EightKWithWideBusMatches32KNarrow)
{
    // Case 1: 64-bit bus + 8K cache == 32-bit bus + 32K cache.
    // Short & Levy: 8K -> 91 %, 32K -> 95.5 %; the paper applies
    // the large-mu_m limit where the gain is 0.5 (1 - HR).
    const auto sizes = CacheSizeModel::shortLevy();

    DesignPoint wide;
    wide.machine.busWidth = 8;
    wide.machine.lineBytes = 32;
    wide.machine.cycleTime = 1e7; // the paper's limit regime
    wide.hitRatio = sizes.hitRatioForSize(8 * 1024);

    const DesignPoint narrow =
        equivalentNarrowBusDesign(wide, 0.5);
    // The narrow design needs HR ~ 95.5 %, i.e. a ~32K cache.
    EXPECT_NEAR(narrow.hitRatio, 0.955, 1e-3);
    const double size = designCacheSize(narrow, sizes);
    EXPECT_NEAR(size, 32.0 * 1024, 0.05 * 32 * 1024);
}

TEST(Example1, Case2ThirtyTwoKWideMatches128KNarrow)
{
    const auto sizes = CacheSizeModel::shortLevy();
    DesignPoint wide;
    wide.machine.busWidth = 8;
    wide.machine.lineBytes = 32;
    wide.machine.cycleTime = 1e7;
    wide.hitRatio = sizes.hitRatioForSize(32 * 1024);

    const DesignPoint narrow =
        equivalentNarrowBusDesign(wide, 0.5);
    EXPECT_NEAR(narrow.hitRatio, 0.9775, 1e-3);
    EXPECT_NEAR(designCacheSize(narrow, sizes), 128.0 * 1024,
                0.05 * 128 * 1024);
}

TEST(Equivalence, ImpossibleCompensationIsFatal)
{
    // Halving the bus at a hit ratio so high that no physical hit
    // ratio can compensate must be rejected...  with HR2 close to
    // 1 the required gain stays below 1 - HR2, so instead check
    // the precondition on the bus width.
    DesignPoint tiny = basePoint();
    tiny.machine.busWidth = 4;
    EXPECT_DEATH(
        { equivalentNarrowBusDesign(tiny, 0.5); }, "halve");
}

} // namespace
} // namespace uatm
