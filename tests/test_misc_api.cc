/**
 * @file
 * Tests for the remaining public-API surface: the umbrella header,
 * the Short & Levy workload mix, W transfer accounting, name
 * helpers and describe() strings.
 */

#include <gtest/gtest.h>

#include "uatm.hh"

namespace uatm {
namespace {

TEST(UmbrellaHeader, EverythingIsReachable)
{
    // Touch one symbol from each module through the single
    // include above; compiling this file is most of the test.
    Rng rng(1);
    (void)rng();
    Trace trace;
    EXPECT_TRUE(trace.empty());
    CacheConfig cache;
    EXPECT_TRUE(cache.validate().ok());
    MemoryConfig memory;
    EXPECT_TRUE(memory.validate().ok());
    Machine machine;
    EXPECT_TRUE(machine.validate().ok());
    LineDelayModel delay;
    delay.validate();
    CacheAreaModel area;
    area.validate();
    SUCCEED();
}

// ------------------------------------------------ ShortLevyWorkload

TEST(ShortLevy, DeterministicFromSeed)
{
    auto a = ShortLevyWorkload::make(5);
    auto b = ShortLevyWorkload::make(5);
    EXPECT_EQ(a->drain(400), b->drain(400));
}

TEST(ShortLevy, CurveRisesThroughTheExampleRange)
{
    // The whole point of the mix: the size -> HR curve rises
    // meaningfully from 8K through 128K, like [14]'s data.
    auto workload = ShortLevyWorkload::make(42);
    CacheConfig base;
    base.assoc = 2;
    base.lineBytes = 32;
    const auto points = sweepCacheSize(
        base, *workload, {8192, 32768, 131072}, 60000, 6000);
    ASSERT_EQ(points.size(), 3u);
    EXPECT_GT(points[1].hitRatio, points[0].hitRatio + 0.02);
    EXPECT_GT(points[2].hitRatio, points[1].hitRatio + 0.005);
    EXPECT_GT(points[0].hitRatio, 0.80);
    EXPECT_LT(points[2].hitRatio, 1.0);
}

// --------------------------------------------------- writeTransfers

TEST(WriteTransfers, EqualsCountWhenStoresFitTheBus)
{
    CacheStats stats;
    stats.storesToMemory = 10;
    stats.storesToMemoryBytes = 40; // 4B stores on a 4B bus
    EXPECT_DOUBLE_EQ(stats.writeTransfers(4), 10.0);
}

TEST(WriteTransfers, WideStoresNeedMultipleTransfers)
{
    CacheStats stats;
    stats.storesToMemory = 10;
    stats.storesToMemoryBytes = 80; // 8B stores on a 4B bus
    EXPECT_DOUBLE_EQ(stats.writeTransfers(4), 20.0);
    // On an 8-byte bus they fit again.
    EXPECT_DOUBLE_EQ(stats.writeTransfers(8), 10.0);
}

TEST(WriteTransfers, SubBusStoresStillCostOneEach)
{
    CacheStats stats;
    stats.storesToMemory = 10;
    stats.storesToMemoryBytes = 20; // 2B stores
    EXPECT_DOUBLE_EQ(stats.writeTransfers(4), 10.0);
}

TEST(WriteTransfers, WorkloadKeepsBothViews)
{
    CacheStats stats;
    stats.accesses = 100;
    stats.instructions = 400;
    stats.fills = 5;
    stats.storesToMemory = 10;
    stats.storesToMemoryBytes = 80;
    const Workload w = Workload::fromCacheRun(stats, 32, 4);
    // Lambda_m counts instructions; the W term counts transfers.
    EXPECT_DOUBLE_EQ(w.writeArounds, 10.0);
    EXPECT_DOUBLE_EQ(w.writeTransferCount(), 20.0);
    EXPECT_DOUBLE_EQ(w.lambdaM(32), 15.0);
}

// -------------------------------------------------------- name helpers

TEST(Names, PrefetchPolicies)
{
    EXPECT_STREQ(prefetchPolicyName(PrefetchPolicy::None), "none");
    EXPECT_STREQ(prefetchPolicyName(PrefetchPolicy::OnMiss),
                 "on-miss");
    EXPECT_STREQ(prefetchPolicyName(PrefetchPolicy::Tagged),
                 "tagged");
}

TEST(Names, TradeFeatures)
{
    EXPECT_STREQ(tradeFeatureName(TradeFeature::DoubleBus),
                 "doubling bus");
    EXPECT_STREQ(tradeFeatureName(TradeFeature::PipelinedMemory),
                 "pipelined mem");
}

TEST(Names, StallFeatureParserRoundTrips)
{
    for (StallFeature f :
         {StallFeature::FS, StallFeature::BL, StallFeature::BNL1,
          StallFeature::BNL2, StallFeature::BNL3,
          StallFeature::NB}) {
        EXPECT_EQ(parseStallFeature(stallFeatureName(f)), f);
    }
}

TEST(Describe, VictimHierarchy)
{
    CacheConfig config;
    VictimCachedHierarchy cache(config, VictimConfig{4});
    EXPECT_NE(cache.describe().find("victim buffer"),
              std::string::npos);
}

TEST(Describe, MachineAndWorkload)
{
    Machine m;
    EXPECT_NE(m.describe().find("mu_m"), std::string::npos);
    EXPECT_NE(m.withPipelining(2).describe().find("pipelined"),
              std::string::npos);
}

// ------------------------------------------------ victim pricing

TEST(VictimPricing, FactorGrowsWithHitFraction)
{
    TradeoffContext ctx;
    ctx.machine.busWidth = 4;
    ctx.machine.lineBytes = 32;
    ctx.machine.cycleTime = 8;
    double previous = 0.0;
    for (double f : {0.0, 0.2, 0.5, 0.8}) {
        const double r = missFactorVictim(ctx, f, 2.0);
        EXPECT_GT(r, previous - 1e-12) << f;
        previous = r;
    }
    // f = 0 changes nothing.
    EXPECT_NEAR(missFactorVictim(ctx, 0.0, 2.0), 1.0, 1e-12);
}

TEST(VictimPricing, ComparableToOtherFeatures)
{
    // A buffer catching 60 % of misses at a 2-cycle swap is worth
    // more hit ratio than read-bypassing write buffers here.
    TradeoffContext ctx;
    ctx.machine.busWidth = 4;
    ctx.machine.lineBytes = 32;
    ctx.machine.cycleTime = 8;
    EXPECT_GT(missFactorVictim(ctx, 0.6, 2.0),
              missFactorWriteBuffers(ctx));
}

TEST(VictimPricing, RejectsSwapDearerThanMiss)
{
    TradeoffContext ctx;
    ctx.machine.busWidth = 4;
    ctx.machine.lineBytes = 32;
    ctx.machine.cycleTime = 2;
    try {
        missFactorVictim(ctx, 0.5, 1000.0);
        FAIL() << "expected StatusError";
    } catch (const StatusError &e) {
        EXPECT_EQ(e.status().code(), ErrorCode::InvalidArgument);
        EXPECT_NE(e.status().message().find("cheaper"),
                  std::string::npos);
    }
}

// --------------------------------------------------- stat counters

TEST(StatCounters, MirrorTheBreakdown)
{
    TimingStats stats;
    stats.cycles = 100;
    stats.fills = 7;
    stats.prefetchesIssued = 3;
    const CounterGroup group = stats.counters();
    EXPECT_EQ(group.value("sim.cycles"), 100u);
    EXPECT_EQ(group.value("sim.fills"), 7u);
    EXPECT_EQ(group.value("prefetch.issued"), 3u);
    EXPECT_NE(group.format().find("stall.flush"),
              std::string::npos);
}

// --------------------------------------------------- engine + victim?

TEST(Composition, SampledProfileStillDrivesTheEngine)
{
    // Transforms compose with the engine: a 1-in-4 sampled trace
    // runs end to end and E is (approximately) preserved per
    // survivor's folded gaps.
    auto sampled = std::make_unique<SampleSource>(
        Spec92Profile::make("swm256", 17), 4);
    CacheConfig cache;
    cache.sizeBytes = 8 * 1024;
    cache.assoc = 2;
    cache.lineBytes = 32;
    MemoryConfig mem;
    mem.busWidthBytes = 4;
    mem.cycleTime = 8;
    CpuConfig cpu;
    cpu.feature = StallFeature::FS;
    TimingEngine engine(cache, mem, WriteBufferConfig{0, true},
                        cpu);
    const auto stats = engine.run(*sampled, 5000);
    EXPECT_EQ(stats.references, 5000u);
    // Each survivor carries ~4 instructions on average.
    EXPECT_GT(stats.instructions, 4u * 5000u);
}

} // namespace
} // namespace uatm
