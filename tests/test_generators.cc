/**
 * @file
 * Unit and property tests for the synthetic workload generators.
 */

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "trace/generators.hh"
#include "trace/ifetch.hh"
#include "trace/reuse_distance.hh"
#include "trace/trace_stats.hh"
#include "trace/transform.hh"
#include "trace/ycsb.hh"

namespace uatm {
namespace {

// ---------------------------------------------------------------- GapModel

TEST(GapModel, SampleWithinBounds)
{
    Rng rng(1);
    GapModel gap{2, 5};
    for (int i = 0; i < 1000; ++i) {
        const auto g = gap.sample(rng);
        EXPECT_GE(g, 2u);
        EXPECT_LE(g, 5u);
    }
}

TEST(GapModel, DegenerateRangeIsConstant)
{
    Rng rng(1);
    GapModel gap{3, 3};
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(gap.sample(rng), 3u);
}

// ---------------------------------------------------------- StrideGenerator

TEST(StrideGenerator, WalksWithFixedStride)
{
    StrideGenerator::Config config;
    config.base = 0x1000;
    config.elements = 8;
    config.elemSize = 8;
    config.strideBytes = 8;
    config.storeFraction = 0.0;
    config.gap = {1, 1};
    StrideGenerator gen(config, Rng(1));

    for (int pass = 0; pass < 2; ++pass) {
        for (std::uint64_t i = 0; i < 8; ++i) {
            const auto ref = gen.next();
            ASSERT_TRUE(ref.has_value());
            EXPECT_EQ(ref->addr, 0x1000 + 8 * i);
            EXPECT_EQ(ref->kind, RefKind::Load);
        }
    }
}

TEST(StrideGenerator, ResetReplaysIdentically)
{
    StrideGenerator::Config config;
    config.storeFraction = 0.5;
    StrideGenerator gen(config, Rng(7));
    const auto first = gen.drain(50);
    gen.reset();
    const auto second = gen.drain(50);
    EXPECT_EQ(first, second);
}

TEST(StrideGenerator, StoreFractionRespected)
{
    StrideGenerator::Config config;
    config.storeFraction = 0.4;
    StrideGenerator gen(config, Rng(3));
    int stores = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        stores += gen.next()->kind == RefKind::Store;
    EXPECT_NEAR(static_cast<double>(stores) / n, 0.4, 0.03);
}

TEST(StrideGenerator, AddressesAlignedToElemSize)
{
    StrideGenerator::Config config;
    config.base = 0x1001; // deliberately misaligned base
    config.elemSize = 8;
    StrideGenerator gen(config, Rng(5));
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(gen.next()->addr % 8, 0u);
}

// --------------------------------------------------------- LoopNestGenerator

TEST(LoopNestGenerator, EmitsThreeLegPattern)
{
    LoopNestGenerator::Config config;
    config.rows = 2;
    config.cols = 2;
    config.gap = {1, 1};
    LoopNestGenerator gen(config, Rng(1));

    const auto refs = gen.drain(6);
    ASSERT_EQ(refs.size(), 6u);
    EXPECT_EQ(refs[0].kind, RefKind::Load);  // A
    EXPECT_EQ(refs[1].kind, RefKind::Load);  // B
    EXPECT_EQ(refs[2].kind, RefKind::Store); // C
    EXPECT_EQ(refs[3].kind, RefKind::Load);
}

TEST(LoopNestGenerator, RowMajorIsUnitStridePerArray)
{
    LoopNestGenerator::Config config;
    config.rows = 4;
    config.cols = 4;
    config.elemSize = 8;
    config.rowMajor = true;
    LoopNestGenerator gen(config, Rng(1));
    const auto refs = gen.drain(9); // three iterations
    // A-leg addresses of consecutive iterations differ by elemSize.
    EXPECT_EQ(refs[3].addr - refs[0].addr, 8u);
    EXPECT_EQ(refs[6].addr - refs[3].addr, 8u);
}

TEST(LoopNestGenerator, ColumnMajorHasLargeStride)
{
    LoopNestGenerator::Config config;
    config.rows = 8;
    config.cols = 8;
    config.elemSize = 8;
    config.rowMajor = false;
    LoopNestGenerator gen(config, Rng(1));
    const auto refs = gen.drain(6);
    // Column-major: consecutive iterations jump by rows*elemSize.
    EXPECT_EQ(refs[3].addr - refs[0].addr, 64u);
}

TEST(LoopNestGenerator, WrapsAroundIterationSpace)
{
    LoopNestGenerator::Config config;
    config.rows = 2;
    config.cols = 2;
    LoopNestGenerator gen(config, Rng(1));
    const auto refs = gen.drain(15); // > one full 2x2x3 sweep
    EXPECT_EQ(refs[12].addr, refs[0].addr);
}

// ------------------------------------------------------ PointerChaseGenerator

TEST(PointerChaseGenerator, VisitsEveryNode)
{
    PointerChaseGenerator::Config config;
    config.nodes = 64;
    config.nodeSize = 64;
    config.fieldsPerVisit = 0; // one access per node
    config.storeFraction = 0.0;
    PointerChaseGenerator gen(config, Rng(1));

    std::set<Addr> nodes;
    for (int i = 0; i < 64; ++i)
        nodes.insert(alignDown(gen.next()->addr, 64));
    // Sattolo permutation is a single full cycle.
    EXPECT_EQ(nodes.size(), 64u);
}

TEST(PointerChaseGenerator, StaysInPool)
{
    PointerChaseGenerator::Config config;
    config.base = 0x10000;
    config.nodes = 16;
    config.nodeSize = 64;
    PointerChaseGenerator gen(config, Rng(2));
    for (int i = 0; i < 500; ++i) {
        const Addr addr = gen.next()->addr;
        EXPECT_GE(addr, 0x10000u);
        EXPECT_LT(addr, 0x10000u + 16 * 64);
    }
}

TEST(PointerChaseGenerator, ResetReplays)
{
    PointerChaseGenerator::Config config;
    PointerChaseGenerator gen(config, Rng(9));
    const auto first = gen.drain(100);
    gen.reset();
    EXPECT_EQ(gen.drain(100), first);
}

// ------------------------------------------------------- WorkingSetGenerator

TEST(WorkingSetGenerator, MostlyReusesHotSet)
{
    WorkingSetGenerator::Config config;
    config.stackDepth = 64;
    config.decay = 0.9;
    config.coldFraction = 0.01;
    WorkingSetGenerator gen(config, Rng(1));

    std::unordered_set<Addr> blocks;
    const int n = 5000;
    for (int i = 0; i < n; ++i)
        blocks.insert(alignDown(gen.next()->addr, config.blockBytes));
    // With 1% cold references the footprint stays near the stack
    // depth plus the cold tail, far below n.
    EXPECT_LT(blocks.size(), 300u);
}

TEST(WorkingSetGenerator, ColdFractionGrowsFootprint)
{
    auto footprint = [](double cold) {
        WorkingSetGenerator::Config config;
        config.coldFraction = cold;
        WorkingSetGenerator gen(config, Rng(4));
        std::unordered_set<Addr> blocks;
        for (int i = 0; i < 4000; ++i)
            blocks.insert(
                alignDown(gen.next()->addr, config.blockBytes));
        return blocks.size();
    };
    EXPECT_GT(footprint(0.2), footprint(0.01));
}

TEST(WorkingSetGenerator, ResetReplays)
{
    WorkingSetGenerator::Config config;
    WorkingSetGenerator gen(config, Rng(6));
    const auto first = gen.drain(200);
    gen.reset();
    EXPECT_EQ(gen.drain(200), first);
}

TEST(WorkingSetGenerator, AccessesStayInsideBlock)
{
    WorkingSetGenerator::Config config;
    config.blockBytes = 32;
    config.accessSize = 4;
    WorkingSetGenerator gen(config, Rng(8));
    for (int i = 0; i < 1000; ++i) {
        const auto ref = gen.next();
        EXPECT_EQ(ref->addr % 4, 0u);
    }
}

// --------------------------------------------------------- PhaseMixGenerator

TEST(PhaseMixGenerator, AlternatesPhases)
{
    StrideGenerator::Config a;
    a.base = 0x1000;
    a.storeFraction = 0.0;
    StrideGenerator::Config b;
    b.base = 0x100000;
    b.storeFraction = 0.0;

    std::vector<PhaseMixGenerator::Phase> phases;
    phases.push_back(PhaseMixGenerator::Phase{
        std::make_unique<StrideGenerator>(a, Rng(1)), 3});
    phases.push_back(PhaseMixGenerator::Phase{
        std::make_unique<StrideGenerator>(b, Rng(2)), 2});
    PhaseMixGenerator mix(std::move(phases));

    const auto refs = mix.drain(10);
    ASSERT_EQ(refs.size(), 10u);
    // 3 from A, 2 from B, 3 from A, 2 from B.
    EXPECT_LT(refs[0].addr, 0x100000u);
    EXPECT_LT(refs[2].addr, 0x100000u);
    EXPECT_GE(refs[3].addr, 0x100000u);
    EXPECT_GE(refs[4].addr, 0x100000u);
    EXPECT_LT(refs[5].addr, 0x100000u);
}

TEST(PhaseMixGenerator, FiniteChildrenExhaust)
{
    auto trace = std::make_unique<Trace>();
    trace->append(MemoryReference{0x10, 0, 4, RefKind::Load});
    trace->append(MemoryReference{0x20, 0, 4, RefKind::Load});

    std::vector<PhaseMixGenerator::Phase> phases;
    phases.push_back(
        PhaseMixGenerator::Phase{std::move(trace), 100});
    PhaseMixGenerator mix(std::move(phases));
    EXPECT_EQ(mix.drain(50).size(), 2u);
    EXPECT_FALSE(mix.next().has_value());
}

// ------------------------------------------------------------ Spec92Profile

TEST(Spec92Profile, HasSixNames)
{
    EXPECT_EQ(Spec92Profile::names().size(), 6u);
}

TEST(Spec92Profile, UnknownNameIsFatal)
{
    EXPECT_EXIT(Spec92Profile::make("mcf", 1),
                ::testing::ExitedWithCode(EXIT_FAILURE), "unknown");
}

TEST(Spec92Profile, AllProfilesProduceReferences)
{
    for (const auto &name : Spec92Profile::names()) {
        auto gen = Spec92Profile::make(name, 1234);
        const auto refs = gen->drain(1000);
        EXPECT_EQ(refs.size(), 1000u) << name;
    }
}

TEST(Spec92Profile, DeterministicAcrossConstruction)
{
    auto a = Spec92Profile::make("nasa7", 99);
    auto b = Spec92Profile::make("nasa7", 99);
    EXPECT_EQ(a->drain(500), b->drain(500));
}

TEST(Spec92Profile, SeedsChangeTheStream)
{
    auto a = Spec92Profile::make("doduc", 1);
    auto b = Spec92Profile::make("doduc", 2);
    EXPECT_NE(a->drain(500), b->drain(500));
}

// ------------------------------------------------------------ clone()
//
// The regression these tests pin down: a parallel shard must not
// naively copy a *used* generator (it would resume mid-stream with
// mid-stream RNG state).  clone() is specified to rebuild from the
// initial seed, so a clone of a drained source still replays the
// stream from its very beginning.

TEST(TraceSourceClone, CloneOfUsedSourceRewindsToStart)
{
    auto original = Spec92Profile::make("nasa7", 42);
    auto pristine = Spec92Profile::make("nasa7", 42);
    const auto head = pristine->drain(400);

    original->drain(250); // leave the original mid-stream
    auto copy = original->clone();
    ASSERT_NE(copy, nullptr);
    EXPECT_EQ(copy->drain(400), head);
}

TEST(TraceSourceClone, EveryGeneratorKindClones)
{
    std::vector<std::unique_ptr<TraceSource>> sources;
    sources.push_back(std::make_unique<StrideGenerator>(
        StrideGenerator::Config{}, Rng(5)));
    sources.push_back(std::make_unique<LoopNestGenerator>(
        LoopNestGenerator::Config{}, Rng(5)));
    sources.push_back(std::make_unique<PointerChaseGenerator>(
        PointerChaseGenerator::Config{}, Rng(5)));
    sources.push_back(std::make_unique<WorkingSetGenerator>(
        WorkingSetGenerator::Config{}, Rng(5)));
    sources.push_back(ShortLevyWorkload::make(5));
    for (const auto &name : Spec92Profile::names())
        sources.push_back(Spec92Profile::make(name, 5));
    for (auto mix : {YcsbWorkload::Mix::A, YcsbWorkload::Mix::D,
                     YcsbWorkload::Mix::E, YcsbWorkload::Mix::F}) {
        YcsbWorkload::Config ycsb;
        ycsb.mix = mix;
        ycsb.records = 4000;
        sources.push_back(
            std::make_unique<YcsbWorkload>(ycsb, Rng(5)));
    }
    {
        ReuseDistanceWorkload::Config reuse;
        reuse.profile = ReuseProfile::geometric(48, 0.92, 0.04);
        sources.push_back(std::make_unique<ReuseDistanceWorkload>(
            reuse, Rng(5)));
    }

    for (auto &source : sources) {
        const auto expected = source->drain(300);
        source->reset();
        source->drain(111); // arbitrary mid-stream position
        auto copy = source->clone();
        ASSERT_NE(copy, nullptr);
        EXPECT_EQ(copy->drain(300), expected);
    }
}

TEST(TraceSourceClone, InterleaverAndTransformsClone)
{
    auto build = []() -> std::unique_ptr<TraceSource> {
        auto data = Spec92Profile::make("ear", 13);
        return std::make_unique<IFetchInterleaver>(
            std::move(data), IFetchConfig{}, Rng(13 ^ 0xf00d));
    };
    auto interleaved = build();
    const auto expected = interleaved->drain(400);
    interleaved->drain(77);
    auto copy = interleaved->clone();
    ASSERT_NE(copy, nullptr);
    EXPECT_EQ(copy->drain(400), expected);

    OffsetSource offset(build(), 0x1000);
    const auto offset_head = offset.drain(200);
    auto offset_copy = offset.clone();
    ASSERT_NE(offset_copy, nullptr);
    EXPECT_EQ(offset_copy->drain(200), offset_head);

    KindFilterSource data_only(build(), true, true, false);
    const auto filtered_head = data_only.drain(200);
    auto filtered_copy = data_only.clone();
    ASSERT_NE(filtered_copy, nullptr);
    EXPECT_EQ(filtered_copy->drain(200), filtered_head);
}

TEST(TraceSourceClone, CloneIsIndependentOfTheOriginal)
{
    auto a = Spec92Profile::make("doduc", 3);
    auto b = a->clone();
    ASSERT_NE(b, nullptr);
    // Interleave draws from both; each must see its own stream.
    auto only_a = Spec92Profile::make("doduc", 3);
    std::vector<MemoryReference> from_a;
    std::vector<MemoryReference> from_b;
    for (int i = 0; i < 200; ++i) {
        from_a.push_back(*a->next());
        from_b.push_back(*b->next());
    }
    EXPECT_EQ(from_a, from_b);
    EXPECT_EQ(from_a, only_a->drain(200));
}

TEST(Spec92Profile, MemoryDensityIsRealistic)
{
    // Data references should be roughly 20-50 % of instructions
    // (typical for RISC codes, paper Sec. 3).
    for (const auto &name : Spec92Profile::names()) {
        auto gen = Spec92Profile::make(name, 7);
        WorkloadProfile profile;
        profile.consume(*gen, 20000);
        EXPECT_GT(profile.memoryReferenceDensity(), 0.15) << name;
        EXPECT_LT(profile.memoryReferenceDensity(), 0.55) << name;
    }
}

} // namespace
} // namespace uatm
