/**
 * @file
 * Serving-layer tests: canonical point keys, the content-addressed
 * PointCache (memory + disk), the strict sweep-request parser, the
 * SweepService contracts (byte-identity across threads, engines
 * and cache states; admission control; per-point error isolation),
 * and the HTTP surface end-to-end over real sockets.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "exp/point_key.hh"
#include "exp/runner.hh"
#include "exp/scenarios.hh"
#include "serve/http.hh"
#include "serve/point_cache.hh"
#include "serve/server.hh"
#include "serve/service.hh"
#include "serve/sweep_request.hh"

namespace uatm {
namespace {

using exp::Cell;

// --------------------------------------------------- point keys

exp::Scenario
smallScenario(std::vector<double> sizes = {4096, 8192})
{
    exp::Scenario scenario("key_test");
    scenario.workload = exp::WorkloadSpec::spec92("nasa7", 3);
    scenario.refs = 2000;
    scenario.warmupRefs = 200;
    scenario.sweep("size", std::move(sizes),
                   [](exp::Point &p, const exp::AxisValue &v) {
                       p.cache.sizeBytes =
                           std::uint64_t(v.value);
                   });
    return scenario;
}

TEST(PointKey, EqualConfigurationsShareAKey)
{
    const auto a = smallScenario().expand();
    const auto b = smallScenario().expand();
    ASSERT_EQ(a.size(), 2u);
    for (std::size_t i = 0; i < a.size(); ++i) {
        const auto ka = exp::canonicalPointKey(a[i], "cache/v1");
        const auto kb = exp::canonicalPointKey(b[i], "cache/v1");
        ASSERT_TRUE(ka.ok());
        ASSERT_TRUE(kb.ok());
        EXPECT_EQ(ka.value(), kb.value());
    }
    const auto k0 = exp::canonicalPointKey(a[0], "cache/v1");
    const auto k1 = exp::canonicalPointKey(a[1], "cache/v1");
    EXPECT_NE(k0.value(), k1.value());
}

TEST(PointKey, KernelIdParticipates)
{
    const auto points = smallScenario().expand();
    const auto v1 = exp::canonicalPointKey(points[0], "cache/v1");
    const auto v2 = exp::canonicalPointKey(points[0], "cache/v2");
    ASSERT_TRUE(v1.ok());
    ASSERT_TRUE(v2.ok());
    EXPECT_NE(v1.value(), v2.value());
}

TEST(PointKey, CustomWorkloadSpecsAreRefused)
{
    auto points = smallScenario().expand();
    points[0].workload = exp::WorkloadSpec::custom(
        "opaque", [] { return nullptr; });
    const auto key = exp::canonicalPointKey(points[0], "cache/v1");
    ASSERT_FALSE(key.ok());
    EXPECT_EQ(key.status().code(), ErrorCode::InvalidArgument);
}

TEST(PointKey, DigestIs16LowercaseHexDigits)
{
    const std::string digest = exp::pointKeyDigest("anything");
    ASSERT_EQ(digest.size(), 16u);
    for (char c : digest) {
        EXPECT_TRUE((c >= '0' && c <= '9') ||
                    (c >= 'a' && c <= 'f'))
            << digest;
    }
    EXPECT_NE(digest, exp::pointKeyDigest("anything else"));
}

TEST(PointKey, EqualKeysImplyByteIdenticalCells)
{
    // The memoization contract: points with equal keys produce
    // byte-identical cells under the kernel (and distinct keys
    // may not alias).  A duplicated axis value makes two distinct
    // grid points with the same content address.
    const auto points =
        smallScenario({4096, 8192, 4096}).expand();
    const serve::ServeKernel *kernel =
        serve::findServeKernel("cache");
    ASSERT_NE(kernel, nullptr);

    std::vector<std::string> keys;
    std::vector<std::vector<Cell>> cells;
    for (const exp::Point &point : points) {
        auto key = exp::canonicalPointKey(point, kernel->id);
        ASSERT_TRUE(key.ok());
        keys.push_back(std::move(key).value());
        auto result = kernel->eval(point);
        ASSERT_TRUE(result.ok());
        cells.push_back(std::move(result).value());
    }
    EXPECT_EQ(keys[0], keys[2]);
    EXPECT_NE(keys[0], keys[1]);
    for (std::size_t i = 0; i < points.size(); ++i) {
        for (std::size_t j = i + 1; j < points.size(); ++j) {
            const bool same_key = keys[i] == keys[j];
            bool same_cells = cells[i].size() == cells[j].size();
            for (std::size_t c = 0;
                 same_cells && c < cells[i].size(); ++c)
                same_cells =
                    cells[i][c].str() == cells[j][c].str();
            EXPECT_EQ(same_key, same_cells)
                << "points " << i << " and " << j;
        }
    }
}

// -------------------------------------------------- point cache

std::string
freshDir(const char *name)
{
    const std::string dir =
        testing::TempDir() + "uatm_serve_" + name;
    std::filesystem::remove_all(dir);
    return dir;
}

TEST(PointCache, LruEvictsLeastRecentlyUsed)
{
    serve::PointCacheOptions options;
    options.capacity = 2;
    serve::PointCache cache(options);
    cache.insert("a", {Cell::integer(1)});
    cache.insert("b", {Cell::integer(2)});
    // Touch "a" so "b" is the eviction victim.
    EXPECT_TRUE(cache.lookup("a").has_value());
    cache.insert("c", {Cell::integer(3)});

    EXPECT_EQ(cache.size(), 2u);
    EXPECT_TRUE(cache.lookup("a").has_value());
    EXPECT_FALSE(cache.lookup("b").has_value());
    EXPECT_TRUE(cache.lookup("c").has_value());
    const auto counters = cache.counters();
    EXPECT_EQ(counters.evictions, 1u);
    EXPECT_EQ(counters.inserts, 3u);
    EXPECT_EQ(counters.misses, 1u);
}

TEST(PointCache, DiskRoundTripIsExact)
{
    const std::string dir = freshDir("roundtrip");
    serve::PointCacheOptions options;
    options.dir = dir;

    // Cells whose doubles do not survive %.12g: the disk format
    // must round-trip them bit-exactly (hex-float), and the text
    // must come back verbatim (it is the wire format).
    const std::vector<Cell> cells = {
        Cell::num(1.0 / 3.0, 6),
        Cell::num(0.1234567890123456789, 12),
        Cell::integer(-42),
        Cell::text("label"),
        Cell::error(Status::invalidArgument("boom")),
    };
    {
        serve::PointCache cache(options);
        cache.insert("key1", cells);
    }
    serve::PointCache cache(options); // fresh memory, same disk
    const auto loaded = cache.lookup("key1");
    ASSERT_TRUE(loaded.has_value());
    ASSERT_EQ(loaded->size(), cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
        EXPECT_EQ((*loaded)[i].str(), cells[i].str()) << i;
        EXPECT_EQ((*loaded)[i].numeric(), cells[i].numeric())
            << i;
        EXPECT_EQ((*loaded)[i].isError(), cells[i].isError())
            << i;
        if (cells[i].numeric()) {
            // Bit-exact, not approximately equal.
            EXPECT_EQ((*loaded)[i].value(), cells[i].value())
                << i;
        }
    }
    EXPECT_EQ(cache.counters().diskHits, 1u);
    std::filesystem::remove_all(dir);
}

TEST(PointCache, ClearDropsMemoryButKeepsDisk)
{
    const std::string dir = freshDir("clear");
    serve::PointCacheOptions options;
    options.dir = dir;
    serve::PointCache cache(options);
    cache.insert("k", {Cell::integer(7)});
    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
    // The disk copy faults back in.
    EXPECT_TRUE(cache.lookup("k").has_value());
    EXPECT_EQ(cache.counters().diskHits, 1u);
    EXPECT_EQ(cache.size(), 1u);
    std::filesystem::remove_all(dir);
}

TEST(PointCache, CorruptDiskEntriesAreDroppedNotTrusted)
{
    const std::string dir = freshDir("corrupt");
    std::filesystem::create_directories(dir);
    const std::string key = "some key";
    {
        std::ofstream out(dir + "/" + exp::pointKeyDigest(key) +
                          ".json");
        out << "{not json";
    }
    serve::PointCacheOptions options;
    options.dir = dir;
    serve::PointCache cache(options);
    EXPECT_FALSE(cache.lookup(key).has_value());
    EXPECT_EQ(cache.counters().diskErrors, 1u);
    std::filesystem::remove_all(dir);
}

TEST(PointCache, DigestCollisionDegradesToAMiss)
{
    // A file whose digest matches but whose stored key differs
    // must read as a miss — never as the other key's cells.
    const std::string dir = freshDir("collision");
    serve::PointCacheOptions options;
    options.dir = dir;
    {
        serve::PointCache cache(options);
        cache.insert("key A", {Cell::integer(1)});
    }
    const std::string path_a =
        dir + "/" + exp::pointKeyDigest("key A") + ".json";
    const std::string path_b =
        dir + "/" + exp::pointKeyDigest("key B") + ".json";
    std::filesystem::rename(path_a, path_b);

    serve::PointCache cache(options);
    EXPECT_FALSE(cache.lookup("key B").has_value());
    // An honest mismatch, not a corrupt file.
    EXPECT_EQ(cache.counters().diskErrors, 0u);
    std::filesystem::remove_all(dir);
}

// ------------------------------------------- request parsing

constexpr const char *kRequest = R"({
  "name": "geom",
  "kernel": "cache",
  "refs": 2000,
  "warmup": 200,
  "workload": {"method": "spec92",
               "params": {"profile": "nasa7"}, "seed": 3},
  "cache": {"assoc": 2, "line": 32},
  "axes": [{"axis": "cache.size", "values": [4096, 8192]}],
  "threads": 2
})";

TEST(SweepRequest, ParsesAFullRequest)
{
    auto request = serve::parseSweepRequest(kRequest);
    ASSERT_TRUE(request.ok()) << request.status().toString();
    EXPECT_EQ(request.value().kernel, "cache");
    EXPECT_EQ(request.value().threads, 2u);
    EXPECT_EQ(request.value().scenario.name(), "geom");
    EXPECT_EQ(request.value().scenario.refs, 2000u);
    EXPECT_EQ(request.value().scenario.pointCount(), 2u);
    EXPECT_EQ(request.value().scenario.cache.assoc, 2u);
}

TEST(SweepRequest, RejectsUnknownFieldsAndAxes)
{
    struct Case
    {
        const char *json;
        ErrorCode code;
    };
    const Case cases[] = {
        {R"({"bogus": 1})", ErrorCode::ParseError},
        {R"({"axes": [{"axis": "cache.oops",
                       "values": [1]}]})",
         ErrorCode::NotFound},
        {R"({"axes": [{"axis": "cache.size",
                       "values": [1], "extra": 2}]})",
         ErrorCode::ParseError},
        {R"({"axes": [{"axis": "cache.size"}]})",
         ErrorCode::ParseError},
        {R"({"axes": [{"axis": "cache.size",
                       "values": ["big"]}]})",
         ErrorCode::ParseError},
        {R"({"kernel": "warp-drive"})", ErrorCode::NotFound},
        {R"({"refs": 0})", ErrorCode::ParseError},
        {R"({"refs": -5})", ErrorCode::ParseError},
        {R"({"cache": {"write": "sideways"}})",
         ErrorCode::ParseError},
        {R"(not json)", ErrorCode::ParseError},
    };
    for (const Case &c : cases) {
        auto request = serve::parseSweepRequest(c.json);
        ASSERT_FALSE(request.ok()) << c.json;
        EXPECT_EQ(request.status().code(), c.code) << c.json;
    }
}

TEST(SweepRequest, UnknownAxisErrorListsTheKnownOnes)
{
    auto request = serve::parseSweepRequest(
        R"({"axes": [{"axis": "nope", "values": [1]}]})");
    ASSERT_FALSE(request.ok());
    EXPECT_NE(request.status().message().find("cache.size"),
              std::string::npos);
    EXPECT_NE(request.status().message().find("workload"),
              std::string::npos);
}

TEST(SweepRequest, WorkloadAxisSweepsWholeSpecs)
{
    auto request = serve::parseSweepRequest(R"({
      "refs": 1000,
      "axes": [{"axis": "workload",
                "specs": [
                  {"method": "spec92",
                   "params": {"profile": "nasa7"}, "seed": 1},
                  {"method": "spec92",
                   "params": {"profile": "doduc"}, "seed": 1}
                ]}]
    })");
    ASSERT_TRUE(request.ok()) << request.status().toString();
    EXPECT_EQ(request.value().scenario.pointCount(), 2u);
}

// ------------------------------------------------ sweep service

TEST(SweepService, WarmRunsAreByteIdenticalAndAllHits)
{
    serve::ServiceOptions options;
    options.threads = 1;
    serve::SweepService service(options);
    const auto request = serve::parseSweepRequest(kRequest);
    ASSERT_TRUE(request.ok());

    auto cold = service.runSweep(request.value());
    ASSERT_TRUE(cold.ok()) << cold.status().toString();
    EXPECT_EQ(cold.value().points, 2u);
    EXPECT_EQ(cold.value().computed, 2u);
    EXPECT_EQ(cold.value().cacheHits, 0u);

    auto warm = service.runSweep(request.value());
    ASSERT_TRUE(warm.ok());
    EXPECT_EQ(warm.value().cacheHits, 2u);
    EXPECT_EQ(warm.value().computed, 0u);
    EXPECT_EQ(warm.value().table.renderNdjson(),
              cold.value().table.renderNdjson());
}

TEST(SweepService, ByteIdenticalAcrossThreadCounts)
{
    const auto request = serve::parseSweepRequest(kRequest);
    ASSERT_TRUE(request.ok());
    std::string serial;
    for (unsigned threads : {1u, 2u}) {
        serve::ServiceOptions options;
        options.threads = threads;
        serve::SweepService service(options);
        auto outcome = service.runSweep(request.value());
        ASSERT_TRUE(outcome.ok());
        const std::string rows =
            outcome.value().table.renderNdjson();
        if (serial.empty())
            serial = rows;
        else
            EXPECT_EQ(rows, serial) << threads << " threads";
    }
    EXPECT_FALSE(serial.empty());
}

TEST(SweepService, MatchesTheOfflineRunner)
{
    // The daemon must add transport, not meaning: the same
    // request through a bare Runner on the same kernel renders
    // the same NDJSON.
    const auto request = serve::parseSweepRequest(kRequest);
    ASSERT_TRUE(request.ok());
    const serve::ServeKernel *kernel =
        serve::findServeKernel("cache");
    ASSERT_NE(kernel, nullptr);
    exp::Runner runner(exp::RunnerOptions{1});
    const exp::ResultTable offline =
        runner.run(request.value().scenario, kernel->columns,
                   kernel->eval);

    serve::SweepService service(serve::ServiceOptions{});
    auto served = service.runSweep(request.value());
    ASSERT_TRUE(served.ok());
    EXPECT_EQ(served.value().table.renderNdjson(),
              offline.renderNdjson());
}

TEST(SweepService, MatchesTheStackSimEngine)
{
    // Cross-engine property: the serve kernel prices points with
    // per-point simulation; the single-pass stack engine over the
    // same geometry sweep must produce the same ratio cells.
    exp::GeometrySweep spec;
    spec.base.assoc = 1; // stack engine wants LRU direct/assoc
    spec.base.lineBytes = 32;
    spec.workload = exp::WorkloadSpec::spec92("nasa7", 3);
    spec.values = {4096, 8192, 16384};
    spec.refs = 2000;
    spec.warmupRefs = 200;
    spec.engine = exp::GeometrySweep::Engine::StackSim;
    exp::Runner runner(exp::RunnerOptions{1});
    const exp::ResultTable stack =
        exp::runGeometrySweep(spec, runner);

    auto request = serve::parseSweepRequest(R"({
      "refs": 2000, "warmup": 200,
      "workload": {"method": "spec92",
                   "params": {"profile": "nasa7"}, "seed": 3},
      "cache": {"assoc": 1, "line": 32},
      "axes": [{"axis": "cache.size",
                "values": [4096, 8192, 16384]}]
    })");
    ASSERT_TRUE(request.ok()) << request.status().toString();
    serve::SweepService service(serve::ServiceOptions{});
    auto served = service.runSweep(request.value());
    ASSERT_TRUE(served.ok());

    const exp::ResultTable &table = served.value().table;
    ASSERT_EQ(table.rows(), stack.rows());
    // Columns: axis label, then hit/miss/flush in both tables.
    for (std::size_t row = 0; row < table.rows(); ++row) {
        for (std::size_t col = 1; col < 4; ++col) {
            EXPECT_EQ(table.at(row, col).str(),
                      stack.at(row, col).str())
                << "row " << row << " col " << col;
        }
    }
}

TEST(SweepService, WarmSupersetRecomputesOnlyNewPoints)
{
    serve::ServiceOptions options;
    options.threads = 1;
    serve::SweepService service(options);
    const auto small = serve::parseSweepRequest(kRequest);
    ASSERT_TRUE(small.ok());
    ASSERT_TRUE(service.runSweep(small.value()).ok());

    auto big = serve::parseSweepRequest(R"({
      "name": "geom",
      "kernel": "cache",
      "refs": 2000,
      "warmup": 200,
      "workload": {"method": "spec92",
                   "params": {"profile": "nasa7"}, "seed": 3},
      "cache": {"assoc": 2, "line": 32},
      "axes": [{"axis": "cache.size",
                "values": [4096, 8192, 16384]}]
    })");
    ASSERT_TRUE(big.ok());
    auto outcome = service.runSweep(big.value());
    ASSERT_TRUE(outcome.ok());
    EXPECT_EQ(outcome.value().points, 3u);
    EXPECT_EQ(outcome.value().cacheHits, 2u);
    EXPECT_EQ(outcome.value().computed, 1u);
}

TEST(SweepService, CustomWorkloadDegradesToAnErrorCellUncached)
{
    // Satellite contract: a point the cache cannot canonicalize
    // (custom workload spec) is refused with a typed error — one
    // error row, nothing silently cached, the other points fine.
    serve::SweepRequest request;
    request.kernel = "cache";
    exp::Scenario scenario("mixed");
    scenario.refs = 1000;
    scenario.sweepWorkloadSpecs(
        {exp::WorkloadSpec::spec92("nasa7", 1),
         exp::WorkloadSpec::custom("opaque",
                                   [] { return nullptr; })});
    request.scenario = std::move(scenario);

    serve::ServiceOptions options;
    options.threads = 1;
    serve::SweepService service(options);
    auto outcome = service.runSweep(request);
    ASSERT_TRUE(outcome.ok()) << outcome.status().toString();
    EXPECT_EQ(outcome.value().points, 2u);
    EXPECT_EQ(outcome.value().failed, 1u);
    EXPECT_EQ(outcome.value().computed, 1u);

    const exp::ResultTable &table = outcome.value().table;
    EXPECT_FALSE(table.at(0, 1).isError());
    EXPECT_TRUE(table.at(1, 1).isError());
    EXPECT_EQ(table.at(1, 1).str(), "!invalid_argument");
    // Only the serializable point landed in the cache.
    EXPECT_EQ(service.cache().size(), 1u);
}

TEST(SweepService, OversizedRequestsAreOutOfRange)
{
    serve::ServiceOptions options;
    options.threads = 1;
    options.maxPointsPerRequest = 1;
    serve::SweepService service(options);
    const auto request = serve::parseSweepRequest(kRequest);
    ASSERT_TRUE(request.ok());
    auto outcome = service.runSweep(request.value());
    ASSERT_FALSE(outcome.ok());
    EXPECT_EQ(outcome.status().code(), ErrorCode::OutOfRange);
}

TEST(SweepService, FullQueueIsUnavailable)
{
    serve::ServiceOptions options;
    options.threads = 1;
    options.maxQueueDepth = 0; // reject everything
    serve::SweepService service(options);
    const auto request = serve::parseSweepRequest(kRequest);
    ASSERT_TRUE(request.ok());
    auto outcome = service.runSweep(request.value());
    ASSERT_FALSE(outcome.ok());
    EXPECT_EQ(outcome.status().code(), ErrorCode::Unavailable);
}

TEST(SweepService, UnknownKernelIsNotFound)
{
    serve::SweepRequest request;
    request.kernel = "warp-drive";
    serve::SweepService service(serve::ServiceOptions{});
    auto outcome = service.runSweep(request);
    ASSERT_FALSE(outcome.ok());
    EXPECT_EQ(outcome.status().code(), ErrorCode::NotFound);
}

// ------------------------------------------------- HTTP surface

class ServerTest : public testing::Test
{
  protected:
    void
    startServer(serve::ServerOptions options = {})
    {
        options.http.port = 0;
        if (options.service.threads == 0)
            options.service.threads = 1;
        server_ =
            std::make_unique<serve::Server>(std::move(options));
        ASSERT_TRUE(server_->start().ok());
    }

    serve::HttpClientResponse
    fetch(const std::string &method, const std::string &target,
          const std::string &body = "")
    {
        auto response = serve::httpFetch(
            "127.0.0.1", server_->port(), method, target, body);
        EXPECT_TRUE(response.ok())
            << response.status().toString();
        return response.ok() ? response.value()
                             : serve::HttpClientResponse{};
    }

    std::unique_ptr<serve::Server> server_;
};

TEST_F(ServerTest, HealthzAndWorkloads)
{
    startServer();
    const auto health = fetch("GET", "/healthz");
    EXPECT_EQ(health.status, 200);
    EXPECT_EQ(health.body, "ok\n");

    const auto workloads = fetch("GET", "/workloads");
    EXPECT_EQ(workloads.status, 200);
    EXPECT_NE(workloads.body.find("\"spec92\""),
              std::string::npos);
    EXPECT_NE(workloads.body.find("\"cache\""),
              std::string::npos);
    EXPECT_NE(workloads.body.find("\"cache.size\""),
              std::string::npos);
}

TEST_F(ServerTest, SweepTwiceIsByteIdenticalWithCacheHeaders)
{
    startServer();
    const auto first = fetch("POST", "/sweep", kRequest);
    ASSERT_EQ(first.status, 200) << first.body;
    const auto second = fetch("POST", "/sweep", kRequest);
    ASSERT_EQ(second.status, 200);

    EXPECT_EQ(first.body, second.body);
    EXPECT_FALSE(first.body.empty());

    ASSERT_NE(first.header("x-uatm-points"), nullptr);
    EXPECT_EQ(*first.header("x-uatm-points"), "2");
    EXPECT_EQ(*first.header("x-uatm-points-computed"), "2");
    EXPECT_EQ(*first.header("x-uatm-cache-hits"), "0");
    EXPECT_EQ(*second.header("x-uatm-cache-hits"), "2");
    EXPECT_EQ(*second.header("x-uatm-points-computed"), "0");
    EXPECT_EQ(*second.header("x-uatm-points-failed"), "0");
}

TEST_F(ServerTest, TypedErrorsMapToHttpStatuses)
{
    serve::ServerOptions options;
    options.service.maxPointsPerRequest = 1;
    startServer(options);

    // Malformed JSON -> 400 with a typed error body.
    const auto bad = fetch("POST", "/sweep", "{nope");
    EXPECT_EQ(bad.status, 400);
    EXPECT_NE(bad.body.find("\"parse_error\""),
              std::string::npos);

    // Unknown axis -> 400 (NotFound inside a known endpoint).
    const auto axis = fetch(
        "POST", "/sweep",
        R"({"axes": [{"axis": "nope", "values": [1]}]})");
    EXPECT_EQ(axis.status, 400);
    EXPECT_NE(axis.body.find("\"not_found\""),
              std::string::npos);

    // Too many points -> 413.
    const auto big = fetch("POST", "/sweep", kRequest);
    EXPECT_EQ(big.status, 413);
    EXPECT_NE(big.body.find("\"out_of_range\""),
              std::string::npos);

    // Wrong method and unknown route.
    EXPECT_EQ(fetch("GET", "/sweep").status, 405);
    EXPECT_EQ(fetch("GET", "/nope").status, 404);
}

TEST_F(ServerTest, FullQueueAnswers429OverHttp)
{
    serve::ServerOptions options;
    options.service.maxQueueDepth = 0;
    startServer(options);
    const auto response = fetch("POST", "/sweep", kRequest);
    EXPECT_EQ(response.status, 429);
    EXPECT_NE(response.body.find("\"unavailable\""),
              std::string::npos);
}

TEST_F(ServerTest, MetricsScrapeIsConformantAndCountsHits)
{
    startServer();
    ASSERT_EQ(fetch("POST", "/sweep", kRequest).status, 200);
    ASSERT_EQ(fetch("POST", "/sweep", kRequest).status, 200);

    for (int scrape = 0; scrape < 2; ++scrape) {
        const auto metrics = fetch("GET", "/metrics");
        ASSERT_EQ(metrics.status, 200);
        ASSERT_NE(metrics.header("content-type"), nullptr);
        EXPECT_NE(metrics.header("content-type")
                      ->find("version=0.0.4"),
                  std::string::npos);

        // Conformance: every line is HELP, TYPE, or a sample
        // whose value parses; no raw nan/inf casings.
        std::istringstream in(metrics.body);
        std::string line;
        bool saw_histogram = false;
        double hits = -1.0;
        while (std::getline(in, line)) {
            ASSERT_FALSE(line.empty());
            if (line.rfind("# HELP ", 0) == 0)
                continue;
            if (line.rfind("# TYPE ", 0) == 0) {
                if (line.find(" histogram") !=
                    std::string::npos)
                    saw_histogram = true;
                continue;
            }
            const auto space = line.rfind(' ');
            ASSERT_NE(space, std::string::npos) << line;
            const std::string name = line.substr(0, space);
            const std::string value = line.substr(space + 1);
            EXPECT_EQ(name.rfind("uatm_", 0), 0u) << line;
            if (value != "NaN" && value != "+Inf" &&
                value != "-Inf") {
                char *end = nullptr;
                std::strtod(value.c_str(), &end);
                EXPECT_EQ(*end, '\0') << line;
            }
            EXPECT_EQ(value.find("nan"), std::string::npos)
                << line;
            EXPECT_EQ(value.find("inf"), std::string::npos)
                << line;
            if (name == "uatm_serve_cache_hits")
                hits = std::strtod(value.c_str(), nullptr);
        }
        EXPECT_TRUE(saw_histogram);
        // The second request was served from the cache.
        EXPECT_GE(hits, 2.0);
    }
}

TEST_F(ServerTest, DaemonMatchesOfflineNdjsonByteForByte)
{
    startServer();
    const auto served = fetch("POST", "/sweep", kRequest);
    ASSERT_EQ(served.status, 200);

    const auto request = serve::parseSweepRequest(kRequest);
    ASSERT_TRUE(request.ok());
    const serve::ServeKernel *kernel =
        serve::findServeKernel("cache");
    exp::Runner runner(exp::RunnerOptions{1});
    const exp::ResultTable offline =
        runner.run(request.value().scenario, kernel->columns,
                   kernel->eval);
    EXPECT_EQ(served.body, offline.renderNdjson());
}

} // namespace
} // namespace uatm
