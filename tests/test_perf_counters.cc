/**
 * @file
 * Tests for the perf_event counter-group abstraction: the
 * deterministic unavailable-fallback path, multiplexing-corrected
 * delta scaling, derived metrics, and the JSON round trip.  The
 * tests never require a host with perf access — the only test
 * that opens real counters accepts either outcome, so the suite
 * passes identically on locked-down containers and bare metal.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "obs/json.hh"
#include "obs/perf_counters.hh"

namespace {

using namespace uatm::obs;

TEST(PerfEventNames, RoundTripAllEvents)
{
    for (std::size_t i = 0; i < kPerfEventCount; ++i) {
        const auto event = static_cast<PerfEvent>(i);
        PerfEvent parsed;
        ASSERT_TRUE(
            perfEventFromName(perfEventName(event), parsed))
            << perfEventName(event);
        EXPECT_EQ(parsed, event);
    }
}

TEST(PerfEventNames, UnknownNameRejected)
{
    PerfEvent out;
    EXPECT_FALSE(perfEventFromName("bogus_counter", out));
    EXPECT_FALSE(perfEventFromName("", out));
    // Case-sensitive by design: the canonical names are what the
    // JSON schema stores.
    EXPECT_FALSE(perfEventFromName("Cycles", out));
}

TEST(PerfCounterGroup, ForceUnavailableIsDeterministic)
{
    PerfCounterOptions options;
    options.forceUnavailable = true;
    PerfCounterGroup group(options);

    EXPECT_FALSE(group.available());
    EXPECT_FALSE(group.unavailableReason().empty());
    EXPECT_EQ(group.mask(), 0u);

    // Every operation is a safe no-op.
    group.start();
    group.stop();
    const PerfReading reading = group.read();
    EXPECT_FALSE(reading.available);
    EXPECT_EQ(reading.mask, 0u);
}

TEST(PerfCounterGroup, OpenEitherWorksOrExplainsItself)
{
    // Environment-agnostic: on a host with perf access at least
    // one event opens; on a locked-down container the group must
    // degrade to unavailable with a reason, never crash.
    PerfCounterGroup group;
    if (group.available()) {
        EXPECT_NE(group.mask(), 0u);
        group.start();
        const PerfReading a = group.read();
        const PerfReading b = group.read();
        EXPECT_TRUE(a.available);
        EXPECT_TRUE(b.available);
        for (std::size_t i = 0; i < kPerfEventCount; ++i) {
            const auto event = static_cast<PerfEvent>(i);
            if (!a.has(event) || !b.has(event))
                continue;
            // Totals are cumulative since start().
            EXPECT_GE(b.raw[i], a.raw[i]);
            EXPECT_GE(b.enabledNs[i], a.enabledNs[i]);
        }
    } else {
        EXPECT_FALSE(group.unavailableReason().empty());
    }
}

TEST(PerfCounterGroup, ThreadGroupIsStable)
{
    PerfCounterGroup &a = threadPerfCounters();
    PerfCounterGroup &b = threadPerfCounters();
    EXPECT_EQ(&a, &b);
}

PerfReading
makeReading(std::initializer_list<
            std::tuple<PerfEvent, std::uint64_t, std::uint64_t,
                       std::uint64_t>>
                entries)
{
    PerfReading reading;
    for (const auto &[event, raw, enabled, running] : entries) {
        const auto i = static_cast<std::size_t>(event);
        reading.raw[i] = raw;
        reading.enabledNs[i] = enabled;
        reading.runningNs[i] = running;
        reading.mask |= 1u << i;
    }
    reading.available = reading.mask != 0;
    return reading;
}

TEST(ScaleDelta, UnscaledWhenAlwaysRunning)
{
    const PerfReading begin = makeReading(
        {{PerfEvent::Cycles, 1000, 500, 500},
         {PerfEvent::Instructions, 2000, 500, 500}});
    const PerfReading end = makeReading(
        {{PerfEvent::Cycles, 5000, 1500, 1500},
         {PerfEvent::Instructions, 10000, 1500, 1500}});

    const PerfCounterValues delta = scaleDelta(begin, end);
    ASSERT_TRUE(delta.available);
    EXPECT_DOUBLE_EQ(delta.get(PerfEvent::Cycles), 4000.0);
    EXPECT_DOUBLE_EQ(delta.get(PerfEvent::Instructions), 8000.0);
    EXPECT_DOUBLE_EQ(delta.ipc(), 2.0);
    EXPECT_DOUBLE_EQ(delta.multiplexScale(), 1.0);
}

TEST(ScaleDelta, MultiplexedGroupExtrapolates)
{
    // The group was on hardware half the enabled time: counts
    // must be scaled by enabled/running = 2.
    const PerfReading begin =
        makeReading({{PerfEvent::Cycles, 0, 0, 0}});
    const PerfReading end =
        makeReading({{PerfEvent::Cycles, 3000, 1000, 500}});

    const PerfCounterValues delta = scaleDelta(begin, end);
    ASSERT_TRUE(delta.available);
    EXPECT_DOUBLE_EQ(delta.get(PerfEvent::Cycles), 6000.0);
    EXPECT_DOUBLE_EQ(delta.multiplexScale(), 2.0);
}

TEST(ScaleDelta, NeverScheduledEventDropped)
{
    // Enabled time advanced but running time did not: the PMU
    // never scheduled the group, so there is nothing to
    // extrapolate from — the event must vanish, not read 0.
    const PerfReading begin = makeReading(
        {{PerfEvent::Cycles, 100, 1000, 1000},
         {PerfEvent::LlcMisses, 50, 1000, 400}});
    const PerfReading end = makeReading(
        {{PerfEvent::Cycles, 200, 2000, 2000},
         {PerfEvent::LlcMisses, 50, 2000, 400}});

    const PerfCounterValues delta = scaleDelta(begin, end);
    ASSERT_TRUE(delta.available);
    EXPECT_TRUE(delta.has(PerfEvent::Cycles));
    EXPECT_FALSE(delta.has(PerfEvent::LlcMisses));
    EXPECT_DOUBLE_EQ(delta.get(PerfEvent::LlcMisses), 0.0);
}

TEST(ScaleDelta, UnavailableInputsYieldUnavailable)
{
    const PerfReading empty;
    const PerfReading real =
        makeReading({{PerfEvent::Cycles, 100, 100, 100}});
    EXPECT_FALSE(scaleDelta(empty, real).available);
    EXPECT_FALSE(scaleDelta(real, empty).available);
    EXPECT_FALSE(scaleDelta(empty, empty).available);
}

TEST(ScaleDelta, EventPresentOnOneSideOnlyDropped)
{
    const PerfReading begin =
        makeReading({{PerfEvent::Cycles, 100, 100, 100}});
    const PerfReading end = makeReading(
        {{PerfEvent::Cycles, 200, 200, 200},
         {PerfEvent::BranchMisses, 10, 200, 200}});
    const PerfCounterValues delta = scaleDelta(begin, end);
    EXPECT_TRUE(delta.has(PerfEvent::Cycles));
    EXPECT_FALSE(delta.has(PerfEvent::BranchMisses));
}

TEST(PerfCounterValues, DerivedMetrics)
{
    PerfCounterValues v;
    v.available = true;
    auto set = [&](PerfEvent event, double value) {
        const auto i = static_cast<std::size_t>(event);
        v.value[i] = value;
        v.mask |= 1u << i;
    };
    set(PerfEvent::Cycles, 1000.0);
    set(PerfEvent::Instructions, 1500.0);
    set(PerfEvent::CacheReferences, 200.0);
    set(PerfEvent::CacheMisses, 30.0);

    EXPECT_DOUBLE_EQ(v.ipc(), 1.5);
    EXPECT_DOUBLE_EQ(v.cacheMissRate(), 0.15);
    EXPECT_DOUBLE_EQ(v.missesPerKiloInstruction(),
                     30.0 * 1000.0 / 1500.0);
}

TEST(PerfCounterValues, DerivedMetricsZeroWhenAbsent)
{
    PerfCounterValues v;
    v.available = true;
    const auto i =
        static_cast<std::size_t>(PerfEvent::Instructions);
    v.value[i] = 1000.0;
    v.mask |= 1u << i;

    // No cycles -> no IPC; no cache events -> no rates.
    EXPECT_DOUBLE_EQ(v.ipc(), 0.0);
    EXPECT_DOUBLE_EQ(v.cacheMissRate(), 0.0);
    EXPECT_DOUBLE_EQ(v.missesPerKiloInstruction(), 0.0);
    EXPECT_DOUBLE_EQ(v.get(PerfEvent::Cycles), 0.0);
}

TEST(PerfCounterValuesJson, RoundTrip)
{
    PerfCounterValues v;
    v.available = true;
    v.timeEnabledNs = 2000.0;
    v.timeRunningNs = 1000.0;
    auto set = [&](PerfEvent event, double value) {
        const auto i = static_cast<std::size_t>(event);
        v.value[i] = value;
        v.mask |= 1u << i;
    };
    set(PerfEvent::Cycles, 12345.0);
    set(PerfEvent::ContextSwitches, 7.0);

    JsonWriter w;
    v.writeJson(w);
    const JsonParseResult parsed = parseJson(w.str());
    ASSERT_TRUE(parsed.ok) << parsed.error;

    const PerfCounterValues back =
        PerfCounterValues::fromJson(parsed.value);
    ASSERT_TRUE(back.available);
    EXPECT_EQ(back.mask, v.mask);
    EXPECT_DOUBLE_EQ(back.get(PerfEvent::Cycles), 12345.0);
    EXPECT_DOUBLE_EQ(back.get(PerfEvent::ContextSwitches), 7.0);
    EXPECT_DOUBLE_EQ(back.timeEnabledNs, 2000.0);
    EXPECT_DOUBLE_EQ(back.timeRunningNs, 1000.0);
    EXPECT_DOUBLE_EQ(back.multiplexScale(), 2.0);
}

TEST(PerfCounterValuesJson, UnavailableRoundTrip)
{
    const PerfCounterValues v;
    JsonWriter w;
    v.writeJson(w);
    const JsonParseResult parsed = parseJson(w.str());
    ASSERT_TRUE(parsed.ok) << parsed.error;

    const PerfCounterValues back =
        PerfCounterValues::fromJson(parsed.value);
    EXPECT_FALSE(back.available);
    EXPECT_EQ(back.mask, 0u);
}

TEST(PerfCounterValuesJson, MalformedInputsYieldUnavailable)
{
    for (const char *text :
         {"[]", "42", "{\"available\": false}",
          "{\"values\": {\"cycles\": 1}}"}) {
        const JsonParseResult parsed = parseJson(text);
        ASSERT_TRUE(parsed.ok) << text;
        EXPECT_FALSE(
            PerfCounterValues::fromJson(parsed.value).available)
            << text;
    }
}

TEST(PerfCounterValuesJson, UnknownValueNamesIgnored)
{
    const JsonParseResult parsed = parseJson(
        "{\"available\": true, \"values\": "
        "{\"cycles\": 5, \"quantum_flux\": 9}}");
    ASSERT_TRUE(parsed.ok) << parsed.error;
    const PerfCounterValues back =
        PerfCounterValues::fromJson(parsed.value);
    ASSERT_TRUE(back.available);
    EXPECT_TRUE(back.has(PerfEvent::Cycles));
    EXPECT_DOUBLE_EQ(back.get(PerfEvent::Cycles), 5.0);
    EXPECT_EQ(back.mask,
              1u << static_cast<unsigned>(PerfEvent::Cycles));
}

TEST(PerfArmed, FollowsEnvironment)
{
    const char *saved = std::getenv("UATM_PERF");
    const std::string restore = saved ? saved : "";

    unsetenv("UATM_PERF");
    EXPECT_FALSE(perfArmed());
    setenv("UATM_PERF", "0", 1);
    EXPECT_FALSE(perfArmed());
    setenv("UATM_PERF", "1", 1);
    EXPECT_TRUE(perfArmed());
    setenv("UATM_PERF", "yes", 1);
    EXPECT_TRUE(perfArmed());

    if (saved)
        setenv("UATM_PERF", restore.c_str(), 1);
    else
        unsetenv("UATM_PERF");
}

} // namespace
