/**
 * @file
 * Randomized cross-validation: draw random machine geometries,
 * workload shapes and policies from the full supported space and
 * check the load-bearing identities on every draw —
 *
 *  1. engine == Eq. 2 exactly (FS, no buffer), any geometry;
 *  2. Eq. 6 equivalence holds for random feature pairs;
 *  3. Eq. 19 == Smith on random tables and delay models;
 *  4. hit/miss bookkeeping closes on random traces.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "cache/stack_sim.hh"
#include "cache/sweep.hh"
#include "core/execution_time.hh"
#include "core/tradeoff.hh"
#include "cpu/timing_engine.hh"
#include "linesize/line_tradeoff.hh"
#include "trace/generators.hh"
#include "trace/ifetch.hh"
#include "trace/transform.hh"

namespace uatm {
namespace {

class RandomValidation
    : public ::testing::TestWithParam<std::uint64_t>
{
  protected:
    Rng rng_{GetParam() * 0x9e3779b97f4a7c15ull + 1};

    CacheConfig
    randomCache()
    {
        CacheConfig config;
        const std::uint64_t size_pow =
            10 + rng_.nextBelow(7); // 1K .. 64K
        config.sizeBytes = 1ull << size_pow;
        config.assoc = 1u << rng_.nextBelow(3); // 1, 2, 4
        const std::uint32_t line_pow =
            3 + static_cast<std::uint32_t>(
                    rng_.nextBelow(4)); // 8..64
        config.lineBytes = 1u << line_pow;
        // Keep at least two sets.
        while (config.numSets() < 2)
            config.sizeBytes *= 2;
        return config;
    }

    MemoryConfig
    randomMemory(std::uint32_t line_bytes)
    {
        MemoryConfig mem;
        const std::uint32_t widths[] = {4, 8, 16, 32};
        do {
            mem.busWidthBytes =
                widths[rng_.nextBelow(4)];
        } while (mem.busWidthBytes > line_bytes);
        mem.cycleTime = 2 + rng_.nextBelow(30);
        return mem;
    }

    WorkingSetGenerator::Config
    randomWorkload()
    {
        WorkingSetGenerator::Config ws;
        ws.stackDepth = 16 + rng_.nextBelow(600);
        ws.decay = 0.9 + rng_.nextDouble() * 0.09;
        ws.coldFraction = rng_.nextDouble() * 0.08;
        ws.storeFraction = rng_.nextDouble() * 0.5;
        ws.accessSize = rng_.nextBool(0.5) ? 4 : 8;
        return ws;
    }
};

TEST_P(RandomValidation, EngineMatchesEq2OnRandomGeometry)
{
    const CacheConfig cache = randomCache();
    const MemoryConfig mem = randomMemory(cache.lineBytes);
    CpuConfig cpu;
    cpu.feature = StallFeature::FS;
    TimingEngine engine(cache, mem, WriteBufferConfig{0, true},
                        cpu);
    WorkingSetGenerator gen(randomWorkload(), rng_.fork());
    const auto stats = engine.run(gen, 8000);
    const auto &cs = engine.cacheStats();

    const std::uint64_t chunks =
        cache.lineBytes / mem.busWidthBytes;
    // Write-allocate: no W term; 8-byte stores may exceed narrow
    // buses only via the flush/fill paths which are line-sized.
    const std::uint64_t expected =
        (cs.instructions - cs.fills) +
        cs.fills * chunks * mem.cycleTime +
        cs.writebacks * chunks * mem.cycleTime;
    EXPECT_EQ(stats.cycles, expected)
        << cache.describe() << " | " << mem.describe();
}

TEST_P(RandomValidation, Eq6EquivalenceOnRandomOperatingPoints)
{
    TradeoffContext ctx;
    const double line_pow = 3 + rng_.nextBelow(4);
    ctx.machine.lineBytes = std::exp2(line_pow);
    ctx.machine.busWidth = 4;
    if (ctx.machine.lineBytes < 8)
        ctx.machine.lineBytes = 8;
    ctx.machine.cycleTime = 2.0 + rng_.nextDouble() * 30.0;
    ctx.alpha = rng_.nextDouble();

    const double hr = 0.85 + rng_.nextDouble() * 0.14;
    const double r = missFactorDoubleBus(ctx);
    const double hr2 = equivalentHitRatio(r, hr);

    const Workload w1 = Workload::fromHitRatio(
        1e6, 2e5, hr, ctx.machine.lineBytes, ctx.alpha);
    const Workload w2 = Workload::fromHitRatio(
        1e6, 2e5, hr2, ctx.machine.lineBytes, ctx.alpha);
    const double x1 = executionTimeFS(w1, ctx.machine);
    const double x2 =
        executionTimeFS(w2, ctx.machine.withDoubledBus());
    EXPECT_NEAR(x1, x2, x1 * 1e-9);
}

TEST_P(RandomValidation, SmithAgreementOnRandomModels)
{
    std::vector<LinePoint> points;
    double mr = 0.02 + rng_.nextDouble() * 0.2;
    for (std::uint32_t line : {8u, 16u, 32u, 64u, 128u}) {
        points.push_back(LinePoint{line, mr});
        mr *= 0.4 + rng_.nextDouble() * 0.55;
    }
    const MissRatioTable table("random", points);
    LineDelayModel model;
    model.c = 1.5 + rng_.nextDouble() * 25.0;
    model.beta = 0.25 + rng_.nextDouble() * 10.0;
    model.busWidth = rng_.nextBool(0.5) ? 4.0 : 8.0;

    const auto ours = tradeoffOptimalLine(table, model, 8);
    const auto smiths = smithOptimalLine(table, model);
    EXPECT_NEAR(
        model.smithObjective(table.missRatio(ours), ours),
        model.smithObjective(table.missRatio(smiths), smiths),
        1e-9);
}

TEST_P(RandomValidation, BookkeepingClosesOnRandomTraces)
{
    const CacheConfig config = randomCache();
    SetAssocCache cache(config);
    Rng addr_rng = rng_.fork();
    std::uint64_t expected_instr = 0;
    const int refs = 5000;
    for (int i = 0; i < refs; ++i) {
        MemoryReference ref;
        ref.addr = addr_rng.nextBelow(1u << 22);
        ref.size = 4;
        ref.addr = alignDown(ref.addr, ref.size);
        ref.gap = static_cast<std::uint32_t>(
            addr_rng.nextBelow(6));
        ref.kind = addr_rng.nextBool(0.3) ? RefKind::Store
                                          : RefKind::Load;
        expected_instr +=
            static_cast<std::uint64_t>(ref.gap) + 1;
        cache.access(ref);
    }
    const CacheStats &s = cache.stats();
    EXPECT_EQ(s.accesses, static_cast<std::uint64_t>(refs));
    EXPECT_EQ(s.instructions, expected_instr);
    EXPECT_EQ(s.hits + s.misses, s.accesses);
    EXPECT_EQ(s.fills, s.misses); // write-allocate
    EXPECT_LE(s.writebacks, s.fills);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomValidation,
                         ::testing::Range<std::uint64_t>(1, 26));

// ==================================================================
// Differential validation of the single-pass stack engine:
// random workloads drawn from every generator, the transform
// stack, the instruction-fetch interleaver and recorded traces,
// checked cell by cell against per-geometry SetAssocCache runs
// (via runCacheSim, so warmup and cold-tracking semantics are
// exercised too).  Every CacheStats field must agree EXACTLY.
// ==================================================================

class StackSimDifferential
    : public ::testing::TestWithParam<std::uint64_t>
{
  protected:
    Rng rng_{GetParam() * 0x2545f4914f6cdd1dull + 99};

    std::unique_ptr<TraceSource>
    workingSet(std::uint32_t access_size)
    {
        WorkingSetGenerator::Config ws;
        ws.stackDepth = 32 + rng_.nextBelow(400);
        ws.decay = 0.9 + rng_.nextDouble() * 0.09;
        ws.coldFraction = rng_.nextDouble() * 0.08;
        ws.storeFraction = rng_.nextDouble() * 0.5;
        ws.accessSize = access_size;
        return std::make_unique<WorkingSetGenerator>(ws,
                                                     rng_.fork());
    }

    /** One random workload from the full supported palette. */
    std::unique_ptr<TraceSource>
    makeWorkload()
    {
        switch (rng_.nextBelow(9)) {
        case 0: {
            StrideGenerator::Config cfg;
            cfg.elements = 64 + rng_.nextBelow(2000);
            cfg.strideBytes =
                static_cast<std::int64_t>(4u << rng_.nextBelow(4));
            cfg.elemSize = 4;
            cfg.storeFraction = rng_.nextDouble() * 0.5;
            return std::make_unique<StrideGenerator>(cfg,
                                                     rng_.fork());
        }
        case 1: {
            LoopNestGenerator::Config cfg;
            cfg.rows = 8 + rng_.nextBelow(40);
            cfg.cols = 8 + rng_.nextBelow(40);
            cfg.elemSize = 8;
            cfg.rowMajor = rng_.nextBool(0.5);
            return std::make_unique<LoopNestGenerator>(cfg,
                                                       rng_.fork());
        }
        case 2: {
            PointerChaseGenerator::Config cfg;
            cfg.nodes = 64 + rng_.nextBelow(4000);
            cfg.accessSize = 8;
            cfg.storeFraction = rng_.nextDouble() * 0.4;
            cfg.fieldsPerVisit =
                1 + static_cast<std::uint32_t>(rng_.nextBelow(3));
            return std::make_unique<PointerChaseGenerator>(
                cfg, rng_.fork());
        }
        case 3:
            return workingSet(rng_.nextBool(0.5) ? 4 : 8);
        case 4: {
            std::vector<PhaseMixGenerator::Phase> phases;
            const std::size_t n = 1 + rng_.nextBelow(3);
            for (std::size_t i = 0; i < n; ++i)
                phases.push_back(PhaseMixGenerator::Phase{
                    workingSet(4), 50 + rng_.nextBelow(400)});
            return std::make_unique<PhaseMixGenerator>(
                std::move(phases));
        }
        case 5: {
            // Transform stack: offset + sampling.
            auto inner = std::make_unique<SampleSource>(
                workingSet(4),
                2 + static_cast<std::uint32_t>(rng_.nextBelow(4)));
            return std::make_unique<OffsetSource>(
                std::move(inner),
                static_cast<std::int64_t>(rng_.nextBelow(1 << 20)) &
                    ~63ll);
        }
        case 6: {
            // Two time-sliced programs, one load-filtered.
            std::vector<std::unique_ptr<TraceSource>> programs;
            programs.push_back(std::make_unique<OffsetSource>(
                workingSet(4), 1 << 22));
            programs.push_back(std::make_unique<KindFilterSource>(
                workingSet(8), true, false, true));
            return std::make_unique<TimeSliceSource>(
                std::move(programs), 100 + rng_.nextBelow(300));
        }
        case 7: {
            IFetchConfig cfg;
            return std::make_unique<IFetchInterleaver>(
                workingSet(4), cfg, rng_.fork());
        }
        default: {
            // A recorded trace, sometimes shorter than the run.
            std::vector<MemoryReference> refs;
            const std::size_t count = 800 + rng_.nextBelow(4000);
            Rng addr_rng = rng_.fork();
            for (std::size_t i = 0; i < count; ++i) {
                MemoryReference ref;
                ref.size = addr_rng.nextBool(0.5) ? 4 : 8;
                ref.addr = alignDown(
                    addr_rng.nextBelow(1u << 18), ref.size);
                ref.gap = static_cast<std::uint32_t>(
                    addr_rng.nextBelow(5));
                ref.kind = addr_rng.nextBool(0.35)
                               ? RefKind::Store
                               : RefKind::Load;
                refs.push_back(ref);
            }
            return std::make_unique<Trace>(std::move(refs));
        }
        }
    }
};

TEST_P(StackSimDifferential, SurfaceEqualsPerGeometryRuns)
{
    const std::uint32_t line = 16u << rng_.nextBelow(3);
    const WritePolicy write = rng_.nextBool(0.3)
                                  ? WritePolicy::WriteThrough
                                  : WritePolicy::WriteBack;

    std::vector<CacheConfig> configs;
    for (std::uint64_t size_lines : {16ull, 64ull, 256ull}) {
        for (std::uint32_t assoc : {1u, 2u, 4u}) {
            CacheConfig config;
            config.sizeBytes = size_lines * line;
            config.assoc = assoc;
            config.lineBytes = line;
            config.write = write;
            ASSERT_TRUE(config.validate().ok());
            configs.push_back(config);
        }
    }
    // Fully associative single-set cache: the inclusion property's
    // boundary case (stack distance == global recency rank).
    CacheConfig full;
    full.sizeBytes = 16ull * line;
    full.assoc = 16;
    full.lineBytes = line;
    full.write = write;
    ASSERT_EQ(full.numSets(), 1u);
    configs.push_back(full);

    GeometryGrid grid;
    grid.lineBytes = line;
    grid.write = write;
    for (const CacheConfig &config : configs)
        grid.addConfig(config);

    const std::uint64_t refs = 3000;
    const std::uint64_t warmup =
        rng_.nextBool(0.5) ? 200 + rng_.nextBelow(500) : 0;

    auto source = makeWorkload();
    const GeometryHitSurface surface =
        runStackSim(grid, *source, refs, warmup);

    for (const CacheConfig &config : configs) {
        // runCacheSim resets the source, so both passes and every
        // geometry see the identical reference stream.
        const CacheRunResult run =
            runCacheSim(config, *source, refs, warmup);
        const auto cell = surface.statsFor(config);
        ASSERT_TRUE(cell.ok()) << config.describe();
        const CacheStats &got = cell.value();
        const CacheStats &want = run.stats;
        const std::string label = config.describe();
        EXPECT_EQ(got.accesses, want.accesses) << label;
        EXPECT_EQ(got.loads, want.loads) << label;
        EXPECT_EQ(got.stores, want.stores) << label;
        EXPECT_EQ(got.hits, want.hits) << label;
        EXPECT_EQ(got.misses, want.misses) << label;
        EXPECT_EQ(got.loadMisses, want.loadMisses) << label;
        EXPECT_EQ(got.storeMisses, want.storeMisses) << label;
        EXPECT_EQ(got.fills, want.fills) << label;
        EXPECT_EQ(got.writebacks, want.writebacks) << label;
        EXPECT_EQ(got.storesToMemory, want.storesToMemory)
            << label;
        EXPECT_EQ(got.storesToMemoryBytes,
                  want.storesToMemoryBytes)
            << label;
        EXPECT_EQ(got.coldMisses, want.coldMisses) << label;
        EXPECT_EQ(got.prefetchInserts, want.prefetchInserts)
            << label;
        EXPECT_EQ(got.instructions, want.instructions) << label;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StackSimDifferential,
                         ::testing::Range<std::uint64_t>(1, 25));

} // namespace
} // namespace uatm
