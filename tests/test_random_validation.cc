/**
 * @file
 * Randomized cross-validation: draw random machine geometries,
 * workload shapes and policies from the full supported space and
 * check the load-bearing identities on every draw —
 *
 *  1. engine == Eq. 2 exactly (FS, no buffer), any geometry;
 *  2. Eq. 6 equivalence holds for random feature pairs;
 *  3. Eq. 19 == Smith on random tables and delay models;
 *  4. hit/miss bookkeeping closes on random traces.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/execution_time.hh"
#include "core/tradeoff.hh"
#include "cpu/timing_engine.hh"
#include "linesize/line_tradeoff.hh"
#include "trace/generators.hh"

namespace uatm {
namespace {

class RandomValidation
    : public ::testing::TestWithParam<std::uint64_t>
{
  protected:
    Rng rng_{GetParam() * 0x9e3779b97f4a7c15ull + 1};

    CacheConfig
    randomCache()
    {
        CacheConfig config;
        const std::uint64_t size_pow =
            10 + rng_.nextBelow(7); // 1K .. 64K
        config.sizeBytes = 1ull << size_pow;
        config.assoc = 1u << rng_.nextBelow(3); // 1, 2, 4
        const std::uint32_t line_pow =
            3 + static_cast<std::uint32_t>(
                    rng_.nextBelow(4)); // 8..64
        config.lineBytes = 1u << line_pow;
        // Keep at least two sets.
        while (config.numSets() < 2)
            config.sizeBytes *= 2;
        return config;
    }

    MemoryConfig
    randomMemory(std::uint32_t line_bytes)
    {
        MemoryConfig mem;
        const std::uint32_t widths[] = {4, 8, 16, 32};
        do {
            mem.busWidthBytes =
                widths[rng_.nextBelow(4)];
        } while (mem.busWidthBytes > line_bytes);
        mem.cycleTime = 2 + rng_.nextBelow(30);
        return mem;
    }

    WorkingSetGenerator::Config
    randomWorkload()
    {
        WorkingSetGenerator::Config ws;
        ws.stackDepth = 16 + rng_.nextBelow(600);
        ws.decay = 0.9 + rng_.nextDouble() * 0.09;
        ws.coldFraction = rng_.nextDouble() * 0.08;
        ws.storeFraction = rng_.nextDouble() * 0.5;
        ws.accessSize = rng_.nextBool(0.5) ? 4 : 8;
        return ws;
    }
};

TEST_P(RandomValidation, EngineMatchesEq2OnRandomGeometry)
{
    const CacheConfig cache = randomCache();
    const MemoryConfig mem = randomMemory(cache.lineBytes);
    CpuConfig cpu;
    cpu.feature = StallFeature::FS;
    TimingEngine engine(cache, mem, WriteBufferConfig{0, true},
                        cpu);
    WorkingSetGenerator gen(randomWorkload(), rng_.fork());
    const auto stats = engine.run(gen, 8000);
    const auto &cs = engine.cacheStats();

    const std::uint64_t chunks =
        cache.lineBytes / mem.busWidthBytes;
    // Write-allocate: no W term; 8-byte stores may exceed narrow
    // buses only via the flush/fill paths which are line-sized.
    const std::uint64_t expected =
        (cs.instructions - cs.fills) +
        cs.fills * chunks * mem.cycleTime +
        cs.writebacks * chunks * mem.cycleTime;
    EXPECT_EQ(stats.cycles, expected)
        << cache.describe() << " | " << mem.describe();
}

TEST_P(RandomValidation, Eq6EquivalenceOnRandomOperatingPoints)
{
    TradeoffContext ctx;
    const double line_pow = 3 + rng_.nextBelow(4);
    ctx.machine.lineBytes = std::exp2(line_pow);
    ctx.machine.busWidth = 4;
    if (ctx.machine.lineBytes < 8)
        ctx.machine.lineBytes = 8;
    ctx.machine.cycleTime = 2.0 + rng_.nextDouble() * 30.0;
    ctx.alpha = rng_.nextDouble();

    const double hr = 0.85 + rng_.nextDouble() * 0.14;
    const double r = missFactorDoubleBus(ctx);
    const double hr2 = equivalentHitRatio(r, hr);

    const Workload w1 = Workload::fromHitRatio(
        1e6, 2e5, hr, ctx.machine.lineBytes, ctx.alpha);
    const Workload w2 = Workload::fromHitRatio(
        1e6, 2e5, hr2, ctx.machine.lineBytes, ctx.alpha);
    const double x1 = executionTimeFS(w1, ctx.machine);
    const double x2 =
        executionTimeFS(w2, ctx.machine.withDoubledBus());
    EXPECT_NEAR(x1, x2, x1 * 1e-9);
}

TEST_P(RandomValidation, SmithAgreementOnRandomModels)
{
    std::vector<LinePoint> points;
    double mr = 0.02 + rng_.nextDouble() * 0.2;
    for (std::uint32_t line : {8u, 16u, 32u, 64u, 128u}) {
        points.push_back(LinePoint{line, mr});
        mr *= 0.4 + rng_.nextDouble() * 0.55;
    }
    const MissRatioTable table("random", points);
    LineDelayModel model;
    model.c = 1.5 + rng_.nextDouble() * 25.0;
    model.beta = 0.25 + rng_.nextDouble() * 10.0;
    model.busWidth = rng_.nextBool(0.5) ? 4.0 : 8.0;

    const auto ours = tradeoffOptimalLine(table, model, 8);
    const auto smiths = smithOptimalLine(table, model);
    EXPECT_NEAR(
        model.smithObjective(table.missRatio(ours), ours),
        model.smithObjective(table.missRatio(smiths), smiths),
        1e-9);
}

TEST_P(RandomValidation, BookkeepingClosesOnRandomTraces)
{
    const CacheConfig config = randomCache();
    SetAssocCache cache(config);
    Rng addr_rng = rng_.fork();
    std::uint64_t expected_instr = 0;
    const int refs = 5000;
    for (int i = 0; i < refs; ++i) {
        MemoryReference ref;
        ref.addr = addr_rng.nextBelow(1u << 22);
        ref.size = 4;
        ref.addr = alignDown(ref.addr, ref.size);
        ref.gap = static_cast<std::uint32_t>(
            addr_rng.nextBelow(6));
        ref.kind = addr_rng.nextBool(0.3) ? RefKind::Store
                                          : RefKind::Load;
        expected_instr +=
            static_cast<std::uint64_t>(ref.gap) + 1;
        cache.access(ref);
    }
    const CacheStats &s = cache.stats();
    EXPECT_EQ(s.accesses, static_cast<std::uint64_t>(refs));
    EXPECT_EQ(s.instructions, expected_instr);
    EXPECT_EQ(s.hits + s.misses, s.accesses);
    EXPECT_EQ(s.fills, s.misses); // write-allocate
    EXPECT_LE(s.writebacks, s.fills);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomValidation,
                         ::testing::Range<std::uint64_t>(1, 26));

} // namespace
} // namespace uatm
