/**
 * @file
 * Tests for hardware prefetching (paper Sec. 3.3's latency-hiding
 * remark; Sec. 2's Chen & Baer comparison): functional insertion,
 * timing semantics, usefulness accounting, and the headline
 * comparisons (prefetch beats NB on sequential streams; R shrinks
 * to the non-hidden references).
 */

#include <gtest/gtest.h>

#include "cpu/timing_engine.hh"
#include "trace/generators.hh"

namespace uatm {
namespace {

MemoryReference
load(Addr addr, std::uint32_t gap = 0)
{
    return MemoryReference{addr, gap, 4, RefKind::Load};
}

CacheConfig
testCache()
{
    CacheConfig config;
    config.sizeBytes = 256;
    config.assoc = 2;
    config.lineBytes = 32;
    return config;
}

TimingEngine
makeEngine(StallFeature feature, PrefetchPolicy prefetch,
           Cycles mu_m = 8,
           CacheConfig cache_config = testCache())
{
    MemoryConfig mem;
    mem.busWidthBytes = 4;
    mem.cycleTime = mu_m;
    CpuConfig cpu;
    cpu.feature = feature;
    cpu.prefetch = prefetch;
    return TimingEngine(cache_config, mem,
                        WriteBufferConfig{8, true}, cpu);
}

// ------------------------------------------------- functional layer

TEST(PrefetchCache, InsertsAbsentLine)
{
    SetAssocCache cache(testCache());
    const auto out = cache.prefetchLine(0x104);
    EXPECT_TRUE(out.inserted);
    EXPECT_TRUE(cache.probe(0x100));
    EXPECT_EQ(cache.stats().prefetchInserts, 1u);
    EXPECT_EQ(cache.stats().fills, 0u); // not a demand fill
}

TEST(PrefetchCache, ResidentLineIsNoOp)
{
    SetAssocCache cache(testCache());
    cache.access(load(0x100));
    const auto out = cache.prefetchLine(0x100);
    EXPECT_FALSE(out.inserted);
    EXPECT_EQ(cache.stats().prefetchInserts, 0u);
}

TEST(PrefetchCache, DirtyVictimIsFlushed)
{
    SetAssocCache cache(testCache());
    cache.access(MemoryReference{0x000, 0, 4, RefKind::Store});
    cache.access(load(0x080)); // fills the other way of set 0
    const auto out = cache.prefetchLine(0x100); // set 0 again
    EXPECT_TRUE(out.inserted);
    EXPECT_TRUE(out.writeback);
    EXPECT_EQ(out.victimLineAddr, 0x000u);
}

TEST(PrefetchCache, DemandHitAfterPrefetch)
{
    SetAssocCache cache(testCache());
    cache.prefetchLine(0x200);
    EXPECT_TRUE(cache.access(load(0x204)).hit);
}

// ---------------------------------------------------- timing layer

TEST(PrefetchTiming, NextLineArrivesBeforeDemand)
{
    // Miss on line 0; prefetch of line 1 starts when the port
    // frees; a much later access to line 1 hits with no stall.
    auto engine = makeEngine(StallFeature::FS,
                             PrefetchPolicy::OnMiss);
    Trace t;
    t.append(load(0x000));
    t.append(load(0x020, 200)); // far beyond both transfers
    const auto stats = engine.run(t, 100);
    // 64 (demand) + 200 gap + 1 hit cycle.
    EXPECT_EQ(stats.cycles, 64u + 200u + 1u);
    EXPECT_EQ(stats.fills, 1u);
    EXPECT_EQ(stats.prefetchesIssued, 1u);
    EXPECT_EQ(stats.prefetchesUseful, 1u);
}

TEST(PrefetchTiming, LateDemandWaitsOnlyForItsChunk)
{
    auto engine = makeEngine(StallFeature::FS,
                             PrefetchPolicy::OnMiss);
    Trace t;
    t.append(load(0x000));
    t.append(load(0x020)); // immediately after the miss resolves
    const auto stats = engine.run(t, 100);
    // Demand fill 0..64; prefetch transfer 64..128, chunk 0 of
    // line 1 arrives at 72.  The access issues at 64 and waits 8.
    EXPECT_EQ(stats.cycles, 73u);
    EXPECT_EQ(stats.prefetchesLate, 1u);
    EXPECT_EQ(stats.inflightAccessStall, 8u);
}

TEST(PrefetchTiming, UselessPrefetchOnlyCostsBandwidth)
{
    // The prefetched line is never touched; a later unrelated
    // demand miss waits for the port to free.
    auto engine = makeEngine(StallFeature::FS,
                             PrefetchPolicy::OnMiss);
    Trace t;
    t.append(load(0x000)); // + prefetch of 0x020 (64..128)
    t.append(load(0x200)); // misses at 64; port busy until 128
    const auto stats = engine.run(t, 100);
    // Port contention delays the second fill to 128..192; note
    // the second miss also queues a prefetch but the CPU resumed
    // at 192 already.
    EXPECT_EQ(stats.cycles, 192u);
    EXPECT_GE(stats.portContentionWait, 64u);
    EXPECT_EQ(stats.prefetchesUseful, 0u);
}

TEST(PrefetchTiming, TaggedChainsOnFirstHit)
{
    auto engine = makeEngine(StallFeature::FS,
                             PrefetchPolicy::Tagged);
    Trace t;
    t.append(load(0x000));      // miss; prefetch 0x020
    t.append(load(0x020, 300)); // useful hit; prefetch 0x040
    t.append(load(0x040, 300)); // useful hit; prefetch 0x060
    const auto stats = engine.run(t, 100);
    EXPECT_EQ(stats.prefetchesIssued, 3u);
    EXPECT_EQ(stats.prefetchesUseful, 2u);
    EXPECT_EQ(stats.fills, 1u); // only the first access misses
}

TEST(PrefetchTiming, OnMissDoesNotChainOnHits)
{
    auto engine = makeEngine(StallFeature::FS,
                             PrefetchPolicy::OnMiss);
    Trace t;
    t.append(load(0x000));
    t.append(load(0x020, 300)); // hit on the prefetched line
    t.append(load(0x040, 300)); // miss (no chain)
    const auto stats = engine.run(t, 100);
    EXPECT_EQ(stats.fills, 2u);
    EXPECT_EQ(stats.prefetchesIssued, 2u);
}

TEST(PrefetchTiming, PrefetchDoesNotLockTheBLBus)
{
    // Under BL, an in-flight *prefetch* must not stall unrelated
    // accesses the way a demand fill does.
    auto engine = makeEngine(StallFeature::BL,
                             PrefetchPolicy::OnMiss);
    Trace t;
    t.append(load(0x000));       // miss: resume at 8, fill to 64
    t.append(load(0x200, 100));  // at 108: demand fill long done,
                                 // prefetch (64..128) done too
    t.append(load(0x204, 100));  // plain hit
    const auto stats = engine.run(t, 100);
    // 8 + 100 -> miss at 108 (port free at 128? no: prefetch ran
    // 64..128, so grant at 128, resume 136)... the BL lock from
    // the prefetch must NOT apply: only port timing matters.
    EXPECT_EQ(stats.inflightAccessStall, 0u);
    EXPECT_EQ(stats.prefetchesIssued, 2u);
}

// ------------------------------------------------ workload effects

TEST(PrefetchWorkload, SequentialStreamMissesCollapse)
{
    // On a unit-stride stream, tagged prefetch hides almost every
    // line fetch: R shrinks to the non-hidden references
    // (Sec. 3.3's reading of R).
    StrideGenerator::Config stream;
    stream.elements = 1 << 14;
    stream.elemSize = 4;
    stream.strideBytes = 4;
    stream.storeFraction = 0.0;
    stream.gap = {2, 4};

    CacheConfig cache;
    cache.sizeBytes = 8 * 1024;
    cache.assoc = 2;
    cache.lineBytes = 32;

    StrideGenerator gen(stream, Rng(3));
    auto none = makeEngine(StallFeature::FS, PrefetchPolicy::None,
                           8, cache);
    const auto x_none = none.run(gen, 20000);
    auto tagged = makeEngine(StallFeature::FS,
                             PrefetchPolicy::Tagged, 8, cache);
    const auto x_tagged = tagged.run(gen, 20000);

    // Demand fills collapse by at least 5x...
    EXPECT_LT(x_tagged.fills * 5, x_none.fills);
    // ...and execution time improves substantially.
    EXPECT_LT(x_tagged.cycles, x_none.cycles * 3 / 4);
    // Prefetches are overwhelmingly useful on this stream.
    EXPECT_GT(static_cast<double>(x_tagged.prefetchesUseful),
              0.9 * static_cast<double>(
                        x_tagged.prefetchesIssued));
}

TEST(PrefetchWorkload, PrefetchBeatsNonBlockingOnSequential)
{
    // Sec. 2 cites Chen & Baer: prefetching caches often beat
    // non-blocking caches.  Reproduce on a sequential stream:
    // FS + tagged prefetch < NB without prefetch.
    StrideGenerator::Config stream;
    stream.elements = 1 << 14;
    stream.elemSize = 4;
    stream.strideBytes = 4;
    stream.storeFraction = 0.0;
    stream.gap = {2, 4};

    CacheConfig cache;
    cache.sizeBytes = 8 * 1024;
    cache.assoc = 2;
    cache.lineBytes = 32;

    StrideGenerator gen(stream, Rng(5));
    auto prefetching = makeEngine(
        StallFeature::FS, PrefetchPolicy::Tagged, 8, cache);
    const auto x_pref = prefetching.run(gen, 20000);

    MemoryConfig mem;
    mem.busWidthBytes = 4;
    mem.cycleTime = 8;
    CpuConfig nb_cpu;
    nb_cpu.feature = StallFeature::NB;
    nb_cpu.mshrs = 2;
    TimingEngine nb(cache, mem, WriteBufferConfig{8, true},
                    nb_cpu);
    const auto x_nb = nb.run(gen, 20000);

    EXPECT_LT(x_pref.cycles, x_nb.cycles);
}

TEST(PrefetchWorkload, RandomTrafficGainsLittle)
{
    // Pointer-chase traffic defeats next-line prefetching; the
    // policy should not catastrophically hurt either (port waits
    // bounded by one line transfer per miss).
    PointerChaseGenerator::Config chase;
    chase.nodes = 1 << 12;
    chase.nodeSize = 64;
    chase.accessSize = 8;
    chase.fieldsPerVisit = 1;
    chase.gap = {2, 4};

    CacheConfig cache;
    cache.sizeBytes = 8 * 1024;
    cache.assoc = 2;
    cache.lineBytes = 32;

    PointerChaseGenerator gen(chase, Rng(7));
    auto none = makeEngine(StallFeature::FS, PrefetchPolicy::None,
                           8, cache);
    const auto x_none = none.run(gen, 15000);
    auto tagged = makeEngine(StallFeature::FS,
                             PrefetchPolicy::Tagged, 8, cache);
    const auto x_tagged = tagged.run(gen, 15000);

    const double ratio = static_cast<double>(x_tagged.cycles) /
                         static_cast<double>(x_none.cycles);
    EXPECT_GT(ratio, 0.8); // no miracle
    // Without prefetch abandonment every useless transfer can
    // delay the next demand fill by up to one line time, so the
    // worst case is ~2x — the classic naive-prefetch pathology.
    EXPECT_LT(ratio, 2.05);
}

TEST(PrefetchTiming, PhiPoolExcludesPrefetchTransfers)
{
    // The prefetch transfer itself never enters the phi pool; only
    // demand-visible stalls do, so phi stays within Table 2's
    // bounds with prefetching enabled.
    StrideGenerator::Config stream;
    stream.elements = 4096;
    stream.elemSize = 4;
    stream.strideBytes = 4;
    stream.storeFraction = 0.0;
    StrideGenerator gen(stream, Rng(9));

    CacheConfig cache;
    cache.sizeBytes = 8 * 1024;
    cache.assoc = 2;
    cache.lineBytes = 32;
    auto engine = makeEngine(StallFeature::BNL3,
                             PrefetchPolicy::Tagged, 8, cache);
    const auto stats = engine.run(gen, 10000);
    if (stats.fills > 0) {
        EXPECT_GE(stats.phi(8), 0.0);
        EXPECT_LE(stats.phi(8), 8.0 + 1e-9);
    }
}

} // namespace
} // namespace uatm
