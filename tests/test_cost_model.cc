/**
 * @file
 * Tests for the Alpert & Flynn cache cost model (reference [6]):
 * tag arithmetic, overhead monotonicity, and the cost-effective
 * line-size selection.
 */

#include <gtest/gtest.h>

#include "linesize/cost_model.hh"
#include "linesize/line_tradeoff.hh"

namespace uatm {
namespace {

CacheConfig
geometry(std::uint64_t size = 16 * 1024, std::uint32_t assoc = 2,
         std::uint32_t line = 32)
{
    CacheConfig config;
    config.sizeBytes = size;
    config.assoc = assoc;
    config.lineBytes = line;
    return config;
}

TEST(AreaModel, TagBitsHandComputed)
{
    // 16K, 2-way, 32B lines: 256 sets -> 8 index bits, 5 offset
    // bits; 32-bit addresses leave 19 tag bits.
    CacheAreaModel area;
    EXPECT_EQ(area.tagBits(geometry()), 19u);
}

TEST(AreaModel, LargerLinesNeedFewerTagBitsTotal)
{
    CacheAreaModel area;
    // Doubling the line halves the line count; per-line tag bits
    // grow by one (offset steals an index bit? no: offset +1,
    // index -1, tag unchanged) — total overhead halves-ish.
    const auto small = area.overheadBits(geometry(16384, 2, 16));
    const auto large = area.overheadBits(geometry(16384, 2, 64));
    EXPECT_GT(small, large);
    EXPECT_NEAR(static_cast<double>(small) /
                    static_cast<double>(large),
                4.0, 0.5);
}

TEST(AreaModel, OverheadFractionShrinksWithLine)
{
    CacheAreaModel area;
    double previous = 1.0;
    for (std::uint32_t line : {8u, 16u, 32u, 64u, 128u}) {
        const double frac =
            area.overheadFraction(geometry(16384, 2, line));
        EXPECT_LT(frac, previous);
        previous = frac;
    }
}

TEST(AreaModel, DataBitsIndependentOfLine)
{
    CacheAreaModel area;
    EXPECT_EQ(area.dataBits(geometry(16384, 2, 16)),
              area.dataBits(geometry(16384, 2, 128)));
}

TEST(AreaModel, TotalBitsAddUp)
{
    CacheAreaModel area;
    const auto config = geometry();
    EXPECT_EQ(area.totalBits(config),
              area.dataBits(config) + area.overheadBits(config));
}

TEST(AreaModel, RejectsSillyAddressWidth)
{
    CacheAreaModel area;
    area.addressBits = 8;
    EXPECT_EXIT({ area.validate(); },
                ::testing::ExitedWithCode(EXIT_FAILURE),
                "plausible");
}

TEST(CostEffective, SweepCoversTheTable)
{
    CacheAreaModel area;
    LineDelayModel delay;
    delay.c = 7;
    delay.beta = 2;
    delay.busWidth = 4;
    const auto points = costEffectivenessSweep(
        MissRatioTable::designTarget16K(), delay, area,
        geometry());
    EXPECT_EQ(points.size(), 5u);
    for (const auto &point : points) {
        EXPECT_GT(point.meanMemoryDelay, 0.0);
        EXPECT_GT(point.totalBits, 0u);
        EXPECT_NEAR(point.delayAreaProduct,
                    point.meanMemoryDelay *
                        static_cast<double>(point.totalBits),
                    1.0);
    }
}

TEST(CostEffective, NeverSmallerThanSmithsOptimum)
{
    // Alpert & Flynn: tag overhead only ever pushes the choice
    // toward larger lines, because area strictly falls with line
    // size at fixed capacity while delay is the common factor.
    CacheAreaModel area;
    LineDelayModel delay;
    delay.busWidth = 4;
    for (double beta : {0.5, 1.0, 2.0, 4.0, 8.0}) {
        delay.c = 7;
        delay.beta = beta;
        for (const auto &table :
             {MissRatioTable::designTarget8K(),
              MissRatioTable::designTarget16K()}) {
            const auto smith = meanDelayOptimalLine(table, delay);
            const auto cost = costEffectiveLine(table, delay, area,
                                                geometry(8192, 2));
            EXPECT_GE(cost, smith)
                << table.name() << " beta=" << beta;
        }
    }
}

TEST(CostEffective, TinyAddressOverheadChangesNothing)
{
    // With negligible tag overhead the cost-effective line equals
    // the pure delay optimum.
    CacheAreaModel area;
    area.addressBits = 20; // few tag bits
    area.stateBitsPerLine = 0;
    area.replacementBitsPerLine = 0;
    LineDelayModel delay;
    delay.c = 7;
    delay.beta = 2;
    delay.busWidth = 4;
    const auto table = MissRatioTable::designTarget16K();
    // Overhead still shrinks with line, so the cost-effective
    // choice may exceed the delay optimum by at most one step.
    const auto smith = meanDelayOptimalLine(table, delay);
    const auto cost =
        costEffectiveLine(table, delay, area, geometry());
    EXPECT_GE(cost, smith);
    EXPECT_LE(cost, smith * 4);
}

} // namespace
} // namespace uatm
