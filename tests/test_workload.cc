/**
 * @file
 * Unit tests for the workload characterisation (paper Table 1,
 * Eqs. 1/4/5) and the analytic machine description (Eq. 9).
 */

#include <gtest/gtest.h>

#include "core/machine.hh"
#include "core/workload.hh"

namespace uatm {
namespace {

// --------------------------------------------------------------- Workload

TEST(Workload, LambdaMCombinesReadsAndWriteArounds)
{
    Workload w;
    w.instructions = 1000;
    w.bytesRead = 320; // 10 lines of 32B
    w.writeArounds = 5;
    w.dataRefs = 300;
    // Eq. 1: Lambda_m = R/L + W.
    EXPECT_DOUBLE_EQ(w.lambdaM(32), 15.0);
    EXPECT_DOUBLE_EQ(w.lambdaH(32), 285.0);
}

TEST(Workload, HitRatioAndEq4MissRatio)
{
    Workload w = Workload::fromHitRatio(1e6, 3e5, 0.95, 32, 0.5);
    EXPECT_NEAR(w.hitRatio(32), 0.95, 1e-12);
    EXPECT_NEAR(w.missRatio(32), 0.05, 1e-12);
    // Eq. 4: MR = 1/(s+1).
    const double s = w.hitToMissRatio(32);
    EXPECT_NEAR(1.0 / (s + 1.0), w.missRatio(32), 1e-12);
}

TEST(Workload, FromHitRatioReconstructsR)
{
    const Workload w =
        Workload::fromHitRatio(1e6, 1e5, 0.90, 16, 0.5);
    // Lambda_m = 0.1 * 1e5 = 1e4 misses; R = 1e4 * 16.
    EXPECT_DOUBLE_EQ(w.bytesRead, 160000.0);
    EXPECT_DOUBLE_EQ(w.writeArounds, 0.0);
}

TEST(Workload, FromHitRatioWriteAroundSplitsMisses)
{
    const Workload w = Workload::fromHitRatioWriteAround(
        1e6, 1e5, 0.90, 16, 0.5, 0.3);
    // 1e4 misses: 3000 write-arounds, 7000 line fills.
    EXPECT_DOUBLE_EQ(w.writeArounds, 3000.0);
    EXPECT_DOUBLE_EQ(w.bytesRead, 7000.0 * 16);
    EXPECT_NEAR(w.hitRatio(16), 0.90, 1e-12);
}

TEST(Workload, FromCacheRunMirrorsStats)
{
    CacheStats stats;
    stats.accesses = 1000;
    stats.instructions = 4000;
    stats.fills = 50;
    stats.writebacks = 20;
    stats.storesToMemory = 3;
    const Workload w = Workload::fromCacheRun(stats, 32);
    EXPECT_DOUBLE_EQ(w.bytesRead, 1600.0);
    EXPECT_DOUBLE_EQ(w.writeArounds, 3.0);
    EXPECT_NEAR(w.flushRatio, 0.4, 1e-12); // 20/50
    EXPECT_DOUBLE_EQ(w.dataRefs, 1000.0);
}

TEST(Workload, ValidateRejectsNegativeHitRatio)
{
    Workload w;
    w.instructions = 100;
    w.bytesRead = 32 * 200; // 200 misses > 50 refs
    w.dataRefs = 50;
    EXPECT_EXIT(w.validate(32),
                ::testing::ExitedWithCode(EXIT_FAILURE),
                "negative");
}

TEST(Workload, ValidateRejectsBadAlpha)
{
    Workload w = Workload::fromHitRatio(100, 30, 0.9, 32, 0.5);
    w.flushRatio = 1.5;
    EXPECT_EXIT(w.validate(32),
                ::testing::ExitedWithCode(EXIT_FAILURE), "alpha");
}

TEST(Workload, BusTrafficPerInstructionGoodmanMetric)
{
    Workload w;
    w.instructions = 1000;
    w.bytesRead = 3200; // 100 lines of 32B
    w.flushRatio = 0.5;
    w.writeArounds = 10;
    w.dataRefs = 300;
    // (3200 * 1.5 + 10 * 4) / 1000.
    EXPECT_DOUBLE_EQ(w.busTrafficPerInstruction(4), 4.84);
}

TEST(Workload, TrafficGrowsWithLineAtFixedMissCount)
{
    // Goodman's tension: a larger line moves more bytes per miss
    // even when it wins on delay.
    const Workload small =
        Workload::fromHitRatio(1e4, 3e3, 0.95, 16, 0.5);
    const Workload large =
        Workload::fromHitRatio(1e4, 3e3, 0.95, 64, 0.5);
    EXPECT_GT(large.busTrafficPerInstruction(4),
              small.busTrafficPerInstruction(4));
}

TEST(Workload, DescribeContainsParameters)
{
    const Workload w =
        Workload::fromHitRatio(100, 30, 0.9, 32, 0.5);
    const std::string text = w.describe(32);
    EXPECT_NE(text.find("E="), std::string::npos);
    EXPECT_NE(text.find("HR="), std::string::npos);
}

// ---------------------------------------------------------------- Machine

TEST(Machine, LineOverBus)
{
    Machine m;
    m.busWidth = 4;
    m.lineBytes = 32;
    EXPECT_DOUBLE_EQ(m.lineOverBus(), 8.0);
}

TEST(Machine, NonPipelinedTransferTime)
{
    Machine m;
    m.busWidth = 4;
    m.lineBytes = 32;
    m.cycleTime = 8;
    EXPECT_DOUBLE_EQ(m.lineTransferTime(), 64.0);
}

TEST(Machine, PipelinedTransferMatchesEq9)
{
    Machine m;
    m.busWidth = 4;
    m.lineBytes = 32;
    m.cycleTime = 8;
    m = m.withPipelining(2);
    // mu_p = mu_m + q(L/D - 1) = 8 + 14.
    EXPECT_DOUBLE_EQ(m.lineTransferTime(), 22.0);
}

TEST(Machine, PipeliningIsNeutralWhenLineEqualsBus)
{
    Machine m;
    m.busWidth = 8;
    m.lineBytes = 8;
    m.cycleTime = 10;
    const double plain = m.lineTransferTime();
    EXPECT_DOUBLE_EQ(m.withPipelining(2).lineTransferTime(), plain);
}

TEST(Machine, WithDoubledBusHalvesChunks)
{
    Machine m;
    m.busWidth = 4;
    m.lineBytes = 32;
    const Machine wide = m.withDoubledBus();
    EXPECT_DOUBLE_EQ(wide.busWidth, 8.0);
    EXPECT_DOUBLE_EQ(wide.lineOverBus(), 4.0);
}

TEST(Machine, DoublingPastLineIsAnError)
{
    Machine m;
    m.busWidth = 32;
    m.lineBytes = 32;
    try {
        auto w = m.withDoubledBus();
        (void)w;
        FAIL() << "expected StatusError";
    } catch (const StatusError &e) {
        EXPECT_EQ(e.status().code(), ErrorCode::InvalidArgument);
        EXPECT_NE(e.status().message().find("exceed"),
                  std::string::npos);
    }
}

TEST(Machine, ValidateRejectsLineSmallerThanBus)
{
    Machine m;
    m.busWidth = 16;
    m.lineBytes = 8;
    const Status status = m.validate();
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.code(), ErrorCode::InvalidArgument);
    EXPECT_NE(status.message().find("at least"), std::string::npos);
}

TEST(Machine, WithCycleTimePreservesRest)
{
    Machine m;
    m.busWidth = 4;
    m.lineBytes = 16;
    const Machine m2 = m.withCycleTime(20);
    EXPECT_DOUBLE_EQ(m2.cycleTime, 20.0);
    EXPECT_DOUBLE_EQ(m2.lineBytes, 16.0);
}

} // namespace
} // namespace uatm
