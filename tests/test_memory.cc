/**
 * @file
 * Unit tests for the memory timing model (incl. Eq. 9 pipelining)
 * and the write-buffer scheduler.
 */

#include <gtest/gtest.h>

#include "memory/timing.hh"
#include "memory/write_buffer.hh"

namespace uatm {
namespace {

MemoryConfig
basicConfig(Cycles mu_m = 8, bool pipelined = false, Cycles q = 2)
{
    MemoryConfig config;
    config.busWidthBytes = 4;
    config.cycleTime = mu_m;
    config.pipelined = pipelined;
    config.pipelineInterval = q;
    return config;
}

// --------------------------------------------------------- MemoryConfig

TEST(MemoryConfig, RejectsBadWidth)
{
    MemoryConfig config;
    config.busWidthBytes = 6;
    const Status status = config.validate();
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.code(), ErrorCode::InvalidArgument);
    EXPECT_NE(status.message().find("width"), std::string::npos);
}

TEST(MemoryConfig, RejectsQAboveMuM)
{
    MemoryConfig config = basicConfig(2, true, 3);
    const Status status = config.validate();
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.code(), ErrorCode::InvalidArgument);
    EXPECT_NE(status.message().find("interval"), std::string::npos);
}

TEST(MemoryConfig, DescribeShowsPipeline)
{
    EXPECT_NE(basicConfig(8, true).describe().find("pipelined"),
              std::string::npos);
    EXPECT_EQ(basicConfig(8, false).describe().find("pipelined"),
              std::string::npos);
}

// --------------------------------------------------------- MemoryTiming

TEST(MemoryTiming, ChunksPerLine)
{
    MemoryTiming t(basicConfig());
    EXPECT_EQ(t.chunksPerLine(32), 8u);
    EXPECT_EQ(t.chunksPerLine(4), 1u);
    EXPECT_EQ(t.chunksPerLine(2), 1u); // sub-bus transfer
}

TEST(MemoryTiming, NonPipelinedLineTime)
{
    MemoryTiming t(basicConfig(8));
    // (L/D) * mu_m = 8 * 8.
    EXPECT_EQ(t.lineTransferTime(32), 64u);
    EXPECT_EQ(t.singleTransferTime(), 8u);
}

TEST(MemoryTiming, PipelinedLineTimeMatchesEq9)
{
    MemoryTiming t(basicConfig(8, true, 2));
    // mu_p = mu_m + q (L/D - 1) = 8 + 2*7 = 22.
    EXPECT_EQ(t.lineTransferTime(32), 22u);
}

TEST(MemoryTiming, PipelinedDegeneratesWhenLineEqualsBus)
{
    // Eq. 9 note: with L = D, pipelined == non-pipelined.
    MemoryTiming piped(basicConfig(8, true, 2));
    MemoryTiming plain(basicConfig(8, false));
    EXPECT_EQ(piped.lineTransferTime(4), plain.lineTransferTime(4));
}

TEST(MemoryTiming, NonPipelinedChunkTimes)
{
    MemoryTiming t(basicConfig(10));
    const auto times = t.chunkCompletionTimes(100, 16);
    ASSERT_EQ(times.size(), 4u);
    EXPECT_EQ(times[0], 110u);
    EXPECT_EQ(times[1], 120u);
    EXPECT_EQ(times[3], 140u);
}

TEST(MemoryTiming, PipelinedChunkTimes)
{
    MemoryTiming t(basicConfig(10, true, 2));
    const auto times = t.chunkCompletionTimes(100, 16);
    ASSERT_EQ(times.size(), 4u);
    EXPECT_EQ(times[0], 110u);
    EXPECT_EQ(times[1], 112u);
    EXPECT_EQ(times[3], 116u);
    // Last chunk = start + mu_p.
    EXPECT_EQ(times[3], 100u + t.lineTransferTime(16));
}

// ----------------------------------------------------- MemoryScheduler

TEST(Scheduler, SynchronousWriteOccupiesPort)
{
    MemoryTiming t(basicConfig(8));
    MemoryScheduler sched(t, WriteBufferConfig{0, true});
    // Full-line write: 8 chunks * 8 cycles.
    EXPECT_EQ(sched.postWrite(10, 32), 74u);
    EXPECT_EQ(sched.busyUntil(), 74u);
}

TEST(Scheduler, SynchronousWordWriteTakesOneCycleTime)
{
    MemoryTiming t(basicConfig(8));
    MemoryScheduler sched(t, WriteBufferConfig{0, true});
    EXPECT_EQ(sched.postWrite(0, 4), 8u);
}

TEST(Scheduler, ReadAfterSyncWriteWaits)
{
    MemoryTiming t(basicConfig(8));
    MemoryScheduler sched(t, WriteBufferConfig{0, true});
    sched.postWrite(0, 32); // busy until 64
    const ReadGrant grant = sched.requestRead(10, 32);
    EXPECT_EQ(grant.start, 64u);
    EXPECT_EQ(grant.busWait, 54u);
    EXPECT_EQ(sched.readWaitCycles(), 54u);
}

TEST(Scheduler, BufferedWriteReturnsImmediately)
{
    MemoryTiming t(basicConfig(8));
    MemoryScheduler sched(t, WriteBufferConfig{4, true});
    EXPECT_EQ(sched.postWrite(10, 32), 10u);
    EXPECT_EQ(sched.pendingWrites(), 1u);
}

TEST(Scheduler, ReadBypassesQueuedWrites)
{
    MemoryTiming t(basicConfig(8));
    MemoryScheduler sched(t, WriteBufferConfig{4, true});
    sched.postWrite(10, 32);
    // Read arrives at the same instant: it wins the port.
    const ReadGrant grant = sched.requestRead(10, 32);
    EXPECT_EQ(grant.start, 10u);
    EXPECT_EQ(grant.busWait, 0u);
    EXPECT_EQ(sched.pendingWrites(), 1u); // write still parked
}

TEST(Scheduler, ReadWaitsOnlyForTheChunkOnTheBus)
{
    MemoryTiming t(basicConfig(8));
    MemoryScheduler sched(t, WriteBufferConfig{4, true});
    sched.postWrite(0, 32); // first chunk occupies cycles 0..8
    // A read at 5 waits for the chunk boundary at 8, then jumps
    // ahead of the remaining seven queued chunks.
    const ReadGrant grant = sched.requestRead(5, 32);
    EXPECT_EQ(grant.start, 8u);
    EXPECT_EQ(grant.busWait, 3u);
    EXPECT_EQ(sched.pendingWrites(), 1u); // 7 chunks still parked
}

TEST(Scheduler, NonBypassingReadDrainsQueue)
{
    MemoryTiming t(basicConfig(8));
    MemoryScheduler sched(t, WriteBufferConfig{4, false});
    sched.postWrite(10, 32);
    sched.postWrite(10, 32);
    const ReadGrant grant = sched.requestRead(10, 32);
    // Both 64-cycle writes retire first.
    EXPECT_EQ(grant.start, 10u + 64u + 64u);
}

TEST(Scheduler, FullBufferStallsUntilSlotFrees)
{
    MemoryTiming t(basicConfig(8));
    MemoryScheduler sched(t, WriteBufferConfig{1, true});
    EXPECT_EQ(sched.postWrite(0, 32), 0u);
    // Queue holds one entry; the second post must wait for the
    // first write to retire (starts at 0, 64 cycles).
    const Cycles resume = sched.postWrite(0, 32);
    EXPECT_EQ(resume, 64u);
    EXPECT_EQ(sched.bufferFullEvents(), 1u);
}

TEST(Scheduler, DrainToRetiresIdleWrites)
{
    MemoryTiming t(basicConfig(8));
    MemoryScheduler sched(t, WriteBufferConfig{4, true});
    sched.postWrite(0, 4); // 8 cycles, can run 0..8
    sched.drainTo(100);
    EXPECT_EQ(sched.pendingWrites(), 0u);
    EXPECT_EQ(sched.busyUntil(), 8u);
}

TEST(Scheduler, DrainAllAfterReportsCompletion)
{
    MemoryTiming t(basicConfig(8));
    MemoryScheduler sched(t, WriteBufferConfig{8, true});
    sched.postWrite(0, 32);
    sched.postWrite(0, 32);
    EXPECT_EQ(sched.drainAllAfter(0), 128u);
    EXPECT_EQ(sched.pendingWrites(), 0u);
}

TEST(Scheduler, ResetClearsState)
{
    MemoryTiming t(basicConfig(8));
    MemoryScheduler sched(t, WriteBufferConfig{4, true});
    sched.postWrite(0, 32);
    sched.requestRead(0, 32);
    sched.reset();
    EXPECT_EQ(sched.pendingWrites(), 0u);
    EXPECT_EQ(sched.busyUntil(), 0u);
    EXPECT_EQ(sched.readWaitCycles(), 0u);
}

TEST(Scheduler, BackToBackReadsSerialize)
{
    MemoryTiming t(basicConfig(8));
    MemoryScheduler sched(t, WriteBufferConfig{0, true});
    const auto first = sched.requestRead(0, 32);
    EXPECT_EQ(first.start, 0u);
    const auto second = sched.requestRead(10, 32);
    EXPECT_EQ(second.start, 64u);
}

} // namespace
} // namespace uatm
