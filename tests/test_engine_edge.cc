/**
 * @file
 * Edge-case tests for the timing engine: pipelined fills under the
 * partially-stalling features, write-through traffic, prefetch
 * interactions with NB, empty/degenerate runs, and determinism.
 */

#include <gtest/gtest.h>

#include "cpu/timing_engine.hh"
#include "trace/generators.hh"

namespace uatm {
namespace {

MemoryReference
load(Addr addr, std::uint32_t gap = 0)
{
    return MemoryReference{addr, gap, 4, RefKind::Load};
}

MemoryReference
store(Addr addr, std::uint32_t gap = 0)
{
    return MemoryReference{addr, gap, 4, RefKind::Store};
}

CacheConfig
testCache()
{
    CacheConfig config;
    config.sizeBytes = 256;
    config.assoc = 2;
    config.lineBytes = 32;
    return config;
}

TimingEngine
makeEngine(StallFeature feature, Cycles mu_m, bool pipelined,
           std::uint32_t wbuf, CacheConfig cache = testCache())
{
    MemoryConfig mem;
    mem.busWidthBytes = 4;
    mem.cycleTime = mu_m;
    mem.pipelined = pipelined;
    mem.pipelineInterval = 2;
    CpuConfig cpu;
    cpu.feature = feature;
    return TimingEngine(cache, mem, WriteBufferConfig{wbuf, true},
                        cpu);
}

// ------------------------------------------- pipelined + partial stall

TEST(EngineEdge, Bnl3WithPipelinedFills)
{
    // Pipelined chunks arrive at mu_m, mu_m+q, ...: a BNL3 access
    // to chunk 1 waits only q cycles beyond the first chunk.
    auto engine = makeEngine(StallFeature::BNL3, 8, true, 0);
    Trace t;
    t.append(load(0x000)); // chunks at 8, 10, 12, ... 22
    t.append(load(0x004)); // chunk 1 arrives at 10
    const auto stats = engine.run(t, 100);
    // Resume at 8; access at 8 waits until 10; +1 hit cycle.
    EXPECT_EQ(stats.cycles, 11u);
}

TEST(EngineEdge, BlWithPipelinedFillsLocksUntilMuP)
{
    auto engine = makeEngine(StallFeature::BL, 8, true, 0);
    Trace t;
    t.append(load(0x000)); // complete at mu_p = 22
    t.append(load(0x080)); // bus locked until 22
    const auto stats = engine.run(t, 100);
    // Stall 8 -> 22; fill 22..44, resume at first chunk 30.
    EXPECT_EQ(stats.cycles, 30u);
}

// --------------------------------------------------- write-through

TEST(EngineEdge, WriteThroughStoresGoToMemorySynchronously)
{
    CacheConfig config = testCache();
    config.write = WritePolicy::WriteThrough;
    auto engine = makeEngine(StallFeature::FS, 8, false, 0,
                             config);
    Trace t;
    t.append(load(0x000));       // fill: 64
    t.append(store(0x004, 10));  // hit, but write goes to memory
    const auto stats = engine.run(t, 100);
    // 64 + 10 gap + store costs the 8-cycle write (>= 1 base).
    EXPECT_EQ(stats.cycles, 64u + 10u + 8u);
    EXPECT_GT(stats.writeStall, 0u);
}

TEST(EngineEdge, WriteThroughWithBufferCostsOneCycle)
{
    CacheConfig config = testCache();
    config.write = WritePolicy::WriteThrough;
    auto engine = makeEngine(StallFeature::FS, 8, false, 8,
                             config);
    Trace t;
    t.append(load(0x000));
    t.append(store(0x004, 10));
    const auto stats = engine.run(t, 100);
    EXPECT_EQ(stats.cycles, 64u + 10u + 1u);
}

// ------------------------------------------------------- degenerate

TEST(EngineEdge, EmptyTraceProducesZeroCycles)
{
    auto engine = makeEngine(StallFeature::FS, 8, false, 0);
    Trace t;
    const auto stats = engine.run(t, 100);
    EXPECT_EQ(stats.cycles, 0u);
    EXPECT_EQ(stats.instructions, 0u);
    EXPECT_EQ(stats.meanMemoryDelay(), 0.0);
    EXPECT_EQ(stats.phi(8), 0.0);
}

TEST(EngineEdge, MaxRefsZeroRunsNothing)
{
    auto engine = makeEngine(StallFeature::FS, 8, false, 0);
    Trace t;
    t.append(load(0x000));
    const auto stats = engine.run(t, 0);
    EXPECT_EQ(stats.references, 0u);
}

TEST(EngineEdge, AllHitsCostExactlyE)
{
    auto engine = makeEngine(StallFeature::BNL3, 8, false, 8);
    Trace t;
    t.append(load(0x000, 0)); // one compulsory miss...
    for (int i = 1; i < 8; ++i)
        t.append(load(0x000 + 4 * (i % 8), 200)); // all hits
    const auto stats = engine.run(t, 100);
    // After the miss resolves, every later instruction is 1 cycle.
    const std::uint64_t expected =
        8u /*first chunk*/ + 7u * 201u;
    EXPECT_EQ(stats.cycles, expected);
}

// ------------------------------------------------------ determinism

TEST(EngineEdge, RunsAreDeterministicAndRepeatable)
{
    auto run_once = [] {
        auto engine = makeEngine(StallFeature::BNL2, 10, false, 4);
        auto workload = Spec92Profile::make("wave5", 33);
        return engine.run(*workload, 20000).cycles;
    };
    const auto a = run_once();
    const auto b = run_once();
    EXPECT_EQ(a, b);
}

TEST(EngineEdge, SecondRunOnSameEngineStartsCold)
{
    auto engine = makeEngine(StallFeature::FS, 8, false, 0);
    Trace t;
    t.append(load(0x000));
    const auto first = engine.run(t, 100);
    const auto second = engine.run(t, 100);
    EXPECT_EQ(first.cycles, second.cycles);
    EXPECT_EQ(engine.cacheStats().misses, 1u); // reset happened
}

// ----------------------------------------------- NB + prefetch combo

TEST(EngineEdge, NbWithPrefetchStaysConsistent)
{
    MemoryConfig mem;
    mem.busWidthBytes = 4;
    mem.cycleTime = 8;
    CpuConfig cpu;
    cpu.feature = StallFeature::NB;
    cpu.mshrs = 2;
    cpu.prefetch = PrefetchPolicy::Tagged;
    TimingEngine engine(testCache(), mem,
                        WriteBufferConfig{8, true}, cpu);

    StrideGenerator::Config stream;
    stream.elements = 2048;
    stream.elemSize = 4;
    stream.strideBytes = 4;
    stream.storeFraction = 0.2;
    StrideGenerator gen(stream, Rng(3));
    const auto stats = engine.run(gen, 8000);
    EXPECT_GT(stats.prefetchesIssued, 0u);
    EXPECT_GT(stats.cycles, stats.instructions / 2);
    // phi stays within the NB bounds even with prefetch events.
    EXPECT_LE(stats.phi(8), 8.0 + 1e-9);
}

// --------------------------------------------- port accounting sanity

TEST(EngineEdge, StallBreakdownNeverExceedsTotal)
{
    for (const auto &name : Spec92Profile::names()) {
        auto engine = makeEngine(StallFeature::BNL1, 12, false, 8);
        auto workload = Spec92Profile::make(name, 44);
        const auto stats = engine.run(*workload, 20000);
        const Cycles stalls =
            stats.initialMissWait + stats.inflightAccessStall +
            stats.missSerializationStall + stats.flushStall +
            stats.writeStall + stats.bufferFullStall;
        // Stall categories are disjoint contributions to X beyond
        // the E base (minus the miss instructions' base cycles).
        EXPECT_LE(stalls, stats.cycles) << name;
        EXPECT_GE(stats.cycles + stats.fills,
                  stats.instructions)
            << name;
    }
}

} // namespace
} // namespace uatm
