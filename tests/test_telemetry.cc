/**
 * @file
 * Tests for the runner telemetry layer: per-worker recording, the
 * determinism contract with telemetry armed, JSON round-trips, the
 * scaling diagnosis, the Amdahl fit, and the per-worker trace
 * replay.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include "exp/report.hh"
#include "exp/runner.hh"
#include "exp/telemetry.hh"
#include "obs/json.hh"
#include "obs/trace_event.hh"

using namespace uatm;
using namespace uatm::exp;

namespace {

Scenario
fourPointScenario(const std::string &name = "telemetry-test")
{
    Scenario scenario(name);
    scenario.sweep("i", {0, 1, 2, 3},
                   [](Point &, const AxisValue &) {});
    return scenario;
}

Runner::Kernel
trivialKernel()
{
    return [](const Point &point)
               -> Expected<std::vector<Cell>> {
        return std::vector<Cell>{
            Cell::num(static_cast<double>(point.index))};
    };
}

} // namespace

TEST(RunnerTelemetry, DisarmedByDefault)
{
    Runner runner(RunnerOptions{1});
    runner.run(fourPointScenario(), {"x"}, trivialKernel());
    EXPECT_FALSE(runner.lastTelemetry().armed);
    EXPECT_TRUE(runner.lastTelemetry().workers.empty());
    EXPECT_TRUE(runner.lastTelemetry().points.empty());
}

TEST(RunnerTelemetry, ArmedSerialRunRecordsEveryPoint)
{
    RunnerOptions options;
    options.threads = 1;
    options.telemetry = true;
    Runner runner(options);
    runner.run(fourPointScenario(), {"x"}, trivialKernel());

    const RunnerTelemetry &t = runner.lastTelemetry();
    EXPECT_TRUE(t.armed);
    EXPECT_EQ(t.scenario, "telemetry-test");
    EXPECT_EQ(t.threadsRequested, 1u);
    EXPECT_EQ(t.threadsUsed, 0u);  // inline, no thread spawned
    EXPECT_EQ(t.pointCount, 4u);
    EXPECT_EQ(t.pointsFailed, 0u);
    ASSERT_EQ(t.workers.size(), 1u);
    EXPECT_EQ(t.workers[0].points, 4u);
    ASSERT_EQ(t.points.size(), 4u);
    for (std::size_t i = 0; i < t.points.size(); ++i) {
        EXPECT_EQ(t.points[i].index, i);
        EXPECT_EQ(t.points[i].worker, 0u);
        EXPECT_FALSE(t.points[i].label.empty());
    }
    EXPECT_EQ(t.pointLatency.count(), 4u);
    // Worker kernel time covers at least the recorded points.
    std::uint64_t durations = 0;
    for (const auto &point : t.points)
        durations += point.durationNs;
    EXPECT_EQ(t.workers[0].kernelNs, durations);
}

TEST(RunnerTelemetry, ParallelRunCoversAllPointsOnce)
{
    RunnerOptions options;
    options.threads = 4;
    options.telemetry = true;
    Runner runner(options);
    runner.run(fourPointScenario(), {"x"}, trivialKernel());

    const RunnerTelemetry &t = runner.lastTelemetry();
    EXPECT_EQ(t.threadsUsed, 4u);
    ASSERT_EQ(t.workers.size(), 4u);
    ASSERT_EQ(t.points.size(), 4u);
    std::set<std::size_t> indices;
    std::uint64_t workerPoints = 0;
    for (const auto &point : t.points)
        indices.insert(point.index);
    for (const auto &worker : t.workers)
        workerPoints += worker.points;
    EXPECT_EQ(indices.size(), 4u);  // each point exactly once
    EXPECT_EQ(workerPoints, 4u);
    // points is sorted by index, whatever the completion order.
    for (std::size_t i = 1; i < t.points.size(); ++i)
        EXPECT_LT(t.points[i - 1].index, t.points[i].index);
}

TEST(RunnerTelemetry, ArmedMergeIsByteIdenticalToDisarmedSerial)
{
    const std::string serial = [&] {
        Runner runner(RunnerOptions{1});
        return runner
            .run(fourPointScenario(), {"x"}, trivialKernel())
            .renderCsv();
    }();
    for (unsigned threads : {1u, 2u, 4u}) {
        RunnerOptions options;
        options.threads = threads;
        options.telemetry = true;
        Runner runner(options);
        EXPECT_EQ(runner
                      .run(fourPointScenario(), {"x"},
                           trivialKernel())
                      .renderCsv(),
                  serial)
            << "telemetry-armed merge diverged at " << threads
            << " threads";
    }
}

TEST(RunnerTelemetry, FailedPointsAreStillTimed)
{
    RunnerOptions options;
    options.threads = 2;
    options.telemetry = true;
    Runner runner(options);
    runner.run(fourPointScenario(), {"x"},
               [](const Point &point)
                   -> Expected<std::vector<Cell>> {
                   if (point.index == 2)
                       return Status::invalidArgument("boom");
                   return std::vector<Cell>{Cell::num(1.0)};
               });
    const RunnerTelemetry &t = runner.lastTelemetry();
    EXPECT_EQ(t.pointsFailed, 1u);
    EXPECT_EQ(t.points.size(), 4u);  // the failed point included
    EXPECT_EQ(t.pointLatency.count(), 4u);
}

TEST(RunnerTelemetry, JsonRoundTripPreservesEverything)
{
    RunnerOptions options;
    options.threads = 2;
    options.telemetry = true;
    Runner runner(options);
    runner.run(fourPointScenario("roundtrip"), {"x"},
               trivialKernel());
    const RunnerTelemetry &before = runner.lastTelemetry();

    const obs::JsonParseResult parsed =
        obs::parseJson(before.toJson());
    ASSERT_TRUE(parsed.ok) << parsed.error;
    const Expected<RunnerTelemetry> after =
        RunnerTelemetry::fromJson(parsed.value);
    ASSERT_TRUE(after.ok()) << after.status().toString();

    const RunnerTelemetry &t = after.value();
    EXPECT_EQ(t.scenario, before.scenario);
    EXPECT_EQ(t.threadsRequested, before.threadsRequested);
    EXPECT_EQ(t.threadsUsed, before.threadsUsed);
    EXPECT_EQ(t.pointCount, before.pointCount);
    EXPECT_EQ(t.wallNs, before.wallNs);
    EXPECT_EQ(t.expandNs, before.expandNs);
    EXPECT_EQ(t.mergeNs, before.mergeNs);
    ASSERT_EQ(t.workers.size(), before.workers.size());
    for (std::size_t i = 0; i < t.workers.size(); ++i) {
        EXPECT_EQ(t.workers[i].kernelNs,
                  before.workers[i].kernelNs);
        EXPECT_EQ(t.workers[i].idleNs, before.workers[i].idleNs);
        EXPECT_EQ(t.workers[i].lifetimeNs,
                  before.workers[i].lifetimeNs);
    }
    ASSERT_EQ(t.points.size(), before.points.size());
    for (std::size_t i = 0; i < t.points.size(); ++i) {
        EXPECT_EQ(t.points[i].index, before.points[i].index);
        EXPECT_EQ(t.points[i].durationNs,
                  before.points[i].durationNs);
        EXPECT_EQ(t.points[i].label, before.points[i].label);
    }
    // The histogram is rebuilt from the per-point durations.
    EXPECT_EQ(t.pointLatency.count(),
              before.pointLatency.count());
    EXPECT_EQ(t.pointLatency.p99(), before.pointLatency.p99());
}

namespace {

/** Synthetic counter block with the core scaling events set. */
obs::PerfCounterValues
syntheticCounters(double cycles, double instructions,
                  double misses, double migrations, double ctx)
{
    obs::PerfCounterValues v;
    v.available = true;
    v.timeEnabledNs = 1000.0;
    v.timeRunningNs = 1000.0;
    auto set = [&](obs::PerfEvent event, double value) {
        const auto i = static_cast<std::size_t>(event);
        v.value[i] = value;
        v.mask |= 1u << i;
    };
    set(obs::PerfEvent::Cycles, cycles);
    set(obs::PerfEvent::Instructions, instructions);
    set(obs::PerfEvent::CacheMisses, misses);
    set(obs::PerfEvent::CpuMigrations, migrations);
    set(obs::PerfEvent::ContextSwitches, ctx);
    return v;
}

} // namespace

TEST(RunnerTelemetry, JsonRoundTripPreservesWorkerCounters)
{
    RunnerOptions options;
    options.threads = 2;
    options.telemetry = true;
    Runner runner(options);
    runner.run(fourPointScenario("counters"), {"x"},
               trivialKernel());
    RunnerTelemetry before = runner.lastTelemetry();
    ASSERT_FALSE(before.workers.empty());
    before.workers[0].counters =
        syntheticCounters(1000.0, 2500.0, 40.0, 3.0, 7.0);
    // Force one counter-less lane (the live run may have armed
    // real counters on every worker).
    ASSERT_GT(before.workers.size(), 1u);
    before.workers[1].counters = obs::PerfCounterValues{};

    const obs::JsonParseResult parsed =
        obs::parseJson(before.toJson());
    ASSERT_TRUE(parsed.ok) << parsed.error;
    const Expected<RunnerTelemetry> after =
        RunnerTelemetry::fromJson(parsed.value);
    ASSERT_TRUE(after.ok()) << after.status().toString();

    const obs::PerfCounterValues &c =
        after.value().workers[0].counters;
    ASSERT_TRUE(c.available);
    EXPECT_DOUBLE_EQ(c.get(obs::PerfEvent::Cycles), 1000.0);
    EXPECT_DOUBLE_EQ(c.get(obs::PerfEvent::Instructions),
                     2500.0);
    EXPECT_DOUBLE_EQ(c.ipc(), 2.5);
    EXPECT_DOUBLE_EQ(c.timeEnabledNs, 1000.0);
    // The other worker never got counters: it must come back
    // unavailable, not as zeros.
    ASSERT_GT(after.value().workers.size(), 1u);
    EXPECT_FALSE(after.value().workers[1].counters.available);
}

TEST(RunnerTelemetry, SchemaV1DocumentsStillParse)
{
    // A v1 document predates the per-worker counters object and
    // must load fine with counters reported unavailable.
    const obs::JsonParseResult parsed = obs::parseJson(
        "{\"kind\": \"runner_telemetry\", "
        "\"schema_version\": 1, \"armed\": true, "
        "\"scenario\": \"legacy\", \"threads_used\": 2, "
        "\"point_count\": 1, \"workers\": ["
        "{\"worker\": 0, \"points\": 1, \"kernel_ns\": 10, "
        "\"idle_ns\": 1, \"lifetime_ns\": 11}]}");
    ASSERT_TRUE(parsed.ok) << parsed.error;
    const Expected<RunnerTelemetry> loaded =
        RunnerTelemetry::fromJson(parsed.value);
    ASSERT_TRUE(loaded.ok()) << loaded.status().toString();
    EXPECT_EQ(loaded.value().scenario, "legacy");
    ASSERT_EQ(loaded.value().workers.size(), 1u);
    EXPECT_FALSE(loaded.value().workers[0].counters.available);

    // Version 0 (or missing) is rejected, same as too-new.
    const obs::JsonParseResult tooOld = obs::parseJson(
        "{\"kind\": \"runner_telemetry\", "
        "\"schema_version\": 0, \"workers\": []}");
    ASSERT_TRUE(tooOld.ok);
    EXPECT_FALSE(
        RunnerTelemetry::fromJson(tooOld.value).ok());
}

TEST(RunnerTelemetry, ProgressHeartbeatKeepsResultsByteIdentical)
{
    // The heartbeat writes to stderr only; the merged table must
    // be byte-identical with and without it.
    const std::string quiet = [&] {
        Runner runner(RunnerOptions{2});
        return runner
            .run(fourPointScenario(), {"x"}, trivialKernel())
            .renderCsv();
    }();
    RunnerOptions options;
    options.threads = 2;
    options.progressEvery = 2;
    Runner runner(options);
    EXPECT_EQ(runner
                  .run(fourPointScenario(), {"x"},
                       trivialKernel())
                  .renderCsv(),
              quiet);
}

TEST(CounterScaling, DetectsContentionSignatures)
{
    RunnerTelemetry lo;
    lo.armed = true;
    lo.threadsUsed = 1;
    lo.wallNs = 1000000000;  // 1 s
    WorkerTelemetry solo;
    solo.counters =
        syntheticCounters(1000.0, 2000.0, 10.0, 1.0, 100.0);
    lo.workers.push_back(solo);

    RunnerTelemetry hi;
    hi.armed = true;
    hi.threadsUsed = 8;
    hi.wallNs = 1000000000;
    for (int i = 0; i < 8; ++i) {
        WorkerTelemetry w;
        // Aggregate ipc 1.0 (down from 2.0), mpki 40 (up from
        // 5), 20 migrations/worker, 1600 ctx switches/s: every
        // heuristic should fire.
        w.counters = syntheticCounters(2000.0, 2000.0, 80.0,
                                       20.0, 200.0);
        hi.workers.push_back(w);
    }

    const CounterScaling scaling =
        analyzeCounterScaling({lo, hi});
    ASSERT_TRUE(scaling.ok);
    ASSERT_EQ(scaling.points.size(), 2u);
    EXPECT_EQ(scaling.points.front().threads, 1u);
    EXPECT_EQ(scaling.points.back().threads, 8u);
    EXPECT_DOUBLE_EQ(scaling.points.front().ipc, 2.0);
    EXPECT_DOUBLE_EQ(scaling.points.back().mpki, 40.0);
    EXPECT_TRUE(scaling.falseSharingSuspected);
    EXPECT_TRUE(scaling.migrationHeavy);
    EXPECT_TRUE(scaling.contextSwitchHeavy);
    EXPECT_FALSE(scaling.verdict.empty());
}

TEST(CounterScaling, HealthyRunsRaiseNoFlags)
{
    std::vector<RunnerTelemetry> runs;
    for (unsigned threads : {1u, 4u}) {
        RunnerTelemetry t;
        t.armed = true;
        t.threadsUsed = threads;
        t.wallNs = 1000000000;
        for (unsigned i = 0; i < threads; ++i) {
            WorkerTelemetry w;
            w.counters = syntheticCounters(1000.0, 2000.0,
                                           10.0, 0.0, 10.0);
            t.workers.push_back(w);
        }
        runs.push_back(t);
    }
    const CounterScaling scaling = analyzeCounterScaling(runs);
    ASSERT_TRUE(scaling.ok);
    EXPECT_FALSE(scaling.falseSharingSuspected);
    EXPECT_FALSE(scaling.migrationHeavy);
    EXPECT_FALSE(scaling.contextSwitchHeavy);
    EXPECT_EQ(scaling.verdict,
              "no contention signature in the counters");
}

TEST(CounterScaling, CounterlessRunsAreNotOk)
{
    RunnerTelemetry t;
    t.armed = true;
    t.threadsUsed = 2;
    t.workers.resize(2);
    const CounterScaling scaling = analyzeCounterScaling({t});
    EXPECT_FALSE(scaling.ok);
    EXPECT_TRUE(scaling.points.empty());
    EXPECT_FALSE(scaling.verdict.empty());
}

TEST(RunnerTelemetry, FileRoundTripAndLoadErrors)
{
    RunnerOptions options;
    options.threads = 1;
    options.telemetry = true;
    Runner runner(options);
    runner.run(fourPointScenario(), {"x"}, trivialKernel());

    const std::string path =
        testing::TempDir() + "uatm_telemetry_roundtrip.json";
    ASSERT_TRUE(
        runner.lastTelemetry().writeJson(path).ok());
    const Expected<RunnerTelemetry> loaded =
        RunnerTelemetry::load(path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().toString();
    EXPECT_EQ(loaded.value().pointCount, 4u);
    std::remove(path.c_str());

    EXPECT_FALSE(
        RunnerTelemetry::load("/nonexistent/telemetry.json")
            .ok());
}

TEST(RunnerTelemetry, FromJsonRejectsForeignDocuments)
{
    const obs::JsonParseResult notTelemetry =
        obs::parseJson("{\"kind\": \"bench\"}");
    ASSERT_TRUE(notTelemetry.ok);
    EXPECT_FALSE(
        RunnerTelemetry::fromJson(notTelemetry.value).ok());

    const obs::JsonParseResult badVersion = obs::parseJson(
        "{\"kind\": \"runner_telemetry\", "
        "\"schema_version\": 999, \"workers\": []}");
    ASSERT_TRUE(badVersion.ok);
    EXPECT_FALSE(
        RunnerTelemetry::fromJson(badVersion.value).ok());
}

TEST(RunnerTelemetry, EnvVariableArmsTelemetry)
{
    setenv("UATM_RUNNER_TELEMETRY", "1", 1);
    Runner runner(RunnerOptions{1});
    runner.run(fourPointScenario(), {"x"}, trivialKernel());
    unsetenv("UATM_RUNNER_TELEMETRY");
    EXPECT_TRUE(runner.lastTelemetry().armed);

    setenv("UATM_RUNNER_TELEMETRY", "0", 1);
    Runner disarmed(RunnerOptions{1});
    disarmed.run(fourPointScenario(), {"x"}, trivialKernel());
    unsetenv("UATM_RUNNER_TELEMETRY");
    EXPECT_FALSE(disarmed.lastTelemetry().armed);
}

TEST(RunnerTelemetry, StatsRegisterUnderPrefix)
{
    RunnerOptions options;
    options.threads = 2;
    options.telemetry = true;
    Runner runner(options);
    runner.run(fourPointScenario(), {"x"}, trivialKernel());

    obs::StatRegistry registry;
    runner.lastTelemetry().registerStats(registry, "tel");
    EXPECT_EQ(registry.value("tel.points"), 4.0);
    EXPECT_TRUE(registry.contains("tel.point_ns"));
    EXPECT_TRUE(registry.contains("tel.load_imbalance"));
    EXPECT_TRUE(registry.contains("tel.worker0.utilization"));
    EXPECT_TRUE(registry.contains("tel.worker1.utilization"));
}

TEST(RunnerTelemetry, TracedParallelRunEmitsPerWorkerTracks)
{
    obs::EventTracer &tracer = obs::globalTracer();
    tracer.clear();
    tracer.setEnabled(true);
    RunnerOptions options;
    options.threads = 2;
    Runner runner(options);
    runner.run(fourPointScenario("traced-pool"), {"x"},
               trivialKernel());
    tracer.setEnabled(false);

    std::set<std::string> categories;
    std::size_t pointSpans = 0;
    for (const auto &event : tracer.events()) {
        categories.insert(event.category);
        if (std::string(event.name).rfind("i=", 0) == 0)
            ++pointSpans;
    }
    tracer.clear();
    EXPECT_TRUE(categories.count("runner worker 0"));
    EXPECT_TRUE(categories.count("runner worker 1"));
    // One span per point, named by the point's label.
    EXPECT_EQ(pointSpans, 4u);
}

TEST(RunDiagnosis, ComputesUtilizationImbalanceAndTopK)
{
    RunnerTelemetry t;
    t.armed = true;
    t.threadsUsed = 2;
    t.pointCount = 3;
    t.wallNs = 1000;
    t.workers = {
        WorkerTelemetry{0, 2, 900, 0, 100, 1000},
        WorkerTelemetry{1, 1, 300, 0, 700, 1000},
    };
    t.points = {
        PointTiming{0, 0, 0, 500, "a"},
        PointTiming{1, 0, 500, 400, "b"},
        PointTiming{2, 1, 0, 300, "c"},
    };

    const RunDiagnosis d = diagnoseRun(t, 2);
    ASSERT_EQ(d.workerUtilization.size(), 2u);
    EXPECT_DOUBLE_EQ(d.workerUtilization[0], 0.9);
    EXPECT_DOUBLE_EQ(d.workerUtilization[1], 0.3);
    // max/mean = 900 / 600
    EXPECT_DOUBLE_EQ(d.loadImbalance, 1.5);
    // (900 + 300) / (1000 * 2)
    EXPECT_DOUBLE_EQ(d.parallelEfficiency, 0.6);
    ASSERT_EQ(d.slowestPoints.size(), 2u);
    EXPECT_EQ(d.slowestPoints[0].index, 0u);
    EXPECT_EQ(d.slowestPoints[1].index, 1u);

    const std::string text = formatDiagnosis(d);
    EXPECT_NE(text.find("load imbalance 1.50x"),
              std::string::npos);
    EXPECT_NE(text.find("worker  0"), std::string::npos);
}

TEST(AmdahlFit, RecoversKnownSerialFraction)
{
    // T(n) = 1000 * (0.3 + 0.7 / n), exactly Amdahl with s = 0.3.
    std::vector<std::pair<unsigned, double>> samples;
    for (unsigned n : {1u, 2u, 4u, 8u})
        samples.emplace_back(
            n, 1000.0 * (0.3 + 0.7 / static_cast<double>(n)));
    const AmdahlFit fit = fitAmdahl(samples);
    ASSERT_TRUE(fit.ok);
    EXPECT_NEAR(fit.serialFraction, 0.3, 1e-9);
    EXPECT_NEAR(fit.t1Ns, 1000.0, 1e-6);
    EXPECT_NEAR(fit.speedupAt(8.0),
                1.0 / (0.3 + 0.7 / 8.0), 1e-9);
}

TEST(AmdahlFit, NeedsTwoDistinctThreadCounts)
{
    EXPECT_FALSE(fitAmdahl({}).ok);
    EXPECT_FALSE(fitAmdahl({{4, 100.0}}).ok);
    // Thread count 0 (inline) aliases to 1 — still one count.
    EXPECT_FALSE(fitAmdahl({{0, 100.0}, {1, 110.0}}).ok);
    EXPECT_TRUE(fitAmdahl({{1, 100.0}, {2, 60.0}}).ok);
}

TEST(AmdahlFit, AveragesDuplicateThreadCounts)
{
    // Two noisy samples at each n, symmetric around the ideal
    // curve with s = 0.5: averaging must recover the exact fit.
    std::vector<std::pair<unsigned, double>> samples;
    for (unsigned n : {1u, 2u, 4u}) {
        const double ideal =
            100.0 * (0.5 + 0.5 / static_cast<double>(n));
        samples.emplace_back(n, ideal + 5.0);
        samples.emplace_back(n, ideal - 5.0);
    }
    const AmdahlFit fit = fitAmdahl(samples);
    ASSERT_TRUE(fit.ok);
    EXPECT_NEAR(fit.serialFraction, 0.5, 1e-9);
}

TEST(AmdahlFit, ClampsSerialFractionToUnitInterval)
{
    // Anti-scaling (more threads, slower): the raw regression
    // would report s > 1; the fit clamps it.
    const AmdahlFit fit =
        fitAmdahl({{1, 100.0}, {2, 150.0}, {4, 200.0}});
    ASSERT_TRUE(fit.ok);
    EXPECT_GE(fit.serialFraction, 0.0);
    EXPECT_LE(fit.serialFraction, 1.0);
}
