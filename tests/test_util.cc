/**
 * @file
 * Unit tests for the util substrate: PRNG, statistics, tables,
 * CSV escaping, charts and the option parser.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>

#include "util/ascii_chart.hh"
#include "util/csv.hh"
#include "util/logging.hh"
#include "util/options.hh"
#include "util/random.hh"
#include "util/stats.hh"
#include "util/status.hh"
#include "util/table.hh"

namespace uatm {
namespace {

// ---------------------------------------------------------------- Rng

TEST(Rng, DeterministicFromSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a() == b();
    EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.nextBelow(13), 13u);
}

TEST(Rng, NextBelowCoversAllResidues)
{
    Rng rng(11);
    std::map<std::uint64_t, int> seen;
    for (int i = 0; i < 5000; ++i)
        ++seen[rng.nextBelow(7)];
    EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextInRangeInclusiveBounds)
{
    Rng rng(3);
    bool hit_lo = false, hit_hi = false;
    for (int i = 0; i < 20000; ++i) {
        const auto v = rng.nextInRange(-2, 2);
        EXPECT_GE(v, -2);
        EXPECT_LE(v, 2);
        hit_lo |= v == -2;
        hit_hi |= v == 2;
    }
    EXPECT_TRUE(hit_lo);
    EXPECT_TRUE(hit_hi);
}

TEST(Rng, NextDoubleInUnitInterval)
{
    Rng rng(5);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double u = rng.nextDouble();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, NextBoolMatchesProbability)
{
    Rng rng(9);
    int hits = 0;
    const int n = 40000;
    for (int i = 0; i < n; ++i)
        hits += rng.nextBool(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, StackDistanceFavoursTop)
{
    Rng rng(13);
    std::vector<int> counts(16, 0);
    for (int i = 0; i < 40000; ++i)
        ++counts[rng.nextStackDistance(16, 0.7)];
    // Geometric decay: index 0 strictly dominates index 4.
    EXPECT_GT(counts[0], counts[4]);
    EXPECT_GT(counts[1], counts[8]);
}

TEST(Rng, StackDistanceWithinBound)
{
    Rng rng(17);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.nextStackDistance(5, 0.99), 5u);
}

TEST(Rng, WeightedRespectsWeights)
{
    Rng rng(21);
    std::vector<double> w = {1.0, 0.0, 3.0};
    std::vector<int> counts(3, 0);
    for (int i = 0; i < 40000; ++i)
        ++counts[rng.nextWeighted(w)];
    EXPECT_EQ(counts[1], 0);
    EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.3);
}

TEST(Rng, ForkedStreamsAreIndependent)
{
    Rng parent(31);
    Rng child = parent.fork();
    // The child should not replay the parent's stream.
    Rng parent2(31);
    parent2.fork();
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += child() == parent();
    EXPECT_LT(same, 2);
}

// -------------------------------------------------------- RunningStats

TEST(RunningStats, EmptyIsZero)
{
    RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, KnownMoments)
{
    RunningStats s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 4.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeEqualsCombined)
{
    RunningStats a, b, all;
    for (int i = 0; i < 50; ++i) {
        const double v = std::sin(i) * 10.0;
        (i % 2 ? a : b).add(v);
        all.add(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeIntoEmpty)
{
    RunningStats a, b;
    b.add(1.0);
    b.add(3.0);
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.mean(), 2.0);
}

TEST(RunningStats, MergeEmptyIntoEmpty)
{
    RunningStats a, b;
    a.merge(b);
    EXPECT_EQ(a.count(), 0u);
    EXPECT_EQ(a.mean(), 0.0);
    EXPECT_EQ(a.stddev(), 0.0);
}

TEST(RunningStats, MergeEmptyIntoPopulatedIsNoOp)
{
    RunningStats a, empty;
    a.add(2.0);
    a.add(6.0);
    a.merge(empty);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.mean(), 4.0);
    EXPECT_DOUBLE_EQ(a.variance(), 4.0);
    EXPECT_DOUBLE_EQ(a.min(), 2.0);
    EXPECT_DOUBLE_EQ(a.max(), 6.0);
}

TEST(RunningStats, MergePropagatesMinMaxBothDirections)
{
    RunningStats lo, hi;
    lo.add(-5.0);
    lo.add(0.0);
    hi.add(3.0);
    hi.add(42.0);

    RunningStats a = lo;
    a.merge(hi); // other side holds the max
    EXPECT_DOUBLE_EQ(a.min(), -5.0);
    EXPECT_DOUBLE_EQ(a.max(), 42.0);

    RunningStats b = hi;
    b.merge(lo); // other side holds the min
    EXPECT_DOUBLE_EQ(b.min(), -5.0);
    EXPECT_DOUBLE_EQ(b.max(), 42.0);
    EXPECT_EQ(b.count(), 4u);
    EXPECT_DOUBLE_EQ(b.mean(), 10.0);
}

TEST(RunningStats, ResetReturnsToEmpty)
{
    RunningStats s;
    s.add(7.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    RunningStats other;
    other.add(1.0);
    s.merge(other); // merging after reset behaves like fresh
    EXPECT_EQ(s.count(), 1u);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 1.0);
}

// ------------------------------------------------------------ Histogram

TEST(Histogram, BinningAndEdges)
{
    Histogram h(0.0, 10.0, 10);
    h.add(-1.0); // underflow
    h.add(0.0);  // bin 0
    h.add(9.99); // bin 9
    h.add(10.0); // overflow
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.binCount(0), 1u);
    EXPECT_EQ(h.binCount(9), 1u);
    EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, QuantileInterpolates)
{
    Histogram h(0.0, 100.0, 100);
    for (int i = 0; i < 100; ++i)
        h.add(i + 0.5);
    EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
    EXPECT_NEAR(h.quantile(0.9), 90.0, 1.5);
}

TEST(Histogram, OnlyOutOfRangeSamples)
{
    Histogram h(0.0, 10.0, 5);
    h.add(-100.0);
    h.add(-0.0001);
    h.add(10.0001);
    EXPECT_EQ(h.underflow(), 2u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.total(), 3u);
    for (std::size_t i = 0; i < h.bins(); ++i)
        EXPECT_EQ(h.binCount(i), 0u);
}

TEST(Histogram, OverflowCountsInFractionDenominator)
{
    Histogram h(0.0, 4.0, 4);
    h.add(1.0);  // bin 1
    h.add(99.0); // overflow
    // Fractions are of *all* samples, so the regular bins sum to
    // one half here.
    EXPECT_DOUBLE_EQ(h.binFraction(1), 0.5);
    double sum = 0.0;
    for (std::size_t i = 0; i < h.bins(); ++i)
        sum += h.binFraction(i);
    EXPECT_DOUBLE_EQ(sum, 0.5);
}

TEST(Histogram, ExactUpperEdgeOverflows)
{
    Histogram h(0.0, 8.0, 8);
    h.add(8.0); // [lo, hi) — the upper edge is out
    EXPECT_EQ(h.overflow(), 1u);
    h.add(7.999999);
    EXPECT_EQ(h.binCount(7), 1u);
}

TEST(Histogram, FractionsSumToOne)
{
    Histogram h(0.0, 4.0, 4);
    for (double v : {0.5, 1.5, 2.5, 3.5})
        h.add(v);
    double sum = 0.0;
    for (std::size_t i = 0; i < h.bins(); ++i)
        sum += h.binFraction(i);
    EXPECT_DOUBLE_EQ(sum, 1.0);
}

// ----------------------------------------------------------- CounterGroup

TEST(CounterGroup, IncrementAndQuery)
{
    CounterGroup g;
    g.increment("hits");
    g.increment("hits", 4);
    g.increment("misses", 2);
    EXPECT_EQ(g.value("hits"), 5u);
    EXPECT_EQ(g.value("misses"), 2u);
    EXPECT_EQ(g.value("absent"), 0u);
}

TEST(CounterGroup, FormatPreservesInsertionOrder)
{
    CounterGroup g;
    g.increment("zebra");
    g.increment("apple");
    const auto entries = g.entries();
    ASSERT_EQ(entries.size(), 2u);
    EXPECT_EQ(entries[0].first, "zebra");
    EXPECT_EQ(entries[1].first, "apple");
}

// ------------------------------------------------------------- TextTable

TEST(TextTable, RendersAlignedColumns)
{
    TextTable t({"a", "longheader"});
    t.addRow({"1", "2"});
    const std::string out = t.render();
    EXPECT_NE(out.find("a"), std::string::npos);
    EXPECT_NE(out.find("longheader"), std::string::npos);
    EXPECT_NE(out.find("---"), std::string::npos);
    EXPECT_EQ(t.rows(), 1u);
}

TEST(TextTable, NumFormatsPrecision)
{
    EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
    EXPECT_EQ(TextTable::num(2.0, 0), "2");
}

TEST(TextTable, CsvHasNoPadding)
{
    TextTable t({"x", "y"});
    t.addRow({"1", "22"});
    EXPECT_EQ(t.renderCsv(), "x,y\n1,22\n");
}

// ------------------------------------------------------------- CsvWriter

TEST(CsvWriter, EscapesSpecials)
{
    EXPECT_EQ(CsvWriter::escape("plain"), "plain");
    EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
    EXPECT_EQ(CsvWriter::escape("q\"q"), "\"q\"\"q\"");
}

TEST(CsvWriter, WritesRowsToFile)
{
    const std::string path = "/tmp/uatm_test_csv.csv";
    {
        CsvWriter w(path);
        w.writeRow({"h1", "h2"});
        w.writeNumericRow({1.5, 2.5});
        EXPECT_EQ(w.rowsWritten(), 2u);
    }
    std::ifstream in(path);
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(line, "h1,h2");
    std::getline(in, line);
    EXPECT_EQ(line, "1.5,2.5");
    std::remove(path.c_str());
}

// ------------------------------------------------------------ AsciiChart

TEST(AsciiChart, RendersSeriesAndLegend)
{
    AsciiChart chart(40, 10);
    chart.setTitle("test chart");
    chart.addSeries(ChartSeries{"up", '*', {0, 1, 2}, {0, 1, 2}});
    const std::string out = chart.render();
    EXPECT_NE(out.find("test chart"), std::string::npos);
    EXPECT_NE(out.find("[*] up"), std::string::npos);
    EXPECT_NE(out.find('*'), std::string::npos);
}

TEST(AsciiChart, EmptyChartDoesNotCrash)
{
    AsciiChart chart;
    EXPECT_NE(chart.render().find("empty"), std::string::npos);
}

// ----------------------------------------------------------- OptionParser

TEST(OptionParser, ParsesTypedOptions)
{
    OptionParser p("prog");
    p.addInt("count", 5, "a count");
    p.addDouble("ratio", 0.5, "a ratio");
    p.addString("name", "x", "a name");
    p.addFlag("verbose", "a flag");

    const char *argv[] = {"prog", "--count", "7", "--ratio=0.25",
                          "--verbose"};
    ASSERT_TRUE(p.parse(5, argv));
    EXPECT_EQ(p.getInt("count"), 7);
    EXPECT_DOUBLE_EQ(p.getDouble("ratio"), 0.25);
    EXPECT_EQ(p.getString("name"), "x");
    EXPECT_TRUE(p.getFlag("verbose"));
}

TEST(OptionParser, DefaultsSurviveEmptyArgv)
{
    OptionParser p("prog");
    p.addInt("n", 42, "n");
    const char *argv[] = {"prog"};
    ASSERT_TRUE(p.parse(1, argv));
    EXPECT_EQ(p.getInt("n"), 42);
}

TEST(OptionParser, HelpReturnsFalse)
{
    OptionParser p("prog", "desc");
    p.addInt("n", 1, "n");
    const char *argv[] = {"prog", "--help"};
    EXPECT_FALSE(p.parse(2, argv));
}

TEST(OptionParser, UsageMentionsEveryOption)
{
    OptionParser p("prog");
    p.addInt("alpha", 1, "the alpha value");
    p.addFlag("fast", "go fast");
    const std::string usage = p.usage();
    EXPECT_NE(usage.find("--alpha"), std::string::npos);
    EXPECT_NE(usage.find("--fast"), std::string::npos);
    EXPECT_NE(usage.find("the alpha value"), std::string::npos);
}

// ----------------------------------------------- parseKeyValueList

TEST(ParseKeyValueList, EmptyStringIsAnEmptyList)
{
    const auto pairs = parseKeyValueList("");
    ASSERT_TRUE(pairs.ok());
    EXPECT_TRUE(pairs.value().empty());
}

TEST(ParseKeyValueList, SplitsPairsInOrder)
{
    const auto pairs =
        parseKeyValueList("theta=0.99,records=1e6,dist=uniform");
    ASSERT_TRUE(pairs.ok());
    const std::vector<KeyValue> expected = {
        {"theta", "0.99"}, {"records", "1e6"}, {"dist", "uniform"}};
    EXPECT_EQ(pairs.value(), expected);
}

TEST(ParseKeyValueList, ValuesMayBeEmptyAndContainEquals)
{
    const auto pairs = parseKeyValueList("a=,b=x=y");
    ASSERT_TRUE(pairs.ok());
    const std::vector<KeyValue> expected = {{"a", ""},
                                            {"b", "x=y"}};
    EXPECT_EQ(pairs.value(), expected);
}

TEST(ParseKeyValueList, MalformedListsAreParseErrors)
{
    for (const char *bad :
         {"novalue", "=1", "a=1,,b=2", "a=1,", ",a=1"}) {
        const auto pairs = parseKeyValueList(bad);
        ASSERT_FALSE(pairs.ok()) << bad;
        EXPECT_EQ(pairs.status().code(), ErrorCode::ParseError)
            << bad;
    }
}

TEST(OptionParser, GetKeyValueListParsesStringOptions)
{
    OptionParser p("prog");
    p.addString("params", "a=1,b=two", "kv list");
    const char *argv[] = {"prog"};
    ASSERT_TRUE(p.parse(1, argv));
    const auto pairs = p.getKeyValueList("params");
    ASSERT_TRUE(pairs.ok());
    ASSERT_EQ(pairs.value().size(), 2u);
    EXPECT_EQ(pairs.value()[0].key, "a");
    EXPECT_EQ(pairs.value()[1].value, "two");
}

TEST(OptionParser, GetKeyValueListReportsFormatErrors)
{
    OptionParser p("prog");
    p.addString("params", "", "kv list");
    const char *argv[] = {"prog", "--params", "oops"};
    ASSERT_TRUE(p.parse(3, argv));
    const auto pairs = p.getKeyValueList("params");
    ASSERT_FALSE(pairs.ok());
    EXPECT_EQ(pairs.status().code(), ErrorCode::ParseError);
}

// ------------------------------------- OptionParser, negative paths

TEST(OptionParser, FlagAcceptsSpelledOutBooleans)
{
    OptionParser p("prog");
    p.addFlag("a", "a");
    p.addFlag("b", "b");
    p.addFlag("c", "c");
    const char *argv[] = {"prog", "--a=TRUE", "--b=Yes", "--c=0"};
    ASSERT_TRUE(p.parse(4, argv));
    EXPECT_TRUE(p.getFlag("a"));
    EXPECT_TRUE(p.getFlag("b"));
    EXPECT_FALSE(p.getFlag("c"));
}

TEST(OptionParser, BadFlagValueIsFatal)
{
    OptionParser p("prog");
    p.addFlag("fast", "go fast");
    const char *argv[] = {"prog", "--fast=maybe"};
    ASSERT_TRUE(p.parse(2, argv));
    EXPECT_EXIT({ p.getFlag("fast"); },
                ::testing::ExitedWithCode(EXIT_FAILURE),
                "bad flag value");
}

TEST(OptionParser, IntOverflowIsFatal)
{
    OptionParser p("prog");
    p.addInt("n", 0, "n");
    const char *argv[] = {"prog", "--n=99999999999999999999"};
    ASSERT_TRUE(p.parse(2, argv));
    EXPECT_EXIT({ p.getInt("n"); },
                ::testing::ExitedWithCode(EXIT_FAILURE),
                "overflows");
}

TEST(OptionParser, NonNumericIntIsFatal)
{
    OptionParser p("prog");
    p.addInt("n", 0, "n");
    const char *argv[] = {"prog", "--n=12abc"};
    ASSERT_TRUE(p.parse(2, argv));
    EXPECT_EXIT({ p.getInt("n"); },
                ::testing::ExitedWithCode(EXIT_FAILURE),
                "not an integer");
}

TEST(OptionParser, DoubleOverflowIsFatal)
{
    OptionParser p("prog");
    p.addDouble("x", 0.0, "x");
    const char *argv[] = {"prog", "--x=1e999"};
    ASSERT_TRUE(p.parse(2, argv));
    EXPECT_EXIT({ p.getDouble("x"); },
                ::testing::ExitedWithCode(EXIT_FAILURE),
                "overflows");
}

TEST(OptionParser, MissingValueIsFatal)
{
    OptionParser p("prog");
    p.addInt("n", 0, "n");
    const char *argv[] = {"prog", "--n"};
    EXPECT_EXIT({ p.parse(2, argv); },
                ::testing::ExitedWithCode(EXIT_FAILURE),
                "needs a value");
}

TEST(OptionParser, UnknownOptionIsFatal)
{
    OptionParser p("prog");
    const char *argv[] = {"prog", "--bogus"};
    EXPECT_EXIT({ p.parse(2, argv); },
                ::testing::ExitedWithCode(EXIT_FAILURE),
                "unknown option");
}

// ------------------------------------ OptionParser::tryParse, typed

TEST(OptionParser, TryParseAcceptsValidArgv)
{
    OptionParser p("prog");
    p.addInt("n", 1, "n");
    p.addFlag("fast", "fast");
    const char *argv[] = {"prog", "--n=42", "--fast"};
    bool helped = true;
    EXPECT_TRUE(p.tryParse(3, argv, &helped).ok());
    EXPECT_FALSE(helped);
    EXPECT_EQ(p.getInt("n"), 42);
    EXPECT_TRUE(p.getFlag("fast"));
}

TEST(OptionParser, TryParseHelpSetsFlagAndStaysOk)
{
    OptionParser p("prog");
    p.addInt("n", 1, "n");
    const char *argv[] = {"prog", "--help"};
    bool helped = false;
    EXPECT_TRUE(p.tryParse(2, argv, &helped).ok());
    EXPECT_TRUE(helped);
}

TEST(OptionParser, TryParseRejectsRepeatedOption)
{
    // Repetition is ambiguous — neither first- nor last-wins is
    // obviously right — so both spellings are typed errors, not
    // silent overwrites.
    OptionParser p("prog");
    p.addInt("n", 1, "n");
    const char *argv[] = {"prog", "--n=1", "--n=2"};
    const Status status = p.tryParse(3, argv);
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.code(), ErrorCode::InvalidArgument);
    EXPECT_NE(status.message().find("more than once"),
              std::string::npos);
}

TEST(OptionParser, TryParseRejectsRepeatedFlag)
{
    OptionParser p("prog");
    p.addFlag("fast", "fast");
    const char *argv[] = {"prog", "--fast", "--fast"};
    const Status status = p.tryParse(3, argv);
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.code(), ErrorCode::InvalidArgument);
}

TEST(OptionParser, TryParseRejectsEmptyEqualsValue)
{
    // "--name=" is indistinguishable from a typo; omitting the
    // option is how you ask for the default.
    OptionParser p("prog");
    p.addString("out", "default", "out");
    const char *argv[] = {"prog", "--out="};
    const Status status = p.tryParse(2, argv);
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.code(), ErrorCode::InvalidArgument);
    EXPECT_NE(status.message().find("empty value"),
              std::string::npos);
}

TEST(OptionParser, TryParseRejectsUnknownAndPositional)
{
    OptionParser p("prog");
    p.addInt("n", 1, "n");
    {
        const char *argv[] = {"prog", "--bogus"};
        const Status status = p.tryParse(2, argv);
        ASSERT_FALSE(status.ok());
        EXPECT_EQ(status.code(), ErrorCode::InvalidArgument);
    }
    {
        OptionParser q("prog");
        q.addInt("n", 1, "n");
        const char *argv[] = {"prog", "stray"};
        const Status status = q.tryParse(2, argv);
        ASSERT_FALSE(status.ok());
        EXPECT_EQ(status.code(), ErrorCode::InvalidArgument);
    }
}

TEST(OptionParser, TryParseRejectsMissingValue)
{
    OptionParser p("prog");
    p.addInt("n", 1, "n");
    const char *argv[] = {"prog", "--n"};
    const Status status = p.tryParse(2, argv);
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.code(), ErrorCode::InvalidArgument);
}

// ------------------------------------------------- Status, Expected

TEST(Status, DefaultIsOk)
{
    const Status status;
    EXPECT_TRUE(status.ok());
    EXPECT_EQ(status.code(), ErrorCode::Ok);
    EXPECT_EQ(status.toString(), "ok");
}

TEST(Status, ErrorCarriesCodeAndFoldedMessage)
{
    const Status status =
        Status::invalidArgument("bad size ", 42, " for axis");
    EXPECT_FALSE(status.ok());
    EXPECT_EQ(status.code(), ErrorCode::InvalidArgument);
    EXPECT_EQ(status.message(), "bad size 42 for axis");
    EXPECT_EQ(status.toString(),
              "invalid_argument: bad size 42 for axis");
}

TEST(Status, EveryCodeHasAName)
{
    EXPECT_STREQ(errorCodeName(ErrorCode::Ok), "ok");
    EXPECT_STREQ(errorCodeName(ErrorCode::InvalidArgument),
                 "invalid_argument");
    EXPECT_STREQ(errorCodeName(ErrorCode::ParseError),
                 "parse_error");
    EXPECT_STREQ(errorCodeName(ErrorCode::IoError), "io_error");
    EXPECT_STREQ(errorCodeName(ErrorCode::NotFound), "not_found");
    EXPECT_STREQ(errorCodeName(ErrorCode::OutOfRange),
                 "out_of_range");
    EXPECT_STREQ(errorCodeName(ErrorCode::KernelError),
                 "kernel_error");
    EXPECT_STREQ(errorCodeName(ErrorCode::Unavailable),
                 "unavailable");
}

TEST(Expected, HoldsValueOrStatus)
{
    const Expected<int> good = 7;
    EXPECT_TRUE(good.ok());
    EXPECT_EQ(good.value(), 7);
    EXPECT_EQ(good.valueOr(0), 7);

    const Expected<int> bad = Status::notFound("no such thing");
    EXPECT_FALSE(bad.ok());
    EXPECT_EQ(bad.status().code(), ErrorCode::NotFound);
    EXPECT_EQ(bad.valueOr(-1), -1);
}

TEST(Expected, MoveOnlyValuesUnwrap)
{
    Expected<std::unique_ptr<int>> e =
        std::make_unique<int>(5);
    auto p = okOrThrow(std::move(e));
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(*p, 5);
}

TEST(Expected, OkOrThrowRaisesStatusError)
{
    const Status status = Status::parseError("bad line");
    EXPECT_THROW(okOrThrow(status), StatusError);
    try {
        okOrThrow(Expected<int>(Status::ioError("disk gone")));
        FAIL() << "expected StatusError";
    } catch (const StatusError &e) {
        EXPECT_EQ(e.status().code(), ErrorCode::IoError);
        EXPECT_NE(std::string(e.what()).find("disk gone"),
                  std::string::npos);
    }
}

TEST(Expected, ValueOnErrorIsACallerBug)
{
    const Expected<int> bad = Status::notFound("gone");
    EXPECT_DEATH({ bad.value(); }, "Expected::value");
}

// --------------------------------------------------------------- Logging

TEST(Logging, LevelNamesRoundTrip)
{
    for (LogLevel level :
         {LogLevel::Quiet, LogLevel::Warn, LogLevel::Inform,
          LogLevel::Debug}) {
        EXPECT_EQ(logLevelFromString(logLevelName(level)), level);
    }
    EXPECT_EQ(logLevelFromString("info"), LogLevel::Inform);
    EXPECT_EQ(logLevelFromString("nonsense", LogLevel::Warn),
              LogLevel::Warn);
}

TEST(Logging, SetLevelFiltersLowerSeverities)
{
    const LogLevel was = logLevel();
    setLogLevel(LogLevel::Warn);
    EXPECT_TRUE(detail::levelEnabled(LogLevel::Warn));
    EXPECT_FALSE(detail::levelEnabled(LogLevel::Inform));
    EXPECT_FALSE(detail::levelEnabled(LogLevel::Debug));
    setLogLevel(LogLevel::Debug);
    EXPECT_TRUE(detail::levelEnabled(LogLevel::Debug));
    setLogLevel(LogLevel::Quiet);
    EXPECT_FALSE(detail::levelEnabled(LogLevel::Warn));
    setLogLevel(was);
}

TEST(Logging, TimestampToggle)
{
    const bool was = logTimestamps();
    setLogTimestamps(true);
    EXPECT_TRUE(logTimestamps());
    setLogTimestamps(false);
    EXPECT_FALSE(logTimestamps());
    setLogTimestamps(was);
}

} // namespace
} // namespace uatm
