/**
 * @file
 * Tests for the YCSB-style key-value workload: the zipfian sampler
 * against the analytic distribution, the six mixes' operation
 * semantics, and the TraceSource contract (reset/clone).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "trace/ycsb.hh"
#include "util/random.hh"

namespace uatm {
namespace {

double
zeta(std::uint64_t n, double theta)
{
    double sum = 0.0;
    for (std::uint64_t i = 1; i <= n; ++i)
        sum += 1.0 / std::pow(static_cast<double>(i), theta);
    return sum;
}

// ------------------------------------------------- ZipfianSampler

TEST(ZipfianSampler, MatchesTheAnalyticCdf)
{
    constexpr std::uint64_t kItems = 1000;
    constexpr double kTheta = 0.99;
    constexpr std::size_t kDraws = 200000;

    ZipfianSampler zipf(kItems, kTheta);
    Rng rng(42);
    std::vector<std::uint64_t> counts(kItems, 0);
    for (std::size_t i = 0; i < kDraws; ++i) {
        const std::uint64_t rank = zipf.next(rng);
        ASSERT_LT(rank, kItems);
        ++counts[rank];
    }

    // Empirical CDF against sum_{i<=r} (1/(i+1)^theta) / zeta_n.
    const double zetan = zeta(kItems, kTheta);
    double analytic = 0.0;
    std::uint64_t seen = 0;
    std::uint64_t from = 0;
    for (std::uint64_t rank : {std::uint64_t{0}, std::uint64_t{1},
                               std::uint64_t{9}, std::uint64_t{99},
                               std::uint64_t{999}}) {
        // Accumulate up to and including this rank.
        for (std::uint64_t i = from; i <= rank; ++i) {
            analytic +=
                1.0 /
                (std::pow(static_cast<double>(i + 1), kTheta) *
                 zetan);
            seen += counts[i];
        }
        from = rank + 1;
        const double empirical =
            static_cast<double>(seen) / kDraws;
        // Gray's inversion is exact for ranks 0/1 and a continuous
        // approximation beyond, hence the loose-ish tolerance.
        EXPECT_NEAR(empirical, analytic, 0.02) << "rank " << rank;
    }
}

TEST(ZipfianSampler, RankZeroIsTheHottest)
{
    ZipfianSampler zipf(100, 0.99);
    Rng rng(7);
    std::vector<std::uint64_t> counts(100, 0);
    for (int i = 0; i < 50000; ++i)
        ++counts[zipf.next(rng)];
    EXPECT_GT(counts[0], counts[1]);
    EXPECT_GT(counts[1], counts[10]);
    EXPECT_GT(counts[10], counts[99]);
}

TEST(ZipfianSampler, GrownDomainMatchesAFreshSampler)
{
    // grow() maintains zeta incrementally; the grown sampler must
    // draw from the same distribution as one built at full size.
    ZipfianSampler grown(100, 0.9);
    for (int i = 0; i < 400; ++i)
        grown.grow();
    ZipfianSampler fresh(500, 0.9);
    ASSERT_EQ(grown.items(), fresh.items());

    Rng rng_a(3);
    Rng rng_b(3);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(grown.next(rng_a), fresh.next(rng_b));
}

// ----------------------------------------------------- mix parsing

TEST(YcsbMix, ParsesCaseInsensitively)
{
    EXPECT_EQ(YcsbWorkload::parseMix("a").value(),
              YcsbWorkload::Mix::A);
    EXPECT_EQ(YcsbWorkload::parseMix("F").value(),
              YcsbWorkload::Mix::F);
    EXPECT_FALSE(YcsbWorkload::parseMix("g").ok());
    EXPECT_FALSE(YcsbWorkload::parseMix("ab").ok());
    EXPECT_FALSE(YcsbWorkload::parseMix("").ok());
    EXPECT_STREQ(YcsbWorkload::mixName(YcsbWorkload::Mix::D), "d");
}

// ------------------------------------------------- mix semantics

YcsbWorkload::Config
smallConfig(YcsbWorkload::Mix mix)
{
    YcsbWorkload::Config config;
    config.mix = mix;
    config.records = 2000;
    return config;
}

double
storeFraction(YcsbWorkload::Mix mix, std::size_t refs = 20000)
{
    YcsbWorkload gen(smallConfig(mix), Rng(11));
    std::size_t stores = 0;
    for (std::size_t i = 0; i < refs; ++i)
        stores += gen.next()->kind == RefKind::Store;
    return static_cast<double>(stores) / refs;
}

TEST(YcsbWorkload, MixCIsReadOnly)
{
    EXPECT_EQ(storeFraction(YcsbWorkload::Mix::C), 0.0);
}

TEST(YcsbWorkload, StoreFractionsTrackTheMixTables)
{
    // A: 50% update ops, every ref of an update is a store.
    EXPECT_NEAR(storeFraction(YcsbWorkload::Mix::A), 0.5, 0.05);
    // B: 5% update ops.
    EXPECT_NEAR(storeFraction(YcsbWorkload::Mix::B), 0.05, 0.02);
    // F: RMW is fieldsPerOp loads + 1 store; reads are loads.
    // Ops are 50/50, so stores/refs = 0.5/(0.5*2 + 0.5*3) = 0.2.
    EXPECT_NEAR(storeFraction(YcsbWorkload::Mix::F), 0.2, 0.04);
}

TEST(YcsbWorkload, InsertingMixesGrowTheKeyspace)
{
    for (auto mix :
         {YcsbWorkload::Mix::D, YcsbWorkload::Mix::E}) {
        const YcsbWorkload::Config config = smallConfig(mix);
        YcsbWorkload gen(config, Rng(13));
        const Addr initial_end =
            config.base + config.records * config.recordBytes;
        bool grew = false;
        for (int i = 0; i < 30000 && !grew; ++i)
            grew = gen.next()->addr >= initial_end;
        EXPECT_TRUE(grew) << YcsbWorkload::mixName(mix);
    }
}

TEST(YcsbWorkload, NonInsertingMixesStayInTheLoadedRange)
{
    for (auto mix : {YcsbWorkload::Mix::A, YcsbWorkload::Mix::B,
                     YcsbWorkload::Mix::C, YcsbWorkload::Mix::F}) {
        const YcsbWorkload::Config config = smallConfig(mix);
        YcsbWorkload gen(config, Rng(17));
        const Addr end =
            config.base + config.records * config.recordBytes;
        for (int i = 0; i < 10000; ++i) {
            const auto ref = *gen.next();
            ASSERT_GE(ref.addr, config.base);
            ASSERT_LT(ref.addr, end);
        }
    }
}

TEST(YcsbWorkload, UniformModeCoversTheKeyspaceEvenly)
{
    YcsbWorkload::Config config = smallConfig(YcsbWorkload::Mix::C);
    config.zipfian = false;
    config.fieldsPerOp = 1;
    YcsbWorkload gen(config, Rng(19));
    std::vector<std::uint64_t> hits(config.records, 0);
    constexpr std::size_t kRefs = 100000;
    for (std::size_t i = 0; i < kRefs; ++i) {
        const std::uint64_t key =
            (gen.next()->addr - config.base) / config.recordBytes;
        ++hits[key];
    }
    // Every key lands near kRefs / records; zipfian would put
    // orders of magnitude more on the head.
    const double expected =
        static_cast<double>(kRefs) / config.records;
    std::uint64_t max_hits = 0;
    for (auto h : hits)
        max_hits = std::max(max_hits, h);
    EXPECT_LT(static_cast<double>(max_hits), expected * 3);
}

TEST(YcsbWorkload, ZipfianModeConcentratesOnHotRecords)
{
    YcsbWorkload::Config config = smallConfig(YcsbWorkload::Mix::C);
    config.fieldsPerOp = 1;
    YcsbWorkload gen(config, Rng(19));
    std::vector<std::uint64_t> hits(config.records, 0);
    constexpr std::size_t kRefs = 100000;
    for (std::size_t i = 0; i < kRefs; ++i) {
        const std::uint64_t key =
            (gen.next()->addr - config.base) / config.recordBytes;
        ++hits[key];
    }
    std::uint64_t max_hits = 0;
    for (auto h : hits)
        max_hits = std::max(max_hits, h);
    const double expected =
        static_cast<double>(kRefs) / config.records;
    EXPECT_GT(static_cast<double>(max_hits), expected * 20);
}

// --------------------------------------------- TraceSource contract

TEST(YcsbWorkload, ResetRewindsInsertsAndRngState)
{
    YcsbWorkload gen(smallConfig(YcsbWorkload::Mix::E), Rng(23));
    const auto head = gen.drain(2000); // includes inserts
    gen.reset();
    EXPECT_EQ(gen.drain(2000), head);
}

TEST(YcsbWorkload, CloneOfUsedSourceRewindsToStart)
{
    YcsbWorkload gen(smallConfig(YcsbWorkload::Mix::D), Rng(29));
    const auto head = gen.clone()->drain(1500);
    gen.drain(777); // leave the original mid-stream, post-insert
    auto copy = gen.clone();
    ASSERT_NE(copy, nullptr);
    EXPECT_EQ(copy->drain(1500), head);
}

TEST(YcsbWorkload, SeedsChangeTheStream)
{
    YcsbWorkload a(smallConfig(YcsbWorkload::Mix::A), Rng(1));
    YcsbWorkload b(smallConfig(YcsbWorkload::Mix::A), Rng(2));
    EXPECT_NE(a.drain(500), b.drain(500));
}

} // namespace
} // namespace uatm
