/**
 * @file
 * Unit tests for the trace substrate: reference records, the trace
 * container, source adaptors, file formats and the profiler.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "trace/io.hh"
#include "trace/ref.hh"
#include "trace/source.hh"
#include "trace/trace_stats.hh"

namespace uatm {
namespace {

MemoryReference
makeRef(RefKind kind, Addr addr, std::uint8_t size = 4,
        std::uint32_t gap = 0)
{
    MemoryReference ref;
    ref.kind = kind;
    ref.addr = addr;
    ref.size = size;
    ref.gap = gap;
    return ref;
}

// ------------------------------------------------------------------ ref

TEST(Ref, KindNames)
{
    EXPECT_STREQ(refKindName(RefKind::Load), "load");
    EXPECT_STREQ(refKindName(RefKind::Store), "store");
    EXPECT_STREQ(refKindName(RefKind::IFetch), "ifetch");
}

TEST(Ref, ValidAccessSizes)
{
    EXPECT_TRUE(isValidAccessSize(1));
    EXPECT_TRUE(isValidAccessSize(2));
    EXPECT_TRUE(isValidAccessSize(4));
    EXPECT_TRUE(isValidAccessSize(8));
    EXPECT_FALSE(isValidAccessSize(0));
    EXPECT_FALSE(isValidAccessSize(3));
    EXPECT_FALSE(isValidAccessSize(16));
}

TEST(Ref, AlignDown)
{
    EXPECT_EQ(alignDown(0x1237, 16), 0x1230u);
    EXPECT_EQ(alignDown(0x1230, 16), 0x1230u);
    EXPECT_EQ(alignDown(7, 1), 7u);
}

// ---------------------------------------------------------------- Trace

TEST(Trace, AppendAndIterate)
{
    Trace t;
    t.append(makeRef(RefKind::Load, 0x100, 4, 2));
    t.append(makeRef(RefKind::Store, 0x200, 8, 0));
    EXPECT_EQ(t.size(), 2u);
    EXPECT_EQ(t.at(0).addr, 0x100u);
    EXPECT_EQ(t.at(1).kind, RefKind::Store);
}

TEST(Trace, InstructionCountIncludesGaps)
{
    Trace t;
    t.append(makeRef(RefKind::Load, 0, 4, 2));  // 3 instructions
    t.append(makeRef(RefKind::Store, 4, 4, 5)); // 6 instructions
    EXPECT_EQ(t.instructionCount(), 9u);
}

TEST(Trace, CountKind)
{
    Trace t;
    t.append(makeRef(RefKind::Load, 0));
    t.append(makeRef(RefKind::Load, 4));
    t.append(makeRef(RefKind::Store, 8));
    EXPECT_EQ(t.countKind(RefKind::Load), 2u);
    EXPECT_EQ(t.countKind(RefKind::Store), 1u);
    EXPECT_EQ(t.countKind(RefKind::IFetch), 0u);
}

TEST(Trace, NextExhaustsAndResets)
{
    Trace t;
    t.append(makeRef(RefKind::Load, 0x10));
    EXPECT_TRUE(t.next().has_value());
    EXPECT_FALSE(t.next().has_value());
    t.reset();
    EXPECT_TRUE(t.next().has_value());
}

TEST(Trace, DrainStopsAtLimitAndEnd)
{
    Trace t;
    for (int i = 0; i < 5; ++i)
        t.append(makeRef(RefKind::Load, 4 * i));
    EXPECT_EQ(t.drain(3).size(), 3u);
    t.reset();
    EXPECT_EQ(t.drain(50).size(), 5u);
}

// --------------------------------------------------------- LimitedSource

TEST(LimitedSource, CapsAnEndlessSource)
{
    Trace t;
    for (int i = 0; i < 10; ++i)
        t.append(makeRef(RefKind::Load, 4 * i));
    LimitedSource limited(t, 4);
    EXPECT_EQ(limited.drain(100).size(), 4u);
}

TEST(LimitedSource, ResetRestoresBudget)
{
    Trace t;
    for (int i = 0; i < 10; ++i)
        t.append(makeRef(RefKind::Load, 4 * i));
    LimitedSource limited(t, 4);
    limited.drain(100);
    limited.reset();
    EXPECT_EQ(limited.drain(100).size(), 4u);
}

// ------------------------------------------------------------ text format

TEST(TextTrace, RoundTrips)
{
    Trace t;
    t.append(makeRef(RefKind::Load, 0xdeadbeef, 8, 3));
    t.append(makeRef(RefKind::Store, 0x42, 2, 0));
    t.append(makeRef(RefKind::IFetch, 0x1000, 4, 1));

    std::stringstream buffer;
    TextTraceFormat::write(t, buffer);
    const Trace back = okOrThrow(TextTraceFormat::read(buffer));

    ASSERT_EQ(back.size(), t.size());
    for (std::size_t i = 0; i < t.size(); ++i)
        EXPECT_EQ(back.at(i), t.at(i)) << "record " << i;
}

TEST(TextTrace, SkipsCommentsAndBlanks)
{
    std::stringstream in("# header\n\nL ff 4 0\n");
    const Trace t = okOrThrow(TextTraceFormat::read(in));
    ASSERT_EQ(t.size(), 1u);
    EXPECT_EQ(t.at(0).addr, 0xffu);
}

TEST(TextTrace, FileRoundTrip)
{
    const std::string path = "/tmp/uatm_test_trace.txt";
    Trace t;
    t.append(makeRef(RefKind::Store, 0x1234, 4, 9));
    ASSERT_TRUE(TextTraceFormat::writeFile(t, path).ok());
    const Trace back = okOrThrow(TextTraceFormat::readFile(path));
    ASSERT_EQ(back.size(), 1u);
    EXPECT_EQ(back.at(0), t.at(0));
    std::remove(path.c_str());
}

// ----------------------------------------------------------- binary format

TEST(BinaryTrace, RoundTrips)
{
    Trace t;
    for (int i = 0; i < 100; ++i) {
        t.append(makeRef(i % 3 == 0 ? RefKind::Store : RefKind::Load,
                         0x1000 + 8 * i, 8,
                         static_cast<std::uint32_t>(i % 7)));
    }
    std::stringstream buffer;
    BinaryTraceFormat::write(t, buffer);
    const Trace back = okOrThrow(BinaryTraceFormat::read(buffer));
    ASSERT_EQ(back.size(), t.size());
    for (std::size_t i = 0; i < t.size(); ++i)
        EXPECT_EQ(back.at(i), t.at(i)) << "record " << i;
}

TEST(BinaryTrace, FileRoundTrip)
{
    const std::string path = "/tmp/uatm_test_trace.bin";
    Trace t;
    t.append(makeRef(RefKind::Load, 0xabcdef0123, 8, 2));
    ASSERT_TRUE(BinaryTraceFormat::writeFile(t, path).ok());
    const Trace back = okOrThrow(BinaryTraceFormat::readFile(path));
    ASSERT_EQ(back.size(), 1u);
    EXPECT_EQ(back.at(0), t.at(0));
    std::remove(path.c_str());
}

TEST(TextTrace, MalformedLineIsParseError)
{
    std::stringstream in("L zz not a trace\n");
    const auto result = TextTraceFormat::read(in);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), ErrorCode::ParseError);
    EXPECT_NE(result.status().message().find("malformed"),
              std::string::npos);
}

TEST(TextTrace, BadAccessSizeIsParseError)
{
    std::stringstream in("L ff 3 0\n");
    const auto result = TextTraceFormat::read(in);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), ErrorCode::ParseError);
    EXPECT_NE(result.status().message().find("access size"),
              std::string::npos);
}

TEST(TextTrace, BadKindIsParseError)
{
    std::stringstream in("Q ff 4 0\n");
    const auto result = TextTraceFormat::read(in);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), ErrorCode::ParseError);
    EXPECT_NE(result.status().message().find("kind"),
              std::string::npos);
}

TEST(BinaryTrace, BadMagicIsParseError)
{
    std::stringstream in("this is not a trace file at all");
    const auto result = BinaryTraceFormat::read(in);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), ErrorCode::ParseError);
    EXPECT_NE(result.status().message().find("magic"),
              std::string::npos);
}

TEST(BinaryTrace, TruncatedBodyIsParseError)
{
    Trace t;
    t.append(MemoryReference{0x10, 0, 4, RefKind::Load});
    t.append(MemoryReference{0x20, 0, 4, RefKind::Load});
    std::stringstream buffer;
    BinaryTraceFormat::write(t, buffer);
    const std::string whole = buffer.str();
    // Drop the last 10 bytes: mid-record truncation.
    std::stringstream cut(
        whole.substr(0, whole.size() - 10));
    const auto result = BinaryTraceFormat::read(cut);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), ErrorCode::ParseError);
    EXPECT_NE(result.status().message().find("truncated"),
              std::string::npos);
}

TEST(BinaryTrace, BadRecordKindIsParseError)
{
    Trace t;
    t.append(MemoryReference{0x10, 0, 4, RefKind::Load});
    std::stringstream buffer;
    BinaryTraceFormat::write(t, buffer);
    std::string whole = buffer.str();
    whole.back() = 0x7f; // corrupt the record's kind byte
    std::stringstream corrupt(whole);
    const auto result = BinaryTraceFormat::read(corrupt);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), ErrorCode::ParseError);
    EXPECT_NE(result.status().message().find("kind"),
              std::string::npos);
}

TEST(TraceIo, MissingFileIsIoError)
{
    const auto result =
        TextTraceFormat::readFile("/nonexistent/trace.txt");
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), ErrorCode::IoError);
    EXPECT_NE(result.status().message().find("cannot open"),
              std::string::npos);
}

TEST(TraceIo, UnwritablePathIsIoError)
{
    Trace t;
    t.append(MemoryReference{0x10, 0, 4, RefKind::Load});
    const Status status =
        TextTraceFormat::writeFile(t, "/nonexistent/dir/t.txt");
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.code(), ErrorCode::IoError);
}

// -------------------------------------------------------- WorkloadProfile

TEST(WorkloadProfile, CountsKindsAndInstructions)
{
    WorkloadProfile profile(32);
    profile.add(makeRef(RefKind::Load, 0x00, 4, 1));
    profile.add(makeRef(RefKind::Store, 0x20, 4, 2));
    profile.add(makeRef(RefKind::Load, 0x04, 4, 0));
    EXPECT_EQ(profile.references(), 3u);
    EXPECT_EQ(profile.loads(), 2u);
    EXPECT_EQ(profile.stores(), 1u);
    EXPECT_EQ(profile.instructions(), 6u);
}

TEST(WorkloadProfile, FootprintCountsDistinctBlocks)
{
    WorkloadProfile profile(32);
    profile.add(makeRef(RefKind::Load, 0x00));
    profile.add(makeRef(RefKind::Load, 0x1f)); // same 32B block
    profile.add(makeRef(RefKind::Load, 0x20)); // next block
    EXPECT_EQ(profile.footprintBlocks(), 2u);
    EXPECT_EQ(profile.footprintBytes(), 64u);
}

TEST(WorkloadProfile, DensityAndStoreFraction)
{
    WorkloadProfile profile;
    profile.add(makeRef(RefKind::Load, 0, 4, 3));  // 4 instructions
    profile.add(makeRef(RefKind::Store, 4, 4, 1)); // 2 instructions
    EXPECT_NEAR(profile.memoryReferenceDensity(), 2.0 / 6.0, 1e-12);
    EXPECT_NEAR(profile.storeFraction(), 0.5, 1e-12);
}

TEST(WorkloadProfile, ConsumeRespectsLimit)
{
    Trace t;
    for (int i = 0; i < 10; ++i)
        t.append(makeRef(RefKind::Load, 4 * i));
    WorkloadProfile profile;
    profile.consume(t, 6);
    EXPECT_EQ(profile.references(), 6u);
}

TEST(WorkloadProfile, FormatMentionsName)
{
    WorkloadProfile profile;
    profile.add(makeRef(RefKind::Load, 0));
    EXPECT_NE(profile.format("myworkload").find("myworkload"),
              std::string::npos);
}

} // namespace
} // namespace uatm
