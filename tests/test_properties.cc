/**
 * @file
 * Parameterized property suites (TEST_P) sweeping the model and the
 * simulator across their operating ranges:
 *
 *  - the Eq. 6 equivalence property at every (mu_m, L, HR, alpha);
 *  - Table 2 phi bounds for every (feature, profile, mu_m);
 *  - cache statistics invariants across geometries and policies;
 *  - LRU conformance against a reference stack model;
 *  - Eq. 19 / Smith agreement on randomized miss-ratio tables;
 *  - memory-scheduler invariants under random operation streams.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <list>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "cache/cache.hh"
#include "cache/stack_sim.hh"
#include "core/execution_time.hh"
#include "core/tradeoff.hh"
#include "cpu/phi_measurement.hh"
#include "linesize/line_tradeoff.hh"
#include "memory/write_buffer.hh"
#include "trace/generators.hh"
#include "trace/ifetch.hh"
#include "trace/reuse_distance.hh"
#include "trace/transform.hh"
#include "trace/ycsb.hh"

namespace uatm {
namespace {

// ==================================================================
// Eq. 6 equivalence property
// ==================================================================

using EquivParam = std::tuple<double /*mu*/, double /*L*/,
                              double /*HR*/, double /*alpha*/>;

class EquivalenceSweep
    : public ::testing::TestWithParam<EquivParam>
{
};

TEST_P(EquivalenceSweep, Eq6HitRatioYieldsEqualExecutionTime)
{
    const auto [mu, line, hr, alpha] = GetParam();
    TradeoffContext ctx;
    ctx.machine.busWidth = 4;
    ctx.machine.lineBytes = line;
    ctx.machine.cycleTime = mu;
    ctx.alpha = alpha;

    const double r = missFactorDoubleBus(ctx);
    const double hr2 = equivalentHitRatio(r, hr);

    const Workload w1 =
        Workload::fromHitRatio(2e6, 5e5, hr, line, alpha);
    const Workload w2 =
        Workload::fromHitRatio(2e6, 5e5, hr2, line, alpha);
    const double x1 = executionTimeFS(w1, ctx.machine);
    const double x2 =
        executionTimeFS(w2, ctx.machine.withDoubledBus());
    EXPECT_NEAR(x1, x2, x1 * 1e-10);

    // And the mean memory delays agree (Sec. 4.5).
    EXPECT_NEAR(
        meanMemoryDelay(w1, ctx.machine,
                        ctx.machine.lineOverBus()),
        meanMemoryDelay(w2, ctx.machine.withDoubledBus(),
                        ctx.machine.withDoubledBus().lineOverBus()),
        1e-9);
}

TEST_P(EquivalenceSweep, Eq7RoundTripsThroughEq6)
{
    const auto [mu, line, hr, alpha] = GetParam();
    TradeoffContext ctx;
    ctx.machine.busWidth = 4;
    ctx.machine.lineBytes = line;
    ctx.machine.cycleTime = mu;
    ctx.alpha = alpha;
    const double r = missFactorDoubleBus(ctx);
    const double hr1 = hr + hitRatioGainRequired(r, hr);
    ASSERT_LE(hr1, 1.0);
    EXPECT_NEAR(equivalentHitRatio(r, hr1), hr, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    OperatingPoints, EquivalenceSweep,
    ::testing::Combine(::testing::Values(2.0, 4.0, 9.0, 17.0),
                       ::testing::Values(8.0, 16.0, 32.0),
                       ::testing::Values(0.90, 0.95, 0.99),
                       ::testing::Values(0.0, 0.3, 0.5, 1.0)));

// ==================================================================
// Table 2 phi bounds across features, profiles, cycle times
// ==================================================================

using PhiParam =
    std::tuple<StallFeature, std::string, Cycles>;

class PhiBoundsSweep : public ::testing::TestWithParam<PhiParam>
{
};

TEST_P(PhiBoundsSweep, MeasuredPhiWithinBounds)
{
    const auto [feature, profile, mu] = GetParam();
    PhiExperiment exp;
    exp.feature = feature;
    exp.cycleTime = mu;
    exp.refs = 12000;
    const auto result = measurePhi(exp, profile);
    const PhiBounds bounds = phiBounds(feature, 8.0);
    EXPECT_GE(result.phi, bounds.min - 1e-9);
    EXPECT_LE(result.phi, bounds.max + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    FeatureProfileMu, PhiBoundsSweep,
    ::testing::Combine(
        ::testing::Values(StallFeature::BL, StallFeature::BNL1,
                          StallFeature::BNL2, StallFeature::BNL3),
        ::testing::Values("nasa7", "ear", "hydro2d"),
        ::testing::Values<Cycles>(4, 16, 40)),
    [](const auto &info) {
        return std::string(
                   stallFeatureName(std::get<0>(info.param))) +
               "_" + std::get<1>(info.param) + "_mu" +
               std::to_string(std::get<2>(info.param));
    });

// ==================================================================
// Cache statistics invariants across geometries and policies
// ==================================================================

using CacheParam = std::tuple<std::uint64_t /*size*/,
                              std::uint32_t /*assoc*/,
                              std::uint32_t /*line*/,
                              ReplacementKind, WriteMissPolicy>;

class CacheInvariantSweep
    : public ::testing::TestWithParam<CacheParam>
{
};

TEST_P(CacheInvariantSweep, CountersStayConsistent)
{
    const auto [size, assoc, line, repl, wmiss] = GetParam();
    CacheConfig config;
    config.sizeBytes = size;
    config.assoc = assoc;
    config.lineBytes = line;
    config.replacement = repl;
    config.writeMiss = wmiss;
    SetAssocCache cache(config);

    WorkingSetGenerator::Config ws;
    ws.stackDepth = 300;
    ws.decay = 0.98;
    ws.coldFraction = 0.03;
    ws.storeFraction = 0.35;
    WorkingSetGenerator gen(ws, Rng(size ^ assoc ^ line));

    for (int i = 0; i < 20000; ++i)
        cache.access(*gen.next());

    const CacheStats &s = cache.stats();
    EXPECT_EQ(s.hits + s.misses, s.accesses);
    EXPECT_EQ(s.loads + s.stores, s.accesses);
    EXPECT_EQ(s.loadMisses + s.storeMisses, s.misses);
    EXPECT_LE(s.fills, s.misses);
    EXPECT_LE(s.writebacks, s.fills);
    EXPECT_LE(s.coldMisses, s.misses);
    EXPECT_GE(s.instructions, s.accesses);
    if (wmiss == WriteMissPolicy::WriteAllocate) {
        EXPECT_EQ(s.fills, s.misses);
        EXPECT_EQ(s.storesToMemory, 0u);
    } else {
        EXPECT_EQ(s.fills, s.loadMisses);
        EXPECT_EQ(s.storesToMemory, s.storeMisses);
    }
}

TEST_P(CacheInvariantSweep, OccupancyNeverExceedsCapacity)
{
    const auto [size, assoc, line, repl, wmiss] = GetParam();
    CacheConfig config;
    config.sizeBytes = size;
    config.assoc = assoc;
    config.lineBytes = line;
    config.replacement = repl;
    config.writeMiss = wmiss;
    SetAssocCache cache(config);

    Rng rng(7 * size + assoc);
    std::uint64_t resident_upper_bound = 0;
    for (int i = 0; i < 5000; ++i) {
        MemoryReference ref;
        ref.addr = rng.nextBelow(1 << 20) & ~3ull;
        ref.size = 4;
        ref.kind =
            rng.nextBool(0.3) ? RefKind::Store : RefKind::Load;
        const auto out = cache.access(ref);
        resident_upper_bound += out.fill;
        resident_upper_bound -= 0; // fills never exceed misses
    }
    // Invalidate everything: the dirty count cannot exceed the
    // number of lines the cache can hold.
    EXPECT_LE(cache.invalidateAll(), config.numLines());
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheInvariantSweep,
    ::testing::Combine(
        ::testing::Values<std::uint64_t>(1024, 8192, 65536),
        ::testing::Values<std::uint32_t>(1, 2, 4),
        ::testing::Values<std::uint32_t>(16, 32, 64),
        ::testing::Values(ReplacementKind::LRU,
                          ReplacementKind::FIFO,
                          ReplacementKind::Random),
        ::testing::Values(WriteMissPolicy::WriteAllocate,
                          WriteMissPolicy::WriteAround)));

// ==================================================================
// LRU conformance against a reference stack model
// ==================================================================

class LruConformance
    : public ::testing::TestWithParam<std::uint32_t /*assoc*/>
{
};

TEST_P(LruConformance, MatchesReferenceListModel)
{
    const std::uint32_t assoc = GetParam();
    CacheConfig config;
    config.sizeBytes = static_cast<std::uint64_t>(assoc) * 32;
    config.assoc = assoc; // a single set
    config.lineBytes = 32;
    SetAssocCache cache(config);

    // Reference model: a plain most-recent-first list.
    std::list<Addr> reference;
    Rng rng(assoc * 101);

    for (int i = 0; i < 4000; ++i) {
        const Addr line = rng.nextBelow(assoc * 3) * 32;
        const bool model_hit =
            std::find(reference.begin(), reference.end(), line) !=
            reference.end();
        reference.remove(line);
        reference.push_front(line);
        if (reference.size() > assoc)
            reference.pop_back();

        MemoryReference ref;
        ref.addr = line;
        ref.size = 4;
        const auto out = cache.access(ref);
        ASSERT_EQ(out.hit, model_hit) << "step " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(Assocs, LruConformance,
                         ::testing::Values(1u, 2u, 4u, 8u));

// ==================================================================
// Eq. 19 / Smith agreement on randomized miss-ratio tables
// ==================================================================

class SmithAgreementRandom
    : public ::testing::TestWithParam<std::uint64_t /*seed*/>
{
};

TEST_P(SmithAgreementRandom, ObjectivesAgreeOnRandomTables)
{
    Rng rng(GetParam());
    // Random monotone-decreasing MR(L) with a random flattening
    // tail, random latency and bus width.
    std::vector<LinePoint> points;
    double mr = 0.02 + rng.nextDouble() * 0.15;
    for (std::uint32_t line : {8u, 16u, 32u, 64u, 128u}) {
        points.push_back(LinePoint{line, mr});
        const double factor = 0.45 + rng.nextDouble() * 0.5;
        mr *= factor;
    }
    const MissRatioTable table("random", points);

    LineDelayModel model;
    model.c = 2.0 + rng.nextDouble() * 20.0;
    model.busWidth = rng.nextBool(0.5) ? 4.0 : 8.0;

    for (int i = 0; i < 24; ++i) {
        model.beta = 0.25 + rng.nextDouble() * 10.0;
        const auto ours = tradeoffOptimalLine(table, model, 8);
        const auto smiths = smithOptimalLine(table, model);
        const double o1 =
            model.smithObjective(table.missRatio(ours), ours);
        const double o2 =
            model.smithObjective(table.missRatio(smiths), smiths);
        EXPECT_NEAR(o1, o2, 1e-9)
            << "beta = " << model.beta << " c = " << model.c;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SmithAgreementRandom,
                         ::testing::Range<std::uint64_t>(1, 21));

// ==================================================================
// Memory-scheduler invariants under random operation streams
// ==================================================================

class SchedulerRandomOps
    : public ::testing::TestWithParam<std::uint64_t /*seed*/>
{
};

TEST_P(SchedulerRandomOps, GrantsAreOrderedAndExclusive)
{
    Rng rng(GetParam());
    MemoryConfig config;
    config.busWidthBytes = 4;
    config.cycleTime = 1 + rng.nextBelow(12);
    MemoryTiming timing(config);
    WriteBufferConfig wbuf;
    wbuf.depth = static_cast<std::uint32_t>(rng.nextBelow(5));
    wbuf.readBypass = rng.nextBool(0.7);
    MemoryScheduler scheduler(timing, wbuf);

    Cycles now = 0;
    Cycles last_read_end = 0;
    for (int i = 0; i < 500; ++i) {
        now += rng.nextBelow(40);
        if (rng.nextBool(0.5)) {
            const ReadGrant grant = scheduler.requestRead(now, 32);
            // Reads never start before they are requested and
            // never overlap the previous read.
            ASSERT_GE(grant.start, now);
            ASSERT_GE(grant.start, last_read_end);
            ASSERT_EQ(grant.busWait, grant.start - now);
            last_read_end =
                grant.start + timing.lineTransferTime(32);
            ASSERT_EQ(scheduler.busyUntil(), last_read_end);
        } else {
            const Cycles resume = scheduler.postWrite(
                now, rng.nextBool(0.5) ? 4 : 32);
            // The CPU never resumes in the past.
            ASSERT_GE(resume, now);
            if (wbuf.depth > 0) {
                ASSERT_LE(scheduler.pendingWrites(),
                          wbuf.depth);
            }
        }
    }
    // Draining everything terminates and leaves no pending work.
    scheduler.drainAllAfter(now);
    EXPECT_EQ(scheduler.pendingWrites(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerRandomOps,
                         ::testing::Range<std::uint64_t>(100, 116));

// ==================================================================
// Pipelined exactness across issue intervals q (Eq. 9)
// ==================================================================

using PipeParam = std::tuple<Cycles /*mu*/, Cycles /*q*/>;

class PipelinedExactness
    : public ::testing::TestWithParam<PipeParam>
{
};

TEST_P(PipelinedExactness, EngineMatchesEq9ForEveryQ)
{
    const auto [mu, q] = GetParam();
    if (q > mu)
        GTEST_SKIP() << "q must not exceed mu_m";
    CacheConfig cache;
    cache.sizeBytes = 8 * 1024;
    cache.assoc = 2;
    cache.lineBytes = 32;
    MemoryConfig mem;
    mem.busWidthBytes = 4;
    mem.cycleTime = mu;
    mem.pipelined = true;
    mem.pipelineInterval = q;
    CpuConfig cpu;
    cpu.feature = StallFeature::FS;
    TimingEngine engine(cache, mem, WriteBufferConfig{0, true},
                        cpu);
    auto workload = Spec92Profile::make("swm256", 61);
    const auto stats = engine.run(*workload, 20000);
    const auto &cs = engine.cacheStats();

    const std::uint64_t mu_p = mu + q * (8 - 1);
    const std::uint64_t expected =
        (cs.instructions - cs.fills) + cs.fills * mu_p +
        cs.writebacks * mu_p;
    EXPECT_EQ(stats.cycles, expected);
}

INSTANTIATE_TEST_SUITE_P(
    MuQ, PipelinedExactness,
    ::testing::Combine(::testing::Values<Cycles>(2, 4, 8, 16),
                       ::testing::Values<Cycles>(1, 2, 4, 8)));

// ==================================================================
// Engine monotonicity across the feature ladder, per profile
// ==================================================================

class FeatureLadder
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(FeatureLadder, CyclesDecreaseDownTheLadder)
{
    CacheConfig cache;
    cache.sizeBytes = 8 * 1024;
    cache.assoc = 2;
    cache.lineBytes = 32;
    MemoryConfig mem;
    mem.busWidthBytes = 4;
    mem.cycleTime = 10;

    Cycles previous = ~0ull;
    for (StallFeature f :
         {StallFeature::FS, StallFeature::BL, StallFeature::BNL1,
          StallFeature::BNL2, StallFeature::BNL3,
          StallFeature::NB}) {
        CpuConfig cpu;
        cpu.feature = f;
        cpu.suppressFlushTraffic = true;
        TimingEngine engine(cache, mem,
                            WriteBufferConfig{16, true}, cpu);
        auto workload = Spec92Profile::make(GetParam(), 55);
        const auto cycles = engine.run(*workload, 20000).cycles;
        EXPECT_LE(cycles, previous) << stallFeatureName(f);
        previous = cycles;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Profiles, FeatureLadder,
    ::testing::Values("nasa7", "swm256", "wave5", "ear", "doduc",
                      "hydro2d"));

// ==================================================================
// LRU inclusion across the geometry grid (stack engine)
// ==================================================================

class LruInclusion
    : public ::testing::TestWithParam<std::uint64_t /*seed*/>
{
};

TEST_P(LruInclusion, HitsNondecreasingInAssocAtFixedSets)
{
    // Mattson inclusion: at a fixed set count, a wider LRU cache
    // holds a superset of a narrower one at every instant, so
    // hits must be monotone in associativity.  This is exact for
    // ANY workload, so use a fresh random one per seed.
    WorkingSetGenerator::Config ws;
    Rng rng(GetParam() * 7919 + 5);
    ws.stackDepth = 16 + rng.nextBelow(600);
    ws.decay = 0.9 + rng.nextDouble() * 0.09;
    ws.coldFraction = rng.nextDouble() * 0.1;
    ws.storeFraction = rng.nextDouble() * 0.5;
    WorkingSetGenerator gen(ws, rng.fork());

    GeometryGrid grid;
    grid.setCounts = {1, 8, 64};
    grid.assocs = {1, 2, 4, 8, 16};
    const GeometryHitSurface surface =
        runStackSim(grid, gen, 6000);

    for (std::uint64_t sets : grid.setCounts) {
        std::uint64_t previous = 0;
        for (std::uint32_t assoc : {1u, 2u, 4u, 8u, 16u}) {
            const std::uint64_t hits =
                surface.stats(sets, assoc).hits;
            EXPECT_GE(hits, previous)
                << sets << " sets, " << assoc << "-way";
            previous = hits;
        }
    }
}

TEST_P(LruInclusion, HitsNondecreasingInSizeAtFixedAssoc)
{
    // Growing the cache by adding sets is NOT covered by the
    // inclusion theorem (set splitting can evict differently),
    // but it holds for these stack-friendly reuse workloads and
    // pins the expected Fig. 6-style monotone size curves.
    WorkingSetGenerator::Config ws;
    ws.stackDepth = 400;
    ws.decay = 0.985;
    ws.coldFraction = 0.03;
    ws.storeFraction = 0.3;
    WorkingSetGenerator gen(ws, Rng(GetParam() * 131 + 17));

    GeometryGrid grid;
    grid.setCounts = {8, 32, 128, 512};
    grid.assocs = {1, 2, 4};
    const GeometryHitSurface surface =
        runStackSim(grid, gen, 6000);

    for (std::uint32_t assoc : grid.assocs) {
        std::uint64_t previous = 0;
        for (std::uint64_t sets : grid.setCounts) {
            const std::uint64_t hits =
                surface.stats(sets, assoc).hits;
            EXPECT_GE(hits, previous)
                << sets << " sets, " << assoc << "-way";
            previous = hits;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LruInclusion,
                         ::testing::Range<std::uint64_t>(1, 13));

// ==================================================================
// fillBatch == repeated next() for every trace source
// ==================================================================

struct BatchCase
{
    const char *name;
    std::function<std::unique_ptr<TraceSource>()> make;
};

std::unique_ptr<TraceSource>
batchWorkingSet(std::uint64_t seed)
{
    WorkingSetGenerator::Config ws;
    ws.stackDepth = 100;
    ws.storeFraction = 0.4;
    return std::make_unique<WorkingSetGenerator>(ws, Rng(seed));
}

std::vector<MemoryReference>
makeFiniteRefs(std::size_t count)
{
    std::vector<MemoryReference> refs;
    Rng rng(count);
    for (std::size_t i = 0; i < count; ++i) {
        MemoryReference ref;
        ref.size = 4;
        ref.addr = alignDown(rng.nextBelow(1 << 16), ref.size);
        ref.gap =
            static_cast<std::uint32_t>(rng.nextBelow(4));
        ref.kind =
            rng.nextBool(0.3) ? RefKind::Store : RefKind::Load;
        refs.push_back(ref);
    }
    return refs;
}

class BatchEquivalence : public ::testing::TestWithParam<BatchCase>
{
  protected:
    static void
    expectSameRef(const MemoryReference &a,
                  const MemoryReference &b, std::size_t at)
    {
        ASSERT_EQ(a.addr, b.addr) << "ref " << at;
        ASSERT_EQ(a.size, b.size) << "ref " << at;
        ASSERT_EQ(a.kind, b.kind) << "ref " << at;
        ASSERT_EQ(a.gap, b.gap) << "ref " << at;
    }
};

TEST_P(BatchEquivalence, FillBatchMatchesNext)
{
    constexpr std::size_t kRefs = 1800;
    // Reference stream: one next() at a time.
    auto by_next = GetParam().make();
    std::vector<MemoryReference> expected;
    for (std::size_t i = 0; i < kRefs; ++i) {
        const auto ref = by_next->next();
        if (!ref)
            break;
        expected.push_back(*ref);
    }

    for (std::size_t batch : {std::size_t{1}, std::size_t{3},
                              std::size_t{64}, std::size_t{1000}}) {
        auto by_batch = GetParam().make();
        std::vector<MemoryReference> got(kRefs);
        std::size_t filled = 0;
        while (filled < kRefs) {
            const std::size_t want =
                std::min(batch, kRefs - filled);
            const std::size_t n =
                by_batch->fillBatch(got.data() + filled, want);
            filled += n;
            if (n < want) // exhausted exactly like next()
                break;
        }
        got.resize(filled);
        ASSERT_EQ(got.size(), expected.size())
            << GetParam().name << " batch " << batch;
        for (std::size_t i = 0; i < got.size(); ++i)
            expectSameRef(got[i], expected[i], i);
    }
}

TEST_P(BatchEquivalence, MixedNextAndBatchMatches)
{
    constexpr std::size_t kRefs = 1200;
    auto by_next = GetParam().make();
    std::vector<MemoryReference> expected;
    for (std::size_t i = 0; i < kRefs; ++i) {
        const auto ref = by_next->next();
        if (!ref)
            break;
        expected.push_back(*ref);
    }

    // Alternate single next() calls with odd-sized batches on the
    // SAME source: the contract allows mixing freely.
    auto mixed = GetParam().make();
    std::vector<MemoryReference> got;
    MemoryReference buffer[37];
    bool exhausted = false;
    while (got.size() < kRefs && !exhausted) {
        if (got.size() % 3 == 0) {
            const auto ref = mixed->next();
            if (!ref) {
                exhausted = true;
                break;
            }
            got.push_back(*ref);
        } else {
            const std::size_t want = std::min<std::size_t>(
                37, kRefs - got.size());
            const std::size_t n = mixed->fillBatch(buffer, want);
            got.insert(got.end(), buffer, buffer + n);
            exhausted = n < want;
        }
    }
    if (got.size() > expected.size())
        got.resize(expected.size());
    ASSERT_EQ(got.size(), expected.size()) << GetParam().name;
    for (std::size_t i = 0; i < got.size(); ++i)
        expectSameRef(got[i], expected[i], i);
}

INSTANTIATE_TEST_SUITE_P(
    Sources, BatchEquivalence,
    ::testing::Values(
        BatchCase{"trace",
                  [] {
                      return std::make_unique<Trace>(
                          makeFiniteRefs(700));
                  }},
        BatchCase{"stride",
                  [] {
                      StrideGenerator::Config cfg;
                      cfg.elements = 500;
                      cfg.strideBytes = 16;
                      return std::make_unique<StrideGenerator>(
                          cfg, Rng(3));
                  }},
        BatchCase{"loop_nest",
                  [] {
                      LoopNestGenerator::Config cfg;
                      cfg.rows = 20;
                      cfg.cols = 17;
                      return std::make_unique<LoopNestGenerator>(
                          cfg, Rng(4));
                  }},
        BatchCase{"pointer_chase",
                  [] {
                      PointerChaseGenerator::Config cfg;
                      cfg.nodes = 500;
                      return std::make_unique<
                          PointerChaseGenerator>(cfg, Rng(5));
                  }},
        BatchCase{"working_set", [] { return batchWorkingSet(6); }},
        BatchCase{"phase_mix",
                  [] {
                      std::vector<PhaseMixGenerator::Phase> phases;
                      phases.push_back(PhaseMixGenerator::Phase{
                          batchWorkingSet(7), 90});
                      phases.push_back(PhaseMixGenerator::Phase{
                          batchWorkingSet(8), 41});
                      return std::make_unique<PhaseMixGenerator>(
                          std::move(phases));
                  }},
        BatchCase{"phase_mix_finite",
                  [] {
                      // Finite children: exercises the quota /
                      // exhaustion interplay in batched mode.
                      std::vector<PhaseMixGenerator::Phase> phases;
                      phases.push_back(PhaseMixGenerator::Phase{
                          std::make_unique<Trace>(
                              makeFiniteRefs(130)),
                          40});
                      phases.push_back(PhaseMixGenerator::Phase{
                          std::make_unique<Trace>(
                              makeFiniteRefs(57)),
                          25});
                      return std::make_unique<PhaseMixGenerator>(
                          std::move(phases));
                  }},
        BatchCase{"offset",
                  [] {
                      return std::make_unique<OffsetSource>(
                          batchWorkingSet(9), 1 << 20);
                  }},
        BatchCase{"sample",
                  [] {
                      return std::make_unique<SampleSource>(
                          batchWorkingSet(10), 3);
                  }},
        BatchCase{"kind_filter",
                  [] {
                      return std::make_unique<KindFilterSource>(
                          batchWorkingSet(11), true, false, true);
                  }},
        BatchCase{"time_slice",
                  [] {
                      std::vector<std::unique_ptr<TraceSource>>
                          programs;
                      programs.push_back(batchWorkingSet(12));
                      programs.push_back(batchWorkingSet(13));
                      return std::make_unique<TimeSliceSource>(
                          std::move(programs), 70);
                  }},
        BatchCase{"ifetch",
                  [] {
                      return std::make_unique<IFetchGenerator>(
                          IFetchConfig{}, Rng(14));
                  }},
        BatchCase{"ifetch_interleaved",
                  [] {
                      return std::make_unique<IFetchInterleaver>(
                          batchWorkingSet(15), IFetchConfig{},
                          Rng(16));
                  }},
        BatchCase{"spec92",
                  [] {
                      return Spec92Profile::make("nasa7", 21);
                  }},
        BatchCase{"short_levy",
                  [] { return ShortLevyWorkload::make(22); }},
        BatchCase{"ycsb_a",
                  [] {
                      YcsbWorkload::Config cfg;
                      cfg.mix = YcsbWorkload::Mix::A;
                      cfg.records = 5000;
                      return std::make_unique<YcsbWorkload>(
                          cfg, Rng(23));
                  }},
        BatchCase{"ycsb_e",
                  [] {
                      // Mix E exercises scans and keyspace growth.
                      YcsbWorkload::Config cfg;
                      cfg.mix = YcsbWorkload::Mix::E;
                      cfg.records = 5000;
                      return std::make_unique<YcsbWorkload>(
                          cfg, Rng(24));
                  }},
        BatchCase{"reuse_dist",
                  [] {
                      ReuseDistanceWorkload::Config cfg;
                      cfg.profile =
                          ReuseProfile::geometric(64, 0.9, 0.05);
                      return std::make_unique<
                          ReuseDistanceWorkload>(cfg, Rng(25));
                  }}),
    [](const auto &info) {
        return std::string(info.param.name);
    });

} // namespace
} // namespace uatm
