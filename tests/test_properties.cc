/**
 * @file
 * Parameterized property suites (TEST_P) sweeping the model and the
 * simulator across their operating ranges:
 *
 *  - the Eq. 6 equivalence property at every (mu_m, L, HR, alpha);
 *  - Table 2 phi bounds for every (feature, profile, mu_m);
 *  - cache statistics invariants across geometries and policies;
 *  - LRU conformance against a reference stack model;
 *  - Eq. 19 / Smith agreement on randomized miss-ratio tables;
 *  - memory-scheduler invariants under random operation streams.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <list>
#include <tuple>

#include "cache/cache.hh"
#include "core/execution_time.hh"
#include "core/tradeoff.hh"
#include "cpu/phi_measurement.hh"
#include "linesize/line_tradeoff.hh"
#include "memory/write_buffer.hh"
#include "trace/generators.hh"

namespace uatm {
namespace {

// ==================================================================
// Eq. 6 equivalence property
// ==================================================================

using EquivParam = std::tuple<double /*mu*/, double /*L*/,
                              double /*HR*/, double /*alpha*/>;

class EquivalenceSweep
    : public ::testing::TestWithParam<EquivParam>
{
};

TEST_P(EquivalenceSweep, Eq6HitRatioYieldsEqualExecutionTime)
{
    const auto [mu, line, hr, alpha] = GetParam();
    TradeoffContext ctx;
    ctx.machine.busWidth = 4;
    ctx.machine.lineBytes = line;
    ctx.machine.cycleTime = mu;
    ctx.alpha = alpha;

    const double r = missFactorDoubleBus(ctx);
    const double hr2 = equivalentHitRatio(r, hr);

    const Workload w1 =
        Workload::fromHitRatio(2e6, 5e5, hr, line, alpha);
    const Workload w2 =
        Workload::fromHitRatio(2e6, 5e5, hr2, line, alpha);
    const double x1 = executionTimeFS(w1, ctx.machine);
    const double x2 =
        executionTimeFS(w2, ctx.machine.withDoubledBus());
    EXPECT_NEAR(x1, x2, x1 * 1e-10);

    // And the mean memory delays agree (Sec. 4.5).
    EXPECT_NEAR(
        meanMemoryDelay(w1, ctx.machine,
                        ctx.machine.lineOverBus()),
        meanMemoryDelay(w2, ctx.machine.withDoubledBus(),
                        ctx.machine.withDoubledBus().lineOverBus()),
        1e-9);
}

TEST_P(EquivalenceSweep, Eq7RoundTripsThroughEq6)
{
    const auto [mu, line, hr, alpha] = GetParam();
    TradeoffContext ctx;
    ctx.machine.busWidth = 4;
    ctx.machine.lineBytes = line;
    ctx.machine.cycleTime = mu;
    ctx.alpha = alpha;
    const double r = missFactorDoubleBus(ctx);
    const double hr1 = hr + hitRatioGainRequired(r, hr);
    ASSERT_LE(hr1, 1.0);
    EXPECT_NEAR(equivalentHitRatio(r, hr1), hr, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    OperatingPoints, EquivalenceSweep,
    ::testing::Combine(::testing::Values(2.0, 4.0, 9.0, 17.0),
                       ::testing::Values(8.0, 16.0, 32.0),
                       ::testing::Values(0.90, 0.95, 0.99),
                       ::testing::Values(0.0, 0.3, 0.5, 1.0)));

// ==================================================================
// Table 2 phi bounds across features, profiles, cycle times
// ==================================================================

using PhiParam =
    std::tuple<StallFeature, std::string, Cycles>;

class PhiBoundsSweep : public ::testing::TestWithParam<PhiParam>
{
};

TEST_P(PhiBoundsSweep, MeasuredPhiWithinBounds)
{
    const auto [feature, profile, mu] = GetParam();
    PhiExperiment exp;
    exp.feature = feature;
    exp.cycleTime = mu;
    exp.refs = 12000;
    const auto result = measurePhi(exp, profile);
    const PhiBounds bounds = phiBounds(feature, 8.0);
    EXPECT_GE(result.phi, bounds.min - 1e-9);
    EXPECT_LE(result.phi, bounds.max + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    FeatureProfileMu, PhiBoundsSweep,
    ::testing::Combine(
        ::testing::Values(StallFeature::BL, StallFeature::BNL1,
                          StallFeature::BNL2, StallFeature::BNL3),
        ::testing::Values("nasa7", "ear", "hydro2d"),
        ::testing::Values<Cycles>(4, 16, 40)),
    [](const auto &info) {
        return std::string(
                   stallFeatureName(std::get<0>(info.param))) +
               "_" + std::get<1>(info.param) + "_mu" +
               std::to_string(std::get<2>(info.param));
    });

// ==================================================================
// Cache statistics invariants across geometries and policies
// ==================================================================

using CacheParam = std::tuple<std::uint64_t /*size*/,
                              std::uint32_t /*assoc*/,
                              std::uint32_t /*line*/,
                              ReplacementKind, WriteMissPolicy>;

class CacheInvariantSweep
    : public ::testing::TestWithParam<CacheParam>
{
};

TEST_P(CacheInvariantSweep, CountersStayConsistent)
{
    const auto [size, assoc, line, repl, wmiss] = GetParam();
    CacheConfig config;
    config.sizeBytes = size;
    config.assoc = assoc;
    config.lineBytes = line;
    config.replacement = repl;
    config.writeMiss = wmiss;
    SetAssocCache cache(config);

    WorkingSetGenerator::Config ws;
    ws.stackDepth = 300;
    ws.decay = 0.98;
    ws.coldFraction = 0.03;
    ws.storeFraction = 0.35;
    WorkingSetGenerator gen(ws, Rng(size ^ assoc ^ line));

    for (int i = 0; i < 20000; ++i)
        cache.access(*gen.next());

    const CacheStats &s = cache.stats();
    EXPECT_EQ(s.hits + s.misses, s.accesses);
    EXPECT_EQ(s.loads + s.stores, s.accesses);
    EXPECT_EQ(s.loadMisses + s.storeMisses, s.misses);
    EXPECT_LE(s.fills, s.misses);
    EXPECT_LE(s.writebacks, s.fills);
    EXPECT_LE(s.coldMisses, s.misses);
    EXPECT_GE(s.instructions, s.accesses);
    if (wmiss == WriteMissPolicy::WriteAllocate) {
        EXPECT_EQ(s.fills, s.misses);
        EXPECT_EQ(s.storesToMemory, 0u);
    } else {
        EXPECT_EQ(s.fills, s.loadMisses);
        EXPECT_EQ(s.storesToMemory, s.storeMisses);
    }
}

TEST_P(CacheInvariantSweep, OccupancyNeverExceedsCapacity)
{
    const auto [size, assoc, line, repl, wmiss] = GetParam();
    CacheConfig config;
    config.sizeBytes = size;
    config.assoc = assoc;
    config.lineBytes = line;
    config.replacement = repl;
    config.writeMiss = wmiss;
    SetAssocCache cache(config);

    Rng rng(7 * size + assoc);
    std::uint64_t resident_upper_bound = 0;
    for (int i = 0; i < 5000; ++i) {
        MemoryReference ref;
        ref.addr = rng.nextBelow(1 << 20) & ~3ull;
        ref.size = 4;
        ref.kind =
            rng.nextBool(0.3) ? RefKind::Store : RefKind::Load;
        const auto out = cache.access(ref);
        resident_upper_bound += out.fill;
        resident_upper_bound -= 0; // fills never exceed misses
    }
    // Invalidate everything: the dirty count cannot exceed the
    // number of lines the cache can hold.
    EXPECT_LE(cache.invalidateAll(), config.numLines());
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheInvariantSweep,
    ::testing::Combine(
        ::testing::Values<std::uint64_t>(1024, 8192, 65536),
        ::testing::Values<std::uint32_t>(1, 2, 4),
        ::testing::Values<std::uint32_t>(16, 32, 64),
        ::testing::Values(ReplacementKind::LRU,
                          ReplacementKind::FIFO,
                          ReplacementKind::Random),
        ::testing::Values(WriteMissPolicy::WriteAllocate,
                          WriteMissPolicy::WriteAround)));

// ==================================================================
// LRU conformance against a reference stack model
// ==================================================================

class LruConformance
    : public ::testing::TestWithParam<std::uint32_t /*assoc*/>
{
};

TEST_P(LruConformance, MatchesReferenceListModel)
{
    const std::uint32_t assoc = GetParam();
    CacheConfig config;
    config.sizeBytes = static_cast<std::uint64_t>(assoc) * 32;
    config.assoc = assoc; // a single set
    config.lineBytes = 32;
    SetAssocCache cache(config);

    // Reference model: a plain most-recent-first list.
    std::list<Addr> reference;
    Rng rng(assoc * 101);

    for (int i = 0; i < 4000; ++i) {
        const Addr line = rng.nextBelow(assoc * 3) * 32;
        const bool model_hit =
            std::find(reference.begin(), reference.end(), line) !=
            reference.end();
        reference.remove(line);
        reference.push_front(line);
        if (reference.size() > assoc)
            reference.pop_back();

        MemoryReference ref;
        ref.addr = line;
        ref.size = 4;
        const auto out = cache.access(ref);
        ASSERT_EQ(out.hit, model_hit) << "step " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(Assocs, LruConformance,
                         ::testing::Values(1u, 2u, 4u, 8u));

// ==================================================================
// Eq. 19 / Smith agreement on randomized miss-ratio tables
// ==================================================================

class SmithAgreementRandom
    : public ::testing::TestWithParam<std::uint64_t /*seed*/>
{
};

TEST_P(SmithAgreementRandom, ObjectivesAgreeOnRandomTables)
{
    Rng rng(GetParam());
    // Random monotone-decreasing MR(L) with a random flattening
    // tail, random latency and bus width.
    std::vector<LinePoint> points;
    double mr = 0.02 + rng.nextDouble() * 0.15;
    for (std::uint32_t line : {8u, 16u, 32u, 64u, 128u}) {
        points.push_back(LinePoint{line, mr});
        const double factor = 0.45 + rng.nextDouble() * 0.5;
        mr *= factor;
    }
    const MissRatioTable table("random", points);

    LineDelayModel model;
    model.c = 2.0 + rng.nextDouble() * 20.0;
    model.busWidth = rng.nextBool(0.5) ? 4.0 : 8.0;

    for (int i = 0; i < 24; ++i) {
        model.beta = 0.25 + rng.nextDouble() * 10.0;
        const auto ours = tradeoffOptimalLine(table, model, 8);
        const auto smiths = smithOptimalLine(table, model);
        const double o1 =
            model.smithObjective(table.missRatio(ours), ours);
        const double o2 =
            model.smithObjective(table.missRatio(smiths), smiths);
        EXPECT_NEAR(o1, o2, 1e-9)
            << "beta = " << model.beta << " c = " << model.c;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SmithAgreementRandom,
                         ::testing::Range<std::uint64_t>(1, 21));

// ==================================================================
// Memory-scheduler invariants under random operation streams
// ==================================================================

class SchedulerRandomOps
    : public ::testing::TestWithParam<std::uint64_t /*seed*/>
{
};

TEST_P(SchedulerRandomOps, GrantsAreOrderedAndExclusive)
{
    Rng rng(GetParam());
    MemoryConfig config;
    config.busWidthBytes = 4;
    config.cycleTime = 1 + rng.nextBelow(12);
    MemoryTiming timing(config);
    WriteBufferConfig wbuf;
    wbuf.depth = static_cast<std::uint32_t>(rng.nextBelow(5));
    wbuf.readBypass = rng.nextBool(0.7);
    MemoryScheduler scheduler(timing, wbuf);

    Cycles now = 0;
    Cycles last_read_end = 0;
    for (int i = 0; i < 500; ++i) {
        now += rng.nextBelow(40);
        if (rng.nextBool(0.5)) {
            const ReadGrant grant = scheduler.requestRead(now, 32);
            // Reads never start before they are requested and
            // never overlap the previous read.
            ASSERT_GE(grant.start, now);
            ASSERT_GE(grant.start, last_read_end);
            ASSERT_EQ(grant.busWait, grant.start - now);
            last_read_end =
                grant.start + timing.lineTransferTime(32);
            ASSERT_EQ(scheduler.busyUntil(), last_read_end);
        } else {
            const Cycles resume = scheduler.postWrite(
                now, rng.nextBool(0.5) ? 4 : 32);
            // The CPU never resumes in the past.
            ASSERT_GE(resume, now);
            if (wbuf.depth > 0) {
                ASSERT_LE(scheduler.pendingWrites(),
                          wbuf.depth);
            }
        }
    }
    // Draining everything terminates and leaves no pending work.
    scheduler.drainAllAfter(now);
    EXPECT_EQ(scheduler.pendingWrites(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerRandomOps,
                         ::testing::Range<std::uint64_t>(100, 116));

// ==================================================================
// Pipelined exactness across issue intervals q (Eq. 9)
// ==================================================================

using PipeParam = std::tuple<Cycles /*mu*/, Cycles /*q*/>;

class PipelinedExactness
    : public ::testing::TestWithParam<PipeParam>
{
};

TEST_P(PipelinedExactness, EngineMatchesEq9ForEveryQ)
{
    const auto [mu, q] = GetParam();
    if (q > mu)
        GTEST_SKIP() << "q must not exceed mu_m";
    CacheConfig cache;
    cache.sizeBytes = 8 * 1024;
    cache.assoc = 2;
    cache.lineBytes = 32;
    MemoryConfig mem;
    mem.busWidthBytes = 4;
    mem.cycleTime = mu;
    mem.pipelined = true;
    mem.pipelineInterval = q;
    CpuConfig cpu;
    cpu.feature = StallFeature::FS;
    TimingEngine engine(cache, mem, WriteBufferConfig{0, true},
                        cpu);
    auto workload = Spec92Profile::make("swm256", 61);
    const auto stats = engine.run(*workload, 20000);
    const auto &cs = engine.cacheStats();

    const std::uint64_t mu_p = mu + q * (8 - 1);
    const std::uint64_t expected =
        (cs.instructions - cs.fills) + cs.fills * mu_p +
        cs.writebacks * mu_p;
    EXPECT_EQ(stats.cycles, expected);
}

INSTANTIATE_TEST_SUITE_P(
    MuQ, PipelinedExactness,
    ::testing::Combine(::testing::Values<Cycles>(2, 4, 8, 16),
                       ::testing::Values<Cycles>(1, 2, 4, 8)));

// ==================================================================
// Engine monotonicity across the feature ladder, per profile
// ==================================================================

class FeatureLadder
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(FeatureLadder, CyclesDecreaseDownTheLadder)
{
    CacheConfig cache;
    cache.sizeBytes = 8 * 1024;
    cache.assoc = 2;
    cache.lineBytes = 32;
    MemoryConfig mem;
    mem.busWidthBytes = 4;
    mem.cycleTime = 10;

    Cycles previous = ~0ull;
    for (StallFeature f :
         {StallFeature::FS, StallFeature::BL, StallFeature::BNL1,
          StallFeature::BNL2, StallFeature::BNL3,
          StallFeature::NB}) {
        CpuConfig cpu;
        cpu.feature = f;
        cpu.suppressFlushTraffic = true;
        TimingEngine engine(cache, mem,
                            WriteBufferConfig{16, true}, cpu);
        auto workload = Spec92Profile::make(GetParam(), 55);
        const auto cycles = engine.run(*workload, 20000).cycles;
        EXPECT_LE(cycles, previous) << stallFeatureName(f);
        previous = cycles;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Profiles, FeatureLadder,
    ::testing::Values("nasa7", "swm256", "wave5", "ear", "doduc",
                      "hydro2d"));

} // namespace
} // namespace uatm
