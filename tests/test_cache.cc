/**
 * @file
 * Unit tests for the set-associative cache model, including the
 * write policies the paper's workload parameters depend on.
 */

#include <gtest/gtest.h>

#include "cache/cache.hh"
#include "cache/sweep.hh"
#include "trace/generators.hh"

namespace uatm {
namespace {

MemoryReference
load(Addr addr, std::uint32_t gap = 0)
{
    return MemoryReference{addr, gap, 4, RefKind::Load};
}

MemoryReference
store(Addr addr, std::uint32_t gap = 0)
{
    return MemoryReference{addr, gap, 4, RefKind::Store};
}

CacheConfig
smallCache()
{
    CacheConfig config;
    config.sizeBytes = 256; // 4 sets x 2 ways x 32B
    config.assoc = 2;
    config.lineBytes = 32;
    return config;
}

// ----------------------------------------------------------- CacheConfig

TEST(CacheConfig, GeometryDerivation)
{
    CacheConfig config;
    config.sizeBytes = 8 * 1024;
    config.assoc = 2;
    config.lineBytes = 32;
    EXPECT_EQ(config.numSets(), 128u);
    EXPECT_EQ(config.numLines(), 256u);
    EXPECT_TRUE(config.validate().ok());
}

TEST(CacheConfig, RejectsNonPow2Size)
{
    CacheConfig config;
    config.sizeBytes = 3000;
    const Status status = config.validate();
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.code(), ErrorCode::InvalidArgument);
    EXPECT_NE(status.message().find("power of two"),
              std::string::npos);
}

TEST(CacheConfig, RejectsTinyLine)
{
    CacheConfig config;
    config.lineBytes = 2;
    const Status status = config.validate();
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.code(), ErrorCode::InvalidArgument);
    EXPECT_NE(status.message().find("line"), std::string::npos);
}

TEST(CacheConfig, DescribeMentionsGeometry)
{
    CacheConfig config;
    const std::string text = config.describe();
    EXPECT_NE(text.find("8KB"), std::string::npos);
    EXPECT_NE(text.find("2-way"), std::string::npos);
    EXPECT_NE(text.find("32B"), std::string::npos);
}

// -------------------------------------------------------- basic behaviour

TEST(Cache, MissThenHit)
{
    SetAssocCache cache(smallCache());
    auto first = cache.access(load(0x100));
    EXPECT_FALSE(first.hit);
    EXPECT_TRUE(first.fill);
    EXPECT_TRUE(first.coldMiss);

    auto second = cache.access(load(0x104)); // same line
    EXPECT_TRUE(second.hit);
    EXPECT_FALSE(second.fill);
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(Cache, LineGranularity)
{
    SetAssocCache cache(smallCache());
    cache.access(load(0x100));
    EXPECT_TRUE(cache.access(load(0x11f)).hit);  // last byte of line
    EXPECT_FALSE(cache.access(load(0x120)).hit); // next line
}

TEST(Cache, ProbeDoesNotDisturbState)
{
    SetAssocCache cache(smallCache());
    cache.access(load(0x100));
    const CacheStats before = cache.stats();
    EXPECT_TRUE(cache.probe(0x104));
    EXPECT_FALSE(cache.probe(0x200));
    EXPECT_EQ(cache.stats().accesses, before.accesses);
}

TEST(Cache, ConflictEvictionWithinSet)
{
    // 4 sets, 2 ways: three lines mapping to set 0 overflow it.
    SetAssocCache cache(smallCache());
    cache.access(load(0x000)); // set 0
    cache.access(load(0x080)); // set 0 (4 sets * 32B = 128B stride)
    cache.access(load(0x100)); // set 0 -> evicts LRU (0x000)
    EXPECT_FALSE(cache.probe(0x000));
    EXPECT_TRUE(cache.probe(0x080));
    EXPECT_TRUE(cache.probe(0x100));
}

TEST(Cache, LruKeepsRecentlyTouched)
{
    SetAssocCache cache(smallCache());
    cache.access(load(0x000));
    cache.access(load(0x080));
    cache.access(load(0x004)); // touch 0x000's line again
    cache.access(load(0x100)); // evicts 0x080 (now LRU)
    EXPECT_TRUE(cache.probe(0x000));
    EXPECT_FALSE(cache.probe(0x080));
}

// ------------------------------------------------------------ write paths

TEST(Cache, WriteBackMarksDirtyAndFlushesOnEviction)
{
    SetAssocCache cache(smallCache());
    cache.access(store(0x000));
    EXPECT_TRUE(cache.probeDirty(0x000));
    cache.access(load(0x080));
    const auto out = cache.access(load(0x100)); // evicts dirty 0x000
    EXPECT_TRUE(out.writeback);
    EXPECT_EQ(out.victimLineAddr, 0x000u);
    EXPECT_EQ(cache.stats().writebacks, 1u);
}

TEST(Cache, CleanEvictionHasNoWriteback)
{
    SetAssocCache cache(smallCache());
    cache.access(load(0x000));
    cache.access(load(0x080));
    const auto out = cache.access(load(0x100));
    EXPECT_FALSE(out.writeback);
}

TEST(Cache, WriteAllocateStoreMissFills)
{
    CacheConfig config = smallCache();
    config.writeMiss = WriteMissPolicy::WriteAllocate;
    SetAssocCache cache(config);
    const auto out = cache.access(store(0x100));
    EXPECT_TRUE(out.fill);
    EXPECT_FALSE(out.storeToMemory);
    EXPECT_TRUE(cache.probeDirty(0x100));
    EXPECT_EQ(cache.stats().fills, 1u);
}

TEST(Cache, WriteAroundStoreMissBypasses)
{
    CacheConfig config = smallCache();
    config.writeMiss = WriteMissPolicy::WriteAround;
    SetAssocCache cache(config);
    const auto out = cache.access(store(0x100));
    EXPECT_FALSE(out.fill);
    EXPECT_TRUE(out.storeToMemory);
    EXPECT_FALSE(cache.probe(0x100));
    EXPECT_EQ(cache.stats().storesToMemory, 1u);
}

TEST(Cache, WriteAroundLoadMissStillFills)
{
    CacheConfig config = smallCache();
    config.writeMiss = WriteMissPolicy::WriteAround;
    SetAssocCache cache(config);
    EXPECT_TRUE(cache.access(load(0x100)).fill);
}

TEST(Cache, WriteThroughStoresAlwaysGoToMemory)
{
    CacheConfig config = smallCache();
    config.write = WritePolicy::WriteThrough;
    SetAssocCache cache(config);
    cache.access(load(0x100));
    const auto hit = cache.access(store(0x104));
    EXPECT_TRUE(hit.hit);
    EXPECT_TRUE(hit.storeToMemory);
    EXPECT_FALSE(cache.probeDirty(0x104));
    // No dirty lines ever: evictions never write back.
    cache.access(load(0x180));
    EXPECT_FALSE(cache.access(load(0x200)).writeback);
}

// -------------------------------------------------------------- statistics

TEST(Cache, StatsMatchPaperVocabulary)
{
    SetAssocCache cache(smallCache());
    cache.access(load(0x000, 3)); // miss, 4 instructions
    cache.access(load(0x004, 1)); // hit, 2 instructions
    cache.access(store(0x080, 0)); // miss (write-allocate)
    const CacheStats &s = cache.stats();
    EXPECT_EQ(s.accesses, 3u);
    EXPECT_EQ(s.instructions, 7u);
    EXPECT_EQ(s.fills, 2u);
    EXPECT_EQ(s.bytesRead(32), 64u);
    EXPECT_NEAR(s.hitRatio(), 1.0 / 3.0, 1e-12);
}

TEST(Cache, FlushRatioIsFlushedOverRead)
{
    SetAssocCache cache(smallCache());
    cache.access(store(0x000));
    cache.access(load(0x080));
    cache.access(load(0x100)); // evicts dirty line
    const CacheStats &s = cache.stats();
    EXPECT_EQ(s.bytesFlushed(32), 32u);
    EXPECT_EQ(s.bytesRead(32), 96u);
    EXPECT_NEAR(s.flushRatio(32), 1.0 / 3.0, 1e-12);
}

TEST(Cache, ColdMissClassification)
{
    SetAssocCache cache(smallCache());
    cache.access(load(0x000)); // cold
    cache.access(load(0x080));
    cache.access(load(0x100)); // evicts 0x000
    const auto again = cache.access(load(0x000)); // conflict miss
    EXPECT_FALSE(again.coldMiss);
    EXPECT_EQ(cache.stats().coldMisses, 3u);
    EXPECT_EQ(cache.stats().misses, 4u);
}

TEST(Cache, InvalidateAllCountsDirtyLines)
{
    SetAssocCache cache(smallCache());
    cache.access(store(0x000));
    cache.access(store(0x020));
    cache.access(load(0x040));
    EXPECT_EQ(cache.invalidateAll(), 2u);
    EXPECT_FALSE(cache.probe(0x000));
}

TEST(Cache, ResetClearsEverything)
{
    SetAssocCache cache(smallCache());
    cache.access(load(0x000));
    cache.reset();
    EXPECT_EQ(cache.stats().accesses, 0u);
    EXPECT_FALSE(cache.probe(0x000));
    // Cold tracking restarts too.
    EXPECT_TRUE(cache.access(load(0x000)).coldMiss);
}

// ---------------------------------------------------------- direct-mapped

TEST(Cache, DirectMappedConflicts)
{
    CacheConfig config;
    config.sizeBytes = 128; // 4 sets x 1 way x 32B
    config.assoc = 1;
    config.lineBytes = 32;
    SetAssocCache cache(config);
    cache.access(load(0x000));
    cache.access(load(0x080)); // same set, evicts immediately
    EXPECT_FALSE(cache.probe(0x000));
}

// ------------------------------------------------------------ full-assoc

TEST(Cache, FullyAssociativeUsesWholeCapacity)
{
    CacheConfig config;
    config.sizeBytes = 128;
    config.assoc = 4;
    config.lineBytes = 32;
    SetAssocCache cache(config);
    for (Addr a = 0; a < 4 * 32; a += 32)
        cache.access(load(a));
    for (Addr a = 0; a < 4 * 32; a += 32)
        EXPECT_TRUE(cache.probe(a));
}

// ----------------------------------------------------- hit-ratio properties

/** Larger caches never hit less on the same stream. */
TEST(CacheProperty, HitRatioMonotoneInSize)
{
    WorkingSetGenerator::Config ws;
    ws.stackDepth = 300;
    ws.decay = 0.98;
    ws.coldFraction = 0.01;
    WorkingSetGenerator gen(ws, Rng(11));

    CacheConfig base;
    base.assoc = 2;
    base.lineBytes = 32;
    const auto points = sweepCacheSize(
        base, gen, {2048, 8192, 32768, 131072}, 30000);
    for (std::size_t i = 1; i < points.size(); ++i) {
        EXPECT_GE(points[i].hitRatio + 0.005,
                  points[i - 1].hitRatio)
            << "size " << points[i].value;
    }
}

/** On a unit-stride stream, doubling the line halves the misses. */
TEST(CacheProperty, SpatialLocalityRewardsLargerLines)
{
    StrideGenerator::Config stream;
    stream.elements = 1 << 14;
    stream.elemSize = 4;
    stream.strideBytes = 4;
    stream.storeFraction = 0.0;
    StrideGenerator gen(stream, Rng(3));

    CacheConfig base;
    base.sizeBytes = 8 * 1024;
    base.assoc = 2;
    const auto points =
        sweepLineSize(base, gen, {8, 16, 32, 64}, 16384);
    for (std::size_t i = 1; i < points.size(); ++i) {
        EXPECT_NEAR(points[i].missRatio,
                    points[i - 1].missRatio / 2.0,
                    points[i - 1].missRatio * 0.2);
    }
}

TEST(CacheSweep, WarmupExcludesColdTransient)
{
    StrideGenerator::Config stream;
    stream.elements = 256; // fits in cache after one pass
    stream.elemSize = 4;
    stream.strideBytes = 4;
    stream.storeFraction = 0.0;
    StrideGenerator gen(stream, Rng(1));

    CacheConfig config;
    config.sizeBytes = 8 * 1024;
    config.assoc = 2;
    config.lineBytes = 32;

    const auto cold = runCacheSim(config, gen, 2048, 0);
    const auto warm = runCacheSim(config, gen, 2048, 512);
    EXPECT_GT(warm.hitRatio(), cold.hitRatio());
    EXPECT_NEAR(warm.hitRatio(), 1.0, 1e-9);
}

} // namespace
} // namespace uatm
