/**
 * @file
 * Unit tests for the unified tradeoff model: Table 3 miss factors,
 * Eqs. 6/7, crossovers and feature ranking.
 */

#include <gtest/gtest.h>

#include "core/execution_time.hh"
#include "core/tradeoff.hh"

namespace uatm {
namespace {

TradeoffContext
context(double mu_m, double line = 32, double bus = 4,
        double alpha = 0.5)
{
    TradeoffContext ctx;
    ctx.machine.busWidth = bus;
    ctx.machine.lineBytes = line;
    ctx.machine.cycleTime = mu_m;
    ctx.alpha = alpha;
    return ctx;
}

// ------------------------------------------------------------ perMissCost

TEST(PerMissCost, FullStallingFormula)
{
    Machine m;
    m.busWidth = 4;
    m.lineBytes = 32;
    m.cycleTime = 8;
    // (L/D + (L/D) alpha) mu_m = (8 + 4) * 8.
    EXPECT_DOUBLE_EQ(perMissCost(m, 8.0, 0.5), 96.0);
}

TEST(PerMissCost, PipelinedFormula)
{
    Machine m;
    m.busWidth = 4;
    m.lineBytes = 32;
    m.cycleTime = 8;
    m = m.withPipelining(2);
    // (1 + alpha) mu_p = 1.5 * 22.
    EXPECT_DOUBLE_EQ(perMissCost(m, 0.0, 0.5), 33.0);
}

// -------------------------------------------------------------- double bus

TEST(DoubleBus, PaperLimitAtMuTwoAndLTwoD)
{
    // Sec. 4.1: with L = 2D, mu_m = 2, alpha = 0.5: R' = 2.5 R.
    const double r = missFactorDoubleBus(context(2, 8, 4));
    EXPECT_NEAR(r, 2.5, 1e-12);
}

TEST(DoubleBus, PaperLimitAtLargeMu)
{
    // Sec. 4.1: mu_m -> infinity gives R' = 2 R.
    const double r = missFactorDoubleBus(context(1e9, 8, 4));
    EXPECT_NEAR(r, 2.0, 1e-6);
}

TEST(DoubleBus, FactorDecreasesWithMuM)
{
    double previous = 1e18;
    for (double mu : {2.0, 4.0, 8.0, 16.0, 32.0}) {
        const double r = missFactorDoubleBus(context(mu, 8, 4));
        EXPECT_LT(r, previous);
        previous = r;
    }
}

TEST(DoubleBus, FactorAlwaysAboveTwoLimitBand)
{
    // The paper: r lies in [2, 2.5] for L = 2D, alpha = 0.5.
    for (double mu : {2.0, 3.0, 5.0, 10.0, 50.0}) {
        const double r = missFactorDoubleBus(context(mu, 8, 4));
        EXPECT_GE(r, 2.0);
        EXPECT_LE(r, 2.5);
    }
}

TEST(DoubleBus, Eq6GivesTwoHrMinusOneLimits)
{
    // HR2 = 2.5 HR - 1.5 at mu=2: 0.95 -> 0.875.
    const double r = missFactorDoubleBus(context(2, 8, 4));
    EXPECT_NEAR(equivalentHitRatio(r, 0.95), 2.5 * 0.95 - 1.5,
                1e-12);
    // HR2 = 2 HR - 1 at large mu: 0.95 -> 0.90.
    const double r_inf = missFactorDoubleBus(context(1e9, 8, 4));
    EXPECT_NEAR(equivalentHitRatio(r_inf, 0.95), 2.0 * 0.95 - 1.0,
                1e-6);
}

TEST(DoubleBus, Eq7GainBand)
{
    // Sec. 4.1: raising HR by 0.5(1-HR)..0.6(1-HR) matches
    // doubling the bus (L >= 2D, alpha = 0.5).
    const double r2 = missFactorDoubleBus(context(2, 8, 4));
    EXPECT_NEAR(hitRatioGainRequired(r2, 0.95), 0.6 * (1 - 0.95),
                1e-12);
    const double r_inf = missFactorDoubleBus(context(1e9, 8, 4));
    EXPECT_NEAR(hitRatioGainRequired(r_inf, 0.95),
                0.5 * (1 - 0.95), 1e-6);
}

TEST(DoubleBus, EquivalencePropertyViaEq2)
{
    // Property: the hit ratio from Eq. 6 makes X(2D) equal X(D),
    // at any operating point.
    for (double mu : {2.0, 4.0, 7.5, 12.0}) {
        for (double line : {8.0, 16.0, 32.0}) {
            const TradeoffContext ctx = context(mu, line, 4);
            const double r = missFactorDoubleBus(ctx);
            const double hr1 = 0.96;
            const double hr2 = equivalentHitRatio(r, hr1);

            const Workload w1 = Workload::fromHitRatio(
                1e6, 2e5, hr1, line, ctx.alpha);
            const Workload w2 = Workload::fromHitRatio(
                1e6, 2e5, hr2, line, ctx.alpha);
            const double x1 = executionTimeFS(w1, ctx.machine);
            const double x2 = executionTimeFS(
                w2, ctx.machine.withDoubledBus());
            EXPECT_NEAR(x1, x2, x1 * 1e-10)
                << "mu=" << mu << " L=" << line;
        }
    }
}

TEST(WidenBus, FactorTwoMatchesDoubleBus)
{
    const TradeoffContext ctx = context(6, 32, 4);
    EXPECT_DOUBLE_EQ(missFactorWidenBus(ctx, 2.0),
                     missFactorDoubleBus(ctx));
}

TEST(WidenBus, QuadruplingBeatsDoubling)
{
    const TradeoffContext ctx = context(6, 32, 4);
    EXPECT_GT(missFactorWidenBus(ctx, 4.0),
              missFactorWidenBus(ctx, 2.0));
    EXPECT_GT(missFactorWidenBus(ctx, 8.0),
              missFactorWidenBus(ctx, 4.0));
}

TEST(WidenBus, ComposesLikeTwoSteps)
{
    // r(D->4D) relates the same endpoint systems as doubling
    // twice: r_4 = r(D->2D) * r(2D->4D).
    const TradeoffContext ctx = context(6, 32, 4);
    TradeoffContext mid = ctx;
    mid.machine = ctx.machine.withDoubledBus();
    EXPECT_NEAR(missFactorWidenBus(ctx, 4.0),
                missFactorDoubleBus(ctx) *
                    missFactorDoubleBus(mid),
                1e-12);
}

TEST(WidenBus, RejectsWideningPastTheLine)
{
    const TradeoffContext ctx = context(6, 8, 4);
    try {
        missFactorWidenBus(ctx, 4.0);
        FAIL() << "expected StatusError";
    } catch (const StatusError &e) {
        EXPECT_EQ(e.status().code(), ErrorCode::InvalidArgument);
        EXPECT_NE(e.status().message().find("exceed"),
                  std::string::npos);
    }
}

// ----------------------------------------------------------- partial stall

TEST(PartialStall, FullPhiMeansNoGain)
{
    const TradeoffContext ctx = context(8);
    const double r = missFactorPartialStall(ctx, 8.0);
    EXPECT_NEAR(r, 1.0, 1e-12);
}

TEST(PartialStall, SmallerPhiTradesMoreHitRatio)
{
    const TradeoffContext ctx = context(8);
    EXPECT_GT(missFactorPartialStall(ctx, 1.0),
              missFactorPartialStall(ctx, 4.0));
}

TEST(PartialStall, RejectsPhiOutOfBounds)
{
    const TradeoffContext ctx = context(8);
    EXPECT_DEATH(
        { missFactorPartialStall(ctx, 9.0); }, "outside");
}

// ----------------------------------------------------------- write buffers

TEST(WriteBuffers, FactorMatchesTable3)
{
    // r = ((L/D)(1+a) mu - 1) / ((L/D) mu - 1), L=8, D=4, mu=2:
    // (3*2-1)/(2*2-1) = 5/3.
    const double r = missFactorWriteBuffers(context(2, 8, 4));
    EXPECT_NEAR(r, 5.0 / 3.0, 1e-12);
}

TEST(WriteBuffers, LargeMuLimitIsOnePlusAlpha)
{
    const double r = missFactorWriteBuffers(context(1e9, 8, 4));
    EXPECT_NEAR(r, 1.5, 1e-6);
}

TEST(WriteBuffers, NoFlushesNothingToHide)
{
    const double r =
        missFactorWriteBuffers(context(8, 8, 4, /*alpha=*/0.0));
    EXPECT_NEAR(r, 1.0, 1e-12);
}

// -------------------------------------------------------------- pipelined

TEST(Pipelined, NeutralAtMuEqualsQ)
{
    // Solid lines meet the x axis at mu_m = 2 when q = 2
    // (Figs. 3-5): pipelining changes nothing there.
    const double r = missFactorPipelined(context(2, 32, 4), 2.0);
    EXPECT_NEAR(r, 1.0, 1e-12);
}

TEST(Pipelined, GrowsWithMuM)
{
    double previous = 0.0;
    for (double mu : {2.0, 4.0, 8.0, 16.0}) {
        const double r =
            missFactorPipelined(context(mu, 32, 4), 2.0);
        EXPECT_GT(r, previous);
        previous = r;
    }
}

TEST(Pipelined, ApproachesLOverDAtLargeMu)
{
    // r -> (L/D)(1+a)mu / ((1+a)mu) = L/D as mu grows.
    const double r =
        missFactorPipelined(context(1e7, 32, 4), 2.0);
    EXPECT_NEAR(r, 8.0, 1e-3);
}

// --------------------------------------------------------------- Eq. 6 / 7

TEST(Eq6, DeltaIsProportionalToMissRatio)
{
    EXPECT_NEAR(hitRatioTraded(2.0, 0.98), 0.02, 1e-12);
    EXPECT_NEAR(hitRatioTraded(2.0, 0.90), 0.10, 1e-12);
    EXPECT_NEAR(hitRatioTraded(1.0, 0.90), 0.0, 1e-12);
}

TEST(Eq6, OutOfRangeThrows)
{
    // r so large that HR2 < 0: Eq. 6's validity bound.
    try {
        equivalentHitRatio(100.0, 0.5);
        FAIL() << "expected StatusError";
    } catch (const StatusError &e) {
        EXPECT_EQ(e.status().code(), ErrorCode::OutOfRange);
        EXPECT_NE(e.status().message().find("validity"),
                  std::string::npos);
    }
}

TEST(Eq7, InverseDirectionConsistent)
{
    // Moving HR2 up by the Eq. 7 gain then applying Eq. 6 with the
    // same r must return to HR2.
    const double r = 2.0;
    const double hr2 = 0.90;
    const double hr1 = hr2 + hitRatioGainRequired(r, hr2);
    EXPECT_NEAR(equivalentHitRatio(r, hr1), hr2, 1e-12);
}

// -------------------------------------------------------------- crossover

TEST(Crossover, PipelinedOvertakesDoubleBusNearFive)
{
    // Sec. 5.3 / Summary: for L/D > 2 and q = 2 the pipelined
    // system wins once mu_m exceeds about five or six cycles.
    const auto mu = crossoverCycleTime(
        context(8, 32, 4), TradeFeature::PipelinedMemory,
        TradeFeature::DoubleBus, 2.0, 1.0, 2.0, 30.0);
    ASSERT_TRUE(mu.has_value());
    EXPECT_GT(*mu, 3.5);
    EXPECT_LT(*mu, 6.5);
}

TEST(Crossover, NoneForLOverDTwo)
{
    // Fig. 3: with L/D = 2 and q = 2 pipelining never beats
    // doubling the bus.
    const auto mu = crossoverCycleTime(
        context(8, 8, 4), TradeFeature::PipelinedMemory,
        TradeFeature::DoubleBus, 2.0, 1.0, 2.0, 200.0);
    EXPECT_FALSE(mu.has_value());
}

// ---------------------------------------------------------------- ranking

TEST(Ranking, PaperOrderAtModerateMu)
{
    // Sec. 5.3: excluding pipelined memory, the order is
    // bus > write buffers > BNL.  At small mu_m the pipelined
    // system is below doubling the bus.
    const auto scores = rankFeatures(context(4, 32, 4), 0.95,
                                     /*phi=*/7.0, /*q=*/2.0);
    ASSERT_EQ(scores.size(), 4u);

    auto position = [&](TradeFeature f) {
        for (std::size_t i = 0; i < scores.size(); ++i)
            if (scores[i].feature == f)
                return i;
        return scores.size();
    };
    EXPECT_LT(position(TradeFeature::DoubleBus),
              position(TradeFeature::WriteBuffers));
    EXPECT_LT(position(TradeFeature::WriteBuffers),
              position(TradeFeature::PartialStall));
}

TEST(Ranking, PipelinedWinsAtLargeMu)
{
    const auto scores = rankFeatures(context(16, 32, 4), 0.95,
                                     7.0, 2.0);
    EXPECT_EQ(scores.front().feature,
              TradeFeature::PipelinedMemory);
}

TEST(Ranking, ScoresCarryConsistentDeltas)
{
    const auto scores =
        rankFeatures(context(8, 32, 4), 0.95, 7.0, 2.0);
    for (const auto &s : scores) {
        EXPECT_NEAR(s.hitRatioTraded,
                    hitRatioTraded(s.missFactor, 0.95), 1e-12);
    }
}

// ------------------------------------------------------------- validation

TEST(TradeoffContext, RejectsPipelinedBase)
{
    TradeoffContext ctx = context(8);
    ctx.machine = ctx.machine.withPipelining(2);
    const Status status = ctx.validate();
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.code(), ErrorCode::InvalidArgument);
    EXPECT_NE(status.message().find("non-pipelined"),
              std::string::npos);
}

TEST(MissFactor, ThrowsWhenCostBelowHitCycle)
{
    Machine m;
    m.busWidth = 8;
    m.lineBytes = 8;
    m.cycleTime = 1;
    // per-miss cost = (1 + 0) * 1 = 1: not > 1.
    try {
        missFactor(m, 1.0, 0.0, m, 1.0, 0.0);
        FAIL() << "expected StatusError";
    } catch (const StatusError &e) {
        EXPECT_EQ(e.status().code(), ErrorCode::OutOfRange);
        EXPECT_NE(e.status().message().find("per-miss"),
                  std::string::npos);
    }
}

} // namespace
} // namespace uatm
