/**
 * @file
 * Tests for the registered workload-method layer: typed ParamMaps,
 * the process-wide WorkloadRegistry, and the declarative
 * WorkloadSpec (CLI parse, JSON round-trip, error-row degradation).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "cache/sweep.hh"
#include "exp/param_map.hh"
#include "exp/runner.hh"
#include "exp/scenario.hh"
#include "exp/workload_registry.hh"
#include "exp/workload_spec.hh"
#include "trace/generators.hh"
#include "trace/io.hh"
#include "trace/source.hh"
#include "util/status.hh"

namespace uatm {
namespace exp {
namespace {

// ----------------------------------------------------- ParamValue

TEST(ParamValue, ParsesEachDeclaredType)
{
    auto s = ParamValue::parse(ParamValue::Type::String, "abc");
    ASSERT_TRUE(s.ok());
    EXPECT_EQ(s.value().asString(), "abc");

    auto i = ParamValue::parse(ParamValue::Type::Int, "100000");
    ASSERT_TRUE(i.ok());
    EXPECT_EQ(i.value().asInt(), 100000);

    auto d = ParamValue::parse(ParamValue::Type::Double, "0.99");
    ASSERT_TRUE(d.ok());
    EXPECT_DOUBLE_EQ(d.value().asDouble(), 0.99);

    auto b = ParamValue::parse(ParamValue::Type::Bool, "true");
    ASSERT_TRUE(b.ok());
    EXPECT_TRUE(b.value().asBool());
}

TEST(ParamValue, IntAcceptsIntegralScientificNotation)
{
    auto v = ParamValue::parse(ParamValue::Type::Int, "1e6");
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(v.value().asInt(), 1000000);
}

TEST(ParamValue, IntOverflowIsOutOfRange)
{
    auto v = ParamValue::parse(ParamValue::Type::Int,
                               "99999999999999999999999");
    ASSERT_FALSE(v.ok());
    EXPECT_EQ(v.status().code(), ErrorCode::OutOfRange);
}

TEST(ParamValue, MalformedNumbersAreParseErrors)
{
    for (auto type :
         {ParamValue::Type::Int, ParamValue::Type::Double}) {
        auto v = ParamValue::parse(type, "oops");
        ASSERT_FALSE(v.ok());
        EXPECT_EQ(v.status().code(), ErrorCode::ParseError);
    }
    auto b = ParamValue::parse(ParamValue::Type::Bool, "maybe");
    ASSERT_FALSE(b.ok());
    EXPECT_EQ(b.status().code(), ErrorCode::ParseError);
}

TEST(ParamValue, CoercionFollowsTheJsonNumberRules)
{
    // Int widens to Double ...
    auto widened =
        ParamValue::ofInt(3).coerce(ParamValue::Type::Double);
    ASSERT_TRUE(widened.ok());
    EXPECT_DOUBLE_EQ(widened.value().asDouble(), 3.0);

    // ... an integral Double narrows to Int ...
    auto narrowed =
        ParamValue::ofDouble(1e6).coerce(ParamValue::Type::Int);
    ASSERT_TRUE(narrowed.ok());
    EXPECT_EQ(narrowed.value().asInt(), 1000000);

    // ... and a fractional Double does not.
    auto bad =
        ParamValue::ofDouble(0.5).coerce(ParamValue::Type::Int);
    EXPECT_FALSE(bad.ok());

    // Strings never coerce to numbers.
    auto worse = ParamValue::ofString("5").coerce(
        ParamValue::Type::Int);
    EXPECT_FALSE(worse.ok());
}

TEST(ParamValue, RenderIsCanonical)
{
    EXPECT_EQ(ParamValue::ofInt(1000000).render(), "1000000");
    EXPECT_EQ(ParamValue::ofDouble(0.99).render(), "0.99");
    EXPECT_EQ(ParamValue::ofBool(false).render(), "false");
    EXPECT_EQ(ParamValue::ofString("nasa7").render(), "nasa7");
}

// ------------------------------------------------------- ParamMap

TEST(ParamMap, EntriesStaySortedByName)
{
    ParamMap map;
    map.setInt("records", 1000);
    map.setDouble("theta", 0.9);
    map.setString("dist", "uniform");
    ASSERT_EQ(map.size(), 3u);
    EXPECT_EQ(map.entries()[0].name, "dist");
    EXPECT_EQ(map.entries()[1].name, "records");
    EXPECT_EQ(map.entries()[2].name, "theta");
    EXPECT_EQ(map.render(), "dist=uniform,records=1000,theta=0.9");
}

TEST(ParamMap, SetOverwritesAndFindReportsAbsence)
{
    ParamMap map;
    map.setInt("n", 1);
    map.setInt("n", 2);
    ASSERT_EQ(map.size(), 1u);
    EXPECT_EQ(map.getInt("n"), 2);
    EXPECT_EQ(map.find("missing"), nullptr);
}

TEST(ParamMap, InsertionOrderDoesNotAffectEquality)
{
    ParamMap a;
    a.setInt("x", 1);
    a.setString("y", "z");
    ParamMap b;
    b.setString("y", "z");
    b.setInt("x", 1);
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.render(), b.render());
}

// ----------------------------------------------- WorkloadRegistry

TEST(WorkloadRegistry, BuiltinsAreRegistered)
{
    const auto names = WorkloadRegistry::instance().names();
    for (const char *expected :
         {"none", "spec92", "short-levy", "trace", "ycsb",
          "ycsb-a", "ycsb-b", "ycsb-c", "ycsb-d", "ycsb-e",
          "ycsb-f", "reuse-dist"}) {
        EXPECT_NE(std::find(names.begin(), names.end(), expected),
                  names.end())
            << expected;
    }
    EXPECT_EQ(WorkloadRegistry::instance().find("nosuch"), nullptr);
}

TEST(WorkloadRegistry, ResolveMergesDeclaredDefaults)
{
    const auto resolved =
        WorkloadRegistry::instance().resolve("ycsb", ParamMap{});
    ASSERT_TRUE(resolved.ok());
    EXPECT_EQ(resolved.value().getInt("records"), 100000);
    EXPECT_DOUBLE_EQ(resolved.value().getDouble("theta"), 0.99);
    EXPECT_EQ(resolved.value().getString("mix"), "a");
}

TEST(WorkloadRegistry, ResolveCoercesNumbersToDeclaredTypes)
{
    ParamMap given;
    given.setDouble("records", 1e6); // JSON-style integral double
    const auto resolved =
        WorkloadRegistry::instance().resolve("ycsb", given);
    ASSERT_TRUE(resolved.ok());
    const ParamValue *records = resolved.value().find("records");
    ASSERT_NE(records, nullptr);
    EXPECT_EQ(records->type(), ParamValue::Type::Int);
    EXPECT_EQ(records->asInt(), 1000000);
}

TEST(WorkloadRegistry, UnknownMethodIsNotFoundAndListsKnownOnes)
{
    const auto resolved = WorkloadRegistry::instance().resolve(
        "nosuchmethod", ParamMap{});
    ASSERT_FALSE(resolved.ok());
    EXPECT_EQ(resolved.status().code(), ErrorCode::NotFound);
    EXPECT_NE(resolved.status().message().find("spec92"),
              std::string::npos);
}

TEST(WorkloadRegistry, UnknownParamListsTheDeclaredOnes)
{
    ParamMap given;
    given.setInt("bogus", 1);
    const auto resolved =
        WorkloadRegistry::instance().resolve("ycsb", given);
    ASSERT_FALSE(resolved.ok());
    EXPECT_EQ(resolved.status().code(),
              ErrorCode::InvalidArgument);
    EXPECT_NE(resolved.status().message().find("records"),
              std::string::npos);
}

TEST(WorkloadRegistry, BadParamValuesDegradeToStatus)
{
    // In-range value works ...
    ParamMap ok_params;
    ok_params.setDouble("theta", 0.5);
    EXPECT_TRUE(WorkloadRegistry::instance()
                    .make("ycsb", ok_params, 1)
                    .ok());
    // ... out-of-range theta and unknown profile are typed errors.
    ParamMap bad_theta;
    bad_theta.setDouble("theta", 1.5);
    EXPECT_FALSE(WorkloadRegistry::instance()
                     .make("ycsb", bad_theta, 1)
                     .ok());
    ParamMap bad_profile;
    bad_profile.setString("profile", "mcf");
    const auto made = WorkloadRegistry::instance().make(
        "spec92", bad_profile, 1);
    ASSERT_FALSE(made.ok());
    EXPECT_EQ(made.status().code(), ErrorCode::NotFound);
}

TEST(WorkloadRegistry, AddRejectsBadRegistrations)
{
    auto &registry = WorkloadRegistry::instance();

    WorkloadMethod unnamed;
    unnamed.factory = [](const ParamMap &, std::uint64_t)
        -> Expected<std::unique_ptr<TraceSource>> {
        return Status::invalidArgument("unused");
    };
    EXPECT_FALSE(registry.add(unnamed).ok());

    WorkloadMethod factoryless;
    factoryless.name = "no-factory";
    EXPECT_FALSE(registry.add(factoryless).ok());

    WorkloadMethod duplicate;
    duplicate.name = "ycsb";
    duplicate.factory = unnamed.factory;
    EXPECT_FALSE(registry.add(duplicate).ok());

    WorkloadMethod mistyped;
    mistyped.name = "mistyped-default";
    mistyped.factory = unnamed.factory;
    mistyped.params.push_back(ParamSpec{
        "n", ParamValue::Type::Int,
        ParamValue::ofString("not an int"), "broken"});
    EXPECT_FALSE(registry.add(mistyped).ok());
}

TEST(WorkloadRegistry, UserMethodsRegisterAndServeSpecs)
{
    // The EXPERIMENTS.md "registering a workload method" recipe.
    WorkloadMethod method;
    method.name = "test-stride";
    method.doc = "fixed-stride probe stream (test only)";
    method.params.push_back(
        ParamSpec{"elements", ParamValue::Type::Int,
                  ParamValue::ofInt(64), "array elements"});
    method.factory = [](const ParamMap &params, std::uint64_t seed)
        -> Expected<std::unique_ptr<TraceSource>> {
        StrideGenerator::Config config;
        config.elements =
            static_cast<std::uint64_t>(params.getInt("elements"));
        std::unique_ptr<TraceSource> source =
            std::make_unique<StrideGenerator>(config, Rng(seed));
        return source;
    };
    ASSERT_TRUE(
        WorkloadRegistry::instance().add(std::move(method)).ok());

    const auto spec =
        WorkloadSpec::parse("test-stride:elements=32", 9);
    ASSERT_TRUE(spec.ok());
    auto a = spec.value().make();
    auto b = spec.value().make();
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a.value()->drain(200), b.value()->drain(200));

    // And the JSON path round-trips it like any builtin.
    const auto json = spec.value().toJson();
    ASSERT_TRUE(json.ok());
    const auto back = WorkloadSpec::fromJson(json.value());
    ASSERT_TRUE(back.ok());
    auto c = back.value().make();
    ASSERT_TRUE(c.ok());
    EXPECT_EQ(a.value()->clone()->drain(200),
              c.value()->drain(200));
}

TEST(WorkloadRegistry, DescribeDocumentsParams)
{
    const auto text =
        WorkloadRegistry::instance().describe("reuse-dist");
    ASSERT_TRUE(text.ok());
    for (const char *param :
         {"hist", "depth", "decay", "cold", "line-bytes"}) {
        EXPECT_NE(text.value().find(param), std::string::npos)
            << param;
    }
    EXPECT_FALSE(
        WorkloadRegistry::instance().describe("nosuch").ok());
}

// --------------------------------------- WorkloadSpec, CLI parse

TEST(WorkloadSpecParse, BareSpec92ProfileNamesStillWork)
{
    const auto spec = WorkloadSpec::parse("nasa7", 3);
    ASSERT_TRUE(spec.ok());
    EXPECT_EQ(spec.value().method, "spec92");
    EXPECT_EQ(spec.value().params.getString("profile"), "nasa7");
    EXPECT_EQ(spec.value().seed, 3u);
    EXPECT_EQ(spec.value().shortLabel(), "nasa7");

    const auto levy = WorkloadSpec::parse("shortlevy", 1);
    ASSERT_TRUE(levy.ok());
    EXPECT_EQ(levy.value().method, "short-levy");
}

TEST(WorkloadSpecParse, MethodWithParamsParsesTypedValues)
{
    const auto spec =
        WorkloadSpec::parse("ycsb-a:theta=0.9,records=1e6", 2);
    ASSERT_TRUE(spec.ok());
    EXPECT_EQ(spec.value().method, "ycsb-a");
    EXPECT_DOUBLE_EQ(spec.value().params.getDouble("theta"), 0.9);
    EXPECT_EQ(spec.value().params.getInt("records"), 1000000);
    ASSERT_TRUE(spec.value().make().ok());
}

TEST(WorkloadSpecParse, ErrorsAreTypedAndNameTheContext)
{
    const auto unknown = WorkloadSpec::parse("nosuchmethod", 1);
    ASSERT_FALSE(unknown.ok());
    EXPECT_EQ(unknown.status().code(), ErrorCode::NotFound);

    const auto bad_value = WorkloadSpec::parse("ycsb:theta=oops", 1);
    ASSERT_FALSE(bad_value.ok());
    EXPECT_NE(bad_value.status().message().find("theta"),
              std::string::npos);

    const auto bad_param = WorkloadSpec::parse("ycsb:bogus=1", 1);
    ASSERT_FALSE(bad_param.ok());
    EXPECT_EQ(bad_param.status().code(),
              ErrorCode::InvalidArgument);

    const auto bad_list = WorkloadSpec::parse("ycsb:theta", 1);
    ASSERT_FALSE(bad_list.ok());
    EXPECT_EQ(bad_list.status().code(), ErrorCode::ParseError);
}

// --------------------------------------- WorkloadSpec, JSON

/** A temp trace file so the "trace" method can build sources. */
std::string
writeTempTrace()
{
    Trace trace;
    Rng rng(7);
    for (int i = 0; i < 64; ++i) {
        MemoryReference ref;
        ref.size = 4;
        ref.addr = alignDown(rng.nextBelow(1 << 14), ref.size);
        ref.kind =
            rng.nextBool(0.3) ? RefKind::Store : RefKind::Load;
        trace.append(ref);
    }
    const std::string path =
        ::testing::TempDir() + "uatm_registry_test.trc";
    EXPECT_TRUE(BinaryTraceFormat::writeFile(trace, path).ok());
    return path;
}

TEST(WorkloadSpecJson, EveryRegisteredMethodRoundTrips)
{
    const std::string trace_path = writeTempTrace();
    for (const auto &name : WorkloadRegistry::instance().names()) {
        WorkloadSpec spec = WorkloadSpec::of(name, {}, 11);
        if (name == "trace") {
            spec.params.setString("path", trace_path);
            spec.params.setString("format", "binary");
        }
        const auto json = spec.toJson();
        ASSERT_TRUE(json.ok()) << name;
        const auto back = WorkloadSpec::fromJson(json.value());
        ASSERT_TRUE(back.ok()) << name << ": " << json.value();

        // The round-trip preserves the spec field for field and
        // re-renders byte-identically.
        EXPECT_EQ(back.value().method, spec.method) << name;
        EXPECT_EQ(back.value().params, spec.params) << name;
        EXPECT_EQ(back.value().seed, spec.seed) << name;
        EXPECT_EQ(back.value().withIFetch, spec.withIFetch) << name;
        const auto json2 = back.value().toJson();
        ASSERT_TRUE(json2.ok()) << name;
        EXPECT_EQ(json.value(), json2.value()) << name;

        // And the deserialized spec builds the same byte stream
        // (or fails identically, for the analytic marker).
        auto original = spec.make();
        auto restored = back.value().make();
        ASSERT_EQ(original.ok(), restored.ok()) << name;
        if (original.ok()) {
            EXPECT_EQ(original.value()->drain(300),
                      restored.value()->drain(300))
                << name;
        } else {
            EXPECT_EQ(original.status().code(),
                      restored.status().code())
                << name;
        }
    }
}

TEST(WorkloadSpecJson, IFetchAndParamsSurviveTheTrip)
{
    auto spec = valueOrFatal(
        WorkloadSpec::parse("ycsb-e:records=2000,scan-max=10", 5));
    spec.withIFetch = true;
    const auto json = spec.toJson();
    ASSERT_TRUE(json.ok());
    const auto back = WorkloadSpec::fromJson(json.value());
    ASSERT_TRUE(back.ok());
    EXPECT_TRUE(back.value().withIFetch);
    auto source = back.value().make();
    ASSERT_TRUE(source.ok());
    bool saw_ifetch = false;
    for (const auto &ref : source.value()->drain(500))
        saw_ifetch |= ref.kind == RefKind::IFetch;
    EXPECT_TRUE(saw_ifetch);
}

TEST(WorkloadSpecJson, StrictSchemaRejectsMalformedDocuments)
{
    const char *bad[] = {
        "not json at all",
        "[1,2]",
        "{\"params\":{},\"seed\":1,\"ifetch\":false}",
        "{\"method\":7,\"params\":{},\"seed\":1,\"ifetch\":false}",
        "{\"method\":\"ycsb\",\"params\":{},\"seed\":-1,"
        "\"ifetch\":false}",
        "{\"method\":\"ycsb\",\"params\":{},\"seed\":1.5,"
        "\"ifetch\":false}",
        "{\"method\":\"ycsb\",\"params\":{},\"seed\":1,"
        "\"ifetch\":\"yes\"}",
        "{\"method\":\"ycsb\",\"params\":{},\"seed\":1,"
        "\"ifetch\":false,\"extra\":1}",
        "{\"method\":\"ycsb\",\"params\":{\"theta\":null},"
        "\"seed\":1,\"ifetch\":false}",
    };
    for (const char *text : bad) {
        const auto spec = WorkloadSpec::fromJson(text);
        ASSERT_FALSE(spec.ok()) << text;
        EXPECT_EQ(spec.status().code(), ErrorCode::ParseError)
            << text;
    }
}

TEST(WorkloadSpecJson, UnknownMethodParsesButFailsAtMake)
{
    // Deliberate: a deserialized grid degrades per point, so the
    // parse itself succeeds and make() carries the NotFound.
    const auto spec = WorkloadSpec::fromJson(
        "{\"method\":\"retired-method\",\"params\":{},"
        "\"seed\":1,\"ifetch\":false}");
    ASSERT_TRUE(spec.ok());
    const auto made = spec.value().make();
    ASSERT_FALSE(made.ok());
    EXPECT_EQ(made.status().code(), ErrorCode::NotFound);
}

TEST(WorkloadSpecJson, CustomSpecsRefuseToSerialize)
{
    const auto spec = WorkloadSpec::custom("inproc", [] {
        return ShortLevyWorkload::make(1);
    });
    EXPECT_FALSE(spec.serializable());
    const auto json = spec.toJson();
    ASSERT_FALSE(json.ok());
    EXPECT_EQ(json.status().code(), ErrorCode::InvalidArgument);
    // But it still builds.
    ASSERT_TRUE(spec.make().ok());
    EXPECT_EQ(spec.shortLabel(), "inproc");
}

// ------------------------------- Scenario + Runner integration

std::vector<Cell>
hitRatioKernel(const Point &point)
{
    auto source = okOrThrow(point.workload.make());
    const auto run = runCacheSim(point.cache, *source, point.refs);
    return {Cell::num(run.hitRatio(), 6)};
}

Scenario
newMethodScenario()
{
    Scenario scenario("new_methods");
    scenario.refs = 4000;
    scenario.cache.sizeBytes = 8192;
    scenario.cache.assoc = 2;
    scenario.cache.lineBytes = 32;
    scenario.sweep("size", {4096, 8192},
                   [](Point &point, const AxisValue &v) {
                       point.cache.sizeBytes =
                           static_cast<std::uint64_t>(v.value);
                   });
    scenario.sweepWorkloadSpecs(
        {valueOrFatal(WorkloadSpec::parse("ycsb-a:records=5000", 3)),
         valueOrFatal(WorkloadSpec::parse(
             "reuse-dist:depth=64,decay=0.9", 3)),
         valueOrFatal(WorkloadSpec::parse("nasa7", 3))});
    return scenario;
}

TEST(WorkloadSpecRunner, GeometrySweepIsByteIdenticalAcrossThreads)
{
    Runner serial(RunnerOptions{1});
    Runner wide(RunnerOptions{4});
    const ResultTable a =
        serial.run(newMethodScenario(), {"hr"}, hitRatioKernel);
    const ResultTable b =
        wide.run(newMethodScenario(), {"hr"}, hitRatioKernel);
    EXPECT_EQ(a.renderCsv(), b.renderCsv());
    EXPECT_EQ(a.renderJson(), b.renderJson());
}

TEST(WorkloadSpecRunner, BadSpecDegradesToAnErrorRow)
{
    Scenario scenario("degrades");
    scenario.refs = 1000;
    scenario.cache.sizeBytes = 4096;
    WorkloadSpec broken = WorkloadSpec::of("nosuchmethod", {}, 1);
    scenario.sweepWorkloadSpecs(
        {valueOrFatal(WorkloadSpec::parse("ycsb-c:records=2000", 1)),
         broken});
    Runner runner(RunnerOptions{2});
    const ResultTable table =
        runner.run(scenario, {"hr"}, hitRatioKernel);
    ASSERT_EQ(table.rows(), 2u);
    EXPECT_FALSE(table.at(0, 1).isError());
    EXPECT_TRUE(table.at(1, 1).isError());
}

} // namespace
} // namespace exp
} // namespace uatm
