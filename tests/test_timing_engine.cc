/**
 * @file
 * Unit tests for the timing engine: exact cycle accounting per
 * stalling feature, write buffers, pipelined fills, and the
 * FS-vs-Eq.2 exactness property the tradeoff model relies on.
 */

#include <gtest/gtest.h>

#include "cpu/timing_engine.hh"
#include "trace/generators.hh"

namespace uatm {
namespace {

MemoryReference
load(Addr addr, std::uint32_t gap = 0)
{
    return MemoryReference{addr, gap, 4, RefKind::Load};
}

MemoryReference
store(Addr addr, std::uint32_t gap = 0)
{
    return MemoryReference{addr, gap, 4, RefKind::Store};
}

CacheConfig
testCache()
{
    CacheConfig config;
    config.sizeBytes = 256; // 4 sets x 2 ways x 32B lines
    config.assoc = 2;
    config.lineBytes = 32;
    return config;
}

MemoryConfig
testMemory(Cycles mu_m = 8, bool pipelined = false)
{
    MemoryConfig config;
    config.busWidthBytes = 4;
    config.cycleTime = mu_m;
    config.pipelined = pipelined;
    config.pipelineInterval = 2;
    return config;
}

TimingEngine
makeEngine(StallFeature feature, Cycles mu_m = 8,
           std::uint32_t wbuf_depth = 0, bool pipelined = false,
           std::uint32_t mshrs = 1,
           CacheConfig cache_config = testCache())
{
    CpuConfig cpu;
    cpu.feature = feature;
    cpu.mshrs = mshrs;
    return TimingEngine(cache_config, testMemory(mu_m, pipelined),
                        WriteBufferConfig{wbuf_depth, true}, cpu);
}

// ------------------------------------------------------------------- FS

TEST(TimingFS, SingleMissCostsFullLine)
{
    auto engine = makeEngine(StallFeature::FS);
    Trace t;
    t.append(load(0x000));
    const auto stats = engine.run(t, 100);
    // Miss replaces the base cycle: (L/D) mu_m = 8 * 8 = 64.
    EXPECT_EQ(stats.cycles, 64u);
    EXPECT_EQ(stats.fills, 1u);
    EXPECT_EQ(stats.initialMissWait, 64u);
    EXPECT_DOUBLE_EQ(stats.phi(8), 8.0); // phi = L/D exactly
}

TEST(TimingFS, HitCostsOneCycle)
{
    auto engine = makeEngine(StallFeature::FS);
    Trace t;
    t.append(load(0x000));
    t.append(load(0x004, 2)); // 2 gap instr + 1 hit
    const auto stats = engine.run(t, 100);
    EXPECT_EQ(stats.cycles, 64u + 3u);
    EXPECT_EQ(stats.instructions, 4u);
}

TEST(TimingFS, DirtyEvictionAddsSynchronousFlush)
{
    auto engine = makeEngine(StallFeature::FS);
    Trace t;
    t.append(store(0x000)); // miss, fills, dirties
    t.append(load(0x080));  // miss, other way of set 0
    t.append(load(0x100));  // miss, evicts dirty 0x000
    const auto stats = engine.run(t, 100);
    // 3 fills * 64 + one flush * 64.
    EXPECT_EQ(stats.cycles, 3 * 64u + 64u);
    EXPECT_EQ(stats.flushStall, 64u);
}

TEST(TimingFS, WriteBufferHidesTheFlush)
{
    auto engine = makeEngine(StallFeature::FS, 8, /*wbuf=*/8);
    Trace t;
    t.append(store(0x000));
    t.append(load(0x080, 200)); // far apart: no port contention
    t.append(load(0x100, 200));
    t.append(load(0x140, 200));
    const auto no_flush_cycles = engine.run(t, 100).cycles;

    auto sync_engine = makeEngine(StallFeature::FS, 8, /*wbuf=*/0);
    const auto sync_cycles = sync_engine.run(t, 100).cycles;
    EXPECT_EQ(sync_cycles, no_flush_cycles + 64u);
}

TEST(TimingFS, MatchesEq2OnSyntheticWorkload)
{
    // The strongest invariant: for a full-stalling cache with no
    // write buffer, the engine must reproduce Eq. 2 exactly.
    WorkingSetGenerator::Config ws;
    ws.stackDepth = 24; // fits badly in the 256B test cache
    ws.decay = 0.9;
    ws.coldFraction = 0.05;
    ws.storeFraction = 0.3;
    WorkingSetGenerator gen(ws, Rng(5));

    const Cycles mu_m = 6;
    auto engine = makeEngine(StallFeature::FS, mu_m);
    const auto stats = engine.run(gen, 5000);
    const auto &cs = engine.cacheStats();

    const std::uint64_t line_over_bus = 32 / 4;
    const std::uint64_t expected =
        (cs.instructions - cs.fills) +
        cs.fills * line_over_bus * mu_m +
        cs.writebacks * line_over_bus * mu_m;
    EXPECT_EQ(stats.cycles, expected);
}

// ------------------------------------------------------------------- BL

TEST(TimingBL, ResumesOnRequestedChunk)
{
    auto engine = makeEngine(StallFeature::BL);
    Trace t;
    t.append(load(0x000));
    const auto stats = engine.run(t, 100);
    // CPU resumes after the first chunk (mu_m = 8).
    EXPECT_EQ(stats.cycles, 8u);
    EXPECT_DOUBLE_EQ(stats.phi(8), 1.0); // Table 2 minimum
}

TEST(TimingBL, AnyAccessDuringFillStallsToCompletion)
{
    auto engine = makeEngine(StallFeature::BL);
    Trace t;
    t.append(load(0x000));
    t.append(load(0x080)); // different line, still bus-locked
    const auto stats = engine.run(t, 100);
    // Resume at 8; second access stalls to 64; its own miss fill
    // grants at 64 and resumes at 72.
    EXPECT_EQ(stats.cycles, 72u);
    EXPECT_EQ(stats.inflightAccessStall, 56u);
}

TEST(TimingBL, NonMemoryInstructionsOverlapTheFill)
{
    auto engine = makeEngine(StallFeature::BL);
    Trace t;
    t.append(load(0x000));
    t.append(load(0x084, 100)); // 100 ALU ops bridge the fill
    const auto stats = engine.run(t, 100);
    // 8 (first chunk) + 100 gap -> t=108, fill long done; second
    // miss fills at 108..172, resumes 116.
    EXPECT_EQ(stats.cycles, 116u);
    EXPECT_EQ(stats.inflightAccessStall, 0u);
}

// ----------------------------------------------------------------- BNL1

TEST(TimingBNL1, OtherLinesProceedDuringFill)
{
    auto engine = makeEngine(StallFeature::BNL1);
    Trace t;
    t.append(load(0x000)); // miss; resume at 8
    t.append(load(0x020)); // second line
    t.append(load(0x024)); // hit on second line while first fills?
    const auto stats = engine.run(t, 100);
    // 0x020 misses at 8 but must serialise behind the first fill
    // (single memory port): stall 8->64, fill 64..128, resume 72.
    // 0x024 hits the in-flight second line: BNL1 stalls to 128.
    EXPECT_EQ(stats.cycles, 129u);
    EXPECT_EQ(stats.missSerializationStall, 56u);
    EXPECT_EQ(stats.inflightAccessStall, 56u);
}

TEST(TimingBNL1, AccessToInflightLineWaitsForCompletion)
{
    auto engine = makeEngine(StallFeature::BNL1);
    Trace t;
    t.append(load(0x000));
    t.append(load(0x004)); // same line, already-arrived chunk
    const auto stats = engine.run(t, 100);
    // BNL1 ignores partial arrival: stall 8 -> 64, hit at 65.
    EXPECT_EQ(stats.cycles, 65u);
}

// ----------------------------------------------------------------- BNL2

TEST(TimingBNL2, ArrivedPartProceeds)
{
    auto engine = makeEngine(StallFeature::BNL2);
    Trace t;
    t.append(load(0x000));
    t.append(load(0x000)); // chunk 0 arrived at 8 == issue time
    const auto stats = engine.run(t, 100);
    EXPECT_EQ(stats.cycles, 9u);
    EXPECT_EQ(stats.inflightAccessStall, 0u);
}

TEST(TimingBNL2, UnarrivedPartWaitsForWholeLine)
{
    auto engine = makeEngine(StallFeature::BNL2);
    Trace t;
    t.append(load(0x000));
    t.append(load(0x01c)); // last chunk, arrives at 64
    const auto stats = engine.run(t, 100);
    // Stall until the *entire* line at 64, then the hit cycle.
    EXPECT_EQ(stats.cycles, 65u);
    EXPECT_EQ(stats.inflightAccessStall, 56u);
}

// ----------------------------------------------------------------- BNL3

TEST(TimingBNL3, WaitsOnlyForTheRequestedChunk)
{
    auto engine = makeEngine(StallFeature::BNL3);
    Trace t;
    t.append(load(0x000));
    t.append(load(0x004)); // chunk 1 arrives at 16
    const auto stats = engine.run(t, 100);
    // Stall 8 -> 16, then the hit cycle.
    EXPECT_EQ(stats.cycles, 17u);
    EXPECT_EQ(stats.inflightAccessStall, 8u);
}

TEST(TimingBNL3, RequestedWordFirstOrdering)
{
    auto engine = makeEngine(StallFeature::BNL3);
    Trace t;
    t.append(load(0x01c)); // miss on the LAST chunk of the line
    t.append(load(0x000)); // wraparound: chunk 0 arrives second
    const auto stats = engine.run(t, 100);
    // Chunk 7 first at 8 (resume), chunk 0 at 16: stall 8 -> 16.
    EXPECT_EQ(stats.cycles, 17u);
}

TEST(TimingBNL3, StrictlyFasterThanBNL1OnSameTrace)
{
    Trace t;
    t.append(load(0x000));
    for (int i = 1; i < 8; ++i)
        t.append(load(0x000 + 4 * i, 1));
    auto bnl1 = makeEngine(StallFeature::BNL1);
    auto bnl3 = makeEngine(StallFeature::BNL3);
    EXPECT_LT(bnl3.run(t, 100).cycles, bnl1.run(t, 100).cycles);
}

// ------------------------------------------------------------------- NB

TEST(TimingNB, MissDoesNotStallTheIssuer)
{
    auto engine = makeEngine(StallFeature::NB);
    Trace t;
    t.append(load(0x000));
    t.append(load(0x100, 100)); // far in the future
    const auto stats = engine.run(t, 100);
    // First miss costs 1; 100 ALU ops; second miss also costs 1.
    EXPECT_EQ(stats.cycles, 102u);
    EXPECT_DOUBLE_EQ(stats.phi(8), 0.0); // Table 2 minimum
}

TEST(TimingNB, ConsumerStallsUntilChunkArrives)
{
    auto engine = makeEngine(StallFeature::NB);
    Trace t;
    t.append(load(0x000));
    t.append(load(0x004)); // consumes chunk 1 (arrives at 16)
    const auto stats = engine.run(t, 100);
    EXPECT_EQ(stats.cycles, 17u);
}

TEST(TimingNB, SecondMissSerializesWithOneMshr)
{
    auto engine = makeEngine(StallFeature::NB, 8, 0, false, 1);
    Trace t;
    t.append(load(0x000));
    t.append(load(0x080));
    const auto stats = engine.run(t, 100);
    // Second miss waits for the first fill (1 -> 64), then issues
    // its own fill but does not wait for data: cost 1 at 64.
    EXPECT_EQ(stats.cycles, 65u);
    EXPECT_EQ(stats.missSerializationStall, 63u);
}

TEST(TimingNB, TwoMshrsOverlapMisses)
{
    auto engine = makeEngine(StallFeature::NB, 8, 0, false, 2);
    Trace t;
    t.append(load(0x000));
    t.append(load(0x080));
    const auto stats = engine.run(t, 100);
    // Neither miss stalls the CPU (transfers serialise on the port
    // in the background).
    EXPECT_EQ(stats.cycles, 2u);
    EXPECT_EQ(stats.missSerializationStall, 0u);
}

// ------------------------------------------------------------ pipelined

TEST(TimingPipelined, FullStallMissCostsMuP)
{
    auto engine = makeEngine(StallFeature::FS, 8, 0, true);
    Trace t;
    t.append(load(0x000));
    const auto stats = engine.run(t, 100);
    // mu_p = 8 + 2*(8-1) = 22.
    EXPECT_EQ(stats.cycles, 22u);
}

TEST(TimingPipelined, BeatsNonPipelinedForLongLines)
{
    WorkingSetGenerator::Config ws;
    ws.stackDepth = 24;
    ws.decay = 0.9;
    ws.coldFraction = 0.05;
    WorkingSetGenerator gen(ws, Rng(9));

    auto plain = makeEngine(StallFeature::FS, 8, 0, false);
    auto piped = makeEngine(StallFeature::FS, 8, 0, true);
    EXPECT_LT(piped.run(gen, 3000).cycles,
              plain.run(gen, 3000).cycles);
}

// ----------------------------------------------------------- write-around

TEST(TimingWriteAround, StoreMissCostsOneMemoryCycle)
{
    CacheConfig config = testCache();
    config.writeMiss = WriteMissPolicy::WriteAround;
    auto engine = makeEngine(StallFeature::FS, 8, 0, false, 1,
                             config);
    Trace t;
    t.append(store(0x000));
    const auto stats = engine.run(t, 100);
    EXPECT_EQ(stats.cycles, 8u); // W * mu_m
    EXPECT_EQ(stats.writeArounds, 1u);
    EXPECT_EQ(stats.fills, 0u);
}

TEST(TimingWriteAround, BufferedStoreMissCostsOneCycle)
{
    CacheConfig config = testCache();
    config.writeMiss = WriteMissPolicy::WriteAround;
    auto engine = makeEngine(StallFeature::FS, 8, 4, false, 1,
                             config);
    Trace t;
    t.append(store(0x000));
    const auto stats = engine.run(t, 100);
    EXPECT_EQ(stats.cycles, 1u);
}

TEST(TimingWriteBuffer, ReadBypassBeatsPlainFifo)
{
    // Sec. 4.3's qualifier matters: a buffer whose reads must
    // drain older writes first helps less than a read-bypassing
    // one, and both beat the synchronous design.
    WorkingSetGenerator::Config ws;
    ws.stackDepth = 24;
    ws.decay = 0.9;
    ws.coldFraction = 0.05;
    ws.storeFraction = 0.4;
    WorkingSetGenerator gen(ws, Rng(77));

    auto run = [&](std::uint32_t depth, bool bypass) {
        CpuConfig cpu;
        cpu.feature = StallFeature::FS;
        TimingEngine engine(testCache(), testMemory(8),
                            WriteBufferConfig{depth, bypass},
                            cpu);
        return engine.run(gen, 4000).cycles;
    };
    const Cycles sync = run(0, true);
    const Cycles fifo = run(8, false);
    const Cycles bypass = run(8, true);
    EXPECT_LE(bypass, fifo);
    EXPECT_LT(fifo, sync);
}

// --------------------------------------------------------------- ordering

TEST(TimingOrdering, FeatureCyclesAreMonotone)
{
    // On any workload: FS >= BL >= BNL1 >= BNL2 >= BNL3 >= NB.
    WorkingSetGenerator::Config ws;
    ws.stackDepth = 24;
    ws.decay = 0.9;
    ws.coldFraction = 0.05;
    ws.storeFraction = 0.2;
    WorkingSetGenerator gen(ws, Rng(21));

    Cycles previous = ~0ull;
    for (StallFeature f :
         {StallFeature::FS, StallFeature::BL, StallFeature::BNL1,
          StallFeature::BNL2, StallFeature::BNL3, StallFeature::NB}) {
        auto engine = makeEngine(f, 12, 16);
        const auto cycles = engine.run(gen, 4000).cycles;
        EXPECT_LE(cycles, previous) << stallFeatureName(f);
        previous = cycles;
    }
}

TEST(TimingOrdering, PhiWithinTable2Bounds)
{
    WorkingSetGenerator::Config ws;
    ws.stackDepth = 24;
    ws.decay = 0.9;
    ws.coldFraction = 0.05;
    WorkingSetGenerator gen(ws, Rng(33));

    const Cycles mu_m = 8;
    for (StallFeature f :
         {StallFeature::BL, StallFeature::BNL1, StallFeature::BNL2,
          StallFeature::BNL3, StallFeature::NB}) {
        auto engine = makeEngine(f, mu_m, 16);
        const auto stats = engine.run(gen, 4000);
        const auto bounds = phiBounds(f, 8.0);
        const double phi = stats.phi(mu_m);
        EXPECT_GE(phi, bounds.min - 1e-9) << stallFeatureName(f);
        EXPECT_LE(phi, bounds.max + 1e-9) << stallFeatureName(f);
    }
}

// ----------------------------------------------------------------- stats

TEST(TimingStats, FormatMentionsKeyFields)
{
    auto engine = makeEngine(StallFeature::FS);
    Trace t;
    t.append(load(0x000));
    const auto stats = engine.run(t, 100);
    const std::string text = stats.format();
    EXPECT_NE(text.find("cycles"), std::string::npos);
    EXPECT_NE(text.find("CPI"), std::string::npos);
}

TEST(TimingStats, MeanMemoryDelayMatchesDefinition)
{
    auto engine = makeEngine(StallFeature::FS);
    Trace t;
    t.append(load(0x000));     // miss: 64 cycles
    t.append(load(0x004, 1));  // hit
    const auto stats = engine.run(t, 100);
    // X = 64 + 1 + 1 = 66, E = 3, refs = 2:
    // delay = (66 - 3)/2 + 1 = 32.5.
    EXPECT_DOUBLE_EQ(stats.meanMemoryDelay(), 32.5);
}

TEST(TimingEngine, RejectsLineNarrowerThanBus)
{
    CacheConfig cache;
    cache.lineBytes = 4;
    cache.sizeBytes = 256;
    cache.assoc = 1;
    MemoryConfig mem;
    mem.busWidthBytes = 8;
    mem.cycleTime = 4;
    CpuConfig cpu;
    EXPECT_THROW(
        { TimingEngine engine(cache, mem, WriteBufferConfig{}, cpu); },
        StatusError);
}

} // namespace
} // namespace uatm
