/**
 * @file
 * Integration tests: the analytic tradeoff model (src/core) against
 * the trace-driven timing engine (src/cpu) on the SPEC92-like
 * workloads — the repo's substitute for the paper's trace-driven
 * validation.
 */

#include <gtest/gtest.h>

#include "core/execution_time.hh"
#include "core/tradeoff.hh"
#include "cpu/phi_measurement.hh"
#include "cpu/timing_engine.hh"
#include "trace/generators.hh"

namespace uatm {
namespace {

CacheConfig
fig1Cache()
{
    CacheConfig config;
    config.sizeBytes = 8 * 1024;
    config.assoc = 2;
    config.lineBytes = 32;
    return config;
}

MemoryConfig
memory(Cycles mu_m, std::uint32_t bus = 4, bool pipelined = false)
{
    MemoryConfig config;
    config.busWidthBytes = bus;
    config.cycleTime = mu_m;
    config.pipelined = pipelined;
    config.pipelineInterval = 2;
    return config;
}

constexpr std::uint64_t kRefs = 60000;

/**
 * For a full-stalling cache with no write buffer the engine must
 * reproduce Eq. 2 exactly, on every SPEC92-like profile.
 */
TEST(Integration, EngineMatchesEq2ExactlyForFS)
{
    for (const auto &name : Spec92Profile::names()) {
        auto workload = Spec92Profile::make(name, 77);
        CpuConfig cpu;
        cpu.feature = StallFeature::FS;
        TimingEngine engine(fig1Cache(), memory(6),
                            WriteBufferConfig{0, true}, cpu);
        const auto stats = engine.run(*workload, kRefs);
        const auto &cs = engine.cacheStats();

        const std::uint64_t expected =
            (cs.instructions - cs.fills) + cs.fills * 8 * 6 +
            cs.writebacks * 8 * 6;
        EXPECT_EQ(stats.cycles, expected) << name;
    }
}

/**
 * Same exactness with a pipelined memory: per fill and per flush
 * the cost is mu_p = mu_m + q(L/D - 1) (Eq. 9).
 */
TEST(Integration, EngineMatchesPipelinedModelForFS)
{
    auto workload = Spec92Profile::make("swm256", 31);
    CpuConfig cpu;
    cpu.feature = StallFeature::FS;
    TimingEngine engine(fig1Cache(), memory(6, 4, true),
                        WriteBufferConfig{0, true}, cpu);
    const auto stats = engine.run(*workload, kRefs);
    const auto &cs = engine.cacheStats();

    const std::uint64_t mu_p = 6 + 2 * (8 - 1);
    const std::uint64_t expected =
        (cs.instructions - cs.fills) + cs.fills * mu_p +
        cs.writebacks * mu_p;
    EXPECT_EQ(stats.cycles, expected);
}

/**
 * The engine-measured bus-doubling benefit equals the analytic
 * prediction: X(D) - X(2D) = fills * (L/D - L/2D) mu_m
 *                          + writebacks * (L/D - L/2D) mu_m.
 */
TEST(Integration, BusDoublingBenefitMatchesModel)
{
    auto workload = Spec92Profile::make("nasa7", 19);
    CpuConfig cpu;
    cpu.feature = StallFeature::FS;

    TimingEngine narrow(fig1Cache(), memory(8, 4),
                        WriteBufferConfig{0, true}, cpu);
    const auto x_narrow = narrow.run(*workload, kRefs);
    const auto cs = narrow.cacheStats();

    TimingEngine wide(fig1Cache(), memory(8, 8),
                      WriteBufferConfig{0, true}, cpu);
    const auto x_wide = wide.run(*workload, kRefs);

    const std::uint64_t expected_saving =
        cs.fills * (8 - 4) * 8 + cs.writebacks * (8 - 4) * 8;
    EXPECT_EQ(x_narrow.cycles - x_wide.cycles, expected_saving);
}

/**
 * A deep read-bypassing write buffer lands between the analytic
 * best case (flushes fully hidden) and the no-buffer engine run.
 */
TEST(Integration, WriteBufferBracketsAnalyticBestCase)
{
    // "ear" has the paper-typical low miss density, so the bus has
    // idle cycles for the buffer to drain into; the paper's
    // best-case curve assumes exactly that regime (Sec. 4.3).
    auto workload = Spec92Profile::make("ear", 23);
    CpuConfig cpu;
    cpu.feature = StallFeature::FS;

    TimingEngine buffered(fig1Cache(), memory(8),
                          WriteBufferConfig{64, true}, cpu);
    const auto x_buf = buffered.run(*workload, kRefs);
    const auto cs = buffered.cacheStats();

    TimingEngine sync(fig1Cache(), memory(8),
                      WriteBufferConfig{0, true}, cpu);
    const auto x_sync = sync.run(*workload, kRefs);

    // Analytic best case: all flush cycles removed.
    const std::uint64_t best =
        (cs.instructions - cs.fills) + cs.fills * 8 * 8;
    EXPECT_GE(x_buf.cycles, best);
    EXPECT_LT(x_buf.cycles, x_sync.cycles);
    // The buffer should hide the large majority of flush cycles.
    const double hidden =
        static_cast<double>(x_sync.cycles - x_buf.cycles) /
        static_cast<double>(x_sync.cycles - best);
    EXPECT_GT(hidden, 0.6);
}

/**
 * Figure 1's harness: measured phi lies inside Table 2's bounds
 * for every feature and profile.
 */
TEST(Integration, MeasuredPhiRespectsTable2)
{
    for (StallFeature f :
         {StallFeature::BL, StallFeature::BNL1, StallFeature::BNL2,
          StallFeature::BNL3}) {
        PhiExperiment exp;
        exp.feature = f;
        exp.cycleTime = 8;
        exp.refs = 30000;
        for (const auto &name : Spec92Profile::names()) {
            const auto result = measurePhi(exp, name);
            EXPECT_GE(result.phi, 1.0 - 1e-9)
                << stallFeatureName(f) << " " << name;
            EXPECT_LE(result.phi, 8.0 + 1e-9)
                << stallFeatureName(f) << " " << name;
        }
    }
}

/**
 * Figure 1's ordering: BL stalls at least as much as BNL1, which
 * stalls at least as much as BNL2, then BNL3 (averaged over the
 * six profiles).
 */
TEST(Integration, PhiOrderingAcrossFeatures)
{
    auto average = [](StallFeature f, Cycles mu) {
        PhiExperiment exp;
        exp.feature = f;
        exp.cycleTime = mu;
        exp.refs = 30000;
        return measurePhiAllProfiles(exp).back().phi;
    };
    for (Cycles mu : {4u, 12u, 24u}) {
        const double bl = average(StallFeature::BL, mu);
        const double bnl1 = average(StallFeature::BNL1, mu);
        const double bnl2 = average(StallFeature::BNL2, mu);
        const double bnl3 = average(StallFeature::BNL3, mu);
        EXPECT_GE(bl + 1e-9, bnl1) << mu;
        EXPECT_GE(bnl1 + 1e-9, bnl2) << mu;
        EXPECT_GE(bnl2 + 1e-9, bnl3) << mu;
    }
}

/**
 * Figure 1's trend: longer memory latency produces more stalling
 * (phi as a fraction of L/D grows with mu_m) for BL and BNL1.
 */
TEST(Integration, PhiGrowsWithMemoryCycleTime)
{
    for (StallFeature f : {StallFeature::BL, StallFeature::BNL1}) {
        PhiExperiment exp;
        exp.feature = f;
        exp.refs = 30000;
        exp.cycleTime = 4;
        const double at4 =
            measurePhiAllProfiles(exp).back().percentOfFull;
        exp.cycleTime = 24;
        const double at24 =
            measurePhiAllProfiles(exp).back().percentOfFull;
        EXPECT_GT(at24, at4) << stallFeatureName(f);
    }
}

/**
 * Summary bullet 3: BNL3 achieves a meaningful (paper: 20-30 %)
 * reduction of the FS read-miss latency at small memory cycle
 * times.  Our synthetic traces land in a compatible band.
 */
TEST(Integration, Bnl3ReducesReadMissLatency)
{
    PhiExperiment exp;
    exp.feature = StallFeature::BNL3;
    exp.cycleTime = 8; // < 15 cycles, the claim's regime
    exp.refs = 40000;
    const auto avg = measurePhiAllProfiles(exp).back();
    const double reduction = 1.0 - avg.phi / 8.0;
    EXPECT_GT(reduction, 0.10);
    EXPECT_LT(reduction, 0.50);
}

/**
 * The analytic partial-stall tradeoff, fed with the *measured*
 * phi, predicts the engine's BNL1 speedup over FS within a few
 * percent — closing the loop between Secs. 4.2 and 5.3.
 */
TEST(Integration, MeasuredPhiPredictsBnl1Speedup)
{
    // With flush traffic factored out (the regime of Eq. 8 and
    // Sec. 4.2), the measured phi predicts the FS -> BNL1 saving
    // exactly: X_FS - X_BNL = fills * (L/D - phi) * mu_m.
    const Cycles mu_m = 12;
    auto workload = Spec92Profile::make("doduc", 41);

    CpuConfig fs_cpu;
    fs_cpu.feature = StallFeature::FS;
    fs_cpu.suppressFlushTraffic = true;
    TimingEngine fs(fig1Cache(), memory(mu_m),
                    WriteBufferConfig{64, true}, fs_cpu);
    const auto x_fs = fs.run(*workload, kRefs);

    CpuConfig bnl_cpu;
    bnl_cpu.feature = StallFeature::BNL1;
    bnl_cpu.suppressFlushTraffic = true;
    TimingEngine bnl(fig1Cache(), memory(mu_m),
                     WriteBufferConfig{64, true}, bnl_cpu);
    const auto x_bnl = bnl.run(*workload, kRefs);

    const double phi = x_bnl.phi(mu_m);
    const double predicted_saving =
        static_cast<double>(x_bnl.fills) * (8.0 - phi) *
        static_cast<double>(mu_m);
    const double actual_saving =
        static_cast<double>(x_fs.cycles) -
        static_cast<double>(x_bnl.cycles);
    EXPECT_NEAR(actual_saving, predicted_saving, 1.0);
}

/**
 * Workload::fromCacheRun + Eq. 2 reproduce the engine exactly —
 * the bridge the benchmark harness relies on.
 */
TEST(Integration, WorkloadExtractionClosesTheLoop)
{
    auto workload = Spec92Profile::make("ear", 3);
    CpuConfig cpu;
    cpu.feature = StallFeature::FS;
    TimingEngine engine(fig1Cache(), memory(10),
                        WriteBufferConfig{0, true}, cpu);
    const auto stats = engine.run(*workload, kRefs);

    const Workload w =
        Workload::fromCacheRun(engine.cacheStats(), 32);
    Machine m;
    m.busWidth = 4;
    m.lineBytes = 32;
    m.cycleTime = 10;
    const double x = executionTimeFS(w, m);
    EXPECT_NEAR(x, static_cast<double>(stats.cycles),
                static_cast<double>(stats.cycles) * 1e-9);
}

} // namespace
} // namespace uatm
