/**
 * @file
 * Unit tests for the observability layer: JSON writer and parser,
 * stat registry (incl. Prometheus exposition), event tracer
 * (incl. ring wraparound, counter tracks, and the Chrome export),
 * run manifests, wall-clock profiling, the benchmark harness +
 * perf_diff comparator, and the TimingStats drift guard that
 * keeps counters(), registerStats() and the struct itself in
 * sync.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <thread>

#include "cpu/timing_engine.hh"
#include "obs/bench.hh"
#include "obs/json.hh"
#include "obs/manifest.hh"
#include "obs/profile.hh"
#include "obs/registry.hh"
#include "obs/trace_event.hh"
#include "trace/generators.hh"

namespace uatm {
namespace {

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

// ------------------------------------------------------------ JsonWriter

TEST(JsonWriter, NestedDocument)
{
    obs::JsonWriter w;
    w.beginObject();
    w.keyValue("n", 3);
    w.key("list").beginArray().value(1).value(2.5).endArray();
    w.key("child").beginObject().keyValue("s", "x").endObject();
    w.endObject();
    EXPECT_EQ(w.str(),
              "{\"n\":3,\"list\":[1,2.5],\"child\":{\"s\":\"x\"}}");
}

TEST(JsonWriter, EscapesControlAndQuotes)
{
    // escape() returns the fully quoted string literal.
    EXPECT_EQ(obs::JsonWriter::escape("a\"b\\c\n"),
              "\"a\\\"b\\\\c\\n\"");
    EXPECT_EQ(obs::JsonWriter::escape(std::string("\x01", 1)),
              "\"\\u0001\"");
}

TEST(JsonWriter, NonFiniteNumbersBecomeNull)
{
    obs::JsonWriter w;
    w.beginObject();
    w.keyValue("bad", std::numeric_limits<double>::infinity());
    w.endObject();
    EXPECT_EQ(w.str(), "{\"bad\":null}");
}

TEST(JsonWriter, BoolsRenderAsLiterals)
{
    obs::JsonWriter w;
    w.beginArray().value(true).value(false).endArray();
    EXPECT_EQ(w.str(), "[true,false]");
}

// ---------------------------------------------------------- StatRegistry

TEST(StatRegistry, ScalarRegisterAndLookup)
{
    obs::StatRegistry reg;
    reg.addScalar("sim.cycles", 42.0, "total cycles", "cycles");
    ASSERT_TRUE(reg.contains("sim.cycles"));
    EXPECT_DOUBLE_EQ(reg.value("sim.cycles"), 42.0);
    const obs::StatEntry *entry = reg.find("sim.cycles");
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry->unit, "cycles");
    EXPECT_EQ(entry->kind, obs::StatKind::Scalar);
    EXPECT_EQ(reg.find("absent"), nullptr);
    EXPECT_FALSE(reg.contains("absent"));
}

TEST(StatRegistry, FormulaEvaluatesAtDumpTime)
{
    obs::StatRegistry reg;
    double source = 1.0;
    reg.addFormula("derived.x", [&source] { return source * 2; },
                   "doubled");
    EXPECT_DOUBLE_EQ(reg.value("derived.x"), 2.0);
    source = 5.0; // formulas are lazy, not snapshots
    EXPECT_DOUBLE_EQ(reg.value("derived.x"), 10.0);
}

TEST(StatRegistry, DistributionKeepsMoments)
{
    RunningStats rs;
    rs.add(1.0);
    rs.add(3.0);
    obs::StatRegistry reg;
    reg.addDistribution("profile.run", rs, "wall clock",
                        "seconds");
    EXPECT_DOUBLE_EQ(reg.value("profile.run"), 2.0); // mean
    const obs::StatEntry *entry = reg.find("profile.run");
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry->distribution.count(), 2u);
}

TEST(StatRegistry, ChildrenOfSelectsSubtree)
{
    obs::StatRegistry reg;
    reg.addScalar("stall.flush", 1.0, "");
    reg.addScalar("stall.write", 2.0, "");
    reg.addScalar("stallion", 3.0, ""); // NOT a child of "stall"
    reg.addScalar("sim.fills", 4.0, "");
    const auto kids = reg.childrenOf("stall");
    ASSERT_EQ(kids.size(), 2u);
    EXPECT_EQ(kids[0]->name, "stall.flush");
    EXPECT_EQ(kids[1]->name, "stall.write");
}

TEST(StatRegistry, JsonDumpIsVersionedAndComplete)
{
    obs::StatRegistry reg;
    reg.addScalar("a.one", 1.5, "first", "cycles");
    reg.addFormula("a.two", [] { return 7.0; }, "second");
    const std::string json = reg.toJson();
    EXPECT_NE(json.find("\"schema_version\":"),
              std::string::npos);
    EXPECT_NE(json.find("\"a.one\""), std::string::npos);
    EXPECT_NE(json.find("\"a.two\""), std::string::npos);
    EXPECT_NE(json.find("\"kind\":\"formula\""),
              std::string::npos);
    EXPECT_NE(json.find("1.5"), std::string::npos);
    EXPECT_NE(json.find("7"), std::string::npos);
}

TEST(StatRegistry, FormatTextMentionsUnitsAndDescriptions)
{
    obs::StatRegistry reg;
    reg.addScalar("sim.cycles", 9.0, "total cycles", "cycles");
    const std::string text = reg.formatText();
    EXPECT_NE(text.find("sim.cycles"), std::string::npos);
    EXPECT_NE(text.find("total cycles"), std::string::npos);
}

TEST(StatGroup, PrefixesNestAndQualify)
{
    obs::StatRegistry reg;
    obs::StatGroup root(reg, "engine");
    root.group("sim").addScalar("fills", 3.0, "fills");
    obs::StatGroup nested = root.group("a").group("b");
    nested.addScalar("c", 1.0, "leaf");
    EXPECT_TRUE(reg.contains("engine.sim.fills"));
    EXPECT_TRUE(reg.contains("engine.a.b.c"));
    // Empty prefix registers bare names.
    obs::StatGroup bare(reg, "");
    bare.addScalar("top", 2.0, "bare");
    EXPECT_TRUE(reg.contains("top"));
}

// ----------------------------------------------------------- EventTracer

TEST(EventTracer, DisabledRecordsNothing)
{
    obs::EventTracer tracer(8);
    tracer.record("x", "cat", 0, 1);
    EXPECT_EQ(tracer.size(), 0u);
    EXPECT_EQ(tracer.recorded(), 0u);
    EXPECT_FALSE(tracer.enabled());
}

TEST(EventTracer, RecordsWhenEnabled)
{
    obs::EventTracer tracer(8);
    tracer.setEnabled(true);
    tracer.record("fill", "fill", 10, 64, 0x1000);
    tracer.record("stall", "stall", 74, 3);
    ASSERT_EQ(tracer.size(), 2u);
    const auto events = tracer.events();
    EXPECT_STREQ(events[0].name, "fill");
    EXPECT_EQ(events[0].start, 10u);
    EXPECT_EQ(events[0].duration, 64u);
    EXPECT_EQ(events[0].arg, 0x1000u);
    EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(EventTracer, RingWrapsOldestFirst)
{
    obs::EventTracer tracer(4);
    tracer.setEnabled(true);
    static const char *const names[] = {"e0", "e1", "e2",
                                        "e3", "e4", "e5"};
    for (std::uint64_t i = 0; i < 6; ++i)
        tracer.record(names[i], "cat", i, 1);
    EXPECT_EQ(tracer.size(), 4u);
    EXPECT_EQ(tracer.recorded(), 6u);
    EXPECT_EQ(tracer.dropped(), 2u);
    const auto events = tracer.events();
    ASSERT_EQ(events.size(), 4u);
    // e0 and e1 were overwritten; oldest survivor comes first.
    EXPECT_STREQ(events[0].name, "e2");
    EXPECT_STREQ(events[3].name, "e5");
    EXPECT_EQ(events[0].start, 2u);
}

TEST(EventTracer, ClearResetsCounters)
{
    obs::EventTracer tracer(2);
    tracer.setEnabled(true);
    for (int i = 0; i < 5; ++i)
        tracer.record("e", "cat", i, 1);
    tracer.clear();
    EXPECT_EQ(tracer.size(), 0u);
    EXPECT_EQ(tracer.recorded(), 0u);
    EXPECT_EQ(tracer.dropped(), 0u);
    EXPECT_TRUE(tracer.enabled()); // clear keeps the arm state
}

TEST(EventTracer, SetCapacityResizesRing)
{
    obs::EventTracer tracer(2);
    EXPECT_EQ(tracer.capacity(), 2u);
    tracer.setCapacity(16);
    EXPECT_EQ(tracer.capacity(), 16u);
    EXPECT_EQ(tracer.size(), 0u);
}

TEST(EventTracer, ChromeJsonIsWellFormed)
{
    obs::EventTracer tracer(8);
    tracer.setEnabled(true);
    tracer.record("fill", "fill", 5, 64, 0xabc);
    tracer.record("prefetch_issue", "prefetch", 9, 0);
    const std::string json = tracer.toChromeJson();
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"fill\""), std::string::npos);
    // Interval events are "X" completes; zero-duration ones are
    // instants.
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
    // Thread-name metadata gives each category its own track.
    EXPECT_NE(json.find("thread_name"), std::string::npos);
    EXPECT_NE(json.find("\"schema_version\""), std::string::npos);
}

TEST(EventTracer, WriteChromeJsonRoundTrips)
{
    obs::EventTracer tracer(8);
    tracer.setEnabled(true);
    tracer.record("fill", "fill", 0, 10);
    const std::string path = "/tmp/uatm_test_trace.json";
    ASSERT_TRUE(tracer.writeChromeJson(path));
    const std::string body = slurp(path);
    EXPECT_EQ(body, tracer.toChromeJson());
    std::remove(path.c_str());
}

TEST(EventTracer, WriteChromeJsonFailsGracefully)
{
    obs::EventTracer tracer(4);
    EXPECT_FALSE(
        tracer.writeChromeJson("/nonexistent-dir/trace.json"));
}

TEST(EventTracer, CounterEventsRoundTripAsCounterTrack)
{
    obs::EventTracer tracer(8);
    tracer.setEnabled(true);
    tracer.record("fill", "fill", 0, 10);
    tracer.recordCounter("fills", 10, 1);
    tracer.recordCounter("fills", 25, 2);
    const auto parsed = obs::parseJson(tracer.toChromeJson());
    ASSERT_TRUE(parsed.ok) << parsed.error;
    const obs::JsonValue *events =
        parsed.value.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());

    std::size_t counters = 0;
    double last_value = -1.0;
    for (const obs::JsonValue &event : events->items()) {
        if (event.stringOr("ph", "") != "C")
            continue;
        ++counters;
        EXPECT_EQ(event.stringOr("name", ""), "fills");
        const obs::JsonValue *args = event.find("args");
        ASSERT_NE(args, nullptr);
        last_value = args->numberOr("value", -1.0);
    }
    EXPECT_EQ(counters, 2u);
    EXPECT_DOUBLE_EQ(last_value, 2.0);
}

TEST(EventTracer, DisabledCounterRecordsNothing)
{
    obs::EventTracer tracer(8);
    tracer.recordCounter("fills", 0, 1);
    EXPECT_EQ(tracer.recorded(), 0u);
}

// ------------------------------------------------------------ JsonParser

TEST(JsonParser, ParsesNestedDocument)
{
    const auto parsed = obs::parseJson(
        "{\"n\": 3, \"list\": [1, 2.5, true, null], "
        "\"child\": {\"s\": \"x\"}}");
    ASSERT_TRUE(parsed.ok) << parsed.error;
    const obs::JsonValue &root = parsed.value;
    ASSERT_TRUE(root.isObject());
    EXPECT_DOUBLE_EQ(root.numberOr("n", 0.0), 3.0);
    const obs::JsonValue *list = root.find("list");
    ASSERT_NE(list, nullptr);
    ASSERT_TRUE(list->isArray());
    ASSERT_EQ(list->size(), 4u);
    EXPECT_DOUBLE_EQ(list->at(1).asNumber(), 2.5);
    EXPECT_TRUE(list->at(2).asBool());
    EXPECT_TRUE(list->at(3).isNull());
    EXPECT_EQ(root.at("child").stringOr("s", ""), "x");
}

TEST(JsonParser, RoundTripsWriterEscapes)
{
    // Whatever the writer escapes, the parser must recover.
    const std::string nasty = "a\"b\\c\nd\te\x01";
    obs::JsonWriter w;
    w.beginObject().keyValue("s", nasty).endObject();
    const auto parsed = obs::parseJson(w.str());
    ASSERT_TRUE(parsed.ok) << parsed.error;
    EXPECT_EQ(parsed.value.stringOr("s", ""), nasty);
}

TEST(JsonParser, DecodesUnicodeEscapes)
{
    const auto parsed =
        obs::parseJson("[\"\\u0041\", \"\\uD83D\\uDE00\"]");
    ASSERT_TRUE(parsed.ok) << parsed.error;
    EXPECT_EQ(parsed.value.at(0).asString(), "A");
    // U+1F600 as a surrogate pair -> 4-byte UTF-8.
    EXPECT_EQ(parsed.value.at(1).asString(),
              "\xF0\x9F\x98\x80");
}

TEST(JsonParser, RejectsMalformedInputWithPosition)
{
    for (const char *bad :
         {"", "{", "[1,]", "{\"a\" 1}", "tru", "1.2.3",
          "\"unterminated", "{\"a\":1} trailing"}) {
        const auto parsed = obs::parseJson(bad);
        EXPECT_FALSE(parsed.ok) << "accepted: " << bad;
        EXPECT_NE(parsed.error.find("byte "), std::string::npos)
            << "error lacks a position: " << parsed.error;
    }
}

// ------------------------------------------------- Prometheus exposition

TEST(Prometheus, GaugeWithHelpTypeAndUnitSuffix)
{
    obs::StatRegistry reg;
    reg.addScalar("sim.cycles", 42.0, "total cycles", "cycles");
    reg.addScalar("sim.fills", 7.0, "", "count");
    const std::string text = reg.dumpPrometheus();
    // Dotted name sanitized, unit appended; "count" units don't
    // grow a suffix.
    EXPECT_NE(text.find("# HELP uatm_sim_cycles_cycles "
                        "total cycles\n"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE uatm_sim_cycles_cycles gauge\n"),
              std::string::npos);
    EXPECT_NE(text.find("uatm_sim_cycles_cycles 42\n"),
              std::string::npos);
    EXPECT_NE(text.find("uatm_sim_fills 7\n"), std::string::npos);
    // Empty description falls back to the stat name.
    EXPECT_NE(text.find("# HELP uatm_sim_fills sim.fills\n"),
              std::string::npos);
}

TEST(Prometheus, EscapesLabelValues)
{
    obs::StatRegistry reg;
    reg.addScalar("x", 1.0, "desc");
    const std::string text = reg.dumpPrometheus(
        "uatm", {{"path", "a\\b"},
                 {"quote", "say \"hi\""},
                 {"multi", "line1\nline2"}});
    EXPECT_NE(text.find("path=\"a\\\\b\""), std::string::npos);
    EXPECT_NE(text.find("quote=\"say \\\"hi\\\"\""),
              std::string::npos);
    EXPECT_NE(text.find("multi=\"line1\\nline2\""),
              std::string::npos);
    // The raw newline must not survive inside the label block.
    EXPECT_EQ(text.find("line1\nline2"), std::string::npos);
}

TEST(Prometheus, DistributionBecomesSummary)
{
    RunningStats rs;
    rs.add(2.0);
    rs.add(6.0);
    obs::StatRegistry reg;
    reg.addDistribution("profile.run", rs, "wall", "seconds");
    const std::string text = reg.dumpPrometheus();
    EXPECT_NE(
        text.find("# TYPE uatm_profile_run_seconds summary\n"),
        std::string::npos);
    EXPECT_NE(text.find("{quantile=\"0\"} 2\n"),
              std::string::npos);
    EXPECT_NE(text.find("{quantile=\"1\"} 6\n"),
              std::string::npos);
    EXPECT_NE(text.find("uatm_profile_run_seconds_sum 8\n"),
              std::string::npos);
    EXPECT_NE(text.find("uatm_profile_run_seconds_count 2\n"),
              std::string::npos);
}

TEST(Prometheus, EveryLineIsHelpTypeOrSample)
{
    obs::StatRegistry reg;
    reg.addScalar("a.b", 1.5, "first", "cycles");
    reg.addFormula("c", [] { return 2.0; }, "second");
    RunningStats rs;
    rs.add(1.0);
    reg.addDistribution("d", rs, "third");
    std::istringstream in(
        reg.dumpPrometheus("uatm", {{"run", "r1"}}));
    std::string line;
    std::size_t samples = 0;
    while (std::getline(in, line)) {
        ASSERT_FALSE(line.empty());
        if (line.rfind("# HELP ", 0) == 0 ||
            line.rfind("# TYPE ", 0) == 0)
            continue;
        // sample line: <name>[{labels}] <value>
        const auto space = line.rfind(' ');
        ASSERT_NE(space, std::string::npos) << line;
        EXPECT_NE(line.substr(0, space).find("uatm_"),
                  std::string::npos)
            << line;
        ++samples;
    }
    // 2 gauges + 4 summary lines for the distribution.
    EXPECT_EQ(samples, 6u);
}

TEST(Prometheus, MetricNameSanitization)
{
    // Prometheus metric names must match
    // [a-zA-Z_:][a-zA-Z0-9_:]* — dots, dashes, slashes and
    // spaces all flatten to '_', and a leading digit may not
    // survive as the first character.
    obs::StatRegistry reg;
    reg.addScalar("9lives", 1.0, "leading digit");
    reg.addScalar("a-b c/d", 2.0, "punctuation");
    std::istringstream in(reg.dumpPrometheus());
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        const std::string name =
            line.substr(0, line.find_first_of(" {"));
        ASSERT_FALSE(name.empty()) << line;
        EXPECT_TRUE(std::isalpha(
                        static_cast<unsigned char>(name[0])) ||
                    name[0] == '_' || name[0] == ':')
            << "illegal first char: " << line;
        for (char c : name) {
            EXPECT_TRUE(std::isalnum(
                            static_cast<unsigned char>(c)) ||
                        c == '_' || c == ':')
                << "illegal char '" << c << "' in: " << line;
        }
    }
}

TEST(Prometheus, HelpEscaping)
{
    // HELP text escapes backslash and newline (not quotes — HELP
    // is not a quoted string in the exposition format).
    obs::StatRegistry reg;
    reg.addScalar("x", 1.0, "path C:\\tmp\nsecond line");
    const std::string text = reg.dumpPrometheus();
    EXPECT_NE(text.find("C:\\\\tmp\\nsecond line"),
              std::string::npos);
    // The raw newline must not split the HELP line.
    EXPECT_EQ(text.find("C:\\tmp\nsecond"), std::string::npos);
}

TEST(Prometheus, SanitizationCollisionsGetDeterministicSuffixes)
{
    // "a.b" and "a-b" both flatten to "a_b"; the second metric
    // must not repeat the first one's name (and HELP/TYPE block).
    obs::StatRegistry reg;
    reg.addScalar("a.b", 1.0, "first");
    reg.addScalar("a-b", 2.0, "second");
    const std::string text = reg.dumpPrometheus();
    EXPECT_NE(text.find("uatm_a_b 1\n"), std::string::npos);
    EXPECT_NE(text.find("uatm_a_b_2 2\n"), std::string::npos);
    // Exactly one TYPE line per final metric name.
    EXPECT_NE(text.find("# TYPE uatm_a_b gauge\n"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE uatm_a_b_2 gauge\n"),
              std::string::npos);
}

TEST(Prometheus, GaugeCollidingWithHistogramSeriesIsRenamed)
{
    // A histogram "lat" owns lat_bucket/lat_sum/lat_count; a
    // gauge that sanitizes to "lat_count" would corrupt the
    // histogram's series and must be deflected.
    obs::LatencyHistogram hist(1.0, 2.0, 4);
    hist.add(1.0);
    obs::StatRegistry reg;
    reg.addLatencyHistogram("lat", hist, "latency", "");
    reg.addScalar("lat.count", 7.0, "imposter");
    const std::string text = reg.dumpPrometheus();
    // The histogram's own count series survives untouched...
    EXPECT_NE(text.find("uatm_lat_count 1\n"),
              std::string::npos);
    // ...and the gauge got a deterministic suffix.
    EXPECT_NE(text.find("uatm_lat_count_2 7\n"),
              std::string::npos);
}

TEST(Prometheus, LabelNamesAreSanitizedWithoutColons)
{
    // Label names use the stricter charset: [a-zA-Z_][a-zA-Z0-9_]*
    // — no ':' (that is only legal in metric names).
    obs::StatRegistry reg;
    reg.addScalar("x", 1.0, "d");
    const std::string text = reg.dumpPrometheus(
        "uatm", {{"run:id", "r1"}, {"9bad.name", "v"}});
    EXPECT_NE(text.find("run_id=\"r1\""), std::string::npos);
    EXPECT_EQ(text.find("run:id"), std::string::npos);
    EXPECT_EQ(text.find("9bad.name"), std::string::npos);
}

TEST(Prometheus, NonFiniteValuesUseExpositionTokens)
{
    // The exposition format spells non-finite values "NaN",
    // "+Inf", "-Inf" — never printf's "nan"/"inf" casings, which
    // scrapers reject.
    obs::StatRegistry reg;
    reg.addFormula(
        "bad.ratio", [] { return 0.0 / 0.0; }, "nan formula");
    reg.addFormula(
        "hot.ratio", [] { return 1.0 / 0.0; }, "inf formula");
    std::istringstream in(reg.dumpPrometheus());
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        const std::string value =
            line.substr(line.rfind(' ') + 1);
        EXPECT_TRUE(value == "NaN" || value == "+Inf")
            << line;
    }
}

TEST(Prometheus, HistogramBucketsAreCumulativeAndConsistent)
{
    obs::LatencyHistogram hist(1.0, 2.0, 8);
    hist.add(0.5);
    hist.add(3.0);
    hist.add(3.0);
    hist.add(100.0);
    obs::StatRegistry reg;
    reg.addLatencyHistogram("lat", hist, "latency", "ns");

    std::istringstream in(reg.dumpPrometheus());
    std::string line;
    double previous = -1.0;
    double infBucket = -1.0;
    double count = -1.0;
    bool sawSum = false;
    std::size_t buckets = 0;
    while (std::getline(in, line)) {
        if (line.rfind("# TYPE", 0) == 0 &&
            line.find("lat") != std::string::npos) {
            EXPECT_NE(line.find("histogram"), std::string::npos)
                << line;
        }
        if (line.empty() || line[0] == '#')
            continue;
        const auto space = line.rfind(' ');
        ASSERT_NE(space, std::string::npos) << line;
        const double value =
            std::atof(line.c_str() + space + 1);
        if (line.find("_bucket{") != std::string::npos) {
            // Buckets are cumulative: each count must be >= the
            // previous one, in emission order.
            EXPECT_GE(value, previous) << line;
            previous = value;
            ++buckets;
            if (line.find("le=\"+Inf\"") != std::string::npos)
                infBucket = value;
        } else if (line.find("_sum") != std::string::npos) {
            sawSum = true;
            EXPECT_DOUBLE_EQ(value, 0.5 + 3.0 + 3.0 + 100.0);
        } else if (line.find("_count") != std::string::npos) {
            count = value;
        }
    }
    ASSERT_GT(buckets, 0u);
    EXPECT_TRUE(sawSum);
    // The +Inf bucket is last, equals _count, and covers every
    // sample.
    EXPECT_DOUBLE_EQ(infBucket, previous);
    EXPECT_DOUBLE_EQ(infBucket, count);
    EXPECT_DOUBLE_EQ(count, 4.0);
}

// ----------------------------------------------------- TimingStats drift

/**
 * Drift guard: every numeric TimingStats field must appear in
 * counters() and round-trip through registerStats()/toJson().  The
 * companion static_assert in timing_engine.cc pins the field
 * count; this test pins the *names and values*.
 */
TEST(TimingStatsDrift, EveryFieldRoundTrips)
{
    TimingStats stats;
    stats.cycles = 101;
    stats.instructions = 102;
    stats.references = 103;
    stats.fills = 104;
    stats.writeArounds = 105;
    stats.initialMissWait = 106;
    stats.inflightAccessStall = 107;
    stats.missSerializationStall = 108;
    stats.flushStall = 109;
    stats.writeStall = 110;
    stats.bufferFullStall = 111;
    stats.portContentionWait = 112;
    stats.prefetchesIssued = 113;
    stats.prefetchesUseful = 114;
    stats.prefetchesLate = 115;

    const auto counters = stats.counters();
    const auto entries = counters.entries();
    // 15 numeric fields — matches the sizeof static_assert in
    // timing_engine.cc.
    ASSERT_EQ(entries.size(), 15u);

    // Distinct sentinel values: any copy/paste slip in counters()
    // (wrong field for a name) breaks exactly one of these.
    std::uint64_t expected = 101;
    for (const auto &[name, value] : entries) {
        EXPECT_EQ(value, expected)
            << "counter '" << name << "' mapped to the wrong "
            << "TimingStats field";
        ++expected;
    }

    // Every counter must appear, same name and value, in the stat
    // registry and its JSON dump.
    obs::StatRegistry reg;
    stats.registerStats(reg, "engine", 8);
    const std::string json = reg.toJson();
    for (const auto &[name, value] : entries) {
        const std::string qualified = "engine." + name;
        ASSERT_TRUE(reg.contains(qualified))
            << qualified << " missing from registerStats()";
        EXPECT_DOUBLE_EQ(reg.value(qualified),
                         static_cast<double>(value));
        EXPECT_NE(json.find("\"" + qualified + "\""),
                  std::string::npos)
            << qualified << " missing from the JSON dump";
    }

    // Derived formulas ride along and agree with the methods.
    EXPECT_DOUBLE_EQ(reg.value("engine.derived.cpi"),
                     stats.cpi());
    EXPECT_DOUBLE_EQ(reg.value("engine.derived.mean_memory_delay"),
                     stats.meanMemoryDelay());
    EXPECT_DOUBLE_EQ(reg.value("engine.derived.phi"),
                     stats.phi(8));
}

TEST(TimingStatsDrift, PhiFormulaOnlyWithCycleTime)
{
    TimingStats stats;
    obs::StatRegistry reg;
    stats.registerStats(reg, "engine"); // mu_m omitted
    EXPECT_FALSE(reg.contains("engine.derived.phi"));
    EXPECT_TRUE(reg.contains("engine.derived.cpi"));
}

// -------------------------------------------------------------- Manifest

TEST(Manifest, StampsSchemaToolAndGit)
{
    obs::Manifest m;
    m.setTool("test_obs");
    EXPECT_EQ(m.lookup("run", "tool"), "test_obs");
    EXPECT_NE(m.lookup("run", "schema_version"), "");
    EXPECT_NE(m.lookup("run", "git_describe"), "");
    EXPECT_STRNE(obs::Manifest::gitDescribe(), "");
}

TEST(Manifest, SetLookupAndOverwrite)
{
    obs::Manifest m;
    m.set("cache", "size_bytes", std::uint64_t{8192});
    m.set("cache", "describe", "8KB 2-way");
    m.set("cpu", "suppress_flush_traffic", true);
    m.set("memory", "cycle_time", 12.0);
    EXPECT_EQ(m.lookup("cache", "size_bytes"), "8192");
    EXPECT_EQ(m.lookup("cache", "describe"), "8KB 2-way");
    EXPECT_EQ(m.lookup("cpu", "suppress_flush_traffic"), "true");
    EXPECT_EQ(m.lookup("absent", "key"), "");
    const std::size_t before = m.size();
    m.set("cache", "size_bytes", std::uint64_t{16384});
    EXPECT_EQ(m.size(), before); // replaced, not duplicated
    EXPECT_EQ(m.lookup("cache", "size_bytes"), "16384");
}

TEST(Manifest, JsonEmbedsStatsDump)
{
    obs::Manifest m;
    obs::StatRegistry reg;
    reg.addScalar("sim.cycles", 64.0, "cycles", "cycles");
    m.setStats(reg);
    const std::string json = m.toJson();
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
    EXPECT_NE(json.find("\"stats\""), std::string::npos);
    EXPECT_NE(json.find("\"sim.cycles\""), std::string::npos);
    EXPECT_NE(json.find("\"schema_version\""),
              std::string::npos);
}

TEST(Manifest, WriteProducesReadableFile)
{
    obs::Manifest m;
    m.set("workload", "profile", "doduc");
    const std::string path = "/tmp/uatm_test_manifest.json";
    m.write(path);
    const std::string body = slurp(path);
    EXPECT_EQ(body, m.toJson());
    EXPECT_NE(body.find("\"doduc\""), std::string::npos);
    std::remove(path.c_str());
}

// ------------------------------------------------------ ProfileRegistry

TEST(ProfileRegistry, ScopedTimerFeedsNamedScope)
{
    auto &profile = obs::ProfileRegistry::instance();
    profile.clear();
    const bool was = profile.enabled();
    profile.setEnabled(true);
    {
        UATM_PROFILE_SCOPE("test.scope");
        UATM_PROFILE_SCOPE("test.other");
    }
    {
        UATM_PROFILE_SCOPE("test.scope");
    }
    profile.setEnabled(was);

    const auto scopes = profile.snapshot();
    ASSERT_GE(scopes.size(), 2u);
    bool found = false;
    for (const auto &[name, rs] : scopes) {
        if (name == "test.scope") {
            found = true;
            EXPECT_EQ(rs.count(), 2u);
            EXPECT_GE(rs.min(), 0.0);
        }
    }
    EXPECT_TRUE(found);

    obs::StatRegistry reg;
    profile.registerStats(reg, "profile");
    EXPECT_TRUE(reg.contains("profile.test.scope"));
    profile.clear();
    EXPECT_TRUE(profile.snapshot().empty());
}

TEST(ProfileRegistry, DisabledTimerRecordsNothing)
{
    auto &profile = obs::ProfileRegistry::instance();
    profile.clear();
    const bool was = profile.enabled();
    profile.setEnabled(false);
    {
        UATM_PROFILE_SCOPE("test.ghost");
    }
    profile.setEnabled(was);
    for (const auto &[name, rs] : profile.snapshot())
        EXPECT_NE(name, "test.ghost");
}

// ------------------------------------------------------- BenchSuite

TEST(BenchSuite, RunsAndRecordsResults)
{
    obs::BenchSuite suite("unit");
    std::uint64_t calls = 0;
    suite.add("counting", [&calls](obs::BenchState &state) {
        state.setItems(4);
        ++calls;
        // Enough work that steady_clock sees a nonzero duration.
        std::uint64_t acc = 0;
        for (std::uint64_t i = 0; i < 50000; ++i)
            acc += i * i;
        obs::doNotOptimize(acc);
    });
    obs::BenchSuite::RunOptions options;
    options.reps = 3;
    options.warmup = 1;
    options.writeJson = false;
    EXPECT_EQ(suite.run(options), 1u);
    EXPECT_EQ(calls, 4u); // 1 warmup + 3 timed
    ASSERT_EQ(suite.results().size(), 1u);
    const obs::BenchResult &result = suite.results()[0];
    EXPECT_EQ(result.name, "counting");
    EXPECT_EQ(result.reps, 3u);
    EXPECT_EQ(result.itemsPerRep, 4u);
    EXPECT_GT(result.nsPerRepMedian, 0.0);
    EXPECT_GT(result.itemsPerSecond(), 0.0);
}

TEST(BenchSuite, FilterAndListRunNothing)
{
    obs::BenchSuite suite("unit");
    bool ran = false;
    suite.add("cache/access", [&ran](obs::BenchState &) {
        ran = true;
    });
    suite.add("engine/step", [](obs::BenchState &) {});

    obs::BenchSuite::RunOptions options;
    options.writeJson = false;
    options.reps = 1;
    options.filter = "engine";
    EXPECT_EQ(suite.run(options), 1u);
    EXPECT_FALSE(ran); // filtered out

    options.filter.clear();
    options.listOnly = true;
    EXPECT_EQ(suite.run(options), 2u);
    EXPECT_FALSE(ran); // listed, not executed
}

TEST(BenchSuite, StatDeltaCoversTimedRepsOnly)
{
    obs::BenchSuite suite("unit");
    double counter = 0.0;
    suite.add("delta", [&counter](obs::BenchState &state) {
        state.setItems(1);
        state.setStatsProvider(
            [&counter](obs::StatRegistry &reg) {
                reg.addScalar("work.done", counter, "");
            });
        counter += 10.0;
    });
    obs::BenchSuite::RunOptions options;
    options.reps = 5;
    options.warmup = 2;
    options.writeJson = false;
    suite.run(options);
    ASSERT_EQ(suite.results().size(), 1u);
    const auto &delta = suite.results()[0].statDelta;
    ASSERT_EQ(delta.size(), 1u);
    EXPECT_EQ(delta[0].first, "work.done");
    // 5 timed reps x 10, warmup excluded.
    EXPECT_DOUBLE_EQ(delta[0].second, 50.0);
}

TEST(BenchSuite, JsonCarriesSchemaAndStatDelta)
{
    obs::BenchSuite suite("unit");
    suite.add("j", [](obs::BenchState &state) {
        state.setItems(2);
        state.setStatsProvider([](obs::StatRegistry &reg) {
            reg.addScalar("x", 1.0, "");
        });
        std::uint64_t acc = 0;
        for (std::uint64_t i = 0; i < 50000; ++i)
            acc += i * i;
        obs::doNotOptimize(acc);
    });
    obs::BenchSuite::RunOptions options;
    options.reps = 2;
    options.writeJson = false;
    suite.run(options);
    const auto parsed = obs::parseJson(suite.toJson());
    ASSERT_TRUE(parsed.ok) << parsed.error;
    const obs::JsonValue &doc = parsed.value;
    EXPECT_DOUBLE_EQ(doc.numberOr("schema_version", 0.0),
                     obs::kBenchSchemaVersion);
    EXPECT_EQ(doc.stringOr("suite", ""), "unit");
    EXPECT_FALSE(doc.stringOr("git_describe", "").empty());
    const obs::JsonValue *list = doc.find("benchmarks");
    ASSERT_NE(list, nullptr);
    ASSERT_EQ(list->size(), 1u);
    const obs::JsonValue &record = list->at(0);
    EXPECT_EQ(record.stringOr("name", ""), "j");
    EXPECT_DOUBLE_EQ(record.numberOr("reps", 0.0), 2.0);
    EXPECT_DOUBLE_EQ(record.numberOr("items_per_rep", 0.0), 2.0);
    ASSERT_NE(record.find("ns_per_rep"), nullptr);
    EXPECT_GT(record.at("ns_per_rep").numberOr("median", 0.0),
              0.0);
    EXPECT_GT(record.numberOr("ns_per_op", 0.0), 0.0);
    EXPECT_GT(record.numberOr("items_per_second", 0.0), 0.0);
    const obs::JsonValue *stat_delta = record.find("stat_delta");
    ASSERT_NE(stat_delta, nullptr);
    EXPECT_TRUE(stat_delta->isObject());
    EXPECT_NE(stat_delta->find("x"), nullptr);
}

// --------------------------------------------------- perf comparator

namespace perfdoc {

/** One synthetic BENCH_*.json record. */
struct Record
{
    const char *name;
    double nsPerOp;
    double madPerRep;
    double itemsPerRep = 1.0;
};

obs::JsonValue
make(const std::vector<Record> &records)
{
    obs::JsonWriter w;
    w.beginObject();
    w.keyValue("schema_version", obs::kBenchSchemaVersion);
    w.keyValue("suite", "synthetic");
    w.keyValue("git_describe", "test");
    w.key("benchmarks").beginArray();
    for (const Record &r : records) {
        w.beginObject();
        w.keyValue("name", r.name);
        w.keyValue("items_per_rep", r.itemsPerRep);
        w.key("ns_per_rep")
            .beginObject()
            .keyValue("median", r.nsPerOp * r.itemsPerRep)
            .keyValue("mad", r.madPerRep)
            .endObject();
        w.keyValue("ns_per_op", r.nsPerOp);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    const auto parsed = obs::parseJson(w.str());
    EXPECT_TRUE(parsed.ok) << parsed.error;
    return parsed.value;
}

} // namespace perfdoc

TEST(PerfDiff, IdenticalRunsHaveNoRegressions)
{
    const auto doc = perfdoc::make(
        {{"a", 100.0, 1.0}, {"b", 5.0, 0.1}});
    const auto deltas = obs::comparePerf(doc, doc);
    ASSERT_EQ(deltas.size(), 2u);
    for (const auto &delta : deltas) {
        EXPECT_EQ(delta.verdict,
                  obs::PerfDelta::Verdict::Similar);
        EXPECT_DOUBLE_EQ(delta.ratio(), 1.0);
    }
    EXPECT_EQ(obs::countRegressions(deltas), 0u);
}

TEST(PerfDiff, FlagsClearRegressionAndImprovement)
{
    const auto before = perfdoc::make(
        {{"slows", 100.0, 1.0}, {"speeds", 100.0, 1.0}});
    const auto after = perfdoc::make(
        {{"slows", 200.0, 1.0}, {"speeds", 50.0, 1.0}});
    const auto deltas = obs::comparePerf(before, after);
    ASSERT_EQ(deltas.size(), 2u);
    EXPECT_EQ(deltas[0].verdict,
              obs::PerfDelta::Verdict::Regressed);
    EXPECT_DOUBLE_EQ(deltas[0].ratio(), 2.0);
    EXPECT_EQ(deltas[1].verdict,
              obs::PerfDelta::Verdict::Improved);
    EXPECT_EQ(obs::countRegressions(deltas), 1u);

    // The table names every benchmark and its verdict.
    const std::string table = obs::formatPerfTable(deltas);
    EXPECT_NE(table.find("slows"), std::string::npos);
    // Regressions shout; everything else stays lowercase.
    EXPECT_NE(table.find("REGRESSED"), std::string::npos);
    EXPECT_NE(table.find("improved"), std::string::npos);
}

TEST(PerfDiff, NoisyChangeWithinMadThresholdIsSimilar)
{
    // +20% change, but the MAD says the run wobbles by ~10 ns/op;
    // 4 sigmas x 1.4826 x 10 ≈ 59 ns absorbs it.
    const auto before = perfdoc::make({{"noisy", 100.0, 10.0}});
    const auto after = perfdoc::make({{"noisy", 120.0, 10.0}});
    const auto deltas = obs::comparePerf(before, after);
    ASSERT_EQ(deltas.size(), 1u);
    EXPECT_EQ(deltas[0].verdict,
              obs::PerfDelta::Verdict::Similar);

    // The same +20% on a quiet benchmark is a real regression.
    const auto quiet_before =
        perfdoc::make({{"quiet", 100.0, 0.01}});
    const auto quiet_after =
        perfdoc::make({{"quiet", 120.0, 0.01}});
    const auto quiet =
        obs::comparePerf(quiet_before, quiet_after);
    EXPECT_EQ(quiet[0].verdict,
              obs::PerfDelta::Verdict::Regressed);
}

TEST(PerfDiff, UniformSuiteDriftIsNormalizedOut)
{
    // The whole suite got 18% "slower" — that's the machine, not
    // the code, and the median-ratio normalization absorbs it.
    const auto before = perfdoc::make({{"a", 100.0, 0.1},
                                       {"b", 50.0, 0.1},
                                       {"c", 200.0, 0.1},
                                       {"d", 10.0, 0.1}});
    const auto after = perfdoc::make({{"a", 118.0, 0.1},
                                      {"b", 59.0, 0.1},
                                      {"c", 236.0, 0.1},
                                      {"d", 11.8, 0.1}});
    const auto deltas = obs::comparePerf(before, after);
    EXPECT_EQ(obs::countRegressions(deltas), 0u);
    for (const auto &delta : deltas) {
        EXPECT_EQ(delta.verdict,
                  obs::PerfDelta::Verdict::Similar);
        EXPECT_NEAR(delta.appliedDrift, 1.18, 1e-9);
    }

    // Opting out gates on the raw times again.
    obs::PerfDiffOptions raw;
    raw.normalizeDrift = false;
    EXPECT_EQ(obs::countRegressions(
                  obs::comparePerf(before, after, raw)),
              4u);
}

TEST(PerfDiff, LocalizedRegressionSurvivesDriftNormalization)
{
    // Three quiet benchmarks anchor the drift estimate at ~1.0;
    // the fourth doubling is a genuine regression.
    const auto before = perfdoc::make({{"a", 100.0, 0.1},
                                       {"b", 50.0, 0.1},
                                       {"c", 200.0, 0.1},
                                       {"slow", 40.0, 0.1}});
    const auto after = perfdoc::make({{"a", 101.0, 0.1},
                                      {"b", 50.0, 0.1},
                                      {"c", 199.0, 0.1},
                                      {"slow", 80.0, 0.1}});
    const auto deltas = obs::comparePerf(before, after);
    ASSERT_EQ(deltas.size(), 4u);
    EXPECT_EQ(obs::countRegressions(deltas), 1u);
    EXPECT_EQ(deltas[3].name, "slow");
    EXPECT_EQ(deltas[3].verdict,
              obs::PerfDelta::Verdict::Regressed);
}

TEST(PerfDiff, FewerThanThreePairsSkipNormalization)
{
    // With only two matched benchmarks the median ratio is too
    // easily dominated by the regression itself — raw gating.
    const auto before =
        perfdoc::make({{"a", 100.0, 0.1}, {"b", 100.0, 0.1}});
    const auto after =
        perfdoc::make({{"a", 200.0, 0.1}, {"b", 200.0, 0.1}});
    const auto deltas = obs::comparePerf(before, after);
    EXPECT_EQ(obs::countRegressions(deltas), 2u);
    EXPECT_DOUBLE_EQ(deltas[0].appliedDrift, 1.0);
}

TEST(PerfDiff, RelativeFloorSilencesTinyAbsoluteChanges)
{
    // 5% change on a dead-quiet benchmark stays under the 10%
    // default relative floor.
    const auto before = perfdoc::make({{"tiny", 100.0, 0.0}});
    const auto after = perfdoc::make({{"tiny", 105.0, 0.0}});
    EXPECT_EQ(obs::comparePerf(before, after)[0].verdict,
              obs::PerfDelta::Verdict::Similar);

    // Tightening the floor (dedicated runner) flags it.
    obs::PerfDiffOptions strict;
    strict.minRelative = 0.02;
    EXPECT_EQ(obs::comparePerf(before, after, strict)[0].verdict,
              obs::PerfDelta::Verdict::Regressed);
}

TEST(PerfDiff, AddedAndRemovedBenchmarksAreReported)
{
    const auto before = perfdoc::make(
        {{"keep", 10.0, 0.1}, {"gone", 20.0, 0.1}});
    const auto after = perfdoc::make(
        {{"keep", 10.0, 0.1}, {"new", 30.0, 0.1}});
    const auto deltas = obs::comparePerf(before, after);
    ASSERT_EQ(deltas.size(), 3u);
    EXPECT_EQ(deltas[0].verdict,
              obs::PerfDelta::Verdict::Similar);
    EXPECT_EQ(deltas[1].verdict,
              obs::PerfDelta::Verdict::Removed);
    EXPECT_EQ(deltas[2].verdict,
              obs::PerfDelta::Verdict::Added);
    // Neither added nor removed entries count as regressions.
    EXPECT_EQ(obs::countRegressions(deltas), 0u);
    EXPECT_DOUBLE_EQ(deltas[1].ratio(), 0.0);
    EXPECT_DOUBLE_EQ(deltas[2].ratio(), 0.0);
}

TEST(PerfDiff, LoadBenchFileValidatesShape)
{
    const std::string path = "/tmp/uatm_test_bench.json";
    obs::JsonValue out;
    std::string error;

    EXPECT_FALSE(
        obs::loadBenchFile("/nonexistent.json", out, error));
    EXPECT_FALSE(error.empty());

    std::ofstream(path) << "{\"not_benchmarks\": []}";
    EXPECT_FALSE(obs::loadBenchFile(path, out, error));
    EXPECT_NE(error.find("benchmarks"), std::string::npos);

    std::ofstream(path) << "{\"benchmarks\": []}";
    EXPECT_TRUE(obs::loadBenchFile(path, out, error)) << error;
    std::remove(path.c_str());
}

// ------------------------------------------------- engine integration

TEST(EngineTracing, MissesEmitFillAndStallEvents)
{
    CacheConfig cache;
    cache.sizeBytes = 256;
    cache.assoc = 2;
    cache.lineBytes = 32;
    MemoryConfig mem;
    mem.busWidthBytes = 4;
    mem.cycleTime = 8;
    CpuConfig cpu;
    cpu.feature = StallFeature::FS;
    TimingEngine engine(cache, mem, WriteBufferConfig{0, true},
                        cpu);

    obs::EventTracer tracer(1024);
    tracer.setEnabled(true);
    engine.setTracer(&tracer);

    Trace t;
    t.append(MemoryReference{0x000, 0, 4, RefKind::Load});
    t.append(MemoryReference{0x100, 0, 4, RefKind::Load});
    const auto stats = engine.run(t, 100);
    engine.setTracer(nullptr); // restore the global default

    EXPECT_EQ(stats.fills, 2u);
    ASSERT_GT(tracer.size(), 0u);
    bool saw_fill = false, saw_stall = false;
    for (const auto &event : tracer.events()) {
        saw_fill |= std::string_view(event.category) == "fill";
        saw_stall |= std::string_view(event.category) == "stall";
    }
    EXPECT_TRUE(saw_fill);
    EXPECT_TRUE(saw_stall);
    // The trace exports cleanly.
    const std::string json = tracer.toChromeJson();
    EXPECT_NE(json.find("\"fill\""), std::string::npos);
}

TEST(EngineTracing, DisabledTracerCostsNoEvents)
{
    CacheConfig cache;
    cache.sizeBytes = 256;
    cache.assoc = 2;
    cache.lineBytes = 32;
    MemoryConfig mem;
    mem.busWidthBytes = 4;
    mem.cycleTime = 8;
    CpuConfig cpu;
    TimingEngine engine(cache, mem, WriteBufferConfig{0, true},
                        cpu);

    obs::EventTracer tracer(16); // disabled by default
    engine.setTracer(&tracer);
    Trace t;
    t.append(MemoryReference{0x000, 0, 4, RefKind::Load});
    engine.run(t, 10);
    engine.setTracer(nullptr);
    EXPECT_EQ(tracer.recorded(), 0u);
}

// --------------------------------------------------- LatencyHistogram

TEST(LatencyHistogram, EdgesGrowGeometricallyToInfinity)
{
    obs::LatencyHistogram h(1.0, 2.0, 8);
    EXPECT_EQ(h.buckets(), 8u);
    EXPECT_DOUBLE_EQ(h.upperEdge(0), 1.0);
    EXPECT_DOUBLE_EQ(h.upperEdge(1), 2.0);
    EXPECT_DOUBLE_EQ(h.upperEdge(6), 64.0);
    EXPECT_TRUE(std::isinf(h.upperEdge(7)));
}

TEST(LatencyHistogram, CountsSumMinMaxMean)
{
    obs::LatencyHistogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    for (double x : {4.0, 16.0, 10.0})
        h.add(x);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_DOUBLE_EQ(h.sum(), 30.0);
    EXPECT_DOUBLE_EQ(h.min(), 4.0);
    EXPECT_DOUBLE_EQ(h.max(), 16.0);
    EXPECT_DOUBLE_EQ(h.mean(), 10.0);
    // NaN is dropped, negatives clamp into the first bucket.
    h.add(std::nan(""));
    EXPECT_EQ(h.count(), 3u);
    h.add(-5.0);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_DOUBLE_EQ(h.min(), 0.0);
}

TEST(LatencyHistogram, SamplesLandInTheRightBuckets)
{
    obs::LatencyHistogram h(1.0, 2.0, 8);
    // Bucket 0 = [0, 1], bucket i = (2^(i-1), 2^i].
    h.add(1.0);   // bucket 0 (inclusive upper edge)
    h.add(1.5);   // bucket 1
    h.add(2.0);   // bucket 1
    h.add(2.1);   // bucket 2
    h.add(1e30);  // overflow bucket
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(1), 2u);
    EXPECT_EQ(h.bucketCount(2), 1u);
    EXPECT_EQ(h.bucketCount(7), 1u);
}

TEST(LatencyHistogram, QuantilesInterpolateAndClamp)
{
    obs::LatencyHistogram constant;
    for (int i = 0; i < 100; ++i)
        constant.add(5.0);
    // Every quantile of a constant distribution is the constant:
    // interpolation would smear across the bucket, but the result
    // clamps to the observed [min, max].
    EXPECT_DOUBLE_EQ(constant.quantile(0.01), 5.0);
    EXPECT_DOUBLE_EQ(constant.p50(), 5.0);
    EXPECT_DOUBLE_EQ(constant.p99(), 5.0);

    obs::LatencyHistogram uniform;
    for (int i = 1; i <= 1024; ++i)
        uniform.add(static_cast<double>(i));
    // Log-bucketed quantiles carry at most one bucket (2x) of
    // relative error against the true order statistics.
    EXPECT_GE(uniform.p50(), 512.0 / 2.0);
    EXPECT_LE(uniform.p50(), 512.0 * 2.0);
    EXPECT_GE(uniform.p99(), 1014.0 / 2.0);
    EXPECT_LE(uniform.p99(), 1024.0);
    // Monotone in q, bounded by the observed extremes.
    EXPECT_LE(uniform.quantile(0.0), uniform.p50());
    EXPECT_LE(uniform.p50(), uniform.p95());
    EXPECT_LE(uniform.p95(), uniform.p99());
    EXPECT_LE(uniform.quantile(1.0), 1024.0);
    EXPECT_GE(uniform.quantile(0.0), 1.0);
}

TEST(LatencyHistogram, MergeMatchesInterleavedAdds)
{
    obs::LatencyHistogram a, b, reference;
    for (int i = 0; i < 256; ++i) {
        const double x = static_cast<double>((i * 37) % 500);
        (i % 2 ? a : b).add(x);
        reference.add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), reference.count());
    EXPECT_DOUBLE_EQ(a.sum(), reference.sum());
    EXPECT_DOUBLE_EQ(a.min(), reference.min());
    EXPECT_DOUBLE_EQ(a.max(), reference.max());
    for (std::size_t i = 0; i < a.buckets(); ++i)
        EXPECT_EQ(a.bucketCount(i), reference.bucketCount(i));
    EXPECT_DOUBLE_EQ(a.p95(), reference.p95());
}

TEST(LatencyHistogram, ConcurrentAddsLoseNothing)
{
    // Integer-valued samples make the double sum exact, so the
    // concurrent result must equal the serial reference bucket
    // for bucket — any lost update or torn read breaks it.
    constexpr int kThreads = 4;
    constexpr int kPerThread = 10000;
    obs::LatencyHistogram concurrent, reference;
    for (int t = 0; t < kThreads; ++t)
        for (int i = 0; i < kPerThread; ++i)
            reference.add(
                static_cast<double>((t * 7919 + i * 31) % 4096));
    std::vector<std::thread> pool;
    for (int t = 0; t < kThreads; ++t) {
        pool.emplace_back([&concurrent, t] {
            for (int i = 0; i < kPerThread; ++i)
                concurrent.add(static_cast<double>(
                    (t * 7919 + i * 31) % 4096));
        });
    }
    for (auto &thread : pool)
        thread.join();
    EXPECT_EQ(concurrent.count(),
              static_cast<std::uint64_t>(kThreads * kPerThread));
    EXPECT_DOUBLE_EQ(concurrent.sum(), reference.sum());
    EXPECT_DOUBLE_EQ(concurrent.min(), reference.min());
    EXPECT_DOUBLE_EQ(concurrent.max(), reference.max());
    for (std::size_t i = 0; i < concurrent.buckets(); ++i)
        EXPECT_EQ(concurrent.bucketCount(i),
                  reference.bucketCount(i));
}

TEST(LatencyHistogram, ConcurrentRegistryUpdatesStayConsistent)
{
    // The reference returned by addLatencyHistogram must accept
    // concurrent add()s from many threads (the runner's workers
    // feeding one registered histogram).
    obs::StatRegistry registry;
    obs::LatencyHistogram &h = registry.addLatencyHistogram(
        "lat", obs::LatencyHistogram(), "latencies", "ns");
    constexpr int kThreads = 4;
    constexpr int kPerThread = 5000;
    std::vector<std::thread> pool;
    for (int t = 0; t < kThreads; ++t) {
        pool.emplace_back([&h] {
            for (int i = 0; i < kPerThread; ++i)
                h.add(static_cast<double>(i % 1000));
        });
    }
    for (auto &thread : pool)
        thread.join();
    const obs::StatEntry *entry = registry.find("lat");
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry->histogram.count(),
              static_cast<std::uint64_t>(kThreads * kPerThread));
    EXPECT_DOUBLE_EQ(entry->histogram.max(), 999.0);
}

TEST(StatRegistry, HistogramAppearsInTextAndJsonDumps)
{
    obs::StatRegistry registry;
    obs::LatencyHistogram h;
    for (double x : {1.0, 10.0, 100.0})
        h.add(x);
    registry.addLatencyHistogram("runner.point_ns", h,
                                 "per-point latency", "ns");
    EXPECT_DOUBLE_EQ(registry.value("runner.point_ns"), 37.0);

    const std::string text = registry.formatText();
    EXPECT_NE(text.find("runner.point_ns"), std::string::npos);
    EXPECT_NE(text.find("p50="), std::string::npos);
    EXPECT_NE(text.find("p99="), std::string::npos);

    const auto parsed = obs::parseJson(registry.toJson());
    ASSERT_TRUE(parsed.ok) << parsed.error;
    const obs::JsonValue &stat =
        parsed.value.at("stats").at("runner.point_ns");
    EXPECT_EQ(stat.stringOr("kind", ""), "histogram");
    EXPECT_DOUBLE_EQ(stat.numberOr("count", 0.0), 3.0);
    EXPECT_DOUBLE_EQ(stat.numberOr("sum", 0.0), 111.0);
    EXPECT_GT(stat.numberOr("p99", 0.0), 0.0);
    const obs::JsonValue *buckets = stat.find("buckets");
    ASSERT_NE(buckets, nullptr);
    ASSERT_TRUE(buckets->isArray());
    EXPECT_EQ(buckets->size(), 3u);  // only occupied buckets
}

TEST(StatRegistry, PrometheusHistogramIsConformant)
{
    obs::StatRegistry registry;
    obs::LatencyHistogram h;
    for (double x : {1.0, 3.0, 500.0})
        h.add(x);
    // The "ns" unit lands in the metric name, per convention.
    registry.addLatencyHistogram("runner.point_latency", h,
                                 "per-point latency", "ns");
    const std::string dump = registry.dumpPrometheus("uatm");
    const std::string metric = "uatm_runner_point_latency_ns";

    EXPECT_NE(dump.find("# TYPE " + metric + " histogram"),
              std::string::npos);
    EXPECT_NE(dump.find(metric + "_sum 504"),
              std::string::npos);
    EXPECT_NE(dump.find(metric + "_count 3"),
              std::string::npos);
    // The +Inf bucket closes the series and equals _count.
    EXPECT_NE(dump.find(metric + "_bucket{le=\"+Inf\"} 3"),
              std::string::npos);
    // Buckets are cumulative: the le="4" bucket holds 1 and 3.
    EXPECT_NE(dump.find(metric + "_bucket{le=\"4\"} 2"),
              std::string::npos);
}

// ------------------------------------------------- tracer health stats

TEST(EventTracer, RegisterStatsExposesDropCounters)
{
    obs::EventTracer tracer(4);
    tracer.setEnabled(true);
    for (int i = 0; i < 6; ++i)
        tracer.record("e", "cat", i, 1);
    tracer.setEnabled(false);
    EXPECT_EQ(tracer.recorded(), 6u);
    EXPECT_EQ(tracer.dropped(), 2u);

    obs::StatRegistry registry;
    tracer.registerStats(registry, "tracer");
    EXPECT_DOUBLE_EQ(registry.value("tracer.recorded"), 6.0);
    EXPECT_DOUBLE_EQ(registry.value("tracer.dropped"), 2.0);
    EXPECT_DOUBLE_EQ(registry.value("tracer.capacity"), 4.0);
}

TEST(EventTracer, InternReturnsStablePointers)
{
    obs::EventTracer tracer(4);
    const char *a = tracer.intern("worker 0");
    const char *b = tracer.intern("worker 1");
    const char *again = tracer.intern("worker 0");
    EXPECT_EQ(a, again);  // same text, same pointer
    EXPECT_NE(a, b);
    EXPECT_STREQ(a, "worker 0");
    // Still valid after more interning (node-based storage).
    for (int i = 0; i < 100; ++i)
        tracer.intern("filler " + std::to_string(i));
    EXPECT_STREQ(a, "worker 0");
}

// ------------------------------------------- bench thread metadata

TEST(PerfDiff, ComparableWithoutThreadMetadata)
{
    const auto doc =
        perfdoc::make({{"a", 100.0, 1.0}, {"b", 5.0, 0.1}});
    std::string error;
    EXPECT_TRUE(obs::perfComparable(doc, doc, error)) << error;
}

TEST(PerfDiff, RefusesMismatchedHostCores)
{
    const auto before = obs::parseJson(
        "{\"host_cores\": 8, \"benchmarks\": []}");
    const auto after = obs::parseJson(
        "{\"host_cores\": 4, \"benchmarks\": []}");
    ASSERT_TRUE(before.ok && after.ok);
    std::string error;
    EXPECT_FALSE(obs::perfComparable(before.value, after.value,
                                     error));
    EXPECT_NE(error.find("host_cores"), std::string::npos);
    // Same cores: fine.
    EXPECT_TRUE(obs::perfComparable(before.value, before.value,
                                    error));
}

TEST(PerfDiff, RefusesMismatchedBenchmarkThreads)
{
    const auto before = obs::parseJson(
        "{\"benchmarks\": [{\"name\": \"sweep/t4\", "
        "\"threads_requested\": 4, \"threads_used\": 4}]}");
    const auto after = obs::parseJson(
        "{\"benchmarks\": [{\"name\": \"sweep/t4\", "
        "\"threads_requested\": 4, \"threads_used\": 1}]}");
    ASSERT_TRUE(before.ok && after.ok);
    std::string error;
    EXPECT_FALSE(obs::perfComparable(before.value, after.value,
                                     error));
    EXPECT_NE(error.find("threads_used"), std::string::npos);
    EXPECT_NE(error.find("sweep/t4"), std::string::npos);
}

TEST(BenchSuite, JsonRecordsHostCoresAndThreads)
{
    obs::BenchSuite suite("threads_meta");
    suite.add("t2", [](obs::BenchState &state) {
        state.setItems(1);
        state.setThreads(2, 2);
    });
    obs::BenchSuite::RunOptions options;
    options.reps = 1;
    options.writeJson = false;
    suite.run(options);

    const auto parsed = obs::parseJson(suite.toJson());
    ASSERT_TRUE(parsed.ok) << parsed.error;
    EXPECT_GT(parsed.value.numberOr("host_cores", 0.0), 0.0);
    const obs::JsonValue &record =
        parsed.value.at("benchmarks").at(0);
    EXPECT_DOUBLE_EQ(record.numberOr("threads_requested", 0.0),
                     2.0);
    EXPECT_DOUBLE_EQ(record.numberOr("threads_used", 0.0), 2.0);
}

} // namespace
} // namespace uatm
