/**
 * @file
 * Unit tests for the observability layer: JSON writer, stat
 * registry, event tracer (incl. ring wraparound and the Chrome
 * export), run manifests, wall-clock profiling, and the
 * TimingStats drift guard that keeps counters(), registerStats()
 * and the struct itself in sync.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "cpu/timing_engine.hh"
#include "obs/json.hh"
#include "obs/manifest.hh"
#include "obs/profile.hh"
#include "obs/registry.hh"
#include "obs/trace_event.hh"
#include "trace/generators.hh"

namespace uatm {
namespace {

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

// ------------------------------------------------------------ JsonWriter

TEST(JsonWriter, NestedDocument)
{
    obs::JsonWriter w;
    w.beginObject();
    w.keyValue("n", 3);
    w.key("list").beginArray().value(1).value(2.5).endArray();
    w.key("child").beginObject().keyValue("s", "x").endObject();
    w.endObject();
    EXPECT_EQ(w.str(),
              "{\"n\":3,\"list\":[1,2.5],\"child\":{\"s\":\"x\"}}");
}

TEST(JsonWriter, EscapesControlAndQuotes)
{
    // escape() returns the fully quoted string literal.
    EXPECT_EQ(obs::JsonWriter::escape("a\"b\\c\n"),
              "\"a\\\"b\\\\c\\n\"");
    EXPECT_EQ(obs::JsonWriter::escape(std::string("\x01", 1)),
              "\"\\u0001\"");
}

TEST(JsonWriter, NonFiniteNumbersBecomeNull)
{
    obs::JsonWriter w;
    w.beginObject();
    w.keyValue("bad", std::numeric_limits<double>::infinity());
    w.endObject();
    EXPECT_EQ(w.str(), "{\"bad\":null}");
}

TEST(JsonWriter, BoolsRenderAsLiterals)
{
    obs::JsonWriter w;
    w.beginArray().value(true).value(false).endArray();
    EXPECT_EQ(w.str(), "[true,false]");
}

// ---------------------------------------------------------- StatRegistry

TEST(StatRegistry, ScalarRegisterAndLookup)
{
    obs::StatRegistry reg;
    reg.addScalar("sim.cycles", 42.0, "total cycles", "cycles");
    ASSERT_TRUE(reg.contains("sim.cycles"));
    EXPECT_DOUBLE_EQ(reg.value("sim.cycles"), 42.0);
    const obs::StatEntry *entry = reg.find("sim.cycles");
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry->unit, "cycles");
    EXPECT_EQ(entry->kind, obs::StatKind::Scalar);
    EXPECT_EQ(reg.find("absent"), nullptr);
    EXPECT_FALSE(reg.contains("absent"));
}

TEST(StatRegistry, FormulaEvaluatesAtDumpTime)
{
    obs::StatRegistry reg;
    double source = 1.0;
    reg.addFormula("derived.x", [&source] { return source * 2; },
                   "doubled");
    EXPECT_DOUBLE_EQ(reg.value("derived.x"), 2.0);
    source = 5.0; // formulas are lazy, not snapshots
    EXPECT_DOUBLE_EQ(reg.value("derived.x"), 10.0);
}

TEST(StatRegistry, DistributionKeepsMoments)
{
    RunningStats rs;
    rs.add(1.0);
    rs.add(3.0);
    obs::StatRegistry reg;
    reg.addDistribution("profile.run", rs, "wall clock",
                        "seconds");
    EXPECT_DOUBLE_EQ(reg.value("profile.run"), 2.0); // mean
    const obs::StatEntry *entry = reg.find("profile.run");
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry->distribution.count(), 2u);
}

TEST(StatRegistry, ChildrenOfSelectsSubtree)
{
    obs::StatRegistry reg;
    reg.addScalar("stall.flush", 1.0, "");
    reg.addScalar("stall.write", 2.0, "");
    reg.addScalar("stallion", 3.0, ""); // NOT a child of "stall"
    reg.addScalar("sim.fills", 4.0, "");
    const auto kids = reg.childrenOf("stall");
    ASSERT_EQ(kids.size(), 2u);
    EXPECT_EQ(kids[0]->name, "stall.flush");
    EXPECT_EQ(kids[1]->name, "stall.write");
}

TEST(StatRegistry, JsonDumpIsVersionedAndComplete)
{
    obs::StatRegistry reg;
    reg.addScalar("a.one", 1.5, "first", "cycles");
    reg.addFormula("a.two", [] { return 7.0; }, "second");
    const std::string json = reg.toJson();
    EXPECT_NE(json.find("\"schema_version\":"),
              std::string::npos);
    EXPECT_NE(json.find("\"a.one\""), std::string::npos);
    EXPECT_NE(json.find("\"a.two\""), std::string::npos);
    EXPECT_NE(json.find("\"kind\":\"formula\""),
              std::string::npos);
    EXPECT_NE(json.find("1.5"), std::string::npos);
    EXPECT_NE(json.find("7"), std::string::npos);
}

TEST(StatRegistry, FormatTextMentionsUnitsAndDescriptions)
{
    obs::StatRegistry reg;
    reg.addScalar("sim.cycles", 9.0, "total cycles", "cycles");
    const std::string text = reg.formatText();
    EXPECT_NE(text.find("sim.cycles"), std::string::npos);
    EXPECT_NE(text.find("total cycles"), std::string::npos);
}

TEST(StatGroup, PrefixesNestAndQualify)
{
    obs::StatRegistry reg;
    obs::StatGroup root(reg, "engine");
    root.group("sim").addScalar("fills", 3.0, "fills");
    obs::StatGroup nested = root.group("a").group("b");
    nested.addScalar("c", 1.0, "leaf");
    EXPECT_TRUE(reg.contains("engine.sim.fills"));
    EXPECT_TRUE(reg.contains("engine.a.b.c"));
    // Empty prefix registers bare names.
    obs::StatGroup bare(reg, "");
    bare.addScalar("top", 2.0, "bare");
    EXPECT_TRUE(reg.contains("top"));
}

// ----------------------------------------------------------- EventTracer

TEST(EventTracer, DisabledRecordsNothing)
{
    obs::EventTracer tracer(8);
    tracer.record("x", "cat", 0, 1);
    EXPECT_EQ(tracer.size(), 0u);
    EXPECT_EQ(tracer.recorded(), 0u);
    EXPECT_FALSE(tracer.enabled());
}

TEST(EventTracer, RecordsWhenEnabled)
{
    obs::EventTracer tracer(8);
    tracer.setEnabled(true);
    tracer.record("fill", "fill", 10, 64, 0x1000);
    tracer.record("stall", "stall", 74, 3);
    ASSERT_EQ(tracer.size(), 2u);
    const auto events = tracer.events();
    EXPECT_STREQ(events[0].name, "fill");
    EXPECT_EQ(events[0].start, 10u);
    EXPECT_EQ(events[0].duration, 64u);
    EXPECT_EQ(events[0].arg, 0x1000u);
    EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(EventTracer, RingWrapsOldestFirst)
{
    obs::EventTracer tracer(4);
    tracer.setEnabled(true);
    static const char *const names[] = {"e0", "e1", "e2",
                                        "e3", "e4", "e5"};
    for (std::uint64_t i = 0; i < 6; ++i)
        tracer.record(names[i], "cat", i, 1);
    EXPECT_EQ(tracer.size(), 4u);
    EXPECT_EQ(tracer.recorded(), 6u);
    EXPECT_EQ(tracer.dropped(), 2u);
    const auto events = tracer.events();
    ASSERT_EQ(events.size(), 4u);
    // e0 and e1 were overwritten; oldest survivor comes first.
    EXPECT_STREQ(events[0].name, "e2");
    EXPECT_STREQ(events[3].name, "e5");
    EXPECT_EQ(events[0].start, 2u);
}

TEST(EventTracer, ClearResetsCounters)
{
    obs::EventTracer tracer(2);
    tracer.setEnabled(true);
    for (int i = 0; i < 5; ++i)
        tracer.record("e", "cat", i, 1);
    tracer.clear();
    EXPECT_EQ(tracer.size(), 0u);
    EXPECT_EQ(tracer.recorded(), 0u);
    EXPECT_EQ(tracer.dropped(), 0u);
    EXPECT_TRUE(tracer.enabled()); // clear keeps the arm state
}

TEST(EventTracer, SetCapacityResizesRing)
{
    obs::EventTracer tracer(2);
    EXPECT_EQ(tracer.capacity(), 2u);
    tracer.setCapacity(16);
    EXPECT_EQ(tracer.capacity(), 16u);
    EXPECT_EQ(tracer.size(), 0u);
}

TEST(EventTracer, ChromeJsonIsWellFormed)
{
    obs::EventTracer tracer(8);
    tracer.setEnabled(true);
    tracer.record("fill", "fill", 5, 64, 0xabc);
    tracer.record("prefetch_issue", "prefetch", 9, 0);
    const std::string json = tracer.toChromeJson();
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"fill\""), std::string::npos);
    // Interval events are "X" completes; zero-duration ones are
    // instants.
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
    // Thread-name metadata gives each category its own track.
    EXPECT_NE(json.find("thread_name"), std::string::npos);
    EXPECT_NE(json.find("\"schema_version\""), std::string::npos);
}

TEST(EventTracer, WriteChromeJsonRoundTrips)
{
    obs::EventTracer tracer(8);
    tracer.setEnabled(true);
    tracer.record("fill", "fill", 0, 10);
    const std::string path = "/tmp/uatm_test_trace.json";
    ASSERT_TRUE(tracer.writeChromeJson(path));
    const std::string body = slurp(path);
    EXPECT_EQ(body, tracer.toChromeJson());
    std::remove(path.c_str());
}

TEST(EventTracer, WriteChromeJsonFailsGracefully)
{
    obs::EventTracer tracer(4);
    EXPECT_FALSE(
        tracer.writeChromeJson("/nonexistent-dir/trace.json"));
}

// ----------------------------------------------------- TimingStats drift

/**
 * Drift guard: every numeric TimingStats field must appear in
 * counters() and round-trip through registerStats()/toJson().  The
 * companion static_assert in timing_engine.cc pins the field
 * count; this test pins the *names and values*.
 */
TEST(TimingStatsDrift, EveryFieldRoundTrips)
{
    TimingStats stats;
    stats.cycles = 101;
    stats.instructions = 102;
    stats.references = 103;
    stats.fills = 104;
    stats.writeArounds = 105;
    stats.initialMissWait = 106;
    stats.inflightAccessStall = 107;
    stats.missSerializationStall = 108;
    stats.flushStall = 109;
    stats.writeStall = 110;
    stats.bufferFullStall = 111;
    stats.portContentionWait = 112;
    stats.prefetchesIssued = 113;
    stats.prefetchesUseful = 114;
    stats.prefetchesLate = 115;

    const auto counters = stats.counters();
    const auto entries = counters.entries();
    // 15 numeric fields — matches the sizeof static_assert in
    // timing_engine.cc.
    ASSERT_EQ(entries.size(), 15u);

    // Distinct sentinel values: any copy/paste slip in counters()
    // (wrong field for a name) breaks exactly one of these.
    std::uint64_t expected = 101;
    for (const auto &[name, value] : entries) {
        EXPECT_EQ(value, expected)
            << "counter '" << name << "' mapped to the wrong "
            << "TimingStats field";
        ++expected;
    }

    // Every counter must appear, same name and value, in the stat
    // registry and its JSON dump.
    obs::StatRegistry reg;
    stats.registerStats(reg, "engine", 8);
    const std::string json = reg.toJson();
    for (const auto &[name, value] : entries) {
        const std::string qualified = "engine." + name;
        ASSERT_TRUE(reg.contains(qualified))
            << qualified << " missing from registerStats()";
        EXPECT_DOUBLE_EQ(reg.value(qualified),
                         static_cast<double>(value));
        EXPECT_NE(json.find("\"" + qualified + "\""),
                  std::string::npos)
            << qualified << " missing from the JSON dump";
    }

    // Derived formulas ride along and agree with the methods.
    EXPECT_DOUBLE_EQ(reg.value("engine.derived.cpi"),
                     stats.cpi());
    EXPECT_DOUBLE_EQ(reg.value("engine.derived.mean_memory_delay"),
                     stats.meanMemoryDelay());
    EXPECT_DOUBLE_EQ(reg.value("engine.derived.phi"),
                     stats.phi(8));
}

TEST(TimingStatsDrift, PhiFormulaOnlyWithCycleTime)
{
    TimingStats stats;
    obs::StatRegistry reg;
    stats.registerStats(reg, "engine"); // mu_m omitted
    EXPECT_FALSE(reg.contains("engine.derived.phi"));
    EXPECT_TRUE(reg.contains("engine.derived.cpi"));
}

// -------------------------------------------------------------- Manifest

TEST(Manifest, StampsSchemaToolAndGit)
{
    obs::Manifest m;
    m.setTool("test_obs");
    EXPECT_EQ(m.lookup("run", "tool"), "test_obs");
    EXPECT_NE(m.lookup("run", "schema_version"), "");
    EXPECT_NE(m.lookup("run", "git_describe"), "");
    EXPECT_STRNE(obs::Manifest::gitDescribe(), "");
}

TEST(Manifest, SetLookupAndOverwrite)
{
    obs::Manifest m;
    m.set("cache", "size_bytes", std::uint64_t{8192});
    m.set("cache", "describe", "8KB 2-way");
    m.set("cpu", "suppress_flush_traffic", true);
    m.set("memory", "cycle_time", 12.0);
    EXPECT_EQ(m.lookup("cache", "size_bytes"), "8192");
    EXPECT_EQ(m.lookup("cache", "describe"), "8KB 2-way");
    EXPECT_EQ(m.lookup("cpu", "suppress_flush_traffic"), "true");
    EXPECT_EQ(m.lookup("absent", "key"), "");
    const std::size_t before = m.size();
    m.set("cache", "size_bytes", std::uint64_t{16384});
    EXPECT_EQ(m.size(), before); // replaced, not duplicated
    EXPECT_EQ(m.lookup("cache", "size_bytes"), "16384");
}

TEST(Manifest, JsonEmbedsStatsDump)
{
    obs::Manifest m;
    obs::StatRegistry reg;
    reg.addScalar("sim.cycles", 64.0, "cycles", "cycles");
    m.setStats(reg);
    const std::string json = m.toJson();
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
    EXPECT_NE(json.find("\"stats\""), std::string::npos);
    EXPECT_NE(json.find("\"sim.cycles\""), std::string::npos);
    EXPECT_NE(json.find("\"schema_version\""),
              std::string::npos);
}

TEST(Manifest, WriteProducesReadableFile)
{
    obs::Manifest m;
    m.set("workload", "profile", "doduc");
    const std::string path = "/tmp/uatm_test_manifest.json";
    m.write(path);
    const std::string body = slurp(path);
    EXPECT_EQ(body, m.toJson());
    EXPECT_NE(body.find("\"doduc\""), std::string::npos);
    std::remove(path.c_str());
}

// ------------------------------------------------------ ProfileRegistry

TEST(ProfileRegistry, ScopedTimerFeedsNamedScope)
{
    auto &profile = obs::ProfileRegistry::instance();
    profile.clear();
    const bool was = profile.enabled();
    profile.setEnabled(true);
    {
        UATM_PROFILE_SCOPE("test.scope");
        UATM_PROFILE_SCOPE("test.other");
    }
    {
        UATM_PROFILE_SCOPE("test.scope");
    }
    profile.setEnabled(was);

    const auto scopes = profile.snapshot();
    ASSERT_GE(scopes.size(), 2u);
    bool found = false;
    for (const auto &[name, rs] : scopes) {
        if (name == "test.scope") {
            found = true;
            EXPECT_EQ(rs.count(), 2u);
            EXPECT_GE(rs.min(), 0.0);
        }
    }
    EXPECT_TRUE(found);

    obs::StatRegistry reg;
    profile.registerStats(reg, "profile");
    EXPECT_TRUE(reg.contains("profile.test.scope"));
    profile.clear();
    EXPECT_TRUE(profile.snapshot().empty());
}

TEST(ProfileRegistry, DisabledTimerRecordsNothing)
{
    auto &profile = obs::ProfileRegistry::instance();
    profile.clear();
    const bool was = profile.enabled();
    profile.setEnabled(false);
    {
        UATM_PROFILE_SCOPE("test.ghost");
    }
    profile.setEnabled(was);
    for (const auto &[name, rs] : profile.snapshot())
        EXPECT_NE(name, "test.ghost");
}

// ------------------------------------------------- engine integration

TEST(EngineTracing, MissesEmitFillAndStallEvents)
{
    CacheConfig cache;
    cache.sizeBytes = 256;
    cache.assoc = 2;
    cache.lineBytes = 32;
    MemoryConfig mem;
    mem.busWidthBytes = 4;
    mem.cycleTime = 8;
    CpuConfig cpu;
    cpu.feature = StallFeature::FS;
    TimingEngine engine(cache, mem, WriteBufferConfig{0, true},
                        cpu);

    obs::EventTracer tracer(1024);
    tracer.setEnabled(true);
    engine.setTracer(&tracer);

    Trace t;
    t.append(MemoryReference{0x000, 0, 4, RefKind::Load});
    t.append(MemoryReference{0x100, 0, 4, RefKind::Load});
    const auto stats = engine.run(t, 100);
    engine.setTracer(nullptr); // restore the global default

    EXPECT_EQ(stats.fills, 2u);
    ASSERT_GT(tracer.size(), 0u);
    bool saw_fill = false, saw_stall = false;
    for (const auto &event : tracer.events()) {
        saw_fill |= std::string_view(event.category) == "fill";
        saw_stall |= std::string_view(event.category) == "stall";
    }
    EXPECT_TRUE(saw_fill);
    EXPECT_TRUE(saw_stall);
    // The trace exports cleanly.
    const std::string json = tracer.toChromeJson();
    EXPECT_NE(json.find("\"fill\""), std::string::npos);
}

TEST(EngineTracing, DisabledTracerCostsNoEvents)
{
    CacheConfig cache;
    cache.sizeBytes = 256;
    cache.assoc = 2;
    cache.lineBytes = 32;
    MemoryConfig mem;
    mem.busWidthBytes = 4;
    mem.cycleTime = 8;
    CpuConfig cpu;
    TimingEngine engine(cache, mem, WriteBufferConfig{0, true},
                        cpu);

    obs::EventTracer tracer(16); // disabled by default
    engine.setTracer(&tracer);
    Trace t;
    t.append(MemoryReference{0x000, 0, 4, RefKind::Load});
    engine.run(t, 10);
    engine.setTracer(nullptr);
    EXPECT_EQ(tracer.recorded(), 0u);
}

} // namespace
} // namespace uatm
