/**
 * @file
 * Tests for the trace transformations and the multiprogramming
 * time-slicer.
 */

#include <gtest/gtest.h>

#include "cache/cache.hh"
#include "trace/generators.hh"
#include "trace/transform.hh"

namespace uatm {
namespace {

std::unique_ptr<Trace>
smallTrace()
{
    auto trace = std::make_unique<Trace>();
    for (int i = 0; i < 10; ++i) {
        trace->append(MemoryReference{
            static_cast<Addr>(0x1000 + 4 * i),
            static_cast<std::uint32_t>(i % 3), 4,
            i % 4 == 0 ? RefKind::Store : RefKind::Load});
    }
    return trace;
}

// ---------------------------------------------------------- OffsetSource

TEST(OffsetSource, ShiftsEveryAddress)
{
    OffsetSource shifted(smallTrace(), 0x100000);
    auto ref = shifted.next();
    ASSERT_TRUE(ref.has_value());
    EXPECT_EQ(ref->addr, 0x101000u);
}

TEST(OffsetSource, NegativeOffsetsWork)
{
    OffsetSource shifted(smallTrace(), -0x1000);
    EXPECT_EQ(shifted.next()->addr, 0x0u);
}

TEST(OffsetSource, PreservesCountAndKinds)
{
    OffsetSource shifted(smallTrace(), 0x40);
    const auto refs = shifted.drain(100);
    EXPECT_EQ(refs.size(), 10u);
    EXPECT_EQ(refs[0].kind, RefKind::Store);
    EXPECT_EQ(refs[1].kind, RefKind::Load);
}

TEST(OffsetSource, ResetReplays)
{
    OffsetSource shifted(smallTrace(), 0x40);
    const auto first = shifted.drain(100);
    shifted.reset();
    EXPECT_EQ(shifted.drain(100), first);
}

// ---------------------------------------------------------- SampleSource

TEST(SampleSource, PeriodOneIsIdentity)
{
    SampleSource sampled(smallTrace(), 1);
    EXPECT_EQ(sampled.drain(100).size(), 10u);
}

TEST(SampleSource, KeepsOneInN)
{
    SampleSource sampled(smallTrace(), 2);
    EXPECT_EQ(sampled.drain(100).size(), 5u);
}

TEST(SampleSource, FoldsInstructionCountsIntoGaps)
{
    // Total instructions must be preserved by sampling.
    auto original = smallTrace();
    std::uint64_t expected = original->instructionCount();

    SampleSource sampled(smallTrace(), 3);
    std::uint64_t total = 0;
    while (auto ref = sampled.next())
        total += static_cast<std::uint64_t>(ref->gap) + 1;
    // The final partial group may be dropped entirely; recompute
    // the expectation from the first 9 records (10 % 3 leaves a
    // last group of one whose survivor exists: 10 = 3+3+3+1, the
    // last group lacks its survivor and is dropped).
    std::uint64_t kept = 0;
    original->reset();
    int index = 0;
    while (auto ref = original->next()) {
        if (index < 9)
            kept += static_cast<std::uint64_t>(ref->gap) + 1;
        ++index;
    }
    EXPECT_EQ(total, kept);
    EXPECT_LE(total, expected);
}

// ------------------------------------------------------ KindFilterSource

TEST(KindFilter, LoadsOnly)
{
    KindFilterSource filtered(smallTrace(), true, false, false);
    while (auto ref = filtered.next())
        EXPECT_EQ(ref->kind, RefKind::Load);
}

TEST(KindFilter, StoresOnly)
{
    KindFilterSource filtered(smallTrace(), false, true, false);
    const auto refs = filtered.drain(100);
    EXPECT_EQ(refs.size(), 3u); // indices 0, 4, 8
    for (const auto &ref : refs)
        EXPECT_EQ(ref.kind, RefKind::Store);
}

TEST(KindFilter, RejectsDropEverything)
{
    EXPECT_DEATH(
        {
            KindFilterSource bad(smallTrace(), false, false,
                                 false);
        },
        "drop everything");
}

// ------------------------------------------------------ TimeSliceSource

TEST(TimeSlice, RoundRobinsQuanta)
{
    StrideGenerator::Config a;
    a.base = 0x1000;
    a.storeFraction = 0.0;
    StrideGenerator::Config b;
    b.base = 0x900000;
    b.storeFraction = 0.0;

    std::vector<std::unique_ptr<TraceSource>> programs;
    programs.push_back(
        std::make_unique<StrideGenerator>(a, Rng(1)));
    programs.push_back(
        std::make_unique<StrideGenerator>(b, Rng(2)));
    TimeSliceSource sliced(std::move(programs), 4, 10);

    const auto refs = sliced.drain(16);
    ASSERT_EQ(refs.size(), 16u);
    for (int i = 0; i < 4; ++i)
        EXPECT_LT(refs[i].addr, 0x900000u) << i;
    for (int i = 4; i < 8; ++i)
        EXPECT_GE(refs[i].addr, 0x900000u) << i;
    for (int i = 8; i < 12; ++i)
        EXPECT_LT(refs[i].addr, 0x900000u) << i;
}

TEST(TimeSlice, ChargesSwitchGap)
{
    StrideGenerator::Config cfg;
    cfg.storeFraction = 0.0;
    cfg.gap = {1, 1};
    std::vector<std::unique_ptr<TraceSource>> programs;
    programs.push_back(
        std::make_unique<StrideGenerator>(cfg, Rng(1)));
    programs.push_back(
        std::make_unique<StrideGenerator>(cfg, Rng(2)));
    TimeSliceSource sliced(std::move(programs), 2, 100);

    const auto refs = sliced.drain(6);
    EXPECT_EQ(refs[0].gap, 1u);
    EXPECT_EQ(refs[1].gap, 1u);
    EXPECT_EQ(refs[2].gap, 101u); // first ref after the switch
    EXPECT_EQ(refs[3].gap, 1u);
}

TEST(TimeSlice, MultiprogrammingLowersHitRatio)
{
    // Two co-scheduled programs at disjoint addresses thrash a
    // small cache harder than either alone — the regime the paper
    // mentions for instruction caches (Sec. 3.4).
    auto solo_ratio = [] {
        auto gen = Spec92Profile::make("ear", 9);
        CacheConfig config;
        config.sizeBytes = 8 * 1024;
        config.assoc = 2;
        config.lineBytes = 32;
        SetAssocCache cache(config);
        for (int i = 0; i < 40000; ++i)
            cache.access(*gen->next());
        return cache.stats().hitRatio();
    };
    auto shared_ratio = [] {
        std::vector<std::unique_ptr<TraceSource>> programs;
        programs.push_back(Spec92Profile::make("ear", 9));
        programs.push_back(std::make_unique<OffsetSource>(
            Spec92Profile::make("ear", 10), 0x40000000));
        TimeSliceSource sliced(std::move(programs), 2000, 100);
        CacheConfig config;
        config.sizeBytes = 8 * 1024;
        config.assoc = 2;
        config.lineBytes = 32;
        SetAssocCache cache(config);
        for (int i = 0; i < 40000; ++i)
            cache.access(*sliced.next());
        return cache.stats().hitRatio();
    };
    EXPECT_LT(shared_ratio(), solo_ratio());
}

TEST(TimeSlice, ResetRestartsAllPrograms)
{
    std::vector<std::unique_ptr<TraceSource>> programs;
    programs.push_back(Spec92Profile::make("nasa7", 3));
    programs.push_back(Spec92Profile::make("doduc", 4));
    TimeSliceSource sliced(std::move(programs), 100, 10);
    const auto first = sliced.drain(500);
    sliced.reset();
    EXPECT_EQ(sliced.drain(500), first);
}

} // namespace
} // namespace uatm
