/**
 * @file
 * Tests for the instruction-fetch stream (Sec. 3.4): locality of
 * the fetch stream, interleaving correctness, and the paper's
 * claim that the execution-time model keeps its form when the
 * instruction-fetch term is added.
 */

#include <gtest/gtest.h>

#include "cache/cache.hh"
#include "core/execution_time.hh"
#include "cpu/timing_engine.hh"
#include "trace/generators.hh"
#include "trace/ifetch.hh"

namespace uatm {
namespace {

// ------------------------------------------------------ IFetchGenerator

TEST(IFetch, EmitsOnlyInstructionFetches)
{
    IFetchGenerator gen(IFetchConfig{}, Rng(1));
    for (int i = 0; i < 1000; ++i) {
        const auto ref = gen.next();
        ASSERT_TRUE(ref.has_value());
        EXPECT_EQ(ref->kind, RefKind::IFetch);
        EXPECT_EQ(ref->gap, 0u);
        EXPECT_EQ(ref->size, 4u);
    }
}

TEST(IFetch, SequentialRunsAdvanceByFetchSize)
{
    IFetchConfig config;
    config.meanRunLength = 1000; // effectively no branches early
    IFetchGenerator gen(config, Rng(2));
    Addr previous = gen.next()->addr;
    for (int i = 0; i < 50; ++i) {
        const Addr addr = gen.next()->addr;
        EXPECT_EQ(addr, previous + 4);
        previous = addr;
    }
}

TEST(IFetch, HighLoopBackGivesHighCacheHitRatio)
{
    // The common case of Sec. 3.4: instruction hit ratio "usually
    // very high".
    IFetchConfig config;
    config.loopBackProbability = 0.99;
    IFetchGenerator gen(config, Rng(3));

    CacheConfig icache;
    icache.sizeBytes = 8 * 1024;
    icache.assoc = 2;
    icache.lineBytes = 32;
    SetAssocCache cache(icache);
    for (int i = 0; i < 40000; ++i)
        cache.access(*gen.next());
    EXPECT_GT(cache.stats().hitRatio(), 0.97);
}

TEST(IFetch, LowLoopBackModelsMultiprogramming)
{
    // The multiprogramming case: a higher instruction miss ratio.
    auto hit_ratio = [](double loop_back) {
        IFetchConfig config;
        config.loopBackProbability = loop_back;
        IFetchGenerator gen(config, Rng(4));
        CacheConfig icache;
        icache.sizeBytes = 8 * 1024;
        icache.assoc = 2;
        icache.lineBytes = 32;
        SetAssocCache cache(icache);
        for (int i = 0; i < 40000; ++i)
            cache.access(*gen.next());
        return cache.stats().hitRatio();
    };
    EXPECT_LT(hit_ratio(0.7), hit_ratio(0.99));
}

TEST(IFetch, ResetReplays)
{
    IFetchGenerator gen(IFetchConfig{}, Rng(5));
    const auto first = gen.drain(500);
    gen.reset();
    EXPECT_EQ(gen.drain(500), first);
}

// ----------------------------------------------------- IFetchInterleaver

TEST(Interleaver, OneFetchPerInstruction)
{
    // A data trace with gap=2 must yield 3 fetches then the data
    // record: F F F D.
    auto data = std::make_unique<Trace>();
    data->append(MemoryReference{0x100, 2, 4, RefKind::Load});
    data->append(MemoryReference{0x200, 0, 4, RefKind::Store});

    IFetchInterleaver mix(std::move(data), IFetchConfig{}, Rng(6));
    const auto refs = mix.drain(100);
    ASSERT_EQ(refs.size(), 6u); // 3 + D + 1 + D
    EXPECT_EQ(refs[0].kind, RefKind::IFetch);
    EXPECT_EQ(refs[1].kind, RefKind::IFetch);
    EXPECT_EQ(refs[2].kind, RefKind::IFetch);
    EXPECT_EQ(refs[3].kind, RefKind::Load);
    EXPECT_EQ(refs[3].addr, 0x100u);
    EXPECT_EQ(refs[4].kind, RefKind::IFetch);
    EXPECT_EQ(refs[5].kind, RefKind::Store);
}

TEST(Interleaver, DataRecordsKeepOrderAndLoseGaps)
{
    auto data = std::make_unique<Trace>();
    for (int i = 0; i < 20; ++i)
        data->append(MemoryReference{
            static_cast<Addr>(0x1000 + 4 * i),
            static_cast<std::uint32_t>(i % 3), 4, RefKind::Load});

    IFetchInterleaver mix(std::move(data), IFetchConfig{}, Rng(7));
    std::vector<Addr> data_addrs;
    while (auto ref = mix.next()) {
        if (ref->kind != RefKind::IFetch) {
            EXPECT_EQ(ref->gap, 0u);
            data_addrs.push_back(ref->addr);
        }
    }
    ASSERT_EQ(data_addrs.size(), 20u);
    for (int i = 0; i < 20; ++i)
        EXPECT_EQ(data_addrs[i], 0x1000u + 4 * i);
}

TEST(Interleaver, InstructionCountMatchesGaps)
{
    // Total fetches == sum(gap + 1) of the data trace == E.
    auto data = std::make_unique<Trace>();
    std::uint64_t expected = 0;
    for (int i = 0; i < 50; ++i) {
        const std::uint32_t gap = (7 * i) % 5;
        expected += gap + 1;
        data->append(MemoryReference{
            static_cast<Addr>(0x2000 + 8 * i), gap, 4,
            RefKind::Load});
    }
    IFetchInterleaver mix(std::move(data), IFetchConfig{}, Rng(8));
    std::uint64_t fetches = 0;
    while (auto ref = mix.next())
        fetches += ref->kind == RefKind::IFetch;
    EXPECT_EQ(fetches, expected);
}

TEST(Interleaver, ResetReplays)
{
    auto make = [] {
        WorkingSetGenerator::Config ws;
        return std::make_unique<WorkingSetGenerator>(ws, Rng(9));
    };
    IFetchInterleaver mix(make(), IFetchConfig{}, Rng(10));
    const auto first = mix.drain(300);
    mix.reset();
    EXPECT_EQ(mix.drain(300), first);
}

// --------------------------------------- Sec. 3.4 model-form validation

TEST(IFetchModel, InstructionTermKeepsTheModelForm)
{
    // Measure R_I by running the fetch stream through an I-cache,
    // then check the analytic X with includeInstructionFetch
    // equals the base X plus (R_I/L)(L/D) mu_m — the same form as
    // the data terms (Sec. 3.4's claim).
    IFetchConfig config;
    config.loopBackProbability = 0.9;
    IFetchGenerator gen(config, Rng(11));
    CacheConfig icache;
    icache.sizeBytes = 4 * 1024;
    icache.assoc = 2;
    icache.lineBytes = 32;
    SetAssocCache cache(icache);
    for (int i = 0; i < 50000; ++i)
        cache.access(*gen.next());
    const double r_i =
        static_cast<double>(cache.stats().bytesRead(32));

    Workload w = Workload::fromHitRatio(5e4, 1.5e4, 0.93, 32, 0.5);
    w.instrBytesRead = r_i;
    Machine m;
    m.busWidth = 4;
    m.lineBytes = 32;
    m.cycleTime = 8;

    ExecutionModelOptions with;
    with.includeInstructionFetch = true;
    const double x_with = executionTimeFS(w, m, with);
    const double x_without = executionTimeFS(w, m);
    EXPECT_NEAR(x_with - x_without, r_i / 32.0 * 8.0 * 8.0,
                1e-6);
}

TEST(IFetchModel, UnifiedCacheKeepsEq2Exactness)
{
    // Sec. 4.5: "the tradeoff model can also be applied to an
    // instruction cache or a unified cache."  Run a combined
    // IFetch+data stream through the engine with a unified cache
    // (fetches time like loads) and check the FS/no-buffer run
    // still matches Eq. 2 exactly.
    WorkingSetGenerator::Config ws;
    ws.stackDepth = 200;
    ws.decay = 0.98;
    ws.coldFraction = 0.01;
    ws.storeFraction = 0.3;
    auto data = std::make_unique<WorkingSetGenerator>(ws, Rng(21));

    IFetchConfig flow;
    flow.loopBackProbability = 0.97;
    IFetchInterleaver unified(std::move(data), flow, Rng(22));

    CacheConfig cache;
    cache.sizeBytes = 8 * 1024;
    cache.assoc = 2;
    cache.lineBytes = 32;
    MemoryConfig mem;
    mem.busWidthBytes = 4;
    mem.cycleTime = 8;
    CpuConfig cpu;
    cpu.feature = StallFeature::FS;

    TimingEngine engine(cache, mem, WriteBufferConfig{0, true},
                        cpu);
    const auto stats = engine.run(unified, 60000);
    const auto &cs = engine.cacheStats();

    const std::uint64_t expected =
        (cs.instructions - cs.fills) + cs.fills * 8 * 8 +
        cs.writebacks * 8 * 8;
    EXPECT_EQ(stats.cycles, expected);
    // The combined stream really contains both kinds.
    EXPECT_GT(cs.stores, 0u);
    EXPECT_GT(cs.loads, cs.stores); // fetches count as reads
}

} // namespace
} // namespace uatm
