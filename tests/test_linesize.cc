/**
 * @file
 * Unit tests for the line-size tradeoff (Eqs. 11-19) and the exact
 * agreement with Smith's optimal-line criterion (Sec. 5.4).
 */

#include <gtest/gtest.h>

#include "linesize/delay_model.hh"
#include "linesize/line_tradeoff.hh"
#include "linesize/miss_table.hh"

namespace uatm {
namespace {

LineDelayModel
model(double c_prime, double beta, double bus = 4)
{
    LineDelayModel m;
    m.c = c_prime + 1.0;
    m.beta = beta;
    m.busWidth = bus;
    return m;
}

// ------------------------------------------------------- LineDelayModel

TEST(DelayModel, FillTime)
{
    const auto m = model(6, 2, 4);
    // c + beta L/D = 7 + 2*8 = 23 for a 32B line.
    EXPECT_DOUBLE_EQ(m.fillTime(32), 23.0);
}

TEST(DelayModel, SmithLatencyIsCMinusOne)
{
    EXPECT_DOUBLE_EQ(model(6, 2).smithLatency(), 6.0);
}

TEST(DelayModel, MeanDelayEq15)
{
    const auto m = model(6, 2, 4);
    // MR * fill + HR * 1 = 0.1*23 + 0.9.
    EXPECT_DOUBLE_EQ(m.meanMemoryDelay(0.1, 32), 3.2);
}

TEST(DelayModel, SmithObjectiveEq16)
{
    const auto m = model(6, 2, 4);
    // MR (c' + beta L/D) = 0.1 * (6 + 16).
    EXPECT_DOUBLE_EQ(m.smithObjective(0.1, 32), 2.2);
}

TEST(DelayModel, Eq15AndEq16DifferByConstant)
{
    // mean delay = smith objective + 1 - MR + MR = objective + 1?
    // Actually: MR(c + bL/D) + 1 - MR = MR(c-1+bL/D) + 1.
    const auto m = model(6, 2, 4);
    for (double mr : {0.02, 0.1, 0.3}) {
        EXPECT_NEAR(m.meanMemoryDelay(mr, 32),
                    m.smithObjective(mr, 32) + 1.0, 1e-12);
    }
}

TEST(DelayModel, FromNanoseconds)
{
    // Figure 6(d): Delay = 360ns + 15ns/byte, D = 8, 60ns cycle:
    // c' = 6, beta = 2.
    const auto m =
        LineDelayModel::fromNanoseconds(360, 15, 60, 8);
    EXPECT_DOUBLE_EQ(m.smithLatency(), 6.0);
    EXPECT_DOUBLE_EQ(m.beta, 2.0);
}

// ------------------------------------------------------- MissRatioTable

TEST(MissTable, LookupAndSorting)
{
    MissRatioTable t("t", {LinePoint{32, 0.03}, LinePoint{8, 0.07}});
    EXPECT_DOUBLE_EQ(t.missRatio(8), 0.07);
    EXPECT_DOUBLE_EQ(t.missRatio(32), 0.03);
    EXPECT_EQ(t.lineSizes().front(), 8u);
    EXPECT_TRUE(t.has(32));
    EXPECT_FALSE(t.has(64));
}

TEST(MissTable, MissingLineIsFatal)
{
    MissRatioTable t("t", {LinePoint{8, 0.07}, LinePoint{16, 0.05}});
    EXPECT_EXIT({ t.missRatio(64); },
                ::testing::ExitedWithCode(EXIT_FAILURE),
                "no line size");
}

TEST(MissTable, DuplicateLinesRejected)
{
    EXPECT_EXIT(
        {
            MissRatioTable bad(
                "bad", {LinePoint{8, 0.1}, LinePoint{8, 0.2}});
        },
        ::testing::ExitedWithCode(EXIT_FAILURE), "duplicate");
}

TEST(MissTable, DesignTargetTablesAreMonotone)
{
    for (const auto &table : {MissRatioTable::designTarget8K(),
                              MissRatioTable::designTarget16K()}) {
        const auto &pts = table.points();
        for (std::size_t i = 1; i < pts.size(); ++i)
            EXPECT_LT(pts[i].missRatio, pts[i - 1].missRatio);
    }
}

TEST(MissTable, SixteenKBeatsEightK)
{
    const auto small = MissRatioTable::designTarget8K();
    const auto big = MissRatioTable::designTarget16K();
    for (std::uint32_t line : small.lineSizes())
        EXPECT_LT(big.missRatio(line), small.missRatio(line));
}

// -------------------------------------------------------- Eq. 13 / Eq. 14

TEST(LineTradeoff, MissFactorBelowOneForLargerLines)
{
    const auto m = model(6, 2, 4);
    const double r = lineMissFactor(m, 8, 32);
    EXPECT_LT(r, 1.0);
    EXPECT_GT(r, 0.0);
}

TEST(LineTradeoff, MissFactorHandComputed)
{
    const auto m = model(6, 2, 4);
    // alpha = 0: r = (c' + beta L0/D)/(c' + beta L1/D)
    //          = (6 + 4)/(6 + 16) = 10/22.
    EXPECT_NEAR(lineMissFactor(m, 8, 32), 10.0 / 22.0, 1e-12);
}

TEST(LineTradeoff, RequiredGainPositiveAndScalesWithMR)
{
    const auto m = model(6, 2, 4);
    const double g1 = requiredHitRatioGain(m, 8, 32, 0.05);
    const double g2 = requiredHitRatioGain(m, 8, 32, 0.10);
    EXPECT_GT(g1, 0.0);
    EXPECT_NEAR(g2, 2.0 * g1, 1e-12);
}

TEST(LineTradeoff, FlushesRaiseTheBar)
{
    const auto m = model(6, 2, 4);
    const double without = requiredHitRatioGain(m, 8, 32, 0.05);
    const double with =
        requiredHitRatioGain(m, 8, 32, 0.05, 0.5, 0.5);
    // Same alpha on both sides still changes r (multiplies the
    // fill terms), so the thresholds differ.
    EXPECT_NE(without, with);
}

// ------------------------------------------------- Eq. 19 vs Smith (exact)

TEST(SmithValidation, ReducedDelayEqualsSmithDifference)
{
    // The central identity of Sec. 5.4.2: Eq. 19's value equals
    // Smith(L0) - Smith(Li) exactly (alpha = 0).  Verify to
    // machine precision across tables and betas.
    for (const auto &table : {MissRatioTable::designTarget8K(),
                              MissRatioTable::designTarget16K()}) {
        for (double beta : {0.5, 1.0, 2.0, 3.0, 5.0, 8.0}) {
            const auto m = model(6, beta, 4);
            const double base = m.smithObjective(
                table.missRatio(8), 8.0);
            for (std::uint32_t line : table.lineSizes()) {
                if (line <= 8)
                    continue;
                const double v =
                    reducedDelay(table, m, 8, line);
                const double smith = m.smithObjective(
                    table.missRatio(line),
                    static_cast<double>(line));
                EXPECT_NEAR(v, base - smith, 1e-12)
                    << table.name() << " beta=" << beta
                    << " L=" << line;
            }
        }
    }
}

TEST(SmithValidation, OptimaAgreeEverywhere)
{
    // Because of the identity above, the Eq. 19 choice achieves
    // Smith's minimal objective for every table and beta (asserted
    // on objective value, which is robust to exact ties between
    // line sizes — e.g. the 16K table ties 8B and 16B at beta=6).
    for (const auto &table : {MissRatioTable::designTarget8K(),
                              MissRatioTable::designTarget16K()}) {
        for (double beta :
             {0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0, 10.0}) {
            const auto m = model(6, beta, 4);
            const auto ours = tradeoffOptimalLine(table, m, 8);
            const auto smiths = smithOptimalLine(table, m);
            EXPECT_NEAR(
                m.smithObjective(table.missRatio(ours), ours),
                m.smithObjective(table.missRatio(smiths), smiths),
                1e-9)
                << table.name() << " beta=" << beta;
        }
    }
}

TEST(SmithValidation, MeanDelayCriterionAgreesWithSmith)
{
    // Eq. 15 and Eq. 16 pick the same line (common hit cycle).
    for (const auto &table : {MissRatioTable::designTarget8K(),
                              MissRatioTable::designTarget16K()}) {
        for (double beta : {0.5, 2.0, 6.0}) {
            const auto m = model(10, beta, 8);
            EXPECT_EQ(meanDelayOptimalLine(table, m),
                      smithOptimalLine(table, m));
        }
    }
}

TEST(SmithValidation, PaperPanelOptima)
{
    // Figure 6's stated Smith optima, one per panel.
    // (a) 16K, D=4, c'=6, beta=2 -> 32 bytes.
    EXPECT_EQ(smithOptimalLine(MissRatioTable::designTarget16K(),
                               model(6, 2, 4)),
              32u);
    // (b) 8K, D=8, c'=4, beta=3 -> 16 bytes.
    EXPECT_EQ(smithOptimalLine(MissRatioTable::designTarget8K(),
                               model(4, 3, 8)),
              16u);
    // (c) 16K, D=8, c'=16.75, beta=1 -> 64 bytes.
    EXPECT_EQ(smithOptimalLine(MissRatioTable::designTarget16K(),
                               model(16.75, 1, 8)),
              64u);
    // (d) 8K, D=8, c'=6, beta=2 -> 32 bytes.
    EXPECT_EQ(smithOptimalLine(MissRatioTable::designTarget8K(),
                               model(6, 2, 8)),
              32u);
}

TEST(LineTradeoff, FallsBackToBaseWhenNothingWins)
{
    // A table where larger lines barely improve: at very slow
    // buses no larger line has positive reduced delay.
    MissRatioTable flat("flat", {LinePoint{8, 0.050},
                                 LinePoint{16, 0.049},
                                 LinePoint{32, 0.048}});
    const auto m = model(2, 50, 4);
    EXPECT_EQ(tradeoffOptimalLine(flat, m, 8), 8u);
}

TEST(LineTradeoff, SweepCoversAllLinesAndBetas)
{
    const auto table = MissRatioTable::designTarget16K();
    const auto points = sweepReducedDelay(
        table, model(6, 1, 4), 8, {1.0, 2.0, 3.0});
    // 4 larger lines x 3 betas.
    EXPECT_EQ(points.size(), 12u);
}

TEST(LineTradeoff, BeneficialBetaRangeExists)
{
    const auto table = MissRatioTable::designTarget16K();
    const auto range = beneficialBetaRange(
        table, model(6, 1, 4), 8, 32, 0.1, 10.0);
    ASSERT_TRUE(range.has_value());
    EXPECT_LT(range->first, range->second);
    // Fast buses (small beta) benefit most; the range should
    // include beta = 1.
    EXPECT_LE(range->first, 1.0);
}

TEST(LineTradeoff, TooSlowBusHasNoBenefit)
{
    // Sec. 5.4.2: bus speeds with negative reduced delay are "too
    // slow to be useful for a larger line".  Make the tail flat so
    // 128B never pays at slow buses.
    MissRatioTable table("t", {LinePoint{8, 0.05},
                               LinePoint{128, 0.049}});
    const auto range = beneficialBetaRange(
        table, model(6, 1, 4), 8, 128, 0.5, 50.0);
    EXPECT_FALSE(range.has_value());
}

} // namespace
} // namespace uatm
