/**
 * @file
 * Tests for the experiment layer: scenario expansion order, the
 * ResultTable renderers, and — the core contract — that the
 * sharded Runner merges results bit-identically at any thread
 * count, including against the serial reference paths.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>

#include "cache/sweep.hh"
#include "exp/result_table.hh"
#include "exp/runner.hh"
#include "exp/scenario.hh"
#include "exp/scenarios.hh"
#include "exp/workload_spec.hh"
#include "obs/registry.hh"
#include "obs/trace_event.hh"
#include "trace/generators.hh"

namespace uatm::exp {
namespace {

// ------------------------------------------------------- Scenario

TEST(Scenario, NoAxesExpandToOnePoint)
{
    Scenario scenario("trivial");
    EXPECT_EQ(scenario.pointCount(), 1u);
    const auto points = scenario.expand();
    ASSERT_EQ(points.size(), 1u);
    EXPECT_EQ(points[0].index, 0u);
    EXPECT_TRUE(points[0].coords.empty());
}

TEST(Scenario, ExpansionIsRowMajorFirstAxisSlowest)
{
    Scenario scenario("grid");
    scenario.sweep("a", {1, 2},
                   [](Point &, const AxisValue &) {});
    scenario.sweep("b", {10, 20, 30},
                   [](Point &, const AxisValue &) {});
    EXPECT_EQ(scenario.pointCount(), 6u);

    const auto points = scenario.expand();
    ASSERT_EQ(points.size(), 6u);
    const double expected[][2] = {{1, 10}, {1, 20}, {1, 30},
                                  {2, 10}, {2, 20}, {2, 30}};
    for (std::size_t i = 0; i < points.size(); ++i) {
        EXPECT_EQ(points[i].index, i);
        EXPECT_EQ(points[i].coord("a").value(), expected[i][0]);
        EXPECT_EQ(points[i].coord("b").value(), expected[i][1]);
    }
}

TEST(Scenario, AppliersSeeBaseConfigAndMutatePoints)
{
    Scenario scenario("applied");
    scenario.cache.sizeBytes = 4096;
    scenario.sweep("size", {8192, 16384},
                   [](Point &point, const AxisValue &v) {
                       point.cache.sizeBytes =
                           static_cast<std::uint64_t>(v.value);
                   });
    const auto points = scenario.expand();
    ASSERT_EQ(points.size(), 2u);
    EXPECT_EQ(points[0].cache.sizeBytes, 8192u);
    EXPECT_EQ(points[1].cache.sizeBytes, 16384u);
}

TEST(Scenario, PointLabelAndMissingAxis)
{
    Scenario scenario("labels");
    scenario.sweepLabeled("feature", {{"FS", 0}},
                          [](Point &, const AxisValue &) {});
    const auto points = scenario.expand();
    ASSERT_EQ(points.size(), 1u);
    EXPECT_EQ(points[0].label(), "feature=FS");
    EXPECT_EQ(points[0].coordLabel("feature").value(), "FS");
    const auto missing = points[0].coord("nope");
    ASSERT_FALSE(missing.ok());
    EXPECT_EQ(missing.status().code(), ErrorCode::NotFound);
    EXPECT_FALSE(points[0].coordLabel("nope").ok());
}

TEST(Scenario, NumericLabelsAreIntegralWhenExact)
{
    EXPECT_EQ(AxisValue::ofNumber(8192).label, "8192");
    EXPECT_EQ(AxisValue::ofNumber(0.5).label, "0.5");
}

// ---------------------------------------------------- ResultTable

TEST(ResultTable, TextCsvAndJsonRender)
{
    ResultTable table("demo", {"name", "x"});
    table.addRow({Cell::text("alpha"), Cell::num(1.5, 2)});
    table.addRow({Cell::text("has,comma"), Cell::integer(7)});

    const std::string text = table.renderText();
    EXPECT_NE(text.find("alpha"), std::string::npos);
    EXPECT_NE(text.find("1.50"), std::string::npos);

    const std::string csv = table.renderCsv();
    EXPECT_NE(csv.find("name,x"), std::string::npos);
    EXPECT_NE(csv.find("\"has,comma\""), std::string::npos)
        << csv;

    const std::string json = table.renderJson();
    EXPECT_NE(json.find("\"schema_version\""), std::string::npos);
    EXPECT_NE(json.find("\"demo\""), std::string::npos);
    // Numeric cells emit as JSON numbers, not strings.
    EXPECT_NE(json.find("7"), std::string::npos);
    EXPECT_EQ(json.find("\"7\""), std::string::npos);
}

TEST(ResultTable, RowArityIsChecked)
{
    ResultTable table("demo", {"a", "b"});
    EXPECT_DEATH(table.addRow({Cell::text("only one")}),
                 "row arity");
}

TEST(ResultTable, ParseFormatNames)
{
    EXPECT_EQ(parseTableFormat("text").value(), TableFormat::Text);
    EXPECT_EQ(parseTableFormat("csv").value(), TableFormat::Csv);
    EXPECT_EQ(parseTableFormat("json").value(), TableFormat::Json);
    const auto bad = parseTableFormat("yaml");
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.status().code(), ErrorCode::InvalidArgument);
    EXPECT_NE(bad.status().message().find("unknown table format"),
              std::string::npos);
}

// --------------------------------------------------- WorkloadSpec

TEST(WorkloadSpec, MakeIsDeterministicAndRewound)
{
    const WorkloadSpec spec = WorkloadSpec::spec92("swm256", 17);
    auto a = okOrThrow(spec.make());
    auto b = okOrThrow(spec.make());
    EXPECT_EQ(a->drain(400), b->drain(400));
}

TEST(WorkloadSpec, IFetchVariantInterleavesDeterministically)
{
    WorkloadSpec spec = WorkloadSpec::spec92("ear", 3);
    spec.withIFetch = true;
    auto a = okOrThrow(spec.make());
    auto b = okOrThrow(spec.make());
    const auto refs = a->drain(500);
    EXPECT_EQ(refs, b->drain(500));
    bool sawIFetch = false;
    for (const auto &ref : refs)
        sawIFetch |= ref.kind == RefKind::IFetch;
    EXPECT_TRUE(sawIFetch);
}

// --------------------------------------------------------- Runner

/** A mixed scenario: simulated sweep axis x workload axis. */
Scenario
mixedScenario()
{
    Scenario scenario("mixed");
    scenario.refs = 5000;
    scenario.workload = WorkloadSpec::spec92("nasa7", 7);
    scenario.cache.assoc = 2;
    scenario.cache.lineBytes = 32;
    scenario.sweep("size", {4096, 8192, 16384},
                   [](Point &point, const AxisValue &v) {
                       point.cache.sizeBytes =
                           static_cast<std::uint64_t>(v.value);
                   });
    scenario.sweepWorkloads({"nasa7", "ear"});
    return scenario;
}

std::vector<Cell>
mixedKernel(const Point &point)
{
    auto source = okOrThrow(point.workload.make());
    const auto run = runCacheSim(point.cache, *source, point.refs);
    return {Cell::num(run.hitRatio(), 6),
            Cell::num(run.missRatio(), 6)};
}

TEST(Runner, OneVsEightThreadsIsByteIdentical)
{
    Runner serial(RunnerOptions{1});
    Runner wide(RunnerOptions{8});
    const ResultTable a =
        serial.run(mixedScenario(), {"hr", "mr"}, mixedKernel);
    const ResultTable b =
        wide.run(mixedScenario(), {"hr", "mr"}, mixedKernel);
    EXPECT_EQ(a.renderText(), b.renderText());
    EXPECT_EQ(a.renderCsv(), b.renderCsv());
    EXPECT_EQ(a.renderJson(), b.renderJson());
    // Serial runs execute inline on the calling thread.
    EXPECT_EQ(serial.lastStats().threadsUsed, 0u);
    EXPECT_EQ(serial.lastStats().points, 6u);
    EXPECT_EQ(serial.lastStats().pointsFailed, 0u);
}

TEST(Runner, RowsMergeInExpansionOrder)
{
    Scenario scenario("ordered");
    scenario.sweep("i", {0, 1, 2, 3, 4, 5, 6, 7},
                   [](Point &, const AxisValue &) {});
    Runner runner(RunnerOptions{4});
    const ResultTable table = runner.run(
        scenario, {"twice"}, [](const Point &point) {
            return std::vector<Cell>{
                Cell::num(2.0 * point.coord("i").value(), 0)};
        });
    ASSERT_EQ(table.rows(), 8u);
    for (std::size_t i = 0; i < 8; ++i) {
        EXPECT_EQ(table.at(i, 0).str(), std::to_string(i));
        EXPECT_EQ(table.at(i, 1).value(), 2.0 * i);
    }
}

TEST(Runner, ZeroThreadsMeansHardwareConcurrency)
{
    Runner runner(RunnerOptions{0});
    unsigned expected = std::thread::hardware_concurrency();
    if (expected == 0)
        expected = 1;
    // Capped by the number of points.
    EXPECT_EQ(runner.effectiveThreads(1000), expected);
    EXPECT_EQ(runner.effectiveThreads(1), 1u);
}

TEST(Runner, KernelExceptionPropagatesUnderFailFast)
{
    Scenario scenario("throws");
    scenario.sweep("i", {0, 1, 2, 3},
                   [](Point &, const AxisValue &) {});
    Runner runner(RunnerOptions{2, /*failFast=*/true});
    EXPECT_THROW(
        runner.run(scenario, {"x"},
                   [](const Point &point) -> std::vector<Cell> {
                       if (point.index == 2)
                           throw std::runtime_error("boom");
                       return {Cell::num(1.0)};
                   }),
        std::runtime_error);
    // Regression: stats must reflect the aborted run, not go stale.
    EXPECT_EQ(runner.lastStats().points, 4u);
    EXPECT_GE(runner.lastStats().pointsFailed, 1u);
}

TEST(Runner, FaultIsolationEmitsErrorRows)
{
    Scenario scenario("isolated");
    scenario.sweep("i", {0, 1, 2, 3},
                   [](Point &, const AxisValue &) {});
    Runner runner(RunnerOptions{2});
    const ResultTable table = runner.run(
        scenario, {"x"},
        [](const Point &point) -> std::vector<Cell> {
            if (point.index == 2)
                throw std::runtime_error("boom");
            return {Cell::num(1.0)};
        });

    // The run completes: the failed point degrades to an error row
    // instead of killing the sweep.
    ASSERT_EQ(table.rows(), 4u);
    EXPECT_TRUE(table.at(2, 1).isError());
    EXPECT_EQ(table.at(2, 1).str(), "!kernel_error");
    EXPECT_FALSE(table.at(1, 1).isError());

    EXPECT_EQ(runner.lastStats().points, 4u);
    EXPECT_EQ(runner.lastStats().pointsFailed, 1u);
    ASSERT_EQ(runner.lastFailures().size(), 1u);
    EXPECT_EQ(runner.lastFailures()[0].index, 2u);
    EXPECT_EQ(runner.lastFailures()[0].status.code(),
              ErrorCode::KernelError);
    EXPECT_NE(runner.lastFailures()[0].status.message().find("boom"),
              std::string::npos);
}

TEST(Runner, FaultIsolationIsByteIdenticalAcrossThreads)
{
    const auto kernel =
        [](const Point &point) -> Expected<std::vector<Cell>> {
        if (point.index == 3)
            return Status::invalidArgument("degenerate geometry");
        if (point.index == 5)
            throw std::runtime_error("boom");
        return std::vector<Cell>{
            Cell::num(3.0 * point.coord("i").value(), 0)};
    };
    auto makeScenario = [] {
        Scenario scenario("grid");
        scenario.sweep("i", {0, 1, 2, 3, 4, 5, 6, 7},
                       [](Point &, const AxisValue &) {});
        return scenario;
    };

    Runner one(RunnerOptions{1});
    Runner eight(RunnerOptions{8});
    const ResultTable a = one.run(makeScenario(), {"x"}, kernel);
    const ResultTable b = eight.run(makeScenario(), {"x"}, kernel);
    EXPECT_EQ(a.renderCsv(), b.renderCsv());
    EXPECT_EQ(a.renderText(), b.renderText());
    EXPECT_EQ(a.renderJson(), b.renderJson());
    EXPECT_EQ(one.lastStats().pointsFailed, 2u);
    EXPECT_EQ(eight.lastStats().pointsFailed, 2u);
}

TEST(Runner, StatusReturnAndStatusErrorKeepTheirCodes)
{
    Scenario scenario("typed");
    scenario.sweep("i", {0, 1, 2},
                   [](Point &, const AxisValue &) {});
    Runner runner(RunnerOptions{1});
    const ResultTable table = runner.run(
        scenario, {"x"},
        [](const Point &point) -> Expected<std::vector<Cell>> {
            if (point.index == 0)
                return Status::notFound("no such profile");
            if (point.index == 1)
                throw StatusError(
                    Status::outOfRange("hr out of range"));
            return std::vector<Cell>{Cell::num(1.0)};
        });
    EXPECT_EQ(table.at(0, 1).str(), "!not_found");
    EXPECT_EQ(table.at(1, 1).str(), "!out_of_range");
    EXPECT_FALSE(table.at(2, 1).isError());
    EXPECT_EQ(runner.lastStats().pointsFailed, 2u);
}

/** A distinct exception type for checking fail-fast rethrow. */
struct BespokeError : std::runtime_error
{
    BespokeError() : std::runtime_error("bespoke") {}
};

TEST(Runner, FailFastRethrowsTheOriginalException)
{
    Scenario scenario("failfast");
    scenario.sweep("i", {0, 1, 2, 3},
                   [](Point &, const AxisValue &) {});
    Runner runner(RunnerOptions{2, /*failFast=*/true});
    EXPECT_THROW(
        runner.run(scenario, {"x"},
                   [](const Point &point) -> std::vector<Cell> {
                       if (point.index == 1)
                           throw BespokeError();
                       return {Cell::num(1.0)};
                   }),
        BespokeError);
}

TEST(Runner, FailFastWrapsStatusReturnsAsStatusError)
{
    Scenario scenario("failfast-status");
    scenario.sweep("i", {0, 1},
                   [](Point &, const AxisValue &) {});
    Runner runner(RunnerOptions{1, /*failFast=*/true});
    try {
        runner.run(scenario, {"x"},
                   [](const Point &) -> Expected<std::vector<Cell>> {
                       return Status::invalidArgument("bad input");
                   });
        FAIL() << "expected StatusError";
    } catch (const StatusError &e) {
        EXPECT_EQ(e.status().code(), ErrorCode::InvalidArgument);
    }
}

TEST(Runner, TracerNoLongerForcesSerialAndArmsTelemetry)
{
    obs::globalTracer().setEnabled(true);
    Runner runner(RunnerOptions{4});
    Scenario scenario("traced");
    scenario.sweep("i", {0, 1, 2, 3},
                   [](Point &, const AxisValue &) {});
    runner.run(scenario, {"x"}, [](const Point &) {
        return std::vector<Cell>{Cell::num(0.0)};
    });
    const bool reenabled = obs::globalTracer().enabled();
    obs::globalTracer().setEnabled(false);
    obs::globalTracer().clear();
    // The tracer used to force a traced run down to one thread;
    // now the runner suspends it around the pool and replays
    // per-worker spans afterwards, so the full pool runs — and
    // the tracer must come back enabled after the join.
    EXPECT_TRUE(reenabled);
    EXPECT_EQ(runner.lastStats().threadsRequested, 4u);
    EXPECT_EQ(runner.lastStats().threadsUsed, 4u);
    // An enabled tracer arms telemetry automatically.
    EXPECT_TRUE(runner.lastTelemetry().armed);
    EXPECT_EQ(runner.lastTelemetry().workers.size(), 4u);
}

TEST(Runner, StatsRegisterUnderPrefix)
{
    Runner runner(RunnerOptions{1});
    Scenario scenario("tiny");
    scenario.sweep("i", {0, 1},
                   [](Point &, const AxisValue &) {});
    runner.run(scenario, {"x"}, [](const Point &) {
        return std::vector<Cell>{Cell::num(0.0)};
    });
    obs::StatRegistry registry;
    runner.lastStats().registerStats(registry, "exp");
    EXPECT_EQ(registry.value("exp.points"), 2.0);
    EXPECT_EQ(registry.value("exp.points_failed"), 0.0);
    EXPECT_EQ(registry.value("exp.threads_used"), 0.0);
    EXPECT_TRUE(registry.contains("exp.wall_seconds"));
}

// ------------------------------------------- parallel == serial

TEST(Scenarios, ParallelSizeSweepMatchesSerial)
{
    CacheConfig base;
    base.assoc = 2;
    base.lineBytes = 32;
    const std::vector<std::uint64_t> sizes = {4096, 8192, 16384,
                                              32768};
    const std::uint64_t refs = 20000;

    auto source = Spec92Profile::make("hydro2d", 23);
    const auto serial =
        sweepCacheSize(base, *source, sizes, refs, refs / 10);
    const auto parallel = sweepCacheSizeParallel(
        base, WorkloadSpec::spec92("hydro2d", 23), sizes, refs,
        refs / 10, 4);

    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].value, parallel[i].value);
        EXPECT_EQ(serial[i].hitRatio, parallel[i].hitRatio);
        EXPECT_EQ(serial[i].missRatio, parallel[i].missRatio);
        EXPECT_EQ(serial[i].flushRatio, parallel[i].flushRatio);
    }
}

TEST(Scenarios, ParallelLineSweepMatchesSerial)
{
    CacheConfig base;
    base.sizeBytes = 8 * 1024;
    base.assoc = 2;
    const std::vector<std::uint32_t> lines = {16, 32, 64};
    const std::uint64_t refs = 15000;

    auto source = Spec92Profile::make("wave5", 31);
    const auto serial =
        sweepLineSize(base, *source, lines, refs);
    const auto parallel = sweepLineSizeParallel(
        base, WorkloadSpec::spec92("wave5", 31), lines, refs, 0,
        3);

    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].value, parallel[i].value);
        EXPECT_EQ(serial[i].missRatio, parallel[i].missRatio);
    }
}

TEST(Scenarios, ParallelPhiMatchesSerial)
{
    PhiExperiment experiment;
    experiment.refs = 20000;

    const auto serial = measurePhiAllProfiles(experiment);
    const auto parallel =
        measurePhiAllProfilesParallel(experiment, 4);

    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].workload, parallel[i].workload);
        EXPECT_EQ(serial[i].phi, parallel[i].phi);
        EXPECT_EQ(serial[i].percentOfFull,
                  parallel[i].percentOfFull);
    }
    EXPECT_EQ(parallel.back().workload, "average");
}

TEST(Scenarios, FeatureGridMatchesRankFeatures)
{
    FeatureGrid grid;
    grid.ctx.machine.busWidth = 4;
    grid.ctx.machine.lineBytes = 32;
    grid.baseHitRatio = 0.95;
    grid.phiPartial = 6.5;
    grid.q = 2.0;
    grid.cycleTimes = {8};

    Runner runner(RunnerOptions{4});
    const ResultTable table = runFeatureGrid(grid, runner);
    ASSERT_EQ(table.rows(), 4u);

    TradeoffContext ctx = grid.ctx;
    ctx.machine = grid.ctx.machine.withCycleTime(8);
    for (std::size_t row = 0; row < table.rows(); ++row) {
        const TradeFeature feature = grid.features[row];
        const double expected =
            featureMissFactor(ctx, feature, grid.q,
                              grid.phiPartial);
        EXPECT_DOUBLE_EQ(table.at(row, 2).value(), expected)
            << tradeFeatureName(feature);
    }
}

TEST(Scenarios, LineTradeoffAgreesWithSmith)
{
    LineTradeoff spec;
    spec.base.sizeBytes = 8 * 1024;
    spec.base.assoc = 2;
    spec.workload = WorkloadSpec::spec92("nasa7", 11);
    spec.lineSizes = {8, 16, 32, 64};
    spec.baseLine = 8;
    spec.refs = 20000;

    Runner runner(RunnerOptions{4});
    const auto result = runLineTradeoff(spec, runner);
    EXPECT_EQ(result.table.rows(), spec.lineSizes.size());
    EXPECT_TRUE(result.missRatios.has(result.recommended));
    EXPECT_TRUE(result.missRatios.has(result.smith));
    // Sec. 5.4's core claim: the Eq. 19 selector and Smith's
    // criterion pick the same line whenever Smith's optimum lies
    // at or above the base line.
    if (result.smith >= spec.baseLine) {
        EXPECT_EQ(result.recommended, result.smith);
    }
}

TEST(Scenarios, GeometryScenarioTablesByteIdenticalAcrossThreads)
{
    GeometrySweep spec;
    spec.axis = GeometrySweep::Axis::Size;
    spec.base.assoc = 2;
    spec.base.lineBytes = 32;
    spec.workload = WorkloadSpec::spec92("doduc", 2);
    spec.values = {4096, 8192, 16384, 32768, 65536};
    spec.refs = 10000;

    Runner one(RunnerOptions{1});
    Runner eight(RunnerOptions{8});
    const std::string a =
        runGeometrySweep(spec, one).renderCsv();
    const std::string b =
        runGeometrySweep(spec, eight).renderCsv();
    EXPECT_EQ(a, b);
}

// ------------------------------------ stack-sim engine dispatch

TEST(Scenarios, StackSimAndPerPointEnginesAreByteIdentical)
{
    GeometrySweep spec;
    spec.axis = GeometrySweep::Axis::Size;
    spec.base.assoc = 2;
    spec.base.lineBytes = 32;
    spec.workload = WorkloadSpec::spec92("nasa7", 5);
    // 5000 is not a power of two: an injected per-point fault that
    // must degrade to the SAME error row under both engines.
    spec.values = {4096, 5000, 8192, 32768};
    spec.refs = 8000;
    spec.warmupRefs = 800;

    resetSweepDispatchStats();
    std::string reference;
    for (unsigned threads : {1u, 2u, 8u}) {
        GeometrySweep fast = spec;
        fast.engine = GeometrySweep::Engine::Auto;
        GeometrySweep brute = spec;
        brute.engine = GeometrySweep::Engine::PerPoint;

        Runner fast_runner(RunnerOptions{threads});
        Runner brute_runner(RunnerOptions{threads});
        const std::string a =
            runGeometrySweep(fast, fast_runner).renderCsv();
        const std::string b =
            runGeometrySweep(brute, brute_runner).renderCsv();
        EXPECT_EQ(a, b) << threads << " threads";
        EXPECT_NE(a.find("!invalid_argument"), std::string::npos)
            << a;
        EXPECT_EQ(fast_runner.lastStats().pointsFailed, 1u);
        EXPECT_EQ(brute_runner.lastStats().pointsFailed, 1u);

        if (reference.empty())
            reference = a;
        else
            EXPECT_EQ(a, reference) << threads << " threads";
    }
    const SweepDispatchCounters counters = sweepDispatchCounters();
    EXPECT_EQ(counters.fastPath, 3u);
    EXPECT_EQ(counters.perPoint, 3u);
    EXPECT_EQ(counters.declined, 0u);
    resetSweepDispatchStats();
}

TEST(Scenarios, DeclinedSweepFallsBackToIdenticalPerPointRun)
{
    GeometrySweep spec;
    spec.axis = GeometrySweep::Axis::Size;
    spec.base.assoc = 2;
    spec.base.lineBytes = 32;
    spec.base.replacement = ReplacementKind::FIFO; // ineligible
    spec.workload = WorkloadSpec::spec92("ear", 9);
    spec.values = {4096, 16384};
    spec.refs = 5000;

    resetSweepDispatchStats();
    GeometrySweep brute = spec;
    brute.engine = GeometrySweep::Engine::PerPoint;
    Runner a(RunnerOptions{2});
    Runner b(RunnerOptions{2});
    EXPECT_EQ(runGeometrySweep(spec, a).renderCsv(),
              runGeometrySweep(brute, b).renderCsv());
    const SweepDispatchCounters counters = sweepDispatchCounters();
    EXPECT_EQ(counters.declined, 1u); // logged, counted, not silent
    EXPECT_EQ(counters.perPoint, 1u);
    resetSweepDispatchStats();
}

TEST(Scenarios, ForcedStackSimThrowsWhenIneligible)
{
    GeometrySweep spec;
    spec.axis = GeometrySweep::Axis::Size;
    spec.base.replacement = ReplacementKind::FIFO;
    spec.workload = WorkloadSpec::spec92("nasa7", 1);
    spec.values = {4096, 8192};
    spec.refs = 1000;
    spec.engine = GeometrySweep::Engine::StackSim;

    Runner runner(RunnerOptions{1});
    EXPECT_THROW(runGeometrySweep(spec, runner), StatusError);

    // The line axis is structurally per-point, so forcing the
    // stack engine on it must also refuse.
    GeometrySweep line;
    line.axis = GeometrySweep::Axis::Line;
    line.workload = WorkloadSpec::spec92("nasa7", 1);
    line.values = {16, 32};
    line.refs = 1000;
    line.engine = GeometrySweep::Engine::StackSim;
    EXPECT_THROW(runGeometrySweep(line, runner), StatusError);
    resetSweepDispatchStats();
}

} // namespace
} // namespace uatm::exp
