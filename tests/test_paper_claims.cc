/**
 * @file
 * Every quantitative claim in the paper's text, asserted against
 * the model.  Each test cites the section it reproduces.
 */

#include <gtest/gtest.h>

#include "core/equivalence.hh"
#include "core/tradeoff.hh"
#include "exp/scenarios.hh"
#include "linesize/line_tradeoff.hh"

namespace uatm {
namespace {

TradeoffContext
context(double mu_m, double line, double bus = 4,
        double alpha = 0.5)
{
    TradeoffContext ctx;
    ctx.machine.busWidth = bus;
    ctx.machine.lineBytes = line;
    ctx.machine.cycleTime = mu_m;
    ctx.alpha = alpha;
    return ctx;
}

/**
 * Abstract (and Sec. 4.1): "the performance loss due to reducing
 * the hit ratio of a blocking cache from HR to 2HR-1 to at most
 * 2.5HR-1.5 can be compensated by doubling the data bus width."
 */
TEST(PaperClaims, AbstractHitRatioBand)
{
    for (double hr : {0.90, 0.95, 0.98}) {
        const double upper = equivalentHitRatio(
            missFactorDoubleBus(context(2, 8)), hr);
        EXPECT_NEAR(upper, 2.5 * hr - 1.5, 1e-9) << hr;
        const double lower = equivalentHitRatio(
            missFactorDoubleBus(context(1e9, 8)), hr);
        EXPECT_NEAR(lower, 2.0 * hr - 1.0, 1e-6) << hr;
        // Everything in between stays inside the band.
        for (double mu : {3.0, 5.0, 10.0, 40.0}) {
            const double hr2 = equivalentHitRatio(
                missFactorDoubleBus(context(mu, 8)), hr);
            EXPECT_GE(hr2 + 1e-12, 2.5 * hr - 1.5);
            EXPECT_LE(hr2 - 1e-12, 2.0 * hr - 1.0);
        }
    }
}

/**
 * Sec. 1: "the performance loss due to reducing cache hit ratio
 * from 0.95 to 0.9 or from 0.98 to 0.96 can be compensated by
 * doubling the external data bus" (the 2HR-1 limit).
 */
TEST(PaperClaims, IntroNumericExamples)
{
    const double r = missFactorDoubleBus(context(1e9, 8));
    EXPECT_NEAR(equivalentHitRatio(r, 0.95), 0.90, 1e-6);
    EXPECT_NEAR(equivalentHitRatio(r, 0.98), 0.96, 1e-6);
}

/**
 * Summary bullet 1: "for L >= 2D and alpha = 0.5, increasing the
 * cache hit ratio at HR by 0.5(1-HR) to 0.6(1-HR) is the same as
 * doubling the data bus width."
 */
TEST(PaperClaims, SummaryGainBand)
{
    for (double hr : {0.90, 0.95}) {
        for (double line : {8.0, 16.0, 32.0}) {
            for (double mu : {2.0, 4.0, 10.0, 100.0}) {
                const double r =
                    missFactorDoubleBus(context(mu, line));
                const double gain = hitRatioGainRequired(r, hr);
                EXPECT_GE(gain + 1e-9, 0.5 * (1.0 - hr) *
                          (line > 8 ? 0.999 : 1.0))
                    << "L=" << line << " mu=" << mu;
                EXPECT_LE(gain - 1e-9, 0.6 * (1.0 - hr))
                    << "L=" << line << " mu=" << mu;
            }
        }
    }
}

/**
 * Fig. 2 (upper): L=32, D=4, base HR 98 %, long memory cycle:
 * the 64-bit system runs at about 96 % (a 2 % trade); at L=8 and
 * mu_m=2 the trade is 3 % (95 % vs 98 %).
 */
TEST(PaperClaims, Figure2AnchorPoints)
{
    // Long-mu_m, L = 32.
    const double r32 = missFactorDoubleBus(context(400, 32));
    EXPECT_NEAR(hitRatioTraded(r32, 0.98) * 100.0, 2.0, 0.1);
    // mu_m = 2, L = 8.
    const double r8 = missFactorDoubleBus(context(2, 8));
    EXPECT_NEAR(hitRatioTraded(r8, 0.98) * 100.0, 3.0, 1e-9);
}

/**
 * Sec. 5.1: "as the memory cycle time increases, the traded hit
 * ratio is reduced" and "with the same base hit ratio, the hit
 * ratio traded for a large line size is smaller than that of a
 * smaller line size".
 */
TEST(PaperClaims, Figure2Monotonicities)
{
    double previous = 1.0;
    for (double mu : {2.0, 4.0, 8.0, 16.0}) {
        const double traded = hitRatioTraded(
            missFactorDoubleBus(context(mu, 32)), 0.98);
        EXPECT_LT(traded, previous);
        previous = traded;
    }
    const double small_line = hitRatioTraded(
        missFactorDoubleBus(context(8, 8)), 0.98);
    const double large_line = hitRatioTraded(
        missFactorDoubleBus(context(8, 32)), 0.98);
    EXPECT_LT(large_line, small_line);
}

/**
 * Sec. 5.3 / Fig. 3: "for L/D = 2, using a high speed pipelined
 * system does not display any performance advantage over doubling
 * the bus width even for a large memory cycle time."
 */
TEST(PaperClaims, NoPipelineAdvantageAtLOverD2)
{
    for (double mu : {2.0, 5.0, 10.0, 20.0, 100.0}) {
        const TradeoffContext ctx = context(mu, 8);
        EXPECT_LE(missFactorPipelined(ctx, 2.0),
                  missFactorDoubleBus(ctx) + 1e-12)
            << mu;
    }
}

/**
 * Summary bullet 4: "the pipelined memory system helps most when
 * the memory cycle time is larger than about five clock cycles
 * (for L/D > 2 and q = 2)."
 */
TEST(PaperClaims, PipelineCrossoverNearFiveCycles)
{
    for (double line : {16.0, 32.0}) {
        const auto mu = crossoverCycleTime(
            context(8, line), TradeFeature::PipelinedMemory,
            TradeFeature::DoubleBus, 2.0, 1.0, 2.0, 40.0);
        ASSERT_TRUE(mu.has_value()) << line;
        EXPECT_GT(*mu, 3.0) << line;
        EXPECT_LT(*mu, 7.0) << line;
    }
}

/**
 * Summary bullet 2: "the three best architectural features in
 * order are doubling the bus width, read-bypassing write buffers,
 * and bus-not-locked caches" — across a wide mu_m range and for
 * both line sizes shown in Figs. 3 and 4.
 */
TEST(PaperClaims, FeaturePriorityOrder)
{
    for (double line : {8.0, 32.0}) {
        for (double mu : {2.0, 4.0, 8.0, 16.0, 20.0}) {
            const TradeoffContext ctx = context(mu, line);
            // BNL phi near (but below) the FS ceiling, as the
            // Figure 1 simulations found.
            const double phi = 0.9 * ctx.machine.lineOverBus();
            const double bus = missFactorDoubleBus(ctx);
            const double wbuf = missFactorWriteBuffers(ctx);
            const double bnl = missFactorPartialStall(ctx, phi);
            EXPECT_GT(bus, wbuf) << "L=" << line << " mu=" << mu;
            EXPECT_GT(wbuf, bnl) << "L=" << line << " mu=" << mu;
        }
    }
}

/**
 * Summary bullet 3: a BNL3-style cache (stall only for the
 * requested datum) cuts the FS read-miss latency by 20-30 % for
 * memory cycle times below ~15 cycles.  In model terms: a phi of
 * 0.7-0.8 L/D reproduces that reduction; the claim is validated
 * against the simulator in test_integration.cc.
 */
TEST(PaperClaims, Bnl3LatencyReductionBand)
{
    const double line_over_bus = 8.0;
    for (double reduction : {0.2, 0.3}) {
        const double phi = (1.0 - reduction) * line_over_bus;
        EXPECT_GT(phi, 1.0);
        EXPECT_LT(phi, line_over_bus);
    }
}

/**
 * Sec. 5.2 Example 1, restated with the analytic machinery: a
 * 64-bit/8K design equals a 32-bit/32K design, and 64-bit/32K
 * equals 32-bit/128K (Short & Levy hit ratios).
 */
TEST(PaperClaims, Example1BothCases)
{
    const auto sizes = CacheSizeModel::shortLevy();
    ApplicationShape app;

    for (const auto &[small_k, big_k] :
         std::vector<std::pair<int, int>>{{8, 32}, {32, 128}}) {
        DesignPoint wide;
        wide.machine.busWidth = 8;
        wide.machine.lineBytes = 32;
        wide.machine.cycleTime = 1e7;
        wide.hitRatio =
            sizes.hitRatioForSize(small_k * 1024.0);
        const DesignPoint narrow =
            equivalentNarrowBusDesign(wide, app.alpha);
        EXPECT_NEAR(designCacheSize(narrow, sizes),
                    big_k * 1024.0, big_k * 1024.0 * 0.05)
            << small_k << "K";
    }
}

/**
 * Sec. 5.1: the "design limit" of the sweep is mu_m = 2 — the
 * model must remain valid (all per-miss costs above one cycle)
 * from there up.
 */
TEST(PaperClaims, ModelValidFromDesignLimit)
{
    for (double mu = 2.0; mu <= 48.0; mu += 1.0) {
        const TradeoffContext ctx = context(mu, 32);
        EXPECT_GT(missFactorDoubleBus(ctx), 1.0);
        EXPECT_GT(missFactorWriteBuffers(ctx), 1.0);
    }
}

/**
 * Sec. 5.4: "our study shows that larger line sizes are better to
 * be used in larger caches."
 */
TEST(PaperClaims, LargerCachesPreferLargerLines)
{
    const auto m8 = MissRatioTable::designTarget8K();
    const auto m16 = MissRatioTable::designTarget16K();
    LineDelayModel model;
    model.c = 7;    // c' = 6
    model.beta = 2;
    model.busWidth = 8;
    EXPECT_GE(smithOptimalLine(m16, model),
              smithOptimalLine(m8, model));
}

/**
 * The Sec. 5.3 headline numbers re-derived through the scenario
 * layer: the feature grid evaluated on the sharded exp::Runner must
 * reproduce rankFeatures() exactly, and must preserve the paper's
 * priority order (double bus > write buffers > partial stall) at
 * every memory cycle time — independent of the thread count.
 */
TEST(PaperClaims, FeatureGridHeadlinesThroughScenarioPath)
{
    exp::FeatureGrid grid;
    grid.ctx = context(8, 32);
    grid.baseHitRatio = 0.95;
    grid.cycleTimes = {2, 4, 8, 16, 20};
    grid.phiPartial = 0.9 * grid.ctx.machine.lineOverBus();

    exp::Runner runner(exp::RunnerOptions{8});
    const exp::ResultTable table = exp::runFeatureGrid(grid, runner);
    ASSERT_EQ(table.rows(),
              grid.cycleTimes.size() * grid.features.size());

    std::size_t row = 0;
    for (double mu : grid.cycleTimes) {
        TradeoffContext ctx = grid.ctx;
        ctx.machine = grid.ctx.machine.withCycleTime(mu);
        const auto ranked = rankFeatures(
            ctx, grid.baseHitRatio, grid.phiPartial, grid.q);

        double bus = 0, wbuf = 0, bnl = 0;
        for (const TradeFeature feature : grid.features) {
            const double r = table.at(row, 2).value();
            // Byte-identical to the serial analytic path.
            for (const auto &score : ranked) {
                if (score.feature == feature) {
                    EXPECT_EQ(r, score.missFactor)
                        << tradeFeatureName(feature)
                        << " mu=" << mu;
                }
            }
            if (feature == TradeFeature::DoubleBus)
                bus = r;
            else if (feature == TradeFeature::WriteBuffers)
                wbuf = r;
            else if (feature == TradeFeature::PartialStall)
                bnl = r;
            ++row;
        }
        // Sec. 5.3's ordering claim, now via the runner.
        EXPECT_GT(bus, wbuf) << "mu=" << mu;
        EXPECT_GT(wbuf, bnl) << "mu=" << mu;
    }
}

} // namespace
} // namespace uatm
