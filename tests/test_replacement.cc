/**
 * @file
 * Unit tests for the replacement policies, exercised both directly
 * and through the cache.
 */

#include <gtest/gtest.h>

#include <set>

#include "cache/cache.hh"
#include "cache/replacement.hh"

namespace uatm {
namespace {

std::vector<bool>
allValid(std::uint32_t assoc)
{
    return std::vector<bool>(assoc, true);
}

// ------------------------------------------------------------------ LRU

TEST(LruPolicy, PrefersInvalidWays)
{
    LruPolicy lru(1, 4);
    std::vector<bool> valid = {true, false, true, true};
    EXPECT_EQ(lru.victim(0, valid), 1u);
}

TEST(LruPolicy, EvictsLeastRecentlyTouched)
{
    LruPolicy lru(1, 4);
    for (std::uint32_t w : {0u, 1u, 2u, 3u})
        lru.touch(0, w);
    lru.touch(0, 0); // refresh way 0
    EXPECT_EQ(lru.victim(0, allValid(4)), 1u);
}

TEST(LruPolicy, SetsAreIndependent)
{
    LruPolicy lru(2, 2);
    lru.touch(0, 0);
    lru.touch(0, 1);
    lru.touch(1, 1);
    lru.touch(1, 0);
    EXPECT_EQ(lru.victim(0, allValid(2)), 0u);
    EXPECT_EQ(lru.victim(1, allValid(2)), 1u);
}

TEST(LruPolicy, ResetForgetsHistory)
{
    LruPolicy lru(1, 2);
    lru.touch(0, 0);
    lru.touch(0, 1);
    lru.reset();
    lru.touch(0, 1);
    EXPECT_EQ(lru.victim(0, allValid(2)), 0u);
}

// ----------------------------------------------------------------- FIFO

TEST(FifoPolicy, RoundRobinIgnoringTouches)
{
    FifoPolicy fifo(1, 3);
    const auto valid = allValid(3);
    EXPECT_EQ(fifo.victim(0, valid), 0u);
    fifo.touch(0, 0); // a hit must not reorder FIFO
    EXPECT_EQ(fifo.victim(0, valid), 1u);
    EXPECT_EQ(fifo.victim(0, valid), 2u);
    EXPECT_EQ(fifo.victim(0, valid), 0u);
}

TEST(FifoPolicy, PrefersInvalidWays)
{
    FifoPolicy fifo(1, 3);
    std::vector<bool> valid = {true, true, false};
    EXPECT_EQ(fifo.victim(0, valid), 2u);
}

// --------------------------------------------------------------- Random

TEST(RandomPolicy, DeterministicFromSeed)
{
    RandomPolicy a(4, 99), b(4, 99);
    const auto valid = allValid(4);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(a.victim(0, valid), b.victim(0, valid));
}

TEST(RandomPolicy, CoversAllWays)
{
    RandomPolicy rnd(4, 5);
    const auto valid = allValid(4);
    std::set<std::uint32_t> seen;
    for (int i = 0; i < 200; ++i)
        seen.insert(rnd.victim(0, valid));
    EXPECT_EQ(seen.size(), 4u);
}

TEST(RandomPolicy, ResetReplays)
{
    RandomPolicy rnd(4, 5);
    const auto valid = allValid(4);
    std::vector<std::uint32_t> first;
    for (int i = 0; i < 20; ++i)
        first.push_back(rnd.victim(0, valid));
    rnd.reset();
    for (int i = 0; i < 20; ++i)
        EXPECT_EQ(rnd.victim(0, valid), first[i]);
}

// ------------------------------------------------------------- TreePLRU

TEST(TreePlruPolicy, VictimAvoidsMostRecent)
{
    TreePlruPolicy plru(1, 4);
    const auto valid = allValid(4);
    plru.touch(0, 2);
    // The victim must never be the way just touched.
    EXPECT_NE(plru.victim(0, valid), 2u);
}

TEST(TreePlruPolicy, FillsInvalidFirst)
{
    TreePlruPolicy plru(1, 4);
    std::vector<bool> valid = {true, true, true, false};
    EXPECT_EQ(plru.victim(0, valid), 3u);
}

TEST(TreePlruPolicy, TwoWayBehavesLikeLru)
{
    TreePlruPolicy plru(1, 2);
    const auto valid = allValid(2);
    plru.touch(0, 0);
    EXPECT_EQ(plru.victim(0, valid), 1u);
    plru.touch(0, 1);
    EXPECT_EQ(plru.victim(0, valid), 0u);
}

TEST(TreePlruPolicy, SequentialTouchesCycleVictims)
{
    TreePlruPolicy plru(1, 8);
    const auto valid = allValid(8);
    // After touching 0..7 in order the tree points away from 7.
    for (std::uint32_t w = 0; w < 8; ++w)
        plru.touch(0, w);
    const auto victim = plru.victim(0, valid);
    EXPECT_NE(victim, 7u);
}

// ------------------------------------------------------------- factory

TEST(ReplacementFactory, CreatesEveryKind)
{
    for (ReplacementKind kind :
         {ReplacementKind::LRU, ReplacementKind::FIFO,
          ReplacementKind::Random, ReplacementKind::TreePLRU}) {
        CacheConfig config;
        config.replacement = kind;
        auto policy = ReplacementPolicy::create(config);
        ASSERT_NE(policy, nullptr);
        EXPECT_LT(policy->victim(0, allValid(config.assoc)),
                  config.assoc);
    }
}

// ------------------------------------- policies through the cache

TEST(ReplacementIntegration, PoliciesChangeMissBehaviour)
{
    // A cyclic pattern one line larger than a set defeats LRU
    // (0% reuse hits) but not Random (sometimes lucky).
    auto run = [](ReplacementKind kind) {
        CacheConfig config;
        config.sizeBytes = 256; // 4 sets x 2 x 32B
        config.assoc = 2;
        config.lineBytes = 32;
        config.replacement = kind;
        config.replacementSeed = 7;
        SetAssocCache cache(config);
        // Three lines in set 0, accessed cyclically.
        const Addr lines[3] = {0x000, 0x080, 0x100};
        for (int i = 0; i < 300; ++i)
            cache.access(MemoryReference{lines[i % 3], 0, 4,
                                         RefKind::Load});
        return cache.stats().hitRatio();
    };
    EXPECT_NEAR(run(ReplacementKind::LRU), 0.0, 0.02);
    EXPECT_GT(run(ReplacementKind::Random), 0.1);
}

TEST(ReplacementIntegration, PlruTracksLruOnTypicalStreams)
{
    auto run = [](ReplacementKind kind) {
        CacheConfig config;
        config.sizeBytes = 4096;
        config.assoc = 4;
        config.lineBytes = 32;
        config.replacement = kind;
        SetAssocCache cache(config);
        Rng rng(17);
        for (int i = 0; i < 20000; ++i) {
            const Addr addr = rng.nextBelow(16 * 1024) & ~3ull;
            cache.access(MemoryReference{addr, 0, 4, RefKind::Load});
        }
        return cache.stats().hitRatio();
    };
    EXPECT_NEAR(run(ReplacementKind::TreePLRU),
                run(ReplacementKind::LRU), 0.03);
}

} // namespace
} // namespace uatm
