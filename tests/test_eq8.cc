/**
 * @file
 * Tests for the Eq. 8 static stalling-factor estimate, including
 * its cross-check against the timing engine's dynamic measurement
 * — the repo's validation of the paper's own Figure 1 method.
 */

#include <gtest/gtest.h>

#include "cpu/eq8_model.hh"
#include "cpu/phi_measurement.hh"
#include "trace/generators.hh"

namespace uatm {
namespace {

CacheConfig
fig1Cache()
{
    CacheConfig config;
    config.sizeBytes = 8 * 1024;
    config.assoc = 2;
    config.lineBytes = 32;
    return config;
}

MemoryReference
load(Addr addr, std::uint32_t gap = 0)
{
    return MemoryReference{addr, gap, 4, RefKind::Load};
}

TEST(Eq8, RejectsNonBnlFeatures)
{
    Trace t;
    EXPECT_EXIT(
        {
            estimatePhiEq8(t, 10, StallFeature::FS, fig1Cache(),
                           4, 8);
        },
        ::testing::ExitedWithCode(EXIT_FAILURE), "BNL");
}

TEST(Eq8, NoMissesGivesZero)
{
    Trace t; // empty
    const auto est = estimatePhiEq8(t, 10, StallFeature::BNL1,
                                    fig1Cache(), 4, 8);
    EXPECT_EQ(est.misses, 0u);
    EXPECT_EQ(est.phi, 0.0);
}

TEST(Eq8, IsolatedMissesGivePhiOne)
{
    // Misses whose windows see no second access: phi = 1 exactly
    // (only the basic read-miss term).
    Trace t;
    for (int i = 0; i < 10; ++i)
        t.append(load(0x1000 * (i + 1), 200)); // windows all idle
    const auto est = estimatePhiEq8(t, 100, StallFeature::BNL1,
                                    fig1Cache(), 4, 8);
    EXPECT_EQ(est.misses, 10u);
    EXPECT_DOUBLE_EQ(est.phi, 1.0);
    EXPECT_EQ(est.stalledWindows, 0u);
}

TEST(Eq8, ImmediateReuseGivesNearFullWindow)
{
    // An access to the missing line one instruction later stalls
    // almost the whole (L/D - 1) mu_m window under BNL1:
    // phi ~ 1 + (56 - 1)/8 = 7.875.
    Trace t;
    t.append(load(0x000, 0));
    t.append(load(0x004, 0)); // dC = 1
    const auto est = estimatePhiEq8(t, 100, StallFeature::BNL1,
                                    fig1Cache(), 4, 8);
    EXPECT_EQ(est.misses, 1u);
    EXPECT_NEAR(est.phi, 1.0 + (56.0 - 1.0) / 8.0, 1e-12);
}

TEST(Eq8, Bnl3CountsOnlyTheChunkWait)
{
    // Same trace, BNL3: the second access needs chunk 1, which
    // arrives mu_m after the requested chunk: stall = max(1*8 -
    // 1, 0) = 7, phi = 1 + 7/8.
    Trace t;
    t.append(load(0x000, 0));
    t.append(load(0x004, 0));
    const auto est = estimatePhiEq8(t, 100, StallFeature::BNL3,
                                    fig1Cache(), 4, 8);
    EXPECT_NEAR(est.phi, 1.0 + 7.0 / 8.0, 1e-12);
}

TEST(Eq8, Bnl3RequestedChunkCostsNothing)
{
    // Re-touching the requested chunk itself: position 0, stall 0.
    Trace t;
    t.append(load(0x004, 0));
    t.append(load(0x004, 0));
    const auto est = estimatePhiEq8(t, 100, StallFeature::BNL3,
                                    fig1Cache(), 4, 8);
    EXPECT_DOUBLE_EQ(est.phi, 1.0);
}

TEST(Eq8, SecondMissStallsUntilPreviousFill)
{
    // A back-to-back miss pair: the second stalls the remaining
    // window under both variants.
    Trace t;
    t.append(load(0x000, 0));
    t.append(load(0x100, 0)); // second miss, dC = 1
    for (StallFeature f :
         {StallFeature::BNL1, StallFeature::BNL3}) {
        const auto est =
            estimatePhiEq8(t, 100, f, fig1Cache(), 4, 8);
        EXPECT_EQ(est.misses, 2u);
        // Only the first window contributes (the second is open
        // at end of trace): (56 - 1)/(2 * 8) + 1.
        EXPECT_NEAR(est.phi, 1.0 + 55.0 / 16.0, 1e-12)
            << stallFeatureName(f);
    }
}

TEST(Eq8, PhiWithinTable2Bounds)
{
    for (const auto &name : Spec92Profile::names()) {
        auto workload = Spec92Profile::make(name, 21);
        const auto est = estimatePhiEq8(
            *workload, 30000, StallFeature::BNL1, fig1Cache(), 4,
            8);
        EXPECT_GE(est.phi, 1.0) << name;
        EXPECT_LE(est.phi, 8.0) << name;
    }
}

TEST(Eq8, TracksTheEngineMeasurement)
{
    // The static Eq. 8 estimate and the engine's dynamic phi
    // should agree to within the approximation error of "one
    // cycle per instruction inside the window".
    for (const auto &name : Spec92Profile::names()) {
        for (Cycles mu : {4u, 8u, 16u}) {
            auto workload = Spec92Profile::make(name, 33);
            const auto est = estimatePhiEq8(
                *workload, 30000, StallFeature::BNL1, fig1Cache(),
                4, mu);

            PhiExperiment exp;
            exp.feature = StallFeature::BNL1;
            exp.cycleTime = mu;
            exp.refs = 30000;
            exp.seed = 33;
            const auto engine = measurePhi(exp, name);

            EXPECT_NEAR(est.phi, engine.phi,
                        0.22 * engine.phi + 0.3)
                << name << " mu=" << mu;
        }
    }
}

TEST(Eq8, BlStallsOnAnyAccess)
{
    // Under BL even an unrelated hit stalls to completion:
    // second ref hits a different, already-resident line.
    Trace t;
    t.append(load(0x200, 50)); // warm an unrelated line
    t.append(load(0x000, 50)); // the measured miss (window open)
    t.append(load(0x204, 0));  // unrelated hit, dC = 1
    const auto est = estimatePhiEq8(t, 100, StallFeature::BL,
                                    fig1Cache(), 4, 8);
    // Window contributions: miss at 0x200's window closed by the
    // 0x000 access at dC=51 (no stall, window=56 > 51 gives 5):
    // max(56-51,0)=5; miss 0x000's window: max(56-1,0)=55.
    EXPECT_EQ(est.misses, 2u);
    EXPECT_NEAR(est.phi, 1.0 + (5.0 + 55.0) / (2.0 * 8.0),
                1e-12);
}

TEST(Eq8, Bnl2ArrivedChunkProceeds)
{
    // Re-touching the requested chunk after it arrived: BNL2
    // proceeds (stall 0); touching a later chunk stalls to
    // completion.
    Trace t1;
    t1.append(load(0x004, 0));
    t1.append(load(0x004, 0)); // chunk position 0, arrival 0
    const auto arrived = estimatePhiEq8(
        t1, 100, StallFeature::BNL2, fig1Cache(), 4, 8);
    EXPECT_DOUBLE_EQ(arrived.phi, 1.0);

    Trace t2;
    t2.append(load(0x000, 0));
    t2.append(load(0x01c, 0)); // position 7, arrival 56 > dC=1
    const auto waiting = estimatePhiEq8(
        t2, 100, StallFeature::BNL2, fig1Cache(), 4, 8);
    EXPECT_NEAR(waiting.phi, 1.0 + 55.0 / 8.0, 1e-12);
}

TEST(Eq8, FeatureOrderingHolds)
{
    // Static estimates preserve the BL >= BNL1 >= BNL2 >= BNL3
    // ordering on every profile.
    for (const auto &name : Spec92Profile::names()) {
        double previous = 1e18;
        for (StallFeature f :
             {StallFeature::BL, StallFeature::BNL1,
              StallFeature::BNL2, StallFeature::BNL3}) {
            auto workload = Spec92Profile::make(name, 71);
            const double phi =
                estimatePhiEq8(*workload, 20000, f, fig1Cache(),
                               4, 8)
                    .phi;
            EXPECT_LE(phi, previous + 1e-9)
                << name << " " << stallFeatureName(f);
            previous = phi;
        }
    }
}

TEST(Eq8, GrowsWithMemoryCycleTime)
{
    auto phi_at = [](Cycles mu) {
        auto workload = Spec92Profile::make("nasa7", 5);
        return estimatePhiEq8(*workload, 30000,
                              StallFeature::BNL1, fig1Cache(), 4,
                              mu)
            .phi;
    };
    EXPECT_LT(phi_at(4), phi_at(16));
    EXPECT_LT(phi_at(16), phi_at(48));
}

} // namespace
} // namespace uatm
