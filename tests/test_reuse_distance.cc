/**
 * @file
 * Tests for reuse-distance profiles and the synthesizing workload:
 * profile validation and JSON, measure() on known streams, and the
 * synthesis round-trip cross-checked against the Mattson
 * stack-distance engine.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "cache/stack_sim.hh"
#include "trace/reuse_distance.hh"
#include "trace/source.hh"
#include "util/random.hh"

namespace uatm {
namespace {

// ----------------------------------------------------- ReuseProfile

TEST(ReuseProfile, GeometricIsNormalizedWithTheRequestedColdMass)
{
    const ReuseProfile profile =
        ReuseProfile::geometric(32, 0.9, 0.05);
    ASSERT_TRUE(profile.validate().ok());
    ASSERT_EQ(profile.depth(), 32u);
    EXPECT_DOUBLE_EQ(profile.coldWeight, 0.05);
    EXPECT_NEAR(profile.cdfAt(32), 0.95, 1e-12);
    // Weights decay geometrically.
    for (std::size_t d = 1; d < profile.depth(); ++d)
        EXPECT_NEAR(profile.weights[d],
                    profile.weights[d - 1] * 0.9, 1e-12)
            << d;
    // The CDF is monotone in the associativity.
    for (std::size_t a = 1; a <= 32; ++a)
        EXPECT_GE(profile.cdfAt(a), profile.cdfAt(a - 1));
}

TEST(ReuseProfile, ValidateCatchesBadWeights)
{
    ReuseProfile empty;
    EXPECT_FALSE(empty.validate().ok());

    ReuseProfile negative;
    negative.weights = {0.5, -0.1};
    EXPECT_FALSE(negative.validate().ok());

    ReuseProfile nan;
    nan.weights = {std::nan("")};
    EXPECT_FALSE(nan.validate().ok());

    ReuseProfile bad_cold;
    bad_cold.weights = {1.0};
    bad_cold.coldWeight = -0.5;
    EXPECT_FALSE(bad_cold.validate().ok());

    ReuseProfile zero_mass;
    zero_mass.weights = {0.0, 0.0};
    EXPECT_FALSE(zero_mass.validate().ok());
}

TEST(ReuseProfile, JsonRoundTrips)
{
    const ReuseProfile profile =
        ReuseProfile::geometric(16, 0.85, 0.1);
    const auto back =
        ReuseProfile::fromJsonText(profile.toJsonText());
    ASSERT_TRUE(back.ok());
    ASSERT_EQ(back.value().depth(), profile.depth());
    EXPECT_NEAR(back.value().coldWeight, profile.coldWeight, 1e-9);
    for (std::size_t d = 0; d < profile.depth(); ++d)
        EXPECT_NEAR(back.value().weights[d], profile.weights[d],
                    1e-9)
            << d;
}

TEST(ReuseProfile, FromJsonRejectsMalformedDocuments)
{
    for (const char *bad :
         {"nonsense", "[1,2]", "{\"cold\":0.1}",
          "{\"weights\":7}", "{\"weights\":[\"x\"]}",
          "{\"weights\":[0.5],\"cold\":\"zero\"}",
          "{\"weights\":[-1],\"cold\":0}"}) {
        EXPECT_FALSE(ReuseProfile::fromJsonText(bad).ok()) << bad;
    }
}

TEST(ReuseProfile, MeasureRecoversAKnownAlternatingStream)
{
    // L0 L1 L0 L1 ...: two cold accesses, then always distance 1.
    Trace trace;
    constexpr std::size_t kRefs = 1000;
    for (std::size_t i = 0; i < kRefs; ++i) {
        MemoryReference ref;
        ref.size = 4;
        ref.addr = (i % 2) * 64;
        trace.append(ref);
    }
    const auto profile =
        ReuseProfile::measure(trace, kRefs, 64, 8);
    ASSERT_TRUE(profile.ok());
    EXPECT_NEAR(profile.value().coldWeight, 2.0 / kRefs, 1e-12);
    EXPECT_NEAR(profile.value().weights[1],
                (kRefs - 2.0) / kRefs, 1e-12);
    EXPECT_DOUBLE_EQ(profile.value().weights[0], 0.0);
}

TEST(ReuseProfile, MeasureFoldsDeepReuseIntoCold)
{
    // Cycle over 8 lines: every reuse is at distance 7, which a
    // depth-4 profile cannot express.
    Trace trace;
    for (std::size_t i = 0; i < 800; ++i) {
        MemoryReference ref;
        ref.size = 4;
        ref.addr = (i % 8) * 32;
        trace.append(ref);
    }
    const auto profile = ReuseProfile::measure(trace, 800, 32, 4);
    ASSERT_TRUE(profile.ok());
    EXPECT_DOUBLE_EQ(profile.value().coldWeight, 1.0);
    EXPECT_DOUBLE_EQ(profile.value().cdfAt(4), 0.0);
}

TEST(ReuseProfile, MeasureRejectsBadArguments)
{
    Trace empty;
    EXPECT_FALSE(ReuseProfile::measure(empty, 0, 32, 8).ok());
    EXPECT_FALSE(ReuseProfile::measure(empty, 10, 48, 8).ok());
    EXPECT_FALSE(ReuseProfile::measure(empty, 10, 32, 0).ok());
    EXPECT_FALSE(ReuseProfile::measure(empty, 10, 32, 8).ok());
}

// ------------------------------------------ ReuseDistanceWorkload

ReuseDistanceWorkload::Config
synthConfig()
{
    ReuseDistanceWorkload::Config config;
    config.profile = ReuseProfile::geometric(32, 0.9, 0.05);
    config.lineBytes = 32;
    return config;
}

TEST(ReuseDistanceWorkload, SynthesisRoundTripsTheProfile)
{
    const auto config = synthConfig();
    ReuseDistanceWorkload gen(config, Rng(41));
    constexpr std::uint64_t kRefs = 60000;
    const auto measured = ReuseProfile::measure(
        gen, kRefs, config.lineBytes, config.profile.depth());
    ASSERT_TRUE(measured.ok());

    // The measured histogram converges to the target (warmup
    // transients and sampling noise keep it from being exact).
    EXPECT_NEAR(measured.value().coldWeight,
                config.profile.coldWeight, 0.03);
    for (std::size_t a : {1u, 2u, 4u, 8u, 16u, 32u})
        EXPECT_NEAR(measured.value().cdfAt(a),
                    config.profile.cdfAt(a), 0.03)
            << "assoc " << a;
}

TEST(ReuseDistanceWorkload, StackSimSeesTheTargetHitRatios)
{
    // The paper-facing verification: a fully-associative LRU cache
    // of size A over the synthesized stream hits exactly when the
    // sampled distance is < A, so the Mattson one-pass surface
    // must measure the profile's CDF at every A.
    const auto config = synthConfig();
    ReuseDistanceWorkload gen(config, Rng(43));

    GeometryGrid grid;
    grid.lineBytes = config.lineBytes;
    grid.setCounts = {1};
    grid.assocs = {1, 2, 4, 8, 16, 32};
    constexpr std::uint64_t kRefs = 50000;
    const GeometryHitSurface surface =
        runStackSim(grid, gen, kRefs);

    for (std::uint32_t assoc : grid.assocs) {
        const double hit_ratio =
            static_cast<double>(surface.stats(1, assoc).hits) /
            static_cast<double>(kRefs);
        EXPECT_NEAR(hit_ratio, config.profile.cdfAt(assoc), 0.03)
            << "assoc " << assoc;
    }
}

TEST(ReuseDistanceWorkload, MeasureAndStackSimAgreeExactly)
{
    // measure() and the stack engine walk the same LRU stack, so
    // on the SAME stream their counts must agree to the reference:
    // hits(assoc) == refs * cdf(assoc) of the measured profile.
    const auto config = synthConfig();
    constexpr std::uint64_t kRefs = 20000;

    ReuseDistanceWorkload for_measure(config, Rng(47));
    const auto measured =
        ReuseProfile::measure(for_measure, kRefs,
                              config.lineBytes,
                              config.profile.depth());
    ASSERT_TRUE(measured.ok());

    ReuseDistanceWorkload for_stack(config, Rng(47));
    GeometryGrid grid;
    grid.lineBytes = config.lineBytes;
    grid.setCounts = {1};
    grid.assocs = {1, 4, 16, 32};
    const GeometryHitSurface surface =
        runStackSim(grid, for_stack, kRefs);

    for (std::uint32_t assoc : grid.assocs) {
        const double expected_hits =
            measured.value().cdfAt(assoc) *
            static_cast<double>(kRefs);
        EXPECT_NEAR(
            static_cast<double>(surface.stats(1, assoc).hits),
            expected_hits, 0.5)
            << "assoc " << assoc;
    }
}

TEST(ReuseDistanceWorkload, ResetAndCloneRewind)
{
    ReuseDistanceWorkload gen(synthConfig(), Rng(53));
    const auto head = gen.drain(1000);
    gen.reset();
    EXPECT_EQ(gen.drain(1000), head);

    gen.drain(123);
    auto copy = gen.clone();
    ASSERT_NE(copy, nullptr);
    EXPECT_EQ(copy->drain(1000), head);
}

TEST(ReuseDistanceWorkload, StoreFractionIsHonoured)
{
    auto config = synthConfig();
    config.storeFraction = 0.0;
    ReuseDistanceWorkload loads_only(config, Rng(59));
    for (int i = 0; i < 2000; ++i)
        EXPECT_EQ(loads_only.next()->kind, RefKind::Load);

    config.storeFraction = 0.5;
    ReuseDistanceWorkload mixed(config, Rng(59));
    std::size_t stores = 0;
    for (int i = 0; i < 20000; ++i)
        stores += mixed.next()->kind == RefKind::Store;
    EXPECT_NEAR(static_cast<double>(stores) / 20000, 0.5, 0.03);
}

} // namespace
} // namespace uatm
