/**
 * @file
 * Unit tests for the execution-time model (Eq. 2) and the mean
 * memory delay equivalence (Sec. 4.5).
 */

#include <gtest/gtest.h>

#include "core/execution_time.hh"

namespace uatm {
namespace {

Machine
baseMachine(double mu_m = 8, double line = 32, double bus = 4)
{
    Machine m;
    m.busWidth = bus;
    m.lineBytes = line;
    m.cycleTime = mu_m;
    return m;
}

TEST(ExecutionTime, Eq2HandComputed)
{
    // E=1000, refs=300, HR=0.9 -> Lambda_m=30, R=30*32=960,
    // alpha=0.5, D=4, mu_m=8, FS (phi=8):
    // X = (1000-30) + 30*8*8 + 0.5*960/4*8 + 0 = 970+1920+960.
    const Workload w =
        Workload::fromHitRatio(1000, 300, 0.9, 32, 0.5);
    const double x = executionTimeFS(w, baseMachine());
    EXPECT_DOUBLE_EQ(x, 970.0 + 1920.0 + 960.0);
}

TEST(ExecutionTime, WriteBuffersRemoveFlushTerm)
{
    const Workload w =
        Workload::fromHitRatio(1000, 300, 0.9, 32, 0.5);
    ExecutionModelOptions wbuf;
    wbuf.writeBuffers = true;
    const double with = executionTimeFS(w, baseMachine(), wbuf);
    const double without = executionTimeFS(w, baseMachine());
    EXPECT_DOUBLE_EQ(without - with, 960.0);
}

TEST(ExecutionTime, WriteAroundTermIsWMuM)
{
    Workload w = Workload::fromHitRatioWriteAround(
        1000, 300, 0.9, 32, 0.0, 0.5);
    // 30 misses: 15 write-arounds, 15 fills.
    const double x = executionTimeFS(w, baseMachine());
    // (1000 - 30) + 15*64 + 0 + 15*8.
    EXPECT_DOUBLE_EQ(x, 970.0 + 960.0 + 120.0);
}

TEST(ExecutionTime, PartialStallScalesWithPhi)
{
    const Workload w =
        Workload::fromHitRatio(1000, 300, 0.9, 32, 0.0);
    const Machine m = baseMachine();
    const double fs = executionTime(w, m, 8.0);
    const double bnl = executionTime(w, m, 2.0);
    // 30 misses * (8-2) * 8 cycles saved.
    EXPECT_DOUBLE_EQ(fs - bnl, 30.0 * 6.0 * 8.0);
}

TEST(ExecutionTime, PipelinedUsesMuP)
{
    const Workload w =
        Workload::fromHitRatio(1000, 300, 0.9, 32, 0.5);
    const Machine piped = baseMachine().withPipelining(2);
    // Per miss: mu_p = 22 for the fill and 0.5*22 for flushes.
    const double x = executionTimeFS(w, piped);
    EXPECT_DOUBLE_EQ(x, 970.0 + 30.0 * 22.0 + 15.0 * 22.0);
}

TEST(ExecutionTime, InstructionFetchTermOptIn)
{
    Workload w = Workload::fromHitRatio(1000, 300, 0.9, 32, 0.0);
    w.instrBytesRead = 320; // 10 I-cache line fills
    ExecutionModelOptions opts;
    const double without = executionTimeFS(w, baseMachine(), opts);
    opts.includeInstructionFetch = true;
    const double with = executionTimeFS(w, baseMachine(), opts);
    EXPECT_DOUBLE_EQ(with - without, 10.0 * 64.0);
}

TEST(ExecutionTime, HigherHitRatioNeverSlower)
{
    const Machine m = baseMachine();
    double previous = 1e18;
    for (double hr : {0.80, 0.85, 0.90, 0.95, 0.99}) {
        const Workload w =
            Workload::fromHitRatio(1e6, 3e5, hr, 32, 0.5);
        const double x = executionTimeFS(w, m);
        EXPECT_LT(x, previous);
        previous = x;
    }
}

TEST(MeanMemoryDelay, MatchesDirectComputation)
{
    const Workload w =
        Workload::fromHitRatio(1000, 300, 0.9, 32, 0.5);
    const Machine m = baseMachine();
    const double x = executionTimeFS(w, m);
    const double expected = (x - 1000.0) / 300.0 + 1.0;
    EXPECT_DOUBLE_EQ(meanMemoryDelay(w, m, m.lineOverBus()),
                     expected);
}

TEST(MeanMemoryDelay, IndependentOfNonMemoryInstructions)
{
    // Sec. 4.5: the equivalence (and so the mean memory delay) is
    // independent of the non-load/store instruction count.
    const Machine m = baseMachine();
    const Workload a =
        Workload::fromHitRatio(1e6, 3e5, 0.9, 32, 0.5);
    const Workload b =
        Workload::fromHitRatio(5e6, 3e5, 0.9, 32, 0.5);
    EXPECT_NEAR(meanMemoryDelay(a, m, 8.0),
                meanMemoryDelay(b, m, 8.0), 1e-12);
}

TEST(MeanMemoryDelay, EqualXImpliesEqualDelay)
{
    // The core equivalence: two systems with the same E and data
    // references have equal X iff equal mean memory delay.  The
    // paper's closed-form HR2 = 2.5 HR - 1.5 holds at L = 2D and
    // mu_m = 2 (Sec. 4.1).
    const Machine narrow2 = baseMachine(2, 8, 4);
    const Machine wide2 = narrow2.withDoubledBus();

    const Workload w1 =
        Workload::fromHitRatio(1e6, 3e5, 0.95, 8, 0.5);
    const Workload w2 = Workload::fromHitRatio(
        1e6, 3e5, 2.5 * 0.95 - 1.5, 8, 0.5);

    const double x1 = executionTimeFS(w1, narrow2);
    const double x2 = executionTimeFS(w2, wide2);
    EXPECT_NEAR(x1, x2, x1 * 1e-12);

    const double d1 =
        meanMemoryDelay(w1, narrow2, narrow2.lineOverBus());
    const double d2 =
        meanMemoryDelay(w2, wide2, wide2.lineOverBus());
    EXPECT_NEAR(d1, d2, 1e-9);
}

TEST(ExecutionTime, RejectsNegativePhi)
{
    const Workload w =
        Workload::fromHitRatio(1000, 300, 0.9, 32, 0.5);
    EXPECT_DEATH(
        { executionTime(w, baseMachine(), -1.0); },
        "non-negative");
}

} // namespace
} // namespace uatm
