/**
 * @file
 * Tests for the victim-cache hierarchy (Jouppi, the paper's
 * reference [7]): swap semantics, dirty-line custody, and the
 * conflict-miss recovery that makes it a cheap hit-ratio buy.
 */

#include <gtest/gtest.h>

#include "cache/victim.hh"
#include "core/tradeoff.hh"
#include "trace/generators.hh"

namespace uatm {
namespace {

MemoryReference
load(Addr addr)
{
    return MemoryReference{addr, 0, 4, RefKind::Load};
}

MemoryReference
store(Addr addr)
{
    return MemoryReference{addr, 0, 4, RefKind::Store};
}

CacheConfig
directMapped(std::uint64_t size = 128)
{
    CacheConfig config;
    config.sizeBytes = size; // 4 sets x 1 way x 32B by default
    config.assoc = 1;
    config.lineBytes = 32;
    return config;
}

// ------------------------------------------------------------- basics

TEST(VictimCache, RejectsZeroEntries)
{
    const Status status = VictimConfig{0}.validate();
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.code(), ErrorCode::InvalidArgument);
    EXPECT_NE(status.message().find("at least one"),
              std::string::npos);
}

TEST(VictimCache, EvictedLineLandsInBuffer)
{
    VictimCachedHierarchy cache(directMapped(), VictimConfig{4});
    cache.access(load(0x000)); // set 0
    cache.access(load(0x080)); // set 0: evicts 0x000 into buffer
    EXPECT_FALSE(cache.mainCache().probe(0x000));
    EXPECT_TRUE(cache.probe(0x000)); // still in the hierarchy
    EXPECT_EQ(cache.victimStats().insertions, 1u);
}

TEST(VictimCache, VictimHitSwapsBack)
{
    VictimCachedHierarchy cache(directMapped(), VictimConfig{4});
    cache.access(load(0x000));
    cache.access(load(0x080));
    const auto out = cache.access(load(0x004)); // victim hit
    EXPECT_FALSE(out.hit);  // not a main hit
    EXPECT_FALSE(out.fill); // and no memory traffic
    EXPECT_EQ(cache.victimStats().victimHits, 1u);
    // The line is back in the main cache...
    EXPECT_TRUE(cache.mainCache().probe(0x000));
    // ...and the displaced conflict partner sits in the buffer.
    EXPECT_TRUE(cache.probe(0x080));
    EXPECT_FALSE(cache.mainCache().probe(0x080));
}

TEST(VictimCache, PingPongConflictsBecomeVictimHits)
{
    // The Jouppi case: two lines in one direct-mapped set.  After
    // warmup, every access is a victim hit, none reaches memory.
    VictimCachedHierarchy cache(directMapped(), VictimConfig{4});
    cache.access(load(0x000));
    cache.access(load(0x080));
    const auto fills_before = cache.mainCache().stats().fills;
    for (int i = 0; i < 50; ++i) {
        cache.access(load(i % 2 ? 0x080 : 0x000));
    }
    EXPECT_EQ(cache.mainCache().stats().fills, fills_before);
    EXPECT_EQ(cache.victimStats().victimHits, 50u);
}

TEST(VictimCache, DirtyStateSurvivesTheRoundTrip)
{
    VictimCachedHierarchy cache(directMapped(), VictimConfig{4});
    cache.access(store(0x000)); // dirty
    cache.access(load(0x080));  // dirty line parked in buffer
    cache.access(load(0x004));  // swapped back
    EXPECT_TRUE(cache.mainCache().probeDirty(0x000));
}

TEST(VictimCache, DirtyEvictionIsNotFlushedImmediately)
{
    VictimCachedHierarchy cache(directMapped(), VictimConfig{4});
    cache.access(store(0x000));
    const auto out = cache.access(load(0x080));
    EXPECT_FALSE(out.writeback); // parked, not flushed
    EXPECT_EQ(cache.victimStats().writebacks, 0u);
}

TEST(VictimCache, OverflowFlushesDirtyLru)
{
    VictimCachedHierarchy cache(directMapped(), VictimConfig{1});
    cache.access(store(0x000));
    cache.access(load(0x080)); // dirty 0x000 -> buffer (1 entry)
    cache.access(load(0x100)); // 0x080 -> buffer, 0x000 flushed
    EXPECT_EQ(cache.victimStats().writebacks, 1u);
    EXPECT_FALSE(cache.probe(0x000));
}

TEST(VictimCache, CleanOverflowIsSilent)
{
    VictimCachedHierarchy cache(directMapped(), VictimConfig{1});
    cache.access(load(0x000));
    cache.access(load(0x080));
    cache.access(load(0x100));
    EXPECT_EQ(cache.victimStats().writebacks, 0u);
}

TEST(VictimCache, ResetClearsEverything)
{
    VictimCachedHierarchy cache(directMapped(), VictimConfig{4});
    cache.access(load(0x000));
    cache.access(load(0x080));
    cache.reset();
    EXPECT_FALSE(cache.probe(0x000));
    EXPECT_EQ(cache.victimStats().insertions, 0u);
    EXPECT_EQ(cache.mainCache().stats().accesses, 0u);
}

// ----------------------------------------------------------- ratios

TEST(VictimCache, HitRatioAccountingSeparatesLevels)
{
    VictimCachedHierarchy cache(directMapped(), VictimConfig{4});
    cache.access(load(0x000)); // miss
    cache.access(load(0x004)); // main hit
    cache.access(load(0x080)); // miss, evicts
    cache.access(load(0x008)); // victim hit
    EXPECT_NEAR(cache.combinedHitRatio(), 2.0 / 4.0, 1e-12);
    EXPECT_NEAR(cache.mainHitRatio(), 1.0 / 4.0, 1e-12);
}

// --------------------------------------------- hit ratio as currency

TEST(VictimCache, RecoversConflictMissesOnRealWorkloads)
{
    // A direct-mapped 8K cache plus a small victim buffer should
    // close part of the gap to 2-way associativity — the classic
    // Jouppi result, priced in the paper's currency.
    auto run_direct = [](std::uint32_t victim_entries) {
        CacheConfig config = directMapped(8 * 1024);
        VictimCachedHierarchy cache(config,
                                    VictimConfig{victim_entries});
        auto workload = Spec92Profile::make("doduc", 99);
        for (int i = 0; i < 40000; ++i)
            cache.access(*workload->next());
        return cache.combinedHitRatio();
    };
    auto run_two_way = [] {
        CacheConfig config;
        config.sizeBytes = 8 * 1024;
        config.assoc = 2;
        config.lineBytes = 32;
        SetAssocCache cache(config);
        auto workload = Spec92Profile::make("doduc", 99);
        for (int i = 0; i < 40000; ++i)
            cache.access(*workload->next());
        return cache.stats().hitRatio();
    };

    const double plain = run_direct(1) - 0.0; // tiny buffer
    const double with_victim = run_direct(8);
    const double two_way = run_two_way();

    EXPECT_GT(with_victim, plain);
    // An 8-entry buffer recovers a meaningful part of the
    // direct-mapped vs 2-way gap.
    EXPECT_GT(with_victim, plain + 0.3 * (two_way - plain) -
                               0.01);
}

TEST(VictimCache, DeltaHrPricesAgainstBusWidth)
{
    // The methodology's point: the victim buffer's dHR can be
    // compared with what doubling the bus buys (Eq. 6).
    CacheConfig config = directMapped(8 * 1024);

    VictimCachedHierarchy with(config, VictimConfig{8});
    SetAssocCache without(config);
    auto w1 = Spec92Profile::make("hydro2d", 7);
    auto w2 = Spec92Profile::make("hydro2d", 7);
    for (int i = 0; i < 40000; ++i) {
        with.access(*w1->next());
        without.access(*w2->next());
    }
    const double delta_hr =
        with.combinedHitRatio() - without.stats().hitRatio();
    EXPECT_GT(delta_hr, 0.0);

    TradeoffContext ctx;
    ctx.machine.busWidth = 4;
    ctx.machine.lineBytes = 32;
    ctx.machine.cycleTime = 8;
    const double bus_worth = hitRatioTraded(
        missFactorDoubleBus(ctx), without.stats().hitRatio());
    // Both are positive hit-ratio quantities on the same scale —
    // the comparison is meaningful and finite.
    EXPECT_GT(bus_worth, 0.0);
    EXPECT_LT(delta_hr, 1.0);
}

} // namespace
} // namespace uatm
