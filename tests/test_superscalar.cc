/**
 * @file
 * Unit and property tests for the multiple-issue extension
 * (the paper's announced future work, Sec. 6).
 */

#include <gtest/gtest.h>

#include "core/superscalar.hh"

namespace uatm {
namespace {

TradeoffContext
context(double mu_m, double line = 32)
{
    TradeoffContext ctx;
    ctx.machine.busWidth = 4;
    ctx.machine.lineBytes = line;
    ctx.machine.cycleTime = mu_m;
    ctx.alpha = 0.5;
    return ctx;
}

SuperscalarModel
width(double k)
{
    SuperscalarModel m;
    m.issueWidth = k;
    return m;
}

TEST(Superscalar, WidthOneRecoversThePaperModel)
{
    const Workload w =
        Workload::fromHitRatio(1e6, 3e5, 0.95, 32, 0.5);
    const Machine m = context(8).machine;
    EXPECT_DOUBLE_EQ(
        executionTimeSuperscalar(w, m, 8.0, width(1)),
        executionTime(w, m, 8.0));
    EXPECT_DOUBLE_EQ(
        missFactorDoubleBusSuperscalar(context(8), width(1)),
        missFactorDoubleBus(context(8)));
}

TEST(Superscalar, ExecutionTimeHandComputed)
{
    // E=1000, refs=300, HR=0.9 -> Lambda_m=30, base=(970)/2,
    // memory terms as in the scalar model.
    const Workload w =
        Workload::fromHitRatio(1000, 300, 0.9, 32, 0.5);
    const Machine m = context(8).machine;
    const double scalar = executionTimeFS(w, m);
    const double super = executionTimeSuperscalar(
        w, m, m.lineOverBus(), width(2));
    EXPECT_DOUBLE_EQ(scalar - super, 970.0 / 2.0);
}

TEST(Superscalar, WiderIssueNeverSlower)
{
    const Workload w =
        Workload::fromHitRatio(1e6, 3e5, 0.95, 32, 0.5);
    const Machine m = context(8).machine;
    double previous = 1e18;
    for (double k : {1.0, 2.0, 4.0, 8.0}) {
        const double x = executionTimeSuperscalar(
            w, m, m.lineOverBus(), width(k));
        EXPECT_LT(x, previous);
        previous = x;
    }
}

TEST(Superscalar, MissFactorDecreasesTowardCostRatio)
{
    // r_k = (A - 1/k)/(B - 1/k): as the displaced hit time 1/k
    // shrinks, r decreases monotonically toward A/B — a wider
    // issue machine trades slightly less hit ratio per feature.
    const TradeoffContext ctx = context(8);
    const Machine wide = ctx.machine.withDoubledBus();
    const double floor =
        perMissCost(ctx.machine, ctx.machine.lineOverBus(),
                    ctx.alpha) /
        perMissCost(wide, wide.lineOverBus(), ctx.alpha);
    double previous = 1e18;
    for (double k : {1.0, 2.0, 4.0, 8.0}) {
        const double r =
            missFactorDoubleBusSuperscalar(ctx, width(k));
        EXPECT_LT(r, previous) << k;
        EXPECT_GT(r, floor) << k;
        previous = r;
    }
}

TEST(Superscalar, InfiniteIssueLimitIsCostRatio)
{
    // k -> infinity: r -> A/B.
    const TradeoffContext ctx = context(8);
    const Machine wide = ctx.machine.withDoubledBus();
    const double a =
        perMissCost(ctx.machine, ctx.machine.lineOverBus(),
                    ctx.alpha);
    const double b =
        perMissCost(wide, wide.lineOverBus(), ctx.alpha);
    EXPECT_NEAR(missFactorDoubleBusSuperscalar(ctx, width(1e9)),
                a / b, 1e-6);
}

TEST(Superscalar, CrossoverIsIssueWidthInvariant)
{
    // r_pipe = r_bus reduces to B_pipe = B_bus; the hit time
    // cancels, so the crossover is the same at every k.
    const TradeoffContext ctx = context(8, 32);
    const auto at1 = pipelinedCrossoverSuperscalar(
        ctx, 2.0, width(1), 2.0, 100.0);
    const auto at4 = pipelinedCrossoverSuperscalar(
        ctx, 2.0, width(4), 2.0, 100.0);
    const auto at16 = pipelinedCrossoverSuperscalar(
        ctx, 2.0, width(16), 2.0, 100.0);
    ASSERT_TRUE(at1.has_value());
    ASSERT_TRUE(at4.has_value());
    ASSERT_TRUE(at16.has_value());
    EXPECT_NEAR(*at4, *at1, 1e-6);
    EXPECT_NEAR(*at16, *at1, 1e-6);
    // And the k = 1 crossover matches the base model's.
    const auto base = crossoverCycleTime(
        ctx, TradeFeature::PipelinedMemory,
        TradeFeature::DoubleBus, 2.0, 1.0, 2.0, 100.0);
    ASSERT_TRUE(base.has_value());
    EXPECT_NEAR(*at1, *base, 1e-6);
}

TEST(Superscalar, EquivalencePropertyStillHolds)
{
    // The Eq. 6 chain with r_k still equalises X_k.
    for (double k : {2.0, 4.0}) {
        const TradeoffContext ctx = context(6, 16);
        const double r =
            missFactorDoubleBusSuperscalar(ctx, width(k));
        const double hr1 = 0.95;
        const double hr2 = equivalentHitRatio(r, hr1);

        const Workload w1 =
            Workload::fromHitRatio(1e6, 3e5, hr1, 16, ctx.alpha);
        const Workload w2 =
            Workload::fromHitRatio(1e6, 3e5, hr2, 16, ctx.alpha);
        const double x1 = executionTimeSuperscalar(
            w1, ctx.machine, ctx.machine.lineOverBus(), width(k));
        const Machine wide = ctx.machine.withDoubledBus();
        const double x2 = executionTimeSuperscalar(
            w2, wide, wide.lineOverBus(), width(k));
        EXPECT_NEAR(x1, x2, x1 * 1e-10) << "k = " << k;
    }
}

TEST(Superscalar, RejectsWidthBelowOne)
{
    EXPECT_EXIT({ width(0.5).validate(); },
                ::testing::ExitedWithCode(EXIT_FAILURE),
                "issue width");
}

TEST(Superscalar, RejectsCostBelowHitTime)
{
    // With mu_m barely above the hit time the denominator of the
    // generalised Eq. 3 can cross zero; that is a model-validity
    // error, not a number.
    Machine m;
    m.busWidth = 8;
    m.lineBytes = 8;
    m.cycleTime = 1.0;
    EXPECT_EXIT(
        {
            missFactorSuperscalar(m, 1.0, 0.0, m, 1.0, 0.0,
                                  width(1));
        },
        ::testing::ExitedWithCode(EXIT_FAILURE), "per-miss");
}

} // namespace
} // namespace uatm
