/**
 * @file
 * Unit tests for the single-pass stack-distance engine
 * (cache/stack_sim): grid validation, exact agreement with
 * SetAssocCache on individual geometries under both write
 * policies, warmup-window equality with runCacheSim, exhausted
 * sources, and the dispatch eligibility predicate.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cache/stack_sim.hh"
#include "cache/sweep.hh"
#include "trace/generators.hh"

namespace uatm {
namespace {

void
expectStatsEqual(const CacheStats &got, const CacheStats &want,
                 const std::string &label)
{
    EXPECT_EQ(got.accesses, want.accesses) << label;
    EXPECT_EQ(got.loads, want.loads) << label;
    EXPECT_EQ(got.stores, want.stores) << label;
    EXPECT_EQ(got.hits, want.hits) << label;
    EXPECT_EQ(got.misses, want.misses) << label;
    EXPECT_EQ(got.loadMisses, want.loadMisses) << label;
    EXPECT_EQ(got.storeMisses, want.storeMisses) << label;
    EXPECT_EQ(got.fills, want.fills) << label;
    EXPECT_EQ(got.writebacks, want.writebacks) << label;
    EXPECT_EQ(got.storesToMemory, want.storesToMemory) << label;
    EXPECT_EQ(got.storesToMemoryBytes, want.storesToMemoryBytes)
        << label;
    EXPECT_EQ(got.coldMisses, want.coldMisses) << label;
    EXPECT_EQ(got.prefetchInserts, want.prefetchInserts) << label;
    EXPECT_EQ(got.instructions, want.instructions) << label;
}

std::unique_ptr<TraceSource>
workingSetSource(std::uint64_t seed)
{
    WorkingSetGenerator::Config ws;
    ws.stackDepth = 200;
    ws.decay = 0.97;
    ws.coldFraction = 0.04;
    ws.storeFraction = 0.35;
    return std::make_unique<WorkingSetGenerator>(ws, Rng(seed));
}

TEST(GeometryGridTest, ValidateRejectsBadShapes)
{
    GeometryGrid grid;
    grid.setCounts = {64};
    grid.assocs = {2};
    EXPECT_TRUE(grid.validate().ok());

    GeometryGrid empty;
    EXPECT_FALSE(empty.validate().ok());

    GeometryGrid bad_line = grid;
    bad_line.lineBytes = 48;
    EXPECT_FALSE(bad_line.validate().ok());

    GeometryGrid bad_sets = grid;
    bad_sets.setCounts = {64, 96};
    EXPECT_FALSE(bad_sets.validate().ok());

    GeometryGrid bad_assoc = grid;
    bad_assoc.assocs = {2, 0};
    EXPECT_FALSE(bad_assoc.validate().ok());

    GeometryGrid around = grid;
    around.writeMiss = WriteMissPolicy::WriteAround;
    EXPECT_FALSE(around.validate().ok());
}

TEST(GeometryGridTest, AddConfigDeduplicates)
{
    GeometryGrid grid;
    CacheConfig config;
    config.sizeBytes = 8 * 1024;
    config.assoc = 2;
    config.lineBytes = 32;
    grid.addConfig(config);
    grid.addConfig(config);
    config.sizeBytes = 16 * 1024; // same set count at 4-way
    config.assoc = 4;
    grid.addConfig(config);
    EXPECT_EQ(grid.setCounts.size(), 1u);
    EXPECT_EQ(grid.assocs.size(), 2u);
}

TEST(StackSimulatorTest, RejectsInvalidGrid)
{
    GeometryGrid grid; // no cells
    EXPECT_THROW(StackSimulator{grid}, StatusError);
}

TEST(StackSimulatorTest, MatchesSetAssocCachePerGeometry)
{
    std::vector<CacheConfig> configs;
    for (std::uint64_t size : {1024ull, 4096ull, 16384ull}) {
        for (std::uint32_t assoc : {1u, 2u, 8u}) {
            CacheConfig config;
            config.sizeBytes = size;
            config.assoc = assoc;
            config.lineBytes = 32;
            ASSERT_TRUE(config.validate().ok());
            configs.push_back(config);
        }
    }
    // Fully associative: one set holding every line.
    CacheConfig full;
    full.sizeBytes = 1024;
    full.lineBytes = 32;
    full.assoc = 32;
    ASSERT_EQ(full.numSets(), 1u);
    configs.push_back(full);

    GeometryGrid grid;
    for (const CacheConfig &config : configs)
        grid.addConfig(config);

    StackSimulator sim(grid);
    std::vector<SetAssocCache> caches;
    caches.reserve(configs.size());
    for (const CacheConfig &config : configs)
        caches.emplace_back(config);

    auto source = workingSetSource(17);
    for (int i = 0; i < 6000; ++i) {
        const auto ref = source->next();
        ASSERT_TRUE(ref.has_value());
        sim.access(*ref);
        for (SetAssocCache &cache : caches)
            cache.access(*ref);
    }

    const GeometryHitSurface surface = sim.surface();
    for (std::size_t i = 0; i < configs.size(); ++i) {
        const auto stats = surface.statsFor(configs[i]);
        ASSERT_TRUE(stats.ok()) << configs[i].describe();
        expectStatsEqual(stats.value(), caches[i].stats(),
                         configs[i].describe());
    }
}

TEST(StackSimulatorTest, MatchesWriteThroughCache)
{
    CacheConfig config;
    config.sizeBytes = 4096;
    config.assoc = 2;
    config.lineBytes = 32;
    config.write = WritePolicy::WriteThrough;

    GeometryGrid grid;
    grid.write = WritePolicy::WriteThrough;
    grid.addConfig(config);

    StackSimulator sim(grid);
    SetAssocCache cache(config);
    auto source = workingSetSource(23);
    for (int i = 0; i < 5000; ++i) {
        const auto ref = source->next();
        ASSERT_TRUE(ref.has_value());
        sim.access(*ref);
        cache.access(*ref);
    }
    const auto stats = sim.surface().statsFor(config);
    ASSERT_TRUE(stats.ok());
    expectStatsEqual(stats.value(), cache.stats(),
                     "write-through");
    EXPECT_EQ(stats.value().writebacks, 0u);
}

TEST(RunStackSimTest, WarmupWindowMatchesRunCacheSim)
{
    CacheConfig config;
    config.sizeBytes = 8 * 1024;
    config.assoc = 4;
    config.lineBytes = 32;
    GeometryGrid grid;
    grid.addConfig(config);

    auto a = workingSetSource(31);
    auto b = workingSetSource(31);
    const GeometryHitSurface surface =
        runStackSim(grid, *a, 9000, 1500);
    const CacheRunResult run = runCacheSim(config, *b, 9000, 1500);
    const auto stats = surface.statsFor(config);
    ASSERT_TRUE(stats.ok());
    expectStatsEqual(stats.value(), run.stats, "warmup window");
}

TEST(RunStackSimTest, ExhaustedSourceMatchesPerGeometryRun)
{
    // A finite Trace shorter than the requested window.
    std::vector<MemoryReference> refs;
    Rng rng(5);
    for (int i = 0; i < 700; ++i) {
        MemoryReference ref;
        ref.addr = rng.nextBelow(1 << 14) & ~3ull;
        ref.size = 4;
        ref.kind =
            rng.nextBool(0.4) ? RefKind::Store : RefKind::Load;
        ref.gap = static_cast<std::uint32_t>(rng.nextBelow(4));
        refs.push_back(ref);
    }
    CacheConfig config;
    config.sizeBytes = 2048;
    config.assoc = 2;
    config.lineBytes = 16;
    GeometryGrid grid;
    grid.lineBytes = 16;
    grid.addConfig(config);

    Trace a(refs);
    Trace b(refs);
    const GeometryHitSurface surface =
        runStackSim(grid, a, 5000, 100);
    const CacheRunResult run = runCacheSim(config, b, 5000, 100);
    const auto stats = surface.statsFor(config);
    ASSERT_TRUE(stats.ok());
    expectStatsEqual(stats.value(), run.stats, "exhausted trace");
}

TEST(GeometryHitSurfaceTest, StatsForRejectsForeignConfigs)
{
    CacheConfig config;
    config.sizeBytes = 8 * 1024;
    config.assoc = 2;
    config.lineBytes = 32;
    GeometryGrid grid;
    grid.addConfig(config);
    auto source = workingSetSource(3);
    const GeometryHitSurface surface =
        runStackSim(grid, *source, 500);

    CacheConfig other_line = config;
    other_line.lineBytes = 64;
    other_line.assoc = 2;
    EXPECT_FALSE(surface.statsFor(other_line).ok());

    CacheConfig other_cell = config;
    other_cell.assoc = 4; // cell not in the grid
    EXPECT_FALSE(surface.statsFor(other_cell).ok());

    CacheConfig fifo = config;
    fifo.replacement = ReplacementKind::FIFO;
    EXPECT_FALSE(surface.statsFor(fifo).ok());

    CacheConfig invalid = config;
    invalid.sizeBytes = 5000;
    EXPECT_FALSE(surface.statsFor(invalid).ok());
}

TEST(StackSimEligibilityTest, ReportsTheDisqualifyingProperty)
{
    CacheConfig config;
    EXPECT_EQ(stackSimIneligibleReason(config), nullptr);

    config.write = WritePolicy::WriteThrough;
    EXPECT_EQ(stackSimIneligibleReason(config), nullptr);

    CacheConfig fifo;
    fifo.replacement = ReplacementKind::FIFO;
    EXPECT_NE(stackSimIneligibleReason(fifo), nullptr);

    CacheConfig around;
    around.writeMiss = WriteMissPolicy::WriteAround;
    EXPECT_NE(stackSimIneligibleReason(around), nullptr);
}

TEST(SweepDispatchTest, CountersTrackFastAndDeclinedSweeps)
{
    resetSweepDispatchStats();
    CacheConfig base;
    base.lineBytes = 32;
    auto source = workingSetSource(11);
    const std::vector<std::uint64_t> sizes = {4096, 8192};

    sweepCacheSize(base, *source, sizes, 2000);
    SweepDispatchCounters counters = sweepDispatchCounters();
    EXPECT_EQ(counters.fastPath, 1u);
    EXPECT_EQ(counters.declined, 0u);

    CacheConfig fifo = base;
    fifo.replacement = ReplacementKind::FIFO;
    sweepCacheSize(fifo, *source, sizes, 2000);
    counters = sweepDispatchCounters();
    EXPECT_EQ(counters.fastPath, 1u);
    EXPECT_EQ(counters.declined, 1u);

    sweepLineSize(base, *source, {16, 32}, 2000);
    counters = sweepDispatchCounters();
    EXPECT_EQ(counters.perPoint, 1u);
    resetSweepDispatchStats();
}

TEST(SweepFastPathTest, SweepCacheSizeMatchesBruteForce)
{
    CacheConfig base;
    base.assoc = 2;
    base.lineBytes = 32;
    const std::vector<std::uint64_t> sizes = {1024, 4096, 16384,
                                              65536};
    auto fast_source = workingSetSource(41);
    const auto fast =
        sweepCacheSize(base, *fast_source, sizes, 8000, 800);

    // Brute force through a config the dispatcher must decline on
    // (FIFO is LRU-identical only trivially, so instead rerun each
    // point directly).
    ASSERT_EQ(fast.size(), sizes.size());
    auto brute_source = workingSetSource(41);
    for (std::size_t i = 0; i < sizes.size(); ++i) {
        CacheConfig config = base;
        config.sizeBytes = sizes[i];
        const CacheRunResult run =
            runCacheSim(config, *brute_source, 8000, 800);
        EXPECT_EQ(fast[i].value, sizes[i]);
        EXPECT_EQ(fast[i].hitRatio, run.hitRatio()) << sizes[i];
        EXPECT_EQ(fast[i].missRatio, run.missRatio()) << sizes[i];
        EXPECT_EQ(fast[i].flushRatio, run.flushRatio()) << sizes[i];
    }
}

} // namespace
} // namespace uatm
