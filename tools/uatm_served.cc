/**
 * @file
 * uatm-served: the sweep daemon.
 *
 * Binds the serve::Server (docs/SERVING.md) on loopback and runs
 * until SIGINT/SIGTERM:
 *
 *   uatm_served [options]
 *
 *     --bind=<addr>         bind address (default 127.0.0.1)
 *     --port=<n>            port; 0 = ephemeral (default 0)
 *     --port-file=<path>    write the bound port here, for
 *                           scripts that asked for an ephemeral
 *                           port (written atomically enough for
 *                           CI: port + newline, then flush)
 *     --threads=<n>         worker threads per sweep; 0 = all
 *                           hardware threads (default 0)
 *     --max-points=<n>      per-request point cap -> 413
 *     --max-queue=<n>       admitted-request cap -> 429
 *     --cache-capacity=<n>  in-memory point cache entries
 *     --cache-dir=<path>    on-disk point cache (default: memory
 *                           only)
 *
 * Exit status: 0 on a clean signal-driven shutdown, 1 when the
 * server cannot start, 2 on bad usage.
 */

#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <thread>

#include "serve/server.hh"
#include "util/options.hh"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void
onSignal(int)
{
    g_stop = 1;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace uatm;

    OptionParser options("uatm_served",
                         "Serve sweep scenarios over HTTP.");
    options.addString("bind", "127.0.0.1", "bind address");
    options.addInt("port", 0, "port (0 = ephemeral)");
    options.addString("port-file", "",
                      "write the bound port to this file");
    options.addInt("threads", 0,
                   "worker threads per sweep (0 = all cores)");
    options.addInt("max-points", 4096,
                   "per-request point cap (413 beyond it)");
    options.addInt("max-queue", 8,
                   "admitted-request cap (429 beyond it)");
    options.addInt("cache-capacity", 1 << 16,
                   "in-memory point cache entries");
    options.addString("cache-dir", "",
                      "on-disk point cache directory");

    bool helped = false;
    const Status parsed = options.tryParse(argc, argv, &helped);
    if (!parsed.ok()) {
        std::fprintf(stderr, "uatm_served: %s\n%s",
                     parsed.message().c_str(),
                     options.usage().c_str());
        return 2;
    }
    if (helped)
        return 0;

    serve::ServerOptions server_options;
    server_options.http.bindAddress = options.getString("bind");
    server_options.http.port =
        std::uint16_t(options.getInt("port"));
    server_options.service.threads =
        unsigned(options.getInt("threads"));
    server_options.service.maxPointsPerRequest =
        std::size_t(options.getInt("max-points"));
    server_options.service.maxQueueDepth =
        std::size_t(options.getInt("max-queue"));
    server_options.service.cache.capacity =
        std::size_t(options.getInt("cache-capacity"));
    server_options.service.cache.dir =
        options.getString("cache-dir");

    serve::Server server(server_options);
    const Status started = server.start();
    if (!started.ok()) {
        std::fprintf(stderr, "uatm_served: %s\n",
                     started.message().c_str());
        return 1;
    }

    const std::string port_file = options.getString("port-file");
    if (!port_file.empty()) {
        std::ofstream out(port_file, std::ios::trunc);
        if (!(out << server.port() << "\n" << std::flush)) {
            std::fprintf(stderr,
                         "uatm_served: cannot write port file "
                         "'%s'\n",
                         port_file.c_str());
            server.stop();
            return 1;
        }
    }
    std::printf("uatm_served: listening on %s:%u (threads=%u, "
                "max-points=%zu, max-queue=%zu, cache=%zu%s%s)\n",
                server_options.http.bindAddress.c_str(),
                unsigned(server.port()),
                server.service().options().threads,
                server.service().options().maxPointsPerRequest,
                server.service().options().maxQueueDepth,
                server.service().options().cache.capacity,
                server_options.service.cache.dir.empty()
                    ? ""
                    : ", disk=",
                server_options.service.cache.dir.c_str());
    std::fflush(stdout);

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);
    while (!g_stop) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(50));
    }

    std::printf("uatm_served: shutting down\n");
    server.stop();
    return 0;
}
