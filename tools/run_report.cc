/**
 * @file
 * Scaling-diagnosis report over runner telemetry.
 *
 * Consumes the RUNNER_*.json telemetry documents written by an
 * instrumented exp::Runner (UATM_RUNNER_TELEMETRY=1, UATM_TRACE,
 * or RunnerOptions::telemetry) and prints, per run, the per-worker
 * utilization bars, the load-imbalance index, parallel efficiency,
 * the per-worker hardware counter lanes (schema v2), and the top-K
 * slowest points; given runs at two or more distinct thread counts
 * it also fits Amdahl's law, reports the serial fraction and the
 * asymptotic speedup limit, and analyses the counter trend (IPC /
 * misses-per-instruction vs thread count — the false-sharing and
 * scheduler-pressure heuristics of exp/report.hh):
 *
 *   run_report [options] <telemetry.json>...
 *
 *     --top=<k>        slowest points to list per run (default 5)
 *     --bench=<path>   also fold a BENCH_sweep_parallel.json into
 *                      the Amdahl fit: benchmarks whose name ends
 *                      in /t<n> contribute (n, median ns/rep)
 *     --format=<f>     "text" (default) or "json": emit the same
 *                      diagnosis machine-readably on stdout
 *
 * Exit status: 0 = report printed, 2 = bad usage or no readable
 * telemetry input.  CI runs this over the perf-smoke artifacts;
 * see docs/OBSERVABILITY.md.
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "exp/report.hh"
#include "exp/telemetry.hh"
#include "obs/bench.hh"
#include "obs/json.hh"

namespace {

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--top=<k>] [--bench=<path>] "
                 "[--format=text|json] <telemetry.json>...\n",
                 argv0);
    return 2;
}

/**
 * Thread count encoded in a sweep benchmark name ("sweep/.../t8"
 * -> 8); 0 when the name does not follow the convention.
 */
unsigned
threadsFromBenchName(const std::string &name)
{
    const std::size_t slash = name.rfind('/');
    if (slash == std::string::npos ||
        slash + 2 > name.size() - 1 || name[slash + 1] != 't')
        return 0;
    const std::string digits = name.substr(slash + 2);
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") !=
            std::string::npos)
        return 0;
    return static_cast<unsigned>(std::atoi(digits.c_str()));
}

/** One successfully loaded telemetry input. */
struct LoadedRun
{
    std::string file;
    uatm::exp::RunnerTelemetry telemetry;
};

/** The full diagnosis as one JSON document (--format=json). */
std::string
reportJson(const std::vector<LoadedRun> &runs, std::size_t topK,
           const uatm::exp::CounterScaling &scaling,
           const uatm::exp::AmdahlFit &fit,
           const std::vector<std::pair<unsigned, double>>
               &samples)
{
    using namespace uatm;
    obs::JsonWriter w;
    w.beginObject()
        .keyValue("schema_version", 1)
        .keyValue("kind", "run_report");

    w.key("runs").beginArray();
    for (const LoadedRun &run : runs) {
        const exp::RunDiagnosis d =
            exp::diagnoseRun(run.telemetry, topK);
        w.beginObject()
            .keyValue("file", run.file)
            .keyValue("scenario", run.telemetry.scenario)
            .keyValue("threads_used", d.threadsUsed)
            .keyValue("points", d.pointCount)
            .keyValue("wall_ns", d.wallNs)
            .keyValue("load_imbalance", d.loadImbalance)
            .keyValue("parallel_efficiency",
                      d.parallelEfficiency)
            .keyValue("counters_available",
                      d.countersAvailable);
        w.key("workers").beginArray();
        for (std::size_t i = 0; i < d.workerUtilization.size();
             ++i) {
            w.beginObject()
                .keyValue("worker", i)
                .keyValue("utilization",
                          d.workerUtilization[i]);
            if (i < d.workerCounters.size()) {
                const obs::PerfCounterValues &c =
                    d.workerCounters[i];
                if (c.available) {
                    if (c.has(obs::PerfEvent::Instructions) &&
                        c.has(obs::PerfEvent::Cycles))
                        w.keyValue("ipc", c.ipc());
                    if (c.has(obs::PerfEvent::CacheMisses) &&
                        c.has(obs::PerfEvent::CacheReferences))
                        w.keyValue("cache_miss_rate",
                                   c.cacheMissRate());
                    if (c.has(obs::PerfEvent::CacheMisses) &&
                        c.has(obs::PerfEvent::Instructions))
                        w.keyValue(
                            "mpki",
                            c.missesPerKiloInstruction());
                }
                w.key("counters");
                c.writeJson(w);
            }
            w.endObject();
        }
        w.endArray();
        w.key("slowest_points").beginArray();
        for (const exp::PointTiming &p : d.slowestPoints) {
            w.beginObject()
                .keyValue("index", p.index)
                .keyValue("worker", p.worker)
                .keyValue("ns", p.durationNs)
                .keyValue("label", p.label)
                .endObject();
        }
        w.endArray();
        w.endObject();
    }
    w.endArray();

    w.key("counter_scaling").beginObject();
    w.keyValue("ok", scaling.ok)
        .keyValue("false_sharing_suspected",
                  scaling.falseSharingSuspected)
        .keyValue("migration_heavy", scaling.migrationHeavy)
        .keyValue("context_switch_heavy",
                  scaling.contextSwitchHeavy)
        .keyValue("verdict", scaling.verdict);
    w.key("points").beginArray();
    for (const exp::CounterScalingPoint &p : scaling.points) {
        w.beginObject().keyValue("threads", p.threads);
        if (p.hasIpc)
            w.keyValue("ipc", p.ipc);
        if (p.hasMpki)
            w.keyValue("mpki", p.mpki);
        if (p.hasMigrations)
            w.keyValue("migrations_per_worker",
                       p.migrationsPerWorker);
        if (p.hasCtxSwitches)
            w.keyValue("ctx_switches_per_second",
                       p.ctxSwitchesPerSecond);
        w.endObject();
    }
    w.endArray();
    w.endObject();

    w.key("amdahl").beginObject().keyValue("ok", fit.ok);
    if (fit.ok) {
        w.keyValue("serial_fraction", fit.serialFraction)
            .keyValue("t1_ns", fit.t1Ns);
    }
    w.key("samples").beginArray();
    for (const auto &[threads, wallNs] : samples) {
        w.beginObject()
            .keyValue("threads", threads == 0 ? 1u : threads)
            .keyValue("wall_ns", wallNs)
            .endObject();
    }
    w.endArray();
    w.endObject();

    w.endObject();
    return w.str();
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace uatm;

    std::size_t topK = 5;
    std::string benchPath;
    bool jsonFormat = false;
    std::vector<std::string> files;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--top=", 0) == 0) {
            const long parsed = std::atol(arg.c_str() + 6);
            if (parsed < 0) {
                std::fprintf(stderr,
                             "run_report: invalid --top value "
                             "'%s'\n",
                             arg.c_str() + 6);
                return 2;
            }
            topK = static_cast<std::size_t>(parsed);
        } else if (arg.rfind("--bench=", 0) == 0) {
            benchPath = arg.substr(8);
        } else if (arg.rfind("--format=", 0) == 0) {
            const std::string format = arg.substr(9);
            if (format == "json") {
                jsonFormat = true;
            } else if (format != "text") {
                std::fprintf(stderr,
                             "run_report: invalid --format "
                             "value '%s' (text|json)\n",
                             format.c_str());
                return 2;
            }
        } else if (!arg.empty() && arg[0] == '-') {
            return usage(argv[0]);
        } else {
            files.push_back(arg);
        }
    }
    if (files.empty() && benchPath.empty())
        return usage(argv[0]);

    // (threads, wall ns) samples feeding the Amdahl fit, from the
    // telemetry files and optionally the sweep benchmark medians.
    std::vector<std::pair<unsigned, double>> samples;
    std::vector<LoadedRun> runs;
    std::size_t loaded = 0;

    for (const std::string &file : files) {
        Expected<exp::RunnerTelemetry> telemetry =
            exp::RunnerTelemetry::load(file);
        if (!telemetry.ok()) {
            std::fprintf(stderr, "run_report: %s\n",
                         telemetry.status().message().c_str());
            continue;
        }
        ++loaded;
        const exp::RunnerTelemetry &t = telemetry.value();
        if (t.wallNs > 0)
            samples.emplace_back(t.threadsUsed,
                                 static_cast<double>(t.wallNs));
        runs.push_back(
            LoadedRun{file, std::move(telemetry).value()});
    }

    std::size_t folded = 0;
    if (!benchPath.empty()) {
        obs::JsonValue doc;
        std::string error;
        if (!obs::loadBenchFile(benchPath, doc, error)) {
            std::fprintf(stderr, "run_report: %s\n",
                         error.c_str());
            if (!loaded)
                return 2;
            benchPath.clear();
        } else {
            ++loaded;
            const obs::JsonValue *list = doc.find("benchmarks");
            if (list && list->isArray()) {
                for (const obs::JsonValue &record :
                     list->items()) {
                    if (!record.isObject())
                        continue;
                    const unsigned threads =
                        threadsFromBenchName(
                            record.stringOr("name", ""));
                    if (threads == 0)
                        continue;
                    const obs::JsonValue *per_rep =
                        record.find("ns_per_rep");
                    const double wallNs =
                        per_rep
                            ? per_rep->numberOr("median", 0.0)
                            : 0.0;
                    if (wallNs > 0.0) {
                        samples.emplace_back(threads, wallNs);
                        ++folded;
                    }
                }
            }
        }
    }

    if (loaded == 0) {
        std::fprintf(stderr,
                     "run_report: no readable input files\n");
        return 2;
    }

    std::vector<exp::RunnerTelemetry> telemetries;
    telemetries.reserve(runs.size());
    for (const LoadedRun &run : runs)
        telemetries.push_back(run.telemetry);
    const exp::CounterScaling scaling =
        exp::analyzeCounterScaling(telemetries);
    const exp::AmdahlFit fit = exp::fitAmdahl(samples);

    if (jsonFormat) {
        std::fputs(
            reportJson(runs, topK, scaling, fit, samples)
                .c_str(),
            stdout);
        std::fputs("\n", stdout);
        return 0;
    }

    for (const LoadedRun &run : runs) {
        const exp::RunnerTelemetry &t = run.telemetry;
        std::printf("== %s%s%s ==\n", run.file.c_str(),
                    t.scenario.empty() ? "" : ": ",
                    t.scenario.c_str());
        const exp::RunDiagnosis diagnosis =
            exp::diagnoseRun(t, topK);
        std::fputs(exp::formatDiagnosis(diagnosis).c_str(),
                   stdout);
        std::printf("\n");
    }

    if (!benchPath.empty()) {
        std::printf("== %s ==\n%zu sweep benchmark%s folded into "
                    "the fit\n\n",
                    benchPath.c_str(), folded,
                    folded == 1 ? "" : "s");
    }

    if (!runs.empty())
        std::fputs(exp::formatCounterScaling(scaling).c_str(),
                   stdout);
    std::fputs(exp::formatAmdahlFit(fit, samples).c_str(),
               stdout);
    return 0;
}
