/**
 * @file
 * Scaling-diagnosis report over runner telemetry.
 *
 * Consumes the RUNNER_*.json telemetry documents written by an
 * instrumented exp::Runner (UATM_RUNNER_TELEMETRY=1, UATM_TRACE,
 * or RunnerOptions::telemetry) and prints, per run, the per-worker
 * utilization bars, the load-imbalance index, parallel efficiency,
 * and the top-K slowest points; given runs at two or more distinct
 * thread counts it also fits Amdahl's law and reports the serial
 * fraction and the asymptotic speedup limit:
 *
 *   run_report [options] <telemetry.json>...
 *
 *     --top=<k>        slowest points to list per run (default 5)
 *     --bench=<path>   also fold a BENCH_sweep_parallel.json into
 *                      the Amdahl fit: benchmarks whose name ends
 *                      in /t<n> contribute (n, median ns/rep)
 *
 * Exit status: 0 = report printed, 2 = bad usage or no readable
 * telemetry input.  CI runs this over the perf-smoke artifacts;
 * see docs/OBSERVABILITY.md.
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "exp/report.hh"
#include "exp/telemetry.hh"
#include "obs/bench.hh"

namespace {

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--top=<k>] [--bench=<path>] "
                 "<telemetry.json>...\n",
                 argv0);
    return 2;
}

/**
 * Thread count encoded in a sweep benchmark name ("sweep/.../t8"
 * -> 8); 0 when the name does not follow the convention.
 */
unsigned
threadsFromBenchName(const std::string &name)
{
    const std::size_t slash = name.rfind('/');
    if (slash == std::string::npos ||
        slash + 2 > name.size() - 1 || name[slash + 1] != 't')
        return 0;
    const std::string digits = name.substr(slash + 2);
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") !=
            std::string::npos)
        return 0;
    return static_cast<unsigned>(std::atoi(digits.c_str()));
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace uatm;

    std::size_t topK = 5;
    std::string benchPath;
    std::vector<std::string> files;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--top=", 0) == 0) {
            const long parsed = std::atol(arg.c_str() + 6);
            if (parsed < 0) {
                std::fprintf(stderr,
                             "run_report: invalid --top value "
                             "'%s'\n",
                             arg.c_str() + 6);
                return 2;
            }
            topK = static_cast<std::size_t>(parsed);
        } else if (arg.rfind("--bench=", 0) == 0) {
            benchPath = arg.substr(8);
        } else if (!arg.empty() && arg[0] == '-') {
            return usage(argv[0]);
        } else {
            files.push_back(arg);
        }
    }
    if (files.empty() && benchPath.empty())
        return usage(argv[0]);

    // (threads, wall ns) samples feeding the Amdahl fit, from the
    // telemetry files and optionally the sweep benchmark medians.
    std::vector<std::pair<unsigned, double>> samples;
    std::size_t loaded = 0;

    for (const std::string &file : files) {
        Expected<exp::RunnerTelemetry> telemetry =
            exp::RunnerTelemetry::load(file);
        if (!telemetry.ok()) {
            std::fprintf(stderr, "run_report: %s\n",
                         telemetry.status().message().c_str());
            continue;
        }
        const exp::RunnerTelemetry &t = telemetry.value();
        ++loaded;
        std::printf("== %s%s%s ==\n", file.c_str(),
                    t.scenario.empty() ? "" : ": ",
                    t.scenario.c_str());
        const exp::RunDiagnosis diagnosis =
            exp::diagnoseRun(t, topK);
        std::fputs(exp::formatDiagnosis(diagnosis).c_str(),
                   stdout);
        std::printf("\n");
        if (t.wallNs > 0)
            samples.emplace_back(t.threadsUsed,
                                 static_cast<double>(t.wallNs));
    }

    if (!benchPath.empty()) {
        obs::JsonValue doc;
        std::string error;
        if (!obs::loadBenchFile(benchPath, doc, error)) {
            std::fprintf(stderr, "run_report: %s\n",
                         error.c_str());
            return loaded ? 0 : 2;
        }
        ++loaded;
        const obs::JsonValue *list = doc.find("benchmarks");
        std::size_t folded = 0;
        if (list && list->isArray()) {
            for (const obs::JsonValue &record : list->items()) {
                if (!record.isObject())
                    continue;
                const unsigned threads = threadsFromBenchName(
                    record.stringOr("name", ""));
                if (threads == 0)
                    continue;
                const obs::JsonValue *per_rep =
                    record.find("ns_per_rep");
                const double wallNs =
                    per_rep ? per_rep->numberOr("median", 0.0)
                            : 0.0;
                if (wallNs > 0.0) {
                    samples.emplace_back(threads, wallNs);
                    ++folded;
                }
            }
        }
        std::printf("== %s ==\n%zu sweep benchmark%s folded into "
                    "the fit\n\n",
                    benchPath.c_str(), folded,
                    folded == 1 ? "" : "s");
    }

    if (loaded == 0) {
        std::fprintf(stderr,
                     "run_report: no readable input files\n");
        return 2;
    }

    const exp::AmdahlFit fit = exp::fitAmdahl(samples);
    std::fputs(exp::formatAmdahlFit(fit, samples).c_str(),
               stdout);
    return 0;
}
