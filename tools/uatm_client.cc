/**
 * @file
 * uatm_client: command-line client for uatm-served.
 *
 *   uatm_client [--host=<h>] [--port=<n>] --scenario=<file|->
 *               [--out=<file>] [--threads=<n>]
 *   uatm_client [--host=<h>] [--port=<n>] --metrics
 *   uatm_client [--host=<h>] [--port=<n>] --workloads
 *   uatm_client --offline --scenario=<file|-> [--out=<file>]
 *               [--threads=<n>]
 *
 * The default mode POSTs the scenario JSON to /sweep and writes
 * the NDJSON result rows to --out (default stdout); the cache
 * accounting the daemon returns in its X-Uatm-* headers goes to
 * stderr.  --metrics and --workloads print the matching GET
 * endpoint.  --offline runs the same scenario in-process on the
 * same parser and kernel registry, emitting byte-identical NDJSON
 * — CI diffs the two to prove the daemon adds transport, not
 * meaning.  --threads overrides the request's thread count (0
 * keeps the scenario's own value).
 *
 * Exit status: 0 success, 1 transport or HTTP (non-2xx) error,
 * 2 bad usage.
 */

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "exp/runner.hh"
#include "serve/http.hh"
#include "serve/sweep_request.hh"
#include "util/options.hh"

namespace {

using namespace uatm;

/** Read @p path ("-" = stdin) fully; IoError when unreadable. */
Expected<std::string>
readInput(const std::string &path)
{
    std::stringstream buffer;
    if (path == "-") {
        buffer << std::cin.rdbuf();
    } else {
        std::ifstream in(path);
        if (!in) {
            return Status::ioError("cannot read scenario file '",
                                   path, "'");
        }
        buffer << in.rdbuf();
    }
    return buffer.str();
}

/** Write @p text to @p path (empty = stdout). */
Status
writeOutput(const std::string &path, const std::string &text)
{
    if (path.empty()) {
        std::fputs(text.c_str(), stdout);
        return Status();
    }
    std::ofstream out(path, std::ios::trunc);
    if (!(out << text))
        return Status::ioError("cannot write '", path, "'");
    return Status();
}

int
failWith(const Status &status)
{
    std::fprintf(stderr, "uatm_client: %s\n",
                 status.message().c_str());
    return 1;
}

/** Run the scenario in-process: the offline reference run. */
int
runOffline(const std::string &body, unsigned threads,
           const std::string &out_path)
{
    auto request = serve::parseSweepRequest(body);
    if (!request.ok())
        return failWith(request.status());
    const serve::ServeKernel *kernel =
        serve::findServeKernel(request.value().kernel);
    if (!kernel) {
        return failWith(Status::notFound(
            "unknown kernel '", request.value().kernel, "'"));
    }
    exp::RunnerOptions options;
    if (threads)
        request.value().threads = threads;
    options.threads =
        request.value().threads ? request.value().threads : 1;
    exp::Runner runner(options);
    const exp::ResultTable table = runner.run(
        request.value().scenario, kernel->columns, kernel->eval);
    const Status written =
        writeOutput(out_path, table.renderNdjson());
    if (!written.ok())
        return failWith(written);
    std::fprintf(stderr,
                 "offline: points=%zu failed=%zu threads=%u\n",
                 runner.lastStats().points,
                 runner.lastStats().pointsFailed,
                 runner.lastStats().threadsRequested);
    return 0;
}

/** GET @p target and print the body; 0 only on HTTP 200. */
int
getAndPrint(const std::string &host, std::uint16_t port,
            const std::string &target)
{
    auto response = serve::httpFetch(host, port, "GET", target);
    if (!response.ok())
        return failWith(response.status());
    std::fputs(response.value().body.c_str(), stdout);
    if (response.value().status != 200) {
        std::fprintf(stderr, "uatm_client: GET %s -> %d\n",
                     target.c_str(), response.value().status);
        return 1;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    OptionParser options("uatm_client",
                         "Talk to a uatm_served daemon.");
    options.addString("host", "127.0.0.1", "daemon host");
    options.addInt("port", 0, "daemon port");
    options.addString("scenario", "",
                      "scenario JSON file ('-' = stdin)");
    options.addString("out", "",
                      "NDJSON output file (default stdout)");
    options.addInt("threads", 0,
                   "override the request's thread count");
    options.addFlag("metrics", "GET /metrics and print it");
    options.addFlag("workloads", "GET /workloads and print it");
    options.addFlag("offline",
                    "run the scenario in-process instead of "
                    "contacting a daemon");

    bool helped = false;
    const Status parsed = options.tryParse(argc, argv, &helped);
    if (!parsed.ok()) {
        std::fprintf(stderr, "uatm_client: %s\n%s",
                     parsed.message().c_str(),
                     options.usage().c_str());
        return 2;
    }
    if (helped)
        return 0;

    const std::string host = options.getString("host");
    const auto port = std::uint16_t(options.getInt("port"));
    const unsigned threads = unsigned(options.getInt("threads"));

    if (options.getFlag("metrics"))
        return getAndPrint(host, port, "/metrics");
    if (options.getFlag("workloads"))
        return getAndPrint(host, port, "/workloads");

    const std::string scenario_path =
        options.getString("scenario");
    if (scenario_path.empty()) {
        std::fprintf(stderr,
                     "uatm_client: --scenario is required "
                     "(or --metrics/--workloads)\n%s",
                     options.usage().c_str());
        return 2;
    }
    auto body = readInput(scenario_path);
    if (!body.ok())
        return failWith(body.status());

    if (options.getFlag("offline")) {
        return runOffline(body.value(), threads,
                          options.getString("out"));
    }

    std::string request_body = body.value();
    if (threads) {
        // Patch the thread count without disturbing the document:
        // re-send with a "threads" override only when the caller
        // asked for one.  The field is top-level, so appending it
        // by rewriting would need a JSON editor; instead we rely
        // on the scenario author or pass it through verbatim.
        std::fprintf(stderr,
                     "uatm_client: note: --threads with a remote "
                     "daemon requires the scenario to omit its "
                     "own \"threads\" field; sending as-is\n");
    }

    auto response = serve::httpFetch(host, port, "POST", "/sweep",
                                     request_body);
    if (!response.ok())
        return failWith(response.status());
    const serve::HttpClientResponse &reply = response.value();
    if (reply.status != 200) {
        std::fprintf(stderr,
                     "uatm_client: POST /sweep -> %d\n%s\n",
                     reply.status, reply.body.c_str());
        return 1;
    }
    const Status written =
        writeOutput(options.getString("out"), reply.body);
    if (!written.ok())
        return failWith(written);

    const auto headerOr = [&reply](const char *name) {
        const std::string *value = reply.header(name);
        return value ? value->c_str() : "?";
    };
    std::fprintf(stderr,
                 "sweep: points=%s computed=%s cache_hits=%s "
                 "failed=%s\n",
                 headerOr("x-uatm-points"),
                 headerOr("x-uatm-points-computed"),
                 headerOr("x-uatm-cache-hits"),
                 headerOr("x-uatm-points-failed"));
    return 0;
}
