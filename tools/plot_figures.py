#!/usr/bin/env python3
"""Plot the paper's figures from the bench CSV snapshots.

The C++ benchmark binaries under build/bench/ write CSV snapshots to
bench_out/ (override with UATM_BENCH_OUT).  This script turns them
into PNGs that mirror the layout of the paper's Figures 1-6.

Usage:
    for b in build/bench/*; do $b; done     # produce the CSVs
    python3 tools/plot_figures.py           # render bench_out/*.png

Requires matplotlib; the repository's results do not depend on it —
every figure is also printed as a table and an ASCII chart by the
bench binaries themselves.
"""

from __future__ import annotations

import csv
import os
import sys
from pathlib import Path

try:
    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt
except ImportError:  # pragma: no cover
    sys.exit("matplotlib is required: pip install matplotlib")

OUT_DIR = Path(os.environ.get("UATM_BENCH_OUT", "bench_out"))


def read_csv(name: str):
    """Return (header, rows-as-floats-where-possible) or None."""
    path = OUT_DIR / f"{name}.csv"
    if not path.exists():
        print(f"  [skip] {path} missing — run the bench first")
        return None
    with path.open() as handle:
        rows = list(csv.reader(handle))
    header, data = rows[0], rows[1:]

    def coerce(cell: str):
        try:
            return float(cell)
        except ValueError:
            return cell

    return header, [[coerce(c) for c in row] for row in data]


def save(fig, name: str) -> None:
    path = OUT_DIR / f"{name}.png"
    fig.savefig(path, dpi=150, bbox_inches="tight")
    plt.close(fig)
    print(f"  wrote {path}")


def plot_fig1() -> None:
    loaded = read_csv("fig1_stall_factors")
    if not loaded:
        return
    header, rows = loaded
    mu = [r[0] for r in rows]
    fig, ax = plt.subplots(figsize=(6, 4))
    for idx, label in enumerate(header[1:], start=1):
        ax.plot(mu, [r[idx] for r in rows], marker="o",
                label=label)
    ax.set_xlabel("memory cycle time per 4 bytes")
    ax.set_ylabel("stalling factor (% of L/D)")
    ax.set_title("Figure 1: stalling factors (six profiles, avg)")
    ax.set_ylim(0, 105)
    ax.grid(True, alpha=0.3)
    ax.legend()
    save(fig, "fig1")


def plot_fig2() -> None:
    fig, axes = plt.subplots(2, 1, figsize=(6, 7), sharex=True)
    for ax, base in zip(axes, ("98", "90")):
        loaded = read_csv(f"fig2_baseHR{base}")
        if not loaded:
            return
        header, rows = loaded
        mu = [r[0] for r in rows]
        for idx, label in enumerate(header[1:], start=1):
            ax.plot(mu, [r[idx] for r in rows], marker=".",
                    label=label)
        ax.set_ylabel(f"dHR % @ base {base}%")
        ax.grid(True, alpha=0.3)
        ax.legend()
    axes[1].set_xlabel("memory cycle time per 4 bytes")
    axes[0].set_title("Figure 2: hit ratio traded by doubling the "
                      "bus")
    save(fig, "fig2")


def plot_unified(name: str, csv_name: str, title: str) -> None:
    loaded = read_csv(csv_name)
    if not loaded:
        return
    header, rows = loaded
    mu = [r[0] for r in rows]
    fig, ax = plt.subplots(figsize=(6, 4))
    # Columns: pipelined, double bus, write buffers, BNL, phi.
    for idx in range(1, len(header) - 1):
        ax.plot(mu, [r[idx] for r in rows], marker=".",
                label=header[idx])
    ax.set_xlabel("non-pipelined memory cycle per 4 bytes")
    ax.set_ylabel("hit ratio traded (%)")
    ax.set_title(title)
    ax.grid(True, alpha=0.3)
    ax.legend()
    save(fig, name)


def plot_fig6() -> None:
    panels = [
        ("panel_a_16K_D4", "(a) 16K, D=4, c'=6"),
        ("panel_b_8K_D8", "(b) 8K, D=8, c'=4"),
        ("panel_c_16K_D8", "(c) 16K, D=8, c'=16.75"),
        ("panel_d_8K_D8", "(d) 8K, D=8, c'=6"),
    ]
    fig, axes = plt.subplots(2, 2, figsize=(10, 7))
    for ax, (panel, title) in zip(axes.flat, panels):
        loaded = read_csv(f"fig6_{panel}")
        if not loaded:
            return
        header, rows = loaded
        beta = [r[0] for r in rows]
        for idx, label in enumerate(header[1:-2], start=1):
            ax.plot(beta, [r[idx] for r in rows], marker=".",
                    label=label)
        ax.axhline(0.0, color="black", linewidth=0.8)
        ax.set_title(title, fontsize=10)
        ax.set_xlabel("normalized bus speed (beta)")
        ax.set_ylabel("reduced delay x100")
        ax.grid(True, alpha=0.3)
        ax.legend(fontsize=7)
    fig.suptitle("Figure 6: validation with Smith's line sizes")
    save(fig, "fig6")


def main() -> None:
    print(f"reading CSVs from {OUT_DIR}/")
    if not OUT_DIR.exists():
        sys.exit("bench_out/ missing — run the bench binaries "
                 "first: for b in build/bench/*; do $b; done")
    plot_fig1()
    plot_fig2()
    plot_unified("fig3", "fig3_unified_L8",
                 "Figure 3: unified tradeoff, L = 8")
    plot_unified("fig4", "fig4_unified_L32",
                 "Figure 4: unified tradeoff, L = 32")
    plot_unified("fig5", "fig5_unified_bnl3",
                 "Figure 5: unified tradeoff, BNL3")
    plot_fig6()
    print("done")


if __name__ == "__main__":
    main()
