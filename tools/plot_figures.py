#!/usr/bin/env python3
"""Plot the paper's figures and benchmark trends from bench_out/.

The C++ benchmark binaries under build/bench/ write CSV snapshots to
bench_out/ (override with UATM_BENCH_OUT).  This script turns them
into PNGs that mirror the layout of the paper's Figures 1-6.

Usage:
    for b in build/bench/*; do $b; done     # produce the CSVs
    python3 tools/plot_figures.py           # render bench_out/*.png

    python3 tools/plot_figures.py --bench <dir>
        Plot ns/op trajectories from every BENCH_*.json under <dir>
        (recursively; one benchmark-harness record per run, see
        docs/OBSERVABILITY.md for the schema), ordered by file
        modification time.

    python3 tools/plot_figures.py --telemetry <dir>
        Plot per-worker utilization bars from every RUNNER_*.json
        under <dir> (runner-telemetry records written by the
        experiment runner; one grouped bar chart across all runs).

Matplotlib is optional: when it is missing the script prints what
it would have rendered and exits successfully — the repository's
results never depend on it, since every figure is also printed as
a table and an ASCII chart by the bench binaries themselves.
"""

from __future__ import annotations

import argparse
import csv
import json
import os
import sys
from pathlib import Path

try:
    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    HAVE_MPL = True
except ImportError:  # pragma: no cover
    plt = None
    HAVE_MPL = False

OUT_DIR = Path(os.environ.get("UATM_BENCH_OUT", "bench_out"))


def read_csv(name: str):
    """Return (header, rows-as-floats-where-possible) or None."""
    path = OUT_DIR / f"{name}.csv"
    if not path.exists():
        print(f"  [skip] {path} missing — run the bench first")
        return None
    with path.open() as handle:
        rows = list(csv.reader(handle))
    header, data = rows[0], rows[1:]

    def coerce(cell: str):
        try:
            return float(cell)
        except ValueError:
            return cell

    return header, [[coerce(c) for c in row] for row in data]


def save(fig, name: str, directory: Path = OUT_DIR) -> None:
    path = directory / f"{name}.png"
    fig.savefig(path, dpi=150, bbox_inches="tight")
    plt.close(fig)
    print(f"  wrote {path}")


def plot_fig1() -> None:
    loaded = read_csv("fig1_stall_factors")
    if not loaded:
        return
    header, rows = loaded
    mu = [r[0] for r in rows]
    fig, ax = plt.subplots(figsize=(6, 4))
    for idx, label in enumerate(header[1:], start=1):
        ax.plot(mu, [r[idx] for r in rows], marker="o",
                label=label)
    ax.set_xlabel("memory cycle time per 4 bytes")
    ax.set_ylabel("stalling factor (% of L/D)")
    ax.set_title("Figure 1: stalling factors (six profiles, avg)")
    ax.set_ylim(0, 105)
    ax.grid(True, alpha=0.3)
    ax.legend()
    save(fig, "fig1")


def plot_fig2() -> None:
    fig, axes = plt.subplots(2, 1, figsize=(6, 7), sharex=True)
    for ax, base in zip(axes, ("98", "90")):
        loaded = read_csv(f"fig2_baseHR{base}")
        if not loaded:
            return
        header, rows = loaded
        mu = [r[0] for r in rows]
        for idx, label in enumerate(header[1:], start=1):
            ax.plot(mu, [r[idx] for r in rows], marker=".",
                    label=label)
        ax.set_ylabel(f"dHR % @ base {base}%")
        ax.grid(True, alpha=0.3)
        ax.legend()
    axes[1].set_xlabel("memory cycle time per 4 bytes")
    axes[0].set_title("Figure 2: hit ratio traded by doubling the "
                      "bus")
    save(fig, "fig2")


def plot_unified(name: str, csv_name: str, title: str) -> None:
    loaded = read_csv(csv_name)
    if not loaded:
        return
    header, rows = loaded
    mu = [r[0] for r in rows]
    fig, ax = plt.subplots(figsize=(6, 4))
    # Columns: pipelined, double bus, write buffers, BNL, phi.
    for idx in range(1, len(header) - 1):
        ax.plot(mu, [r[idx] for r in rows], marker=".",
                label=header[idx])
    ax.set_xlabel("non-pipelined memory cycle per 4 bytes")
    ax.set_ylabel("hit ratio traded (%)")
    ax.set_title(title)
    ax.grid(True, alpha=0.3)
    ax.legend()
    save(fig, name)


def plot_fig6() -> None:
    panels = [
        ("panel_a_16K_D4", "(a) 16K, D=4, c'=6"),
        ("panel_b_8K_D8", "(b) 8K, D=8, c'=4"),
        ("panel_c_16K_D8", "(c) 16K, D=8, c'=16.75"),
        ("panel_d_8K_D8", "(d) 8K, D=8, c'=6"),
    ]
    fig, axes = plt.subplots(2, 2, figsize=(10, 7))
    for ax, (panel, title) in zip(axes.flat, panels):
        loaded = read_csv(f"fig6_{panel}")
        if not loaded:
            return
        header, rows = loaded
        beta = [r[0] for r in rows]
        for idx, label in enumerate(header[1:-2], start=1):
            ax.plot(beta, [r[idx] for r in rows], marker=".",
                    label=label)
        ax.axhline(0.0, color="black", linewidth=0.8)
        ax.set_title(title, fontsize=10)
        ax.set_xlabel("normalized bus speed (beta)")
        ax.set_ylabel("reduced delay x100")
        ax.grid(True, alpha=0.3)
        ax.legend(fontsize=7)
    fig.suptitle("Figure 6: validation with Smith's line sizes")
    save(fig, "fig6")


def load_bench_records(directory: Path):
    """(run label, {benchmark: ns/op}) per record, oldest first."""
    paths = sorted(directory.rglob("BENCH_*.json"),
                   key=lambda p: (p.stat().st_mtime, str(p)))
    records = []
    for path in paths:
        try:
            doc = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as err:
            print(f"  [skip] {path}: {err}")
            continue
        benchmarks = doc.get("benchmarks")
        if not isinstance(benchmarks, list):
            print(f"  [skip] {path}: no \"benchmarks\" array")
            continue
        label = str(doc.get("git_describe", "")) or path.stem
        # Disambiguate repeated runs of the same commit by the
        # record's parent directory (e.g. perf/before, perf/after).
        if any(label == seen for seen, _ in records):
            label = f"{label} ({path.parent.name})"
        series = {}
        for bench in benchmarks:
            if isinstance(bench, dict) and "name" in bench:
                series[str(bench["name"])] = float(
                    bench.get("ns_per_op", 0.0))
        records.append((label, series))
    return records


def plot_bench_trajectories(directory: Path) -> None:
    """ns/op per benchmark across a directory of BENCH_*.json."""
    records = load_bench_records(directory)
    if not records:
        sys.exit(f"no readable BENCH_*.json under {directory}/ — "
                 "run ./build/bench/bench_sim_throughput first")
    names = sorted({name for _, series in records
                    for name in series})
    print(f"  {len(records)} run(s), {len(names)} benchmark(s)")
    if not HAVE_MPL:
        print("  [skip] matplotlib not installed — no PNG "
              "rendered (records parsed fine)")
        return
    xs = range(len(records))
    fig, ax = plt.subplots(figsize=(8, 5))
    for name in names:
        ys = [series.get(name) for _, series in records]
        ax.plot(xs, ys, marker="o", label=name)
    ax.set_xticks(list(xs))
    ax.set_xticklabels([label for label, _ in records],
                       rotation=30, ha="right", fontsize=7)
    ax.set_ylabel("ns per op (median)")
    ax.set_yscale("log")
    ax.set_title("benchmark ns/op across runs")
    ax.grid(True, alpha=0.3)
    ax.legend(fontsize=6, ncol=2)
    save(fig, "bench_trajectory", directory)


def load_telemetry_records(directory: Path):
    """(run label, [per-worker utilization 0..1]) per record."""
    paths = sorted(directory.rglob("RUNNER_*.json"),
                   key=lambda p: (p.stat().st_mtime, str(p)))
    records = []
    for path in paths:
        try:
            doc = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as err:
            print(f"  [skip] {path}: {err}")
            continue
        if doc.get("kind") != "runner_telemetry":
            print(f"  [skip] {path}: not a runner_telemetry record")
            continue
        workers = doc.get("workers")
        if not isinstance(workers, list) or not workers:
            print(f"  [skip] {path}: no \"workers\" array")
            continue
        utils = []
        for worker in workers:
            lifetime = float(worker.get("lifetime_ns", 0.0))
            busy = (float(worker.get("kernel_ns", 0.0)) +
                    float(worker.get("acquire_ns", 0.0)))
            utils.append(busy / lifetime if lifetime > 0 else 0.0)
        label = str(doc.get("scenario", "")) or path.stem
        if any(label == seen for seen, _ in records):
            label = f"{label} ({path.stem})"
        records.append((label, utils))
    return records


def plot_worker_utilization(directory: Path) -> None:
    """Grouped per-worker utilization bars from RUNNER_*.json."""
    records = load_telemetry_records(directory)
    if not records:
        sys.exit(f"no readable RUNNER_*.json under {directory}/ — "
                 "run UATM_RUNNER_TELEMETRY=1 "
                 "./build/bench/bench_sweep_parallel first")
    for label, utils in records:
        summary = " ".join(f"w{i}={u * 100:.0f}%"
                           for i, u in enumerate(utils))
        print(f"  {label}: {summary}")
    if not HAVE_MPL:
        print("  [skip] matplotlib not installed — no PNG "
              "rendered (records parsed fine)")
        return
    max_workers = max(len(utils) for _, utils in records)
    fig, ax = plt.subplots(figsize=(8, 5))
    group_width = 0.8
    bar_width = group_width / max_workers
    for run, (label, utils) in enumerate(records):
        for worker, util in enumerate(utils):
            x = run - group_width / 2 + (worker + 0.5) * bar_width
            ax.bar(x, util * 100.0, width=bar_width * 0.9,
                   color=plt.cm.viridis(worker / max(1, max_workers - 1)))
    ax.set_xticks(range(len(records)))
    ax.set_xticklabels([label for label, _ in records],
                       rotation=30, ha="right", fontsize=7)
    ax.set_ylabel("worker utilization (%)")
    ax.set_ylim(0, 105)
    ax.set_title("per-worker utilization across runs")
    ax.grid(True, axis="y", alpha=0.3)
    save(fig, "worker_utilization", directory)


def main(argv) -> None:
    parser = argparse.ArgumentParser(
        description="Render the paper figures from bench_out/ "
                    "CSVs, or benchmark ns/op trajectories from "
                    "BENCH_*.json records.")
    parser.add_argument(
        "--bench", nargs="?", const=str(OUT_DIR), default=None,
        metavar="DIR",
        help="plot ns/op trajectories from every BENCH_*.json "
             "under DIR (default: $UATM_BENCH_OUT or bench_out)")
    parser.add_argument(
        "--telemetry", nargs="?", const=str(OUT_DIR), default=None,
        metavar="DIR",
        help="plot per-worker utilization bars from every "
             "RUNNER_*.json under DIR (default: $UATM_BENCH_OUT "
             "or bench_out)")
    args = parser.parse_args(argv)

    if args.bench is not None:
        print(f"reading BENCH_*.json from {args.bench}/")
        plot_bench_trajectories(Path(args.bench))
        print("done")
        return

    if args.telemetry is not None:
        print(f"reading RUNNER_*.json from {args.telemetry}/")
        plot_worker_utilization(Path(args.telemetry))
        print("done")
        return

    if not HAVE_MPL:
        print("[skip] matplotlib not installed — figures not "
              "rendered (the bench binaries already printed every "
              "figure as a table + ASCII chart)")
        return
    print(f"reading CSVs from {OUT_DIR}/")
    if not OUT_DIR.exists():
        sys.exit("bench_out/ missing — run the bench binaries "
                 "first: for b in build/bench/*; do $b; done")
    plot_fig1()
    plot_fig2()
    plot_unified("fig3", "fig3_unified_L8",
                 "Figure 3: unified tradeoff, L = 8")
    plot_unified("fig4", "fig4_unified_L32",
                 "Figure 4: unified tradeoff, L = 32")
    plot_unified("fig5", "fig5_unified_bnl3",
                 "Figure 5: unified tradeoff, BNL3")
    plot_fig6()
    print("done")


if __name__ == "__main__":
    main(sys.argv[1:])
