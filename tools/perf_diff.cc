/**
 * @file
 * Continuous-benchmark regression gate.
 *
 * Loads two BENCH_*.json records written by the obs::BenchSuite
 * harness, aligns their benchmarks by name, and flags median
 * ns/op changes beyond a MAD-scaled noise threshold:
 *
 *   perf_diff [options] <before.json> <after.json>
 *
 *     --report-only    always exit 0 (CI log table, no gate)
 *     --sigmas=<s>     noise threshold in robust sigmas (default 4)
 *     --min-rel=<f>    relative change floor (default 0.10 = 10%)
 *     --no-drift-norm  gate on raw times instead of dividing the
 *                      suite's median after/before ratio out first
 *     --ignore-threads compare even when the recorded host core
 *                      counts or per-benchmark thread configs
 *                      differ (normally a refusal: the numbers
 *                      measure different parallel setups)
 *     --require-speedup=<slow>:<fast>:<min>
 *                      assert median(slow) / median(fast) >= min
 *                      within the AFTER record (repeatable).  With
 *                      this flag a single json argument is also
 *                      accepted: only the speedup gates run.
 *                      Gates intra-record invariants like "the
 *                      single-pass sweep engine beats brute force
 *                      by 3x" that a before/after diff cannot see.
 *     --counter=<name> additionally gate on a per-op hardware
 *                      counter ("instructions", "cycles",
 *                      "cache_misses", ...) recorded by the bench
 *                      harness.  Counters barely move under host
 *                      load, so this catches real code changes
 *                      wall time would drown in noise.  Records
 *                      without the counter (perf unavailable,
 *                      older schema) are skipped, never gated.
 *     --counter-rel=<f>
 *                      relative threshold for --counter verdicts
 *                      (default 0.05 = 5%)
 *
 * Exit status: 0 = no regressions, 1 = at least one benchmark
 * regressed or a required speedup not met, 2 = bad usage,
 * unreadable/unparsable input, or incomparable thread
 * configurations.  The exact CI invocation is documented in
 * docs/OBSERVABILITY.md.
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "obs/bench.hh"

namespace {

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--report-only] [--sigmas=<s>] "
        "[--min-rel=<f>] [--no-drift-norm] [--ignore-threads] "
        "[--require-speedup=<slow>:<fast>:<min>] "
        "[--counter=<name>] [--counter-rel=<f>] "
        "[<before.json>] <after.json>\n",
        argv0);
    return 2;
}

/** One --require-speedup assertion: slow vs fast benchmark. */
struct SpeedupGate
{
    std::string slow;
    std::string fast;
    double min = 0.0;
};

/** Median ns/rep of the named benchmark, or -1 when absent. */
double
benchMedian(const uatm::obs::JsonValue &doc,
            const std::string &name)
{
    const auto *benchmarks = doc.find("benchmarks");
    if (!benchmarks)
        return -1.0;
    for (const auto &bench : benchmarks->items()) {
        if (bench.stringOr("name", "") != name)
            continue;
        const auto *ns = bench.find("ns_per_rep");
        return ns ? ns->numberOr("median", -1.0) : -1.0;
    }
    return -1.0;
}

/** Benchmark names never contain ':', so the spec splits cleanly
 *  into slow:fast:min.  Returns false on malformed input. */
bool
parseSpeedupGate(const std::string &spec, SpeedupGate &gate)
{
    const std::size_t first = spec.find(':');
    const std::size_t last = spec.rfind(':');
    if (first == std::string::npos || first == last)
        return false;
    gate.slow = spec.substr(0, first);
    gate.fast = spec.substr(first + 1, last - first - 1);
    gate.min = std::atof(spec.c_str() + last + 1);
    return !gate.slow.empty() && !gate.fast.empty() &&
           gate.min > 0.0;
}

/** Evaluate every gate against @p doc; true when all hold. */
bool
checkSpeedupGates(const uatm::obs::JsonValue &doc,
                  const std::vector<SpeedupGate> &gates)
{
    bool ok = true;
    for (const SpeedupGate &gate : gates) {
        const double slow = benchMedian(doc, gate.slow);
        const double fast = benchMedian(doc, gate.fast);
        if (slow <= 0.0 || fast <= 0.0) {
            std::fprintf(stderr,
                         "perf_diff: speedup gate '%s' vs '%s': "
                         "benchmark missing from the record\n",
                         gate.slow.c_str(), gate.fast.c_str());
            ok = false;
            continue;
        }
        const double ratio = slow / fast;
        std::printf("speedup gate: %s / %s = %.2fx "
                    "(required >= %.2fx): %s\n",
                    gate.slow.c_str(), gate.fast.c_str(), ratio,
                    gate.min, ratio >= gate.min ? "ok" : "FAIL");
        ok = ok && ratio >= gate.min;
    }
    return ok;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace uatm;

    obs::PerfDiffOptions options;
    obs::CounterDiffOptions counter_options;
    bool report_only = false;
    bool ignore_threads = false;
    bool counter_armed = false;
    obs::PerfEvent counter_event = obs::PerfEvent::Instructions;
    std::vector<SpeedupGate> gates;
    std::vector<std::string> files;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--report-only") {
            report_only = true;
        } else if (arg == "--ignore-threads") {
            ignore_threads = true;
        } else if (arg.rfind("--require-speedup=", 0) == 0) {
            SpeedupGate gate;
            if (!parseSpeedupGate(arg.substr(18), gate)) {
                std::fprintf(stderr,
                             "perf_diff: invalid "
                             "--require-speedup spec '%s'\n",
                             arg.c_str() + 18);
                return 2;
            }
            gates.push_back(std::move(gate));
        } else if (arg.rfind("--counter=", 0) == 0) {
            if (!obs::perfEventFromName(arg.substr(10),
                                        counter_event)) {
                std::fprintf(stderr,
                             "perf_diff: unknown counter '%s'\n",
                             arg.c_str() + 10);
                return 2;
            }
            counter_armed = true;
        } else if (arg.rfind("--counter-rel=", 0) == 0) {
            counter_options.minRelative =
                std::atof(arg.c_str() + 14);
            if (counter_options.minRelative <= 0.0) {
                std::fprintf(stderr,
                             "perf_diff: invalid --counter-rel "
                             "value '%s'\n",
                             arg.c_str() + 14);
                return 2;
            }
        } else if (arg == "--no-drift-norm") {
            options.normalizeDrift = false;
        } else if (arg.rfind("--sigmas=", 0) == 0) {
            options.sigmas = std::atof(arg.c_str() + 9);
            if (options.sigmas <= 0.0) {
                std::fprintf(stderr,
                             "perf_diff: invalid --sigmas value "
                             "'%s'\n",
                             arg.c_str() + 9);
                return 2;
            }
        } else if (arg.rfind("--min-rel=", 0) == 0) {
            options.minRelative = std::atof(arg.c_str() + 10);
            if (options.minRelative < 0.0) {
                std::fprintf(stderr,
                             "perf_diff: invalid --min-rel value "
                             "'%s'\n",
                             arg.c_str() + 10);
                return 2;
            }
        } else if (!arg.empty() && arg[0] == '-') {
            return usage(argv[0]);
        } else {
            files.push_back(arg);
        }
    }
    if (files.size() == 1 && !gates.empty()) {
        // Gate-only mode: intra-record speedup assertions.
        obs::JsonValue doc;
        std::string error;
        if (!obs::loadBenchFile(files[0], doc, error)) {
            std::fprintf(stderr, "perf_diff: %s\n",
                         error.c_str());
            return 2;
        }
        const bool ok = checkSpeedupGates(doc, gates);
        return (!ok && !report_only) ? 1 : 0;
    }
    if (files.size() != 2)
        return usage(argv[0]);

    obs::JsonValue before, after;
    std::string error;
    if (!obs::loadBenchFile(files[0], before, error) ||
        !obs::loadBenchFile(files[1], after, error)) {
        std::fprintf(stderr, "perf_diff: %s\n", error.c_str());
        return 2;
    }

    if (!obs::perfComparable(before, after, error)) {
        if (ignore_threads) {
            std::printf("perf_diff: warning: %s "
                        "(--ignore-threads, comparing anyway)\n",
                        error.c_str());
        } else {
            std::fprintf(stderr,
                         "perf_diff: refusing to compare: %s\n"
                         "  (the two records measure different "
                         "parallel setups; rerun on matching "
                         "configs or pass --ignore-threads)\n",
                         error.c_str());
            return 2;
        }
    }

    const std::vector<obs::PerfDelta> deltas =
        obs::comparePerf(before, after, options);

    std::printf("perf_diff: %s (%s)  vs  %s (%s)\n",
                files[0].c_str(),
                before.stringOr("git_describe", "?").c_str(),
                files[1].c_str(),
                after.stringOr("git_describe", "?").c_str());
    std::printf("noise threshold: %.1f robust sigmas "
                "(1.4826*MAD), floor %.1f%%\n",
                options.sigmas, options.minRelative * 100.0);
    double drift = 1.0;
    for (const auto &delta : deltas) {
        if (delta.verdict != obs::PerfDelta::Verdict::Added &&
            delta.verdict != obs::PerfDelta::Verdict::Removed) {
            drift = delta.appliedDrift;
            break;
        }
    }
    if (drift != 1.0) {
        std::printf("suite drift: %+.1f%% (median shift; divided "
                    "out of the verdicts — raw %% shown below)\n",
                    (drift - 1.0) * 100.0);
    }
    std::printf("\n");
    std::fputs(obs::formatPerfTable(deltas).c_str(), stdout);

    std::size_t counter_regressions = 0;
    if (counter_armed) {
        const std::vector<obs::CounterDelta> counter_deltas =
            obs::compareCounter(before, after, counter_event,
                                counter_options);
        std::printf("\n");
        if (counter_deltas.empty()) {
            std::printf("counter gate (%s): no matched "
                        "benchmarks, skipped\n",
                        obs::perfEventName(counter_event));
        } else {
            std::fputs(obs::formatCounterTable(counter_deltas,
                                               counter_event)
                           .c_str(),
                       stdout);
            std::size_t skipped = 0;
            for (const auto &delta : counter_deltas) {
                skipped += delta.verdict ==
                           obs::CounterDelta::Verdict::Skipped;
            }
            if (skipped > 0) {
                std::printf("counter gate (%s): %zu benchmark%s "
                            "without the counter skipped\n",
                            obs::perfEventName(counter_event),
                            skipped, skipped == 1 ? "" : "s");
            }
            counter_regressions =
                obs::countCounterRegressions(counter_deltas);
        }
    }

    bool gates_ok = true;
    if (!gates.empty()) {
        std::printf("\n");
        gates_ok = checkSpeedupGates(after, gates);
    }

    const std::size_t regressions =
        obs::countRegressions(deltas) + counter_regressions;
    if (regressions > 0) {
        std::printf("\n%zu benchmark%s regressed%s\n", regressions,
                    regressions == 1 ? "" : "s",
                    report_only ? " (report-only mode, not "
                                  "failing)"
                                : "");
    } else {
        std::printf("\nno regressions\n");
    }
    return ((regressions > 0 || !gates_ok) && !report_only) ? 1
                                                            : 0;
}
