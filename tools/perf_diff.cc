/**
 * @file
 * Continuous-benchmark regression gate.
 *
 * Loads two BENCH_*.json records written by the obs::BenchSuite
 * harness, aligns their benchmarks by name, and flags median
 * ns/op changes beyond a MAD-scaled noise threshold:
 *
 *   perf_diff [options] <before.json> <after.json>
 *
 *     --report-only    always exit 0 (CI log table, no gate)
 *     --sigmas=<s>     noise threshold in robust sigmas (default 4)
 *     --min-rel=<f>    relative change floor (default 0.10 = 10%)
 *     --no-drift-norm  gate on raw times instead of dividing the
 *                      suite's median after/before ratio out first
 *     --ignore-threads compare even when the recorded host core
 *                      counts or per-benchmark thread configs
 *                      differ (normally a refusal: the numbers
 *                      measure different parallel setups)
 *
 * Exit status: 0 = no regressions, 1 = at least one benchmark
 * regressed, 2 = bad usage, unreadable/unparsable input, or
 * incomparable thread configurations.  The exact CI invocation is
 * documented in docs/OBSERVABILITY.md.
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "obs/bench.hh"

namespace {

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--report-only] [--sigmas=<s>] "
        "[--min-rel=<f>] [--no-drift-norm] [--ignore-threads] "
        "<before.json> <after.json>\n",
        argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace uatm;

    obs::PerfDiffOptions options;
    bool report_only = false;
    bool ignore_threads = false;
    std::vector<std::string> files;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--report-only") {
            report_only = true;
        } else if (arg == "--ignore-threads") {
            ignore_threads = true;
        } else if (arg == "--no-drift-norm") {
            options.normalizeDrift = false;
        } else if (arg.rfind("--sigmas=", 0) == 0) {
            options.sigmas = std::atof(arg.c_str() + 9);
            if (options.sigmas <= 0.0) {
                std::fprintf(stderr,
                             "perf_diff: invalid --sigmas value "
                             "'%s'\n",
                             arg.c_str() + 9);
                return 2;
            }
        } else if (arg.rfind("--min-rel=", 0) == 0) {
            options.minRelative = std::atof(arg.c_str() + 10);
            if (options.minRelative < 0.0) {
                std::fprintf(stderr,
                             "perf_diff: invalid --min-rel value "
                             "'%s'\n",
                             arg.c_str() + 10);
                return 2;
            }
        } else if (!arg.empty() && arg[0] == '-') {
            return usage(argv[0]);
        } else {
            files.push_back(arg);
        }
    }
    if (files.size() != 2)
        return usage(argv[0]);

    obs::JsonValue before, after;
    std::string error;
    if (!obs::loadBenchFile(files[0], before, error) ||
        !obs::loadBenchFile(files[1], after, error)) {
        std::fprintf(stderr, "perf_diff: %s\n", error.c_str());
        return 2;
    }

    if (!obs::perfComparable(before, after, error)) {
        if (ignore_threads) {
            std::printf("perf_diff: warning: %s "
                        "(--ignore-threads, comparing anyway)\n",
                        error.c_str());
        } else {
            std::fprintf(stderr,
                         "perf_diff: refusing to compare: %s\n"
                         "  (the two records measure different "
                         "parallel setups; rerun on matching "
                         "configs or pass --ignore-threads)\n",
                         error.c_str());
            return 2;
        }
    }

    const std::vector<obs::PerfDelta> deltas =
        obs::comparePerf(before, after, options);

    std::printf("perf_diff: %s (%s)  vs  %s (%s)\n",
                files[0].c_str(),
                before.stringOr("git_describe", "?").c_str(),
                files[1].c_str(),
                after.stringOr("git_describe", "?").c_str());
    std::printf("noise threshold: %.1f robust sigmas "
                "(1.4826*MAD), floor %.1f%%\n",
                options.sigmas, options.minRelative * 100.0);
    double drift = 1.0;
    for (const auto &delta : deltas) {
        if (delta.verdict != obs::PerfDelta::Verdict::Added &&
            delta.verdict != obs::PerfDelta::Verdict::Removed) {
            drift = delta.appliedDrift;
            break;
        }
    }
    if (drift != 1.0) {
        std::printf("suite drift: %+.1f%% (median shift; divided "
                    "out of the verdicts — raw %% shown below)\n",
                    (drift - 1.0) * 100.0);
    }
    std::printf("\n");
    std::fputs(obs::formatPerfTable(deltas).c_str(), stdout);

    const std::size_t regressions =
        obs::countRegressions(deltas);
    if (regressions > 0) {
        std::printf("\n%zu benchmark%s regressed%s\n", regressions,
                    regressions == 1 ? "" : "s",
                    report_only ? " (report-only mode, not "
                                  "failing)"
                                : "");
    } else {
        std::printf("\nno regressions\n");
    }
    return (regressions > 0 && !report_only) ? 1 : 0;
}
