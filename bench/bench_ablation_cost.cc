/**
 * @file
 * Ablation — cost-effective line sizes (Alpert & Flynn, the
 * paper's reference [6], motivating its Sec. 2 remark that
 * optimising hit ratio alone "may not produce a cost-effective
 * system").  At fixed capacity, larger lines cut tag/state
 * overhead; the delay-area product can therefore prefer a larger
 * line than Smith's pure-delay optimum.
 */

#include <cstdio>

#include "common.hh"
#include "linesize/cost_model.hh"
#include "linesize/line_tradeoff.hh"

using namespace uatm;

int
main()
{
    bench::banner("Ablation: cost-effectiveness",
                  "delay vs silicon area per line size "
                  "(16K 2-way, c' = 6, D = 4)");

    CacheAreaModel area;
    LineDelayModel delay;
    delay.c = 7;
    delay.busWidth = 4;

    CacheConfig geometry;
    geometry.sizeBytes = 16 * 1024;
    geometry.assoc = 2;

    const auto table = MissRatioTable::designTarget16K();

    for (double beta : {1.0, 2.0, 4.0}) {
        delay.beta = beta;
        bench::section("beta = " + TextTable::num(beta, 0));
        TextTable out({"line", "mean delay", "total Kbits",
                       "overhead %", "delay*area (norm)"});
        const auto points =
            costEffectivenessSweep(table, delay, area, geometry);
        double best_product = points.front().delayAreaProduct;
        for (const auto &p : points)
            best_product =
                std::min(best_product, p.delayAreaProduct);
        for (const auto &p : points) {
            out.addRow(
                {std::to_string(p.lineBytes),
                 TextTable::num(p.meanMemoryDelay, 4),
                 TextTable::num(
                     static_cast<double>(p.totalBits) / 1024.0,
                     1),
                 TextTable::num(p.overheadFraction * 100, 2),
                 TextTable::num(
                     p.delayAreaProduct / best_product, 4)});
        }
        bench::emitTable(out);
        bench::exportCsv("ablation_cost_beta" +
                             TextTable::num(beta, 0),
                         out);

        const auto smith = smithOptimalLine(table, delay);
        const auto cost =
            costEffectiveLine(table, delay, area, geometry);
        bench::compareLine(
            "cost-effective line vs Smith's delay optimum",
            "never smaller (Alpert & Flynn)",
            std::to_string(smith) + "B -> " +
                std::to_string(cost) + "B",
            cost >= smith);
    }
    return 0;
}
