/**
 * @file
 * Figure 3 — architectural tradeoff for L = 8 bytes: 50 % flushes,
 * D = 4, q = 2, base HR = 95 %, BNL1 stalling measured from the
 * SPEC92-like simulations.
 */

#include "unified_figure.hh"

int
main()
{
    uatm::bench::UnifiedFigureSpec spec;
    spec.figureId = "Figure 3";
    spec.lineBytes = 8;
    spec.bnlFeature = uatm::StallFeature::BNL1;
    uatm::bench::runUnifiedFigure(spec);
    return 0;
}
