/**
 * @file
 * Implementation of the shared benchmark scaffolding.
 */

#include "common.hh"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "util/logging.hh"

namespace uatm::bench {

void
banner(const std::string &experiment_id,
       const std::string &description)
{
    std::printf("\n============================================"
                "========================\n");
    std::printf("%s — %s\n", experiment_id.c_str(),
                description.c_str());
    std::printf("=============================================="
                "======================\n");
}

void
section(const std::string &title)
{
    std::printf("\n--- %s ---\n", title.c_str());
}

void
emitTable(const TextTable &table)
{
    std::fputs(table.render().c_str(), stdout);
}

void
emitChart(const AsciiChart &chart)
{
    std::fputs(chart.render().c_str(), stdout);
}

void
exportCsv(const std::string &name, const TextTable &table)
{
    const char *env = std::getenv("UATM_BENCH_OUT");
    const std::filesystem::path dir = env ? env : "bench_out";
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
        warn("cannot create CSV output directory '", dir.string(),
             "': ", ec.message());
        return;
    }
    const std::filesystem::path path = dir / (name + ".csv");
    std::ofstream out(path);
    if (!out) {
        warn("cannot write CSV snapshot '", path.string(), "'");
        return;
    }
    out << table.renderCsv();
    std::printf("[csv] wrote %s\n", path.string().c_str());
}

void
compareLine(const std::string &what, const std::string &paper,
            const std::string &measured, bool matches)
{
    std::printf("%-52s paper: %-18s ours: %-18s [%s]\n",
                what.c_str(), paper.c_str(), measured.c_str(),
                matches ? "ok" : "DIFFERS");
}

} // namespace uatm::bench
