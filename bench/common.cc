/**
 * @file
 * Implementation of the shared benchmark scaffolding.
 */

#include "common.hh"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "cpu/stall_feature.hh"
#include "obs/profile.hh"
#include "obs/registry.hh"
#include "obs/trace_event.hh"
#include "util/logging.hh"

namespace uatm::bench {

BenchArgs
parseArgs(int argc, char **argv)
{
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--filter=", 0) == 0) {
            args.filter = arg.substr(9);
        } else if (arg == "--list") {
            args.listOnly = true;
        } else if (arg.rfind("--reps=", 0) == 0) {
            const long long parsed =
                std::atoll(arg.c_str() + 7);
            if (parsed < 1)
                fatal("invalid --reps value '", arg.substr(7),
                      "' (need an integer >= 1)");
            args.reps = static_cast<std::uint32_t>(parsed);
        } else {
            fatal("unknown argument '", arg, "'\nusage: ",
                  argv[0],
                  " [--filter=<substr>] [--list] [--reps=<n>]");
        }
    }
    return args;
}

obs::Manifest &
manifest()
{
    static obs::Manifest instance;
    return instance;
}

void
banner(const std::string &experiment_id,
       const std::string &description)
{
    std::printf("\n============================================"
                "========================\n");
    std::printf("%s — %s\n", experiment_id.c_str(),
                description.c_str());
    std::printf("=============================================="
                "======================\n");
    manifest().setTool(experiment_id);
    manifest().set("run", "description", description);
}

void
section(const std::string &title)
{
    std::printf("\n--- %s ---\n", title.c_str());
}

void
emitTable(const TextTable &table)
{
    std::fputs(table.render().c_str(), stdout);
}

void
emitChart(const AsciiChart &chart)
{
    std::fputs(chart.render().c_str(), stdout);
}

void
recordMachine(const CacheConfig &cache,
              const MemoryConfig &memory,
              const WriteBufferConfig &wbuf, const CpuConfig &cpu)
{
    obs::Manifest &m = manifest();
    m.set("cache", "size_bytes", cache.sizeBytes);
    m.set("cache", "assoc",
          static_cast<std::uint64_t>(cache.assoc));
    m.set("cache", "line_bytes",
          static_cast<std::uint64_t>(cache.lineBytes));
    m.set("cache", "write_miss",
          writeMissPolicyName(cache.writeMiss));
    m.set("cache", "write", writePolicyName(cache.write));
    m.set("cache", "replacement",
          replacementKindName(cache.replacement));
    m.set("cache", "replacement_seed", cache.replacementSeed);
    m.set("cache", "describe", cache.describe());

    m.set("memory", "bus_width_bytes",
          static_cast<std::uint64_t>(memory.busWidthBytes));
    m.set("memory", "cycle_time", memory.cycleTime);
    m.set("memory", "pipelined", memory.pipelined);
    m.set("memory", "pipeline_interval", memory.pipelineInterval);
    m.set("memory", "describe", memory.describe());

    m.set("write_buffer", "depth",
          static_cast<std::uint64_t>(wbuf.depth));
    m.set("write_buffer", "read_bypass", wbuf.readBypass);

    m.set("cpu", "feature", stallFeatureName(cpu.feature));
    m.set("cpu", "mshrs", static_cast<std::uint64_t>(cpu.mshrs));
    m.set("cpu", "suppress_flush_traffic",
          cpu.suppressFlushTraffic);
    m.set("cpu", "prefetch", prefetchPolicyName(cpu.prefetch));
}

void
recordWorkload(const std::string &profile, std::uint64_t seed,
               std::uint64_t refs)
{
    obs::Manifest &m = manifest();
    m.set("workload", "profile", profile);
    m.set("workload", "seed", seed);
    m.set("workload", "refs", refs);
}

void
recordStats(const TimingStats &stats, Cycles mu_m)
{
    obs::StatRegistry registry;
    stats.registerStats(registry, "engine", mu_m);
    obs::ProfileRegistry::instance().registerStats(registry,
                                                   "profile");
    // Tracer health rides along in every stat dump so a trace
    // truncated by ring wraparound is visible without opening the
    // trace file itself.
    obs::globalTracer().registerStats(registry, "tracer");
    manifest().setStats(registry);
}

void
exportCsv(const std::string &name, const TextTable &table)
{
    // Tolerate a trailing slash (UATM_BENCH_OUT="out/") and any
    // embedded "./" noise: lexically_normal gives one canonical
    // path per artifact, so log-scraping and docs agree on it.
    const char *env = std::getenv("UATM_BENCH_OUT");
    const std::filesystem::path dir =
        std::filesystem::path(env && *env ? env : "bench_out")
            .lexically_normal();
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
        fatal("cannot create CSV output directory '", dir.string(),
              "': ", ec.message());
    }
    const std::filesystem::path path =
        (dir / (name + ".csv")).lexically_normal();
    std::ofstream out(path);
    if (!out)
        fatal("cannot write CSV snapshot '", path.string(), "'");
    out << table.renderCsv();
    out.close();
    if (!out)
        fatal("failed while writing CSV snapshot '", path.string(),
              "'");
    std::printf("[csv] wrote %s\n", path.string().c_str());

    // The sibling manifest records what produced this CSV.
    const std::filesystem::path manifest_path =
        (dir / (name + ".manifest.json")).lexically_normal();
    obs::Manifest snapshot = manifest();
    snapshot.set("output", "csv", path.string());
    snapshot.set("output", "rows",
                 static_cast<std::uint64_t>(table.rows()));
    snapshot.write(manifest_path.string());
    std::printf("[manifest] wrote %s\n",
                manifest_path.string().c_str());
}

void
compareLine(const std::string &what, const std::string &paper,
            const std::string &measured, bool matches)
{
    std::printf("%-52s paper: %-18s ours: %-18s [%s]\n",
                what.c_str(), paper.c_str(), measured.c_str(),
                matches ? "ok" : "DIFFERS");
}

} // namespace uatm::bench
