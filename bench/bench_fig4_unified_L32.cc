/**
 * @file
 * Figure 4 — architectural tradeoff for L = 32 bytes: the pipelined
 * memory system's advantage materialises (crossover near 5-6
 * cycles); same parameters as Figure 3 otherwise.
 */

#include "unified_figure.hh"

int
main()
{
    uatm::bench::UnifiedFigureSpec spec;
    spec.figureId = "Figure 4";
    spec.lineBytes = 32;
    spec.bnlFeature = uatm::StallFeature::BNL1;
    uatm::bench::runUnifiedFigure(spec);
    return 0;
}
