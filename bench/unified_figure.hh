/**
 * @file
 * Shared driver for Figures 3-5: the unified comparison of
 * pipelined memory, bus doubling, read-bypassing write buffers and
 * a bus-not-locked feature, all expressed as hit ratio traded at a
 * 95 % base against a full-blocking, non-pipelined system
 * (alpha = 0.5, D = 4, q = 2).
 */

#ifndef UATM_BENCH_UNIFIED_FIGURE_HH
#define UATM_BENCH_UNIFIED_FIGURE_HH

#include <string>

#include "cpu/stall_feature.hh"

namespace uatm::bench {

/** Parameters of one unified-comparison figure. */
struct UnifiedFigureSpec
{
    std::string figureId;     ///< e.g. "Figure 3"
    double lineBytes = 8;     ///< 8 for Fig. 3, 32 for Figs. 4/5
    StallFeature bnlFeature = StallFeature::BNL1;
    double baseHitRatio = 0.95;
    double alpha = 0.5;
    double q = 2.0;
    double busWidth = 4.0;
};

/**
 * Regenerate the figure: per mu_m, the traded hit ratio of each
 * feature (the BNL curve uses the engine-measured phi at that
 * mu_m), printed as a table and chart, with the paper's crossover
 * observations checked.
 */
void runUnifiedFigure(const UnifiedFigureSpec &spec);

} // namespace uatm::bench

#endif // UATM_BENCH_UNIFIED_FIGURE_HH
