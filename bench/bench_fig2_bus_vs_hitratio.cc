/**
 * @file
 * Figure 2 — effect of memory latency on the hit ratio traded by
 * doubling the data bus (D = 4 -> 8 bytes), full-stalling cache,
 * alpha = alpha' = 0.5, base hit ratios 98 % (upper panel) and
 * 90 % (lower panel), line sizes 8/16/32 bytes.
 */

#include <cstdio>

#include "common.hh"
#include "core/tradeoff.hh"

using namespace uatm;

namespace {

void
panel(double base_hr)
{
    bench::section("base hit ratio " +
                   TextTable::num(base_hr * 100.0, 0) + " %");

    const std::vector<double> lines = {32.0, 16.0, 8.0};
    const std::vector<double> mus = {2, 4, 6, 8, 10, 12,
                                     14, 16, 18, 20};

    TextTable table({"mu_m", "L=32 dHR %", "L=16 dHR %",
                     "L=8 dHR %"});
    AsciiChart chart(64, 16);
    chart.setTitle("Figure 2 @ base HR " +
                   TextTable::num(base_hr * 100, 0) +
                   "%: traded hit ratio vs mu_m");
    chart.setXLabel("memory cycle time per 4 bytes");
    chart.setYLabel("hit ratio traded (%)");
    const char glyphs[3] = {'-', '.', ':'};

    std::vector<ChartSeries> series;
    for (std::size_t i = 0; i < lines.size(); ++i) {
        series.push_back(ChartSeries{
            "L=" + TextTable::num(lines[i], 0), glyphs[i], {},
            {}});
    }

    for (double mu : mus) {
        std::vector<std::string> row = {TextTable::num(mu, 0)};
        for (std::size_t i = 0; i < lines.size(); ++i) {
            TradeoffContext ctx;
            ctx.machine.busWidth = 4;
            ctx.machine.lineBytes = lines[i];
            ctx.machine.cycleTime = mu;
            ctx.alpha = 0.5;
            const double traded =
                hitRatioTraded(missFactorDoubleBus(ctx), base_hr) *
                100.0;
            row.push_back(TextTable::num(traded, 3));
            series[i].x.push_back(mu);
            series[i].y.push_back(traded);
        }
        table.addRow(row);
    }
    bench::emitTable(table);
    bench::exportCsv("fig2_baseHR" +
                         TextTable::num(base_hr * 100, 0),
                     table);
    for (auto &s : series)
        chart.addSeries(std::move(s));
    bench::emitChart(chart);
}

} // namespace

int
main()
{
    bench::banner("Figure 2",
                  "hit ratio traded by doubling the bus vs "
                  "memory cycle time (FS, alpha = 0.5, D = 4)");

    panel(0.98);
    panel(0.90);

    bench::section("paper-vs-measured anchors");
    {
        TradeoffContext ctx;
        ctx.machine.busWidth = 4;
        ctx.machine.lineBytes = 32;
        ctx.machine.cycleTime = 20;
        ctx.alpha = 0.5;
        const double traded32 =
            hitRatioTraded(missFactorDoubleBus(ctx), 0.98) * 100;
        bench::compareLine(
            "L=32, long mu_m, base 98 %: 64-bit HR",
            "~96 % (trade ~2 %)",
            TextTable::num(98.0 - traded32, 2) + " %",
            traded32 > 1.9 && traded32 < 2.2);

        ctx.machine.lineBytes = 8;
        ctx.machine.cycleTime = 2;
        const double traded8 =
            hitRatioTraded(missFactorDoubleBus(ctx), 0.98) * 100;
        bench::compareLine("L=8, mu_m=2, base 98 %: trade",
                           "3 % (95 vs 98)",
                           TextTable::num(traded8, 2) + " %",
                           std::abs(traded8 - 3.0) < 1e-6);
    }
    return 0;
}
