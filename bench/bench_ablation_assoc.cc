/**
 * @file
 * Ablation — associativity and replacement policy.  The paper
 * fixes a 2-way LRU cache (Fig. 1); this sweep shows how the hit
 * ratio (the methodology's currency) responds to associativity
 * 1..8 and to the replacement policy, and converts each step to
 * its equivalent feature value via Eq. 6.
 */

#include <cstdio>

#include "cache/sweep.hh"
#include "common.hh"
#include "core/tradeoff.hh"
#include "trace/generators.hh"

using namespace uatm;

namespace {

double
hitRatio(const char *profile, std::uint32_t assoc,
         ReplacementKind repl)
{
    CacheConfig config;
    config.sizeBytes = 8 * 1024;
    config.assoc = assoc;
    config.lineBytes = 32;
    config.replacement = repl;
    auto workload = Spec92Profile::make(profile, 271);
    return runCacheSim(config, *workload, 80000, 8000).hitRatio();
}

} // namespace

int
main()
{
    bench::banner("Ablation: associativity",
                  "hit ratio vs ways and replacement policy "
                  "(8KB, 32B lines)");

    bench::section("LRU, ways 1..8 (hit ratio %)");
    TextTable table({"program", "1-way", "2-way", "4-way",
                     "8-way", "dHR 1->2 %", "bus worth %"});
    TradeoffContext ctx;
    ctx.machine.busWidth = 4;
    ctx.machine.lineBytes = 32;
    ctx.machine.cycleTime = 8;

    for (const auto &name : Spec92Profile::names()) {
        const double w1 =
            hitRatio(name.c_str(), 1, ReplacementKind::LRU);
        const double w2 =
            hitRatio(name.c_str(), 2, ReplacementKind::LRU);
        const double w4 =
            hitRatio(name.c_str(), 4, ReplacementKind::LRU);
        const double w8 =
            hitRatio(name.c_str(), 8, ReplacementKind::LRU);
        table.addRow(
            {name, TextTable::num(w1 * 100, 2),
             TextTable::num(w2 * 100, 2),
             TextTable::num(w4 * 100, 2),
             TextTable::num(w8 * 100, 2),
             TextTable::num((w2 - w1) * 100, 2),
             TextTable::num(
                 hitRatioTraded(missFactorDoubleBus(ctx), w1) *
                     100,
                 2)});
    }
    bench::emitTable(table);
    bench::exportCsv("ablation_assoc", table);

    bench::section("replacement policies at 4-way (hit ratio %)");
    TextTable repl({"program", "LRU", "TreePLRU", "FIFO",
                    "Random"});
    for (const auto &name : Spec92Profile::names()) {
        repl.addRow(
            {name,
             TextTable::num(hitRatio(name.c_str(), 4,
                                     ReplacementKind::LRU) *
                                100,
                            2),
             TextTable::num(hitRatio(name.c_str(), 4,
                                     ReplacementKind::TreePLRU) *
                                100,
                            2),
             TextTable::num(hitRatio(name.c_str(), 4,
                                     ReplacementKind::FIFO) *
                                100,
                            2),
             TextTable::num(hitRatio(name.c_str(), 4,
                                     ReplacementKind::Random) *
                                100,
                            2)});
    }
    bench::emitTable(repl);
    bench::exportCsv("ablation_repl", repl);

    bench::section("reading");
    std::printf(
        "Associativity steps are yet another hit-ratio purchase "
        "to weigh against the last column (what doubling the bus "
        "buys at the direct-mapped operating point), alongside "
        "the victim-cache ablation.\n");
    return 0;
}
