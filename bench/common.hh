/**
 * @file
 * Shared scaffolding for the figure/table regeneration binaries:
 * section banners, CSV export next to the binary output, the
 * paper-vs-measured row helper used by EXPERIMENTS.md, and the
 * run-manifest sink — every CSV gets a sibling
 * <name>.manifest.json recording the configuration that produced
 * it (see docs/OBSERVABILITY.md).
 */

#ifndef UATM_BENCH_COMMON_HH
#define UATM_BENCH_COMMON_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "cache/config.hh"
#include "cpu/timing_engine.hh"
#include "memory/timing.hh"
#include "memory/write_buffer.hh"
#include "obs/manifest.hh"
#include "util/ascii_chart.hh"
#include "util/status.hh"
#include "util/table.hh"

namespace uatm::bench {

/**
 * Command-line options shared by the bench binaries, so CI and
 * developers can run benchmark subsets without rebuilding:
 *
 *   --filter=<substr>  only run benchmarks whose name contains it
 *   --list             print the (filtered) names and exit
 *   --reps=<n>         timed repetitions for the micro harness
 *
 * parseArgs() fatal()s with a usage message on anything else.
 */
struct BenchArgs
{
    std::string filter;
    bool listOnly = false;
    std::uint32_t reps = 0;  ///< 0 = harness default
};

BenchArgs parseArgs(int argc, char **argv);

/**
 * Print a banner naming the experiment and the paper artefact;
 * also stamps the run manifest with the experiment id.
 */
void banner(const std::string &experiment_id,
            const std::string &description);

/** Print a sub-section heading. */
void section(const std::string &title);

/** Print a table to stdout. */
void emitTable(const TextTable &table);

/** Print a chart to stdout. */
void emitChart(const AsciiChart &chart);

/**
 * Write a CSV snapshot under $UATM_BENCH_OUT (default
 * "bench_out/"), creating the directory recursively, plus a
 * sibling <name>.manifest.json run manifest; prints the paths
 * written.  fatal() when the directory or files are unwritable.
 */
void exportCsv(const std::string &name, const TextTable &table);

/** One paper-vs-measured comparison line. */
void compareLine(const std::string &what, const std::string &paper,
                 const std::string &measured, bool matches);

/**
 * The process-wide run manifest written next to every CSV.
 * banner() and the record*() helpers populate it; benches can add
 * experiment-specific keys directly.
 */
obs::Manifest &manifest();

/** Record the simulated machine configuration in the manifest. */
void recordMachine(const CacheConfig &cache,
                   const MemoryConfig &memory,
                   const WriteBufferConfig &wbuf,
                   const CpuConfig &cpu);

/** Record the trace profile and seed driving the run. */
void recordWorkload(const std::string &profile,
                    std::uint64_t seed, std::uint64_t refs);

/**
 * Run @p body, converting an escaping StatusError into a clean
 * fatal() exit — the bench binaries sit at the CLI boundary of
 * the error contract, like the examples.
 */
template <typename Fn>
int
guardedMain(Fn &&body)
{
    try {
        return std::forward<Fn>(body)();
    } catch (const StatusError &e) {
        fatal(e.status().message());
    }
}

/**
 * Record a final timing-stat dump (full stat registry, including
 * any wall-clock profile scopes) in the manifest.  @p mu_m
 * additionally exposes the derived phi stat.
 */
void recordStats(const TimingStats &stats, Cycles mu_m = 0);

} // namespace uatm::bench

#endif // UATM_BENCH_COMMON_HH
