/**
 * @file
 * Shared scaffolding for the figure/table regeneration binaries:
 * section banners, CSV export next to the binary output, and the
 * paper-vs-measured row helper used by EXPERIMENTS.md.
 */

#ifndef UATM_BENCH_COMMON_HH
#define UATM_BENCH_COMMON_HH

#include <string>
#include <vector>

#include "util/ascii_chart.hh"
#include "util/table.hh"

namespace uatm::bench {

/** Print a banner naming the experiment and the paper artefact. */
void banner(const std::string &experiment_id,
            const std::string &description);

/** Print a sub-section heading. */
void section(const std::string &title);

/** Print a table to stdout. */
void emitTable(const TextTable &table);

/** Print a chart to stdout. */
void emitChart(const AsciiChart &chart);

/**
 * Write a CSV snapshot under $UATM_BENCH_OUT (default
 * "bench_out/") so figures can be re-plotted externally; prints
 * the path written.
 */
void exportCsv(const std::string &name, const TextTable &table);

/** One paper-vs-measured comparison line. */
void compareLine(const std::string &what, const std::string &paper,
                 const std::string &measured, bool matches);

} // namespace uatm::bench

#endif // UATM_BENCH_COMMON_HH
