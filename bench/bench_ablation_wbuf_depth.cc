/**
 * @file
 * Ablation — write-buffer depth (Sec. 4.3).  The paper's analysis
 * uses the best case (flushes fully hidden); this experiment maps
 * how many entries the buffer actually needs per workload, and how
 * close a finite buffer gets to the best case.
 */

#include <cstdio>

#include "common.hh"
#include "cpu/timing_engine.hh"
#include "trace/generators.hh"

using namespace uatm;

int
main()
{
    bench::banner("Ablation: write-buffer depth",
                  "cycles vs buffer entries (8KB 2-way 32B, "
                  "D = 4, mu_m = 8, FS)");

    MemoryConfig mem;
    mem.busWidthBytes = 4;
    mem.cycleTime = 8;
    CacheConfig cache;
    cache.sizeBytes = 8 * 1024;
    cache.assoc = 2;
    cache.lineBytes = 32;

    for (const char *profile : {"ear", "swm256", "hydro2d"}) {
        bench::section(profile);
        TextTable table({"depth", "cycles", "buffer-full stalls",
                         "flush hidden %"});
        Cycles best = 0, sync = 0;
        // First the two anchors: no buffer, and the analytic best
        // case (flush traffic suppressed entirely).
        {
            CpuConfig cpu;
            cpu.feature = StallFeature::FS;
            TimingEngine engine(cache, mem,
                                WriteBufferConfig{0, true}, cpu);
            auto workload = Spec92Profile::make(profile, 11);
            sync = engine.run(*workload, 80000).cycles;

            CpuConfig ideal = cpu;
            ideal.suppressFlushTraffic = true;
            TimingEngine ideal_engine(
                cache, mem, WriteBufferConfig{0, true}, ideal);
            auto workload2 = Spec92Profile::make(profile, 11);
            best = ideal_engine.run(*workload2, 80000).cycles;
        }
        table.addRow({"0 (sync)", std::to_string(sync), "-",
                      "0.0"});
        for (std::uint32_t depth : {1u, 2u, 4u, 8u, 16u, 64u}) {
            CpuConfig cpu;
            cpu.feature = StallFeature::FS;
            TimingEngine engine(
                cache, mem, WriteBufferConfig{depth, true}, cpu);
            auto workload = Spec92Profile::make(profile, 11);
            const auto stats = engine.run(*workload, 80000);
            bench::recordMachine(cache, mem,
                                 WriteBufferConfig{depth, true},
                                 cpu);
            bench::recordWorkload(profile, 11, 80000);
            bench::recordStats(stats, mem.cycleTime);
            const double hidden =
                100.0 *
                static_cast<double>(sync - stats.cycles) /
                static_cast<double>(sync - best);
            table.addRow({std::to_string(depth),
                          std::to_string(stats.cycles),
                          std::to_string(stats.bufferFullStall),
                          TextTable::num(hidden, 1)});
        }
        table.addRow({"ideal", std::to_string(best), "-",
                      "100.0"});
        bench::emitTable(table);
        bench::exportCsv(std::string("ablation_wbuf_") + profile,
                         table);
    }

    bench::section("read-bypassing vs plain FIFO (depth 8)");
    {
        TextTable table({"program", "sync", "FIFO buffer",
                         "read-bypassing", "bypass gain %"});
        for (const char *profile : {"ear", "swm256", "hydro2d"}) {
            auto run = [&](std::uint32_t depth, bool bypass) {
                CpuConfig cpu;
                cpu.feature = StallFeature::FS;
                TimingEngine engine(
                    cache, mem, WriteBufferConfig{depth, bypass},
                    cpu);
                auto workload = Spec92Profile::make(profile, 11);
                return engine.run(*workload, 80000).cycles;
            };
            const Cycles sync = run(0, true);
            const Cycles fifo = run(8, false);
            const Cycles bypass = run(8, true);
            table.addRow(
                {profile, std::to_string(sync),
                 std::to_string(fifo), std::to_string(bypass),
                 TextTable::num(
                     100.0 *
                         (static_cast<double>(fifo) -
                          static_cast<double>(bypass)) /
                         static_cast<double>(fifo),
                     2)});
        }
        bench::emitTable(table);
        bench::exportCsv("ablation_wbuf_bypass", table);
    }

    bench::section("observation");
    std::printf("A handful of entries recovers most of the "
                "best-case benefit on locality-rich codes; "
                "bandwidth-saturated phases (hydro2d) cap the "
                "hidden fraction regardless of depth — the gap "
                "between the paper's best-case curve and a real "
                "implementation.\n");
    return 0;
}
