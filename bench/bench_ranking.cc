/**
 * @file
 * Sec. 5.3 — unified feature ranking across memory cycle times and
 * line sizes: doubling the bus > read-bypassing write buffers >
 * bus-not-locked, with the pipelined system overtaking everything
 * past its crossover.
 */

#include <cstdio>

#include "common.hh"
#include "core/tradeoff.hh"

using namespace uatm;

int
main()
{
    bench::banner("Ranking (Sec. 5.3)",
                  "feature priority across mu_m and line sizes "
                  "(base HR 95 %, alpha 0.5, q = 2, phi = 0.9 "
                  "L/D)");

    for (double line : {8.0, 16.0, 32.0}) {
        bench::section("L = " + TextTable::num(line, 0) +
                       " bytes");
        TextTable table({"mu_m", "1st", "2nd", "3rd", "4th"});
        for (double mu : {2.0, 4.0, 6.0, 8.0, 12.0, 20.0}) {
            TradeoffContext ctx;
            ctx.machine.busWidth = 4;
            ctx.machine.lineBytes = line;
            ctx.machine.cycleTime = mu;
            ctx.alpha = 0.5;
            const auto scores = rankFeatures(
                ctx, 0.95, 0.9 * ctx.machine.lineOverBus(), 2.0);
            table.addRow({TextTable::num(mu, 0), scores[0].name,
                          scores[1].name, scores[2].name,
                          scores[3].name});
        }
        bench::emitTable(table);
        bench::exportCsv("ranking_L" + TextTable::num(line, 0),
                         table);
    }

    bench::section("paper-vs-measured");
    {
        // Check the non-pipelined order at every point.
        bool order_holds = true;
        for (double line : {8.0, 16.0, 32.0}) {
            for (double mu = 2.0; mu <= 20.0; mu += 1.0) {
                TradeoffContext ctx;
                ctx.machine.busWidth = 4;
                ctx.machine.lineBytes = line;
                ctx.machine.cycleTime = mu;
                ctx.alpha = 0.5;
                const double bus = missFactorDoubleBus(ctx);
                const double wbuf = missFactorWriteBuffers(ctx);
                const double bnl = missFactorPartialStall(
                    ctx, 0.9 * ctx.machine.lineOverBus());
                order_holds =
                    order_holds && bus > wbuf && wbuf > bnl;
            }
        }
        bench::compareLine(
            "bus > write buffers > BNL (all mu_m, all L)",
            "holds, insensitive to line size",
            order_holds ? "holds" : "violated", order_holds);
    }
    return 0;
}
