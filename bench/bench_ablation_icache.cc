/**
 * @file
 * Ablation — the instruction-fetch term of Sec. 3.4.  Measures
 * R_I with a simulated instruction cache over the synthetic fetch
 * streams (single-program vs multiprogramming-like control flow)
 * and quantifies when the (R_I/L) phi_I mu_m term matters to the
 * CPU execution time, reproducing the paper's argument that it is
 * negligible at typical I-cache hit ratios.
 */

#include <cstdio>

#include "cache/cache.hh"
#include "common.hh"
#include "core/execution_time.hh"
#include "trace/ifetch.hh"

using namespace uatm;

namespace {

struct IcacheRun
{
    double hitRatio;
    double bytesRead;
    std::uint64_t fetches;
};

IcacheRun
runIcache(double loop_back, std::uint64_t fetches)
{
    IFetchConfig config;
    config.loopBackProbability = loop_back;
    IFetchGenerator gen(config, Rng(77));
    CacheConfig icache;
    icache.sizeBytes = 8 * 1024;
    icache.assoc = 2;
    icache.lineBytes = 32;
    SetAssocCache cache(icache);
    cache.setColdTracking(false);
    for (std::uint64_t i = 0; i < fetches; ++i)
        cache.access(*gen.next());
    return IcacheRun{
        cache.stats().hitRatio(),
        static_cast<double>(cache.stats().bytesRead(32)),
        fetches};
}

} // namespace

int
main()
{
    bench::banner("Ablation: instruction fetch",
                  "Sec. 3.4 — when does the (R_I/L) phi mu_m "
                  "term matter? (8KB I-cache, D = 4, mu_m = 8)");

    Machine machine;
    machine.busWidth = 4;
    machine.lineBytes = 32;
    machine.cycleTime = 8;

    bench::section("I-fetch burden vs control-flow locality");
    TextTable table({"loop-back P", "I-hit ratio %",
                     "X data-only", "X with I-term",
                     "I-term share %"});
    const std::uint64_t fetches = 200000;
    double share_high_locality = 1.0;
    double share_low_locality = 0.0;
    for (double loop_back : {0.999, 0.99, 0.95, 0.85, 0.70}) {
        const IcacheRun run = runIcache(loop_back, fetches);

        // A matching data workload: E = fetches, typical density.
        Workload w = Workload::fromHitRatio(
            static_cast<double>(run.fetches),
            0.3 * static_cast<double>(run.fetches), 0.95, 32,
            0.5);
        w.instrBytesRead = run.bytesRead;

        const double x_data = executionTimeFS(w, machine);
        ExecutionModelOptions with;
        with.includeInstructionFetch = true;
        const double x_full = executionTimeFS(w, machine, with);
        const double share = (x_full - x_data) / x_full * 100.0;
        if (loop_back == 0.999)
            share_high_locality = share;
        if (loop_back == 0.70)
            share_low_locality = share;
        table.addRow({TextTable::num(loop_back, 3),
                      TextTable::num(run.hitRatio * 100, 2),
                      TextTable::num(x_data, 0),
                      TextTable::num(x_full, 0),
                      TextTable::num(share, 2)});
    }
    bench::emitTable(table);
    bench::exportCsv("ablation_icache", table);

    bench::section("paper-vs-measured");
    bench::compareLine(
        "I-term negligible at high I-cache hit ratios",
        "small (Sec. 3.4)",
        TextTable::num(share_high_locality, 2) + " % of X",
        share_high_locality < 3.0);
    bench::compareLine(
        "multiprogramming regime makes it significant",
        "cannot be neglected",
        TextTable::num(share_low_locality, 2) + " % of X",
        share_low_locality > 8.0);
    return 0;
}
