/**
 * @file
 * Microbenchmarks for the simulation substrate itself, on the
 * obs::BenchSuite harness: reference generation, functional cache
 * access, the cache-size sweep, the write-buffer drain loop, the
 * equivalence solver, and the full timing engine per stalling
 * feature.  These guard the usability of the harness (Figures 1
 * and 3-5 re-simulate the six profiles at many operating points)
 * and feed the continuous-benchmark pipeline: every run writes
 * BENCH_sim_throughput.json for tools/perf_diff to gate and
 * tools/plot_figures.py --bench to trend.
 *
 *   bench_sim_throughput [--filter=<substr>] [--list] [--reps=<n>]
 */

#include <cstdint>
#include <cstdio>
#include <memory>

#include "cache/cache.hh"
#include "cache/sweep.hh"
#include "common.hh"
#include "core/equivalence.hh"
#include "cpu/timing_engine.hh"
#include "memory/write_buffer.hh"
#include "obs/bench.hh"
#include "trace/generators.hh"
#include "trace/reuse_distance.hh"
#include "trace/ycsb.hh"

namespace uatm {
namespace {

constexpr std::uint64_t kGenBatch = 1u << 16;
constexpr std::uint64_t kAccessBatch = 1u << 16;
constexpr std::uint64_t kEngineRefs = 10000;

void
registerGeneratorBenchmarks(obs::BenchSuite &suite)
{
    auto ws = std::make_shared<WorkingSetGenerator>(
        WorkingSetGenerator::Config{}, Rng(1));
    suite.add("gen/working_set", [ws](obs::BenchState &state) {
        state.setItems(kGenBatch);
        for (std::uint64_t i = 0; i < kGenBatch; ++i) {
            auto ref = ws->next();
            obs::doNotOptimize(ref);
        }
    });

    std::shared_ptr<TraceSource> spec =
        Spec92Profile::make("nasa7", 1);
    suite.add("gen/spec92_nasa7", [spec](obs::BenchState &state) {
        state.setItems(kGenBatch);
        for (std::uint64_t i = 0; i < kGenBatch; ++i) {
            auto ref = spec->next();
            obs::doNotOptimize(ref);
        }
    });

    YcsbWorkload::Config ycsb_config;
    ycsb_config.records = 100000;
    auto ycsb =
        std::make_shared<YcsbWorkload>(ycsb_config, Rng(1));
    suite.add("gen/ycsb_a", [ycsb](obs::BenchState &state) {
        state.setItems(kGenBatch);
        for (std::uint64_t i = 0; i < kGenBatch; ++i) {
            auto ref = ycsb->next();
            obs::doNotOptimize(ref);
        }
    });

    ReuseDistanceWorkload::Config reuse_config;
    reuse_config.profile = ReuseProfile::geometric(256, 0.95, 0.02);
    auto reuse = std::make_shared<ReuseDistanceWorkload>(
        reuse_config, Rng(1));
    suite.add("gen/reuse_dist", [reuse](obs::BenchState &state) {
        state.setItems(kGenBatch);
        for (std::uint64_t i = 0; i < kGenBatch; ++i) {
            auto ref = reuse->next();
            obs::doNotOptimize(ref);
        }
    });
}

void
registerCacheBenchmarks(obs::BenchSuite &suite)
{
    for (std::uint32_t assoc : {1u, 2u, 4u, 8u}) {
        CacheConfig config;
        config.sizeBytes = 8 * 1024;
        config.assoc = assoc;
        config.lineBytes = 32;

        // The cache and generator persist across reps so the
        // stat-snapshot delta covers exactly the timed reps.
        auto cache = std::make_shared<SetAssocCache>(config);
        cache->setColdTracking(false);
        auto gen = std::make_shared<WorkingSetGenerator>(
            WorkingSetGenerator::Config{}, Rng(7));

        const std::string name =
            "cache/access/assoc=" + std::to_string(assoc);
        suite.add(name, [cache, gen,
                         line = config.lineBytes](
                            obs::BenchState &state) {
            state.setItems(kAccessBatch);
            state.setStatsProvider(
                [cache, line](obs::StatRegistry &registry) {
                    cache->stats().registerStats(registry,
                                                 "cache", line);
                });
            for (std::uint64_t i = 0; i < kAccessBatch; ++i) {
                auto outcome = cache->access(*gen->next());
                obs::doNotOptimize(outcome);
            }
        });
    }

    suite.add("cache/sweep_size", [](obs::BenchState &state) {
        const std::vector<std::uint64_t> sizes = {
            4 * 1024, 8 * 1024, 16 * 1024, 32 * 1024};
        const std::uint64_t refs = 20000;
        CacheConfig base;
        base.assoc = 2;
        base.lineBytes = 32;
        WorkingSetGenerator source(WorkingSetGenerator::Config{},
                                   Rng(11));
        state.setItems(sizes.size() * refs);
        auto points = sweepCacheSize(base, source, sizes, refs);
        obs::doNotOptimize(points);
    });
}

void
registerWriteBufferBenchmark(obs::BenchSuite &suite)
{
    struct DrainRig
    {
        MemoryTiming timing{MemoryConfig{}};
        MemoryScheduler scheduler{timing,
                                  WriteBufferConfig{8, true}};
        Cycles now = 0;
    };
    auto rig = std::make_shared<DrainRig>();

    suite.add("wbuf/drain", [rig](obs::BenchState &state) {
        constexpr std::uint64_t kWrites = 4096;
        state.setItems(kWrites);
        state.setStatsProvider(
            [rig](obs::StatRegistry &registry) {
                rig->scheduler.registerStats(registry, "wbuf");
            });
        const Cycles mu = rig->timing.config().cycleTime;
        for (std::uint64_t i = 0; i < kWrites; ++i) {
            // Writes arrive slightly faster than the port drains
            // them, exercising both the queue and the full-buffer
            // backpressure path.
            rig->now += mu / 2 + 1;
            const Cycles resume =
                rig->scheduler.postWrite(rig->now, 32);
            obs::doNotOptimize(resume);
            rig->scheduler.drainTo(rig->now + mu);
        }
        rig->now = rig->scheduler.drainAllAfter(rig->now);
    });
}

void
registerEquivalenceBenchmark(obs::BenchSuite &suite)
{
    suite.add("core/equivalence", [](obs::BenchState &state) {
        constexpr int kSolves = 512;
        state.setItems(kSolves);
        for (int i = 0; i < kSolves; ++i) {
            DesignPoint base;
            base.hitRatio = 0.90 + 0.0001 * (i % 800);
            const DesignPoint improved =
                equivalentDoubleBusDesign(base, 0.5);
            obs::doNotOptimize(improved.hitRatio);
        }
    });
}

void
registerEngineBenchmarks(obs::BenchSuite &suite)
{
    const StallFeature features[] = {
        StallFeature::FS, StallFeature::BL, StallFeature::BNL1,
        StallFeature::BNL3, StallFeature::NB};
    for (StallFeature feature : features) {
        CacheConfig cache;
        cache.sizeBytes = 8 * 1024;
        cache.assoc = 2;
        cache.lineBytes = 32;
        MemoryConfig mem;
        mem.busWidthBytes = 4;
        mem.cycleTime = 8;
        CpuConfig cpu;
        cpu.feature = feature;

        struct EngineRig
        {
            EngineRig(const CacheConfig &cache,
                      const MemoryConfig &mem,
                      const CpuConfig &cpu)
                : engine(cache, mem, WriteBufferConfig{8, true},
                         cpu),
                  workload(Spec92Profile::make("doduc", 3))
            {}

            TimingEngine engine;
            std::unique_ptr<TraceSource> workload;
            /** Work summed across reps for the stat delta. */
            TimingStats total;
        };
        auto rig = std::make_shared<EngineRig>(cache, mem, cpu);

        const std::string name = std::string("engine/step/") +
                                 stallFeatureName(feature);
        suite.add(name, [rig](obs::BenchState &state) {
            state.setItems(kEngineRefs);
            state.setStatsProvider(
                [rig](obs::StatRegistry &registry) {
                    rig->total.registerStats(registry, "engine");
                });

            const TimingStats stats =
                rig->engine.run(*rig->workload, kEngineRefs);
            obs::doNotOptimize(stats.cycles);

            TimingStats &total = rig->total;
            total.cycles += stats.cycles;
            total.instructions += stats.instructions;
            total.references += stats.references;
            total.fills += stats.fills;
            total.writeArounds += stats.writeArounds;
            total.initialMissWait += stats.initialMissWait;
            total.inflightAccessStall +=
                stats.inflightAccessStall;
            total.missSerializationStall +=
                stats.missSerializationStall;
            total.flushStall += stats.flushStall;
            total.writeStall += stats.writeStall;
            total.bufferFullStall += stats.bufferFullStall;
            total.portContentionWait += stats.portContentionWait;
            total.prefetchesIssued += stats.prefetchesIssued;
            total.prefetchesUseful += stats.prefetchesUseful;
            total.prefetchesLate += stats.prefetchesLate;
        });
    }
}

} // namespace
} // namespace uatm

int
main(int argc, char **argv)
{
    using namespace uatm;

    const bench::BenchArgs args = bench::parseArgs(argc, argv);

    obs::BenchSuite suite("sim_throughput");
    registerGeneratorBenchmarks(suite);
    registerCacheBenchmarks(suite);
    registerWriteBufferBenchmark(suite);
    registerEquivalenceBenchmark(suite);
    registerEngineBenchmarks(suite);

    obs::BenchSuite::RunOptions options;
    options.filter = args.filter;
    options.listOnly = args.listOnly;
    options.reps = args.reps;

    if (!options.listOnly) {
        std::printf("sim_throughput microbenchmarks (%zu "
                    "registered)\n",
                    suite.size());
    }
    suite.run(options);
    return 0;
}
