/**
 * @file
 * google-benchmark microbenchmarks for the simulation substrate
 * itself: reference generation, functional cache access, and the
 * full timing engine, per stalling feature.  These guard the
 * usability of the harness (Figures 1 and 3-5 re-simulate the six
 * profiles at many operating points).
 */

#include <benchmark/benchmark.h>

#include "cache/cache.hh"
#include "cpu/timing_engine.hh"
#include "trace/generators.hh"

namespace uatm {
namespace {

void
BM_WorkingSetGeneration(benchmark::State &state)
{
    WorkingSetGenerator::Config config;
    WorkingSetGenerator gen(config, Rng(1));
    for (auto _ : state) {
        auto ref = gen.next();
        benchmark::DoNotOptimize(ref);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_WorkingSetGeneration);

void
BM_Spec92ProfileGeneration(benchmark::State &state)
{
    auto gen = Spec92Profile::make("nasa7", 1);
    for (auto _ : state) {
        auto ref = gen->next();
        benchmark::DoNotOptimize(ref);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_Spec92ProfileGeneration);

void
BM_CacheAccess(benchmark::State &state)
{
    CacheConfig config;
    config.sizeBytes = 8 * 1024;
    config.assoc = static_cast<std::uint32_t>(state.range(0));
    config.lineBytes = 32;
    SetAssocCache cache(config);
    cache.setColdTracking(false);
    WorkingSetGenerator::Config ws;
    WorkingSetGenerator gen(ws, Rng(7));
    for (auto _ : state) {
        auto outcome = cache.access(*gen.next());
        benchmark::DoNotOptimize(outcome);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CacheAccess)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void
BM_TimingEngine(benchmark::State &state)
{
    const auto feature =
        static_cast<StallFeature>(state.range(0));
    CacheConfig cache;
    cache.sizeBytes = 8 * 1024;
    cache.assoc = 2;
    cache.lineBytes = 32;
    MemoryConfig mem;
    mem.busWidthBytes = 4;
    mem.cycleTime = 8;
    CpuConfig cpu;
    cpu.feature = feature;
    TimingEngine engine(cache, mem, WriteBufferConfig{8, true},
                        cpu);
    auto workload = Spec92Profile::make("doduc", 3);

    const std::uint64_t refs_per_iter = 10000;
    for (auto _ : state) {
        auto stats = engine.run(*workload, refs_per_iter);
        benchmark::DoNotOptimize(stats);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations() * refs_per_iter));
    state.SetLabel(
        stallFeatureName(feature));
}
BENCHMARK(BM_TimingEngine)
    ->Arg(static_cast<int>(StallFeature::FS))
    ->Arg(static_cast<int>(StallFeature::BL))
    ->Arg(static_cast<int>(StallFeature::BNL1))
    ->Arg(static_cast<int>(StallFeature::BNL3))
    ->Arg(static_cast<int>(StallFeature::NB));

} // namespace
} // namespace uatm

BENCHMARK_MAIN();
