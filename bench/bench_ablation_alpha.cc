/**
 * @file
 * Ablation — sensitivity of the tradeoffs to the flush ratio
 * alpha.  The paper fixes alpha = 0.5 (after Smith); this sweep
 * shows how the bus-doubling band [2HR-1, 2.5HR-1.5] and the
 * write-buffer benefit move with dirtier or cleaner workloads.
 */

#include <cstdio>

#include "common.hh"
#include "core/tradeoff.hh"

using namespace uatm;

int
main()
{
    bench::banner("Ablation: alpha",
                  "flush-ratio sensitivity of the bus and "
                  "write-buffer tradeoffs (L = 8, D = 4)");

    bench::section("miss factor r vs alpha");
    TextTable table({"alpha", "bus r (mu=2)", "bus r (mu->inf)",
                     "wbuf r (mu=2)", "wbuf r (mu->inf)"});
    for (double alpha :
         {0.0, 0.1, 0.25, 0.5, 0.75, 1.0}) {
        TradeoffContext small;
        small.machine.busWidth = 4;
        small.machine.lineBytes = 8;
        small.machine.cycleTime = 2;
        small.alpha = alpha;
        TradeoffContext large = small;
        large.machine = small.machine.withCycleTime(1e9);

        table.addRow({TextTable::num(alpha, 2),
                      TextTable::num(missFactorDoubleBus(small), 3),
                      TextTable::num(missFactorDoubleBus(large), 3),
                      TextTable::num(missFactorWriteBuffers(small),
                                     3),
                      TextTable::num(missFactorWriteBuffers(large),
                                     3)});
    }
    bench::emitTable(table);
    bench::exportCsv("ablation_alpha", table);

    bench::section("observations");
    {
        TradeoffContext clean;
        clean.machine.busWidth = 4;
        clean.machine.lineBytes = 8;
        clean.machine.cycleTime = 8;
        clean.alpha = 0.0;
        TradeoffContext dirty = clean;
        dirty.alpha = 1.0;
        bench::compareLine(
            "write buffers useless on clean workloads",
            "r = 1 at alpha = 0",
            "r = " +
                TextTable::num(missFactorWriteBuffers(clean), 3),
            std::abs(missFactorWriteBuffers(clean) - 1.0) < 1e-9);
        // Both systems' flush terms scale with alpha, so the bus
        // factor barely moves (slightly down): the flush traffic
        // is halved by the wider bus exactly like the fills.
        bench::compareLine(
            "bus doubling nearly insensitive to alpha",
            "flat (both sides scale)",
            TextTable::num(missFactorDoubleBus(clean), 3) +
                " -> " +
                TextTable::num(missFactorDoubleBus(dirty), 3),
            std::abs(missFactorDoubleBus(dirty) -
                     missFactorDoubleBus(clean)) < 0.15);
        bench::compareLine(
            "write buffers grow with alpha",
            "monotone",
            TextTable::num(missFactorWriteBuffers(clean), 3) +
                " -> " +
                TextTable::num(missFactorWriteBuffers(dirty), 3),
            missFactorWriteBuffers(dirty) >
                missFactorWriteBuffers(clean));
    }
    return 0;
}
