/**
 * @file
 * Ablation — victim caches (Jouppi, reference [7] of the paper)
 * priced in the methodology's currency: the combined hit ratio of
 * a direct-mapped cache with an N-entry victim buffer, the dHR it
 * buys, and how that compares with what doubling the bus or adding
 * write buffers is worth at the same operating point (Eq. 6).
 */

#include <cstdio>

#include "cache/victim.hh"
#include "common.hh"
#include "core/tradeoff.hh"
#include "trace/generators.hh"

using namespace uatm;

namespace {

double
combinedHitRatio(const char *profile, std::uint32_t entries)
{
    CacheConfig config;
    config.sizeBytes = 8 * 1024;
    config.assoc = 1; // direct-mapped: conflict-miss rich
    config.lineBytes = 32;
    VictimCachedHierarchy cache(config, VictimConfig{entries});
    auto workload = Spec92Profile::make(profile, 131);
    for (int i = 0; i < 80000; ++i)
        cache.access(*workload->next());
    return cache.combinedHitRatio();
}

double
plainHitRatio(const char *profile, std::uint32_t assoc)
{
    CacheConfig config;
    config.sizeBytes = 8 * 1024;
    config.assoc = assoc;
    config.lineBytes = 32;
    SetAssocCache cache(config);
    auto workload = Spec92Profile::make(profile, 131);
    for (int i = 0; i < 80000; ++i)
        cache.access(*workload->next());
    return cache.stats().hitRatio();
}

} // namespace

int
main()
{
    bench::banner("Ablation: victim cache",
                  "8KB direct-mapped + N-entry victim buffer "
                  "(Jouppi [7]), priced via Eq. 6");

    TradeoffContext ctx;
    ctx.machine.busWidth = 4;
    ctx.machine.lineBytes = 32;
    ctx.machine.cycleTime = 8;
    ctx.alpha = 0.5;

    bench::section("combined hit ratio (%) per buffer size");
    TextTable table({"program", "DM", "+4", "+8", "+16", "2-way",
                     "dHR(+8) %", "bus worth %"});
    double recovered_sum = 0.0;
    int rows = 0;
    for (const auto &name : Spec92Profile::names()) {
        const double dm = plainHitRatio(name.c_str(), 1);
        const double v4 = combinedHitRatio(name.c_str(), 4);
        const double v8 = combinedHitRatio(name.c_str(), 8);
        const double v16 = combinedHitRatio(name.c_str(), 16);
        const double two_way = plainHitRatio(name.c_str(), 2);

        const double delta = (v8 - dm) * 100.0;
        const double bus_worth =
            hitRatioTraded(missFactorDoubleBus(ctx), dm) * 100.0;
        table.addRow({name, TextTable::num(dm * 100, 2),
                      TextTable::num(v4 * 100, 2),
                      TextTable::num(v8 * 100, 2),
                      TextTable::num(v16 * 100, 2),
                      TextTable::num(two_way * 100, 2),
                      TextTable::num(delta, 2),
                      TextTable::num(bus_worth, 2)});
        if (two_way > dm + 1e-6) {
            recovered_sum += (v8 - dm) / (two_way - dm);
            ++rows;
        }
    }
    bench::emitTable(table);
    bench::exportCsv("ablation_victim", table);

    bench::section("observations");
    if (rows > 0) {
        const double recovered = recovered_sum / rows;
        bench::compareLine(
            "victim buffer recovers the DM vs 2-way gap",
            "a large fraction (Jouppi)",
            TextTable::num(recovered * 100, 1) + " % avg",
            recovered > 0.3);
    }
    std::printf(
        "Reading the last two columns: when dHR(+8) exceeds the "
        "'bus worth' column, a handful of victim entries buys "
        "more performance than 32 extra pins — the unified "
        "currency at work.\n");
    return 0;
}
