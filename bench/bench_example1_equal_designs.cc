/**
 * @file
 * Example 1 (Sec. 5.2) — equal-performance design pairs:
 *   Case 1: 64-bit bus + 8K cache  ==  32-bit bus + 32K cache;
 *   Case 2: 64-bit bus + 32K cache ==  32-bit bus + 128K cache;
 * verified twice: analytically through the tradeoff model with the
 * Short & Levy hit ratios the paper quotes, and end-to-end with
 * the trace-driven timing engine on a workload whose measured
 * size -> hit-ratio curve is used in place of Short & Levy's.
 */

#include <cstdio>

#include "cache/sweep.hh"
#include "common.hh"
#include "core/equivalence.hh"
#include "cpu/timing_engine.hh"
#include "trace/generators.hh"

using namespace uatm;

namespace {

void
analyticCase(int small_k, int big_k)
{
    const auto sizes = CacheSizeModel::shortLevy();
    DesignPoint wide;
    wide.machine.busWidth = 8;
    wide.machine.lineBytes = 32;
    wide.machine.cycleTime = 1e7; // the paper's long-latency limit
    wide.hitRatio = sizes.hitRatioForSize(small_k * 1024.0);

    const DesignPoint narrow =
        equivalentNarrowBusDesign(wide, 0.5);
    const double size = designCacheSize(narrow, sizes);

    ApplicationShape app;
    const double x_wide = designExecutionTime(wide, app);
    const double x_narrow = designExecutionTime(narrow, app);

    bench::compareLine(
        "64-bit/" + std::to_string(small_k) + "K equals 32-bit/?",
        std::to_string(big_k) + "K",
        TextTable::num(size / 1024.0, 1) + "K",
        std::abs(size / 1024.0 - big_k) < 0.05 * big_k);
    bench::compareLine(
        "  execution times (model)", "equal",
        TextTable::num(x_wide, 0) + " vs " +
            TextTable::num(x_narrow, 0),
        std::abs(x_wide - x_narrow) < 1e-6 * x_wide);
}

} // namespace

int
main()
{
    bench::banner("Example 1",
                  "equal-performance (bus width, cache size) "
                  "design pairs");

    bench::section("analytic, Short & Levy hit ratios "
                   "(8K=91 %, 32K=95.5 %)");
    analyticCase(8, 32);
    analyticCase(32, 128);

    bench::section("end-to-end with the timing engine "
                   "(measured size->HR curve)");

    // Measure this workload's own size -> hit ratio curve; the
    // ShortLevyWorkload mix is calibrated to rise through the
    // 4K-128K range like the curve of [14].
    auto workload = ShortLevyWorkload::make(404);
    CacheConfig base;
    base.assoc = 2;
    base.lineBytes = 32;
    const std::vector<std::uint64_t> sizes = {
        4096, 8192, 16384, 32768, 65536, 131072};
    const auto sweep =
        sweepCacheSize(base, *workload, sizes, 120000, 10000);
    TextTable curve({"size", "hit ratio"});
    std::vector<SizePoint> anchors;
    for (const auto &point : sweep) {
        curve.addRow({std::to_string(point.value / 1024) + "K",
                      TextTable::num(point.hitRatio, 4)});
        // Clamp tiny non-monotonicities from finite runs.
        const double hr =
            anchors.empty()
                ? point.hitRatio
                : std::max(point.hitRatio,
                           anchors.back().hitRatio);
        anchors.push_back(SizePoint{point.value, hr});
    }
    bench::emitTable(curve);
    bench::exportCsv("example1_size_curve", curve);
    const CacheSizeModel measured_model(anchors);

    // Find the narrow-bus cache size equivalent to a wide-bus 8K
    // design, then run both through the engine.
    const Cycles mu_m = 8;
    DesignPoint wide;
    wide.machine.busWidth = 8;
    wide.machine.lineBytes = 32;
    wide.machine.cycleTime = static_cast<double>(mu_m);
    wide.hitRatio = measured_model.hitRatioForSize(8 * 1024.0);
    const DesignPoint narrow =
        equivalentNarrowBusDesign(wide, 0.5);
    const double narrow_size =
        measured_model.sizeForHitRatio(narrow.hitRatio);
    std::printf("wide 64-bit/8K HR = %.4f -> narrow 32-bit needs "
                "HR = %.4f ~ %.0fK cache\n",
                wide.hitRatio, narrow.hitRatio,
                narrow_size / 1024.0);

    // Cache sizes come in powers of two, so the predicted
    // equivalent usually falls between two buildable sizes;
    // simulate the narrow design at both bracketing sizes and
    // check that the wide design's execution time lands between
    // them (monotonicity in hit ratio makes this the exact
    // engine-level statement of the equivalence).
    std::uint64_t below = 4096;
    while (below * 2 < narrow_size)
        below *= 2;
    const std::uint64_t above = below * 2;

    MemoryConfig wide_mem;
    wide_mem.busWidthBytes = 8;
    wide_mem.cycleTime = mu_m;
    MemoryConfig narrow_mem;
    narrow_mem.busWidthBytes = 4;
    narrow_mem.cycleTime = mu_m;

    CpuConfig cpu;
    cpu.feature = StallFeature::FS;

    CacheConfig wide_cache = base;
    wide_cache.sizeBytes = 8 * 1024;
    TimingEngine wide_engine(wide_cache, wide_mem,
                             WriteBufferConfig{0, true}, cpu);
    const auto x_wide = wide_engine.run(*workload, 120000);

    auto run_narrow = [&](std::uint64_t size) {
        CacheConfig cache = base;
        cache.sizeBytes = size;
        TimingEngine engine(cache, narrow_mem,
                            WriteBufferConfig{0, true}, cpu);
        return engine.run(*workload, 120000).cycles;
    };
    const Cycles slow = run_narrow(below);
    const Cycles fast = run_narrow(above);

    const bool bracketed =
        x_wide.cycles <= slow && x_wide.cycles >= fast;
    bench::compareLine(
        "engine: 64-bit/8K between 32-bit/" +
            std::to_string(below / 1024) + "K and 32-bit/" +
            std::to_string(above / 1024) + "K",
        "bracketed",
        std::to_string(slow) + " >= " +
            std::to_string(x_wide.cycles) + " >= " +
            std::to_string(fast),
        bracketed);
    return 0;
}
