/**
 * @file
 * Ablation — multiple instruction issue (the paper's Sec. 6 future
 * work): how the traded hit ratio and the feature crossovers move
 * as the machine issues more than one instruction per cycle.
 *
 * Two analytic findings are demonstrated:
 *  1. the miss factor r_k decreases monotonically toward the pure
 *     per-miss cost ratio A/B (a wider-issue machine trades
 *     slightly less hit ratio per feature);
 *  2. the pipelined-vs-bus crossover is invariant to issue width.
 */

#include <cstdio>

#include "common.hh"
#include "core/superscalar.hh"

using namespace uatm;

int
main()
{
    bench::banner("Ablation: issue width",
                  "Sec. 6 future work — multiple instruction "
                  "issue (L = 32, D = 4, mu_m = 8, alpha = 0.5)");

    TradeoffContext ctx;
    ctx.machine.busWidth = 4;
    ctx.machine.lineBytes = 32;
    ctx.machine.cycleTime = 8;
    ctx.alpha = 0.5;

    bench::section("miss factor r and traded hit ratio vs k "
                   "(base HR 95 %)");
    TextTable table({"k", "bus r", "bus dHR %", "wbuf r",
                     "pipe r", "speedup at HR95"});
    const Workload w =
        Workload::fromHitRatio(1e6, 3e5, 0.95, 32, 0.5);
    const double x1 = executionTimeFS(w, ctx.machine);
    for (double k : {1.0, 2.0, 3.0, 4.0, 6.0, 8.0}) {
        SuperscalarModel model;
        model.issueWidth = k;
        const double xk = executionTimeSuperscalar(
            w, ctx.machine, ctx.machine.lineOverBus(), model);
        table.addRow(
            {TextTable::num(k, 0),
             TextTable::num(
                 missFactorDoubleBusSuperscalar(ctx, model), 4),
             TextTable::num(
                 hitRatioTraded(
                     missFactorDoubleBusSuperscalar(ctx, model),
                     0.95) *
                     100,
                 3),
             TextTable::num(
                 missFactorWriteBuffersSuperscalar(ctx, model),
                 4),
             TextTable::num(
                 missFactorPipelinedSuperscalar(ctx, 2.0, model),
                 4),
             TextTable::num(x1 / xk, 3)});
    }
    bench::emitTable(table);
    bench::exportCsv("ablation_issue_width", table);

    bench::section("findings");
    {
        SuperscalarModel k1, k8;
        k1.issueWidth = 1;
        k8.issueWidth = 8;
        const double r1 =
            missFactorDoubleBusSuperscalar(ctx, k1);
        const double r8 =
            missFactorDoubleBusSuperscalar(ctx, k8);
        const Machine wide = ctx.machine.withDoubledBus();
        const double cost_ratio =
            perMissCost(ctx.machine, ctx.machine.lineOverBus(),
                        ctx.alpha) /
            perMissCost(wide, wide.lineOverBus(), ctx.alpha);
        bench::compareLine("r_k decreases toward A/B",
                           "limit " +
                               TextTable::num(cost_ratio, 4),
                           TextTable::num(r1, 4) + " -> " +
                               TextTable::num(r8, 4),
                           r8 < r1 && r8 > cost_ratio);

        const auto c1 = pipelinedCrossoverSuperscalar(
            ctx, 2.0, k1, 2.0, 100.0);
        const auto c8 = pipelinedCrossoverSuperscalar(
            ctx, 2.0, k8, 2.0, 100.0);
        bench::compareLine(
            "pipelined/bus crossover invariant in k",
            "identical",
            (c1 ? TextTable::num(*c1, 3) : std::string("-")) +
                " vs " +
                (c8 ? TextTable::num(*c8, 3) : std::string("-")),
            c1 && c8 && std::abs(*c1 - *c8) < 1e-6);
    }
    return 0;
}
