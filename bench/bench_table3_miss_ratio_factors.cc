/**
 * @file
 * Table 3 — the ratio of cache misses r (= Lambda_m'/Lambda_m at
 * equal performance) for each architectural feature, evaluated
 * symbolically by the model across memory cycle times, for the
 * write-allocate base machine used throughout Sec. 5.
 */

#include <cstdio>

#include "common.hh"
#include "core/tradeoff.hh"

using namespace uatm;

namespace {

TradeoffContext
makeContext(double mu_m, double line)
{
    TradeoffContext ctx;
    ctx.machine.busWidth = 4;
    ctx.machine.lineBytes = line;
    ctx.machine.cycleTime = mu_m;
    ctx.alpha = 0.5;
    return ctx;
}

} // namespace

int
main()
{
    bench::banner("Table 3",
                  "miss-count factor r per feature (write-"
                  "allocate, alpha = 0.5, D = 4)");

    for (double line : {8.0, 32.0}) {
        bench::section("L = " + TextTable::num(line, 0) +
                       " bytes (L/D = " +
                       TextTable::num(line / 4.0, 0) + ")");
        TextTable table({"mu_m", "double bus", "write buffers",
                         "BNL phi=0.8 L/D", "pipelined q=2"});
        for (double mu : {2.0, 4.0, 6.0, 8.0, 12.0, 16.0, 20.0}) {
            const TradeoffContext ctx = makeContext(mu, line);
            table.addRow({
                TextTable::num(mu, 0),
                TextTable::num(missFactorDoubleBus(ctx), 3),
                TextTable::num(missFactorWriteBuffers(ctx), 3),
                TextTable::num(
                    missFactorPartialStall(
                        ctx, 0.8 * ctx.machine.lineOverBus()),
                    3),
                TextTable::num(missFactorPipelined(ctx, 2.0), 3),
            });
        }
        bench::emitTable(table);
        bench::exportCsv("table3_L" + TextTable::num(line, 0),
                         table);
    }

    bench::section("closed-form limits (Sec. 4.1)");
    bench::compareLine(
        "double bus, L=2D, mu_m=2", "r = 2.5",
        "r = " + TextTable::num(
                     missFactorDoubleBus(makeContext(2, 8)), 3),
        std::abs(missFactorDoubleBus(makeContext(2, 8)) - 2.5) <
            1e-9);
    bench::compareLine(
        "double bus, large mu_m", "r = 2.0",
        "r = " + TextTable::num(
                     missFactorDoubleBus(makeContext(1e9, 8)), 3),
        std::abs(missFactorDoubleBus(makeContext(1e9, 8)) - 2.0) <
            1e-5);
    return 0;
}
