/**
 * @file
 * Scaling benchmark for the exp::Runner worker pool: the same
 * cache-geometry sweep scenario at 1, 2, 4 and 8 threads, on the
 * obs::BenchSuite harness.  Writes BENCH_sweep_parallel.json for
 * tools/perf_diff, and reports the wall-clock speedup of each
 * thread count over the serial run.  Before timing anything, it
 * asserts the merged CSV is byte-identical at every thread count —
 * the runner's core determinism contract.
 *
 *   bench_sweep_parallel [--filter=<substr>] [--list] [--reps=<n>]
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common.hh"
#include "exp/scenarios.hh"
#include "obs/bench.hh"

namespace uatm {
namespace {

constexpr std::uint64_t kRefs = 20000;

exp::GeometrySweep
benchSweep()
{
    exp::GeometrySweep spec;
    spec.axis = exp::GeometrySweep::Axis::Size;
    spec.base.assoc = 2;
    spec.base.lineBytes = 32;
    spec.workload = exp::WorkloadSpec::spec92("nasa7", 9);
    spec.values = {4096,  8192,   16384,  32768,
                   65536, 131072, 262144, 524288};
    spec.refs = kRefs;
    spec.warmupRefs = kRefs / 10;
    return spec;
}

std::string
sweepCsv(unsigned threads)
{
    exp::Runner runner(exp::RunnerOptions{threads});
    return exp::runGeometrySweep(benchSweep(), runner)
        .renderCsv();
}

} // namespace
} // namespace uatm

static int
run(int argc, char **argv)
{
    using namespace uatm;

    const bench::BenchArgs args = bench::parseArgs(argc, argv);
    const unsigned threadCounts[] = {1, 2, 4, 8};

    if (!args.listOnly) {
        // Determinism gate first: a timing table for a runner
        // that merges differently per thread count would be
        // meaningless.
        const std::string serial = sweepCsv(1);
        for (unsigned threads : threadCounts) {
            if (sweepCsv(threads) != serial) {
                std::fprintf(stderr,
                             "FAIL: sweep output at %u threads "
                             "differs from the serial run\n",
                             threads);
                return EXIT_FAILURE;
            }
        }
        std::printf("sweep output byte-identical at 1/2/4/8 "
                    "threads; timing the pool...\n");
    }

    obs::BenchSuite suite("sweep_parallel");
    for (unsigned threads : threadCounts) {
        const std::string name =
            "sweep/geometry/t" + std::to_string(threads);
        suite.add(name, [threads](obs::BenchState &state) {
            const exp::GeometrySweep spec = benchSweep();
            state.setItems(spec.values.size() * spec.refs);
            exp::Runner runner(exp::RunnerOptions{threads});
            const auto table =
                exp::runGeometrySweep(spec, runner);
            obs::doNotOptimize(table.rows());
        });
    }

    obs::BenchSuite::RunOptions options;
    options.filter = args.filter;
    options.listOnly = args.listOnly;
    options.reps = args.reps;

    suite.run(options);

    if (!args.listOnly && args.filter.empty() &&
        suite.results().size() == 4) {
        const double serial =
            suite.results().front().nsPerRepMedian;
        std::printf("\nspeedup over 1 thread (wall clock, "
                    "%u-core host):\n",
                    std::thread::hardware_concurrency());
        for (const auto &result : suite.results()) {
            std::printf("  %-24s %6.2fx\n", result.name.c_str(),
                        serial / result.nsPerRepMedian);
        }
    }
    return 0;
}

int
main(int argc, char **argv)
{
    return uatm::bench::guardedMain(
        [&] { return run(argc, argv); });
}
