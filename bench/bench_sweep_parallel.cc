/**
 * @file
 * Scaling benchmark for the exp::Runner worker pool: the same
 * cache-geometry sweep scenario at 1, 2, 4 and 8 threads, on the
 * obs::BenchSuite harness.  Writes BENCH_sweep_parallel.json for
 * tools/perf_diff, and reports the wall-clock speedup of each
 * thread count over the serial run.  Before timing anything, it
 * asserts the merged CSV is byte-identical at every thread count —
 * both disarmed and with telemetry armed — the runner's core
 * determinism contract.
 *
 * After the timed reps, one telemetry-armed run per thread count
 * writes RUNNER_sweep_parallel_t<n>.json next to the BENCH json
 * and the scaling diagnosis (per-worker utilization, load
 * imbalance, Amdahl serial-fraction fit) prints inline; feed the
 * same files to tools/run_report for the standalone report.  With
 * UATM_TRACE set, the runner additionally emits one Chrome-trace
 * track per worker.
 *
 *   bench_sweep_parallel [--filter=<substr>] [--list] [--reps=<n>]
 */

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common.hh"
#include "exp/report.hh"
#include "exp/scenarios.hh"
#include "obs/bench.hh"

namespace uatm {
namespace {

constexpr std::uint64_t kRefs = 20000;

exp::GeometrySweep
benchSweep()
{
    exp::GeometrySweep spec;
    spec.axis = exp::GeometrySweep::Axis::Size;
    spec.base.assoc = 2;
    spec.base.lineBytes = 32;
    spec.workload = exp::WorkloadSpec::spec92("nasa7", 9);
    spec.values = {4096,  8192,   16384,  32768,
                   65536, 131072, 262144, 524288};
    spec.refs = kRefs;
    spec.warmupRefs = kRefs / 10;
    return spec;
}

std::string
sweepCsv(unsigned threads, bool telemetry = false,
         exp::GeometrySweep::Engine engine =
             exp::GeometrySweep::Engine::Auto)
{
    exp::RunnerOptions options;
    options.threads = threads;
    options.telemetry = telemetry;
    exp::Runner runner(options);
    exp::GeometrySweep spec = benchSweep();
    spec.engine = engine;
    return exp::runGeometrySweep(spec, runner).renderCsv();
}

/** $UATM_BENCH_OUT (default bench_out/), created if missing. */
std::filesystem::path
benchOutDir()
{
    const char *env = std::getenv("UATM_BENCH_OUT");
    const std::filesystem::path dir =
        std::filesystem::path(env && *env ? env : "bench_out")
            .lexically_normal();
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
        fatal("cannot create benchmark output directory '",
              dir.string(), "': ", ec.message());
    }
    return dir;
}

/**
 * One telemetry-armed run per thread count: write the
 * RUNNER_*.json artifacts, print each diagnosis, and return the
 * (threads, wall ns) samples for the Amdahl fit.
 */
std::vector<std::pair<unsigned, double>>
runTelemetrySweeps(const unsigned (&threadCounts)[4])
{
    const std::filesystem::path dir = benchOutDir();
    std::vector<std::pair<unsigned, double>> samples;
    for (unsigned threads : threadCounts) {
        exp::RunnerOptions options;
        options.threads = threads;
        options.telemetry = true;
        exp::Runner runner(options);
        const auto table =
            exp::runGeometrySweep(benchSweep(), runner);
        obs::doNotOptimize(table.rows());
        const exp::RunnerTelemetry &telemetry =
            runner.lastTelemetry();

        const std::filesystem::path path =
            (dir / ("RUNNER_sweep_parallel_t" +
                    std::to_string(threads) + ".json"))
                .lexically_normal();
        okOrFatal(telemetry.writeJson(path.string()));
        std::printf("[runner-json] wrote %s\n",
                    path.string().c_str());

        std::fputs(
            exp::formatDiagnosis(exp::diagnoseRun(telemetry, 3))
                .c_str(),
            stdout);
        if (telemetry.wallNs > 0)
            samples.emplace_back(
                telemetry.threadsUsed,
                static_cast<double>(telemetry.wallNs));
    }
    return samples;
}

} // namespace
} // namespace uatm

static int
run(int argc, char **argv)
{
    using namespace uatm;

    const bench::BenchArgs args = bench::parseArgs(argc, argv);
    const unsigned threadCounts[] = {1, 2, 4, 8};

    if (!args.listOnly) {
        // Determinism gate first: a timing table for a runner
        // that merges differently per thread count would be
        // meaningless.  Telemetry-armed runs are held to the
        // same contract — instrumentation must not perturb the
        // merge.
        const std::string serial = sweepCsv(1);
        for (unsigned threads : threadCounts) {
            if (sweepCsv(threads) != serial) {
                std::fprintf(stderr,
                             "FAIL: sweep output at %u threads "
                             "differs from the serial run\n",
                             threads);
                return EXIT_FAILURE;
            }
            if (sweepCsv(threads, true) != serial) {
                std::fprintf(stderr,
                             "FAIL: telemetry-armed sweep output "
                             "at %u threads differs from the "
                             "serial run\n",
                             threads);
                return EXIT_FAILURE;
            }
            // Cross-engine gate: the single-pass stack engine
            // must merge byte-identically to brute-force
            // per-point simulation at every thread count.
            if (sweepCsv(threads, false,
                         exp::GeometrySweep::Engine::PerPoint) !=
                serial) {
                std::fprintf(stderr,
                             "FAIL: per-point sweep output at %u "
                             "threads differs from the "
                             "single-pass engine\n",
                             threads);
                return EXIT_FAILURE;
            }
        }
        // The timing table below is only meaningful if the Auto
        // engine really took the fast path: refuse to benchmark a
        // silent fallback.
        resetSweepDispatchStats();
        sweepCsv(1);
        if (sweepDispatchCounters().fastPath == 0) {
            std::fprintf(stderr,
                         "FAIL: geometry sweep did not dispatch "
                         "to the single-pass stack engine "
                         "(declined=%llu per-point=%llu)\n",
                         static_cast<unsigned long long>(
                             sweepDispatchCounters().declined),
                         static_cast<unsigned long long>(
                             sweepDispatchCounters().perPoint));
            return EXIT_FAILURE;
        }
        resetSweepDispatchStats();
        std::printf("sweep output byte-identical at 1/2/4/8 "
                    "threads (disarmed, telemetry-armed and "
                    "brute-force); timing the pool...\n");
    }

    obs::BenchSuite suite("sweep_parallel");
    for (unsigned threads : threadCounts) {
        const std::string name =
            "sweep/geometry/t" + std::to_string(threads);
        suite.add(name, [threads](obs::BenchState &state) {
            const exp::GeometrySweep spec = benchSweep();
            state.setItems(spec.values.size() * spec.refs);
            exp::Runner runner(exp::RunnerOptions{threads});
            const auto table =
                exp::runGeometrySweep(spec, runner);
            obs::doNotOptimize(table.rows());
            state.setThreads(threads,
                             runner.lastStats().threadsUsed);
        });
    }
    // Brute-force reference: one simulation per grid point, same
    // scenario, one thread.  Recorded in the same JSON so
    // tools/perf_diff can gate the single-pass speedup
    // (--require-speedup) against it.
    suite.add("sweep/geometry/brute/t1",
              [](obs::BenchState &state) {
                  exp::GeometrySweep spec = benchSweep();
                  spec.engine =
                      exp::GeometrySweep::Engine::PerPoint;
                  state.setItems(spec.values.size() * spec.refs);
                  exp::Runner runner(exp::RunnerOptions{1});
                  const auto table =
                      exp::runGeometrySweep(spec, runner);
                  obs::doNotOptimize(table.rows());
                  state.setThreads(1,
                                   runner.lastStats().threadsUsed);
              });

    obs::BenchSuite::RunOptions options;
    options.filter = args.filter;
    options.listOnly = args.listOnly;
    options.reps = args.reps;

    suite.run(options);

    if (!args.listOnly && args.filter.empty() &&
        suite.results().size() == 5) {
        const double serial =
            suite.results().front().nsPerRepMedian;
        double brute = 0;
        std::printf("\nspeedup over 1 thread (wall clock, "
                    "%u-core host):\n",
                    std::thread::hardware_concurrency());
        for (const auto &result : suite.results()) {
            if (result.name == "sweep/geometry/brute/t1") {
                brute = result.nsPerRepMedian;
                continue;
            }
            std::printf("  %-24s %6.2fx\n", result.name.c_str(),
                        serial / result.nsPerRepMedian);
        }
        if (brute > 0) {
            std::printf("\nsingle-pass stack engine vs "
                        "brute-force per-point at 1 thread: "
                        "%.2fx\n",
                        brute / serial);
        }

        std::printf("\nscaling diagnosis (one telemetry-armed "
                    "run per thread count):\n");
        const auto samples = runTelemetrySweeps(threadCounts);
        std::fputs(
            exp::formatAmdahlFit(exp::fitAmdahl(samples), samples)
                .c_str(),
            stdout);
    }
    return 0;
}

int
main(int argc, char **argv)
{
    return uatm::bench::guardedMain(
        [&] { return run(argc, argv); });
}
