/**
 * @file
 * Figure 6 — validation of the tradeoff methodology against
 * Smith's design-target line-size optima.  Four panels; for each,
 * the reduced memory delay of Eq. 19 is swept over the normalised
 * bus speed beta and the optimum is compared with Smith's Eq. 16
 * criterion (they must agree exactly), plus the beneficial bus-
 * speed range of Sec. 5.4.2.  A fifth, simulator-driven panel
 * repeats the exercise with MR(L) measured by our own cache model
 * instead of the reconstructed design-target tables.
 */

#include <cstdio>

#include "cache/sweep.hh"
#include "common.hh"
#include "linesize/line_tradeoff.hh"
#include "trace/generators.hh"

using namespace uatm;

namespace {

struct Panel
{
    const char *name;
    MissRatioTable table;
    double c_prime;
    double bus;
    double smith_beta;       ///< beta the paper annotates
    std::uint32_t smith_opt; ///< the paper's stated optimum
};

void
runPanel(const Panel &panel)
{
    bench::section(std::string(panel.name) + "  (" +
                   panel.table.name() +
                   ", c' = " + TextTable::num(panel.c_prime, 2) +
                   ", D = " + TextTable::num(panel.bus, 0) + ")");

    LineDelayModel model;
    model.c = panel.c_prime + 1.0;
    model.busWidth = panel.bus;

    const std::uint32_t base_line = 8;
    std::vector<std::string> header = {"beta"};
    for (std::uint32_t line : panel.table.lineSizes()) {
        if (line > base_line)
            header.push_back("L=" + std::to_string(line) +
                             " x100");
    }
    header.push_back("Eq.19 best");
    header.push_back("Smith best");
    TextTable table(std::move(header));

    bool all_agree = true;
    for (double beta = 0.5; beta <= 10.0; beta += 0.5) {
        model.beta = beta;
        std::vector<std::string> row = {TextTable::num(beta, 1)};
        for (std::uint32_t line : panel.table.lineSizes()) {
            if (line <= base_line)
                continue;
            row.push_back(TextTable::num(
                100.0 *
                    reducedDelay(panel.table, model, base_line,
                                 line),
                2));
        }
        const std::uint32_t ours =
            tradeoffOptimalLine(panel.table, model, base_line);
        const std::uint32_t smiths =
            smithOptimalLine(panel.table, model);
        // Compare on objective value: robust to exact ties.
        const double o1 = model.smithObjective(
            panel.table.missRatio(ours), ours);
        const double o2 = model.smithObjective(
            panel.table.missRatio(smiths), smiths);
        all_agree = all_agree && std::abs(o1 - o2) < 1e-9;
        row.push_back(std::to_string(ours));
        row.push_back(std::to_string(smiths));
        table.addRow(row);
    }
    bench::emitTable(table);
    bench::exportCsv(std::string("fig6_") + panel.name, table);

    model.beta = panel.smith_beta;
    const std::uint32_t at_anchor =
        smithOptimalLine(panel.table, model);
    bench::compareLine(
        "Smith optimum at beta = " +
            TextTable::num(panel.smith_beta, 0),
        std::to_string(panel.smith_opt) + " bytes",
        std::to_string(at_anchor) + " bytes",
        at_anchor == panel.smith_opt);
    bench::compareLine("Eq. 19 optimum == Smith optimum",
                       "exact agreement (Sec. 5.4.2)",
                       all_agree ? "exact" : "mismatch",
                       all_agree);

    // Beneficial bus-speed range for the anchor optimum.
    if (const auto range = beneficialBetaRange(
            panel.table, model, base_line, panel.smith_opt, 0.25,
            12.0)) {
        std::printf("beneficial beta range for %uB over %uB: "
                    "[%.2f, %.2f]\n",
                    panel.smith_opt, base_line, range->first,
                    range->second);
    }
}

} // namespace

int
main()
{
    bench::banner("Figure 6",
                  "validation with Smith's design-target line "
                  "sizes (four panels + simulator panel)");

    const Panel panels[] = {
        // (a) 16K, Delay = 360ns + 15ns/byte @ 60ns, D = 4.
        {"panel_a_16K_D4", MissRatioTable::designTarget16K(), 6.0,
         4.0, 2.0, 32},
        // (b) 8K, Delay = 160ns + 15ns/byte @ 40ns, D = 8.
        {"panel_b_8K_D8", MissRatioTable::designTarget8K(), 4.0,
         8.0, 3.0, 16},
        // (c) 16K, Delay = 600ns + 40ns/byte, D = 8, c' = 16.75.
        {"panel_c_16K_D8", MissRatioTable::designTarget16K(),
         16.75, 8.0, 1.0, 64},
        // (d) 8K, Delay = 360ns + 15ns/byte @ 60ns, D = 8.
        {"panel_d_8K_D8", MissRatioTable::designTarget8K(), 6.0,
         8.0, 2.0, 32},
    };
    for (const auto &panel : panels)
        runPanel(panel);

    // Simulator-driven panel: measure MR(L) with the cache model
    // on a SPEC92-like mix and repeat the validation.
    bench::section("simulator-measured MR(L), 16K 2-way");
    auto workload = Spec92Profile::make("nasa7", 2026);
    CacheConfig cache;
    cache.sizeBytes = 16 * 1024;
    cache.assoc = 2;
    cache.lineBytes = 32;
    const auto sweep = sweepLineSize(cache, *workload,
                                     {8, 16, 32, 64, 128}, 120000,
                                     10000);
    TextTable mr_table({"line", "miss ratio"});
    for (const auto &point : sweep)
        mr_table.addRow({std::to_string(point.value),
                         TextTable::num(point.missRatio, 4)});
    bench::emitTable(mr_table);
    bench::exportCsv("fig6_simulated_mr", mr_table);

    const auto measured =
        MissRatioTable::fromSweep("measured 16K", sweep);
    LineDelayModel model;
    model.c = 7.0;
    model.busWidth = 4.0;
    bool agree = true;
    for (double beta = 0.5; beta <= 10.0; beta += 0.25) {
        model.beta = beta;
        const auto ours = tradeoffOptimalLine(measured, model, 8);
        const auto smiths = smithOptimalLine(measured, model);
        const double o1 =
            model.smithObjective(measured.missRatio(ours), ours);
        const double o2 = model.smithObjective(
            measured.missRatio(smiths), smiths);
        agree = agree && std::abs(o1 - o2) < 1e-9;
    }
    bench::compareLine("Eq. 19 == Smith on measured MR(L)",
                       "exact agreement", agree ? "exact" : "no",
                       agree);
    return 0;
}
