/**
 * @file
 * Table 2 — processor stalling features and their stalling-factor
 * bounds, with engine-measured phi values shown to fall inside the
 * bounds for the Figure 1 machine (8K 2-way 32B cache, D = 4).
 */

#include <cstdio>

#include "common.hh"
#include "cpu/phi_measurement.hh"

using namespace uatm;

int
main()
{
    bench::banner("Table 2",
                  "processor stalling features: phi bounds and "
                  "measured values");

    const double line_over_bus = 32.0 / 4.0;

    // Manifest: the Figure 1 machine every phi measurement below
    // simulates (flush traffic suppressed per Eq. 8).
    {
        const PhiExperiment exp;
        MemoryConfig memory;
        memory.busWidthBytes = exp.busWidthBytes;
        memory.cycleTime = 8;
        WriteBufferConfig wbuf;
        wbuf.depth = 64;
        CpuConfig cpu;
        cpu.suppressFlushTraffic = true;
        bench::recordMachine(exp.cache, memory, wbuf, cpu);
        bench::recordWorkload("spec92-six-profile-average",
                              exp.seed, 60000);
    }

    bench::section("Table 2 (phi in units of mu_m, L/D = 8)");
    TextTable bounds({"feature", "description", "phi min",
                      "phi max"});
    const struct
    {
        StallFeature feature;
        const char *description;
    } rows[] = {
        {StallFeature::FS, "full stalling"},
        {StallFeature::BL, "bus-locked"},
        {StallFeature::BNL1, "bus-not-locked (whole-line wait)"},
        {StallFeature::BNL2, "bus-not-locked (arrived part ok)"},
        {StallFeature::BNL3, "bus-not-locked (chunk wait)"},
        {StallFeature::NB, "non-blocking"},
    };
    for (const auto &row : rows) {
        const PhiBounds b = phiBounds(row.feature, line_over_bus);
        bounds.addRow({stallFeatureName(row.feature),
                       row.description, TextTable::num(b.min, 1),
                       TextTable::num(b.max, 1)});
    }
    bench::emitTable(bounds);
    bench::exportCsv("table2_bounds", bounds);

    bench::section("measured phi (avg of six SPEC92-like "
                   "profiles, mu_m = 8)");
    TextTable measured({"feature", "phi", "% of L/D",
                        "within Table 2 bounds"});
    for (StallFeature f :
         {StallFeature::BL, StallFeature::BNL1, StallFeature::BNL2,
          StallFeature::BNL3, StallFeature::NB}) {
        PhiExperiment exp;
        exp.feature = f;
        exp.cycleTime = 8;
        exp.refs = 60000;
        const auto all = measurePhiAllProfiles(exp);
        const auto avg = all.back();
        bench::recordStats(all.front().timing, exp.cycleTime);
        const PhiBounds b = phiBounds(f, line_over_bus);
        const bool ok = avg.phi >= b.min - 1e-9 &&
                        avg.phi <= b.max + 1e-9;
        measured.addRow({stallFeatureName(f),
                         TextTable::num(avg.phi, 3),
                         TextTable::num(avg.percentOfFull, 1),
                         ok ? "yes" : "NO"});
    }
    bench::emitTable(measured);
    bench::exportCsv("table2_measured", measured);
    return 0;
}
