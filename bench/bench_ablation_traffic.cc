/**
 * @file
 * Ablation — bus traffic vs delay (Goodman, the paper's reference
 * [1], and the Sec. 2 remark that optimising "memory traffic" is
 * yet another single-axis criterion).  Sweeps the line size on a
 * simulated workload and reports mean memory delay (Eq. 15)
 * against bytes moved per instruction: the two optima diverge,
 * which is precisely why a unified methodology is needed.
 */

#include <cstdio>

#include "cache/sweep.hh"
#include "common.hh"
#include "core/workload.hh"
#include "linesize/delay_model.hh"
#include "trace/generators.hh"

using namespace uatm;

int
main()
{
    bench::banner("Ablation: traffic vs delay",
                  "line-size sweep, 8KB 2-way, D = 4 "
                  "(Goodman [1] traffic metric)");

    LineDelayModel delay;
    delay.c = 7;
    delay.beta = 2;
    delay.busWidth = 4;

    for (const char *profile : {"swm256", "doduc"}) {
        bench::section(profile);
        TextTable table({"line", "hit ratio %", "mean delay",
                         "bytes/instr", "delay best", "traffic "
                         "best"});

        CacheConfig base;
        base.sizeBytes = 8 * 1024;
        base.assoc = 2;

        double best_delay = 1e18, best_traffic = 1e18;
        std::uint32_t delay_line = 0, traffic_line = 0;
        struct Row
        {
            std::uint32_t line;
            double hr, d, t;
        };
        std::vector<Row> rows;

        for (std::uint32_t line : {8u, 16u, 32u, 64u, 128u}) {
            CacheConfig config = base;
            config.lineBytes = line;
            auto workload = Spec92Profile::make(profile, 515);
            const auto run =
                runCacheSim(config, *workload, 100000, 10000);
            const Workload w =
                Workload::fromCacheRun(run.stats, line, 4);
            const double d = delay.meanMemoryDelay(
                run.missRatio(), static_cast<double>(line));
            const double t = w.busTrafficPerInstruction(4);
            rows.push_back(Row{line, run.hitRatio(), d, t});
            if (d < best_delay) {
                best_delay = d;
                delay_line = line;
            }
            if (t < best_traffic) {
                best_traffic = t;
                traffic_line = line;
            }
        }
        for (const auto &row : rows) {
            table.addRow({std::to_string(row.line),
                          TextTable::num(row.hr * 100, 2),
                          TextTable::num(row.d, 4),
                          TextTable::num(row.t, 4),
                          row.line == delay_line ? "<-" : "",
                          row.line == traffic_line ? "<-" : ""});
        }
        bench::emitTable(table);
        bench::exportCsv(std::string("ablation_traffic_") +
                             profile,
                         table);
        bench::compareLine(
            "delay optimum vs traffic optimum",
            "diverge (Sec. 2's point)",
            std::to_string(delay_line) + "B vs " +
                std::to_string(traffic_line) + "B",
            traffic_line <= delay_line);
    }
    return 0;
}
