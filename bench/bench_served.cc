/**
 * @file
 * Serving-layer benchmark: the same sweep request against a cold
 * and a warm PointCache, on the obs::BenchSuite harness.  Writes
 * BENCH_served.json so CI can gate the cache with
 *
 *   perf_diff --require-speedup=served/sweep/cold:served/sweep/warm:10
 *
 * — a warm request must be at least an order of magnitude faster
 * than recomputation, or the cache is decorative.
 *
 * Before timing anything the harness asserts the serving
 * contracts: the warm table renders byte-identical to the cold
 * one (content-addressed hits must not change a single byte), a
 * fully warm run reports cache_hits == point count, and a warm
 * superset request recomputes only the new points.
 *
 *   bench_served [--filter=<substr>] [--list] [--reps=<n>]
 */

#include <cstdio>
#include <string>

#include "common.hh"
#include "obs/bench.hh"
#include "serve/service.hh"

namespace uatm {
namespace {

/** The benched request: one axis, eight geometries.  Kept small
 *  enough that a cold rep is quick and a warm rep is dominated by
 *  cache lookups — the ratio under test. */
constexpr const char *kScenario = R"({
  "name": "bench_served",
  "kernel": "cache",
  "refs": 20000,
  "warmup": 2000,
  "workload": {"method": "spec92",
               "params": {"profile": "nasa7"}, "seed": 9},
  "cache": {"assoc": 2, "line": 32},
  "axes": [{"axis": "cache.size",
            "values": [4096, 8192, 16384, 32768, 65536,
                       131072, 262144, 524288]}],
  "threads": 1
})";

/** kScenario plus one extra size: the superset request. */
constexpr const char *kScenarioSuperset = R"({
  "name": "bench_served",
  "kernel": "cache",
  "refs": 20000,
  "warmup": 2000,
  "workload": {"method": "spec92",
               "params": {"profile": "nasa7"}, "seed": 9},
  "cache": {"assoc": 2, "line": 32},
  "axes": [{"axis": "cache.size",
            "values": [4096, 8192, 16384, 32768, 65536,
                       131072, 262144, 524288, 1048576]}],
  "threads": 1
})";

serve::SweepRequest
parseOrDie(const char *text)
{
    return valueOrFatal(serve::parseSweepRequest(text));
}

serve::SweepOutcome
runOrDie(serve::SweepService &service,
         const serve::SweepRequest &request)
{
    return valueOrFatal(service.runSweep(request));
}

/** The byte-identity and accounting gates (see file comment). */
bool
verifyContracts(serve::SweepService &service)
{
    const serve::SweepRequest request = parseOrDie(kScenario);

    service.cache().clear();
    const serve::SweepOutcome cold = runOrDie(service, request);
    const serve::SweepOutcome warm = runOrDie(service, request);

    const std::string cold_rows = cold.table.renderNdjson();
    if (warm.table.renderNdjson() != cold_rows) {
        std::fprintf(stderr, "FAIL: warm-cache NDJSON differs "
                             "from the cold run\n");
        return false;
    }
    if (cold.computed != cold.points || cold.cacheHits != 0) {
        std::fprintf(stderr,
                     "FAIL: cold run computed %zu/%zu points "
                     "with %zu hits\n",
                     cold.computed, cold.points, cold.cacheHits);
        return false;
    }
    if (warm.cacheHits != warm.points || warm.computed != 0) {
        std::fprintf(stderr,
                     "FAIL: warm run hit %zu/%zu points "
                     "(computed %zu)\n",
                     warm.cacheHits, warm.points, warm.computed);
        return false;
    }

    const serve::SweepOutcome superset =
        runOrDie(service, parseOrDie(kScenarioSuperset));
    if (superset.computed != superset.points - warm.points ||
        superset.cacheHits != warm.points) {
        std::fprintf(stderr,
                     "FAIL: superset run computed %zu and hit "
                     "%zu of %zu points (want %zu computed, "
                     "%zu hits)\n",
                     superset.computed, superset.cacheHits,
                     superset.points,
                     superset.points - warm.points, warm.points);
        return false;
    }
    std::printf("serving contracts hold: warm NDJSON "
                "byte-identical, warm hits %zu/%zu, superset "
                "recomputed only %zu new point(s); timing...\n",
                warm.cacheHits, warm.points, superset.computed);
    return true;
}

} // namespace
} // namespace uatm

static int
run(int argc, char **argv)
{
    using namespace uatm;

    const bench::BenchArgs args = bench::parseArgs(argc, argv);

    serve::ServiceOptions service_options;
    service_options.threads = 1;
    serve::SweepService service(service_options);

    if (!args.listOnly && !verifyContracts(service))
        return EXIT_FAILURE;

    const serve::SweepRequest request =
        uatm::serve::parseSweepRequest(kScenario).value();
    const std::uint64_t items = 8 * 20000;

    obs::BenchSuite suite("served");
    suite.add("served/sweep/cold",
              [&](obs::BenchState &state) {
                  state.setItems(items);
                  service.cache().clear();
                  const auto outcome = service.runSweep(request);
                  obs::doNotOptimize(
                      outcome.value().table.rows());
                  state.setThreads(1, 0);
              });
    // The warmup reps leave the cache primed, so every timed rep
    // of the warm benchmark is all hits.
    suite.add("served/sweep/warm",
              [&](obs::BenchState &state) {
                  state.setItems(items);
                  const auto outcome = service.runSweep(request);
                  obs::doNotOptimize(
                      outcome.value().table.rows());
                  state.setThreads(1, 0);
              });

    obs::BenchSuite::RunOptions options;
    options.filter = args.filter;
    options.listOnly = args.listOnly;
    options.reps = args.reps;
    suite.run(options);

    if (!args.listOnly && args.filter.empty() &&
        suite.results().size() == 2) {
        const double cold = suite.results()[0].nsPerRepMedian;
        const double warm = suite.results()[1].nsPerRepMedian;
        if (warm > 0) {
            std::printf("\nwarm-cache speedup over cold: "
                        "%.1fx\n",
                        cold / warm);
        }
    }
    return 0;
}

int
main(int argc, char **argv)
{
    return uatm::bench::guardedMain(
        [&] { return run(argc, argv); });
}
