/**
 * @file
 * Ablation — non-blocking caches with multiple outstanding misses.
 * Sec. 5.3 notes that without "the mechanism for supporting
 * multiple load/store miss", subsequent accesses stall anyway;
 * this experiment quantifies that with the timing engine: NB
 * execution time and effective phi as a function of MSHR count.
 */

#include <cstdio>

#include "common.hh"
#include "cpu/timing_engine.hh"
#include "trace/generators.hh"

using namespace uatm;

int
main()
{
    bench::banner("Ablation: MSHRs",
                  "non-blocking cache with 1..8 outstanding "
                  "misses (8KB 2-way 32B, D = 4, mu_m = 12)");

    MemoryConfig mem;
    mem.busWidthBytes = 4;
    mem.cycleTime = 12;

    CacheConfig cache;
    cache.sizeBytes = 8 * 1024;
    cache.assoc = 2;
    cache.lineBytes = 32;

    for (const char *profile : {"doduc", "hydro2d"}) {
        bench::section(profile);
        TextTable table({"mshrs", "cycles", "CPI", "phi",
                         "serialization stalls"});
        Cycles at1 = 0, at8 = 0;
        for (std::uint32_t mshrs : {1u, 2u, 4u, 8u}) {
            CpuConfig cpu;
            cpu.feature = StallFeature::NB;
            cpu.mshrs = mshrs;
            cpu.suppressFlushTraffic = true;
            TimingEngine engine(cache, mem,
                                WriteBufferConfig{16, true}, cpu);
            auto workload = Spec92Profile::make(profile, 313);
            const auto stats = engine.run(*workload, 80000);
            bench::recordMachine(cache, mem,
                                 WriteBufferConfig{16, true}, cpu);
            bench::recordWorkload(profile, 313, 80000);
            bench::recordStats(stats, mem.cycleTime);
            if (mshrs == 1)
                at1 = stats.cycles;
            if (mshrs == 8)
                at8 = stats.cycles;
            table.addRow(
                {std::to_string(mshrs),
                 std::to_string(stats.cycles),
                 TextTable::num(stats.cpi(), 3),
                 TextTable::num(stats.phi(mem.cycleTime), 3),
                 std::to_string(stats.missSerializationStall)});
        }
        bench::emitTable(table);
        bench::exportCsv(std::string("ablation_mshr_") + profile,
                         table);
        bench::compareLine(
            "multiple MSHRs help the NB cache",
            "cycles shrink with MSHRs (Sec. 5.3 remark)",
            std::to_string(at1) + " -> " + std::to_string(at8),
            at8 <= at1);
    }
    return 0;
}
