/**
 * @file
 * Ablation — pipelined-memory issue interval q.  The paper fixes
 * q = 2 ("the best possible implementation"); this sweep maps how
 * the pipelined-vs-bus-doubling crossover moves as the pipeline
 * slows down, including the regime where it disappears.
 */

#include <cstdio>

#include "common.hh"
#include "core/tradeoff.hh"

using namespace uatm;

int
main()
{
    bench::banner("Ablation: q",
                  "pipeline interval sensitivity (L = 32, "
                  "D = 4, alpha = 0.5)");

    bench::section("crossover mu_m (pipelined overtakes bus "
                   "doubling)");
    TextTable table({"q", "crossover mu_m", "r_pipe at mu=8",
                     "r_pipe at mu=20"});
    for (double q : {1.0, 2.0, 3.0, 4.0, 6.0, 8.0}) {
        TradeoffContext ctx;
        ctx.machine.busWidth = 4;
        ctx.machine.lineBytes = 32;
        ctx.machine.cycleTime = 8;
        ctx.alpha = 0.5;

        // The model requires q <= mu_m; search from there.
        const auto crossover = crossoverCycleTime(
            ctx, TradeFeature::PipelinedMemory,
            TradeFeature::DoubleBus, q, 1.0, std::max(2.0, q),
            400.0);

        TradeoffContext at8 = ctx;
        at8.machine = ctx.machine.withCycleTime(std::max(8.0, q));
        TradeoffContext at20 = ctx;
        at20.machine = ctx.machine.withCycleTime(20.0);

        table.addRow(
            {TextTable::num(q, 0),
             crossover ? TextTable::num(*crossover, 2)
                       : std::string("none"),
             TextTable::num(missFactorPipelined(at8, q), 3),
             TextTable::num(missFactorPipelined(at20, q), 3)});
    }
    bench::emitTable(table);
    bench::exportCsv("ablation_q", table);

    bench::section("observations");
    {
        TradeoffContext ctx;
        ctx.machine.busWidth = 4;
        ctx.machine.lineBytes = 32;
        ctx.machine.cycleTime = 8;
        ctx.alpha = 0.5;
        const auto fast = crossoverCycleTime(
            ctx, TradeFeature::PipelinedMemory,
            TradeFeature::DoubleBus, 2.0, 1.0, 2.0, 400.0);
        const auto slow = crossoverCycleTime(
            ctx, TradeFeature::PipelinedMemory,
            TradeFeature::DoubleBus, 6.0, 1.0, 6.0, 400.0);
        bench::compareLine(
            "slower pipelines push the crossover out",
            "monotone in q",
            (fast ? TextTable::num(*fast, 2) : std::string("-")) +
                " -> " +
                (slow ? TextTable::num(*slow, 2)
                      : std::string("none")),
            fast && (!slow || *slow > *fast));
    }
    return 0;
}
