/**
 * @file
 * Ablation — hardware prefetching (Sec. 3.3's latency-hiding
 * remark and Sec. 2's Chen & Baer citation).  Runs the timing
 * engine with no prefetch, on-miss prefetch and tagged prefetch
 * over the SPEC92-like profiles plus two polar microworkloads
 * (sequential sweep, pointer chase), and checks the cited result
 * that prefetching caches often outperform non-blocking caches.
 */

#include <cstdio>

#include "common.hh"
#include "cpu/timing_engine.hh"
#include "trace/generators.hh"

using namespace uatm;

namespace {

TimingStats
run(TraceSource &workload, StallFeature feature,
    PrefetchPolicy prefetch, std::uint32_t mshrs = 1)
{
    CacheConfig cache;
    cache.sizeBytes = 8 * 1024;
    cache.assoc = 2;
    cache.lineBytes = 32;
    MemoryConfig mem;
    mem.busWidthBytes = 4;
    mem.cycleTime = 8;
    CpuConfig cpu;
    cpu.feature = feature;
    cpu.prefetch = prefetch;
    cpu.mshrs = mshrs;
    TimingEngine engine(cache, mem, WriteBufferConfig{16, true},
                        cpu);
    return engine.run(workload, 80000);
}

} // namespace

int
main()
{
    bench::banner("Ablation: prefetching",
                  "next-line prefetch vs no prefetch vs "
                  "non-blocking (8KB 2-way 32B, D=4, mu_m=8)");

    bench::section("SPEC92-like profiles (FS base)");
    // Note the honest result: naive next-line prefetch (no
    // abandonment, no stride detection) *loses* on these mixed
    // workloads — the regime of Tullsen & Eggers' "Limitations of
    // Cache Prefetching" which the paper also cites (Sec. 2);
    // streaming code (below) shows the Chen & Baer upside.
    TextTable table({"program", "none", "on-miss", "tagged",
                     "tagged useful %", "speedup"});
    for (const auto &name : Spec92Profile::names()) {
        auto make = [&] {
            return Spec92Profile::make(name, 606);
        };
        auto w0 = make();
        const auto none =
            run(*w0, StallFeature::FS, PrefetchPolicy::None);
        auto w1 = make();
        const auto onmiss =
            run(*w1, StallFeature::FS, PrefetchPolicy::OnMiss);
        auto w2 = make();
        const auto tagged =
            run(*w2, StallFeature::FS, PrefetchPolicy::Tagged);
        const double useful =
            tagged.prefetchesIssued
                ? 100.0 *
                      static_cast<double>(tagged.prefetchesUseful) /
                      static_cast<double>(tagged.prefetchesIssued)
                : 0.0;
        {
            // Manifest: the tagged-prefetch machine this row ran.
            CacheConfig cache;
            cache.sizeBytes = 8 * 1024;
            cache.assoc = 2;
            cache.lineBytes = 32;
            MemoryConfig mem;
            mem.busWidthBytes = 4;
            mem.cycleTime = 8;
            CpuConfig cpu;
            cpu.feature = StallFeature::FS;
            cpu.prefetch = PrefetchPolicy::Tagged;
            bench::recordMachine(cache, mem,
                                 WriteBufferConfig{16, true}, cpu);
            bench::recordWorkload(name, 606, 80000);
            bench::recordStats(tagged, mem.cycleTime);
        }
        table.addRow({name, std::to_string(none.cycles),
                      std::to_string(onmiss.cycles),
                      std::to_string(tagged.cycles),
                      TextTable::num(useful, 1),
                      TextTable::num(
                          static_cast<double>(none.cycles) /
                              static_cast<double>(tagged.cycles),
                          3)});
    }
    bench::emitTable(table);
    bench::exportCsv("ablation_prefetch_profiles", table);

    bench::section("polar microworkloads");
    {
        StrideGenerator::Config seq;
        seq.elements = 1 << 15;
        seq.elemSize = 4;
        seq.strideBytes = 4;
        seq.storeFraction = 0.0;
        seq.gap = {2, 4};

        PointerChaseGenerator::Config chase;
        chase.nodes = 1 << 12;
        chase.nodeSize = 64;
        chase.accessSize = 8;
        chase.fieldsPerVisit = 1;
        chase.gap = {2, 4};

        TextTable polar({"workload", "FS none", "FS tagged",
                         "NB (2 MSHRs)", "winner"});
        {
            StrideGenerator g1(seq, Rng(1));
            const auto none = run(g1, StallFeature::FS,
                                  PrefetchPolicy::None);
            StrideGenerator g2(seq, Rng(1));
            const auto tag = run(g2, StallFeature::FS,
                                 PrefetchPolicy::Tagged);
            StrideGenerator g3(seq, Rng(1));
            const auto nb = run(g3, StallFeature::NB,
                                PrefetchPolicy::None, 2);
            polar.addRow({"sequential sweep",
                          std::to_string(none.cycles),
                          std::to_string(tag.cycles),
                          std::to_string(nb.cycles),
                          tag.cycles < nb.cycles ? "prefetch"
                                                 : "NB"});
            bench::compareLine(
                "prefetching beats non-blocking (sequential)",
                "often (Chen & Baer, cited Sec. 2)",
                std::to_string(tag.cycles) + " vs " +
                    std::to_string(nb.cycles),
                tag.cycles < nb.cycles);
        }
        {
            PointerChaseGenerator g1(chase, Rng(2));
            const auto none = run(g1, StallFeature::FS,
                                  PrefetchPolicy::None);
            PointerChaseGenerator g2(chase, Rng(2));
            const auto tag = run(g2, StallFeature::FS,
                                 PrefetchPolicy::Tagged);
            PointerChaseGenerator g3(chase, Rng(2));
            const auto nb = run(g3, StallFeature::NB,
                                PrefetchPolicy::None, 2);
            polar.addRow({"pointer chase",
                          std::to_string(none.cycles),
                          std::to_string(tag.cycles),
                          std::to_string(nb.cycles),
                          tag.cycles < nb.cycles ? "prefetch"
                                                 : "NB"});
            bench::compareLine(
                "useless prefetches cost bandwidth (chase)",
                "prefetch can lose without abandonment",
                std::to_string(none.cycles) + " -> " +
                    std::to_string(tag.cycles),
                tag.cycles >= none.cycles);
        }
        bench::emitTable(polar);
        bench::exportCsv("ablation_prefetch_polar", polar);
    }

    bench::section("reading");
    std::printf(
        "Both cited results reproduce: prefetching beats the "
        "non-blocking cache on streaming code (Chen & Baer), and "
        "offers limited or negative benefit on irregular/mixed "
        "traffic where useless transfers burn bus bandwidth "
        "(Tullsen & Eggers).\n");
    return 0;
}
