/**
 * @file
 * Figure 1 — stalling factor (as a percentage of the full-stalling
 * value L/D) versus memory cycle time for the BL, BNL1, BNL2 and
 * BNL3 features, averaged over six SPEC92-like programs on an
 * 8 KB two-way write-allocate cache with 32-byte lines and a
 * 4-byte bus, regenerated with the trace-driven timing engine.
 *
 * Paper shape to match: BL/BNL1/BNL2 very high (approaching 100 %
 * of L/D) and rising with the memory cycle time; BNL3 materially
 * lower at small cycle times (the 20-30 % read-latency reduction of
 * Summary bullet 3).
 */

#include <cstdio>

#include "common.hh"
#include "cpu/eq8_model.hh"
#include "cpu/phi_measurement.hh"
#include "trace/generators.hh"

using namespace uatm;

int
main()
{
    bench::banner("Figure 1",
                  "stalling factor vs memory cycle time "
                  "(8KB 2-way, L=32, D=4, six profiles)");

    // Manifest: the machine every phi measurement below simulates
    // (mirrors measurePhi(); flush traffic suppressed per Eq. 8).
    {
        const PhiExperiment exp;
        MemoryConfig memory;
        memory.busWidthBytes = exp.busWidthBytes;
        memory.cycleTime = exp.cycleTime;
        WriteBufferConfig wbuf;
        wbuf.depth = 64;
        CpuConfig cpu;
        cpu.suppressFlushTraffic = true;
        bench::recordMachine(exp.cache, memory, wbuf, cpu);
        bench::recordWorkload("spec92-six-profile-average",
                              exp.seed, exp.refs);
    }

    const std::vector<Cycles> cycle_times = {4, 8, 12, 16, 24,
                                             32, 40, 48};
    const std::vector<StallFeature> features = {
        StallFeature::BL, StallFeature::BNL1, StallFeature::BNL2,
        StallFeature::BNL3};

    TextTable table({"mu_m", "BL %", "BNL1 %", "BNL2 %",
                     "BNL3 %"});
    AsciiChart chart(64, 18);
    chart.setTitle("Figure 1: stalling factor (% of L/D) vs "
                   "mu_m per 4 bytes");
    chart.setXLabel("memory cycle time per 4 bytes");
    chart.setYLabel("% of L/D");

    std::vector<ChartSeries> series = {
        {"BL", 'x', {}, {}},
        {"BNL1", 'o', {}, {}},
        {"BNL2", '+', {}, {}},
        {"BNL3", '.', {}, {}},
    };

    // Per-profile detail shown afterwards, as the paper averages
    // six programs with 50M instructions; we use shorter but
    // statistically stable windows.
    for (Cycles mu : cycle_times) {
        std::vector<std::string> row = {
            TextTable::num(static_cast<double>(mu), 0)};
        for (std::size_t i = 0; i < features.size(); ++i) {
            PhiExperiment exp;
            exp.feature = features[i];
            exp.cycleTime = mu;
            exp.refs = 60000;
            const auto avg = measurePhiAllProfiles(exp).back();
            row.push_back(TextTable::num(avg.percentOfFull, 1));
            series[i].x.push_back(static_cast<double>(mu));
            series[i].y.push_back(avg.percentOfFull);
        }
        table.addRow(row);
    }
    bench::section("average stalling factor (% of L/D)");
    bench::emitTable(table);
    bench::exportCsv("fig1_stall_factors", table);

    for (auto &s : series)
        chart.addSeries(std::move(s));
    bench::emitChart(chart);

    bench::section("per-profile detail at mu_m = 8");
    TextTable detail({"program", "BL %", "BNL1 %", "BNL2 %",
                      "BNL3 %"});
    std::vector<std::vector<std::string>> rows;
    for (std::size_t i = 0; i < features.size(); ++i) {
        PhiExperiment exp;
        exp.feature = features[i];
        exp.cycleTime = 8;
        exp.refs = 60000;
        const auto results = measurePhiAllProfiles(exp);
        for (std::size_t p = 0; p < results.size(); ++p) {
            if (i == 0)
                rows.push_back({results[p].workload});
            rows[p].push_back(
                TextTable::num(results[p].percentOfFull, 1));
        }
    }
    for (auto &row : rows)
        detail.addRow(row);
    bench::emitTable(detail);
    bench::exportCsv("fig1_per_profile_mu8", detail);

    bench::section("Eq. 8 static estimate vs engine (BNL1)");
    {
        TextTable eq8({"mu_m", "Eq.8 phi", "engine phi",
                       "gap %"});
        for (Cycles mu : {4u, 8u, 16u, 32u}) {
            double est_sum = 0.0;
            for (const auto &name : Spec92Profile::names()) {
                auto workload = Spec92Profile::make(name, 42);
                CacheConfig cache;
                cache.sizeBytes = 8 * 1024;
                cache.assoc = 2;
                cache.lineBytes = 32;
                est_sum += estimatePhiEq8(*workload, 60000,
                                          StallFeature::BNL1,
                                          cache, 4, mu)
                               .phi;
            }
            const double est =
                est_sum / Spec92Profile::names().size();
            PhiExperiment exp;
            exp.feature = StallFeature::BNL1;
            exp.cycleTime = mu;
            exp.refs = 60000;
            const double dyn =
                measurePhiAllProfiles(exp).back().phi;
            eq8.addRow({TextTable::num(mu, 0),
                        TextTable::num(est, 3),
                        TextTable::num(dyn, 3),
                        TextTable::num(
                            100.0 * (est - dyn) / dyn, 1)});
        }
        bench::emitTable(eq8);
        bench::exportCsv("fig1_eq8_vs_engine", eq8);
    }

    bench::section("paper-vs-measured (shape)");
    {
        PhiExperiment exp;
        exp.feature = StallFeature::BNL3;
        exp.cycleTime = 8;
        exp.refs = 60000;
        const auto bnl3_all = measurePhiAllProfiles(exp);
        const auto bnl3 = bnl3_all.back();
        // Final stat dump for the manifest: first profile's full
        // timing breakdown at the BNL3 operating point.
        bench::recordStats(bnl3_all.front().timing,
                           exp.cycleTime);
        const double reduction = 100.0 - bnl3.percentOfFull;
        bench::compareLine(
            "BNL3 read-latency reduction at mu_m < 15",
            "20-30 %", TextTable::num(reduction, 1) + " %",
            reduction > 10.0 && reduction < 50.0);

        exp.feature = StallFeature::BL;
        exp.cycleTime = 4;
        const double bl_small =
            measurePhiAllProfiles(exp).back().percentOfFull;
        exp.cycleTime = 48;
        const double bl_large =
            measurePhiAllProfiles(exp).back().percentOfFull;
        bench::compareLine("BL stalling rises with latency",
                           "rising toward 100 %",
                           TextTable::num(bl_small, 1) + " -> " +
                               TextTable::num(bl_large, 1) + " %",
                           bl_large > bl_small);
    }
    return 0;
}
