/**
 * @file
 * Figure 5 — architectural tradeoff for BNL3 (stall only until the
 * requested datum arrives), L = 32 bytes: BNL3 shows its higher
 * improvement at small memory cycle times.
 */

#include "unified_figure.hh"

int
main()
{
    uatm::bench::UnifiedFigureSpec spec;
    spec.figureId = "Figure 5";
    spec.lineBytes = 32;
    spec.bnlFeature = uatm::StallFeature::BNL3;
    uatm::bench::runUnifiedFigure(spec);
    return 0;
}
