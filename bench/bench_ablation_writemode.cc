/**
 * @file
 * Ablation — write-allocate vs write-around (Sec. 3.1).  The
 * paper's analysis mostly assumes write-allocate (W = 0); this
 * experiment runs both modes through the timing engine on every
 * SPEC92-like profile and shows how the workload parameters
 * {R, W, alpha} and execution time shift.
 */

#include <cstdio>

#include "common.hh"
#include "core/execution_time.hh"
#include "cpu/timing_engine.hh"
#include "trace/generators.hh"

using namespace uatm;

int
main()
{
    bench::banner("Ablation: write-miss mode",
                  "write-allocate vs write-around on the timing "
                  "engine (8KB 2-way 32B, D = 4, mu_m = 8)");

    MemoryConfig mem;
    mem.busWidthBytes = 4;
    mem.cycleTime = 8;
    CpuConfig cpu;
    cpu.feature = StallFeature::FS;

    TextTable table({"program", "WA cycles", "WAR cycles",
                     "WAR W", "WA HR", "WAR HR", "faster"});
    for (const auto &name : Spec92Profile::names()) {
        CacheConfig wa;
        wa.sizeBytes = 8 * 1024;
        wa.assoc = 2;
        wa.lineBytes = 32;
        wa.writeMiss = WriteMissPolicy::WriteAllocate;
        CacheConfig war = wa;
        war.writeMiss = WriteMissPolicy::WriteAround;

        auto workload = Spec92Profile::make(name, 777);
        TimingEngine allocate(wa, mem, WriteBufferConfig{0, true},
                              cpu);
        const auto x_wa = allocate.run(*workload, 80000);
        const double hr_wa = allocate.cacheStats().hitRatio();

        TimingEngine around(war, mem, WriteBufferConfig{0, true},
                            cpu);
        const auto x_war = around.run(*workload, 80000);
        const double hr_war = around.cacheStats().hitRatio();

        table.addRow(
            {name,
             TextTable::num(static_cast<double>(x_wa.cycles), 0),
             TextTable::num(static_cast<double>(x_war.cycles), 0),
             TextTable::num(static_cast<double>(x_war.writeArounds),
                            0),
             TextTable::num(hr_wa, 4), TextTable::num(hr_war, 4),
             x_wa.cycles <= x_war.cycles ? "allocate" : "around"});
    }
    bench::emitTable(table);
    bench::exportCsv("ablation_writemode", table);

    bench::section("model check: engine matches Eq. 2 with "
                   "W != 0 (write-around)");
    {
        CacheConfig war;
        war.sizeBytes = 8 * 1024;
        war.assoc = 2;
        war.lineBytes = 32;
        war.writeMiss = WriteMissPolicy::WriteAround;
        auto workload = Spec92Profile::make("hydro2d", 99);
        TimingEngine engine(war, mem, WriteBufferConfig{0, true},
                            cpu);
        const auto stats = engine.run(*workload, 80000);
        // W in bus transfers: hydro2d's 8-byte stores need two
        // 4-byte bus cycles each (Table 1's decomposition).
        const Workload w =
            Workload::fromCacheRun(engine.cacheStats(), 32, 4);
        Machine machine;
        machine.busWidth = 4;
        machine.lineBytes = 32;
        machine.cycleTime = 8;
        const double x_model = executionTimeFS(w, machine);
        const double gap =
            std::abs(x_model -
                     static_cast<double>(stats.cycles)) /
            static_cast<double>(stats.cycles);
        bench::compareLine("engine vs Eq. 2 (write-around)",
                           "exact",
                           TextTable::num(gap * 100, 4) + " %",
                           gap < 1e-9);
    }
    return 0;
}
