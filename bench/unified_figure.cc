/**
 * @file
 * Implementation of the Figures 3-5 driver.
 */

#include "unified_figure.hh"

#include <cstdio>

#include "common.hh"
#include "core/tradeoff.hh"
#include "cpu/phi_measurement.hh"

namespace uatm::bench {

void
runUnifiedFigure(const UnifiedFigureSpec &spec)
{
    banner(spec.figureId,
           "unified tradeoff: L = " +
               TextTable::num(spec.lineBytes, 0) +
               "B, D = " + TextTable::num(spec.busWidth, 0) +
               "B, q = " + TextTable::num(spec.q, 0) +
               ", base HR = " +
               TextTable::num(spec.baseHitRatio * 100, 0) +
               "%, alpha = " + TextTable::num(spec.alpha, 2) +
               ", BNL variant = " +
               stallFeatureName(spec.bnlFeature));

    const std::vector<double> mus = {2, 3, 4, 5, 6, 8, 10,
                                     12, 14, 16, 18, 20};
    const std::string bnl_label =
        stallFeatureName(spec.bnlFeature);

    TextTable table({"mu_m", "pipelined %", "double bus %",
                     "write buffers %", bnl_label + " %",
                     "measured phi"});
    AsciiChart chart(64, 18);
    chart.setTitle(spec.figureId +
                   ": hit ratio traded (%) vs memory cycle time");
    chart.setXLabel("non-pipelined memory cycle per 4 bytes");
    chart.setYLabel("hit ratio traded (%)");
    ChartSeries pipe{"pipelined", '#', {}, {}};
    ChartSeries bus{"double bus", '-', {}, {}};
    ChartSeries wbuf{"write buffers", '.', {}, {}};
    ChartSeries bnl{bnl_label, 'o', {}, {}};

    for (double mu : mus) {
        TradeoffContext ctx;
        ctx.machine.busWidth = spec.busWidth;
        ctx.machine.lineBytes = spec.lineBytes;
        ctx.machine.cycleTime = mu;
        ctx.alpha = spec.alpha;

        // The BNL curve uses the simulator-measured stalling
        // factor at this cycle time, as the paper did (Sec. 5.3).
        PhiExperiment exp;
        exp.feature = spec.bnlFeature;
        exp.cycleTime = static_cast<Cycles>(mu);
        exp.refs = 40000;
        exp.cache.lineBytes =
            static_cast<std::uint32_t>(spec.lineBytes);
        const double phi =
            std::min(measurePhiAllProfiles(exp).back().phi,
                     ctx.machine.lineOverBus());

        const double traded_pipe =
            hitRatioTraded(missFactorPipelined(ctx, spec.q),
                           spec.baseHitRatio) *
            100.0;
        const double traded_bus =
            hitRatioTraded(missFactorDoubleBus(ctx),
                           spec.baseHitRatio) *
            100.0;
        const double traded_wbuf =
            hitRatioTraded(missFactorWriteBuffers(ctx),
                           spec.baseHitRatio) *
            100.0;
        const double traded_bnl =
            hitRatioTraded(missFactorPartialStall(ctx, phi),
                           spec.baseHitRatio) *
            100.0;

        table.addRow({TextTable::num(mu, 0),
                      TextTable::num(traded_pipe, 3),
                      TextTable::num(traded_bus, 3),
                      TextTable::num(traded_wbuf, 3),
                      TextTable::num(traded_bnl, 3),
                      TextTable::num(phi, 3)});
        pipe.x.push_back(mu);
        pipe.y.push_back(traded_pipe);
        bus.x.push_back(mu);
        bus.y.push_back(traded_bus);
        wbuf.x.push_back(mu);
        wbuf.y.push_back(traded_wbuf);
        bnl.x.push_back(mu);
        bnl.y.push_back(traded_bnl);
    }

    section("traded hit ratio per feature");
    emitTable(table);
    exportCsv(spec.figureId == "Figure 3"   ? "fig3_unified_L8"
              : spec.figureId == "Figure 4" ? "fig4_unified_L32"
                                            : "fig5_unified_bnl3",
              table);
    chart.addSeries(std::move(pipe));
    chart.addSeries(std::move(bus));
    chart.addSeries(std::move(wbuf));
    chart.addSeries(std::move(bnl));
    emitChart(chart);

    section("paper-vs-measured observations");
    {
        TradeoffContext ctx;
        ctx.machine.busWidth = spec.busWidth;
        ctx.machine.lineBytes = spec.lineBytes;
        ctx.machine.cycleTime = 8;
        ctx.alpha = spec.alpha;

        // Ranking (excluding pipelined): bus > wbuf > BNL.
        const double r_bus = missFactorDoubleBus(ctx);
        const double r_wbuf = missFactorWriteBuffers(ctx);
        compareLine("bus doubling beats write buffers",
                    "always", r_bus > r_wbuf ? "yes" : "no",
                    r_bus > r_wbuf);

        // Pipelined-vs-bus crossover.
        const auto crossover = crossoverCycleTime(
            ctx, TradeFeature::PipelinedMemory,
            TradeFeature::DoubleBus, spec.q, 1.0, 2.0, 200.0);
        if (spec.lineBytes / spec.busWidth > 2.0) {
            compareLine(
                "pipelined beats bus doubling from mu_m ~",
                "5-6 cycles",
                crossover ? TextTable::num(*crossover, 2)
                          : std::string("none"),
                crossover && *crossover > 3.0 &&
                    *crossover < 7.0);
        } else {
            compareLine(
                "pipelined never beats bus doubling (L/D = 2)",
                "no crossover",
                crossover ? TextTable::num(*crossover, 2)
                          : std::string("none"),
                !crossover.has_value());
        }

        // The pipelined curve meets the x-axis at mu_m = q.
        TradeoffContext at_q = ctx;
        at_q.machine = ctx.machine.withCycleTime(spec.q);
        const double traded_at_q = hitRatioTraded(
            missFactorPipelined(at_q, spec.q), spec.baseHitRatio);
        compareLine("pipelined curve meets x-axis at mu_m = q",
                    "0 at mu_m = 2",
                    TextTable::num(traded_at_q * 100, 4) + " %",
                    std::abs(traded_at_q) < 1e-9);
    }
}

} // namespace uatm::bench
