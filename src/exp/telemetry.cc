/**
 * @file
 * RunnerTelemetry serialization, parsing, and derived metrics.
 */

#include "exp/telemetry.hh"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "obs/json.hh"

namespace uatm::exp {

obs::LatencyHistogram
makePointLatencyHistogram()
{
    // 1 ns first edge, x2 growth, 64 buckets: covers sub-ns noise
    // through multi-hour points without reconfiguration.
    return obs::LatencyHistogram(1.0, 2.0, 64);
}

double
WorkerTelemetry::utilization() const
{
    if (lifetimeNs == 0)
        return 0.0;
    return static_cast<double>(kernelNs) /
           static_cast<double>(lifetimeNs);
}

std::uint64_t
RunnerTelemetry::kernelNsTotal() const
{
    std::uint64_t total = 0;
    for (const auto &w : workers)
        total += w.kernelNs;
    return total;
}

double
RunnerTelemetry::loadImbalance() const
{
    if (workers.empty())
        return 0.0;
    std::uint64_t maxNs = 0;
    std::uint64_t sumNs = 0;
    for (const auto &w : workers) {
        maxNs = std::max(maxNs, w.kernelNs);
        sumNs += w.kernelNs;
    }
    if (sumNs == 0)
        return 0.0;
    const double mean = static_cast<double>(sumNs) /
                        static_cast<double>(workers.size());
    return static_cast<double>(maxNs) / mean;
}

double
RunnerTelemetry::parallelEfficiency() const
{
    if (wallNs == 0 || workers.empty())
        return 0.0;
    const double capacity =
        static_cast<double>(wallNs) *
        static_cast<double>(workers.size());
    return static_cast<double>(kernelNsTotal()) / capacity;
}

std::string
RunnerTelemetry::toJson() const
{
    obs::JsonWriter w;
    w.beginObject()
        .keyValue("schema_version", kTelemetrySchemaVersion)
        .keyValue("kind", "runner_telemetry")
        .keyValue("armed", armed)
        .keyValue("scenario", scenario)
        .keyValue("threads_requested", threadsRequested)
        .keyValue("threads_used", threadsUsed)
        .keyValue("points", pointCount)
        .keyValue("points_failed", pointsFailed)
        .keyValue("wall_ns", wallNs)
        .keyValue("expand_ns", expandNs)
        .keyValue("merge_ns", mergeNs);

    w.key("workers").beginArray();
    for (const auto &worker : workers) {
        w.beginObject()
            .keyValue("worker", worker.worker)
            .keyValue("points", worker.points)
            .keyValue("kernel_ns", worker.kernelNs)
            .keyValue("acquire_ns", worker.acquireNs)
            .keyValue("idle_ns", worker.idleNs)
            .keyValue("lifetime_ns", worker.lifetimeNs);
        w.key("counters");
        worker.counters.writeJson(w);
        w.endObject();
    }
    w.endArray();

    w.key("point_durations").beginArray();
    for (const auto &point : points) {
        w.beginObject()
            .keyValue("index", point.index)
            .keyValue("worker", point.worker)
            .keyValue("start_ns", point.startNs)
            .keyValue("ns", point.durationNs)
            .keyValue("label", point.label)
            .endObject();
    }
    w.endArray();

    w.key("point_latency").beginObject()
        .keyValue("count", pointLatency.count())
        .keyValue("sum_ns", pointLatency.sum())
        .keyValue("min_ns", pointLatency.min())
        .keyValue("max_ns", pointLatency.max())
        .keyValue("p50_ns", pointLatency.p50())
        .keyValue("p95_ns", pointLatency.p95())
        .keyValue("p99_ns", pointLatency.p99())
        .endObject();

    w.endObject();
    return w.str();
}

Status
RunnerTelemetry::writeJson(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        return Status::ioError("cannot write telemetry file '",
                               path, "'");
    out << toJson() << "\n";
    if (!out)
        return Status::ioError("short write to telemetry file '",
                               path, "'");
    return Status();
}

Expected<RunnerTelemetry>
RunnerTelemetry::fromJson(const obs::JsonValue &doc)
{
    if (!doc.isObject())
        return Status::parseError(
            "telemetry document is not a JSON object");
    if (doc.stringOr("kind", "") != "runner_telemetry")
        return Status::parseError(
            "not a runner_telemetry document (kind='",
            doc.stringOr("kind", "<missing>"), "')");
    const int version = static_cast<int>(
        doc.numberOr("schema_version", -1));
    // v1 documents lack the per-worker counters object and parse
    // with counters unavailable; anything newer than us is an
    // error rather than a silent partial read.
    if (version < 1 || version > kTelemetrySchemaVersion)
        return Status::parseError(
            "unsupported telemetry schema_version ", version,
            " (expected 1..", kTelemetrySchemaVersion, ")");

    RunnerTelemetry t;
    const obs::JsonValue *armed = doc.find("armed");
    t.armed = armed && armed->isBool() ? armed->asBool() : true;
    t.scenario = doc.stringOr("scenario", "");
    t.threadsRequested = static_cast<unsigned>(
        doc.numberOr("threads_requested", 0));
    t.threadsUsed = static_cast<unsigned>(
        doc.numberOr("threads_used", 0));
    t.pointCount = static_cast<std::uint64_t>(
        doc.numberOr("points", 0));
    t.pointsFailed = static_cast<std::uint64_t>(
        doc.numberOr("points_failed", 0));
    t.wallNs = static_cast<std::uint64_t>(
        doc.numberOr("wall_ns", 0));
    t.expandNs = static_cast<std::uint64_t>(
        doc.numberOr("expand_ns", 0));
    t.mergeNs = static_cast<std::uint64_t>(
        doc.numberOr("merge_ns", 0));

    const obs::JsonValue *workers = doc.find("workers");
    if (!workers || !workers->isArray())
        return Status::parseError(
            "telemetry document lacks a 'workers' array");
    for (const auto &item : workers->items()) {
        if (!item.isObject())
            return Status::parseError(
                "'workers' entry is not an object");
        WorkerTelemetry w;
        w.worker = static_cast<unsigned>(
            item.numberOr("worker", 0));
        w.points = static_cast<std::uint64_t>(
            item.numberOr("points", 0));
        w.kernelNs = static_cast<std::uint64_t>(
            item.numberOr("kernel_ns", 0));
        w.acquireNs = static_cast<std::uint64_t>(
            item.numberOr("acquire_ns", 0));
        w.idleNs = static_cast<std::uint64_t>(
            item.numberOr("idle_ns", 0));
        w.lifetimeNs = static_cast<std::uint64_t>(
            item.numberOr("lifetime_ns", 0));
        if (const obs::JsonValue *counters =
                item.find("counters")) {
            w.counters =
                obs::PerfCounterValues::fromJson(*counters);
        }
        t.workers.push_back(w);
    }

    if (const obs::JsonValue *durations =
            doc.find("point_durations");
        durations && durations->isArray()) {
        for (const auto &item : durations->items()) {
            if (!item.isObject())
                return Status::parseError(
                    "'point_durations' entry is not an object");
            PointTiming p;
            p.index = static_cast<std::size_t>(
                item.numberOr("index", 0));
            p.worker = static_cast<unsigned>(
                item.numberOr("worker", 0));
            p.startNs = static_cast<std::uint64_t>(
                item.numberOr("start_ns", 0));
            p.durationNs = static_cast<std::uint64_t>(
                item.numberOr("ns", 0));
            p.label = item.stringOr("label", "");
            t.points.push_back(std::move(p));
        }
    }

    // The histogram buckets are not serialized (the quantile
    // summary is); rebuild from the per-point durations so a
    // loaded document still answers quantile queries.
    for (const auto &point : t.points)
        t.pointLatency.add(
            static_cast<double>(point.durationNs));

    return t;
}

Expected<RunnerTelemetry>
RunnerTelemetry::load(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return Status::ioError("cannot open telemetry file '",
                               path, "'");
    std::ostringstream text;
    text << in.rdbuf();
    const obs::JsonParseResult parsed = obs::parseJson(text.str());
    if (!parsed)
        return Status::parseError("telemetry file '", path,
                                  "': ", parsed.error);
    return fromJson(parsed.value);
}

void
RunnerTelemetry::registerStats(obs::StatRegistry &registry,
                               const std::string &prefix) const
{
    obs::StatGroup group(registry, prefix);
    group.addScalar("threads_requested", threadsRequested,
                    "worker threads requested");
    group.addScalar("threads_used", threadsUsed,
                    "worker threads spawned (0 = inline)");
    group.addScalar("points", static_cast<double>(pointCount),
                    "points executed");
    group.addScalar("points_failed",
                    static_cast<double>(pointsFailed),
                    "points that produced an error row");
    group.addScalar("wall_ns", static_cast<double>(wallNs),
                    "pool wall-clock time", "ns");
    group.addScalar("expand_ns", static_cast<double>(expandNs),
                    "scenario expansion time", "ns");
    group.addScalar("merge_ns", static_cast<double>(mergeNs),
                    "deterministic slot-merge time", "ns");
    group.addScalar("load_imbalance", loadImbalance(),
                    "max/mean per-worker kernel time");
    group.addScalar("parallel_efficiency", parallelEfficiency(),
                    "kernel time / pool wall-clock capacity");
    group.addLatencyHistogram("point_ns", pointLatency,
                              "per-point kernel latency", "ns");
    for (const auto &worker : workers) {
        obs::StatGroup wg = group.group(
            "worker" + std::to_string(worker.worker));
        wg.addScalar("utilization", worker.utilization(),
                     "kernel time / worker lifetime");
        if (!worker.counters.available)
            continue;
        using obs::PerfEvent;
        if (worker.counters.has(PerfEvent::Instructions) &&
            worker.counters.has(PerfEvent::Cycles)) {
            wg.addScalar("ipc", worker.counters.ipc(),
                         "instructions per cycle");
        }
        if (worker.counters.has(PerfEvent::CacheMisses) &&
            worker.counters.has(PerfEvent::CacheReferences)) {
            wg.addScalar("cache_miss_rate",
                         worker.counters.cacheMissRate(),
                         "cache misses / cache references");
        }
        if (worker.counters.has(PerfEvent::CpuMigrations)) {
            wg.addScalar(
                "cpu_migrations",
                worker.counters.get(PerfEvent::CpuMigrations),
                "cpu migrations over the worker's lifetime");
        }
    }
}

} // namespace uatm::exp
