/**
 * @file
 * Uniform result emission for the experiment layer.
 *
 * Every scenario run produces one ResultTable: named columns, rows
 * of typed cells, and three renderers — aligned text (stdout),
 * RFC 4180 CSV, and a versioned JSON document — so the examples
 * and benches stop re-implementing their own printers.  Rendering
 * is deterministic: cells carry pre-formatted text, so a table
 * built from the same points renders byte-identically regardless
 * of how many runner threads produced it.
 */

#ifndef UATM_EXP_RESULT_TABLE_HH
#define UATM_EXP_RESULT_TABLE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.hh"

namespace uatm::exp {

/** Bumped whenever the JSON table layout changes shape. */
constexpr int kResultTableSchemaVersion = 1;

/**
 * One table cell: display text plus, for numeric cells, the exact
 * value (emitted as a JSON number rather than a string).
 */
class Cell
{
  public:
    Cell() = default;

    /** A free-text cell. */
    static Cell text(std::string text);

    /** A floating-point cell formatted to @p precision places. */
    static Cell num(double value, int precision = 3);

    /** An integer cell. */
    static Cell integer(std::int64_t value);

    /**
     * A typed error cell for a failed point: renders as
     * "!<error code name>" so failed rows are visually distinct
     * and machine-greppable in every output format.
     */
    static Cell error(const Status &status);

    /**
     * Rebuild a cell from its serialized parts (display text,
     * numeric value, kind flags) — the PointCache round-trip.
     * The text is authoritative: a rebuilt cell renders
     * byte-identically to the original in every format.
     */
    static Cell fromParts(std::string text, double value,
                          bool numeric, bool is_error);

    const std::string &str() const { return text_; }
    bool numeric() const { return numeric_; }
    double value() const { return value_; }
    bool isError() const { return error_; }

  private:
    std::string text_;
    double value_ = 0.0;
    bool numeric_ = false;
    bool error_ = false;
};

/** Output form of a ResultTable. */
enum class TableFormat : std::uint8_t
{
    Text,   ///< aligned, human-readable (util/table)
    Csv,    ///< RFC 4180, one header row (util/csv quoting)
    Json,   ///< {"schema_version", "name", "columns", "rows"}
    Ndjson, ///< one JSON object per row, newline-delimited
};

const char *tableFormatName(TableFormat format);

/** Parse "text" | "csv" | "json" | "ndjson"; error Status on
 *  anything else. */
Expected<TableFormat> parseTableFormat(const std::string &name);

class ResultTable
{
  public:
    ResultTable() = default;
    ResultTable(std::string name, std::vector<std::string> columns);

    const std::string &name() const { return name_; }
    const std::vector<std::string> &columns() const
    {
        return columns_;
    }

    /** Append one row; arity must match the columns. */
    void addRow(std::vector<Cell> cells);

    std::size_t rows() const { return rows_.size(); }
    const Cell &at(std::size_t row, std::size_t col) const;

    /** Render in the requested format. */
    std::string render(TableFormat format) const;

    std::string renderText() const;
    std::string renderCsv() const;
    std::string renderJson() const;

    /**
     * Newline-delimited JSON: one {"column": value, ...} object
     * per row, no header.  Numeric cells emit their exact value
     * as a JSON number, everything else (labels, error cells) as
     * a string.  This is the wire format the serve layer streams,
     * so rendering is deterministic row by row.
     */
    std::string renderNdjson() const;

    /** One row of renderNdjson(), without the trailing newline. */
    std::string renderNdjsonRow(std::size_t row) const;

    /**
     * Render to @p out_path, or to stdout when the path is empty.
     * Returns an IoError Status when the file cannot be written.
     * The rendered string stays available via rendered().
     */
    Status emit(TableFormat format, const std::string &out_path) const;

    /** The string produced by the last emit() call. */
    const std::string &rendered() const { return rendered_; }

  private:
    std::string name_;
    std::vector<std::string> columns_;
    std::vector<std::vector<Cell>> rows_;
    mutable std::string rendered_;
};

} // namespace uatm::exp

#endif // UATM_EXP_RESULT_TABLE_HH
