/**
 * @file
 * Per-worker runner telemetry.
 *
 * When RunnerOptions::telemetry is armed (or UATM_RUNNER_TELEMETRY
 * is set), each Runner worker records what it did — points
 * executed, kernel time, work-acquisition time, idle time, and one
 * timing record per point — into thread-local storage, and the
 * runner merges the per-worker records into a RunnerTelemetry at
 * join.  Nothing is shared while the pool runs, so recording is
 * lock-free and the merged ResultTable stays byte-identical.
 *
 * The merged telemetry serialises to a versioned JSON document
 * (RUNNER_*.json) that tools/run_report consumes for the scaling
 * diagnosis (per-worker utilization, load-imbalance index, top-K
 * slowest points, Amdahl serial-fraction fit — see exp/report.hh),
 * and registers into a StatRegistry like any other stat source,
 * including a log-bucketed per-point latency histogram.
 */

#ifndef UATM_EXP_TELEMETRY_HH
#define UATM_EXP_TELEMETRY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "obs/perf_counters.hh"
#include "obs/registry.hh"
#include "util/status.hh"

namespace uatm::obs {
class JsonValue;
}

namespace uatm::exp {

/**
 * Bumped whenever the RUNNER_*.json layout changes shape.
 * v2 added the per-worker "counters" object (hardware counter
 * deltas); v1 documents still parse, with counters unavailable.
 */
constexpr int kTelemetrySchemaVersion = 2;

/** Shape of the per-point latency histogram (1 ns, x2, 64). */
obs::LatencyHistogram makePointLatencyHistogram();

/** One evaluated point, as timed by the worker that ran it. */
struct PointTiming
{
    std::size_t index = 0;       ///< position in expansion order
    unsigned worker = 0;         ///< worker that evaluated it
    std::uint64_t startNs = 0;   ///< offset from the run's start
    std::uint64_t durationNs = 0;
    std::string label;           ///< Point::label() coordinates
};

/** What one worker did across the whole run. */
struct WorkerTelemetry
{
    unsigned worker = 0;
    std::uint64_t points = 0;     ///< points this worker executed
    std::uint64_t kernelNs = 0;   ///< time inside point kernels
    std::uint64_t acquireNs = 0;  ///< claiming work-queue indices
    std::uint64_t idleNs = 0;     ///< lifetime - kernel - acquire
    std::uint64_t lifetimeNs = 0; ///< spawn to exit

    /**
     * Hardware counter deltas over the worker's lifetime (schema
     * v2).  available == false when the host forbids perf, the
     * run was serial-inline, or the document predates v2.
     */
    obs::PerfCounterValues counters;

    /** Fraction of the worker's lifetime spent in kernels. */
    double utilization() const;
};

/** Everything one instrumented run recorded. */
struct RunnerTelemetry
{
    /** False when the run executed with telemetry disarmed (the
     *  other fields are then all empty/zero). */
    bool armed = false;

    std::string scenario;
    unsigned threadsRequested = 0;
    /** Worker threads actually spawned; 0 = inline serial run. */
    unsigned threadsUsed = 0;
    std::uint64_t pointCount = 0;
    std::uint64_t pointsFailed = 0;

    std::uint64_t wallNs = 0;    ///< pool spawn to last join
    std::uint64_t expandNs = 0;  ///< Scenario::expand()
    std::uint64_t mergeNs = 0;   ///< slot merge into ResultTable

    /** One entry per worker (a serial run has exactly one). */
    std::vector<WorkerTelemetry> workers;

    /** One entry per point, sorted by point index. */
    std::vector<PointTiming> points;

    /** Per-point kernel latency, log-bucketed in nanoseconds. */
    obs::LatencyHistogram pointLatency = makePointLatencyHistogram();

    /** Sum of kernelNs over the workers. */
    std::uint64_t kernelNsTotal() const;

    /**
     * max/mean of the per-worker kernel time: 1.0 is a perfectly
     * balanced pool, 2.0 means the slowest worker carried twice
     * the average.  0 when no worker ran anything.
     */
    double loadImbalance() const;

    /**
     * kernelNsTotal / (wallNs * workers): the fraction of the
     * pool's wall-clock capacity spent inside kernels.
     */
    double parallelEfficiency() const;

    /** The versioned RUNNER_*.json document. */
    std::string toJson() const;

    /** Write toJson() to @p path; error Status when unwritable. */
    Status writeJson(const std::string &path) const;

    /** Parse a document produced by toJson(). */
    static Expected<RunnerTelemetry>
    fromJson(const obs::JsonValue &doc);

    /** Read and parse one RUNNER_*.json file. */
    static Expected<RunnerTelemetry>
    load(const std::string &path);

    /**
     * Register the run's telemetry under @p prefix: the scalar
     * run facts, the point-latency histogram, and one utilization
     * scalar per worker.
     */
    void registerStats(obs::StatRegistry &registry,
                       const std::string &prefix =
                           "runner.telemetry") const;
};

} // namespace uatm::exp

#endif // UATM_EXP_TELEMETRY_HH
