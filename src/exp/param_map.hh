/**
 * @file
 * Typed parameter maps for registered workload methods.
 *
 * A ParamMap is the argument vector of a workload-method factory:
 * an ordered (name, value) list where each value carries one of
 * four primitive types.  Entries are kept sorted by name so that
 * two maps with the same content render and serialize
 * byte-identically — render() feeds axis labels and describe()
 * strings, writeJson()/fromJson() feed the WorkloadSpec
 * serialization contract (DESIGN.md §10).
 *
 * Parsing ("0.99" -> Double, "1e6" -> Int) reports format and
 * range problems as Status values, never fatal(): a mistyped
 * parameter in a sweep must degrade to a typed error row.
 */

#ifndef UATM_EXP_PARAM_MAP_HH
#define UATM_EXP_PARAM_MAP_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.hh"

namespace uatm::obs {
class JsonValue;
class JsonWriter;
}

namespace uatm::exp {

/** One typed parameter value: string, int, double or bool. */
class ParamValue
{
  public:
    enum class Type : std::uint8_t
    {
        String,
        Int,
        Double,
        Bool,
    };

    /** Default: the empty string. */
    ParamValue() = default;

    static ParamValue ofString(std::string v);
    static ParamValue ofInt(std::int64_t v);
    static ParamValue ofDouble(double v);
    static ParamValue ofBool(bool v);

    /** "string", "int", "double", "bool". */
    static const char *typeName(Type type);

    Type type() const { return type_; }

    // Accessors assert the type matches: factories only see maps
    // the registry has already validated against the method's
    // declared parameter types.
    const std::string &asString() const;
    std::int64_t asInt() const;
    double asDouble() const;
    bool asBool() const;

    /** Numeric value of an Int or Double (asserts otherwise). */
    double asNumber() const;

    /** Canonical text: "abc", "1000000", "0.99", "true". */
    std::string render() const;

    /**
     * Parse @p text as a @p type value.  Ints accept decimal and
     * scientific forms with an integral value ("1e6"); overflow is
     * OutOfRange and a malformed number is ParseError.
     */
    static Expected<ParamValue> parse(Type type,
                                      std::string_view text);

    /**
     * This value as @p target type.  Identity for a matching type;
     * Int widens to Double, and a Double narrows to Int when its
     * value is integral (so JSON numbers land on the declared
     * type).  Anything else is InvalidArgument.
     */
    Expected<ParamValue> coerce(Type target) const;

    bool operator==(const ParamValue &) const = default;

  private:
    Type type_ = Type::String;
    std::string string_;
    std::int64_t int_ = 0;
    double double_ = 0.0;
    bool bool_ = false;
};

/**
 * Ordered name -> ParamValue map, sorted by name.
 */
class ParamMap
{
  public:
    struct Entry
    {
        std::string name;
        ParamValue value;

        bool operator==(const Entry &) const = default;
    };

    bool empty() const { return entries_.empty(); }
    std::size_t size() const { return entries_.size(); }

    /** Entries in sorted name order. */
    const std::vector<Entry> &entries() const { return entries_; }

    /** Insert, or overwrite an existing entry of any type. */
    void set(const std::string &name, ParamValue value);
    void setString(const std::string &name, std::string v);
    void setInt(const std::string &name, std::int64_t v);
    void setDouble(const std::string &name, double v);
    void setBool(const std::string &name, bool v);

    /** The named value, or nullptr when absent. */
    const ParamValue *find(const std::string &name) const;

    // Typed accessors assert presence and type; use them in
    // factories, after the registry has merged declared defaults.
    const std::string &getString(const std::string &name) const;
    std::int64_t getInt(const std::string &name) const;
    double getDouble(const std::string &name) const;
    bool getBool(const std::string &name) const;

    /** Canonical "a=1,b=x" form (sorted); "" when empty. */
    std::string render() const;

    /** Emit as a JSON object value. */
    void writeJson(obs::JsonWriter &writer) const;

    /**
     * Read a JSON object: strings, bools, and numbers (integral
     * numbers become Int, others Double).  Null/array/object
     * members are ParseError.
     */
    static Expected<ParamMap> fromJson(const obs::JsonValue &value);

    bool operator==(const ParamMap &) const = default;

  private:
    std::vector<Entry> entries_;

    const ParamValue &require(const std::string &name,
                              ParamValue::Type type) const;
};

} // namespace uatm::exp

#endif // UATM_EXP_PARAM_MAP_HH
