/**
 * @file
 * Implementation of the standing scenario builders.
 */

#include "exp/scenarios.hh"

#include <memory>
#include <utility>

#include "cache/stack_sim.hh"
#include "trace/generators.hh"
#include "util/logging.hh"

namespace uatm::exp {

namespace {

constexpr int kRatioPrecision = 6;

const char *
geometryAxisName(GeometrySweep::Axis axis)
{
    return axis == GeometrySweep::Axis::Size ? "size" : "line";
}

SweepPoint
evalGeometryPoint(const Point &point, std::uint64_t value)
{
    auto source = okOrThrow(point.workload.make());
    const auto run = runCacheSim(point.cache, *source, point.refs,
                                 point.warmupRefs);
    return SweepPoint{value, run.hitRatio(), run.missRatio(),
                      run.flushRatio()};
}

std::vector<Cell>
sweepPointCells(const SweepPoint &sample)
{
    return {Cell::num(sample.hitRatio, kRatioPrecision),
            Cell::num(sample.missRatio, kRatioPrecision),
            Cell::num(sample.flushRatio, kRatioPrecision)};
}

/** How runGeometrySweep decided to evaluate one sweep. */
struct EnginePlan
{
    bool fast = false;
    /** Per-point by design (line axis, forced engine), as opposed
     *  to a declined fast path. */
    bool structural = false;
    std::string reason;
};

EnginePlan
planGeometryEngine(const GeometrySweep &spec)
{
    EnginePlan plan;
    if (spec.engine == GeometrySweep::Engine::PerPoint) {
        plan.structural = true;
        plan.reason = "engine forced to per-point";
        return plan;
    }
    if (spec.axis == GeometrySweep::Axis::Line) {
        plan.structural = true;
        plan.reason = "the line axis varies the line size";
        return plan;
    }
    if (const char *reason = stackSimIneligibleReason(spec.base)) {
        plan.reason = reason;
        return plan;
    }
    plan.fast = true;
    return plan;
}

} // namespace

Scenario
makeGeometryScenario(const GeometrySweep &spec)
{
    UATM_ASSERT(!spec.values.empty(), "geometry sweep has no values");
    const char *axis = geometryAxisName(spec.axis);
    Scenario scenario(
        spec.axis == GeometrySweep::Axis::Size ? "cache_size_sweep"
                                               : "line_size_sweep",
        "cache geometry sweep over the " + std::string(axis) +
            " axis");
    scenario.cache = spec.base;
    scenario.workload = spec.workload;
    scenario.refs = spec.refs;
    scenario.warmupRefs = spec.warmupRefs;

    std::vector<double> values;
    values.reserve(spec.values.size());
    for (std::uint64_t value : spec.values)
        values.push_back(static_cast<double>(value));

    const bool size_axis = spec.axis == GeometrySweep::Axis::Size;
    scenario.sweep(axis, values,
                   [size_axis](Point &point, const AxisValue &v) {
                       if (size_axis)
                           point.cache.sizeBytes =
                               static_cast<std::uint64_t>(v.value);
                       else
                           point.cache.lineBytes =
                               static_cast<std::uint32_t>(v.value);
                   });
    return scenario;
}

ResultTable
runGeometrySweep(const GeometrySweep &spec, Runner &runner,
                 std::vector<SweepPoint> *points)
{
    Scenario scenario = makeGeometryScenario(spec);
    const std::string axis = geometryAxisName(spec.axis);

    EnginePlan plan = planGeometryEngine(spec);
    GeometryGrid grid;
    std::unique_ptr<TraceSource> source;
    if (plan.fast) {
        auto made = spec.workload.make();
        if (!made.ok()) {
            // The per-point kernel reproduces the identical error
            // row for every point, so decline rather than fail.
            plan.fast = false;
            plan.reason = "workload construction failed: " +
                          made.status().message();
        } else {
            source = std::move(made).value();
            grid.lineBytes = spec.base.lineBytes;
            grid.write = spec.base.write;
            grid.writeMiss = spec.base.writeMiss;
            for (std::uint64_t value : spec.values) {
                CacheConfig config = spec.base;
                config.sizeBytes = value;
                if (config.validate().ok())
                    grid.addConfig(config);
            }
            if (grid.setCounts.empty()) {
                plan.fast = false;
                plan.reason = "no sweep value yields a valid "
                              "geometry";
            }
        }
    }
    if (!plan.fast && spec.engine == GeometrySweep::Engine::StackSim)
        throw StatusError(Status::invalidArgument(
            "geometry sweep cannot use the stack-sim engine: ",
            plan.reason));
    noteSweepDispatch(plan.fast, plan.structural, plan.reason);

    std::vector<SweepPoint> samples(scenario.pointCount());
    ResultTable table;
    if (plan.fast) {
        // One trace traversal prices every point; the sharded run
        // below only looks results up, so any invalid point still
        // fails with the same status the per-point kernel's cache
        // constructor raises and the merged table stays
        // byte-identical at every thread count.
        const GeometryHitSurface surface =
            runStackSim(grid, *source, spec.refs, spec.warmupRefs);
        table = runner.run(
            scenario, {"hit_ratio", "miss_ratio", "flush_ratio"},
            [&axis, &samples, &surface](const Point &point) {
                const auto value = static_cast<std::uint64_t>(
                    okOrThrow(point.coord(axis)));
                okOrThrow(point.cache.validate());
                const CacheRunResult run{
                    point.cache,
                    surface.stats(point.cache.numSets(),
                                  point.cache.assoc)};
                const SweepPoint sample{value, run.hitRatio(),
                                        run.missRatio(),
                                        run.flushRatio()};
                samples[point.index] = sample;
                return sweepPointCells(sample);
            });
    } else {
        table = runner.run(
            scenario, {"hit_ratio", "miss_ratio", "flush_ratio"},
            [&axis, &samples](const Point &point) {
                const auto value = static_cast<std::uint64_t>(
                    okOrThrow(point.coord(axis)));
                SweepPoint sample = evalGeometryPoint(point, value);
                samples[point.index] = sample;
                return sweepPointCells(sample);
            });
    }
    if (points)
        *points = std::move(samples);
    return table;
}

std::vector<SweepPoint>
sweepCacheSizeParallel(const CacheConfig &base,
                       const WorkloadSpec &workload,
                       const std::vector<std::uint64_t> &sizes,
                       std::uint64_t refs, std::uint64_t warmup_refs,
                       unsigned threads)
{
    GeometrySweep spec;
    spec.axis = GeometrySweep::Axis::Size;
    spec.base = base;
    spec.workload = workload;
    spec.values = sizes;
    spec.refs = refs;
    spec.warmupRefs = warmup_refs;
    Runner runner(RunnerOptions{threads});
    std::vector<SweepPoint> points;
    runGeometrySweep(spec, runner, &points);
    return points;
}

std::vector<SweepPoint>
sweepLineSizeParallel(const CacheConfig &base,
                      const WorkloadSpec &workload,
                      const std::vector<std::uint32_t> &line_sizes,
                      std::uint64_t refs, std::uint64_t warmup_refs,
                      unsigned threads)
{
    GeometrySweep spec;
    spec.axis = GeometrySweep::Axis::Line;
    spec.base = base;
    spec.workload = workload;
    spec.values.assign(line_sizes.begin(), line_sizes.end());
    spec.refs = refs;
    spec.warmupRefs = warmup_refs;
    Runner runner(RunnerOptions{threads});
    std::vector<SweepPoint> points;
    runGeometrySweep(spec, runner, &points);
    return points;
}

Scenario
makePhiScenario(const PhiExperiment &experiment)
{
    Scenario scenario("phi_measurement",
                      "stalling factor phi over the six profiles "
                      "(Figure 1)");
    scenario.cache = experiment.cache;
    scenario.refs = experiment.refs;
    scenario.workload = WorkloadSpec::none();
    scenario.sweepWorkloads(Spec92Profile::names());
    return scenario;
}

namespace {

std::vector<PhiResult>
runPhiPoints(const PhiExperiment &experiment, Runner &runner,
             ResultTable *table_out)
{
    Scenario scenario = makePhiScenario(experiment);
    std::vector<PhiResult> results(scenario.pointCount());
    ResultTable table = runner.run(
        scenario, {"phi", "pct_of_full"},
        [&experiment, &results](const Point &point) {
            PhiResult result = measurePhi(
                experiment, okOrThrow(point.coordLabel("workload")));
            results[point.index] = result;
            return std::vector<Cell>{
                Cell::num(result.phi, 3),
                Cell::num(result.percentOfFull, 1)};
        });
    if (table_out)
        *table_out = std::move(table);
    return results;
}

} // namespace

ResultTable
runPhiScenario(const PhiExperiment &experiment, Runner &runner)
{
    ResultTable table;
    std::vector<PhiResult> results =
        runPhiPoints(experiment, runner, &table);
    appendPhiAverage(results);
    const PhiResult &average = results.back();
    table.addRow({Cell::text(average.workload),
                  Cell::num(average.phi, 3),
                  Cell::num(average.percentOfFull, 1)});
    return table;
}

std::vector<PhiResult>
measurePhiAllProfilesParallel(const PhiExperiment &experiment,
                              unsigned threads)
{
    Runner runner(RunnerOptions{threads});
    std::vector<PhiResult> results =
        runPhiPoints(experiment, runner, nullptr);
    appendPhiAverage(results);
    return results;
}

Scenario
makeFeatureGridScenario(const FeatureGrid &grid)
{
    UATM_ASSERT(!grid.cycleTimes.empty(),
                "feature grid has no cycle times");
    UATM_ASSERT(!grid.features.empty(),
                "feature grid has no features");
    Scenario scenario("feature_grid",
                      "Sec. 5.3 unified feature comparison");
    scenario.workload = WorkloadSpec::none();

    // Analytic scenario: the coordinates are the whole state, so
    // both appliers leave the point's configs untouched.
    scenario.sweep("mu_m", grid.cycleTimes,
                   [](Point &, const AxisValue &) {});

    std::vector<AxisValue> features;
    features.reserve(grid.features.size());
    for (TradeFeature feature : grid.features)
        features.push_back(
            AxisValue{tradeFeatureName(feature),
                      static_cast<double>(
                          static_cast<int>(feature))});
    scenario.sweepLabeled("feature", std::move(features),
                          [](Point &, const AxisValue &) {});
    return scenario;
}

ResultTable
runFeatureGrid(const FeatureGrid &grid, Runner &runner)
{
    Scenario scenario = makeFeatureGridScenario(grid);
    return runner.run(
        scenario, {"miss_factor", "dhr", "equiv_hr"},
        [&grid](const Point &point) {
            TradeoffContext ctx = grid.ctx;
            ctx.machine = grid.ctx.machine.withCycleTime(
                okOrThrow(point.coord("mu_m")));
            const auto feature = static_cast<TradeFeature>(
                static_cast<int>(okOrThrow(point.coord("feature"))));
            const double r = featureMissFactor(ctx, feature, grid.q,
                                               grid.phiPartial);
            const double dhr =
                hitRatioTraded(r, grid.baseHitRatio);
            return std::vector<Cell>{
                Cell::num(r, 3), Cell::num(dhr, 4),
                Cell::num(grid.baseHitRatio - dhr, 4)};
        });
}

LineTradeoffResult
runLineTradeoff(const LineTradeoff &spec, Runner &runner)
{
    UATM_ASSERT(!spec.lineSizes.empty(),
                "line tradeoff has no line sizes");

    GeometrySweep sweep;
    sweep.axis = GeometrySweep::Axis::Line;
    sweep.base = spec.base;
    sweep.workload = spec.workload;
    sweep.values.assign(spec.lineSizes.begin(),
                        spec.lineSizes.end());
    sweep.refs = spec.refs;
    sweep.warmupRefs = spec.warmupRefs;

    std::vector<SweepPoint> points;
    runGeometrySweep(sweep, runner, &points);

    MissRatioTable missRatios =
        MissRatioTable::fromSweep("measured", points);

    LineTradeoffResult result{
        std::move(missRatios),
        ResultTable("line_tradeoff",
                    {"line", "miss_ratio", "smith_objective",
                     "reduced_delay"}),
        0, 0};
    result.recommended = tradeoffOptimalLine(
        result.missRatios, spec.delay, spec.baseLine);
    result.smith = smithOptimalLine(result.missRatios, spec.delay);

    for (const auto &entry : result.missRatios.points()) {
        const double objective = spec.delay.smithObjective(
            entry.missRatio, static_cast<double>(entry.lineBytes));
        Cell reduction = Cell::text("-");
        if (entry.lineBytes > spec.baseLine)
            reduction = Cell::num(
                reducedDelay(result.missRatios, spec.delay,
                             spec.baseLine, entry.lineBytes),
                kRatioPrecision);
        result.table.addRow(
            {Cell::integer(entry.lineBytes),
             Cell::num(entry.missRatio, kRatioPrecision),
             Cell::num(objective, 4), std::move(reduction)});
    }
    return result;
}

} // namespace uatm::exp
