/**
 * @file
 * Process-wide registry of named workload methods.
 *
 * A workload method is a (name, declared params, factory) triple:
 * the string-addressable recipe behind WorkloadSpec{method,
 * params}.  The registry validates a caller-supplied ParamMap
 * against the method's declared parameter types, merges the
 * declared defaults, and invokes the factory — every failure mode
 * (unknown method, unknown param, type mismatch, bad value)
 * returns a typed Status so a mistyped axis value in a 10k-point
 * grid degrades to one error row, never an abort.
 *
 * Built-in methods (registered on first use):
 *
 *   none        analytic marker; building a source is an error
 *   spec92      Spec92Profile phase mixes       (param: profile)
 *   short-levy  the Short & Levy multi-scale mix
 *   trace       file-backed replay via trace/io (params: path,
 *               format)
 *   ycsb        YCSB key-value mixes            (params: mix,
 *               records, theta, dist, record-bytes, fields,
 *               scan-max)
 *   ycsb-a..f   the six core mixes as presets
 *   reuse-dist  reuse-distance histogram synthesis (params:
 *               hist, depth, decay, cold, line-bytes,
 *               store-fraction)
 *
 * New methods can be registered at startup (before threads run;
 * lookups are read-locked, registration write-locked).  Factories
 * must be pure: the same (params, seed) must yield the same byte
 * stream on every call, because the parallel Runner rebuilds the
 * source once per shard and merges results positionally — see
 * EXPERIMENTS.md, "Registering a workload method".
 */

#ifndef UATM_EXP_WORKLOAD_REGISTRY_HH
#define UATM_EXP_WORKLOAD_REGISTRY_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "exp/param_map.hh"
#include "trace/source.hh"
#include "util/status.hh"

namespace uatm::exp {

/** One declared parameter of a workload method. */
struct ParamSpec
{
    std::string name;
    ParamValue::Type type = ParamValue::Type::String;
    ParamValue def;
    std::string help;
};

/** A registered workload method. */
struct WorkloadMethod
{
    /**
     * Builds a fresh, rewound source.  @p params has been
     * validated and default-merged; @p seed is the spec's seed.
     * Bad param *values* (an unknown profile, a zero record
     * count) return a Status.
     */
    using Factory =
        std::function<Expected<std::unique_ptr<TraceSource>>(
            const ParamMap &params, std::uint64_t seed)>;

    std::string name;
    std::string doc;
    std::vector<ParamSpec> params;
    Factory factory;

    /** Declared param by name; nullptr when absent. */
    const ParamSpec *param(const std::string &name) const;
};

class WorkloadRegistry
{
  public:
    /** The process-wide registry, builtins registered. */
    static WorkloadRegistry &instance();

    /**
     * Register @p method.  InvalidArgument on a duplicate name,
     * an empty name, a missing factory, or a default whose type
     * contradicts its declaration.
     */
    Status add(WorkloadMethod method);

    /** The named method, or nullptr. */
    const WorkloadMethod *find(const std::string &name) const;

    /** Registered method names, sorted. */
    std::vector<std::string> names() const;

    /**
     * Validate @p given against @p method's declared params and
     * merge the declared defaults: unknown methods are NotFound,
     * unknown params and type mismatches InvalidArgument.
     */
    Expected<ParamMap> resolve(const std::string &method,
                               const ParamMap &given) const;

    /** resolve() then invoke the factory. */
    Expected<std::unique_ptr<TraceSource>>
    make(const std::string &method, const ParamMap &given,
         std::uint64_t seed) const;

    /** Human-readable method summary (doc + param table). */
    Expected<std::string> describe(const std::string &name) const;

  private:
    WorkloadRegistry();

    mutable std::shared_mutex mutex_;
    std::map<std::string, WorkloadMethod> methods_;
};

} // namespace uatm::exp

#endif // UATM_EXP_WORKLOAD_REGISTRY_HH
