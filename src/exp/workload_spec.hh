/**
 * @file
 * Declarative workload description for the experiment layer.
 *
 * A WorkloadSpec names *how to build* a trace source rather than
 * holding one: every shard of a parallel run calls make() and gets
 * its own deterministically reseeded stream, so N workers see
 * exactly the byte stream one worker would have seen.
 *
 * The recipe is {method, params, seed, withIFetch}: method is a
 * name in the process-wide WorkloadRegistry and params a typed
 * ParamMap the registry validates against the method's declared
 * parameters.  That makes every spec — including workload axes
 * that sweep over methods or params — fully declarative:
 * toJson()/fromJson() round-trip it losslessly, so a scenario can
 * be shipped across processes (DESIGN.md §10).  The one escape
 * hatch is custom(), which carries an in-process factory and is
 * explicitly not serializable.
 */

#ifndef UATM_EXP_WORKLOAD_SPEC_HH
#define UATM_EXP_WORKLOAD_SPEC_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "exp/param_map.hh"
#include "trace/source.hh"
#include "util/status.hh"

namespace uatm::exp {

struct WorkloadSpec
{
    /** Registered method name (WorkloadRegistry). */
    std::string method = "spec92";

    /** Method params; absent entries take declared defaults. */
    ParamMap params;

    std::uint64_t seed = 1;

    /** Interleave an instruction-fetch stream (IFetchInterleaver,
     *  seeded from @ref seed). */
    bool withIFetch = false;

    /** Display name of a custom() spec. */
    std::string customName;

    /**
     * Non-serializable escape hatch: when set, make() calls this
     * instead of the registry.  Called once per point evaluation,
     * possibly from several threads at once — it must build a
     * fresh source from captured configuration only (clone() an
     * exemplar source, or construct from a seed).
     */
    std::function<std::unique_ptr<TraceSource>()> factory;

    /** Spec for any registered @p method. */
    static WorkloadSpec of(std::string method,
                           ParamMap params = {},
                           std::uint64_t seed = 1);

    /** Spec92 spec for @p profile at @p seed. */
    static WorkloadSpec spec92(std::string profile,
                               std::uint64_t seed = 1);

    /** Short & Levy mix at @p seed. */
    static WorkloadSpec shortLevy(std::uint64_t seed = 1);

    /** Custom factory spec labelled @p name. */
    static WorkloadSpec
    custom(std::string name,
           std::function<std::unique_ptr<TraceSource>()> factory);

    /** Marker for analytic scenarios that touch no trace. */
    static WorkloadSpec none();

    /**
     * Parse a "<method>[:k=v,...]" CLI argument (the shared
     * --workload syntax).  Param values are parsed against the
     * method's declared types, so "ycsb-a:theta=0.99,records=1e6"
     * works and "ycsb:theta=oops" is a typed error.  Bare Spec92
     * profile names ("doduc") and "shortlevy" are accepted as
     * shorthands for spec92:profile=... and short-levy.
     */
    static Expected<WorkloadSpec> parse(std::string_view arg,
                                        std::uint64_t seed = 1);

    /** True when make() routes to the custom factory. */
    bool isCustom() const { return factory != nullptr; }

    /** True for the analytic none() marker. */
    bool isNone() const
    {
        return !isCustom() && method == "none";
    }

    /** False only for custom() specs. */
    bool serializable() const { return !isCustom(); }

    /** Axis-label form: "nasa7", "ycsb-a:theta=0.9", ... */
    std::string shortLabel() const;

    /** "nasa7 (seed 1)", "ycsb-a (seed 3) +ifetch", ... */
    std::string describe() const;

    /**
     * One-line JSON document {"method", "params", "seed",
     * "ifetch"}; InvalidArgument for custom() specs.  Stable:
     * equal specs render byte-identically (params are kept
     * sorted), and fromJson(toJson()) is the identity on the
     * stream the spec builds.
     */
    Expected<std::string> toJson() const;

    /** Parse toJson()'s schema.  Unknown fields, a missing
     *  method, or mistyped values are ParseError; an unknown
     *  *method name* is deliberately left for make() to report,
     *  so deserialized grids degrade per point. */
    static Expected<WorkloadSpec> fromJson(std::string_view text);

    /**
     * Build a fresh source, rewound to the stream's beginning.
     * Deterministic: two calls on the same spec produce identical
     * streams.  Errors (rather than aborting) for none(), unknown
     * methods, and bad params, so one bad point in a grid
     * degrades to an error row.
     */
    Expected<std::unique_ptr<TraceSource>> make() const;
};

} // namespace uatm::exp

#endif // UATM_EXP_WORKLOAD_SPEC_HH
