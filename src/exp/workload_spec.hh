/**
 * @file
 * Declarative workload description for the experiment layer.
 *
 * A WorkloadSpec names *how to build* a trace source rather than
 * holding one: every shard of a parallel run calls make() and gets
 * its own deterministically reseeded stream, so N workers see
 * exactly the byte stream one worker would have seen.
 */

#ifndef UATM_EXP_WORKLOAD_SPEC_HH
#define UATM_EXP_WORKLOAD_SPEC_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "trace/source.hh"
#include "util/status.hh"

namespace uatm::exp {

struct WorkloadSpec
{
    enum class Kind : std::uint8_t
    {
        None,      ///< analytic point; make() returns an error
        Spec92,    ///< Spec92Profile::make(profile, seed)
        ShortLevy, ///< ShortLevyWorkload::make(seed)
        Custom,    ///< user factory (must be pure in its captures)
    };

    Kind kind = Kind::Spec92;

    /** Spec92 profile name. */
    std::string profile = "nasa7";

    std::uint64_t seed = 1;

    /** Interleave an instruction-fetch stream (IFetchInterleaver,
     *  seeded from @ref seed). */
    bool withIFetch = false;

    /**
     * Factory for Kind::Custom.  Called once per point evaluation,
     * possibly from several threads at once — it must build a fresh
     * source from captured configuration only (clone() an exemplar
     * source, or construct from a seed).
     */
    std::function<std::unique_ptr<TraceSource>()> factory;

    /** Spec92 spec for @p profile at @p seed. */
    static WorkloadSpec spec92(std::string profile,
                               std::uint64_t seed = 1);

    /** Short & Levy mix at @p seed. */
    static WorkloadSpec shortLevy(std::uint64_t seed = 1);

    /** Custom factory spec labelled @p name. */
    static WorkloadSpec
    custom(std::string name,
           std::function<std::unique_ptr<TraceSource>()> factory);

    /** Marker for analytic scenarios that touch no trace. */
    static WorkloadSpec none();

    /** "nasa7 (seed 1)", "short-levy (seed 3)", ... */
    std::string describe() const;

    /**
     * Build a fresh source, rewound to the stream's beginning.
     * Deterministic: two calls on the same spec produce identical
     * streams.  Errors (rather than aborting) for Kind::None and
     * for unknown Spec92 profile names, so one bad point in a grid
     * degrades to an error row.
     */
    Expected<std::unique_ptr<TraceSource>> make() const;
};

} // namespace uatm::exp

#endif // UATM_EXP_WORKLOAD_SPEC_HH
