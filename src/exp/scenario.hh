/**
 * @file
 * Declarative experiment scenarios.
 *
 * A Scenario is a base machine description (cache, memory, write
 * buffer, CPU feature), a workload spec, and an ordered list of
 * swept axes.  expand() crosses the axes into a flat list of
 * independent Points — the unit of work the parallel Runner shards
 * across threads.  Because each Point carries everything needed to
 * evaluate it (configs by value, workload by spec), evaluation is
 * embarrassingly parallel and the merged results are independent
 * of the thread count.
 *
 * Expansion order is row-major in declaration order: the first
 * declared axis varies slowest, the last fastest — the same order
 * the hand-rolled nested loops this layer replaces produced.
 */

#ifndef UATM_EXP_SCENARIO_HH
#define UATM_EXP_SCENARIO_HH

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "cache/config.hh"
#include "cpu/timing_engine.hh"
#include "exp/workload_spec.hh"
#include "memory/timing.hh"
#include "memory/write_buffer.hh"
#include "util/status.hh"

namespace uatm::exp {

/** One value of one axis, with its display label. */
struct AxisValue
{
    std::string label;
    double value = 0.0;

    /** Label "8192"-style for integral values, "%g" otherwise. */
    static AxisValue ofNumber(double value);
};

/** One resolved coordinate of a Point. */
struct Coord
{
    std::string axis;
    std::string label;
    double value = 0.0;
};

/**
 * One fully-resolved experiment point.  Everything is held by
 * value so a worker thread can evaluate the point without touching
 * shared state.
 */
struct Point
{
    /** Position in expansion order (== merge order). */
    std::size_t index = 0;

    CacheConfig cache;
    MemoryConfig memory;
    WriteBufferConfig writeBuffer;
    CpuConfig cpu;
    WorkloadSpec workload;

    std::uint64_t refs = 0;
    std::uint64_t warmupRefs = 0;

    std::vector<Coord> coords;

    /** Coordinate value of @p axis; NotFound when absent. */
    Expected<double> coord(const std::string &axis) const;

    /** Coordinate label of @p axis; NotFound when absent. */
    Expected<std::string> coordLabel(const std::string &axis) const;

    /** "size=8192 bus=8 workload=nasa7". */
    std::string label() const;
};

class Scenario
{
  public:
    /** Mutates a Point for one value of the axis. */
    using Applier = std::function<void(Point &, const AxisValue &)>;

    explicit Scenario(std::string name,
                      std::string description = "");

    const std::string &name() const { return name_; }
    const std::string &description() const { return description_; }

    // Base configuration, applied to every point before the axis
    // appliers run.
    CacheConfig cache;
    MemoryConfig memory;
    WriteBufferConfig writeBuffer;
    CpuConfig cpu;
    WorkloadSpec workload;

    /** References simulated per point (simulation kernels). */
    std::uint64_t refs = 100000;

    /** Warmup prefix excluded from statistics. */
    std::uint64_t warmupRefs = 0;

    /** Sweep a numeric axis. */
    Scenario &sweep(const std::string &axis,
                    const std::vector<double> &values,
                    Applier apply);

    /** Sweep an axis whose values carry display labels (features,
     *  policies, named candidates...). */
    Scenario &sweepLabeled(const std::string &axis,
                           std::vector<AxisValue> values,
                           Applier apply);

    /** Sweep the workload over Spec92 profile names (the scenario
     *  workload's seed and ifetch flag are kept). */
    Scenario &sweepWorkloads(const std::vector<std::string> &profiles);

    /** Sweep the workload over whole specs — different registered
     *  methods, or one method at different params.  Axis labels
     *  come from WorkloadSpec::shortLabel(). */
    Scenario &sweepWorkloadSpecs(std::vector<WorkloadSpec> specs);

    std::size_t axisCount() const { return axes_.size(); }

    /** Axis names in declaration order (the coord columns). */
    std::vector<std::string> axisNames() const;

    /** Product of the axis sizes (1 when no axes: one point). */
    std::size_t pointCount() const;

    /** Cross the axes into the flat, ordered point list. */
    std::vector<Point> expand() const;

  private:
    struct Axis
    {
        std::string name;
        std::vector<AxisValue> values;
        Applier apply;
    };

    std::string name_;
    std::string description_;
    std::vector<Axis> axes_;
};

} // namespace uatm::exp

#endif // UATM_EXP_SCENARIO_HH
