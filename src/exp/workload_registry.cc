/**
 * @file
 * Workload-method registry: validation, default merging, and the
 * built-in method set.
 */

#include "exp/workload_registry.hh"

#include <algorithm>
#include <fstream>
#include <mutex>
#include <sstream>

#include "trace/generators.hh"
#include "trace/io.hh"
#include "trace/reuse_distance.hh"
#include "trace/ycsb.hh"
#include "util/logging.hh"

namespace uatm::exp {

const ParamSpec *
WorkloadMethod::param(const std::string &name) const
{
    for (const auto &spec : params) {
        if (spec.name == name)
            return &spec;
    }
    return nullptr;
}

namespace {

std::string
joinNames(const std::vector<std::string> &names)
{
    std::string out;
    for (const auto &name : names) {
        if (!out.empty())
            out += ", ";
        out += name;
    }
    return out;
}

Status
checkIntRange(const ParamMap &params, const char *name,
              std::int64_t lo, std::int64_t hi)
{
    const std::int64_t v = params.getInt(name);
    if (v < lo || v > hi) {
        return Status::invalidArgument(
            "param '", name, "' must be in [", lo, ", ", hi,
            "], got ", v);
    }
    return Status();
}

Status
checkDoubleRange(const ParamMap &params, const char *name,
                 double lo, bool lo_open, double hi, bool hi_open)
{
    const double v = params.getDouble(name);
    const bool below = lo_open ? v <= lo : v < lo;
    const bool above = hi_open ? v >= hi : v > hi;
    if (below || above || v != v) {
        return Status::invalidArgument(
            "param '", name, "' must be in ", lo_open ? "(" : "[",
            lo, ", ", hi, hi_open ? ")" : "]", ", got ", v);
    }
    return Status();
}

Expected<std::unique_ptr<TraceSource>>
makeYcsb(YcsbWorkload::Mix mix, const ParamMap &params,
         std::uint64_t seed)
{
    // Construction cost is O(records) (the zipfian zeta sum), so
    // cap the keyspace well below anything that would stall a
    // sweep.
    if (Status s = checkIntRange(params, "records", 1, 100000000);
        !s.ok()) {
        return s;
    }
    if (Status s =
            checkDoubleRange(params, "theta", 0.0, false, 1.0,
                             true);
        !s.ok()) {
        return s;
    }
    if (Status s =
            checkIntRange(params, "record-bytes", 8, 1 << 20);
        !s.ok()) {
        return s;
    }
    if (Status s = checkIntRange(params, "fields", 1, 4096);
        !s.ok()) {
        return s;
    }
    if (Status s = checkIntRange(params, "scan-max", 1, 1000000);
        !s.ok()) {
        return s;
    }
    const std::string &dist = params.getString("dist");
    if (dist != "zipfian" && dist != "uniform") {
        return Status::invalidArgument(
            "param 'dist' must be zipfian or uniform, got '",
            dist, "'");
    }

    YcsbWorkload::Config config;
    config.mix = mix;
    config.records =
        static_cast<std::uint64_t>(params.getInt("records"));
    config.theta = params.getDouble("theta");
    config.zipfian = dist == "zipfian";
    config.recordBytes =
        static_cast<std::uint32_t>(params.getInt("record-bytes"));
    config.fieldsPerOp =
        static_cast<std::uint32_t>(params.getInt("fields"));
    config.maxScanLen =
        static_cast<std::uint32_t>(params.getInt("scan-max"));
    return std::unique_ptr<TraceSource>(
        std::make_unique<YcsbWorkload>(
            config, Rng(seed ^ 0x1c5b3f8e2a9d4701ull)));
}

/** The shared (mix-less) YCSB parameter table. */
std::vector<ParamSpec>
ycsbParams()
{
    return {
        ParamSpec{"records", ParamValue::Type::Int,
                  ParamValue::ofInt(100000),
                  "records loaded before the run"},
        ParamSpec{"theta", ParamValue::Type::Double,
                  ParamValue::ofDouble(0.99),
                  "zipfian skew in [0, 1)"},
        ParamSpec{"dist", ParamValue::Type::String,
                  ParamValue::ofString("zipfian"),
                  "key distribution: zipfian or uniform"},
        ParamSpec{"record-bytes", ParamValue::Type::Int,
                  ParamValue::ofInt(64), "bytes per record"},
        ParamSpec{"fields", ParamValue::Type::Int,
                  ParamValue::ofInt(2),
                  "fields touched per operation"},
        ParamSpec{"scan-max", ParamValue::Type::Int,
                  ParamValue::ofInt(50),
                  "max records per mix-E scan"},
    };
}

Expected<std::unique_ptr<TraceSource>>
makeReuseDistance(const ParamMap &params, std::uint64_t seed)
{
    const std::string &hist = params.getString("hist");
    ReuseProfile profile;
    if (hist.empty()) {
        if (Status s = checkIntRange(params, "depth", 1, 1 << 20);
            !s.ok()) {
            return s;
        }
        if (Status s = checkDoubleRange(params, "decay", 0.0,
                                        true, 1.0, false);
            !s.ok()) {
            return s;
        }
        if (Status s = checkDoubleRange(params, "cold", 0.0,
                                        false, 1.0, true);
            !s.ok()) {
            return s;
        }
        profile = ReuseProfile::geometric(
            static_cast<std::size_t>(params.getInt("depth")),
            params.getDouble("decay"), params.getDouble("cold"));
    } else if (hist.front() == '{') {
        auto parsed = ReuseProfile::fromJsonText(hist);
        if (!parsed.ok())
            return parsed.status();
        profile = std::move(parsed).value();
    } else {
        std::ifstream in(hist, std::ios::binary);
        if (!in) {
            return Status::ioError(
                "cannot open reuse profile '", hist, "'");
        }
        std::ostringstream text;
        text << in.rdbuf();
        auto parsed = ReuseProfile::fromJsonText(text.str());
        if (!parsed.ok()) {
            return Status::error(parsed.status().code(), "'",
                                 hist,
                                 "': ", parsed.status().message());
        }
        profile = std::move(parsed).value();
    }

    const std::int64_t line_bytes = params.getInt("line-bytes");
    if (line_bytes < 4 || line_bytes > 65536 ||
        (line_bytes & (line_bytes - 1)) != 0) {
        return Status::invalidArgument(
            "param 'line-bytes' must be a power of two in "
            "[4, 65536], got ",
            line_bytes);
    }
    if (Status s = checkDoubleRange(params, "store-fraction", 0.0,
                                    false, 1.0, false);
        !s.ok()) {
        return s;
    }

    ReuseDistanceWorkload::Config config;
    config.profile = std::move(profile);
    config.lineBytes = static_cast<std::uint32_t>(line_bytes);
    config.storeFraction = params.getDouble("store-fraction");
    return std::unique_ptr<TraceSource>(
        std::make_unique<ReuseDistanceWorkload>(
            config, Rng(seed ^ 0x8d2e6a1b4c7f9035ull)));
}

Expected<std::unique_ptr<TraceSource>>
makeTraceReplay(const ParamMap &params)
{
    const std::string &path = params.getString("path");
    if (path.empty()) {
        return Status::invalidArgument(
            "trace replay needs path=<file>");
    }
    const std::string &format = params.getString("format");
    Expected<Trace> trace =
        format == "binary" ? BinaryTraceFormat::readFile(path)
        : format == "text" ? TextTraceFormat::readFile(path)
                           : Status::invalidArgument(
                                 "param 'format' must be binary "
                                 "or text, got '",
                                 format, "'");
    if (!trace.ok())
        return trace.status();
    return std::unique_ptr<TraceSource>(
        std::make_unique<Trace>(std::move(trace).value()));
}

} // namespace

WorkloadRegistry &
WorkloadRegistry::instance()
{
    static WorkloadRegistry registry;
    return registry;
}

WorkloadRegistry::WorkloadRegistry()
{
    const auto mustAdd = [this](WorkloadMethod method) {
        const Status status = add(std::move(method));
        UATM_ASSERT(status.ok(), "builtin workload method: ",
                    status.message());
    };

    mustAdd(WorkloadMethod{
        "none",
        "analytic marker: the scenario touches no trace; "
        "building a source is an error",
        {},
        [](const ParamMap &, std::uint64_t)
            -> Expected<std::unique_ptr<TraceSource>> {
            return Status::invalidArgument(
                "analytic workload spec cannot build a source");
        }});

    mustAdd(WorkloadMethod{
        "spec92",
        "SPEC92-like phase-mix profiles (the paper's six "
        "Figure 1 programs)",
        {ParamSpec{"profile", ParamValue::Type::String,
                   ParamValue::ofString("nasa7"),
                   "one of: " + joinNames(Spec92Profile::names())}},
        [](const ParamMap &params, std::uint64_t seed)
            -> Expected<std::unique_ptr<TraceSource>> {
            const std::string &profile =
                params.getString("profile");
            const auto &known = Spec92Profile::names();
            if (std::find(known.begin(), known.end(), profile) ==
                known.end()) {
                return Status::notFound(
                    "unknown spec92 profile '", profile, "'");
            }
            return std::unique_ptr<TraceSource>(
                Spec92Profile::make(profile, seed));
        }});

    mustAdd(WorkloadMethod{
        "short-levy",
        "multi-scale working-set mix matching the Short & Levy "
        "size/hit-ratio curve",
        {},
        [](const ParamMap &, std::uint64_t seed)
            -> Expected<std::unique_ptr<TraceSource>> {
            return std::unique_ptr<TraceSource>(
                ShortLevyWorkload::make(seed));
        }});

    mustAdd(WorkloadMethod{
        "trace",
        "file-backed replay of a captured trace (trace_tool "
        "--mode generate writes them)",
        {ParamSpec{"path", ParamValue::Type::String,
                   ParamValue::ofString(""),
                   "trace file to replay"},
         ParamSpec{"format", ParamValue::Type::String,
                   ParamValue::ofString("binary"),
                   "binary or text"}},
        [](const ParamMap &params, std::uint64_t)
            -> Expected<std::unique_ptr<TraceSource>> {
            return makeTraceReplay(params);
        }});

    {
        auto params = ycsbParams();
        params.insert(
            params.begin(),
            ParamSpec{"mix", ParamValue::Type::String,
                      ParamValue::ofString("a"),
                      "YCSB core mix a..f"});
        mustAdd(WorkloadMethod{
            "ycsb",
            "YCSB-style key-value stream (zipfian/uniform keys, "
            "mixes a..f)",
            std::move(params),
            [](const ParamMap &params, std::uint64_t seed)
                -> Expected<std::unique_ptr<TraceSource>> {
                auto mix =
                    YcsbWorkload::parseMix(params.getString("mix"));
                if (!mix.ok())
                    return mix.status();
                return makeYcsb(mix.value(), params, seed);
            }});
    }

    static constexpr struct
    {
        const char *name;
        YcsbWorkload::Mix mix;
        const char *doc;
    } kMixes[] = {
        {"ycsb-a", YcsbWorkload::Mix::A,
         "YCSB A: 50% read / 50% update, update heavy"},
        {"ycsb-b", YcsbWorkload::Mix::B,
         "YCSB B: 95% read / 5% update, read mostly"},
        {"ycsb-c", YcsbWorkload::Mix::C, "YCSB C: 100% read"},
        {"ycsb-d", YcsbWorkload::Mix::D,
         "YCSB D: 95% read-latest / 5% insert"},
        {"ycsb-e", YcsbWorkload::Mix::E,
         "YCSB E: 95% short scan / 5% insert"},
        {"ycsb-f", YcsbWorkload::Mix::F,
         "YCSB F: 50% read / 50% read-modify-write"},
    };
    for (const auto &preset : kMixes) {
        const YcsbWorkload::Mix mix = preset.mix;
        mustAdd(WorkloadMethod{
            preset.name, preset.doc, ycsbParams(),
            [mix](const ParamMap &params, std::uint64_t seed) {
                return makeYcsb(mix, params, seed);
            }});
    }

    mustAdd(WorkloadMethod{
        "reuse-dist",
        "synthesizes a stream matching a target reuse-distance "
        "histogram (geometric by default; hist= loads JSON "
        "inline or from a file)",
        {ParamSpec{"hist", ParamValue::Type::String,
                   ParamValue::ofString(""),
                   "target histogram: inline JSON "
                   "('{\"cold\":...,\"weights\":[...]}') or a "
                   "file path; empty uses the geometric knobs"},
         ParamSpec{"depth", ParamValue::Type::Int,
                   ParamValue::ofInt(256),
                   "geometric profile stack depth"},
         ParamSpec{"decay", ParamValue::Type::Double,
                   ParamValue::ofDouble(0.95),
                   "geometric reuse decay in (0, 1]"},
         ParamSpec{"cold", ParamValue::Type::Double,
                   ParamValue::ofDouble(0.02),
                   "compulsory-miss fraction in [0, 1)"},
         ParamSpec{"line-bytes", ParamValue::Type::Int,
                   ParamValue::ofInt(32),
                   "reuse granularity (power of two)"},
         ParamSpec{"store-fraction", ParamValue::Type::Double,
                   ParamValue::ofDouble(0.3),
                   "P(reference is a store)"}},
        [](const ParamMap &params, std::uint64_t seed) {
            return makeReuseDistance(params, seed);
        }});
}

Status
WorkloadRegistry::add(WorkloadMethod method)
{
    if (method.name.empty())
        return Status::invalidArgument(
            "workload method needs a name");
    if (!method.factory) {
        return Status::invalidArgument("workload method '",
                                       method.name,
                                       "' needs a factory");
    }
    for (std::size_t i = 0; i < method.params.size(); ++i) {
        const ParamSpec &spec = method.params[i];
        if (spec.name.empty()) {
            return Status::invalidArgument(
                "workload method '", method.name,
                "' declares an unnamed param");
        }
        if (spec.def.type() != spec.type) {
            return Status::invalidArgument(
                "workload method '", method.name, "' param '",
                spec.name, "' declares a ",
                ParamValue::typeName(spec.type),
                " but defaults to a ",
                ParamValue::typeName(spec.def.type()));
        }
        for (std::size_t j = i + 1; j < method.params.size();
             ++j) {
            if (method.params[j].name == spec.name) {
                return Status::invalidArgument(
                    "workload method '", method.name,
                    "' declares param '", spec.name, "' twice");
            }
        }
    }

    std::unique_lock lock(mutex_);
    const std::string name = method.name;
    if (!methods_.emplace(name, std::move(method)).second) {
        return Status::invalidArgument("workload method '", name,
                                       "' is already registered");
    }
    return Status();
}

const WorkloadMethod *
WorkloadRegistry::find(const std::string &name) const
{
    std::shared_lock lock(mutex_);
    const auto it = methods_.find(name);
    return it == methods_.end() ? nullptr : &it->second;
}

std::vector<std::string>
WorkloadRegistry::names() const
{
    std::shared_lock lock(mutex_);
    std::vector<std::string> out;
    out.reserve(methods_.size());
    for (const auto &[name, method] : methods_)
        out.push_back(name);
    return out;
}

Expected<ParamMap>
WorkloadRegistry::resolve(const std::string &method,
                          const ParamMap &given) const
{
    const WorkloadMethod *found = find(method);
    if (!found) {
        return Status::notFound("unknown workload method '",
                                method,
                                "' (known: ", joinNames(names()),
                                ")");
    }
    ParamMap resolved;
    for (const auto &spec : found->params)
        resolved.set(spec.name, spec.def);
    for (const auto &entry : given.entries()) {
        const ParamSpec *spec = found->param(entry.name);
        if (!spec) {
            std::string known;
            for (const auto &declared : found->params) {
                if (!known.empty())
                    known += ", ";
                known += declared.name;
            }
            return Status::invalidArgument(
                "workload method '", method,
                "' has no param '", entry.name, "' (params: ",
                known.empty() ? "none" : known, ")");
        }
        auto coerced = entry.value.coerce(spec->type);
        if (!coerced.ok()) {
            return Status::invalidArgument(
                "workload method '", method, "' param '",
                entry.name,
                "': ", coerced.status().message());
        }
        resolved.set(entry.name, std::move(coerced).value());
    }
    return resolved;
}

Expected<std::unique_ptr<TraceSource>>
WorkloadRegistry::make(const std::string &method,
                       const ParamMap &given,
                       std::uint64_t seed) const
{
    auto resolved = resolve(method, given);
    if (!resolved.ok())
        return resolved.status();
    // find() cannot fail after resolve() succeeded; methods are
    // never deregistered.
    const WorkloadMethod *found = find(method);
    return found->factory(resolved.value(), seed);
}

Expected<std::string>
WorkloadRegistry::describe(const std::string &name) const
{
    const WorkloadMethod *found = find(name);
    if (!found) {
        return Status::notFound("unknown workload method '", name,
                                "' (known: ", joinNames(names()),
                                ")");
    }
    std::string out = found->name;
    out += " - ";
    out += found->doc;
    out += '\n';
    if (found->params.empty()) {
        out += "  (no params)\n";
        return out;
    }
    out += "  params:\n";
    for (const auto &spec : found->params) {
        out += "    ";
        out += spec.name;
        out += " (";
        out += ParamValue::typeName(spec.type);
        out += ", default ";
        const std::string def = spec.def.render();
        out += def.empty() ? "\"\"" : def;
        out += "): ";
        out += spec.help;
        out += '\n';
    }
    return out;
}

} // namespace uatm::exp
