/**
 * @file
 * Scenario expansion: cross the declared axes into a flat,
 * deterministically ordered point list.
 */

#include "exp/scenario.hh"

#include <cmath>
#include <cstdio>
#include <memory>

#include "util/logging.hh"

namespace uatm::exp {

AxisValue
AxisValue::ofNumber(double value)
{
    char buf[48];
    if (value == std::floor(value) && std::abs(value) < 1e15)
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(value));
    else
        std::snprintf(buf, sizeof(buf), "%g", value);
    return AxisValue{buf, value};
}

Expected<double>
Point::coord(const std::string &axis) const
{
    for (const auto &coord : coords)
        if (coord.axis == axis)
            return coord.value;
    return Status::notFound("point has no axis '", axis, "'");
}

Expected<std::string>
Point::coordLabel(const std::string &axis) const
{
    for (const auto &coord : coords)
        if (coord.axis == axis)
            return coord.label;
    return Status::notFound("point has no axis '", axis, "'");
}

std::string
Point::label() const
{
    std::string out;
    for (const auto &coord : coords) {
        if (!out.empty())
            out += ' ';
        out += coord.axis;
        out += '=';
        out += coord.label;
    }
    if (out.empty())
        out = "point";
    return out;
}

Scenario::Scenario(std::string name, std::string description)
    : name_(std::move(name)), description_(std::move(description))
{
}

Scenario &
Scenario::sweep(const std::string &axis,
                const std::vector<double> &values, Applier apply)
{
    std::vector<AxisValue> labelled;
    labelled.reserve(values.size());
    for (double value : values)
        labelled.push_back(AxisValue::ofNumber(value));
    return sweepLabeled(axis, std::move(labelled), std::move(apply));
}

Scenario &
Scenario::sweepLabeled(const std::string &axis,
                       std::vector<AxisValue> values, Applier apply)
{
    UATM_ASSERT(!values.empty(), "axis '", axis, "' has no values");
    UATM_ASSERT(apply != nullptr, "axis '", axis,
                "' has no applier");
    for (const auto &existing : axes_)
        UATM_ASSERT(existing.name != axis, "axis '", axis,
                    "' declared twice");
    axes_.push_back(
        Axis{axis, std::move(values), std::move(apply)});
    return *this;
}

Scenario &
Scenario::sweepWorkloads(const std::vector<std::string> &profiles)
{
    std::vector<AxisValue> values;
    values.reserve(profiles.size());
    for (std::size_t i = 0; i < profiles.size(); ++i)
        values.push_back(
            AxisValue{profiles[i], static_cast<double>(i)});
    return sweepLabeled(
        "workload", std::move(values),
        [](Point &point, const AxisValue &value) {
            const std::uint64_t seed = point.workload.seed;
            const bool ifetch = point.workload.withIFetch;
            point.workload =
                WorkloadSpec::spec92(value.label, seed);
            point.workload.withIFetch = ifetch;
        });
}

Scenario &
Scenario::sweepWorkloadSpecs(std::vector<WorkloadSpec> specs)
{
    UATM_ASSERT(!specs.empty(),
                "workload axis has no specs");
    std::vector<AxisValue> values;
    values.reserve(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i)
        values.push_back(AxisValue{specs[i].shortLabel(),
                                   static_cast<double>(i)});
    auto shared = std::make_shared<std::vector<WorkloadSpec>>(
        std::move(specs));
    return sweepLabeled(
        "workload", std::move(values),
        [shared](Point &point, const AxisValue &value) {
            point.workload =
                (*shared)[static_cast<std::size_t>(value.value)];
        });
}

std::vector<std::string>
Scenario::axisNames() const
{
    std::vector<std::string> names;
    names.reserve(axes_.size());
    for (const auto &axis : axes_)
        names.push_back(axis.name);
    return names;
}

std::size_t
Scenario::pointCount() const
{
    std::size_t count = 1;
    for (const auto &axis : axes_)
        count *= axis.values.size();
    return count;
}

std::vector<Point>
Scenario::expand() const
{
    std::vector<Point> points;
    points.reserve(pointCount());

    // Odometer over the axes: indices[0] (first declared axis)
    // turns slowest, matching the nested loops this replaces.
    std::vector<std::size_t> indices(axes_.size(), 0);
    while (true) {
        Point point;
        point.index = points.size();
        point.cache = cache;
        point.memory = memory;
        point.writeBuffer = writeBuffer;
        point.cpu = cpu;
        point.workload = workload;
        point.refs = refs;
        point.warmupRefs = warmupRefs;
        point.coords.reserve(axes_.size());
        for (std::size_t a = 0; a < axes_.size(); ++a) {
            const AxisValue &value = axes_[a].values[indices[a]];
            point.coords.push_back(
                Coord{axes_[a].name, value.label, value.value});
            axes_[a].apply(point, value);
        }
        points.push_back(std::move(point));

        std::size_t a = axes_.size();
        while (a > 0) {
            --a;
            if (++indices[a] < axes_[a].values.size())
                break;
            indices[a] = 0;
            if (a == 0)
                return points;
        }
        if (axes_.empty())
            return points;
    }
}

} // namespace uatm::exp
