/**
 * @file
 * Scaling diagnosis over runner telemetry.
 *
 * Turns one RunnerTelemetry into the numbers that answer "why
 * doesn't this sweep scale" — per-worker utilization, the
 * load-imbalance index, parallel efficiency, and the top-K slowest
 * points — and fits Amdahl's law across runs at different thread
 * counts to estimate the serial fraction.  Shared by
 * tools/run_report and bench/bench_sweep_parallel so the CLI and
 * the benchmark print the same diagnosis.
 */

#ifndef UATM_EXP_REPORT_HH
#define UATM_EXP_REPORT_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "exp/telemetry.hh"

namespace uatm::exp {

/** The derived per-run diagnosis (see diagnoseRun). */
struct RunDiagnosis
{
    unsigned threadsUsed = 0;        ///< 0 = inline serial run
    std::uint64_t pointCount = 0;
    std::uint64_t wallNs = 0;
    double loadImbalance = 0.0;      ///< max/mean worker kernel ns
    double parallelEfficiency = 0.0; ///< kernel / wall capacity

    /** utilization per worker, indexed by worker id. */
    std::vector<double> workerUtilization;

    /** The K longest points, slowest first. */
    std::vector<PointTiming> slowestPoints;
};

/** Analyse one telemetry record; @p topK bounds slowestPoints. */
RunDiagnosis diagnoseRun(const RunnerTelemetry &telemetry,
                         std::size_t topK = 5);

/** Result of fitting T(n) = T1 * (s + (1-s)/n). */
struct AmdahlFit
{
    bool ok = false;          ///< needs >= 2 distinct thread counts
    double serialFraction = 0.0;  ///< s, clamped to [0, 1]
    double t1Ns = 0.0;            ///< fitted single-thread time

    /** Predicted speedup at @p n threads under the fit. */
    double speedupAt(double n) const;
};

/**
 * Least-squares fit of Amdahl's law to (threads, wall ns) samples:
 * T(n) = a + b/n with s = a/(a+b), T1 = a+b.  Thread count 0
 * (inline run) is treated as 1.  Samples with duplicate thread
 * counts are averaged first.
 */
AmdahlFit
fitAmdahl(const std::vector<std::pair<unsigned, double>> &samples);

/** Human-readable multi-line rendering of one diagnosis. */
std::string formatDiagnosis(const RunDiagnosis &diagnosis);

/** Human-readable rendering of an Amdahl fit (or its failure). */
std::string formatAmdahlFit(
    const AmdahlFit &fit,
    const std::vector<std::pair<unsigned, double>> &samples);

} // namespace uatm::exp

#endif // UATM_EXP_REPORT_HH
