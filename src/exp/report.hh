/**
 * @file
 * Scaling diagnosis over runner telemetry.
 *
 * Turns one RunnerTelemetry into the numbers that answer "why
 * doesn't this sweep scale" — per-worker utilization, the
 * load-imbalance index, parallel efficiency, and the top-K slowest
 * points — and fits Amdahl's law across runs at different thread
 * counts to estimate the serial fraction.  Shared by
 * tools/run_report and bench/bench_sweep_parallel so the CLI and
 * the benchmark print the same diagnosis.
 */

#ifndef UATM_EXP_REPORT_HH
#define UATM_EXP_REPORT_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "exp/telemetry.hh"

namespace uatm::exp {

/** The derived per-run diagnosis (see diagnoseRun). */
struct RunDiagnosis
{
    unsigned threadsUsed = 0;        ///< 0 = inline serial run
    std::uint64_t pointCount = 0;
    std::uint64_t wallNs = 0;
    double loadImbalance = 0.0;      ///< max/mean worker kernel ns
    double parallelEfficiency = 0.0; ///< kernel / wall capacity

    /** utilization per worker, indexed by worker id. */
    std::vector<double> workerUtilization;

    /** Per-worker counter deltas, parallel to
     *  workerUtilization (schema v2 telemetry). */
    std::vector<obs::PerfCounterValues> workerCounters;

    /** True when at least one worker recorded counters. */
    bool countersAvailable = false;

    /** The K longest points, slowest first. */
    std::vector<PointTiming> slowestPoints;
};

/** Analyse one telemetry record; @p topK bounds slowestPoints. */
RunDiagnosis diagnoseRun(const RunnerTelemetry &telemetry,
                         std::size_t topK = 5);

/** Result of fitting T(n) = T1 * (s + (1-s)/n). */
struct AmdahlFit
{
    bool ok = false;          ///< needs >= 2 distinct thread counts
    double serialFraction = 0.0;  ///< s, clamped to [0, 1]
    double t1Ns = 0.0;            ///< fitted single-thread time

    /** Predicted speedup at @p n threads under the fit. */
    double speedupAt(double n) const;
};

/**
 * Least-squares fit of Amdahl's law to (threads, wall ns) samples:
 * T(n) = a + b/n with s = a/(a+b), T1 = a+b.  Thread count 0
 * (inline run) is treated as 1.  Samples with duplicate thread
 * counts are averaged first.
 */
AmdahlFit
fitAmdahl(const std::vector<std::pair<unsigned, double>> &samples);

/** One thread count's aggregate counter picture. */
struct CounterScalingPoint
{
    unsigned threads = 0;
    double ipc = 0.0;    ///< aggregate instructions / cycles
    double mpki = 0.0;   ///< cache misses per 1k instructions
    double migrationsPerWorker = 0.0;
    double ctxSwitchesPerSecond = 0.0;
    bool hasIpc = false;
    bool hasMpki = false;
    bool hasMigrations = false;
    bool hasCtxSwitches = false;
};

/**
 * Counter trend across runs at different thread counts, with the
 * heuristics that tell contention stories timers cannot: rising
 * misses-per-instruction with falling IPC as threads grow is the
 * cache-line ping-pong signature (false sharing); heavy per-
 * worker migrations or context switches point at the scheduler
 * instead.
 */
struct CounterScaling
{
    /** True when at least one run carried counters. */
    bool ok = false;

    /** One aggregate per distinct thread count, ascending. */
    std::vector<CounterScalingPoint> points;

    /** mpki up >= 30% while IPC down >= 15%, lowest vs highest
     *  thread count.  Needs hardware events at both ends. */
    bool falseSharingSuspected = false;

    /** > 10 cpu migrations per worker at the highest count. */
    bool migrationHeavy = false;

    /** > 500 context switches/s at the highest thread count. */
    bool contextSwitchHeavy = false;

    /** One-line reading of the flags. */
    std::string verdict;
};

/** Analyse counter trends across @p runs (any order). */
CounterScaling
analyzeCounterScaling(const std::vector<RunnerTelemetry> &runs);

/** Human-readable multi-line rendering of one diagnosis. */
std::string formatDiagnosis(const RunDiagnosis &diagnosis);

/** Human-readable rendering of the counter trend analysis. */
std::string formatCounterScaling(const CounterScaling &scaling);

/** Human-readable rendering of an Amdahl fit (or its failure). */
std::string formatAmdahlFit(
    const AmdahlFit &fit,
    const std::vector<std::pair<unsigned, double>> &samples);

} // namespace uatm::exp

#endif // UATM_EXP_REPORT_HH
