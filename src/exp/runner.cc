/**
 * @file
 * Implementation of the sharded parallel runner.
 */

#include "exp/runner.hh"

#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>

#include "obs/registry.hh"
#include "obs/trace_event.hh"
#include "util/logging.hh"

namespace uatm::exp {

void
RunnerStats::registerStats(obs::StatRegistry &registry,
                           const std::string &prefix) const
{
    registry.addScalar(prefix + ".points",
                       static_cast<double>(points),
                       "scenario points evaluated");
    registry.addScalar(prefix + ".points_failed",
                       static_cast<double>(pointsFailed),
                       "points whose kernel failed");
    registry.addScalar(prefix + ".threads_requested",
                       threadsRequested,
                       "worker threads requested");
    registry.addScalar(prefix + ".threads_used", threadsUsed,
                       "worker threads actually spawned");
    registry.addScalar(prefix + ".wall_seconds", wallSeconds,
                       "wall-clock time of the run", "s");
    registry.addScalar(prefix + ".point_seconds_total",
                       pointSecondsTotal,
                       "summed per-point kernel time", "s");
}

Runner::Runner(RunnerOptions options) : options_(options) {}

unsigned
Runner::effectiveThreads(std::size_t points) const
{
    unsigned threads = options_.threads;
    if (threads == 0) {
        threads = std::thread::hardware_concurrency();
        if (threads == 0)
            threads = 1;
    }
    // The global event tracer's ring buffer is not synchronised;
    // a traced run must stay serial to keep the trace coherent.
    if (obs::globalTracer().enabled())
        threads = 1;
    if (points < threads)
        threads = points ? static_cast<unsigned>(points) : 1;
    return threads;
}

ResultTable
Runner::run(const Scenario &scenario,
            const std::vector<std::string> &value_columns,
            const Kernel &kernel)
{
    UATM_ASSERT(kernel != nullptr, "runner needs a kernel");

    std::vector<Point> points = scenario.expand();

    std::vector<std::string> columns = scenario.axisNames();
    columns.insert(columns.end(), value_columns.begin(),
                   value_columns.end());
    ResultTable table(scenario.name(), columns);

    unsigned requested =
        options_.threads ? options_.threads
                         : std::thread::hardware_concurrency();
    if (requested == 0)
        requested = 1;
    // A tracer-forced-serial run only ever asked for one thread;
    // reporting hardware_concurrency() here would misstate the run.
    if (obs::globalTracer().enabled())
        requested = 1;
    unsigned threads = effectiveThreads(points.size());

    std::vector<std::vector<Cell>> slots(points.size());
    // One failure slot per point keeps the merge deterministic:
    // failures land by index, not by completion order.
    std::vector<std::optional<Status>> errors(points.size());
    std::atomic<std::size_t> next{0};
    std::atomic<double> kernelSeconds{0.0};
    std::exception_ptr firstError;
    std::mutex errorMutex;

    const bool failFast = options_.failFast;

    auto worker = [&]() {
        double localSeconds = 0.0;
        while (true) {
            std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= points.size())
                break;
            auto start = std::chrono::steady_clock::now();
            bool failed = false;
            std::exception_ptr thrown;
            try {
                auto cells = kernel(points[i]);
                if (cells.ok()) {
                    slots[i] = std::move(cells).value();
                } else {
                    errors[i] = cells.status();
                    failed = true;
                }
            } catch (const StatusError &e) {
                errors[i] = e.status();
                failed = true;
                thrown = std::current_exception();
            } catch (const std::exception &e) {
                errors[i] = Status::error(ErrorCode::KernelError,
                                          e.what());
                failed = true;
                thrown = std::current_exception();
            } catch (...) {
                errors[i] = Status::error(ErrorCode::KernelError,
                                          "unknown exception");
                failed = true;
                thrown = std::current_exception();
            }
            if (failed && failFast) {
                std::lock_guard<std::mutex> lock(errorMutex);
                if (!firstError) {
                    // Rethrow what the kernel actually threw; wrap
                    // status-return failures so they still escape
                    // as an exception.
                    firstError = thrown
                        ? thrown
                        : std::make_exception_ptr(
                              StatusError(*errors[i]));
                }
                // Drain the queue so the pool winds down fast.
                next.store(points.size(),
                           std::memory_order_relaxed);
                break;
            }
            localSeconds +=
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
        }
        double expected =
            kernelSeconds.load(std::memory_order_relaxed);
        while (!kernelSeconds.compare_exchange_weak(
            expected, expected + localSeconds,
            std::memory_order_relaxed))
            ;
    };

    auto wallStart = std::chrono::steady_clock::now();
    unsigned spawned = 0;
    if (threads <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(threads);
        for (unsigned t = 0; t < threads; ++t)
            pool.emplace_back(worker);
        for (auto &thread : pool)
            thread.join();
        spawned = threads;
    }
    double wallSeconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - wallStart)
            .count();

    failures_.clear();
    for (std::size_t i = 0; i < points.size(); ++i) {
        if (errors[i]) {
            failures_.push_back(
                PointFailure{i, points[i].label(), *errors[i]});
        }
    }

    // Stats first, rethrow second: a fail-fast abort must not leave
    // lastStats() describing the previous run.
    stats_.points = points.size();
    stats_.pointsFailed = failures_.size();
    stats_.threadsRequested = requested;
    stats_.threadsUsed = spawned;
    stats_.wallSeconds = wallSeconds;
    stats_.pointSecondsTotal =
        kernelSeconds.load(std::memory_order_relaxed);

    // Log after the join, from one thread, so warn() lines do not
    // interleave.
    for (const auto &failure : failures_) {
        warn("point ", failure.index, " (", failure.label,
             ") failed: ", failure.status.toString());
    }

    if (failFast && firstError)
        std::rethrow_exception(firstError);

    for (std::size_t i = 0; i < points.size(); ++i) {
        std::vector<Cell> row;
        row.reserve(columns.size());
        for (const auto &coord : points[i].coords)
            row.push_back(Cell::text(coord.label));
        if (errors[i]) {
            for (std::size_t c = 0; c < value_columns.size(); ++c)
                row.push_back(Cell::error(*errors[i]));
        } else {
            UATM_ASSERT(slots[i].size() == value_columns.size(),
                        "kernel returned ", slots[i].size(),
                        " cells for point ", i, ", expected ",
                        value_columns.size());
            for (auto &cell : slots[i])
                row.push_back(std::move(cell));
        }
        table.addRow(std::move(row));
    }

    return table;
}

} // namespace uatm::exp
