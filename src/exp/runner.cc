/**
 * @file
 * Implementation of the sharded parallel runner.
 */

#include "exp/runner.hh"

#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>

#include "obs/registry.hh"
#include "obs/trace_event.hh"
#include "util/logging.hh"

namespace uatm::exp {

void
RunnerStats::registerStats(obs::StatRegistry &registry,
                           const std::string &prefix) const
{
    registry.addScalar(prefix + ".points",
                       static_cast<double>(points),
                       "scenario points evaluated");
    registry.addScalar(prefix + ".threads_requested",
                       threadsRequested,
                       "worker threads requested");
    registry.addScalar(prefix + ".threads_used", threadsUsed,
                       "worker threads actually spawned");
    registry.addScalar(prefix + ".wall_seconds", wallSeconds,
                       "wall-clock time of the run", "s");
    registry.addScalar(prefix + ".point_seconds_total",
                       pointSecondsTotal,
                       "summed per-point kernel time", "s");
}

Runner::Runner(RunnerOptions options) : options_(options) {}

unsigned
Runner::effectiveThreads(std::size_t points) const
{
    unsigned threads = options_.threads;
    if (threads == 0) {
        threads = std::thread::hardware_concurrency();
        if (threads == 0)
            threads = 1;
    }
    // The global event tracer's ring buffer is not synchronised;
    // a traced run must stay serial to keep the trace coherent.
    if (obs::globalTracer().enabled())
        threads = 1;
    if (points < threads)
        threads = points ? static_cast<unsigned>(points) : 1;
    return threads;
}

ResultTable
Runner::run(const Scenario &scenario,
            const std::vector<std::string> &value_columns,
            const Kernel &kernel)
{
    UATM_ASSERT(kernel != nullptr, "runner needs a kernel");

    std::vector<Point> points = scenario.expand();

    std::vector<std::string> columns = scenario.axisNames();
    columns.insert(columns.end(), value_columns.begin(),
                   value_columns.end());
    ResultTable table(scenario.name(), columns);

    unsigned requested =
        options_.threads ? options_.threads
                         : std::thread::hardware_concurrency();
    unsigned threads = effectiveThreads(points.size());

    std::vector<std::vector<Cell>> slots(points.size());
    std::atomic<std::size_t> next{0};
    std::atomic<double> kernelSeconds{0.0};
    std::exception_ptr firstError;
    std::mutex errorMutex;

    auto worker = [&]() {
        double localSeconds = 0.0;
        while (true) {
            std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= points.size())
                break;
            auto start = std::chrono::steady_clock::now();
            try {
                slots[i] = kernel(points[i]);
            } catch (...) {
                std::lock_guard<std::mutex> lock(errorMutex);
                if (!firstError)
                    firstError = std::current_exception();
                // Drain the queue so the pool winds down fast.
                next.store(points.size(),
                           std::memory_order_relaxed);
                break;
            }
            localSeconds +=
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
        }
        double expected =
            kernelSeconds.load(std::memory_order_relaxed);
        while (!kernelSeconds.compare_exchange_weak(
            expected, expected + localSeconds,
            std::memory_order_relaxed))
            ;
    };

    auto wallStart = std::chrono::steady_clock::now();
    if (threads <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(threads);
        for (unsigned t = 0; t < threads; ++t)
            pool.emplace_back(worker);
        for (auto &thread : pool)
            thread.join();
    }
    double wallSeconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - wallStart)
            .count();

    if (firstError)
        std::rethrow_exception(firstError);

    for (std::size_t i = 0; i < points.size(); ++i) {
        UATM_ASSERT(slots[i].size() == value_columns.size(),
                    "kernel returned ", slots[i].size(),
                    " cells for point ", i, ", expected ",
                    value_columns.size());
        std::vector<Cell> row;
        row.reserve(columns.size());
        for (const auto &coord : points[i].coords)
            row.push_back(Cell::text(coord.label));
        for (auto &cell : slots[i])
            row.push_back(std::move(cell));
        table.addRow(std::move(row));
    }

    stats_.points = points.size();
    stats_.threadsRequested = requested ? requested : 1;
    stats_.threadsUsed = threads;
    stats_.wallSeconds = wallSeconds;
    stats_.pointSecondsTotal =
        kernelSeconds.load(std::memory_order_relaxed);
    return table;
}

} // namespace uatm::exp
