/**
 * @file
 * Implementation of the sharded parallel runner.
 */

#include "exp/runner.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <optional>
#include <string_view>
#include <thread>
#include <utility>

#include "obs/registry.hh"
#include "obs/trace_event.hh"
#include "util/logging.hh"

namespace uatm::exp {

void
RunnerStats::registerStats(obs::StatRegistry &registry,
                           const std::string &prefix) const
{
    registry.addScalar(prefix + ".points",
                       static_cast<double>(points),
                       "scenario points evaluated");
    registry.addScalar(prefix + ".points_failed",
                       static_cast<double>(pointsFailed),
                       "points whose kernel failed");
    registry.addScalar(prefix + ".threads_requested",
                       threadsRequested,
                       "worker threads requested");
    registry.addScalar(prefix + ".threads_used", threadsUsed,
                       "worker threads actually spawned");
    registry.addScalar(prefix + ".wall_seconds", wallSeconds,
                       "wall-clock time of the run", "s");
    registry.addScalar(prefix + ".point_seconds_total",
                       pointSecondsTotal,
                       "summed per-point kernel time", "s");
}

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t
nsBetween(Clock::time_point from, Clock::time_point to)
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            to - from)
            .count());
}

bool
envTelemetryArmed()
{
    const char *env = std::getenv("UATM_RUNNER_TELEMETRY");
    return env && *env && std::string_view(env) != "0";
}

/** UATM_PROGRESS: 0/unset = off, numeric N = every N points,
 *  any other non-"0" value = auto interval. */
std::size_t
envProgressEvery()
{
    const char *env = std::getenv("UATM_PROGRESS");
    if (!env || !*env || std::string_view(env) == "0")
        return 0;
    char *end = nullptr;
    const unsigned long long value =
        std::strtoull(env, &end, 10);
    if (end && *end == '\0' && value > 0)
        return static_cast<std::size_t>(value);
    return 1;
}

/**
 * Replay the merged telemetry into the (single-threaded) tracer
 * as one track per worker: point spans named by their coordinate
 * label, idle gaps between them, all timestamps in microseconds
 * relative to the pool start.
 */
void
emitWorkerSpans(obs::EventTracer &tracer,
                const RunnerTelemetry &telemetry,
                const std::vector<std::uint64_t> &workerStartNs)
{
    const char *idleName = tracer.intern("idle");
    const char *startName = tracer.intern("worker start");
    for (const auto &worker : telemetry.workers) {
        const char *track = tracer.intern(
            "runner worker " + std::to_string(worker.worker));
        std::uint64_t cursorNs =
            worker.worker < workerStartNs.size()
                ? workerStartNs[worker.worker]
                : 0;
        // Instant marker so every worker gets a named track even
        // when it never won a point (short grids, few cores).
        tracer.record(startName, track, cursorNs / 1000, 0,
                      worker.worker);
        for (const auto &point : telemetry.points) {
            if (point.worker != worker.worker)
                continue;
            if (point.startNs > cursorNs) {
                const std::uint64_t gapUs =
                    (point.startNs - cursorNs) / 1000;
                if (gapUs > 0)
                    tracer.record(idleName, track,
                                  cursorNs / 1000, gapUs);
            }
            tracer.record(tracer.intern(point.label), track,
                          point.startNs / 1000,
                          std::max<std::uint64_t>(
                              point.durationNs / 1000, 1),
                          point.index);
            cursorNs = std::max(cursorNs,
                                point.startNs + point.durationNs);
        }
        const std::uint64_t workerEndNs =
            (worker.worker < workerStartNs.size()
                 ? workerStartNs[worker.worker]
                 : 0) +
            worker.lifetimeNs;
        if (workerEndNs > cursorNs) {
            const std::uint64_t gapUs =
                (workerEndNs - cursorNs) / 1000;
            if (gapUs > 0)
                tracer.record(idleName, track, cursorNs / 1000,
                              gapUs);
        }
    }
}

} // namespace

Runner::Runner(RunnerOptions options) : options_(options) {}

unsigned
Runner::effectiveThreads(std::size_t points) const
{
    unsigned threads = options_.threads;
    if (threads == 0) {
        threads = std::thread::hardware_concurrency();
        if (threads == 0)
            threads = 1;
    }
    if (points < threads)
        threads = points ? static_cast<unsigned>(points) : 1;
    return threads;
}

ResultTable
Runner::run(const Scenario &scenario,
            const std::vector<std::string> &value_columns,
            const Kernel &kernel)
{
    UATM_ASSERT(kernel != nullptr, "runner needs a kernel");

    const auto expandStart = Clock::now();
    std::vector<Point> points = scenario.expand();
    const std::uint64_t expandNs =
        nsBetween(expandStart, Clock::now());

    std::vector<std::string> columns = scenario.axisNames();
    columns.insert(columns.end(), value_columns.begin(),
                   value_columns.end());
    ResultTable table(scenario.name(), columns);

    unsigned requested =
        options_.threads ? options_.threads
                         : std::thread::hardware_concurrency();
    if (requested == 0)
        requested = 1;
    const unsigned threads = effectiveThreads(points.size());

    obs::EventTracer &tracer = obs::globalTracer();
    const bool traceArmed = tracer.enabled();
    const bool telemetryArmed = options_.telemetry || traceArmed ||
                                envTelemetryArmed();

    std::vector<std::vector<Cell>> slots(points.size());
    // One failure slot per point keeps the merge deterministic:
    // failures land by index, not by completion order.
    std::vector<std::optional<Status>> errors(points.size());
    std::atomic<std::size_t> next{0};
    std::atomic<double> kernelSeconds{0.0};
    std::exception_ptr firstError;
    std::mutex errorMutex;

    // Progress heartbeat: 1 means auto-size the interval to ~5%
    // of the grid so big sweeps print ~20 lines, small ones one.
    std::size_t progressEvery = options_.progressEvery
                                    ? options_.progressEvery
                                    : envProgressEvery();
    if (progressEvery == 1)
        progressEvery =
            std::max<std::size_t>(1, points.size() / 20);
    std::atomic<std::size_t> completed{0};
    std::mutex progressMutex;

    const bool failFast = options_.failFast;
    const unsigned lanes = std::max(threads, 1u);

    // Telemetry lands in per-lane slots sized before the pool
    // spawns: workers write only their own lane, so recording is
    // lock-free and needs no synchronisation beyond the join.
    std::vector<WorkerTelemetry> laneTelemetry(
        telemetryArmed ? lanes : 0);
    std::vector<std::vector<PointTiming>> lanePoints(
        telemetryArmed ? lanes : 0);
    std::vector<std::uint64_t> laneStartNs(
        telemetryArmed ? lanes : 0, 0);

    const auto wallStart = Clock::now();

    auto worker = [&](unsigned lane) {
        double localSeconds = 0.0;
        WorkerTelemetry tel;
        tel.worker = lane;
        std::vector<PointTiming> localPoints;
        // Per-worker hardware counters: opened on the worker's
        // own thread so the group counts exactly this worker.
        // Unavailability (paranoid, seccomp, no PMU) is recorded,
        // never fatal.
        std::optional<obs::PerfCounterGroup> counters;
        obs::PerfReading counterBegin;
        const auto lifeStart = Clock::now();
        if (telemetryArmed) {
            laneStartNs[lane] = nsBetween(wallStart, lifeStart);
            localPoints.reserve(points.size() / lanes + 1);
            counters.emplace();
            if (counters->available()) {
                counters->start();
                counterBegin = counters->read();
            }
        }
        while (true) {
            Clock::time_point acquireStart;
            if (telemetryArmed)
                acquireStart = Clock::now();
            std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= points.size())
                break;
            auto start = Clock::now();
            if (telemetryArmed)
                tel.acquireNs += nsBetween(acquireStart, start);
            bool failed = false;
            std::exception_ptr thrown;
            try {
                auto cells = kernel(points[i]);
                if (cells.ok()) {
                    slots[i] = std::move(cells).value();
                } else {
                    errors[i] = cells.status();
                    failed = true;
                }
            } catch (const StatusError &e) {
                errors[i] = e.status();
                failed = true;
                thrown = std::current_exception();
            } catch (const std::exception &e) {
                errors[i] = Status::error(ErrorCode::KernelError,
                                          e.what());
                failed = true;
                thrown = std::current_exception();
            } catch (...) {
                errors[i] = Status::error(ErrorCode::KernelError,
                                          "unknown exception");
                failed = true;
                thrown = std::current_exception();
            }
            if (failed && failFast) {
                std::lock_guard<std::mutex> lock(errorMutex);
                if (!firstError) {
                    // Rethrow what the kernel actually threw; wrap
                    // status-return failures so they still escape
                    // as an exception.
                    firstError = thrown
                        ? thrown
                        : std::make_exception_ptr(
                              StatusError(*errors[i]));
                }
                // Drain the queue so the pool winds down fast.
                next.store(points.size(),
                           std::memory_order_relaxed);
                break;
            }
            auto end = Clock::now();
            localSeconds +=
                std::chrono::duration<double>(end - start)
                    .count();
            if (telemetryArmed) {
                const std::uint64_t durationNs =
                    nsBetween(start, end);
                tel.kernelNs += durationNs;
                ++tel.points;
                PointTiming timing;
                timing.index = i;
                timing.worker = lane;
                timing.startNs = nsBetween(wallStart, start);
                timing.durationNs = durationNs;
                localPoints.push_back(std::move(timing));
            }
            if (progressEvery) {
                const std::size_t done =
                    completed.fetch_add(
                        1, std::memory_order_relaxed) +
                    1;
                if (done % progressEvery == 0 ||
                    done == points.size()) {
                    const double elapsed =
                        static_cast<double>(nsBetween(
                            wallStart, Clock::now())) /
                        1e9;
                    const double rate =
                        elapsed > 0.0
                            ? static_cast<double>(done) / elapsed
                            : 0.0;
                    const double eta =
                        rate > 0.0
                            ? static_cast<double>(points.size() -
                                                  done) /
                                  rate
                            : 0.0;
                    std::lock_guard<std::mutex> lock(
                        progressMutex);
                    std::fprintf(
                        stderr,
                        "uatm runner [%s]: %zu/%zu points, "
                        "%.0f points/s, ETA %.1fs\n",
                        scenario.name().c_str(), done,
                        points.size(), rate, eta);
                }
            }
        }
        double expected =
            kernelSeconds.load(std::memory_order_relaxed);
        while (!kernelSeconds.compare_exchange_weak(
            expected, expected + localSeconds,
            std::memory_order_relaxed))
            ;
        if (telemetryArmed) {
            tel.lifetimeNs = nsBetween(lifeStart, Clock::now());
            const std::uint64_t busy = tel.kernelNs + tel.acquireNs;
            tel.idleNs =
                tel.lifetimeNs > busy ? tel.lifetimeNs - busy : 0;
            if (counters && counters->available()) {
                tel.counters = obs::scaleDelta(counterBegin,
                                               counters->read());
            }
            laneTelemetry[lane] = tel;
            lanePoints[lane] = std::move(localPoints);
        }
    };

    unsigned spawned = 0;
    if (threads <= 1) {
        worker(0);
    } else {
        // The tracer's ring is not synchronised.  Suspend it while
        // the pool is alive (kernel-internal record() calls become
        // inline no-ops) and replay the per-worker telemetry as
        // spans from this thread after the join.
        if (traceArmed)
            tracer.setEnabled(false);
        std::vector<std::thread> pool;
        pool.reserve(threads);
        for (unsigned t = 0; t < threads; ++t)
            pool.emplace_back(worker, t);
        for (auto &thread : pool)
            thread.join();
        if (traceArmed)
            tracer.setEnabled(true);
        spawned = threads;
    }
    const std::uint64_t wallNs =
        nsBetween(wallStart, Clock::now());
    const double wallSeconds =
        static_cast<double>(wallNs) / 1e9;

    failures_.clear();
    for (std::size_t i = 0; i < points.size(); ++i) {
        if (errors[i]) {
            failures_.push_back(
                PointFailure{i, points[i].label(), *errors[i]});
        }
    }

    // Stats first, rethrow second: a fail-fast abort must not leave
    // lastStats() describing the previous run.
    stats_.points = points.size();
    stats_.pointsFailed = failures_.size();
    stats_.threadsRequested = requested;
    stats_.threadsUsed = spawned;
    stats_.wallSeconds = wallSeconds;
    stats_.pointSecondsTotal =
        kernelSeconds.load(std::memory_order_relaxed);

    telemetry_ = RunnerTelemetry{};
    telemetry_.armed = telemetryArmed;
    if (telemetryArmed) {
        telemetry_.scenario = scenario.name();
        telemetry_.threadsRequested = requested;
        telemetry_.threadsUsed = spawned;
        telemetry_.pointCount = points.size();
        telemetry_.pointsFailed = failures_.size();
        telemetry_.wallNs = wallNs;
        telemetry_.expandNs = expandNs;
        telemetry_.workers = laneTelemetry;
        std::size_t total = 0;
        for (const auto &lane : lanePoints)
            total += lane.size();
        telemetry_.points.reserve(total);
        for (auto &lane : lanePoints)
            for (auto &timing : lane)
                telemetry_.points.push_back(std::move(timing));
        std::sort(telemetry_.points.begin(),
                  telemetry_.points.end(),
                  [](const PointTiming &a, const PointTiming &b) {
                      return a.index < b.index;
                  });
        for (auto &timing : telemetry_.points) {
            timing.label = points[timing.index].label();
            telemetry_.pointLatency.add(
                static_cast<double>(timing.durationNs));
        }
        if (traceArmed)
            emitWorkerSpans(tracer, telemetry_, laneStartNs);
    }

    // Log after the join, from one thread, so warn() lines do not
    // interleave.
    for (const auto &failure : failures_) {
        warn("point ", failure.index, " (", failure.label,
             ") failed: ", failure.status.toString());
    }

    if (failFast && firstError)
        std::rethrow_exception(firstError);

    const auto mergeStart = Clock::now();
    for (std::size_t i = 0; i < points.size(); ++i) {
        std::vector<Cell> row;
        row.reserve(columns.size());
        for (const auto &coord : points[i].coords)
            row.push_back(Cell::text(coord.label));
        if (errors[i]) {
            for (std::size_t c = 0; c < value_columns.size(); ++c)
                row.push_back(Cell::error(*errors[i]));
        } else {
            UATM_ASSERT(slots[i].size() == value_columns.size(),
                        "kernel returned ", slots[i].size(),
                        " cells for point ", i, ", expected ",
                        value_columns.size());
            for (auto &cell : slots[i])
                row.push_back(std::move(cell));
        }
        table.addRow(std::move(row));
    }
    if (telemetryArmed)
        telemetry_.mergeNs = nsBetween(mergeStart, Clock::now());

    return table;
}

} // namespace uatm::exp
