/**
 * @file
 * Content-addressed canonicalization of experiment points.
 *
 * canonicalPointKey renders everything a Point's evaluation
 * depends on — the four configs, the workload recipe, the ref
 * counts, and the id of the kernel that prices it — as one
 * canonical JSON document: field order is fixed, numbers render
 * locale-independently (obs::JsonWriter), and the workload params
 * are name-sorted (ParamMap).  Two points with equal keys are
 * therefore guaranteed to produce byte-identical result cells
 * under the same kernel, which is what makes sweep results safely
 * memoizable (the serve layer's PointCache, ROADMAP item 2).
 *
 * Non-serializable points — custom() workload specs carry an
 * in-process factory — refuse a key with a typed InvalidArgument
 * Status rather than silently hashing an incomplete description:
 * a bogus cache key that aliases two different workloads would
 * serve wrong results, so "no key" is the only safe answer.
 */

#ifndef UATM_EXP_POINT_KEY_HH
#define UATM_EXP_POINT_KEY_HH

#include <cstdint>
#include <string>
#include <string_view>

#include "exp/scenario.hh"
#include "util/status.hh"

namespace uatm::exp {

/** Bumped whenever the canonical key layout changes shape, so a
 *  persisted cache never aliases entries across layouts. */
constexpr int kPointKeySchemaVersion = 1;

/**
 * The canonical one-line JSON key of @p point evaluated by
 * @p kernel_id (an arbitrary non-empty label naming the kernel's
 * value columns + semantics, e.g. "cache/v1").  Coordinates do
 * not participate: by the time a Point reaches a kernel its axis
 * values have been applied to the configs, so two points at
 * different coordinates that resolve to the same configuration
 * correctly share a key.  InvalidArgument for custom() workload
 * specs (never a silent partial key).
 */
Expected<std::string> canonicalPointKey(const Point &point,
                                        std::string_view kernel_id);

/**
 * 64-bit FNV-1a digest of @p canonical_key, as 16 lowercase hex
 * digits — the content address used for on-disk cache filenames.
 * Collisions are survivable: consumers must compare the full key
 * stored next to the value before trusting a digest match.
 */
std::string pointKeyDigest(std::string_view canonical_key);

} // namespace uatm::exp

#endif // UATM_EXP_POINT_KEY_HH
