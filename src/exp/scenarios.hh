/**
 * @file
 * The repo's standing experiments, re-expressed as scenarios so
 * they all run through the sharded Runner and emit ResultTables:
 * the cache-geometry sweeps, the phi measurement (Figure 1), the
 * Sec. 5.3 feature grid, and the Sec. 5.4 line-size tradeoff.
 *
 * Each experiment keeps its serial kernel in its home module
 * (cache/sweep, cpu/phi_measurement, core/tradeoff,
 * linesize/line_tradeoff); this layer only declares the grid and
 * shards it.  The *Parallel drop-ins return the same result types
 * as their serial counterparts and are bit-identical to them at
 * any thread count.
 */

#ifndef UATM_EXP_SCENARIOS_HH
#define UATM_EXP_SCENARIOS_HH

#include <cstdint>
#include <vector>

#include "cache/sweep.hh"
#include "core/tradeoff.hh"
#include "cpu/phi_measurement.hh"
#include "exp/runner.hh"
#include "exp/scenario.hh"
#include "linesize/line_tradeoff.hh"

namespace uatm::exp {

// ---------------------------------------------------------------
// Cache geometry sweeps (cache/sweep through the runner).
// ---------------------------------------------------------------

struct GeometrySweep
{
    enum class Axis : std::uint8_t
    {
        Size, ///< vary CacheConfig::sizeBytes
        Line, ///< vary CacheConfig::lineBytes
    };

    /**
     * Which kernel evaluates the sweep.  Auto picks the
     * single-pass stack-distance engine (cache/stack_sim) whenever
     * the sweep qualifies — size axis, LRU, write-allocate — and
     * logs + counts the fallback otherwise (never silent; see
     * sweepDispatchCounters()).  The merged ResultTable is
     * byte-identical between the two engines at any thread count.
     */
    enum class Engine : std::uint8_t
    {
        Auto,     ///< stack-sim when eligible, else per-point
        StackSim, ///< require the fast path; throws if ineligible
        PerPoint, ///< force one simulation per grid point
    };

    Axis axis = Axis::Size;
    CacheConfig base;
    WorkloadSpec workload;
    std::vector<std::uint64_t> values;
    std::uint64_t refs = 100000;
    std::uint64_t warmupRefs = 0;
    Engine engine = Engine::Auto;
};

/** The sweep as a declarative scenario (one axis). */
Scenario makeGeometryScenario(const GeometrySweep &spec);

/**
 * Run the sweep on @p runner.  Table columns: the axis ("size" or
 * "line") then hit_ratio / miss_ratio / flush_ratio.  When
 * @p points is non-null it also receives the raw SweepPoints, in
 * axis order.
 */
ResultTable runGeometrySweep(const GeometrySweep &spec,
                             Runner &runner,
                             std::vector<SweepPoint> *points =
                                 nullptr);

/**
 * Parallel drop-in for uatm::sweepCacheSize: same result, any
 * thread count (0 = hardware concurrency).
 */
std::vector<SweepPoint>
sweepCacheSizeParallel(const CacheConfig &base,
                       const WorkloadSpec &workload,
                       const std::vector<std::uint64_t> &sizes,
                       std::uint64_t refs,
                       std::uint64_t warmup_refs = 0,
                       unsigned threads = 0);

/** Parallel drop-in for uatm::sweepLineSize. */
std::vector<SweepPoint>
sweepLineSizeParallel(const CacheConfig &base,
                      const WorkloadSpec &workload,
                      const std::vector<std::uint32_t> &line_sizes,
                      std::uint64_t refs,
                      std::uint64_t warmup_refs = 0,
                      unsigned threads = 0);

// ---------------------------------------------------------------
// Stalling-factor measurement (Figure 1) over the six profiles.
// ---------------------------------------------------------------

/** One point per SPEC92-like profile (axis "workload"). */
Scenario makePhiScenario(const PhiExperiment &experiment);

/**
 * Measure phi on every profile on @p runner.  Columns: workload,
 * phi, pct_of_full.  The "average" row Figure 1 plots is appended
 * after the merge (it depends on every point).
 */
ResultTable runPhiScenario(const PhiExperiment &experiment,
                           Runner &runner);

/** Parallel drop-in for uatm::measurePhiAllProfiles. */
std::vector<PhiResult>
measurePhiAllProfilesParallel(const PhiExperiment &experiment,
                              unsigned threads = 0);

// ---------------------------------------------------------------
// The Sec. 5.3 feature comparison grid.
// ---------------------------------------------------------------

struct FeatureGrid
{
    /** Operating point; machine.cycleTime is overridden by the
     *  mu_m axis. */
    TradeoffContext ctx;

    /** Base hit ratio HR1 the traded dHR is quoted against. */
    double baseHitRatio = 0.95;

    /** Measured stalling factor for the PartialStall row. */
    double phiPartial = 4.0;

    /** Pipelined fill interval q. */
    double q = 2.0;

    /** The mu_m axis (paper Sec. 5.3 walks 4..32). */
    std::vector<double> cycleTimes = {4, 8, 16, 32};

    /** The features compared; defaults to all four. */
    std::vector<TradeFeature> features = {
        TradeFeature::DoubleBus, TradeFeature::PartialStall,
        TradeFeature::WriteBuffers, TradeFeature::PipelinedMemory};
};

/** mu_m (slow axis) x feature (fast axis) scenario. */
Scenario makeFeatureGridScenario(const FeatureGrid &grid);

/**
 * Evaluate the grid on @p runner.  Columns: mu_m, feature,
 * miss_factor (r, Eq. 3), dhr (Eq. 6), equiv_hr.
 */
ResultTable runFeatureGrid(const FeatureGrid &grid, Runner &runner);

// ---------------------------------------------------------------
// The Sec. 5.4 line-size tradeoff.
// ---------------------------------------------------------------

struct LineTradeoff
{
    /** Cache whose lineBytes is swept (capacity fixed). */
    CacheConfig base;
    WorkloadSpec workload;
    std::vector<std::uint32_t> lineSizes = {8, 16, 32, 64, 128};
    LineDelayModel delay;

    /** Base line L0 of the Eq. 19 selector. */
    std::uint32_t baseLine = 16;

    std::uint64_t refs = 100000;
    std::uint64_t warmupRefs = 0;
};

struct LineTradeoffResult
{
    /** Measured MR(L) at the spec's capacity. */
    MissRatioTable missRatios;

    /** Columns: line, miss_ratio, smith_objective, reduced_delay
     *  (vs baseLine; 0 for the base row). */
    ResultTable table;

    /** Eq. 18/19 recommendation. */
    std::uint32_t recommended = 0;

    /** Smith's optimum (Eq. 16), for the agreement check. */
    std::uint32_t smith = 0;
};

/** Sweep MR(L) on @p runner, then run both selectors on it. */
LineTradeoffResult runLineTradeoff(const LineTradeoff &spec,
                                   Runner &runner);

} // namespace uatm::exp

#endif // UATM_EXP_SCENARIOS_HH
