/**
 * @file
 * Implementation of the typed workload-parameter map.
 */

#include "exp/param_map.hh"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>

#include "obs/json.hh"
#include "util/logging.hh"

namespace uatm::exp {

ParamValue
ParamValue::ofString(std::string v)
{
    ParamValue value;
    value.type_ = Type::String;
    value.string_ = std::move(v);
    return value;
}

ParamValue
ParamValue::ofInt(std::int64_t v)
{
    ParamValue value;
    value.type_ = Type::Int;
    value.int_ = v;
    return value;
}

ParamValue
ParamValue::ofDouble(double v)
{
    ParamValue value;
    value.type_ = Type::Double;
    value.double_ = v;
    return value;
}

ParamValue
ParamValue::ofBool(bool v)
{
    ParamValue value;
    value.type_ = Type::Bool;
    value.bool_ = v;
    return value;
}

const char *
ParamValue::typeName(Type type)
{
    switch (type) {
      case Type::String:
        return "string";
      case Type::Int:
        return "int";
      case Type::Double:
        return "double";
      case Type::Bool:
        return "bool";
    }
    return "?";
}

const std::string &
ParamValue::asString() const
{
    UATM_ASSERT(type_ == Type::String,
                "param value is not a string");
    return string_;
}

std::int64_t
ParamValue::asInt() const
{
    UATM_ASSERT(type_ == Type::Int, "param value is not an int");
    return int_;
}

double
ParamValue::asDouble() const
{
    UATM_ASSERT(type_ == Type::Double,
                "param value is not a double");
    return double_;
}

bool
ParamValue::asBool() const
{
    UATM_ASSERT(type_ == Type::Bool, "param value is not a bool");
    return bool_;
}

double
ParamValue::asNumber() const
{
    if (type_ == Type::Int)
        return static_cast<double>(int_);
    UATM_ASSERT(type_ == Type::Double,
                "param value is not numeric");
    return double_;
}

std::string
ParamValue::render() const
{
    switch (type_) {
      case Type::String:
        return string_;
      case Type::Int:
        return std::to_string(int_);
      case Type::Double:
        return obs::JsonWriter::formatNumber(double_);
      case Type::Bool:
        return bool_ ? "true" : "false";
    }
    return "?";
}

namespace {

/** strtod over the whole of @p text; nullopt on trailing junk. */
std::optional<double>
parseFullDouble(const std::string &text, bool &out_of_range)
{
    out_of_range = false;
    char *end = nullptr;
    errno = 0;
    const double v = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || *end != '\0')
        return std::nullopt;
    if (errno == ERANGE && (v >= HUGE_VAL || v <= -HUGE_VAL)) {
        out_of_range = true;
        return std::nullopt;
    }
    return v;
}

/** True when @p v is integral and representable as int64. */
bool
fitsInt64(double v)
{
    return v == std::floor(v) && v >= -9.223372036854776e18 &&
           v < 9.223372036854776e18;
}

} // namespace

Expected<ParamValue>
ParamValue::parse(Type type, std::string_view text)
{
    const std::string value(text);
    switch (type) {
      case Type::String:
        return ofString(value);
      case Type::Bool: {
        std::string lower = value;
        std::transform(lower.begin(), lower.end(), lower.begin(),
                       [](unsigned char c) {
                           return static_cast<char>(
                               std::tolower(c));
                       });
        if (lower == "1" || lower == "true" || lower == "yes")
            return ofBool(true);
        if (lower == "0" || lower == "false" || lower == "no")
            return ofBool(false);
        return Status::parseError("'", value,
                                  "' is not a bool (expected "
                                  "1/0/true/false/yes/no)");
      }
      case Type::Int: {
        char *end = nullptr;
        errno = 0;
        const long long v =
            std::strtoll(value.c_str(), &end, 10);
        if (end != value.c_str() && *end == '\0') {
            if (errno == ERANGE) {
                return Status::outOfRange(
                    "'", value,
                    "' overflows a 64-bit integer");
            }
            return ofInt(v);
        }
        // Scientific shorthand ("1e6") is common for record
        // counts; accept it when the value is integral.
        bool range = false;
        const auto d = parseFullDouble(value, range);
        if (range) {
            return Status::outOfRange(
                "'", value, "' overflows a 64-bit integer");
        }
        if (!d) {
            return Status::parseError("'", value,
                                      "' is not an integer");
        }
        if (!fitsInt64(*d)) {
            if (*d != std::floor(*d)) {
                return Status::parseError(
                    "'", value, "' is not an integer");
            }
            return Status::outOfRange(
                "'", value, "' overflows a 64-bit integer");
        }
        return ofInt(static_cast<std::int64_t>(*d));
      }
      case Type::Double: {
        bool range = false;
        const auto d = parseFullDouble(value, range);
        if (range) {
            return Status::outOfRange("'", value,
                                      "' overflows a double");
        }
        if (!d)
            return Status::parseError("'", value,
                                      "' is not a number");
        return ofDouble(*d);
      }
    }
    return Status::invalidArgument("unknown param type");
}

Expected<ParamValue>
ParamValue::coerce(Type target) const
{
    if (type_ == target)
        return *this;
    if (type_ == Type::Int && target == Type::Double)
        return ofDouble(static_cast<double>(int_));
    if (type_ == Type::Double && target == Type::Int &&
        fitsInt64(double_)) {
        return ofInt(static_cast<std::int64_t>(double_));
    }
    return Status::invalidArgument(
        "expected a ", typeName(target), " value, got ",
        typeName(type_), " '", render(), "'");
}

void
ParamMap::set(const std::string &name, ParamValue value)
{
    const auto it = std::lower_bound(
        entries_.begin(), entries_.end(), name,
        [](const Entry &entry, const std::string &key) {
            return entry.name < key;
        });
    if (it != entries_.end() && it->name == name) {
        it->value = std::move(value);
        return;
    }
    entries_.insert(it, Entry{name, std::move(value)});
}

void
ParamMap::setString(const std::string &name, std::string v)
{
    set(name, ParamValue::ofString(std::move(v)));
}

void
ParamMap::setInt(const std::string &name, std::int64_t v)
{
    set(name, ParamValue::ofInt(v));
}

void
ParamMap::setDouble(const std::string &name, double v)
{
    set(name, ParamValue::ofDouble(v));
}

void
ParamMap::setBool(const std::string &name, bool v)
{
    set(name, ParamValue::ofBool(v));
}

const ParamValue *
ParamMap::find(const std::string &name) const
{
    const auto it = std::lower_bound(
        entries_.begin(), entries_.end(), name,
        [](const Entry &entry, const std::string &key) {
            return entry.name < key;
        });
    if (it != entries_.end() && it->name == name)
        return &it->value;
    return nullptr;
}

const ParamValue &
ParamMap::require(const std::string &name,
                  ParamValue::Type type) const
{
    const ParamValue *value = find(name);
    UATM_ASSERT(value != nullptr, "param '", name,
                "' is absent (was the map resolved against the "
                "method's defaults?)");
    UATM_ASSERT(value->type() == type, "param '", name,
                "' accessed as ", ParamValue::typeName(type),
                " but holds a ",
                ParamValue::typeName(value->type()));
    return *value;
}

const std::string &
ParamMap::getString(const std::string &name) const
{
    return require(name, ParamValue::Type::String).asString();
}

std::int64_t
ParamMap::getInt(const std::string &name) const
{
    return require(name, ParamValue::Type::Int).asInt();
}

double
ParamMap::getDouble(const std::string &name) const
{
    return require(name, ParamValue::Type::Double).asDouble();
}

bool
ParamMap::getBool(const std::string &name) const
{
    return require(name, ParamValue::Type::Bool).asBool();
}

std::string
ParamMap::render() const
{
    std::string out;
    for (const auto &entry : entries_) {
        if (!out.empty())
            out += ',';
        out += entry.name;
        out += '=';
        out += entry.value.render();
    }
    return out;
}

void
ParamMap::writeJson(obs::JsonWriter &writer) const
{
    writer.beginObject();
    for (const auto &entry : entries_) {
        writer.key(entry.name);
        switch (entry.value.type()) {
          case ParamValue::Type::String:
            writer.value(entry.value.asString());
            break;
          case ParamValue::Type::Int:
            writer.value(entry.value.asInt());
            break;
          case ParamValue::Type::Double:
            writer.value(entry.value.asDouble());
            break;
          case ParamValue::Type::Bool:
            writer.value(entry.value.asBool());
            break;
        }
    }
    writer.endObject();
}

Expected<ParamMap>
ParamMap::fromJson(const obs::JsonValue &value)
{
    if (!value.isObject()) {
        return Status::parseError(
            "workload params must be a JSON object");
    }
    ParamMap map;
    for (const auto &[name, member] : value.members()) {
        if (member.isString()) {
            map.setString(name, member.asString());
        } else if (member.isBool()) {
            map.setBool(name, member.asBool());
        } else if (member.isNumber()) {
            const double v = member.asNumber();
            if (fitsInt64(v))
                map.setInt(name, static_cast<std::int64_t>(v));
            else
                map.setDouble(name, v);
        } else {
            return Status::parseError(
                "workload param '", name,
                "' must be a string, number or bool");
        }
    }
    return map;
}

} // namespace uatm::exp
