/**
 * @file
 * Implementation of the canonical point key.
 */

#include "exp/point_key.hh"

#include "cpu/stall_feature.hh"
#include "obs/json.hh"

namespace uatm::exp {

// The key walks every field of the four config structs by hand.
// These guards fire when a field is added, so the key (and the
// schema version above) cannot silently go stale and alias two
// configurations that now differ.
static_assert(sizeof(CacheConfig) == 32,
              "CacheConfig changed shape: extend canonicalPointKey "
              "and bump kPointKeySchemaVersion");
static_assert(sizeof(MemoryConfig) == 32,
              "MemoryConfig changed shape: extend canonicalPointKey "
              "and bump kPointKeySchemaVersion");
static_assert(sizeof(WriteBufferConfig) == 8,
              "WriteBufferConfig changed shape: extend "
              "canonicalPointKey and bump kPointKeySchemaVersion");
static_assert(sizeof(CpuConfig) == 12,
              "CpuConfig changed shape: extend canonicalPointKey "
              "and bump kPointKeySchemaVersion");

Expected<std::string>
canonicalPointKey(const Point &point, std::string_view kernel_id)
{
    if (kernel_id.empty()) {
        return Status::invalidArgument(
            "a point key needs a non-empty kernel id");
    }
    auto workload = point.workload.toJson();
    if (!workload.ok()) {
        return Status::error(
            workload.status().code(),
            "point is not cacheable: ", workload.status().message());
    }

    obs::JsonWriter w;
    w.beginObject();
    w.keyValue("v", kPointKeySchemaVersion);
    w.keyValue("kernel", kernel_id);

    w.key("cache").beginObject();
    w.keyValue("size", point.cache.sizeBytes);
    w.keyValue("assoc", point.cache.assoc);
    w.keyValue("line", point.cache.lineBytes);
    w.keyValue("write_miss",
               writeMissPolicyName(point.cache.writeMiss));
    w.keyValue("write", writePolicyName(point.cache.write));
    w.keyValue("replacement",
               replacementKindName(point.cache.replacement));
    w.keyValue("replacement_seed", point.cache.replacementSeed);
    w.endObject();

    w.key("memory").beginObject();
    w.keyValue("bus_width", point.memory.busWidthBytes);
    w.keyValue("cycle_time", point.memory.cycleTime);
    w.keyValue("pipelined", point.memory.pipelined);
    w.keyValue("pipeline_interval", point.memory.pipelineInterval);
    w.endObject();

    w.key("wbuf").beginObject();
    w.keyValue("depth", point.writeBuffer.depth);
    w.keyValue("read_bypass", point.writeBuffer.readBypass);
    w.endObject();

    w.key("cpu").beginObject();
    w.keyValue("feature", stallFeatureName(point.cpu.feature));
    w.keyValue("mshrs", point.cpu.mshrs);
    w.keyValue("suppress_flush", point.cpu.suppressFlushTraffic);
    w.keyValue("prefetch", prefetchPolicyName(point.cpu.prefetch));
    w.endObject();

    w.key("workload").rawValue(workload.value());
    w.keyValue("refs", point.refs);
    w.keyValue("warmup", point.warmupRefs);
    w.endObject();
    return w.str();
}

std::string
pointKeyDigest(std::string_view canonical_key)
{
    // FNV-1a, 64-bit.
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (unsigned char c : canonical_key) {
        h ^= c;
        h *= 0x100000001b3ull;
    }
    static const char *digits = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<std::size_t>(i)] = digits[h & 0xf];
        h >>= 4;
    }
    return out;
}

} // namespace uatm::exp
