/**
 * @file
 * Implementation of the experiment-layer result table.
 */

#include "exp/result_table.hh"

#include <cmath>
#include <cstdio>
#include <fstream>

#include "obs/json.hh"
#include "util/csv.hh"
#include "util/logging.hh"
#include "util/table.hh"

namespace uatm::exp {

Cell
Cell::text(std::string text)
{
    Cell cell;
    cell.text_ = std::move(text);
    return cell;
}

Cell
Cell::num(double value, int precision)
{
    Cell cell;
    cell.text_ = TextTable::num(value, precision);
    cell.value_ = value;
    cell.numeric_ = true;
    return cell;
}

Cell
Cell::integer(std::int64_t value)
{
    Cell cell;
    cell.text_ = std::to_string(value);
    cell.value_ = static_cast<double>(value);
    cell.numeric_ = true;
    return cell;
}

Cell
Cell::error(const Status &status)
{
    UATM_ASSERT(!status.ok(), "an error cell needs an error status");
    Cell cell;
    cell.text_ = std::string("!") + errorCodeName(status.code());
    cell.error_ = true;
    return cell;
}

Cell
Cell::fromParts(std::string text, double value, bool numeric,
                bool is_error)
{
    Cell cell;
    cell.text_ = std::move(text);
    cell.value_ = value;
    cell.numeric_ = numeric;
    cell.error_ = is_error;
    return cell;
}

const char *
tableFormatName(TableFormat format)
{
    switch (format) {
      case TableFormat::Text:
        return "text";
      case TableFormat::Csv:
        return "csv";
      case TableFormat::Json:
        return "json";
      case TableFormat::Ndjson:
        return "ndjson";
    }
    return "?";
}

Expected<TableFormat>
parseTableFormat(const std::string &name)
{
    if (name == "text")
        return TableFormat::Text;
    if (name == "csv")
        return TableFormat::Csv;
    if (name == "json")
        return TableFormat::Json;
    if (name == "ndjson")
        return TableFormat::Ndjson;
    return Status::invalidArgument(
        "unknown table format '", name,
        "' (expected text, csv, json or ndjson)");
}

ResultTable::ResultTable(std::string name,
                         std::vector<std::string> columns)
    : name_(std::move(name)), columns_(std::move(columns))
{
    UATM_ASSERT(!columns_.empty(), "a table needs columns");
}

void
ResultTable::addRow(std::vector<Cell> cells)
{
    UATM_ASSERT(cells.size() == columns_.size(), "row arity ",
                cells.size(), " != column count ", columns_.size());
    rows_.push_back(std::move(cells));
}

const Cell &
ResultTable::at(std::size_t row, std::size_t col) const
{
    UATM_ASSERT(row < rows_.size(), "row ", row, " out of range");
    UATM_ASSERT(col < columns_.size(), "col ", col, " out of range");
    return rows_[row][col];
}

std::string
ResultTable::render(TableFormat format) const
{
    switch (format) {
      case TableFormat::Text:
        return renderText();
      case TableFormat::Csv:
        return renderCsv();
      case TableFormat::Json:
        return renderJson();
      case TableFormat::Ndjson:
        return renderNdjson();
    }
    panic("bad table format ", int(format));
}

std::string
ResultTable::renderText() const
{
    TextTable table(columns_);
    for (const auto &row : rows_) {
        std::vector<std::string> cells;
        cells.reserve(row.size());
        for (const auto &cell : row)
            cells.push_back(cell.str());
        table.addRow(std::move(cells));
    }
    return table.render();
}

std::string
ResultTable::renderCsv() const
{
    std::string out;
    auto writeRow = [&out](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            if (i)
                out += ',';
            out += CsvWriter::escape(cells[i]);
        }
        out += '\n';
    };
    writeRow(columns_);
    for (const auto &row : rows_) {
        std::vector<std::string> cells;
        cells.reserve(row.size());
        for (const auto &cell : row)
            cells.push_back(cell.str());
        writeRow(cells);
    }
    return out;
}

std::string
ResultTable::renderJson() const
{
    obs::JsonWriter json;
    json.beginObject()
        .keyValue("schema_version", kResultTableSchemaVersion)
        .keyValue("name", name_);
    json.key("columns").beginArray();
    for (const auto &column : columns_)
        json.value(column);
    json.endArray();
    json.key("rows").beginArray();
    for (const auto &row : rows_) {
        json.beginArray();
        for (const auto &cell : row) {
            if (cell.numeric())
                json.value(cell.value());
            else
                json.value(cell.str());
        }
        json.endArray();
    }
    json.endArray();
    json.endObject();
    return json.str();
}

std::string
ResultTable::renderNdjsonRow(std::size_t row) const
{
    UATM_ASSERT(row < rows_.size(), "row ", row, " out of range");
    obs::JsonWriter json;
    json.beginObject();
    for (std::size_t col = 0; col < columns_.size(); ++col) {
        const Cell &cell = rows_[row][col];
        json.key(columns_[col]);
        if (cell.numeric() && std::isfinite(cell.value())) {
            // The cell's rendered text ("%.*f" / to_string) is a
            // valid JSON number, and using it verbatim makes the
            // wire format text-authoritative: a cell rebuilt from
            // a cache entry streams byte-identically to the
            // freshly computed one.
            json.rawValue(cell.str());
        } else if (cell.numeric()) {
            json.value(cell.value()); // non-finite -> null
        } else {
            json.value(cell.str());
        }
    }
    json.endObject();
    return json.str();
}

std::string
ResultTable::renderNdjson() const
{
    std::string out;
    for (std::size_t row = 0; row < rows_.size(); ++row) {
        out += renderNdjsonRow(row);
        out += '\n';
    }
    return out;
}

Status
ResultTable::emit(TableFormat format,
                  const std::string &out_path) const
{
    rendered_ = render(format);
    if (out_path.empty()) {
        std::fputs(rendered_.c_str(), stdout);
        if (!rendered_.empty() && rendered_.back() != '\n')
            std::fputs("\n", stdout);
    } else {
        std::ofstream out(out_path);
        if (!out) {
            return Status::ioError("cannot open '", out_path,
                                   "' for writing");
        }
        out << rendered_;
        if (!rendered_.empty() && rendered_.back() != '\n')
            out << '\n';
        if (!out)
            return Status::ioError("failed writing '", out_path, "'");
    }
    return Status();
}

} // namespace uatm::exp
