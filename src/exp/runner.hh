/**
 * @file
 * Sharded parallel scenario runner.
 *
 * Runner::run expands a Scenario into its flat point list and
 * evaluates the points on a fixed-size worker pool.  Each worker
 * pulls the next un-evaluated point (atomic work-stealing index),
 * builds its own trace source from the point's WorkloadSpec, and
 * writes its cells into a slot pre-sized by point index — so the
 * merged ResultTable is byte-identical whether one thread ran the
 * whole grid or eight shared it.
 *
 * Point kernels must be self-contained: no shared mutable state
 * beyond what the Point carries.  The process-wide event tracer
 * (UATM_TRACE) is not thread-safe, so the runner drops to one
 * thread while it is armed rather than corrupt the trace.
 */

#ifndef UATM_EXP_RUNNER_HH
#define UATM_EXP_RUNNER_HH

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "exp/result_table.hh"
#include "exp/scenario.hh"

namespace uatm::obs {
class StatRegistry;
}

namespace uatm::exp {

struct RunnerOptions
{
    /** Worker count; 0 means std::thread::hardware_concurrency(). */
    unsigned threads = 1;
};

/** What one run did, for manifests and the observability layer. */
struct RunnerStats
{
    std::size_t points = 0;
    unsigned threadsRequested = 0;
    unsigned threadsUsed = 0;
    double wallSeconds = 0.0;
    /** Sum of per-point kernel time across all workers. */
    double pointSecondsTotal = 0.0;

    void registerStats(obs::StatRegistry &registry,
                       const std::string &prefix = "runner") const;
};

class Runner
{
  public:
    /** Evaluates one point into the value columns' cells. */
    using Kernel = std::function<std::vector<Cell>(const Point &)>;

    explicit Runner(RunnerOptions options = {});

    /**
     * Evaluate every point of @p scenario.  The returned table's
     * columns are the scenario's axis names followed by
     * @p value_columns; each row is the point's coordinate labels
     * followed by the kernel's cells, in expansion order.
     */
    ResultTable run(const Scenario &scenario,
                    const std::vector<std::string> &value_columns,
                    const Kernel &kernel);

    /** Stats from the most recent run(). */
    const RunnerStats &lastStats() const { return stats_; }

    /** Threads run() would actually use right now. */
    unsigned effectiveThreads(std::size_t points) const;

  private:
    RunnerOptions options_;
    RunnerStats stats_;
};

} // namespace uatm::exp

#endif // UATM_EXP_RUNNER_HH
