/**
 * @file
 * Sharded parallel scenario runner.
 *
 * Runner::run expands a Scenario into its flat point list and
 * evaluates the points on a fixed-size worker pool.  Each worker
 * pulls the next un-evaluated point (atomic work-stealing index),
 * builds its own trace source from the point's WorkloadSpec, and
 * writes its cells into a slot pre-sized by point index — so the
 * merged ResultTable is byte-identical whether one thread ran the
 * whole grid or eight shared it.
 *
 * Failures are isolated per point: a kernel that throws or returns
 * an error Status marks only its own point as failed.  The other
 * points still run, the failed point's row is emitted with typed
 * error cells ("!invalid_argument"-style), and the failure is
 * counted in RunnerStats::pointsFailed and recorded in
 * lastFailures().  Set RunnerOptions::failFast to restore the old
 * first-failure-aborts-the-run behaviour.
 *
 * Point kernels must be self-contained: no shared mutable state
 * beyond what the Point carries.  The process-wide event tracer
 * (UATM_TRACE) is not thread-safe; a multi-threaded run suspends
 * it while the pool is alive and, after the join, emits one span
 * per point onto a per-worker track from the calling thread — so
 * UATM_TRACE on a parallel sweep yields a per-worker timeline
 * instead of corrupting the ring.  Serial (inline) runs leave the
 * tracer live, preserving the deep engine-internal traces.
 *
 * With RunnerOptions::telemetry armed (automatic when the tracer
 * is enabled, or via UATM_RUNNER_TELEMETRY=1) each worker also
 * records what it did — points, kernel/acquire/idle time, one
 * timing per point — lock-free into per-worker slots, merged into
 * lastTelemetry() at join.  Disarmed runs skip all of it.  Armed
 * runs additionally open a per-worker hardware counter group
 * (obs/perf_counters.hh) and record lifetime counter deltas into
 * each worker lane; on hosts that forbid perf_event_open the
 * lanes carry counters.available == false and nothing else
 * changes.
 *
 * UATM_PROGRESS=1 (or RunnerOptions::progressEvery) adds a
 * stderr heartbeat — done/total, points/s, ETA — that never
 * touches the merged table, so output stays byte-identical.
 */

#ifndef UATM_EXP_RUNNER_HH
#define UATM_EXP_RUNNER_HH

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "exp/result_table.hh"
#include "exp/scenario.hh"
#include "exp/telemetry.hh"
#include "util/status.hh"

namespace uatm::obs {
class StatRegistry;
}

namespace uatm::exp {

struct RunnerOptions
{
    /** Worker count; 0 means std::thread::hardware_concurrency(). */
    unsigned threads = 1;

    /**
     * Abort the run on the first failed point instead of isolating
     * it: the first kernel exception is rethrown (after the pool
     * winds down and the stats are updated), and a kernel error
     * Status is rethrown as StatusError.
     */
    bool failFast = false;

    /**
     * Record per-worker telemetry (see lastTelemetry()).  Armed
     * automatically when the global event tracer is enabled or
     * UATM_RUNNER_TELEMETRY is set to anything but "0"; costs two
     * extra clock reads per point plus one timing record.
     */
    bool telemetry = false;

    /**
     * Progress heartbeat to stderr every N completed points.
     * 0 = off (default), 1 = auto-sized interval (~5% of the
     * grid), N > 1 = every N points.  UATM_PROGRESS supplies the
     * same values from the environment when this is 0.  The
     * heartbeat writes only to stderr — merged results stay
     * byte-identical with it on or off.
     */
    std::size_t progressEvery = 0;
};

/** One failed point of the most recent run. */
struct PointFailure
{
    std::size_t index = 0; ///< position in expansion order
    std::string label;     ///< Point::label() of the failed point
    Status status;         ///< why it failed (never OK)
};

/** What one run did, for manifests and the observability layer. */
struct RunnerStats
{
    std::size_t points = 0;
    /** Points whose kernel threw or returned an error Status. */
    std::size_t pointsFailed = 0;
    unsigned threadsRequested = 0;
    /** Worker threads actually spawned; 0 when the run was inline
     *  on the calling thread. */
    unsigned threadsUsed = 0;
    double wallSeconds = 0.0;
    /** Sum of per-point kernel time across all workers. */
    double pointSecondsTotal = 0.0;

    void registerStats(obs::StatRegistry &registry,
                       const std::string &prefix = "runner") const;
};

class Runner
{
  public:
    /**
     * Evaluates one point into the value columns' cells.  Plain
     * std::vector<Cell> lambdas still fit (implicit conversion);
     * returning an error Status marks the point failed without
     * the cost of an exception.
     */
    using Kernel =
        std::function<Expected<std::vector<Cell>>(const Point &)>;

    explicit Runner(RunnerOptions options = {});

    /**
     * Evaluate every point of @p scenario.  The returned table's
     * columns are the scenario's axis names followed by
     * @p value_columns; each row is the point's coordinate labels
     * followed by the kernel's cells, in expansion order.  Failed
     * points keep their coordinate labels and get one error cell
     * per value column.
     */
    ResultTable run(const Scenario &scenario,
                    const std::vector<std::string> &value_columns,
                    const Kernel &kernel);

    /** Stats from the most recent run(). */
    const RunnerStats &lastStats() const { return stats_; }

    /** Failed points of the most recent run, in point order. */
    const std::vector<PointFailure> &lastFailures() const
    {
        return failures_;
    }

    /**
     * Telemetry from the most recent run().  armed == false (and
     * everything else empty) when the run executed disarmed.
     */
    const RunnerTelemetry &lastTelemetry() const
    {
        return telemetry_;
    }

    /** Threads run() would actually use right now. */
    unsigned effectiveThreads(std::size_t points) const;

  private:
    RunnerOptions options_;
    RunnerStats stats_;
    std::vector<PointFailure> failures_;
    RunnerTelemetry telemetry_;
};

} // namespace uatm::exp

#endif // UATM_EXP_RUNNER_HH
