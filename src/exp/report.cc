/**
 * @file
 * Implementation of the runner scaling diagnosis.
 */

#include "exp/report.hh"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <map>
#include <sstream>

namespace uatm::exp {

RunDiagnosis
diagnoseRun(const RunnerTelemetry &telemetry, std::size_t topK)
{
    RunDiagnosis d;
    d.threadsUsed = telemetry.threadsUsed;
    d.pointCount = telemetry.pointCount;
    d.wallNs = telemetry.wallNs;
    d.loadImbalance = telemetry.loadImbalance();
    d.parallelEfficiency = telemetry.parallelEfficiency();

    d.workerUtilization.reserve(telemetry.workers.size());
    d.workerCounters.reserve(telemetry.workers.size());
    for (const auto &worker : telemetry.workers) {
        d.workerUtilization.push_back(worker.utilization());
        d.workerCounters.push_back(worker.counters);
        d.countersAvailable |= worker.counters.available;
    }

    d.slowestPoints = telemetry.points;
    std::stable_sort(d.slowestPoints.begin(),
                     d.slowestPoints.end(),
                     [](const PointTiming &a,
                        const PointTiming &b) {
                         return a.durationNs > b.durationNs;
                     });
    if (d.slowestPoints.size() > topK)
        d.slowestPoints.resize(topK);
    return d;
}

double
AmdahlFit::speedupAt(double n) const
{
    if (!ok || n <= 0.0)
        return 0.0;
    const double denom =
        serialFraction + (1.0 - serialFraction) / n;
    return denom > 0.0 ? 1.0 / denom : 0.0;
}

AmdahlFit
fitAmdahl(
    const std::vector<std::pair<unsigned, double>> &samples)
{
    // Average duplicate thread counts so a rerun at the same n
    // does not get double weight in the regression.
    std::map<unsigned, std::pair<double, int>> byThreads;
    for (const auto &[threads, wallNs] : samples) {
        if (!(wallNs > 0.0))
            continue;
        const unsigned n = threads == 0 ? 1 : threads;
        auto &[sum, count] = byThreads[n];
        sum += wallNs;
        ++count;
    }

    AmdahlFit fit;
    if (byThreads.size() < 2)
        return fit;

    // T(n) = a + b * (1/n): ordinary least squares on x = 1/n.
    double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
    const double m = static_cast<double>(byThreads.size());
    for (const auto &[n, acc] : byThreads) {
        const double x = 1.0 / static_cast<double>(n);
        const double y = acc.first / acc.second;
        sx += x;
        sy += y;
        sxx += x * x;
        sxy += x * y;
    }
    const double denom = m * sxx - sx * sx;
    if (std::abs(denom) < 1e-12)
        return fit;
    const double b = (m * sxy - sx * sy) / denom;
    const double a = (sy - b * sx) / m;

    const double t1 = a + b;
    if (!(t1 > 0.0))
        return fit;
    fit.ok = true;
    fit.t1Ns = t1;
    fit.serialFraction = std::clamp(a / t1, 0.0, 1.0);
    return fit;
}

namespace {

std::string
formatNs(double ns)
{
    std::ostringstream out;
    out << std::fixed;
    if (ns >= 1e9)
        out << std::setprecision(3) << ns / 1e9 << " s";
    else if (ns >= 1e6)
        out << std::setprecision(3) << ns / 1e6 << " ms";
    else if (ns >= 1e3)
        out << std::setprecision(3) << ns / 1e3 << " us";
    else
        out << std::setprecision(0) << ns << " ns";
    return out.str();
}

std::string
percent(double fraction)
{
    std::ostringstream out;
    out << std::fixed << std::setprecision(1)
        << fraction * 100.0 << "%";
    return out.str();
}

} // namespace

std::string
formatDiagnosis(const RunDiagnosis &diagnosis)
{
    std::ostringstream out;
    const unsigned lanes =
        diagnosis.threadsUsed == 0 ? 1 : diagnosis.threadsUsed;
    out << "run: " << diagnosis.pointCount << " points on "
        << lanes
        << (diagnosis.threadsUsed == 0
                ? " thread (inline)"
                : (lanes == 1 ? " worker" : " workers"))
        << ", wall "
        << formatNs(static_cast<double>(diagnosis.wallNs)) << "\n";
    out << "  parallel efficiency "
        << percent(diagnosis.parallelEfficiency)
        << ", load imbalance " << std::fixed
        << std::setprecision(2) << diagnosis.loadImbalance
        << "x (1.00x = balanced)\n";

    for (std::size_t i = 0;
         i < diagnosis.workerUtilization.size(); ++i) {
        const double u = diagnosis.workerUtilization[i];
        const int cells = static_cast<int>(u * 40.0 + 0.5);
        out << "  worker " << std::setw(2) << i << "  ["
            << std::string(static_cast<std::size_t>(
                               std::clamp(cells, 0, 40)),
                           '#')
            << std::string(static_cast<std::size_t>(
                               40 - std::clamp(cells, 0, 40)),
                           '.')
            << "] " << percent(u) << " busy\n";
    }

    if (diagnosis.countersAvailable) {
        using obs::PerfEvent;
        out << "  hardware counters "
               "(multiplexing-corrected):\n";
        for (std::size_t i = 0;
             i < diagnosis.workerCounters.size(); ++i) {
            const obs::PerfCounterValues &c =
                diagnosis.workerCounters[i];
            out << "    worker " << std::setw(2) << i;
            if (!c.available) {
                out << "  (unavailable)\n";
                continue;
            }
            if (c.has(PerfEvent::Instructions) &&
                c.has(PerfEvent::Cycles)) {
                const double ipc = c.ipc();
                // 2.0 IPC spans the 20-cell bar: commodity cores
                // rarely sustain more on this kind of code.
                const int cells = std::clamp(
                    static_cast<int>(ipc * 10.0 + 0.5), 0, 20);
                out << "  ipc " << std::fixed
                    << std::setprecision(2) << ipc << " ["
                    << std::string(
                           static_cast<std::size_t>(cells), '#')
                    << std::string(
                           static_cast<std::size_t>(20 - cells),
                           '.')
                    << "]";
            }
            if (c.has(PerfEvent::CacheMisses) &&
                c.has(PerfEvent::CacheReferences)) {
                out << "  miss " << percent(c.cacheMissRate());
            }
            if (c.has(PerfEvent::CacheMisses) &&
                c.has(PerfEvent::Instructions)) {
                out << "  mpki " << std::fixed
                    << std::setprecision(2)
                    << c.missesPerKiloInstruction();
            }
            if (c.has(PerfEvent::CpuMigrations)) {
                out << "  migr " << std::setprecision(0)
                    << c.get(PerfEvent::CpuMigrations);
            }
            if (c.has(PerfEvent::ContextSwitches)) {
                out << "  ctx " << std::setprecision(0)
                    << c.get(PerfEvent::ContextSwitches);
            }
            if (c.multiplexScale() > 1.01) {
                out << "  (x" << std::setprecision(2)
                    << c.multiplexScale() << " multiplexed)";
            }
            out << "\n";
        }
    }

    if (!diagnosis.slowestPoints.empty()) {
        out << "  slowest points:\n";
        for (const auto &point : diagnosis.slowestPoints) {
            out << "    #" << point.index << "  "
                << formatNs(
                       static_cast<double>(point.durationNs))
                << "  (worker " << point.worker << ")";
            if (!point.label.empty())
                out << "  " << point.label;
            out << "\n";
        }
    }
    return out.str();
}

CounterScaling
analyzeCounterScaling(const std::vector<RunnerTelemetry> &runs)
{
    using obs::PerfEvent;
    CounterScaling scaling;

    // Aggregate each run's worker counters, then average runs at
    // the same thread count so reruns do not skew the trend.
    std::map<unsigned, std::vector<CounterScalingPoint>>
        byThreads;
    for (const RunnerTelemetry &run : runs) {
        double instructions = 0.0, cycles = 0.0;
        double misses = 0.0, migrations = 0.0, ctx = 0.0;
        bool hasInstr = false, hasCycles = false;
        bool hasMisses = false, hasMigr = false, hasCtx = false;
        for (const WorkerTelemetry &worker : run.workers) {
            const obs::PerfCounterValues &c = worker.counters;
            if (!c.available)
                continue;
            if (c.has(PerfEvent::Instructions)) {
                instructions += c.get(PerfEvent::Instructions);
                hasInstr = true;
            }
            if (c.has(PerfEvent::Cycles)) {
                cycles += c.get(PerfEvent::Cycles);
                hasCycles = true;
            }
            if (c.has(PerfEvent::CacheMisses)) {
                misses += c.get(PerfEvent::CacheMisses);
                hasMisses = true;
            }
            if (c.has(PerfEvent::CpuMigrations)) {
                migrations += c.get(PerfEvent::CpuMigrations);
                hasMigr = true;
            }
            if (c.has(PerfEvent::ContextSwitches)) {
                ctx += c.get(PerfEvent::ContextSwitches);
                hasCtx = true;
            }
        }
        if (!(hasInstr || hasCycles || hasMisses || hasMigr ||
              hasCtx))
            continue;
        CounterScalingPoint point;
        point.threads =
            run.threadsUsed == 0 ? 1 : run.threadsUsed;
        if (hasInstr && hasCycles && cycles > 0.0) {
            point.ipc = instructions / cycles;
            point.hasIpc = true;
        }
        if (hasMisses && hasInstr && instructions > 0.0) {
            point.mpki = misses * 1000.0 / instructions;
            point.hasMpki = true;
        }
        if (hasMigr && !run.workers.empty()) {
            point.migrationsPerWorker =
                migrations /
                static_cast<double>(run.workers.size());
            point.hasMigrations = true;
        }
        if (hasCtx && run.wallNs > 0) {
            point.ctxSwitchesPerSecond =
                ctx * 1e9 / static_cast<double>(run.wallNs);
            point.hasCtxSwitches = true;
        }
        byThreads[point.threads].push_back(point);
    }

    for (const auto &[threads, group] : byThreads) {
        CounterScalingPoint avg;
        avg.threads = threads;
        int nIpc = 0, nMpki = 0, nMigr = 0, nCtx = 0;
        for (const CounterScalingPoint &p : group) {
            if (p.hasIpc) {
                avg.ipc += p.ipc;
                ++nIpc;
            }
            if (p.hasMpki) {
                avg.mpki += p.mpki;
                ++nMpki;
            }
            if (p.hasMigrations) {
                avg.migrationsPerWorker +=
                    p.migrationsPerWorker;
                ++nMigr;
            }
            if (p.hasCtxSwitches) {
                avg.ctxSwitchesPerSecond +=
                    p.ctxSwitchesPerSecond;
                ++nCtx;
            }
        }
        if (nIpc) {
            avg.ipc /= nIpc;
            avg.hasIpc = true;
        }
        if (nMpki) {
            avg.mpki /= nMpki;
            avg.hasMpki = true;
        }
        if (nMigr) {
            avg.migrationsPerWorker /= nMigr;
            avg.hasMigrations = true;
        }
        if (nCtx) {
            avg.ctxSwitchesPerSecond /= nCtx;
            avg.hasCtxSwitches = true;
        }
        scaling.points.push_back(avg);
    }
    if (scaling.points.empty()) {
        scaling.verdict =
            "no hardware counters recorded (perf unavailable "
            "or pre-v2 telemetry)";
        return scaling;
    }
    scaling.ok = true;

    const CounterScalingPoint &lo = scaling.points.front();
    const CounterScalingPoint &hi = scaling.points.back();
    if (scaling.points.size() >= 2 && lo.hasIpc && hi.hasIpc &&
        lo.hasMpki && hi.hasMpki && lo.mpki > 0.0 &&
        lo.ipc > 0.0) {
        scaling.falseSharingSuspected =
            hi.mpki > 1.3 * lo.mpki && hi.ipc < 0.85 * lo.ipc;
    }
    scaling.migrationHeavy =
        hi.hasMigrations && hi.migrationsPerWorker > 10.0;
    scaling.contextSwitchHeavy =
        hi.hasCtxSwitches && hi.ctxSwitchesPerSecond > 500.0;

    std::ostringstream verdict;
    if (scaling.falseSharingSuspected) {
        verdict << "false sharing suspected: misses/kilo-instr "
                   "rose while IPC fell as threads grew";
    }
    if (scaling.migrationHeavy) {
        if (verdict.tellp() > 0)
            verdict << "; ";
        verdict << "workers migrate between cpus frequently "
                   "(consider pinning)";
    }
    if (scaling.contextSwitchHeavy) {
        if (verdict.tellp() > 0)
            verdict << "; ";
        verdict << "heavy context switching (oversubscribed "
                   "host?)";
    }
    if (verdict.tellp() == 0) {
        verdict << (scaling.points.size() >= 2 &&
                            lo.hasIpc && hi.hasIpc
                        ? "no contention signature in the "
                          "counters"
                        : "counters present but too sparse for "
                          "the contention heuristics");
    }
    scaling.verdict = verdict.str();
    return scaling;
}

std::string
formatCounterScaling(const CounterScaling &scaling)
{
    std::ostringstream out;
    if (!scaling.ok) {
        out << "counter scaling: " << scaling.verdict << "\n";
        return out.str();
    }
    out << "counter scaling (aggregate per thread count):\n";
    for (const CounterScalingPoint &p : scaling.points) {
        out << "  n=" << p.threads << ":";
        out << std::fixed;
        if (p.hasIpc)
            out << "  ipc " << std::setprecision(2) << p.ipc;
        if (p.hasMpki)
            out << "  mpki " << std::setprecision(2) << p.mpki;
        if (p.hasMigrations)
            out << "  migr/worker " << std::setprecision(1)
                << p.migrationsPerWorker;
        if (p.hasCtxSwitches)
            out << "  ctx/s " << std::setprecision(0)
                << p.ctxSwitchesPerSecond;
        out << "\n";
    }
    out << "  " << scaling.verdict << "\n";
    return out.str();
}

std::string
formatAmdahlFit(
    const AmdahlFit &fit,
    const std::vector<std::pair<unsigned, double>> &samples)
{
    std::ostringstream out;
    if (!fit.ok) {
        out << "amdahl fit: unavailable (need wall times from "
               ">= 2 distinct thread counts)\n";
        return out.str();
    }
    out << "amdahl fit: serial fraction "
        << percent(fit.serialFraction) << ", T1 "
        << formatNs(fit.t1Ns) << "\n";
    std::map<unsigned, bool> seen;
    for (const auto &[threads, wallNs] : samples) {
        const unsigned n = threads == 0 ? 1 : threads;
        if (seen[n])
            continue;
        seen[n] = true;
        out << "  n=" << n << ": predicted speedup "
            << std::fixed << std::setprecision(2)
            << fit.speedupAt(static_cast<double>(n)) << "x\n";
    }
    const double limit = fit.serialFraction > 0.0
                             ? 1.0 / fit.serialFraction
                             : 0.0;
    if (limit > 0.0)
        out << "  asymptotic speedup limit " << std::fixed
            << std::setprecision(2) << limit << "x\n";
    else
        out << "  asymptotic speedup limit: unbounded "
               "(no measurable serial fraction)\n";
    return out.str();
}

} // namespace uatm::exp
