/**
 * @file
 * Implementation of the runner scaling diagnosis.
 */

#include "exp/report.hh"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <map>
#include <sstream>

namespace uatm::exp {

RunDiagnosis
diagnoseRun(const RunnerTelemetry &telemetry, std::size_t topK)
{
    RunDiagnosis d;
    d.threadsUsed = telemetry.threadsUsed;
    d.pointCount = telemetry.pointCount;
    d.wallNs = telemetry.wallNs;
    d.loadImbalance = telemetry.loadImbalance();
    d.parallelEfficiency = telemetry.parallelEfficiency();

    d.workerUtilization.reserve(telemetry.workers.size());
    for (const auto &worker : telemetry.workers)
        d.workerUtilization.push_back(worker.utilization());

    d.slowestPoints = telemetry.points;
    std::stable_sort(d.slowestPoints.begin(),
                     d.slowestPoints.end(),
                     [](const PointTiming &a,
                        const PointTiming &b) {
                         return a.durationNs > b.durationNs;
                     });
    if (d.slowestPoints.size() > topK)
        d.slowestPoints.resize(topK);
    return d;
}

double
AmdahlFit::speedupAt(double n) const
{
    if (!ok || n <= 0.0)
        return 0.0;
    const double denom =
        serialFraction + (1.0 - serialFraction) / n;
    return denom > 0.0 ? 1.0 / denom : 0.0;
}

AmdahlFit
fitAmdahl(
    const std::vector<std::pair<unsigned, double>> &samples)
{
    // Average duplicate thread counts so a rerun at the same n
    // does not get double weight in the regression.
    std::map<unsigned, std::pair<double, int>> byThreads;
    for (const auto &[threads, wallNs] : samples) {
        if (!(wallNs > 0.0))
            continue;
        const unsigned n = threads == 0 ? 1 : threads;
        auto &[sum, count] = byThreads[n];
        sum += wallNs;
        ++count;
    }

    AmdahlFit fit;
    if (byThreads.size() < 2)
        return fit;

    // T(n) = a + b * (1/n): ordinary least squares on x = 1/n.
    double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
    const double m = static_cast<double>(byThreads.size());
    for (const auto &[n, acc] : byThreads) {
        const double x = 1.0 / static_cast<double>(n);
        const double y = acc.first / acc.second;
        sx += x;
        sy += y;
        sxx += x * x;
        sxy += x * y;
    }
    const double denom = m * sxx - sx * sx;
    if (std::abs(denom) < 1e-12)
        return fit;
    const double b = (m * sxy - sx * sy) / denom;
    const double a = (sy - b * sx) / m;

    const double t1 = a + b;
    if (!(t1 > 0.0))
        return fit;
    fit.ok = true;
    fit.t1Ns = t1;
    fit.serialFraction = std::clamp(a / t1, 0.0, 1.0);
    return fit;
}

namespace {

std::string
formatNs(double ns)
{
    std::ostringstream out;
    out << std::fixed;
    if (ns >= 1e9)
        out << std::setprecision(3) << ns / 1e9 << " s";
    else if (ns >= 1e6)
        out << std::setprecision(3) << ns / 1e6 << " ms";
    else if (ns >= 1e3)
        out << std::setprecision(3) << ns / 1e3 << " us";
    else
        out << std::setprecision(0) << ns << " ns";
    return out.str();
}

std::string
percent(double fraction)
{
    std::ostringstream out;
    out << std::fixed << std::setprecision(1)
        << fraction * 100.0 << "%";
    return out.str();
}

} // namespace

std::string
formatDiagnosis(const RunDiagnosis &diagnosis)
{
    std::ostringstream out;
    const unsigned lanes =
        diagnosis.threadsUsed == 0 ? 1 : diagnosis.threadsUsed;
    out << "run: " << diagnosis.pointCount << " points on "
        << lanes
        << (diagnosis.threadsUsed == 0
                ? " thread (inline)"
                : (lanes == 1 ? " worker" : " workers"))
        << ", wall "
        << formatNs(static_cast<double>(diagnosis.wallNs)) << "\n";
    out << "  parallel efficiency "
        << percent(diagnosis.parallelEfficiency)
        << ", load imbalance " << std::fixed
        << std::setprecision(2) << diagnosis.loadImbalance
        << "x (1.00x = balanced)\n";

    for (std::size_t i = 0;
         i < diagnosis.workerUtilization.size(); ++i) {
        const double u = diagnosis.workerUtilization[i];
        const int cells = static_cast<int>(u * 40.0 + 0.5);
        out << "  worker " << std::setw(2) << i << "  ["
            << std::string(static_cast<std::size_t>(
                               std::clamp(cells, 0, 40)),
                           '#')
            << std::string(static_cast<std::size_t>(
                               40 - std::clamp(cells, 0, 40)),
                           '.')
            << "] " << percent(u) << " busy\n";
    }

    if (!diagnosis.slowestPoints.empty()) {
        out << "  slowest points:\n";
        for (const auto &point : diagnosis.slowestPoints) {
            out << "    #" << point.index << "  "
                << formatNs(
                       static_cast<double>(point.durationNs))
                << "  (worker " << point.worker << ")";
            if (!point.label.empty())
                out << "  " << point.label;
            out << "\n";
        }
    }
    return out.str();
}

std::string
formatAmdahlFit(
    const AmdahlFit &fit,
    const std::vector<std::pair<unsigned, double>> &samples)
{
    std::ostringstream out;
    if (!fit.ok) {
        out << "amdahl fit: unavailable (need wall times from "
               ">= 2 distinct thread counts)\n";
        return out.str();
    }
    out << "amdahl fit: serial fraction "
        << percent(fit.serialFraction) << ", T1 "
        << formatNs(fit.t1Ns) << "\n";
    std::map<unsigned, bool> seen;
    for (const auto &[threads, wallNs] : samples) {
        const unsigned n = threads == 0 ? 1 : threads;
        if (seen[n])
            continue;
        seen[n] = true;
        out << "  n=" << n << ": predicted speedup "
            << std::fixed << std::setprecision(2)
            << fit.speedupAt(static_cast<double>(n)) << "x\n";
    }
    const double limit = fit.serialFraction > 0.0
                             ? 1.0 / fit.serialFraction
                             : 0.0;
    if (limit > 0.0)
        out << "  asymptotic speedup limit " << std::fixed
            << std::setprecision(2) << limit << "x\n";
    else
        out << "  asymptotic speedup limit: unbounded "
               "(no measurable serial fraction)\n";
    return out.str();
}

} // namespace uatm::exp
