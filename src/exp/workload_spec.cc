/**
 * @file
 * Implementation of the declarative workload spec.
 */

#include "exp/workload_spec.hh"

#include <algorithm>

#include "trace/generators.hh"
#include "trace/ifetch.hh"
#include "util/logging.hh"

namespace uatm::exp {

WorkloadSpec
WorkloadSpec::spec92(std::string profile, std::uint64_t seed)
{
    WorkloadSpec spec;
    spec.kind = Kind::Spec92;
    spec.profile = std::move(profile);
    spec.seed = seed;
    return spec;
}

WorkloadSpec
WorkloadSpec::shortLevy(std::uint64_t seed)
{
    WorkloadSpec spec;
    spec.kind = Kind::ShortLevy;
    spec.profile = "short-levy";
    spec.seed = seed;
    return spec;
}

WorkloadSpec
WorkloadSpec::custom(
    std::string name,
    std::function<std::unique_ptr<TraceSource>()> factory)
{
    WorkloadSpec spec;
    spec.kind = Kind::Custom;
    spec.profile = std::move(name);
    spec.factory = std::move(factory);
    return spec;
}

WorkloadSpec
WorkloadSpec::none()
{
    WorkloadSpec spec;
    spec.kind = Kind::None;
    spec.profile = "-";
    return spec;
}

std::string
WorkloadSpec::describe() const
{
    if (kind == Kind::None)
        return "analytic";
    std::string out = profile;
    out += " (seed ";
    out += std::to_string(seed);
    out += ")";
    if (withIFetch)
        out += " +ifetch";
    return out;
}

Expected<std::unique_ptr<TraceSource>>
WorkloadSpec::make() const
{
    std::unique_ptr<TraceSource> data;
    switch (kind) {
      case Kind::None:
        return Status::invalidArgument(
            "analytic workload spec cannot build a source");
      case Kind::Spec92: {
        // Validate the name here: Spec92Profile::make() treats an
        // unknown profile as fatal, which would kill a whole grid
        // for one mistyped axis value.
        const auto &known = Spec92Profile::names();
        if (std::find(known.begin(), known.end(), profile) ==
            known.end()) {
            return Status::notFound("unknown spec92 profile '",
                                    profile, "'");
        }
        data = Spec92Profile::make(profile, seed);
        break;
      }
      case Kind::ShortLevy:
        data = ShortLevyWorkload::make(seed);
        break;
      case Kind::Custom:
        UATM_ASSERT(factory != nullptr,
                    "custom workload spec without a factory");
        data = factory();
        UATM_ASSERT(data != nullptr,
                    "custom workload factory returned null");
        break;
    }
    if (!withIFetch)
        return Expected<std::unique_ptr<TraceSource>>(std::move(data));
    return Expected<std::unique_ptr<TraceSource>>(
        std::make_unique<IFetchInterleaver>(
            std::move(data), IFetchConfig{}, Rng(seed ^ 0xf00d)));
}

} // namespace uatm::exp
