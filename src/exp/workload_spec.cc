/**
 * @file
 * Implementation of the declarative workload spec.
 */

#include "exp/workload_spec.hh"

#include <algorithm>
#include <cmath>

#include "exp/workload_registry.hh"
#include "obs/json.hh"
#include "trace/generators.hh"
#include "trace/ifetch.hh"
#include "util/logging.hh"
#include "util/options.hh"

namespace uatm::exp {

WorkloadSpec
WorkloadSpec::of(std::string method, ParamMap params,
                 std::uint64_t seed)
{
    WorkloadSpec spec;
    spec.method = std::move(method);
    spec.params = std::move(params);
    spec.seed = seed;
    return spec;
}

WorkloadSpec
WorkloadSpec::spec92(std::string profile, std::uint64_t seed)
{
    ParamMap params;
    params.setString("profile", std::move(profile));
    return of("spec92", std::move(params), seed);
}

WorkloadSpec
WorkloadSpec::shortLevy(std::uint64_t seed)
{
    return of("short-levy", {}, seed);
}

WorkloadSpec
WorkloadSpec::custom(
    std::string name,
    std::function<std::unique_ptr<TraceSource>()> factory)
{
    WorkloadSpec spec;
    spec.method.clear();
    spec.customName = std::move(name);
    spec.factory = std::move(factory);
    return spec;
}

WorkloadSpec
WorkloadSpec::none()
{
    return of("none", {}, 1);
}

Expected<WorkloadSpec>
WorkloadSpec::parse(std::string_view arg, std::uint64_t seed)
{
    std::string_view name = arg;
    std::string_view rest;
    if (const auto colon = arg.find(':');
        colon != std::string_view::npos) {
        name = arg.substr(0, colon);
        rest = arg.substr(colon + 1);
    }

    WorkloadSpec spec;
    spec.method = std::string(name);
    spec.seed = seed;

    auto &registry = WorkloadRegistry::instance();
    if (!registry.find(spec.method)) {
        // Shorthands so pre-registry command lines keep working:
        // a bare Spec92 profile name, and trace_tool's old
        // "shortlevy" spelling.
        const auto &profiles = Spec92Profile::names();
        if (std::find(profiles.begin(), profiles.end(),
                      spec.method) != profiles.end()) {
            spec.params.setString("profile", spec.method);
            spec.method = "spec92";
        } else if (spec.method == "shortlevy") {
            spec.method = "short-levy";
        } else {
            return registry.resolve(spec.method, spec.params)
                .status();
        }
    }

    const WorkloadMethod *found = registry.find(spec.method);
    auto pairs = parseKeyValueList(rest);
    if (!pairs.ok())
        return pairs.status();
    for (const auto &pair : pairs.value()) {
        const ParamSpec *declared = found->param(pair.key);
        if (!declared) {
            // resolve() renders the authoritative message with
            // the declared-param list.
            ParamMap unknown;
            unknown.setString(pair.key, pair.value);
            return registry.resolve(spec.method, unknown).status();
        }
        auto value = ParamValue::parse(declared->type, pair.value);
        if (!value.ok()) {
            return Status::error(value.status().code(),
                                 "workload method '", spec.method,
                                 "' param '", pair.key,
                                 "': ", value.status().message());
        }
        spec.params.set(pair.key, std::move(value).value());
    }

    // Surface bad values eagerly; the spec itself stays minimal
    // (only the explicitly given params).
    auto resolved = registry.resolve(spec.method, spec.params);
    if (!resolved.ok())
        return resolved.status();
    return spec;
}

std::string
WorkloadSpec::shortLabel() const
{
    if (isCustom())
        return customName.empty() ? "custom" : customName;
    if (isNone())
        return "analytic";
    if (method == "spec92") {
        if (const ParamValue *profile = params.find("profile"))
            return profile->render();
    }
    std::string out = method;
    if (!params.empty()) {
        out += ':';
        out += params.render();
    }
    return out;
}

std::string
WorkloadSpec::describe() const
{
    if (isNone())
        return "analytic";
    std::string out = shortLabel();
    if (!isCustom()) {
        out += " (seed ";
        out += std::to_string(seed);
        out += ")";
    }
    if (withIFetch)
        out += " +ifetch";
    return out;
}

Expected<std::string>
WorkloadSpec::toJson() const
{
    if (isCustom() || !customName.empty()) {
        // The second clause catches a custom() spec whose factory
        // is null: it has no method either, and serializing it as
        // {"method": ""} would hand downstream memoization (the
        // serve layer's point keys) an alias-prone description.
        return Status::invalidArgument(
            "custom workload spec '", shortLabel(),
            "' is not serializable");
    }
    if (method.empty()) {
        return Status::invalidArgument(
            "workload spec with an empty method is not "
            "serializable");
    }
    obs::JsonWriter writer;
    writer.beginObject();
    writer.keyValue("method", method);
    writer.key("params");
    params.writeJson(writer);
    writer.keyValue("seed", seed);
    writer.keyValue("ifetch", withIFetch);
    writer.endObject();
    return writer.str();
}

Expected<WorkloadSpec>
WorkloadSpec::fromJson(std::string_view text)
{
    const auto parsed = obs::parseJson(text);
    if (!parsed) {
        return Status::parseError("bad workload spec JSON: ",
                                  parsed.error);
    }
    const obs::JsonValue &root = parsed.value;
    if (!root.isObject()) {
        return Status::parseError(
            "workload spec JSON must be an object");
    }

    WorkloadSpec spec;
    spec.method.clear();
    bool have_method = false;
    for (const auto &[key, value] : root.members()) {
        if (key == "method") {
            if (!value.isString()) {
                return Status::parseError(
                    "workload spec \"method\" must be a string");
            }
            spec.method = value.asString();
            have_method = true;
        } else if (key == "params") {
            auto params = ParamMap::fromJson(value);
            if (!params.ok())
                return params.status();
            spec.params = std::move(params).value();
        } else if (key == "seed") {
            if (!value.isNumber() ||
                value.asNumber() < 0.0 ||
                value.asNumber() !=
                    std::floor(value.asNumber())) {
                return Status::parseError(
                    "workload spec \"seed\" must be a "
                    "non-negative integer");
            }
            spec.seed =
                static_cast<std::uint64_t>(value.asNumber());
        } else if (key == "ifetch") {
            if (!value.isBool()) {
                return Status::parseError(
                    "workload spec \"ifetch\" must be a bool");
            }
            spec.withIFetch = value.asBool();
        } else {
            return Status::parseError(
                "unknown workload spec field \"", key, "\"");
        }
    }
    if (!have_method) {
        return Status::parseError(
            "workload spec needs a \"method\" field");
    }
    return spec;
}

Expected<std::unique_ptr<TraceSource>>
WorkloadSpec::make() const
{
    std::unique_ptr<TraceSource> data;
    if (isCustom()) {
        data = factory();
        if (!data) {
            return Status::invalidArgument(
                "custom workload '", shortLabel(),
                "' factory returned null");
        }
    } else if (method.empty()) {
        // A custom() spec built with a null factory lands here:
        // it is neither a registered method nor a usable custom
        // spec.  A typed error keeps it a per-point error row.
        return Status::invalidArgument(
            "workload spec '", shortLabel(),
            "' has no method and no factory");
    } else {
        auto made = WorkloadRegistry::instance().make(
            method, params, seed);
        if (!made.ok())
            return made.status();
        data = std::move(made).value();
        if (!data) {
            return Status::invalidArgument(
                "workload method '", method,
                "' factory returned null");
        }
    }
    if (!withIFetch)
        return Expected<std::unique_ptr<TraceSource>>(
            std::move(data));
    return Expected<std::unique_ptr<TraceSource>>(
        std::make_unique<IFetchInterleaver>(
            std::move(data), IFetchConfig{}, Rng(seed ^ 0xf00d)));
}

} // namespace uatm::exp
