/**
 * @file
 * Implementation of the trace-driven timing engine.
 */

#include "cpu/timing_engine.hh"

#include <algorithm>
#include <sstream>

#include "util/logging.hh"

namespace uatm {

const char *
prefetchPolicyName(PrefetchPolicy policy)
{
    switch (policy) {
      case PrefetchPolicy::None:
        return "none";
      case PrefetchPolicy::OnMiss:
        return "on-miss";
      case PrefetchPolicy::Tagged:
        return "tagged";
    }
    panic("unknown PrefetchPolicy");
}

void
CpuConfig::validate() const
{
    if (mshrs == 0)
        fatal("NB needs at least one MSHR");
    if (feature != StallFeature::NB && mshrs != 1)
        fatal("multiple MSHRs are only meaningful for the NB "
              "feature");
}

double
TimingStats::phi(Cycles mu_m) const
{
    // With prefetching, part of the stall pool is paid on late
    // prefetches rather than demand fills; normalising by both
    // implements the paper's "phi can be scaled down to represent
    // the average miss penalty" reading (Sec. 3.3).
    const std::uint64_t events = fills + prefetchesLate;
    if (events == 0 || mu_m == 0)
        return 0.0;
    const double pool =
        static_cast<double>(initialMissWait) +
        static_cast<double>(inflightAccessStall) +
        static_cast<double>(missSerializationStall);
    return pool / (static_cast<double>(events) *
                   static_cast<double>(mu_m));
}

double
TimingStats::cpi() const
{
    if (instructions == 0)
        return 0.0;
    return static_cast<double>(cycles) /
           static_cast<double>(instructions);
}

double
TimingStats::meanMemoryDelay() const
{
    if (references == 0)
        return 0.0;
    // Sec. 4.5: (X - N_LS) / data refs, i.e. the hit cycles stay in
    // the numerator: (X - E)/refs + 1.
    const double delay = static_cast<double>(cycles) -
                         static_cast<double>(instructions);
    return delay / static_cast<double>(references) + 1.0;
}

std::string
TimingStats::format() const
{
    std::ostringstream os;
    os << "  cycles (X)          = " << cycles << '\n'
       << "  instructions (E)    = " << instructions << '\n'
       << "  CPI                 = " << cpi() << '\n'
       << "  data references     = " << references << '\n'
       << "  fills               = " << fills << '\n'
       << "  write-arounds (W)   = " << writeArounds << '\n'
       << "  initial miss wait   = " << initialMissWait << '\n'
       << "  in-flight stalls    = " << inflightAccessStall << '\n'
       << "  miss serialization  = " << missSerializationStall << '\n'
       << "  flush stalls        = " << flushStall << '\n'
       << "  write stalls        = " << writeStall << '\n'
       << "  buffer-full stalls  = " << bufferFullStall << '\n'
       << "  port contention     = " << portContentionWait << '\n'
       << "  prefetches          = " << prefetchesIssued
       << " (useful " << prefetchesUseful << ", late "
       << prefetchesLate << ")\n"
       << "  mean memory delay   = " << meanMemoryDelay() << '\n';
    return os.str();
}

CounterGroup
TimingStats::counters() const
{
    CounterGroup group;
    group.increment("sim.cycles", cycles);
    group.increment("sim.instructions", instructions);
    group.increment("sim.references", references);
    group.increment("sim.fills", fills);
    group.increment("sim.write_arounds", writeArounds);
    group.increment("stall.initial_miss_wait", initialMissWait);
    group.increment("stall.inflight_access", inflightAccessStall);
    group.increment("stall.miss_serialization",
                    missSerializationStall);
    group.increment("stall.flush", flushStall);
    group.increment("stall.write", writeStall);
    group.increment("stall.buffer_full", bufferFullStall);
    group.increment("port.contention_wait", portContentionWait);
    group.increment("prefetch.issued", prefetchesIssued);
    group.increment("prefetch.useful", prefetchesUseful);
    group.increment("prefetch.late", prefetchesLate);
    return group;
}

TimingEngine::TimingEngine(const CacheConfig &cache_config,
                           const MemoryConfig &memory_config,
                           const WriteBufferConfig &wbuf_config,
                           const CpuConfig &cpu_config)
    : cache_(cache_config), timing_(memory_config),
      wbufConfig_(wbuf_config), cpuConfig_(cpu_config),
      scheduler_(timing_, wbuf_config)
{
    cpuConfig_.validate();
    UATM_ASSERT(cache_config.lineBytes >=
                    memory_config.busWidthBytes,
                "line size must be at least the bus width");
}

void
TimingEngine::pruneCompleted(Cycles now)
{
    std::erase_if(inflight_, [now](const InflightFill &f) {
        return f.complete <= now;
    });
}

const TimingEngine::InflightFill *
TimingEngine::findInflight(Addr line_addr) const
{
    for (const auto &fill : inflight_) {
        if (fill.lineAddr == line_addr)
            return &fill;
    }
    return nullptr;
}

Cycles
TimingEngine::latestCompletion(bool demand_only) const
{
    Cycles latest = 0;
    for (const auto &fill : inflight_) {
        if (demand_only && fill.isPrefetch)
            continue;
        latest = std::max(latest, fill.complete);
    }
    return latest;
}

Cycles
TimingEngine::chunkArrival(const InflightFill &fill, Addr addr) const
{
    const std::uint32_t chunk = static_cast<std::uint32_t>(
        (addr - fill.lineAddr) / timing_.config().busWidthBytes);
    UATM_ASSERT(chunk < fill.arrivalByChunk.size(),
                "address outside the in-flight line");
    return fill.arrivalByChunk[chunk];
}

TimingEngine::InflightFill &
TimingEngine::issueFill(Cycles when, Addr line_addr, Addr addr,
                        TimingStats &stats)
{
    const std::uint32_t line_bytes = cache_.config().lineBytes;
    const ReadGrant grant = scheduler_.requestRead(when, line_bytes);
    stats.portContentionWait += grant.busWait;

    const std::vector<Cycles> order =
        timing_.chunkCompletionTimes(grant.start, line_bytes);
    const std::uint32_t n = timing_.chunksPerLine(line_bytes);

    InflightFill fill;
    fill.lineAddr = line_addr;
    fill.start = grant.start;
    fill.complete = order.back();
    fill.arrivalByChunk.resize(n);
    // Requested-chunk-first, then wraparound: the chunk holding the
    // faulting address is delivered first.
    const std::uint32_t first = static_cast<std::uint32_t>(
        (addr - line_addr) / timing_.config().busWidthBytes);
    for (std::uint32_t k = 0; k < n; ++k)
        fill.arrivalByChunk[(first + k) % n] = order[k];

    inflight_.push_back(std::move(fill));
    ++stats.fills;
    return inflight_.back();
}

void
TimingEngine::issuePrefetch(Cycles when, Addr line_addr,
                            TimingStats &stats)
{
    if (cache_.probe(line_addr) || findInflight(line_addr))
        return;

    const std::uint32_t line_bytes = cache_.config().lineBytes;
    const PrefetchOutcome outcome = cache_.prefetchLine(line_addr);
    UATM_ASSERT(outcome.inserted, "prefetch of an absent line "
                "must insert it");

    // The victim flush and the prefetch transfer occupy the port
    // (serialised by the scheduler) but never stall the CPU.
    if (outcome.writeback && !cpuConfig_.suppressFlushTraffic)
        scheduler_.postWrite(when, line_bytes);
    const ReadGrant grant = scheduler_.requestRead(when, line_bytes);

    const std::vector<Cycles> order =
        timing_.chunkCompletionTimes(grant.start, line_bytes);
    InflightFill fill;
    fill.lineAddr = line_addr;
    fill.start = grant.start;
    fill.complete = order.back();
    fill.isPrefetch = true;
    fill.arrivalByChunk = order; // sequential from the line base
    inflight_.push_back(std::move(fill));

    ++stats.prefetchesIssued;
    prefetchedUntouched_.insert(line_addr);
    if (prefetchedUntouched_.size() > 4096)
        prunePrefetchSet();
}

void
TimingEngine::prunePrefetchSet()
{
    std::erase_if(prefetchedUntouched_, [this](Addr line) {
        return !cache_.probe(line);
    });
}

TimingStats
TimingEngine::run(TraceSource &source, std::uint64_t max_refs)
{
    source.reset();
    cache_.reset();
    cache_.setColdTracking(max_refs <= (1u << 22));
    scheduler_.reset();
    inflight_.clear();
    prefetchedUntouched_.clear();

    TimingStats stats;
    Cycles now = 0;
    const std::uint32_t line_bytes = cache_.config().lineBytes;
    const StallFeature feature = cpuConfig_.feature;

    for (std::uint64_t i = 0; i < max_refs; ++i) {
        const auto ref = source.next();
        if (!ref)
            break;

        // Non-memory instructions run one per cycle while any fill
        // proceeds in the background.
        now += ref->gap;
        stats.instructions += static_cast<std::uint64_t>(ref->gap) + 1;
        ++stats.references;
        pruneCompleted(now);

        Cycles issue = now;

        // BL: while the cache bus is locked by a demand fill,
        // every load/store stalls until the line is completely
        // fetched.  Prefetch transfers only hold the memory port.
        if (feature == StallFeature::BL && !inflight_.empty()) {
            const Cycles complete =
                latestCompletion(/*demand_only=*/true);
            if (complete > issue) {
                stats.inflightAccessStall += complete - issue;
                issue = complete;
            }
            pruneCompleted(issue);
        }

        const AccessOutcome outcome = cache_.access(*ref);

        if (outcome.hit) {
            // A hit can still stall against the line being filled.
            if (const InflightFill *fill =
                    findInflight(outcome.lineAddr);
                fill && fill->complete > issue) {
                Cycles until = issue;
                if (fill->isPrefetch) {
                    // A demand access caught the prefetched data
                    // on the bus: wait for the needed chunk only,
                    // whatever the stalling feature (the cache bus
                    // is not locked by prefetches).
                    until = std::max(issue,
                                     chunkArrival(*fill, ref->addr));
                    ++stats.prefetchesLate;
                } else {
                    switch (feature) {
                      case StallFeature::FS:
                        panic("full-stalling CPU observed an "
                              "in-flight demand line");
                      case StallFeature::BL:
                        // Already handled by the bus-locked stall.
                        break;
                      case StallFeature::BNL1:
                        until = fill->complete;
                        break;
                      case StallFeature::BNL2: {
                        const Cycles arrival =
                            chunkArrival(*fill, ref->addr);
                        // Arrived part: proceed; otherwise wait
                        // for the whole line.
                        until = arrival <= issue ? issue
                                                 : fill->complete;
                        break;
                      }
                      case StallFeature::BNL3:
                      case StallFeature::NB:
                        until = std::max(
                            issue, chunkArrival(*fill, ref->addr));
                        break;
                    }
                }
                if (until > issue) {
                    stats.inflightAccessStall += until - issue;
                    issue = until;
                    pruneCompleted(issue);
                }
            }

            // Prefetch bookkeeping: first demand touch of a
            // prefetched line counts as useful and, under the
            // tagged policy, fetches the successor.
            if (cpuConfig_.prefetch != PrefetchPolicy::None) {
                auto it =
                    prefetchedUntouched_.find(outcome.lineAddr);
                if (it != prefetchedUntouched_.end()) {
                    prefetchedUntouched_.erase(it);
                    ++stats.prefetchesUseful;
                    if (cpuConfig_.prefetch ==
                        PrefetchPolicy::Tagged) {
                        issuePrefetch(issue,
                                      outcome.lineAddr +
                                          line_bytes,
                                      stats);
                    }
                }
            }

            Cycles cost = 1;
            if (outcome.storeToMemory) {
                // Write-through hit: the store also goes to memory.
                const Cycles resume =
                    scheduler_.postWrite(issue, ref->size);
                if (resume > issue) {
                    stats.writeStall += resume - issue;
                    cost = std::max<Cycles>(1, resume - issue);
                }
            }
            now = issue + cost;
            continue;
        }

        // ---- miss path ----

        // A new miss serialises behind outstanding fills unless the
        // NB feature has a free MSHR.
        if (!inflight_.empty()) {
            std::size_t demand_inflight = 0;
            for (const auto &fill : inflight_)
                demand_inflight += !fill.isPrefetch;
            const bool free_mshr =
                demand_inflight == 0 ||
                (feature == StallFeature::NB &&
                 demand_inflight < cpuConfig_.mshrs);
            if (!free_mshr) {
                // Wait for outstanding *demand* fills; in-flight
                // prefetches only delay the grant via the port.
                const Cycles complete =
                    latestCompletion(/*demand_only=*/true);
                if (complete > issue) {
                    stats.missSerializationStall += complete - issue;
                    issue = complete;
                }
                pruneCompleted(issue);
            }
        }

        if (!outcome.fill) {
            // Write-around store miss: a <= D-byte memory write.
            ++stats.writeArounds;
            const Cycles resume = scheduler_.postWrite(issue,
                                                       ref->size);
            Cycles cost = 1;
            if (resume > issue) {
                stats.writeStall += resume - issue;
                cost = std::max<Cycles>(1, resume - issue);
            }
            now = issue + cost;
            continue;
        }

        // With no write buffer the dirty victim must be written
        // back before the fill can overwrite it.
        Cycles fill_request = issue;
        const bool flush_victim =
            outcome.writeback && !cpuConfig_.suppressFlushTraffic;
        if (flush_victim && wbufConfig_.depth == 0) {
            const Cycles done =
                scheduler_.postWrite(fill_request, line_bytes);
            stats.flushStall += done - fill_request;
            fill_request = done;
        }

        // Copy the record: later prefetch issues may push into
        // inflight_ and invalidate references into it.
        const InflightFill fill =
            issueFill(fill_request, outcome.lineAddr, ref->addr,
                      stats);

        Cycles resume;
        switch (feature) {
          case StallFeature::FS:
            resume = fill.complete;
            stats.initialMissWait += fill.complete - fill.start;
            break;
          case StallFeature::NB:
            // Fire and forget; the consumer stalls later if it
            // touches the line too early.
            resume = issue;
            break;
          default: {
            const Cycles first_chunk =
                chunkArrival(fill, ref->addr);
            resume = first_chunk;
            stats.initialMissWait += first_chunk - fill.start;
            break;
          }
        }

        if (flush_victim && wbufConfig_.depth > 0) {
            // The victim is parked in the buffer and posted once
            // the fill has delivered the line (Sec. 5.3, note (1)).
            const Cycles wb_resume =
                scheduler_.postWrite(fill.complete, line_bytes);
            if (wb_resume > resume &&
                wb_resume > fill.complete) {
                stats.bufferFullStall +=
                    wb_resume - std::max(resume, fill.complete);
                resume = std::max(resume, wb_resume);
            }
        }

        // A demand miss triggers the next-line prefetch (both the
        // on-miss and tagged policies); the transfer queues behind
        // the demand fill on the port.
        if (cpuConfig_.prefetch != PrefetchPolicy::None) {
            issuePrefetch(issue, outcome.lineAddr + line_bytes,
                          stats);
        }

        // The missing load/store consumes its stall in place of the
        // base cycle (Eq. 2's accounting), never less than 1 cycle.
        now = std::max(resume, issue + 1);
        if (feature == StallFeature::FS)
            pruneCompleted(now);
    }

    stats.cycles = now;
    return stats;
}

} // namespace uatm
