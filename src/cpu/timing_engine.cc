/**
 * @file
 * Implementation of the trace-driven timing engine.
 */

#include "cpu/timing_engine.hh"

#include <algorithm>
#include <sstream>

#include "obs/profile.hh"
#include "obs/registry.hh"
#include "obs/trace_event.hh"
#include "util/logging.hh"

namespace uatm {

// Drift guard: every numeric field of TimingStats must appear in
// counters(), registerStats() and the test drift guard.  If this
// fires you added/removed a field — update all three (and the JSON
// schema note in docs/OBSERVABILITY.md), then adjust the count.
static_assert(sizeof(TimingStats) == 15 * sizeof(std::uint64_t),
              "TimingStats changed: update counters(), "
              "registerStats() and tests/test_obs.cc");

const char *
prefetchPolicyName(PrefetchPolicy policy)
{
    switch (policy) {
      case PrefetchPolicy::None:
        return "none";
      case PrefetchPolicy::OnMiss:
        return "on-miss";
      case PrefetchPolicy::Tagged:
        return "tagged";
    }
    panic("unknown PrefetchPolicy");
}

Status
CpuConfig::validate() const
{
    if (mshrs == 0)
        return Status::invalidArgument("NB needs at least one MSHR");
    if (feature != StallFeature::NB && mshrs != 1) {
        return Status::invalidArgument(
            "multiple MSHRs are only meaningful for the NB feature");
    }
    return Status();
}

double
TimingStats::phi(Cycles mu_m) const
{
    // With prefetching, part of the stall pool is paid on late
    // prefetches rather than demand fills; normalising by both
    // implements the paper's "phi can be scaled down to represent
    // the average miss penalty" reading (Sec. 3.3).
    const std::uint64_t events = fills + prefetchesLate;
    if (events == 0 || mu_m == 0)
        return 0.0;
    const double pool =
        static_cast<double>(initialMissWait) +
        static_cast<double>(inflightAccessStall) +
        static_cast<double>(missSerializationStall);
    return pool / (static_cast<double>(events) *
                   static_cast<double>(mu_m));
}

double
TimingStats::cpi() const
{
    if (instructions == 0)
        return 0.0;
    return static_cast<double>(cycles) /
           static_cast<double>(instructions);
}

double
TimingStats::meanMemoryDelay() const
{
    if (references == 0)
        return 0.0;
    // Sec. 4.5: (X - N_LS) / data refs, i.e. the hit cycles stay in
    // the numerator: (X - E)/refs + 1.
    const double delay = static_cast<double>(cycles) -
                         static_cast<double>(instructions);
    return delay / static_cast<double>(references) + 1.0;
}

std::string
TimingStats::format() const
{
    std::ostringstream os;
    os << "  cycles (X)          = " << cycles << '\n'
       << "  instructions (E)    = " << instructions << '\n'
       << "  CPI                 = " << cpi() << '\n'
       << "  data references     = " << references << '\n'
       << "  fills               = " << fills << '\n'
       << "  write-arounds (W)   = " << writeArounds << '\n'
       << "  initial miss wait   = " << initialMissWait << '\n'
       << "  in-flight stalls    = " << inflightAccessStall << '\n'
       << "  miss serialization  = " << missSerializationStall << '\n'
       << "  flush stalls        = " << flushStall << '\n'
       << "  write stalls        = " << writeStall << '\n'
       << "  buffer-full stalls  = " << bufferFullStall << '\n'
       << "  port contention     = " << portContentionWait << '\n'
       << "  prefetches          = " << prefetchesIssued
       << " (useful " << prefetchesUseful << ", late "
       << prefetchesLate << ")\n"
       << "  mean memory delay   = " << meanMemoryDelay() << '\n';
    return os.str();
}

CounterGroup
TimingStats::counters() const
{
    CounterGroup group;
    group.increment("sim.cycles", cycles);
    group.increment("sim.instructions", instructions);
    group.increment("sim.references", references);
    group.increment("sim.fills", fills);
    group.increment("sim.write_arounds", writeArounds);
    group.increment("stall.initial_miss_wait", initialMissWait);
    group.increment("stall.inflight_access", inflightAccessStall);
    group.increment("stall.miss_serialization",
                    missSerializationStall);
    group.increment("stall.flush", flushStall);
    group.increment("stall.write", writeStall);
    group.increment("stall.buffer_full", bufferFullStall);
    group.increment("port.contention_wait", portContentionWait);
    group.increment("prefetch.issued", prefetchesIssued);
    group.increment("prefetch.useful", prefetchesUseful);
    group.increment("prefetch.late", prefetchesLate);
    return group;
}

void
TimingStats::registerStats(obs::StatRegistry &registry,
                           const std::string &prefix,
                           Cycles mu_m) const
{
    const obs::StatGroup root(registry, prefix);
    const auto s = [](std::uint64_t v) {
        return static_cast<double>(v);
    };

    const obs::StatGroup sim = root.group("sim");
    sim.addScalar("cycles", s(cycles),
                  "total execution time X", "cycles");
    sim.addScalar("instructions", s(instructions),
                  "instructions executed (E)", "count");
    sim.addScalar("references", s(references),
                  "data references processed", "count");
    sim.addScalar("fills", s(fills),
                  "line fills issued", "count");
    sim.addScalar("write_arounds", s(writeArounds),
                  "write-around store misses sent to memory (W)",
                  "count");

    const obs::StatGroup stall = root.group("stall");
    stall.addScalar("initial_miss_wait", s(initialMissWait),
                    "initial wait for missed data from fill grant",
                    "cycles");
    stall.addScalar("inflight_access", s(inflightAccessStall),
                    "stalls of accesses against in-flight lines",
                    "cycles");
    stall.addScalar("miss_serialization",
                    s(missSerializationStall),
                    "new misses waiting on a previous fill",
                    "cycles");
    stall.addScalar("flush", s(flushStall),
                    "synchronous dirty-victim flushes", "cycles");
    stall.addScalar("write", s(writeStall),
                    "synchronous write-around/write-through cost",
                    "cycles");
    stall.addScalar("buffer_full", s(bufferFullStall),
                    "CPU stalls on a full write buffer", "cycles");

    root.group("port").addScalar(
        "contention_wait", s(portContentionWait),
        "read grants delayed by writes on the port", "cycles");

    const obs::StatGroup prefetch = root.group("prefetch");
    prefetch.addScalar("issued", s(prefetchesIssued),
                       "prefetch transfers issued", "count");
    prefetch.addScalar("useful", s(prefetchesUseful),
                       "prefetched lines that served a demand",
                       "count");
    prefetch.addScalar("late", s(prefetchesLate),
                       "demand accesses catching an in-flight "
                       "prefetch", "count");

    const obs::StatGroup derived = root.group("derived");
    derived.addFormula("cpi", [copy = *this] {
        return copy.cpi();
    }, "cycles per instruction", "cycles/inst");
    derived.addFormula("mean_memory_delay", [copy = *this] {
        return copy.meanMemoryDelay();
    }, "mean memory delay per data reference (Sec. 4.5)",
    "cycles/ref");
    if (mu_m != 0) {
        derived.addFormula("phi", [copy = *this, mu_m] {
            return copy.phi(mu_m);
        }, "empirical stalling factor (Sec. 4.2)", "mu_m");
    }
}

TimingEngine::TimingEngine(const CacheConfig &cache_config,
                           const MemoryConfig &memory_config,
                           const WriteBufferConfig &wbuf_config,
                           const CpuConfig &cpu_config)
    : cache_(cache_config), timing_(memory_config),
      wbufConfig_(wbuf_config), cpuConfig_(cpu_config),
      scheduler_(timing_, wbuf_config),
      tracer_(&obs::globalTracer())
{
    okOrThrow(cpuConfig_.validate());
    if (cache_config.lineBytes < memory_config.busWidthBytes) {
        throw StatusError(Status::invalidArgument(
            "line size ", cache_config.lineBytes,
            " must be at least the bus width ",
            memory_config.busWidthBytes));
    }
}

void
TimingEngine::setTracer(obs::EventTracer *tracer)
{
    tracer_ = tracer ? tracer : &obs::globalTracer();
}

void
TimingEngine::pruneCompleted(Cycles now)
{
    std::erase_if(inflight_, [now](const InflightFill &f) {
        return f.complete <= now;
    });
}

const TimingEngine::InflightFill *
TimingEngine::findInflight(Addr line_addr) const
{
    for (const auto &fill : inflight_) {
        if (fill.lineAddr == line_addr)
            return &fill;
    }
    return nullptr;
}

Cycles
TimingEngine::latestCompletion(bool demand_only) const
{
    Cycles latest = 0;
    for (const auto &fill : inflight_) {
        if (demand_only && fill.isPrefetch)
            continue;
        latest = std::max(latest, fill.complete);
    }
    return latest;
}

Cycles
TimingEngine::chunkArrival(const InflightFill &fill, Addr addr) const
{
    const std::uint32_t chunk = static_cast<std::uint32_t>(
        (addr - fill.lineAddr) / timing_.config().busWidthBytes);
    UATM_ASSERT(chunk < fill.arrivalByChunk.size(),
                "address outside the in-flight line");
    return fill.arrivalByChunk[chunk];
}

TimingEngine::InflightFill &
TimingEngine::issueFill(Cycles when, Addr line_addr, Addr addr,
                        TimingStats &stats)
{
    const std::uint32_t line_bytes = cache_.config().lineBytes;
    const ReadGrant grant = scheduler_.requestRead(when, line_bytes);
    stats.portContentionWait += grant.busWait;
    if (grant.busWait > 0) {
        tracer_->record("port_contention", "port", when,
                        grant.busWait, line_addr);
    }

    const std::vector<Cycles> order =
        timing_.chunkCompletionTimes(grant.start, line_bytes);
    const std::uint32_t n = timing_.chunksPerLine(line_bytes);

    InflightFill fill;
    fill.lineAddr = line_addr;
    fill.start = grant.start;
    fill.complete = order.back();
    fill.arrivalByChunk.resize(n);
    // Requested-chunk-first, then wraparound: the chunk holding the
    // faulting address is delivered first.
    const std::uint32_t first = static_cast<std::uint32_t>(
        (addr - line_addr) / timing_.config().busWidthBytes);
    for (std::uint32_t k = 0; k < n; ++k)
        fill.arrivalByChunk[(first + k) % n] = order[k];

    tracer_->record("fill", "fill", fill.start,
                    fill.complete - fill.start, line_addr);
    inflight_.push_back(std::move(fill));
    ++stats.fills;
    tracer_->recordCounter("fills", inflight_.back().start,
                           stats.fills);
    return inflight_.back();
}

void
TimingEngine::issuePrefetch(Cycles when, Addr line_addr,
                            TimingStats &stats)
{
    if (cache_.probe(line_addr) || findInflight(line_addr))
        return;

    const std::uint32_t line_bytes = cache_.config().lineBytes;
    const PrefetchOutcome outcome = cache_.prefetchLine(line_addr);
    UATM_ASSERT(outcome.inserted, "prefetch of an absent line "
                "must insert it");

    // The victim flush and the prefetch transfer occupy the port
    // (serialised by the scheduler) but never stall the CPU.
    if (outcome.writeback && !cpuConfig_.suppressFlushTraffic)
        scheduler_.postWrite(when, line_bytes);
    const ReadGrant grant = scheduler_.requestRead(when, line_bytes);

    const std::vector<Cycles> order =
        timing_.chunkCompletionTimes(grant.start, line_bytes);
    InflightFill fill;
    fill.lineAddr = line_addr;
    fill.start = grant.start;
    fill.complete = order.back();
    fill.isPrefetch = true;
    fill.arrivalByChunk = order; // sequential from the line base
    tracer_->record("prefetch_issue", "prefetch", when, 0,
                    line_addr);
    tracer_->record("prefetch_fill", "prefetch", fill.start,
                    fill.complete - fill.start, line_addr);
    inflight_.push_back(std::move(fill));

    ++stats.prefetchesIssued;
    prefetchedUntouched_.insert(line_addr);
    if (prefetchedUntouched_.size() > 4096)
        prunePrefetchSet();
}

void
TimingEngine::prunePrefetchSet()
{
    std::erase_if(prefetchedUntouched_, [this](Addr line) {
        return !cache_.probe(line);
    });
}

TimingStats
TimingEngine::run(TraceSource &source, std::uint64_t max_refs)
{
    UATM_PROFILE_SCOPE("engine.run");
    obs::EventTracer &tracer = *tracer_;
    source.reset();
    cache_.reset();
    cache_.setColdTracking(max_refs <= (1u << 22));
    scheduler_.reset();
    inflight_.clear();
    prefetchedUntouched_.clear();

    TimingStats stats;
    Cycles now = 0;
    const std::uint32_t line_bytes = cache_.config().lineBytes;
    const StallFeature feature = cpuConfig_.feature;

    for (std::uint64_t i = 0; i < max_refs; ++i) {
        const auto ref = source.next();
        if (!ref)
            break;

        // Non-memory instructions run one per cycle while any fill
        // proceeds in the background.
        now += ref->gap;
        stats.instructions += static_cast<std::uint64_t>(ref->gap) + 1;
        ++stats.references;
        pruneCompleted(now);

        Cycles issue = now;

        // BL: while the cache bus is locked by a demand fill,
        // every load/store stalls until the line is completely
        // fetched.  Prefetch transfers only hold the memory port.
        if (feature == StallFeature::BL && !inflight_.empty()) {
            const Cycles complete =
                latestCompletion(/*demand_only=*/true);
            if (complete > issue) {
                stats.inflightAccessStall += complete - issue;
                tracer.record("bus_locked", "stall", issue,
                              complete - issue, ref->addr);
                issue = complete;
            }
            pruneCompleted(issue);
        }

        const AccessOutcome outcome = cache_.access(*ref);

        if (outcome.hit) {
            // A hit can still stall against the line being filled.
            if (const InflightFill *fill =
                    findInflight(outcome.lineAddr);
                fill && fill->complete > issue) {
                Cycles until = issue;
                if (fill->isPrefetch) {
                    // A demand access caught the prefetched data
                    // on the bus: wait for the needed chunk only,
                    // whatever the stalling feature (the cache bus
                    // is not locked by prefetches).
                    until = std::max(issue,
                                     chunkArrival(*fill, ref->addr));
                    ++stats.prefetchesLate;
                } else {
                    switch (feature) {
                      case StallFeature::FS:
                        panic("full-stalling CPU observed an "
                              "in-flight demand line");
                      case StallFeature::BL:
                        // Already handled by the bus-locked stall.
                        break;
                      case StallFeature::BNL1:
                        until = fill->complete;
                        break;
                      case StallFeature::BNL2: {
                        const Cycles arrival =
                            chunkArrival(*fill, ref->addr);
                        // Arrived part: proceed; otherwise wait
                        // for the whole line.
                        until = arrival <= issue ? issue
                                                 : fill->complete;
                        break;
                      }
                      case StallFeature::BNL3:
                      case StallFeature::NB:
                        until = std::max(
                            issue, chunkArrival(*fill, ref->addr));
                        break;
                    }
                }
                if (until > issue) {
                    stats.inflightAccessStall += until - issue;
                    tracer.record(fill->isPrefetch
                                      ? "late_prefetch_cover"
                                      : "inflight_access",
                                  "stall", issue, until - issue,
                                  ref->addr);
                    issue = until;
                    pruneCompleted(issue);
                }
            }

            // Prefetch bookkeeping: first demand touch of a
            // prefetched line counts as useful and, under the
            // tagged policy, fetches the successor.
            if (cpuConfig_.prefetch != PrefetchPolicy::None) {
                auto it =
                    prefetchedUntouched_.find(outcome.lineAddr);
                if (it != prefetchedUntouched_.end()) {
                    prefetchedUntouched_.erase(it);
                    ++stats.prefetchesUseful;
                    if (cpuConfig_.prefetch ==
                        PrefetchPolicy::Tagged) {
                        issuePrefetch(issue,
                                      outcome.lineAddr +
                                          line_bytes,
                                      stats);
                    }
                }
            }

            Cycles cost = 1;
            if (outcome.storeToMemory) {
                // Write-through hit: the store also goes to memory.
                const Cycles resume =
                    scheduler_.postWrite(issue, ref->size);
                if (resume > issue) {
                    stats.writeStall += resume - issue;
                    tracer.record("write_stall", "write", issue,
                                  resume - issue, ref->addr);
                    cost = std::max<Cycles>(1, resume - issue);
                }
            }
            now = issue + cost;
            continue;
        }

        // ---- miss path ----

        // A new miss serialises behind outstanding fills unless the
        // NB feature has a free MSHR.
        if (!inflight_.empty()) {
            std::size_t demand_inflight = 0;
            for (const auto &fill : inflight_)
                demand_inflight += !fill.isPrefetch;
            const bool free_mshr =
                demand_inflight == 0 ||
                (feature == StallFeature::NB &&
                 demand_inflight < cpuConfig_.mshrs);
            if (!free_mshr) {
                // Wait for outstanding *demand* fills; in-flight
                // prefetches only delay the grant via the port.
                const Cycles complete =
                    latestCompletion(/*demand_only=*/true);
                if (complete > issue) {
                    stats.missSerializationStall += complete - issue;
                    tracer.record("miss_serialization", "stall",
                                  issue, complete - issue,
                                  ref->addr);
                    issue = complete;
                }
                pruneCompleted(issue);
            }
        }

        if (!outcome.fill) {
            // Write-around store miss: a <= D-byte memory write.
            ++stats.writeArounds;
            const Cycles resume = scheduler_.postWrite(issue,
                                                       ref->size);
            Cycles cost = 1;
            if (resume > issue) {
                stats.writeStall += resume - issue;
                tracer.record("write_around", "write", issue,
                              resume - issue, ref->addr);
                cost = std::max<Cycles>(1, resume - issue);
            }
            now = issue + cost;
            continue;
        }

        // With no write buffer the dirty victim must be written
        // back before the fill can overwrite it.
        Cycles fill_request = issue;
        const bool flush_victim =
            outcome.writeback && !cpuConfig_.suppressFlushTraffic;
        if (flush_victim && wbufConfig_.depth == 0) {
            const Cycles done =
                scheduler_.postWrite(fill_request, line_bytes);
            stats.flushStall += done - fill_request;
            tracer.record("flush", "write", fill_request,
                          done - fill_request,
                          outcome.victimLineAddr);
            fill_request = done;
        }

        // Copy the record: later prefetch issues may push into
        // inflight_ and invalidate references into it.
        const InflightFill fill =
            issueFill(fill_request, outcome.lineAddr, ref->addr,
                      stats);

        Cycles resume;
        switch (feature) {
          case StallFeature::FS:
            resume = fill.complete;
            stats.initialMissWait += fill.complete - fill.start;
            tracer.record("initial_miss_wait", "stall",
                          fill.start, fill.complete - fill.start,
                          ref->addr);
            tracer.recordCounter("stall_cycles", fill.complete,
                                 stats.initialMissWait +
                                     stats.inflightAccessStall +
                                     stats.missSerializationStall);
            break;
          case StallFeature::NB:
            // Fire and forget; the consumer stalls later if it
            // touches the line too early.
            resume = issue;
            break;
          default: {
            const Cycles first_chunk =
                chunkArrival(fill, ref->addr);
            resume = first_chunk;
            stats.initialMissWait += first_chunk - fill.start;
            if (first_chunk > fill.start) {
                tracer.record("initial_miss_wait", "stall",
                              fill.start, first_chunk - fill.start,
                              ref->addr);
                tracer.recordCounter(
                    "stall_cycles", first_chunk,
                    stats.initialMissWait +
                        stats.inflightAccessStall +
                        stats.missSerializationStall);
            }
            break;
          }
        }

        if (flush_victim && wbufConfig_.depth > 0) {
            // The victim is parked in the buffer and posted once
            // the fill has delivered the line (Sec. 5.3, note (1)).
            const Cycles wb_resume =
                scheduler_.postWrite(fill.complete, line_bytes);
            if (wb_resume > resume &&
                wb_resume > fill.complete) {
                const Cycles from = std::max(resume,
                                             fill.complete);
                stats.bufferFullStall += wb_resume - from;
                tracer.record("buffer_full", "write", from,
                              wb_resume - from,
                              outcome.victimLineAddr);
                resume = std::max(resume, wb_resume);
            }
        }

        // A demand miss triggers the next-line prefetch (both the
        // on-miss and tagged policies); the transfer queues behind
        // the demand fill on the port.
        if (cpuConfig_.prefetch != PrefetchPolicy::None) {
            issuePrefetch(issue, outcome.lineAddr + line_bytes,
                          stats);
        }

        // The missing load/store consumes its stall in place of the
        // base cycle (Eq. 2's accounting), never less than 1 cycle.
        now = std::max(resume, issue + 1);
        if (feature == StallFeature::FS)
            pruneCompleted(now);
    }

    stats.cycles = now;
    return stats;
}

} // namespace uatm
