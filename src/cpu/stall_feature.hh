/**
 * @file
 * Processor stalling features (paper Table 2) and their stalling-
 * factor bounds.
 */

#ifndef UATM_CPU_STALL_FEATURE_HH
#define UATM_CPU_STALL_FEATURE_HH

#include <cstdint>
#include <string>

namespace uatm {

/**
 * How the processor stalls around a cache miss (paper Sec. 3.2):
 *
 *  - FS:   full stalling; wait for the whole line.
 *  - BL:   bus-locked; resume on requested data, but any load/store
 *          before the line completes stalls until it does.
 *  - BNL1: other lines accessible; any access to the in-flight line
 *          stalls until the line completes.
 *  - BNL2: access to an already-arrived part of the in-flight line
 *          proceeds; otherwise stall until the line completes.
 *  - BNL3: stall only until the requested datum arrives.
 *  - NB:   non-blocking; the missing load itself does not stall.
 */
enum class StallFeature : std::uint8_t
{
    FS,
    BL,
    BNL1,
    BNL2,
    BNL3,
    NB,
};

/** Short name as used in the paper's figures. */
const char *stallFeatureName(StallFeature feature);

/** Parse "FS"/"BL"/"BNL1"/... (case-sensitive); fatal() otherwise. */
StallFeature parseStallFeature(const std::string &name);

/** True for the partially-stalling features (everything but FS). */
bool isPartiallyStalling(StallFeature feature);

/**
 * Stalling-factor bounds from Table 2, in units of mu_m, given the
 * line-to-bus ratio L/D.
 */
struct PhiBounds
{
    double min;
    double max;
};

/** Table 2: FS has phi = L/D exactly; BL/BNL in [1, L/D];
 *  NB in [0, L/D]. */
PhiBounds phiBounds(StallFeature feature, double line_over_bus);

} // namespace uatm

#endif // UATM_CPU_STALL_FEATURE_HH
