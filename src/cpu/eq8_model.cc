/**
 * @file
 * Implementation of the Eq. 8 static stalling-factor estimate.
 */

#include "cpu/eq8_model.hh"

#include <algorithm>

#include "cache/cache.hh"
#include "util/logging.hh"

namespace uatm {

Eq8Estimate
estimatePhiEq8(TraceSource &source, std::uint64_t max_refs,
               StallFeature feature, const CacheConfig &cache_config,
               std::uint32_t bus_width_bytes, Cycles mu_m)
{
    if (feature == StallFeature::FS || feature == StallFeature::NB)
        fatal("Eq. 8 is derived for the BL/BNL features; got ",
              stallFeatureName(feature));
    UATM_ASSERT(mu_m > 0, "mu_m must be positive");
    UATM_ASSERT(cache_config.lineBytes >= bus_width_bytes,
                "line must be at least the bus width");

    source.reset();
    SetAssocCache cache(cache_config);
    cache.setColdTracking(false);

    const std::uint64_t chunks =
        cache_config.lineBytes / bus_width_bytes;
    const double window =
        static_cast<double>((chunks - 1) * mu_m);

    Eq8Estimate estimate;
    double stall_sum = 0.0;

    // The currently open miss window, if any.
    bool window_open = false;
    Addr window_line = 0;
    Addr window_addr = 0; // faulting address (first chunk)
    std::uint64_t window_start_instr = 0;

    std::uint64_t instr = 0;
    for (std::uint64_t i = 0; i < max_refs; ++i) {
        const auto ref = source.next();
        if (!ref)
            break;
        instr += static_cast<std::uint64_t>(ref->gap) + 1;

        const AccessOutcome outcome = cache.access(*ref);

        if (window_open) {
            const double delta_c = static_cast<double>(
                instr - window_start_instr);
            bool closes = false;
            double stall = 0.0;
            if (feature == StallFeature::BL) {
                // Bus-locked: ANY load/store in the window stalls
                // until the line is completely fetched.
                stall = std::max(window - delta_c, 0.0);
                closes = true;
            } else if (!outcome.hit && outcome.fill) {
                // A second miss: stalled until the previous line
                // is completely fetched (all BNL variants).
                stall = std::max(window - delta_c, 0.0);
                closes = true;
            } else if (outcome.hit &&
                       outcome.lineAddr == window_line) {
                // Chunk position in requested-first wraparound
                // order; it arrives position*mu_m after the CPU
                // resumed.
                const std::uint64_t first =
                    (window_addr - window_line) / bus_width_bytes;
                const std::uint64_t this_chunk =
                    (ref->addr - window_line) / bus_width_bytes;
                const std::uint64_t position =
                    (this_chunk + chunks - first) % chunks;
                const double arrival =
                    static_cast<double>(position * mu_m);
                switch (feature) {
                  case StallFeature::BNL1:
                    // Stalled until the whole line arrives.
                    stall = std::max(window - delta_c, 0.0);
                    break;
                  case StallFeature::BNL2:
                    // Arrived part proceeds; otherwise wait for
                    // the entire line.
                    stall = delta_c >= arrival
                                ? 0.0
                                : std::max(window - delta_c, 0.0);
                    break;
                  default: // BNL3
                    stall = std::max(arrival - delta_c, 0.0);
                    break;
                }
                closes = true;
            } else if (delta_c >= window) {
                // The fill has certainly completed; no stall.
                closes = true;
            }
            if (closes) {
                stall_sum += stall;
                estimate.stalledWindows += stall > 0.0;
                window_open = false;
            }
        }

        if (!outcome.hit && outcome.fill) {
            ++estimate.misses;
            window_open = true;
            window_line = outcome.lineAddr;
            window_addr = alignDown(ref->addr, bus_width_bytes);
            window_start_instr = instr;
        }
    }

    if (estimate.misses == 0)
        return estimate;
    // Eq. 8: the mean window stall in units of mu_m, plus one for
    // the basic read-miss wait.
    estimate.phi = stall_sum / (static_cast<double>(
                                    estimate.misses) *
                                static_cast<double>(mu_m)) +
                   1.0;
    return estimate;
}

} // namespace uatm
