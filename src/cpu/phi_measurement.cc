/**
 * @file
 * Implementation of the phi measurement harness.
 */

#include "cpu/phi_measurement.hh"

#include "trace/generators.hh"
#include "util/logging.hh"

namespace uatm {

PhiExperiment::PhiExperiment()
{
    // Figure 1's cache: 8 Kbytes, two-way set associative,
    // write-allocate (the paper's Eq. 8 assumes write-allocate).
    cache.sizeBytes = 8 * 1024;
    cache.assoc = 2;
    cache.lineBytes = 32;
    cache.writeMiss = WriteMissPolicy::WriteAllocate;
    cache.write = WritePolicy::WriteBack;
    cache.replacement = ReplacementKind::LRU;
}

PhiResult
measurePhi(const PhiExperiment &experiment,
           const std::string &profile_name)
{
    MemoryConfig memory;
    memory.busWidthBytes = experiment.busWidthBytes;
    memory.cycleTime = experiment.cycleTime;

    // Phi isolates the read-miss stall component (Eq. 8 has no
    // flush term), so dirty-victim traffic is suppressed entirely;
    // the paper's Figure 1 likewise reports pure read-miss
    // stalling.
    WriteBufferConfig wbuf;
    wbuf.depth = 64;
    wbuf.readBypass = true;

    CpuConfig cpu;
    cpu.feature = experiment.feature;
    cpu.suppressFlushTraffic = true;

    TimingEngine engine(experiment.cache, memory, wbuf, cpu);
    auto workload = Spec92Profile::make(profile_name,
                                        experiment.seed);

    PhiResult result;
    result.workload = profile_name;
    result.timing = engine.run(*workload, experiment.refs);
    result.phi = result.timing.phi(experiment.cycleTime);
    const double full =
        static_cast<double>(experiment.cache.lineBytes) /
        static_cast<double>(experiment.busWidthBytes);
    result.percentOfFull = 100.0 * result.phi / full;
    return result;
}

void
appendPhiAverage(std::vector<PhiResult> &results)
{
    UATM_ASSERT(!results.empty(), "no phi rows to average");
    double phi_sum = 0.0;
    double pct_sum = 0.0;
    for (const auto &row : results) {
        phi_sum += row.phi;
        pct_sum += row.percentOfFull;
    }
    PhiResult average;
    average.workload = "average";
    const auto n = static_cast<double>(results.size());
    average.phi = phi_sum / n;
    average.percentOfFull = pct_sum / n;
    results.push_back(average);
}

std::vector<PhiResult>
measurePhiAllProfiles(const PhiExperiment &experiment)
{
    std::vector<PhiResult> results;
    for (const auto &name : Spec92Profile::names())
        results.push_back(measurePhi(experiment, name));
    appendPhiAverage(results);
    return results;
}

} // namespace uatm
