/**
 * @file
 * Stalling-factor measurement harness (paper Sec. 4.2, Figure 1).
 *
 * Runs the timing engine over the SPEC92-like profiles and reports
 * the empirical stalling factor phi, optionally averaged across the
 * six programs exactly as the paper's Figure 1 does.
 */

#ifndef UATM_CPU_PHI_MEASUREMENT_HH
#define UATM_CPU_PHI_MEASUREMENT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "cache/config.hh"
#include "cpu/stall_feature.hh"
#include "cpu/timing_engine.hh"
#include "memory/timing.hh"

namespace uatm {

/** Parameters of one phi measurement. */
struct PhiExperiment
{
    /** Figure 1 setup: 8 KB, 2-way, 32 B lines, write-allocate. */
    CacheConfig cache;

    /** Bus width D (Figure 1 uses 4 bytes). */
    std::uint32_t busWidthBytes = 4;

    /** Memory cycle time mu_m to evaluate. */
    Cycles cycleTime = 8;

    StallFeature feature = StallFeature::BNL1;

    /** References simulated per program. */
    std::uint64_t refs = 200000;

    /** Workload seed. */
    std::uint64_t seed = 42;

    PhiExperiment();
};

/** Result of one phi measurement. */
struct PhiResult
{
    std::string workload;
    double phi = 0.0;
    /** phi as a percentage of its FS ceiling L/D. */
    double percentOfFull = 0.0;
    TimingStats timing;
};

/** Measure phi on one named SPEC92-like profile. */
PhiResult measurePhi(const PhiExperiment &experiment,
                     const std::string &profile_name);

/**
 * Append the Figure 1 "average" row — the unweighted mean of phi
 * and of the percent-of-ceiling across the rows already present.
 * Shared by the serial and the scenario-layer parallel drivers so
 * both emit the same row.
 */
void appendPhiAverage(std::vector<PhiResult> &results);

/**
 * Measure phi on all six profiles and append an "average" row,
 * which is the quantity Figure 1 plots.
 */
std::vector<PhiResult> measurePhiAllProfiles(
    const PhiExperiment &experiment);

} // namespace uatm

#endif // UATM_CPU_PHI_MEASUREMENT_HH
