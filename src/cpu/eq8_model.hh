/**
 * @file
 * The paper's Eq. 8: a *static* estimate of the BNL stalling
 * factor computed directly from the reference stream —
 *
 *   phi = (1/Lambda_m) sum_i max((L/D - 1) mu_m - dC_i, 0)/mu_m
 *         + 1
 *
 * where dC_i is the instruction distance from miss i to the first
 * subsequent load/store that would stall against it (an access to
 * the in-flight line, or another miss).  The "+1" is the basic
 * read-miss wait for the requested datum.
 *
 * Eq. 8 approximates elapsed time by instruction count (one cycle
 * per instruction between the miss and the stalling access); the
 * timing engine measures the same quantity dynamically, so the two
 * can be cross-checked — which bench_fig1 and the tests do.
 */

#ifndef UATM_CPU_EQ8_MODEL_HH
#define UATM_CPU_EQ8_MODEL_HH

#include <cstdint>

#include "cache/config.hh"
#include "cpu/stall_feature.hh"
#include "memory/timing.hh"
#include "trace/source.hh"

namespace uatm {

/** Result of an Eq. 8 evaluation. */
struct Eq8Estimate
{
    /** The estimated stalling factor (in units of mu_m). */
    double phi = 0.0;

    /** Misses considered (Lambda_m). */
    std::uint64_t misses = 0;

    /** Misses whose window saw a stalling access. */
    std::uint64_t stalledWindows = 0;
};

/**
 * Evaluate Eq. 8 over (up to) @p max_refs references of @p source.
 *
 * @param feature BL, BNL1, BNL2 or BNL3 — BNL1 is the paper's
 *        printed derivation; the others are the "similar way"
 *        variants it alludes to (BL: any load/store in the window
 *        stalls to completion; BNL2: same-line accesses whose
 *        chunk has arrived proceed; BNL3: the stall lasts only
 *        until the requested chunk).  FS/NB are rejected.
 * @param cache   the functional cache the misses come from
 * @param bus_width_bytes D
 * @param mu_m    memory cycle time
 */
Eq8Estimate estimatePhiEq8(TraceSource &source,
                           std::uint64_t max_refs,
                           StallFeature feature,
                           const CacheConfig &cache,
                           std::uint32_t bus_width_bytes,
                           Cycles mu_m);

} // namespace uatm

#endif // UATM_CPU_EQ8_MODEL_HH
