/**
 * @file
 * Trace-driven timing engine.
 *
 * Executes a reference stream against a functional cache and the
 * memory scheduler, applying one of the paper's stalling features
 * (Table 2), optional read-bypassing write buffers (Sec. 4.3) and
 * optionally pipelined line fills (Sec. 4.4).  Produces total
 * cycles, a stall breakdown and the empirical stalling factor phi,
 * which is how the paper's Figure 1 was obtained.
 *
 * Timing conventions (matching Eq. 2 exactly for FS):
 *  - every non-memory instruction takes 1 cycle;
 *  - a load/store hit takes 1 cycle, plus any stall imposed by an
 *    in-flight line fill;
 *  - a load/store miss takes exactly its stall time (min 1 cycle),
 *    i.e. phi*mu_m replaces the instruction's base cycle, matching
 *    the (E - Lambda_m) + (R/L) phi mu_m split of Eq. 2;
 *  - with no write buffer, a dirty victim is flushed synchronously
 *    *before* the fill (there is nowhere to park it), costing
 *    (L/D) mu_m — the paper's (alpha R / D) mu_m term;
 *  - with a write buffer, the flush is posted when the fill
 *    completes (the paper's observation (1) in Sec. 5.3) and
 *    retires whenever the memory port is idle; reads bypass queued
 *    writes but never preempt a started transfer.
 */

#ifndef UATM_CPU_TIMING_ENGINE_HH
#define UATM_CPU_TIMING_ENGINE_HH

#include <cstdint>
#include <string>
#include <vector>

#include <unordered_set>

#include "cache/cache.hh"
#include "cpu/stall_feature.hh"
#include "memory/timing.hh"
#include "memory/write_buffer.hh"
#include "trace/source.hh"
#include "util/stats.hh"

namespace uatm::obs {
class EventTracer;
class StatRegistry;
} // namespace uatm::obs

namespace uatm {

/**
 * Hardware prefetch policies (the latency-hiding techniques of
 * paper Sec. 3.3 / the Chen & Baer comparison of Sec. 2):
 *  - None:   no prefetching;
 *  - OnMiss: a demand miss for line X also fetches X + L;
 *  - Tagged: additionally, the first demand hit on a prefetched
 *    line fetches its successor (Smith's tagged prefetch).
 * Prefetch transfers occupy the memory port but never stall the
 * CPU directly; a demand access that arrives before the
 * prefetched data waits only for the needed chunk.
 */
enum class PrefetchPolicy : std::uint8_t
{
    None,
    OnMiss,
    Tagged,
};

const char *prefetchPolicyName(PrefetchPolicy policy);

/** Processor-side configuration. */
struct CpuConfig
{
    StallFeature feature = StallFeature::FS;

    /** Outstanding-miss registers for the NB feature; other
     *  features always serialise misses. */
    std::uint32_t mshrs = 1;

    /** Drop dirty-victim flush traffic entirely.  Used by the
     *  Figure 1 harness, which measures the *read-miss* stalling
     *  factor in isolation (Eq. 8 has no flush term). */
    bool suppressFlushTraffic = false;

    /** Hardware prefetch policy. */
    PrefetchPolicy prefetch = PrefetchPolicy::None;

    /** OK when the feature/MSHR combination is consistent;
     *  InvalidArgument otherwise. */
    Status validate() const;
};

/** Cycle accounting of one engine run. */
struct TimingStats
{
    /** Total execution time X in CPU cycles. */
    Cycles cycles = 0;

    /** Instructions executed (E). */
    std::uint64_t instructions = 0;

    /** Data references processed. */
    std::uint64_t references = 0;

    /** Line fills issued (read misses, incl. write-allocate
     *  store misses). */
    std::uint64_t fills = 0;

    /** Write-around store misses sent to memory (W). */
    std::uint64_t writeArounds = 0;

    /** Initial wait for missed data measured from the fill's grant
     *  (phi pool, part 1). */
    Cycles initialMissWait = 0;

    /** Stalls of later accesses against an in-flight line
     *  (phi pool, part 2). */
    Cycles inflightAccessStall = 0;

    /** Stalls of a new miss waiting for a previous fill
     *  (phi pool, part 3). */
    Cycles missSerializationStall = 0;

    /** Synchronous flush cycles (no write buffer). */
    Cycles flushStall = 0;

    /** Synchronous write-around / write-through cycles beyond the
     *  instruction's base cycle. */
    Cycles writeStall = 0;

    /** CPU stalls caused by a full write buffer. */
    Cycles bufferFullStall = 0;

    /** Read grants delayed by a write holding the memory port. */
    Cycles portContentionWait = 0;

    /** Prefetch transfers issued. */
    std::uint64_t prefetchesIssued = 0;

    /** Prefetched lines that served a later demand access. */
    std::uint64_t prefetchesUseful = 0;

    /** Demand accesses that caught their line still in flight
     *  from a prefetch (partial hiding). */
    std::uint64_t prefetchesLate = 0;

    /**
     * Empirical stalling factor: (phi pool) / (fills * mu_m)
     * (Sec. 4.2 / Eq. 8 generalised).  Returns 0 when no fills.
     */
    double phi(Cycles mu_m) const;

    /** Cycles per instruction. */
    double cpi() const;

    /**
     * Mean memory delay per data reference (Sec. 4.5):
     * (X - N_LS) / data references = (X - E)/refs + 1; includes
     * the one-cycle hit times.
     */
    double meanMemoryDelay() const;

    /** Human-readable breakdown. */
    std::string format() const;

    /** The same breakdown as a named counter group (for tooling
     *  that consumes gem5-style stat dumps). */
    CounterGroup counters() const;

    /**
     * Register every counter plus the derived formulas (CPI, mean
     * memory delay, and phi when @p mu_m is nonzero) into the stat
     * registry under @p prefix (e.g. "engine" -> "engine.sim.*",
     * "engine.stall.*").  Names match counters() exactly.
     */
    void registerStats(obs::StatRegistry &registry,
                       const std::string &prefix,
                       Cycles mu_m = 0) const;
};

/**
 * The engine.  Construct with the full machine description, then
 * run() one or more sources; each run starts from a cold cache.
 */
class TimingEngine
{
  public:
    TimingEngine(const CacheConfig &cache_config,
                 const MemoryConfig &memory_config,
                 const WriteBufferConfig &wbuf_config,
                 const CpuConfig &cpu_config);

    /**
     * Execute up to @p max_refs references of @p source (which is
     * reset first).  Returns the timing statistics; cache counters
     * for the same run are available via cacheStats().
     */
    TimingStats run(TraceSource &source, std::uint64_t max_refs);

    /** Cache counters from the most recent run(). */
    const CacheStats &cacheStats() const { return cache_.stats(); }

    const CacheConfig &cacheConfig() const { return cache_.config(); }
    const MemoryConfig &memoryConfig() const
    {
        return timing_.config();
    }

    /**
     * Redirect stall-interval tracing (defaults to
     * obs::globalTracer(), which UATM_TRACE arms).  Pass nullptr
     * to restore the default.
     */
    void setTracer(obs::EventTracer *tracer);

  private:
    /** One outstanding line fill. */
    struct InflightFill
    {
        Addr lineAddr = 0;
        Cycles start = 0;    ///< transfer grant time
        Cycles complete = 0; ///< last chunk arrival
        /** Hardware prefetch (does not lock the CPU or the
         *  demand-miss path; only the port). */
        bool isPrefetch = false;
        /** Arrival time per D-byte chunk, indexed by offset/D
         *  (requested-chunk-first wraparound order). */
        std::vector<Cycles> arrivalByChunk;
    };

    SetAssocCache cache_;
    MemoryTiming timing_;
    WriteBufferConfig wbufConfig_;
    CpuConfig cpuConfig_;
    MemoryScheduler scheduler_;
    obs::EventTracer *tracer_; ///< never null; see setTracer()

    std::vector<InflightFill> inflight_;

    /** Drop fills already complete at @p now. */
    void pruneCompleted(Cycles now);

    /** The in-flight fill covering @p line_addr, if any. */
    const InflightFill *findInflight(Addr line_addr) const;

    /** Latest completion among outstanding fills (0 when none);
     *  optionally restricted to demand fills. */
    Cycles latestCompletion(bool demand_only = false) const;

    /** Arrival time of the chunk holding @p addr within @p fill. */
    Cycles chunkArrival(const InflightFill &fill, Addr addr) const;

    /** Start a line fill at @p when; returns the record. */
    InflightFill &issueFill(Cycles when, Addr line_addr, Addr addr,
                            TimingStats &stats);

    /** Prefetched lines not yet touched by a demand access. */
    std::unordered_set<Addr> prefetchedUntouched_;

    /** Issue a hardware prefetch of @p line_addr at @p when. */
    void issuePrefetch(Cycles when, Addr line_addr,
                       TimingStats &stats);

    /** Drop stale entries from prefetchedUntouched_. */
    void prunePrefetchSet();
};

} // namespace uatm

#endif // UATM_CPU_TIMING_ENGINE_HH
