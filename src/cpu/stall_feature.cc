/**
 * @file
 * Implementation of stalling-feature helpers.
 */

#include "cpu/stall_feature.hh"

#include "util/logging.hh"

namespace uatm {

const char *
stallFeatureName(StallFeature feature)
{
    switch (feature) {
      case StallFeature::FS:
        return "FS";
      case StallFeature::BL:
        return "BL";
      case StallFeature::BNL1:
        return "BNL1";
      case StallFeature::BNL2:
        return "BNL2";
      case StallFeature::BNL3:
        return "BNL3";
      case StallFeature::NB:
        return "NB";
    }
    panic("unknown StallFeature");
}

StallFeature
parseStallFeature(const std::string &name)
{
    if (name == "FS")
        return StallFeature::FS;
    if (name == "BL")
        return StallFeature::BL;
    if (name == "BNL1")
        return StallFeature::BNL1;
    if (name == "BNL2")
        return StallFeature::BNL2;
    if (name == "BNL3")
        return StallFeature::BNL3;
    if (name == "NB")
        return StallFeature::NB;
    fatal("unknown stalling feature '", name,
          "' (expected FS, BL, BNL1, BNL2, BNL3 or NB)");
}

bool
isPartiallyStalling(StallFeature feature)
{
    return feature != StallFeature::FS;
}

PhiBounds
phiBounds(StallFeature feature, double line_over_bus)
{
    UATM_ASSERT(line_over_bus >= 1.0,
                "L/D must be at least one, got ", line_over_bus);
    switch (feature) {
      case StallFeature::FS:
        return PhiBounds{line_over_bus, line_over_bus};
      case StallFeature::BL:
      case StallFeature::BNL1:
      case StallFeature::BNL2:
      case StallFeature::BNL3:
        return PhiBounds{1.0, line_over_bus};
      case StallFeature::NB:
        return PhiBounds{0.0, line_over_bus};
    }
    panic("unknown StallFeature");
}

} // namespace uatm
