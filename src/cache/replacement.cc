/**
 * @file
 * Implementation of the replacement policies.
 */

#include "cache/replacement.hh"

#include "util/logging.hh"

namespace uatm {

std::unique_ptr<ReplacementPolicy>
ReplacementPolicy::create(const CacheConfig &config)
{
    const std::uint64_t sets = config.numSets();
    switch (config.replacement) {
      case ReplacementKind::LRU:
        return std::make_unique<LruPolicy>(sets, config.assoc);
      case ReplacementKind::FIFO:
        return std::make_unique<FifoPolicy>(sets, config.assoc);
      case ReplacementKind::Random:
        return std::make_unique<RandomPolicy>(config.assoc,
                                              config.replacementSeed);
      case ReplacementKind::TreePLRU:
        return std::make_unique<TreePlruPolicy>(sets, config.assoc);
    }
    panic("unknown ReplacementKind");
}

namespace {

/** First invalid way, or assoc when every way is valid. */
std::uint32_t
firstInvalid(const std::vector<bool> &valid)
{
    for (std::uint32_t w = 0; w < valid.size(); ++w) {
        if (!valid[w])
            return w;
    }
    return static_cast<std::uint32_t>(valid.size());
}

} // namespace

// --------------------------------------------------------------------
// LruPolicy
// --------------------------------------------------------------------

LruPolicy::LruPolicy(std::uint64_t sets, std::uint32_t assoc)
    : assoc_(assoc), stamps_(sets * assoc, 0)
{
}

void
LruPolicy::touch(std::uint64_t set, std::uint32_t way)
{
    stamps_[set * assoc_ + way] = ++clock_;
}

std::uint32_t
LruPolicy::victim(std::uint64_t set, const std::vector<bool> &valid)
{
    if (auto w = firstInvalid(valid); w < assoc_)
        return w;
    std::uint32_t oldest = 0;
    std::uint64_t best = stamps_[set * assoc_];
    for (std::uint32_t w = 1; w < assoc_; ++w) {
        const std::uint64_t stamp = stamps_[set * assoc_ + w];
        if (stamp < best) {
            best = stamp;
            oldest = w;
        }
    }
    return oldest;
}

void
LruPolicy::reset()
{
    std::fill(stamps_.begin(), stamps_.end(), 0);
    clock_ = 0;
}

// --------------------------------------------------------------------
// FifoPolicy
// --------------------------------------------------------------------

FifoPolicy::FifoPolicy(std::uint64_t sets, std::uint32_t assoc)
    : assoc_(assoc), nextOut_(sets, 0)
{
}

void
FifoPolicy::touch(std::uint64_t, std::uint32_t)
{
    // FIFO order is insertion order; hits do not reorder.
}

std::uint32_t
FifoPolicy::victim(std::uint64_t set, const std::vector<bool> &valid)
{
    if (auto w = firstInvalid(valid); w < assoc_)
        return w;
    const std::uint32_t way = nextOut_[set];
    nextOut_[set] = (way + 1) % assoc_;
    return way;
}

void
FifoPolicy::reset()
{
    std::fill(nextOut_.begin(), nextOut_.end(), 0);
}

// --------------------------------------------------------------------
// RandomPolicy
// --------------------------------------------------------------------

RandomPolicy::RandomPolicy(std::uint32_t assoc, std::uint64_t seed)
    : assoc_(assoc), seed_(seed), rng_(seed)
{
}

void
RandomPolicy::touch(std::uint64_t, std::uint32_t)
{
}

std::uint32_t
RandomPolicy::victim(std::uint64_t, const std::vector<bool> &valid)
{
    if (auto w = firstInvalid(valid); w < assoc_)
        return w;
    return static_cast<std::uint32_t>(rng_.nextBelow(assoc_));
}

void
RandomPolicy::reset()
{
    rng_ = Rng(seed_);
}

// --------------------------------------------------------------------
// TreePlruPolicy
// --------------------------------------------------------------------

TreePlruPolicy::TreePlruPolicy(std::uint64_t sets, std::uint32_t assoc)
    : assoc_(assoc), levels_(0),
      bits_(sets * (assoc > 1 ? assoc - 1 : 1), false)
{
    UATM_ASSERT(assoc != 0 && (assoc & (assoc - 1)) == 0,
                "TreePLRU needs power-of-two associativity");
    for (std::uint32_t a = assoc; a > 1; a >>= 1)
        ++levels_;
}

std::size_t
TreePlruPolicy::bitIndex(std::uint64_t set, std::uint32_t node) const
{
    return set * (assoc_ > 1 ? assoc_ - 1 : 1) + node;
}

void
TreePlruPolicy::touch(std::uint64_t set, std::uint32_t way)
{
    if (assoc_ == 1)
        return;
    // Walk from the root, flipping each node away from the touched
    // way so the pseudo-LRU path points elsewhere.
    std::uint32_t node = 0;
    for (std::uint32_t level = 0; level < levels_; ++level) {
        const std::uint32_t bit =
            (way >> (levels_ - 1 - level)) & 1u;
        bits_[bitIndex(set, node)] = bit == 0;
        node = 2 * node + 1 + bit;
    }
}

std::uint32_t
TreePlruPolicy::victim(std::uint64_t set,
                       const std::vector<bool> &valid)
{
    if (auto w = firstInvalid(valid); w < assoc_)
        return w;
    if (assoc_ == 1)
        return 0;
    std::uint32_t node = 0;
    std::uint32_t way = 0;
    for (std::uint32_t level = 0; level < levels_; ++level) {
        const bool go_right = bits_[bitIndex(set, node)];
        way = (way << 1) | (go_right ? 1u : 0u);
        node = 2 * node + 1 + (go_right ? 1u : 0u);
    }
    return way;
}

void
TreePlruPolicy::reset()
{
    std::fill(bits_.begin(), bits_.end(), false);
}

} // namespace uatm
